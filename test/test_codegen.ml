(* Structural checks on the generated (consolidated) source code — the
   shape of the paper's Fig. 4(b), per granularity. *)

module Parser = Dpc_minicu.Parser
module Transform = Dpc.Transform
module Pp = Dpc_kir.Pp
module Kernel = Dpc_kir.Kernel

let cfg = Dpc_gpu.Config.k20c

let annotated gran =
  Printf.sprintf
    {|
__global__ void child(int* a, int x) {
  var t = threadIdx.x;
  a[x + t] = 1;
}
__global__ void parent(int* a, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var x = tid * 32;
    #pragma dp consldt(%s) work(x)
    launch child<<<1, 32>>>(a, x);
  }
}
|}
    gran

let generated gran =
  let prog = Parser.parse_program (annotated gran) in
  let r = Transform.apply ~cfg ~parent:"parent" prog in
  (r, Pp.program r.Transform.program)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check src what needle =
  Alcotest.(check bool) what true (contains src needle)

let check_not src what needle =
  Alcotest.(check bool) what false (contains src needle)

let test_block_level_shape () =
  let r, src = generated "block" in
  Alcotest.(check string) "entry is the parent" "parent" r.Transform.entry;
  check src "per-block buffer allocation" "__dp_malloc_block";
  check src "slot reservation" "atomicAdd(__cons_cnt, 0, 1)";
  check src "block barrier before launch" "__syncthreads();";
  check src "designated thread" "threadIdx.x == 0 && __cons_cnt[0] > 0";
  check src "counter clamped to capacity" "min(__cons_cnt[0]";
  check src "consolidated kernel generated" "__global__ void child_cons_block";
  check src "work-fetch loop" "while (__cons_it <";
  check_not src "no grid barrier at block level" "__dp_global_barrier"

let test_warp_level_shape () =
  let _, src = generated "warp" in
  check src "per-warp buffer" "__dp_malloc_warp";
  check src "lane 0 launches" "laneId == 0";
  check_not src "no explicit barrier at warp level" "__syncthreads"

let test_grid_level_shape () =
  let _, src = generated "grid" in
  check src "per-grid buffer" "__dp_malloc_grid";
  check src "custom global barrier" "__dp_global_barrier();";
  check src "consolidated kernel" "__global__ void child_cons_grid"

let test_overflow_fallback_present () =
  let _, src = generated "block" in
  (* The insertion's else-branch keeps the original (direct) launch. *)
  check src "direct-launch fallback" "launch child<<<1, 32>>>(a, x);"

let test_solo_thread_child_wrap () =
  let src =
    {|
__global__ void child(int* a, int x) {
  a[x] = 1;
}
__global__ void parent(int* a, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var x = tid;
    #pragma dp consldt(grid) work(x)
    launch child<<<1, 1>>>(a, x);
  }
}
|}
  in
  let prog = Parser.parse_program src in
  let r = Transform.apply ~cfg ~parent:"parent" prog in
  let out = Pp.program r.Transform.program in
  (* Solo-thread children become thread-mapped fetch loops over gtid. *)
  check out "thread-mapped fetch"
    "var __cons_it = blockIdx.x * blockDim.x + threadIdx.x;";
  check out "grid-stride step" "__cons_it = __cons_it + gridDim.x * blockDim.x;"

let test_recursive_shape () =
  let src gran =
    Printf.sprintf
      {|
__global__ void walk(int* child_ptr, int* child_list, int* out, int nnodes, int node) {
  var t = blockIdx.x * blockDim.x + threadIdx.x;
  var nchild = child_ptr[node + 1] - child_ptr[node];
  if (t < nchild) {
    var c = child_list[child_ptr[node] + t];
    out[c] = 1;
    #pragma dp consldt(%s) buffer(custom, perBufferSize: nnodes) work(c)
    launch walk<<<1, 64>>>(child_ptr, child_list, out, nnodes, c);
  }
}
|}
      gran
  in
  let prog = Parser.parse_program (src "grid") in
  let r = Transform.apply ~cfg ~parent:"walk" prog in
  Alcotest.(check bool) "recursive" true r.Transform.recursive;
  Alcotest.(check string) "entry is the consolidated kernel" "walk_cons_grid"
    r.Transform.entry;
  let out = Pp.program r.Transform.program in
  check out "fresh next-level buffer" "__cons_buf_next";
  check out "self launch"
    "launch walk_cons_grid<<<";
  (* The original kernel is kept (overflow fallback target). *)
  Alcotest.(check bool) "original kernel kept" true
    (Kernel.Program.mem r.Transform.program "walk")

let test_generated_code_runs_after_reparse () =
  (* The printed consolidated program must itself be a valid program we
     can parse and re-transform... at least parse and execute. *)
  let _, src = generated "grid" in
  let prog = Parser.parse_program src in
  let dev = Dpc_sim.Device.create prog in
  let a = Dpc_sim.Device.alloc_int dev ~name:"a" 2048 in
  Dpc_sim.Device.launch dev "parent" ~grid:2 ~block:32
    [ Dpc_kir.Value.Vbuf a.Dpc_gpu.Memory.id; Dpc_kir.Value.Vint 64 ];
  let got = Dpc_sim.Device.read_int_array dev a.Dpc_gpu.Memory.id in
  Alcotest.(check int) "work done through reparsed code" 1 got.(0)

let suite =
  [
    Alcotest.test_case "block-level shape" `Quick test_block_level_shape;
    Alcotest.test_case "warp-level shape" `Quick test_warp_level_shape;
    Alcotest.test_case "grid-level shape" `Quick test_grid_level_shape;
    Alcotest.test_case "overflow fallback" `Quick test_overflow_fallback_present;
    Alcotest.test_case "solo-thread wrap" `Quick test_solo_thread_child_wrap;
    Alcotest.test_case "recursive shape" `Quick test_recursive_shape;
    Alcotest.test_case "reparse and run" `Quick
      test_generated_code_runs_after_reparse;
  ]
