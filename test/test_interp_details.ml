(* Detailed interpreter semantics: coalescing and L2 accounting,
   short-circuit evaluation, arithmetic corners, partial warps, and the
   remaining IR operators. *)

open Dpc_kir
open Dpc_kir.Build
module Device = Dpc_sim.Device
module Interp = Dpc_sim.Interp
module M = Dpc_sim.Metrics
module Mem = Dpc_gpu.Memory
module V = Value

let mk_program kernels =
  let p = Kernel.Program.create () in
  List.iter (Kernel.Program.add p) kernels;
  p

let run_kernel ?(n = 64) ?(grid = 1) ?(block = 32) k bufs ints =
  let dev = Device.create (mk_program [ k ]) in
  let handles =
    List.map (fun (name, arr) -> Device.of_int_array dev ~name arr) bufs
  in
  ignore n;
  Device.launch dev k.Kernel.kname ~grid ~block
    (List.map (fun (b : Mem.buf) -> V.Vbuf b.Mem.id) handles
    @ List.map (fun x -> V.Vint x) ints);
  (dev, handles)

(* --- memory coalescing ---------------------------------------------------- *)

(* A single fully-coalesced warp load touches 32 consecutive ints =
   4 segments of 128B; a strided load touches one segment per lane. *)
let coalescing_report stride =
  let k =
    kernel ~name:"k" ~params:[ pi "a"; pi "out" ]
      [ store (v "out") tid (load (v "a") (tid *: i stride)) ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.of_int_array dev ~name:"a" (Array.make 2048 1) in
  let out = Device.alloc_int dev ~name:"out" 32 in
  Device.launch dev "k" ~grid:1 ~block:32
    [ V.Vbuf a.Mem.id; V.Vbuf out.Mem.id ];
  Device.report dev

let test_coalesced_vs_strided () =
  let seq = coalescing_report 1 in
  let strided = coalescing_report 64 in
  Alcotest.(check bool) "strided needs many more transactions" true
    (strided.M.dram_transactions >= seq.M.dram_transactions + 20)

let test_l2_hits_on_reuse () =
  (* Two loads of the same cache-resident data: the second should hit L2. *)
  let k =
    kernel ~name:"k" ~params:[ pi "a"; pi "out" ]
      [
        set "x" (load (v "a") tid);
        set "y" (load (v "a") tid);
        store (v "out") tid (v "x" +: v "y");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.of_int_array dev ~name:"a" (Array.make 64 3) in
  let out = Device.alloc_int dev ~name:"out" 64 in
  Device.launch dev "k" ~grid:1 ~block:32 [ V.Vbuf a.Mem.id; V.Vbuf out.Mem.id ];
  let r = Device.report dev in
  Alcotest.(check bool) "some L2 hits" true (r.M.l2_hits > 0)

(* --- short-circuit evaluation ---------------------------------------------- *)

let test_and_short_circuit_guards_oob () =
  (* The canonical `i < n && a[i] ...` must not fault for i >= n. *)
  let k =
    kernel ~name:"k" ~params:[ pi "a"; pi "out"; p "n" ]
      [
        set "ok" (tid <: v "n" &&: (load (v "a") tid >: i 0));
        store (v "out") tid (v "ok");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.of_int_array dev ~name:"a" [| 5; 0 |] in
  let out = Device.alloc_int dev ~name:"out" 32 in
  Device.launch dev "k" ~grid:1 ~block:32
    [ V.Vbuf a.Mem.id; V.Vbuf out.Mem.id; V.Vint 2 ];
  let got = Device.read_int_array dev out.Mem.id in
  Alcotest.(check int) "lane 0 true" 1 got.(0);
  Alcotest.(check int) "lane 1 false (a[1]=0)" 0 got.(1);
  Alcotest.(check int) "lane 5 guarded" 0 got.(5)

let test_or_short_circuit () =
  let k =
    kernel ~name:"k" ~params:[ pi "a"; pi "out"; p "n" ]
      [
        set "ok" (tid >=: v "n" ||: (load (v "a") tid ==: i 7));
        store (v "out") tid (v "ok");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.of_int_array dev ~name:"a" [| 7; 1 |] in
  let out = Device.alloc_int dev ~name:"out" 32 in
  Device.launch dev "k" ~grid:1 ~block:32
    [ V.Vbuf a.Mem.id; V.Vbuf out.Mem.id; V.Vint 2 ];
  let got = Device.read_int_array dev out.Mem.id in
  Alcotest.(check int) "lane 0: a[0]=7" 1 got.(0);
  Alcotest.(check int) "lane 1: a[1]<>7" 0 got.(1);
  Alcotest.(check int) "lane 9: guarded by n" 1 got.(9)

(* --- arithmetic corners ----------------------------------------------------- *)

let test_division_by_zero_raises () =
  let k =
    kernel ~name:"k" ~params:[ pi "out"; p "d" ]
      [ store (v "out") (i 0) (i 10 /: v "d") ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Alcotest.(check bool) "div by zero raises" true
    (try
       Device.launch dev "k" ~grid:1 ~block:1 [ V.Vbuf out.Mem.id; V.Vint 0 ];
       false
     with Interp.Sim_error _ -> true)

let test_int_float_promotion () =
  let k =
    kernel ~name:"k" ~params:[ pp "out" ]
      [
        set "x" (i 3 +: f 0.5);
        store (v "out") (i 0) (v "x");
        store (v "out") (i 1) (to_float (i 7) /: f 2.0);
        store (v "out") (i 2) (to_float (to_int (f 2.9)));
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_float dev ~name:"out" 4 in
  Device.launch dev "k" ~grid:1 ~block:1 [ V.Vbuf out.Mem.id ];
  let got = Device.read_float_array dev out.Mem.id in
  Alcotest.(check (float 1e-9)) "promotion" 3.5 got.(0);
  Alcotest.(check (float 1e-9)) "float division" 3.5 got.(1);
  Alcotest.(check (float 1e-9)) "truncation" 2.0 got.(2)

let test_bit_ops () =
  let k =
    kernel ~name:"k" ~params:[ pi "out" ]
      [
        store (v "out") (i 0) (Ast.Binop (Ast.Shl, i 3, i 4));
        store (v "out") (i 1) (Ast.Binop (Ast.Shr, i 48, i 4));
        store (v "out") (i 2) (Ast.Binop (Ast.Bit_and, i 12, i 10));
        store (v "out") (i 3) (Ast.Binop (Ast.Bit_or, i 12, i 10));
        store (v "out") (i 4) (Ast.Binop (Ast.Bit_xor, i 12, i 10));
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 5 in
  Device.launch dev "k" ~grid:1 ~block:1 [ V.Vbuf out.Mem.id ];
  Alcotest.(check (array int)) "bit ops" [| 48; 3; 8; 14; 6 |]
    (Device.read_int_array dev out.Mem.id)

let test_buf_len () =
  let k =
    kernel ~name:"k" ~params:[ pi "a"; pi "out" ]
      [ store (v "out") (i 0) (buf_len (v "a")) ]
  in
  let _, handles =
    run_kernel ~block:1 k [ ("a", Array.make 17 0); ("out", [| 0 |]) ] []
  in
  match handles with
  | [ _; out ] ->
    Alcotest.(check int) "__len" 17 (Mem.read_int out 0)
  | _ -> assert false

(* --- partial warps and specials --------------------------------------------- *)

let test_partial_warp () =
  (* 40 threads = one full warp + one 8-lane warp. *)
  let k =
    kernel ~name:"k" ~params:[ pi "out" ]
      [ store (v "out") tid (warp *: i 100 +: lane) ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 40 in
  Device.launch dev "k" ~grid:1 ~block:40 [ V.Vbuf out.Mem.id ];
  let got = Device.read_int_array dev out.Mem.id in
  Alcotest.(check int) "lane 0 of warp 0" 0 got.(0);
  Alcotest.(check int) "lane 31 of warp 0" 31 got.(31);
  Alcotest.(check int) "lane 0 of warp 1" 100 got.(32);
  Alcotest.(check int) "lane 7 of warp 1" 107 got.(39)

let test_warp_size_special () =
  let k =
    kernel ~name:"k" ~params:[ pi "out" ] [ store (v "out") (i 0) warpsize ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 1 in
  Device.launch dev "k" ~grid:1 ~block:1 [ V.Vbuf out.Mem.id ];
  Alcotest.(check int) "warpSize" 32 (Device.read_int_array dev out.Mem.id).(0)

(* --- loops with per-lane bounds ---------------------------------------------- *)

let test_for_with_varying_bounds () =
  (* Each lane sums 0..tid-1; exercises the shrinking-mask loop. *)
  let k =
    kernel ~name:"k" ~params:[ pi "out" ]
      [
        set "acc" (i 0);
        for_ "j" ~from:(i 0) ~below:tid [ set "acc" (v "acc" +: v "j") ];
        store (v "out") tid (v "acc");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 32 in
  Device.launch dev "k" ~grid:1 ~block:32 [ V.Vbuf out.Mem.id ];
  let got = Device.read_int_array dev out.Mem.id in
  Alcotest.(check (array int)) "triangular sums"
    (Array.init 32 (fun t -> t * (t - 1) / 2))
    got

let test_while_with_returns () =
  (* Lanes return at different trip counts inside a loop. *)
  let k =
    kernel ~name:"k" ~params:[ pi "out" ]
      [
        set "j" (i 0);
        while_ (i 1)
          [
            if_then (v "j" ==: tid) [ store (v "out") tid (v "j"); return ];
            set "j" (v "j" +: i 1);
          ];
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 8 in
  Device.launch dev "k" ~grid:1 ~block:8 [ V.Vbuf out.Mem.id ];
  Alcotest.(check (array int)) "each lane exits at its index"
    (Array.init 8 Fun.id)
    (Device.read_int_array dev out.Mem.id)

(* --- atomics ------------------------------------------------------------------ *)

let test_atomic_cas_and_exch () =
  let k =
    kernel ~name:"k" ~params:[ pi "cell"; pi "out" ]
      [
        atomic_cas ~old:"o1" (v "cell") (i 0) ~compare:(i 0) (i 42);
        atomic_cas ~old:"o2" (v "cell") (i 0) ~compare:(i 0) (i 99);
        atomic_exch ~old:"o3" (v "cell") (i 0) (i 7);
        store (v "out") (i 0) (v "o1");
        store (v "out") (i 1) (v "o2");
        store (v "out") (i 2) (v "o3");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let cell = Device.alloc_int dev ~name:"cell" 1 in
  let out = Device.alloc_int dev ~name:"out" 3 in
  Device.launch dev "k" ~grid:1 ~block:1
    [ V.Vbuf cell.Mem.id; V.Vbuf out.Mem.id ];
  Alcotest.(check (array int)) "cas/exch olds" [| 0; 42; 42 |]
    (Device.read_int_array dev out.Mem.id);
  Alcotest.(check int) "final value" 7
    (Device.read_int_array dev cell.Mem.id).(0)

let test_atomic_max () =
  let k =
    kernel ~name:"k" ~params:[ pi "cell" ]
      [ atomic_max (v "cell") (i 0) tid ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let cell = Device.alloc_int dev ~name:"cell" 1 in
  Device.launch dev "k" ~grid:2 ~block:64 [ V.Vbuf cell.Mem.id ];
  Alcotest.(check int) "max of tids" 63
    (Device.read_int_array dev cell.Mem.id).(0)

(* --- launch argument arity guard ----------------------------------------------- *)

let test_bad_arity_rejected () =
  let k = kernel ~name:"k" ~params:[ pi "a"; p "n" ] [] in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.alloc_int dev ~name:"a" 1 in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       Device.launch dev "k" ~grid:1 ~block:1 [ V.Vbuf a.Mem.id ];
       false
     with Interp.Sim_error _ -> true)

let suite =
  [
    Alcotest.test_case "coalesced vs strided" `Quick test_coalesced_vs_strided;
    Alcotest.test_case "l2 hits on reuse" `Quick test_l2_hits_on_reuse;
    Alcotest.test_case "&& short circuit" `Quick
      test_and_short_circuit_guards_oob;
    Alcotest.test_case "|| short circuit" `Quick test_or_short_circuit;
    Alcotest.test_case "div by zero" `Quick test_division_by_zero_raises;
    Alcotest.test_case "int/float promotion" `Quick test_int_float_promotion;
    Alcotest.test_case "bit ops" `Quick test_bit_ops;
    Alcotest.test_case "__len" `Quick test_buf_len;
    Alcotest.test_case "partial warp" `Quick test_partial_warp;
    Alcotest.test_case "warpSize" `Quick test_warp_size_special;
    Alcotest.test_case "for varying bounds" `Quick test_for_with_varying_bounds;
    Alcotest.test_case "while with returns" `Quick test_while_with_returns;
    Alcotest.test_case "atomic cas/exch" `Quick test_atomic_cas_and_exch;
    Alcotest.test_case "atomic max" `Quick test_atomic_max;
    Alcotest.test_case "bad arity" `Quick test_bad_arity_rejected;
  ]
