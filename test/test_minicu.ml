(* MiniCU front-end tests: lexer, pragma parser, parser, and the
   parse -> unparse -> parse round-trip with the IR printer. *)

module T = Dpc_minicu.Token
module Lexer = Dpc_minicu.Lexer
module Parser = Dpc_minicu.Parser
module Pragma_parser = Dpc_minicu.Pragma_parser
module Pragma = Dpc_kir.Pragma
module Pp = Dpc_kir.Pp
module Kernel = Dpc_kir.Kernel
module V = Dpc_kir.Value
module Device = Dpc_sim.Device

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

(* --- lexer ------------------------------------------------------------- *)

let test_lex_basics () =
  Alcotest.(check bool) "idents and ops" true
    (toks "x = a + 42;"
    = [ T.Ident "x"; T.Assign; T.Ident "a"; T.Plus; T.Int_lit 42; T.Semi;
        T.Eof ])

let test_lex_launch_brackets () =
  Alcotest.(check bool) "<<< and >>>" true
    (toks "<<<1, 2>>>"
    = [ T.Triple_lt; T.Int_lit 1; T.Comma; T.Int_lit 2; T.Triple_gt; T.Eof ])

let test_lex_shift_vs_triple () =
  Alcotest.(check bool) "<< is shift" true
    (toks "a << 2" = [ T.Ident "a"; T.Shl; T.Int_lit 2; T.Eof ])

let test_lex_floats () =
  (match toks "1.5f" with
  | [ T.Float_lit f; T.Eof ] -> Alcotest.(check (float 1e-9)) "1.5f" 1.5 f
  | _ -> Alcotest.fail "expected one float");
  (match toks "0x1.8p+1f" with
  | [ T.Float_lit f; T.Eof ] -> Alcotest.(check (float 1e-9)) "hex float" 3.0 f
  | _ -> Alcotest.fail "expected one hex float");
  match toks "2e3" with
  | [ T.Float_lit f; T.Eof ] -> Alcotest.(check (float 1e-9)) "exp float" 2000.0 f
  | _ -> Alcotest.fail "expected one exp float"

let test_lex_comments () =
  Alcotest.(check bool) "comments stripped" true
    (toks "a // hi\n/* multi\nline */ b" = [ T.Ident "a"; T.Ident "b"; T.Eof ])

let test_lex_pragma_line () =
  match toks "#pragma dp consldt(grid)\nx = 1;" with
  | T.Pragma p :: _ -> Alcotest.(check string) "pragma text" "dp consldt(grid)" p
  | _ -> Alcotest.fail "expected pragma token"

let test_lex_error_char () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (toks "a $ b");
       false
     with Lexer.Lex_error _ -> true)

(* --- pragma parser ------------------------------------------------------ *)

let test_pragma_full () =
  match
    Pragma_parser.parse
      "dp consldt(block) buffer(custom, perBufferSize: 256, totalSize: \
       1048576) work(curr, next) threads(128) blocks(26)"
  with
  | Some p ->
    Alcotest.(check bool) "granularity" true (p.Pragma.granularity = Pragma.Block);
    Alcotest.(check bool) "allocator" true (p.Pragma.buffer = Pragma.Custom);
    Alcotest.(check bool) "perBufferSize" true
      (p.Pragma.per_buffer_size = Some (Pragma.Size_const 256));
    Alcotest.(check (option int)) "totalSize" (Some 1048576) p.Pragma.total_size;
    Alcotest.(check (list string)) "work" [ "curr"; "next" ] p.Pragma.work;
    Alcotest.(check (option int)) "threads" (Some 128) p.Pragma.threads;
    Alcotest.(check (option int)) "blocks" (Some 26) p.Pragma.blocks
  | None -> Alcotest.fail "expected a dp pragma"

let test_pragma_size_var () =
  match Pragma_parser.parse "dp consldt(warp) buffer(halloc, perBufferSize: nchildren) work(c)" with
  | Some p ->
    Alcotest.(check bool) "halloc" true (p.Pragma.buffer = Pragma.Halloc);
    Alcotest.(check bool) "size var" true
      (p.Pragma.per_buffer_size = Some (Pragma.Size_var "nchildren"))
  | None -> Alcotest.fail "expected a dp pragma"

let test_pragma_requires_consldt () =
  Alcotest.(check bool) "missing consldt rejected" true
    (try
       ignore (Pragma_parser.parse "dp work(x)");
       false
     with Pragma_parser.Pragma_error _ -> true)

let test_pragma_requires_work () =
  Alcotest.(check bool) "missing work rejected" true
    (try
       ignore (Pragma_parser.parse "dp consldt(grid)");
       false
     with Pragma_parser.Pragma_error _ -> true)

let test_pragma_non_dp () =
  Alcotest.(check bool) "non-dp pragma ignored" true
    (Pragma_parser.parse "unroll 4" = None)

let test_pragma_roundtrip () =
  let p =
    Pragma.make ~granularity:Pragma.Grid ~work:[ "node" ]
      ~buffer:Pragma.Custom
      ~per_buffer_size:(Pragma.Size_const 64) ~threads:256 ()
  in
  let printed = Pragma.to_string p in
  (* printed form starts with "#pragma "; strip it for the parser. *)
  let body = String.sub printed 8 (String.length printed - 8) in
  match Pragma_parser.parse body with
  | Some q -> Alcotest.(check bool) "round-trip equal" true (p = q)
  | None -> Alcotest.fail "round-trip parse failed"

(* --- parser -------------------------------------------------------------- *)

let sssp_like_src =
  {|
__global__ void sssp(int* row, int* col, int* w, int* dist, int* updated, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var start = row[tid];
    var end = row[tid + 1];
    var degree = end - start;
    if (degree > threshold) {
      launch sssp_child<<<1, 32>>>(col, w, dist, updated, start, end, dist[tid]);
    } else {
      for (var j = start; j < end; j = j + 1) {
        var alt = dist[tid] + w[j];
        if (alt < dist[col[j]]) {
          atomicMin(dist, col[j], alt);
          updated[0] = 1;
        }
      }
    }
  }
}
|}

let test_parse_kernel_structure () =
  let k = Parser.parse_kernel_string sssp_like_src in
  Alcotest.(check string) "name" "sssp" k.Kernel.kname;
  Alcotest.(check int) "params" 7 (List.length k.Kernel.params);
  let launches = Dpc_kir.Ast.collect_launches k.Kernel.body in
  Alcotest.(check int) "one launch" 1 (List.length launches);
  Alcotest.(check string) "callee" "sssp_child"
    (List.hd launches).Dpc_kir.Ast.callee

let test_parse_pragma_attached () =
  let src =
    {|
__global__ void parent(int* work, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  #pragma dp consldt(block) buffer(custom, perBufferSize: 256) work(tid)
  launch child<<<1, 32>>>(work, tid);
}
__global__ void child(int* work, int item) {
  work[item] = 1;
}
|}
  in
  let prog = Parser.parse_program src in
  let parent = Kernel.Program.find prog "parent" in
  match Dpc_kir.Ast.collect_launches parent.Kernel.body with
  | [ l ] -> (
    match l.Dpc_kir.Ast.pragma with
    | Some p ->
      Alcotest.(check bool) "block granularity" true
        (p.Pragma.granularity = Pragma.Block);
      Alcotest.(check (list string)) "work vars" [ "tid" ] p.Pragma.work
    | None -> Alcotest.fail "pragma not attached")
  | _ -> Alcotest.fail "expected one launch"

let test_parse_rejects_noncanonical_for () =
  let src =
    "__global__ void k(int* a) { for (var i = 0; i < 10; i = i + 2) { a[i] = \
     1; } }"
  in
  Alcotest.(check bool) "non-unit stride rejected" true
    (try
       ignore (Parser.parse_kernel_string src);
       false
     with Parser.Parse_error _ -> true)

let test_parse_error_has_line () =
  let src = "__global__ void k(int* a) {\n  a[0] = ;\n}" in
  try
    ignore (Parser.parse_kernel_string src);
    Alcotest.fail "expected parse error"
  with Parser.Parse_error { line; _ } -> Alcotest.(check int) "line" 2 line

(* --- round-trip ------------------------------------------------------------ *)

let test_roundtrip_fixpoint () =
  let k1 = Parser.parse_kernel_string sssp_like_src in
  let printed1 = Pp.kernel k1 in
  let k2 = Parser.parse_kernel_string printed1 in
  let printed2 = Pp.kernel k2 in
  Alcotest.(check string) "unparse . parse fixpoint" printed1 printed2

let test_parse_then_execute () =
  let src =
    {|
__global__ void scale(float* x, float* y, float a, int n) {
  var i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + 1.0f;
  }
}
|}
  in
  let prog = Parser.parse_program src in
  let dev = Device.create prog in
  let n = 100 in
  let x =
    Device.of_float_array dev ~name:"x"
      (Array.init n (fun i -> Float.of_int i))
  in
  let y = Device.alloc_float dev ~name:"y" n in
  Device.launch dev "scale" ~grid:4 ~block:32
    [ V.Vbuf x.Dpc_gpu.Memory.id; V.Vbuf y.Dpc_gpu.Memory.id; V.Vfloat 2.0;
      V.Vint n ];
  let got = Device.read_float_array dev y.Dpc_gpu.Memory.id in
  Alcotest.(check (float 1e-6)) "y[10]" 21.0 got.(10);
  Alcotest.(check (float 1e-6)) "y[0]" 1.0 got.(0)

let test_shared_decl_parsing () =
  let src =
    {|
__global__ void r(int* d) {
  __shared__ int tmp[64];
  tmp[threadIdx.x] = d[threadIdx.x];
  __syncthreads();
  d[threadIdx.x] = tmp[blockDim.x - 1 - threadIdx.x];
}
|}
  in
  let k = Parser.parse_kernel_string src in
  Alcotest.(check bool) "shared decl" true (k.Kernel.shared = [ ("tmp", 64) ]);
  (* shared stores must have been recognized as Shared_store *)
  let has_shared_store =
    List.exists
      (function Dpc_kir.Ast.Shared_store _ -> true | _ -> false)
      k.Kernel.body
  in
  Alcotest.(check bool) "shared store recognized" true has_shared_store

let suite =
  [
    Alcotest.test_case "lex basics" `Quick test_lex_basics;
    Alcotest.test_case "lex launch brackets" `Quick test_lex_launch_brackets;
    Alcotest.test_case "lex shift vs triple" `Quick test_lex_shift_vs_triple;
    Alcotest.test_case "lex floats" `Quick test_lex_floats;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex pragma line" `Quick test_lex_pragma_line;
    Alcotest.test_case "lex error char" `Quick test_lex_error_char;
    Alcotest.test_case "pragma full" `Quick test_pragma_full;
    Alcotest.test_case "pragma size var" `Quick test_pragma_size_var;
    Alcotest.test_case "pragma requires consldt" `Quick
      test_pragma_requires_consldt;
    Alcotest.test_case "pragma requires work" `Quick test_pragma_requires_work;
    Alcotest.test_case "pragma non-dp" `Quick test_pragma_non_dp;
    Alcotest.test_case "pragma roundtrip" `Quick test_pragma_roundtrip;
    Alcotest.test_case "parse kernel structure" `Quick
      test_parse_kernel_structure;
    Alcotest.test_case "parse pragma attached" `Quick test_parse_pragma_attached;
    Alcotest.test_case "parse rejects bad for" `Quick
      test_parse_rejects_noncanonical_for;
    Alcotest.test_case "parse error line" `Quick test_parse_error_has_line;
    Alcotest.test_case "roundtrip fixpoint" `Quick test_roundtrip_fixpoint;
    Alcotest.test_case "parse then execute" `Quick test_parse_then_execute;
    Alcotest.test_case "shared decl parsing" `Quick test_shared_decl_parsing;
  ]
