(* Tests for the device-heap allocators. *)

module Alloc = Dpc_alloc.Allocator
module Mem = Dpc_gpu.Memory

let test_pool_cheaper_than_default () =
  let m = Mem.create () in
  let pool = Alloc.create Alloc.Pool in
  let dflt = Alloc.create Alloc.Default in
  let _, cp = Alloc.alloc pool m ~name:"p" ~count:64 in
  let _, cd = Alloc.alloc dflt m ~name:"d" ~count:64 in
  Alcotest.(check bool) "pool is much cheaper" true (cp * 10 < cd)

let test_contention_grows_cost () =
  let m = Mem.create () in
  let dflt = Alloc.create Alloc.Default in
  let _, c0 = Alloc.alloc ~contention:0 dflt m ~name:"a" ~count:8 in
  let _, c9 = Alloc.alloc ~contention:9 dflt m ~name:"b" ~count:8 in
  Alcotest.(check bool) "queueing adds cost" true (c9 > c0);
  (* The pool has no lock queue. *)
  let pool = Alloc.create Alloc.Pool in
  let _, p0 = Alloc.alloc ~contention:0 pool m ~name:"c" ~count:8 in
  let _, p9 = Alloc.alloc ~contention:9 pool m ~name:"d" ~count:8 in
  Alcotest.(check int) "pool immune to contention" p0 p9

let test_pool_capacity_and_fallback () =
  let m = Mem.create () in
  (* Tiny pool: 100 elements worth of bytes. *)
  let pool = Alloc.create ~pool_bytes:(100 * Mem.elem_bytes) Alloc.Pool in
  let _, c1 = Alloc.alloc pool m ~name:"a" ~count:60 in
  Alcotest.(check int) "no fallback yet" 0 (Alloc.pool_fallbacks pool);
  let _, c2 = Alloc.alloc pool m ~name:"b" ~count:60 in
  Alcotest.(check int) "fallback counted" 1 (Alloc.pool_fallbacks pool);
  Alcotest.(check bool) "fallback pays default cost" true (c2 > c1)

let test_pool_fallback_full_default_pricing () =
  let m = Mem.create () in
  let pool = Alloc.create ~pool_bytes:(100 * Mem.elem_bytes) Alloc.Pool in
  let dflt = Alloc.create Alloc.Default in
  let pooled, _ = Alloc.alloc pool m ~name:"a" ~count:100 in
  (* Exhausted: the fallback must price exactly like the default heap,
     including its (heavier) lock-queue term. *)
  let _, fb = Alloc.alloc ~contention:5 pool m ~name:"b" ~count:100 in
  let _, d = Alloc.alloc ~contention:5 dflt m ~name:"c" ~count:100 in
  Alcotest.(check int) "fallback alloc = default alloc + queue" d fb;
  (* And its free pays the default heap's release cost, while a
     pool-served buffer keeps the pool's cheap free. *)
  let fallback_buf, _ = Alloc.alloc pool m ~name:"d" ~count:100 in
  let dflt_buf, _ = Alloc.alloc dflt m ~name:"e" ~count:100 in
  Alcotest.(check int) "fallback free = default free"
    (Alloc.free dflt dflt_buf) (Alloc.free pool fallback_buf);
  Alcotest.(check bool) "pool-served free stays cheap" true
    (Alloc.free pool pooled < Alloc.free dflt (fst (Alloc.alloc dflt m ~name:"f" ~count:1)))

let test_halloc_oversize_bypasses_slabs () =
  let m = Mem.create () in
  let h = Alloc.create Alloc.Halloc in
  (* 2048 elements = 8 KB > the 4 KB slab: must not carve slabs. *)
  let big1, c1 = Alloc.alloc h m ~name:"big1" ~count:2048 in
  let _, c2 = Alloc.alloc h m ~name:"big2" ~count:2048 in
  Alcotest.(check int) "no slab-carve surcharge difference" c1 c2;
  (* Freeing an oversize buffer must not credit a phantom slab block:
     the next oversize alloc still pays the same full price. *)
  ignore (Alloc.free h big1);
  let _, c3 = Alloc.alloc h m ~name:"big3" ~count:2048 in
  Alcotest.(check int) "no phantom free block after free" c1 c3;
  (* In-slab allocations still behave as before (carve, then reuse). *)
  let small, s1 = Alloc.alloc h m ~name:"s1" ~count:16 in
  let _, s2 = Alloc.alloc h m ~name:"s2" ~count:16 in
  Alcotest.(check bool) "slab reuse unaffected" true (s2 < s1);
  ignore (Alloc.free h small)

let test_pool_reset () =
  let m = Mem.create () in
  let pool = Alloc.create ~pool_bytes:(100 * Mem.elem_bytes) Alloc.Pool in
  ignore (Alloc.alloc pool m ~name:"a" ~count:90);
  Alloc.reset_pool pool;
  Alcotest.(check int) "reset empties pool" 0 (Alloc.pool_used pool);
  ignore (Alloc.alloc pool m ~name:"b" ~count:90);
  Alcotest.(check int) "no fallback after reset" 0 (Alloc.pool_fallbacks pool)

let test_halloc_slab_reuse () =
  let m = Mem.create () in
  let h = Alloc.create Alloc.Halloc in
  (* First allocation carves a slab (extra cost); subsequent same-class
     allocations reuse it. *)
  let _, c1 = Alloc.alloc h m ~name:"a" ~count:16 in
  let _, c2 = Alloc.alloc h m ~name:"b" ~count:16 in
  Alcotest.(check bool) "slab reuse is cheaper" true (c2 < c1)

let test_halloc_free_returns_block () =
  let m = Mem.create () in
  let h = Alloc.create Alloc.Halloc in
  let b, _ = Alloc.alloc h m ~name:"a" ~count:16 in
  ignore (Alloc.free h b);
  Alcotest.(check int) "free counted" 1 (Alloc.frees h)

let test_stats () =
  let m = Mem.create () in
  let a = Alloc.create Alloc.Default in
  ignore (Alloc.alloc a m ~name:"x" ~count:10);
  ignore (Alloc.alloc a m ~name:"y" ~count:20);
  Alcotest.(check int) "allocs" 2 (Alloc.allocs a);
  Alcotest.(check int) "bytes" (30 * Mem.elem_bytes) (Alloc.bytes_served a)

let test_zero_count_clamped () =
  let m = Mem.create () in
  let a = Alloc.create Alloc.Pool in
  let b, _ = Alloc.alloc a m ~name:"z" ~count:0 in
  Alcotest.(check bool) "at least one element" true (Mem.buf_length b >= 1)

let suite =
  [
    Alcotest.test_case "pool cheaper" `Quick test_pool_cheaper_than_default;
    Alcotest.test_case "contention cost" `Quick test_contention_grows_cost;
    Alcotest.test_case "pool fallback" `Quick test_pool_capacity_and_fallback;
    Alcotest.test_case "pool fallback pricing" `Quick
      test_pool_fallback_full_default_pricing;
    Alcotest.test_case "halloc oversize" `Quick
      test_halloc_oversize_bypasses_slabs;
    Alcotest.test_case "pool reset" `Quick test_pool_reset;
    Alcotest.test_case "halloc slab reuse" `Quick test_halloc_slab_reuse;
    Alcotest.test_case "halloc free" `Quick test_halloc_free_returns_block;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "zero count" `Quick test_zero_count_clamped;
  ]
