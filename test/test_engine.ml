(* Engine layer: scenario codecs and identity, session execution,
   cross-run compiled-kernel cache.

   The determinism tests are the cache's safety net: a cached run reuses
   the prepared program (and, per domain, the compiled closures) of an
   earlier run, and must still produce byte-identical metrics and traces
   to a fresh, cacheless run. *)

module H = Dpc_apps.Harness
module R = Dpc_apps.Registry
module M = Dpc_sim.Metrics
module Pragma = Dpc_kir.Pragma
module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session
module Kcache = Dpc_engine.Kcache

let scenario_t =
  Alcotest.testable
    (fun fmt sc -> Format.pp_print_string fmt (Scenario.to_string sc))
    Scenario.equal

let report_str (r : M.report) = Json.to_string (M.to_json r)

(* --- codecs ---------------------------------------------------------------- *)

(* String and JSON codecs round-trip every (app x variant) cell of the
   evaluation matrix. *)
let codec_roundtrip_matrix () =
  List.iter
    (fun (e : R.entry) ->
      List.iter
        (fun v ->
          let sc = Scenario.make ~app:e.R.name v in
          Alcotest.check scenario_t
            (Scenario.label sc ^ " of_string/to_string")
            sc
            (Scenario.of_string (Scenario.to_string sc));
          Alcotest.check scenario_t
            (Scenario.label sc ^ " of_json/to_json")
            sc
            (Scenario.of_json (Scenario.to_json sc));
          Alcotest.(check string)
            (Scenario.label sc ^ " hash stable")
            (Scenario.hash sc)
            (Scenario.hash (Scenario.of_string (Scenario.key sc))))
        H.all_variants)
    R.all

(* A scenario with every optional field populated survives both codecs,
   including config overrides, an explicit policy and app extras. *)
let codec_roundtrip_rich () =
  let sc =
    Scenario.make ~policy:(Dpc.Config_select.Explicit (26, 128))
      ~alloc:Dpc_alloc.Allocator.Halloc ~cfg:"test-device"
      ~cfg_overrides:[ ("num_smx", 4); ("device_launch_latency", 2_000) ]
      ~scale:12 ~seed:99 ~scheduler:Dpc_sim.Timing.Fcfs
      ~interp:Dpc_sim.Interp.Reference
      ~extras:[ ("max_nodes", "40000"); ("dataset", "dataset2") ]
      ~app:"TD" (H.Cons Pragma.Block)
  in
  Alcotest.check scenario_t "of_string/to_string" sc
    (Scenario.of_string (Scenario.to_string sc));
  Alcotest.check scenario_t "of_json/to_json" sc
    (Scenario.of_json (Scenario.to_json sc))

(* [make] canonicalizes: app casing, override/extra order — so structural
   equality coincides with key equality. *)
let canonical_identity () =
  let a =
    Scenario.make ~app:"sssp"
      ~cfg_overrides:[ ("num_smx", 4); ("issue_rate", 2) ]
      (H.Cons Pragma.Grid)
  in
  let b =
    Scenario.make ~app:"SSSP"
      ~cfg_overrides:[ ("issue_rate", 2); ("num_smx", 4) ]
      (H.Cons Pragma.Grid)
  in
  Alcotest.check scenario_t "field order canonicalized" a b;
  Alcotest.(check string) "keys equal" (Scenario.key a) (Scenario.key b);
  Alcotest.(check string) "hashes equal" (Scenario.hash a) (Scenario.hash b)

let rejects () =
  let inv name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  inv "unknown app" (fun () -> Scenario.make ~app:"nope" H.Basic);
  inv "unknown preset" (fun () ->
      Scenario.make ~app:"SSSP" ~cfg:"gtx480" H.Basic);
  inv "unknown cfg field" (fun () ->
      Scenario.make ~app:"SSSP" ~cfg_overrides:[ ("nope", 1) ] H.Basic);
  inv "unknown key" (fun () ->
      Scenario.of_string "app=SSSP,variant=no-dp,bogus=1");
  inv "bad alloc" (fun () ->
      Scenario.of_string "app=SSSP,variant=no-dp,alloc=slab");
  inv "missing app" (fun () -> Scenario.of_string "variant=no-dp");
  inv "missing variant" (fun () -> Scenario.of_string "app=SSSP")

(* The scenario extras lint: unknown keys and malformed values are
   refused at construction (string and JSON codecs included) with a
   one-line actionable message naming the valid keys. *)
let extras_lint () =
  let msg name f =
    match f () with
    | exception Invalid_argument m -> m
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let assert_in name needle m =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S in %S" name needle m)
      true (contains m needle)
  in
  (* Unknown key on an app that declares extras: the valid keys are
     listed so the fix is in the message. *)
  let m =
    msg "unknown key" (fun () ->
        Scenario.make ~app:"TD" ~extras:[ ("max_node", "5") ] H.Basic)
  in
  assert_in "unknown key" "unknown extra \"max_node\"" m;
  assert_in "unknown key" "max_nodes" m;
  assert_in "unknown key" "dataset" m;
  (* Unknown key on an app that takes none says so. *)
  let m =
    msg "extras-free app" (fun () ->
        Scenario.make ~app:"SSSP" ~extras:[ ("bogus", "1") ] H.Basic)
  in
  assert_in "extras-free app" "this app takes none" m;
  (* Malformed values: a non-integer Xint, an out-of-set Xenum token. *)
  let m =
    msg "bad int" (fun () ->
        Scenario.make ~app:"TD" ~extras:[ ("max_nodes", "lots") ] H.Basic)
  in
  assert_in "bad int" "expected an integer" m;
  let m =
    msg "bad enum" (fun () ->
        Scenario.make ~app:"TH" ~extras:[ ("dataset", "dataset9") ] H.Basic)
  in
  assert_in "bad enum" "expected one of" m;
  assert_in "bad enum" "dataset1, dataset2" m;
  (* The codecs route through the same lint. *)
  let m =
    msg "string codec" (fun () ->
        Scenario.of_string "app=TD,variant=no-dp,x.max_nodes=lots")
  in
  assert_in "string codec" "expected an integer" m;
  (* And well-formed extras still pass. *)
  ignore
    (Scenario.make ~app:"TD"
       ~extras:[ ("max_nodes", "4000"); ("dataset", "dataset1") ]
       H.Basic
      : Scenario.t)

(* The sweep-file decoder takes bare lists, {"scenarios": ...} objects,
   and mixes of canonical strings and scenario objects. *)
let sweep_decode () =
  let sc = Scenario.make ~app:"SSSP" ~scale:300 (H.Cons Pragma.Grid) in
  let as_str = Json.String (Scenario.key sc) in
  let decoded =
    Scenario.sweep_of_json (Json.List [ as_str; Scenario.to_json sc ])
  in
  Alcotest.(check int) "two scenarios" 2 (List.length decoded);
  List.iter
    (fun d -> Alcotest.check scenario_t "sweep element" sc d)
    decoded;
  let wrapped =
    Scenario.sweep_of_json (Json.Obj [ ("scenarios", Json.List [ as_str ]) ])
  in
  Alcotest.(check int) "wrapped list" 1 (List.length wrapped)

(* --- sessions and the cache ------------------------------------------------ *)

let sssp_grid = Scenario.make ~app:"SSSP" ~scale:400 (H.Cons Pragma.Grid)

(* Same scenario twice in one session: the second run is a cache hit and
   still reports byte-identical metrics. *)
let cache_hit_deterministic () =
  let s = Session.create () in
  let r1 = Session.run s sssp_grid in
  let r2 = Session.run s sssp_grid in
  Alcotest.(check string) "metrics identical across hit" (report_str r1)
    (report_str r2);
  let stats = Session.cache_stats s in
  Alcotest.(check int) "one miss" 1 stats.Kcache.misses;
  Alcotest.(check int) "one hit" 1 stats.Kcache.hits

(* A cached session and a fresh cacheless session produce byte-identical
   metrics and Chrome traces for the same scenario. *)
let fresh_sessions_identical () =
  let capture () =
    let trace = ref "" in
    let inspect _sc dev =
      let num_smx = (Dpc_sim.Device.config dev).Dpc_gpu.Config.num_smx in
      trace :=
        Dpc_prof.Chrome_trace.to_string ~num_smx (Dpc_sim.Device.profile dev)
    in
    (trace, inspect)
  in
  let trace_a, inspect_a = capture () in
  let sa = Session.create ~inspect:inspect_a () in
  (* Warm the cache, then run the scenario we compare (a hit). *)
  let (_ : M.report) = Session.run sa sssp_grid in
  let ra = Session.run sa sssp_grid in
  let trace_b, inspect_b = capture () in
  let sb = Session.create ~cache:false ~inspect:inspect_b () in
  let rb = Session.run sb sssp_grid in
  Alcotest.(check string) "metrics identical across sessions"
    (report_str ra) (report_str rb);
  Alcotest.(check bool) "trace captured" true (String.length !trace_a > 0);
  Alcotest.(check string) "traces identical across sessions" !trace_a
    !trace_b

(* run_all: outcomes keep submission order, failures are captured without
   aborting siblings, and the cache counts one miss per program family. *)
let run_all_outcomes () =
  let ok1 = Scenario.make ~app:"SSSP" ~scale:300 ~seed:1 (H.Cons Pragma.Grid) in
  let ok2 = Scenario.make ~app:"SSSP" ~scale:300 ~seed:2 (H.Cons Pragma.Grid) in
  (* Bogus extras are now refused eagerly at [make] (see [extras_lint]),
     so the runtime failure here is an explicit policy with a zero block
     dim: constructible, but the device math rejects it mid-run. *)
  let bad =
    Scenario.make ~app:"SSSP" ~scale:300
      ~policy:(Dpc.Config_select.Explicit (1, 0))
      (H.Cons Pragma.Grid)
  in
  let s = Session.create () in
  match Session.run_all s [ ok1; bad; ok2 ] with
  | [ o1; o_bad; o2 ] ->
    Alcotest.(check bool) "first ok" true (Result.is_ok o1.Session.result);
    Alcotest.(check bool) "third ok" true (Result.is_ok o2.Session.result);
    (match o_bad.Session.result with
    | Error (Dpc_sim.Runtime.Sim_error _) -> ()
    | Error e -> Alcotest.failf "unexpected error %s" (Printexc.to_string e)
    | Ok _ -> Alcotest.fail "zero-thread policy accepted");
    Alcotest.check scenario_t "outcome tags scenario" bad
      o_bad.Session.scenario
  | _ -> Alcotest.fail "outcome arity"

(* A mixed sweep through a parallel session: per-family misses, per-run
   hits, and the same reports as a serial cacheless sweep. *)
let parallel_sweep_matches_serial () =
  let scs =
    List.concat_map
      (fun scale ->
        List.map
          (fun seed ->
            Scenario.make ~app:"SSSP" ~scale ~seed (H.Cons Pragma.Grid))
          [ 1; 2 ])
      [ 300; 400 ]
    @ [ Scenario.make ~app:"SpMV" ~scale:200 (H.Cons Pragma.Block) ]
  in
  let par = Session.create ~jobs:2 () in
  let ser = Session.create ~cache:false () in
  let rp = List.map Session.report (Session.run_all par scs) in
  let rs = List.map Session.report (Session.run_all ser scs) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "run %d identical" i)
        (report_str a) (report_str b))
    (List.combine rp rs);
  let stats = Session.cache_stats par in
  Alcotest.(check int) "two program families" 2 stats.Kcache.misses;
  Alcotest.(check int) "rest are hits" (List.length scs - 2)
    stats.Kcache.hits

(* The stealing scheduler at a different job count must be invisible in
   the results: outcomes keep submission order and every report is
   byte-identical to a serial, cacheless session's.  The sweep mixes
   apps and scales so the cost estimates genuinely differ. *)
let steal_sweep_matches_serial () =
  let scs =
    List.concat_map
      (fun scale ->
        List.map
          (fun seed ->
            Scenario.make ~app:"SSSP" ~scale ~seed (H.Cons Pragma.Grid))
          [ 1; 2 ])
      [ 300; 400 ]
    @ [
        Scenario.make ~app:"SpMV" ~scale:200 (H.Cons Pragma.Block);
        Scenario.make ~app:"GC" ~scale:8 (H.Cons Pragma.Warp);
      ]
  in
  let steal = Session.create ~jobs:3 ~sched:Dpc_util.Pool.Steal () in
  let ser = Session.create ~cache:false () in
  let op = Session.run_all steal scs in
  let os = Session.run_all ser scs in
  List.iteri
    (fun i (o, sc) ->
      Alcotest.check scenario_t
        (Printf.sprintf "outcome %d keeps submission order" i)
        sc o.Session.scenario)
    (List.combine op scs);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "run %d identical under stealing" i)
        (report_str (Session.report a))
        (report_str (Session.report b)))
    (List.combine op os);
  Alcotest.(check string) "session reports its scheduler" "steal"
    (Dpc_util.Pool.sched_to_string (Session.sched steal))

(* strict_check with jobs > 1: the strict finalize hook is domain-local,
   so it must be (and is) installed around each task inside the worker
   domains — a program built by a worker is vetted there.  The [inspect]
   hook runs inside the task, in the worker, so finalizing a broken
   kernel from it stands in for a worker-built bad program (every
   registry app is lint-clean).  Afterwards the submitting domain's hook
   must be back to the default. *)
let strict_check_parallel_workers () =
  let bad () =
    let open Dpc_kir.Build in
    kernel ~name:"strict_bad" ~params:[ p "n" ]
      [ if_then (tid <: v "n") [ sync ] ]
  in
  let inspect (sc : Scenario.t) _dev =
    if sc.Scenario.seed = Some 2 then Dpc_kir.Kernel.finalize (bad ())
  in
  let seeds = [ 1; 2; 3; 4 ] in
  let scs =
    List.map
      (fun seed ->
        Scenario.make ~app:"SSSP" ~scale:300 ~seed (H.Cons Pragma.Grid))
      seeds
  in
  let s = Session.create ~strict_check:true ~jobs:2 ~inspect () in
  let outcomes = Session.run_all s scs in
  List.iter2
    (fun seed (o : Session.outcome) ->
      match o.Session.result with
      | Ok _ ->
        if seed = 2 then
          Alcotest.fail "bad kernel passed strict finalize in a worker"
      | Error (Dpc_check.Check.Check_error _) ->
        Alcotest.(check int) "only seed 2 flagged" 2 seed
      | Error e ->
        Alcotest.failf "seed %d: unexpected error %s" seed
          (Printexc.to_string e))
    seeds outcomes;
  (* The hook is per-task: after run_all the submitting domain is back to
     the permissive default, so the same kernel finalizes fine. *)
  Dpc_kir.Kernel.finalize (bad ())

let suite =
  [
    Alcotest.test_case "codec roundtrip apps x variants" `Quick
      codec_roundtrip_matrix;
    Alcotest.test_case "codec roundtrip all fields" `Quick
      codec_roundtrip_rich;
    Alcotest.test_case "canonical identity" `Quick canonical_identity;
    Alcotest.test_case "codec rejects" `Quick rejects;
    Alcotest.test_case "extras lint" `Quick extras_lint;
    Alcotest.test_case "sweep decode" `Quick sweep_decode;
    Alcotest.test_case "cache hit deterministic" `Quick
      cache_hit_deterministic;
    Alcotest.test_case "fresh sessions identical" `Quick
      fresh_sessions_identical;
    Alcotest.test_case "run_all outcomes" `Quick run_all_outcomes;
    Alcotest.test_case "parallel sweep matches serial" `Quick
      parallel_sweep_matches_serial;
    Alcotest.test_case "steal sweep matches serial" `Quick
      steal_sweep_matches_serial;
    Alcotest.test_case "strict check inside workers" `Quick
      strict_check_parallel_workers;
  ]
