(* Tests for the experiment harness's aggregation and rendering, using
   synthetic reports (running the real suite takes minutes and is covered
   by bin/experiments.exe). *)

module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Suite = Dpc_experiments.Suite
module Figs = Dpc_experiments.Figs7_10
module Table = Dpc_util.Table
module Pragma = Dpc_kir.Pragma

let report ~cycles ~launches ~eff ~occ ~dram : M.report =
  {
    M.cycles;
    time_ms = cycles /. 706_000.0;
    host_launches = 1;
    device_launches = launches;
    warp_efficiency = eff;
    occupancy = occ;
    dram_transactions = dram;
    l2_hits = 0;
    bank_conflict_replays = 0;
    mshr_stalls = 0;
    alloc_calls = 0;
    alloc_cycles = 0;
    pool_fallbacks = 0;
    virtualized_launches = 0;
    max_pending = 1;
    swapped_syncs = 0;
    max_depth = 1;
    total_grids = launches + 1;
  }

let fake_row name : Suite.row =
  {
    Suite.app = name;
    dataset = "synthetic";
    results =
      [
        (H.Basic, report ~cycles:1000.0 ~launches:100 ~eff:0.3 ~occ:0.1 ~dram:1000);
        (H.Flat, report ~cycles:500.0 ~launches:0 ~eff:0.2 ~occ:0.2 ~dram:400);
        (H.Cons Pragma.Warp,
         report ~cycles:250.0 ~launches:10 ~eff:0.6 ~occ:0.3 ~dram:300);
        (H.Cons Pragma.Block,
         report ~cycles:200.0 ~launches:5 ~eff:0.7 ~occ:0.5 ~dram:250);
        (H.Cons Pragma.Grid,
         report ~cycles:100.0 ~launches:1 ~eff:0.8 ~occ:0.8 ~dram:200);
      ];
  }

let suite_data = [ fake_row "A"; fake_row "B" ]

let test_speedups () =
  let row = List.hd suite_data in
  Alcotest.(check (float 1e-9)) "flat speedup" 2.0
    (Suite.speedup_over_basic row H.Flat);
  Alcotest.(check (float 1e-9)) "grid speedup" 10.0
    (Suite.speedup_over_basic row (H.Cons Pragma.Grid))

let test_mean_speedups_geomean () =
  let means = Suite.mean_speedups suite_data in
  (* identical rows -> geomean equals the per-row speedup *)
  Alcotest.(check (float 1e-9)) "grid mean" 10.0
    (List.assoc (H.Cons Pragma.Grid) means)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_fig7_table () =
  let t = Figs.fig7 suite_data in
  let s = Table.render t in
  Alcotest.(check bool) "has benchmark rows" true (contains s "| A ");
  Alcotest.(check bool) "has geomean row" true (contains s "geomean");
  Alcotest.(check bool) "grid speedup rendered" true (contains s "10.00")

let test_fig8_table () =
  let s = Table.render (Figs.fig8 suite_data) in
  Alcotest.(check bool) "efficiency with launches" true
    (contains s "30.0% (100)")

let test_fig10_ratios () =
  let s = Table.render (Figs.fig10 suite_data) in
  (* 200/1000 = 20% for grid *)
  Alcotest.(check bool) "dram ratio" true (contains s "20.0%")

let test_summary_table () =
  let s = Table.render (Figs.summary suite_data) in
  Alcotest.(check bool) "vs basic and vs flat" true
    (contains s "10.00" && contains s "5.00")

let suite =
  [
    Alcotest.test_case "speedups" `Quick test_speedups;
    Alcotest.test_case "geomean" `Quick test_mean_speedups_geomean;
    Alcotest.test_case "fig7 table" `Quick test_fig7_table;
    Alcotest.test_case "fig8 table" `Quick test_fig8_table;
    Alcotest.test_case "fig10 ratios" `Quick test_fig10_ratios;
    Alcotest.test_case "summary table" `Quick test_summary_table;
  ]
