(* Tests for the GPU model substrate: device config math and the simulated
   global memory. *)

module Cfg = Dpc_gpu.Config
module Mem = Dpc_gpu.Memory

let cfg = Cfg.k20c

let test_warps_per_block () =
  Alcotest.(check int) "1 thread" 1 (Cfg.warps_per_block cfg ~block_dim:1);
  Alcotest.(check int) "32" 1 (Cfg.warps_per_block cfg ~block_dim:32);
  Alcotest.(check int) "33" 2 (Cfg.warps_per_block cfg ~block_dim:33);
  Alcotest.(check int) "1024" 32 (Cfg.warps_per_block cfg ~block_dim:1024)

let test_blocks_per_smx () =
  (* 256-thread blocks: 8 warps each, 64-warp limit -> 8 blocks *)
  Alcotest.(check int) "256" 8 (Cfg.blocks_per_smx cfg ~block_dim:256);
  (* 32-thread blocks: warp limit would allow 64, block limit caps at 16 *)
  Alcotest.(check int) "32" 16 (Cfg.blocks_per_smx cfg ~block_dim:32);
  (* 1024-thread blocks: 32 warps -> 2 *)
  Alcotest.(check int) "1024" 2 (Cfg.blocks_per_smx cfg ~block_dim:1024)

let test_device_fill () =
  Alcotest.(check int) "fill 256" (13 * 8)
    (Cfg.device_fill_blocks cfg ~block_dim:256)

let test_mem_alloc_zeroed () =
  let m = Mem.create () in
  let b = Mem.alloc_int m ~name:"z" 100 in
  Alcotest.(check int) "zeroed" 0 (Mem.read_int b 99);
  let f = Mem.alloc_float m ~name:"zf" 10 in
  Alcotest.(check (float 0.0)) "zeroed float" 0.0 (Mem.read_float f 0)

let test_mem_base_alignment () =
  let m = Mem.create () in
  let a = Mem.alloc_int m ~name:"a" 3 in
  let b = Mem.alloc_int m ~name:"b" 3 in
  Alcotest.(check int) "a aligned" 0 (a.Mem.base mod 128);
  Alcotest.(check int) "b aligned" 0 (b.Mem.base mod 128);
  Alcotest.(check bool) "disjoint" true
    (b.Mem.base >= a.Mem.base + (3 * Mem.elem_bytes))

let test_mem_bounds () =
  let m = Mem.create () in
  let b = Mem.alloc_int m ~name:"b" 4 in
  Alcotest.check_raises "read oob"
    (Mem.Out_of_bounds "buffer \"b\" (4 elements): index 4") (fun () ->
      ignore (Mem.read_int b 4));
  Alcotest.check_raises "negative"
    (Mem.Out_of_bounds "buffer \"b\" (4 elements): index -1") (fun () ->
      Mem.write_int b (-1) 0)

let test_mem_type_coercion () =
  let m = Mem.create () in
  let b = Mem.alloc_float m ~name:"f" 2 in
  Mem.write_int b 0 3;
  Alcotest.(check (float 1e-9)) "int into float buffer" 3.0 (Mem.read_float b 0)

let test_mem_roundtrip_arrays () =
  let m = Mem.create () in
  let b = Mem.of_int_array m ~name:"x" [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "contents" [| 5; 6; 7 |] (Mem.int_contents b)

let test_mem_addr () =
  let m = Mem.create () in
  let b = Mem.alloc_int m ~name:"a" 10 in
  Alcotest.(check int) "stride 4" (Mem.addr b 0 + 4) (Mem.addr b 1)

(* Property: allocations never overlap. *)
let prop_no_overlap =
  QCheck.Test.make ~count:100 ~name:"allocations never overlap"
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 300))
    (fun sizes ->
      let m = Mem.create () in
      let bufs =
        List.mapi (fun i n -> Mem.alloc_int m ~name:(string_of_int i) n) sizes
      in
      let ranges =
        List.map
          (fun (b : Mem.buf) ->
            (b.Mem.base, b.Mem.base + (Mem.buf_length b * Mem.elem_bytes)))
          bufs
      in
      List.for_all
        (fun (lo1, hi1) ->
          List.for_all
            (fun (lo2, hi2) -> hi1 <= lo2 || hi2 <= lo1 || (lo1, hi1) = (lo2, hi2))
            ranges)
        ranges)

let suite =
  [
    Alcotest.test_case "warps per block" `Quick test_warps_per_block;
    Alcotest.test_case "blocks per smx" `Quick test_blocks_per_smx;
    Alcotest.test_case "device fill" `Quick test_device_fill;
    Alcotest.test_case "alloc zeroed" `Quick test_mem_alloc_zeroed;
    Alcotest.test_case "base alignment" `Quick test_mem_base_alignment;
    Alcotest.test_case "bounds" `Quick test_mem_bounds;
    Alcotest.test_case "type coercion" `Quick test_mem_type_coercion;
    Alcotest.test_case "array roundtrip" `Quick test_mem_roundtrip_arrays;
    Alcotest.test_case "addr stride" `Quick test_mem_addr;
    QCheck_alcotest.to_alcotest prop_no_overlap;
  ]
