(* Tests for Dpc_util: RNG determinism, Vec, Heap, Stats, Table. *)

open Dpc_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17);
    let w = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (w >= 5 && w <= 9)
  done

let test_rng_power_law_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.power_law r ~lo:1 ~hi:100 ~alpha:2.0 in
    Alcotest.(check bool) "in [1,100]" true (v >= 1 && v <= 100)
  done

let test_rng_power_law_skew () =
  (* With alpha = 2 the head must be much heavier than the tail. *)
  let r = Rng.create 3 in
  let small = ref 0 and large = ref 0 in
  for _ = 1 to 10_000 do
    let v = Rng.power_law r ~lo:1 ~hi:1000 ~alpha:2.0 in
    if v <= 10 then incr small;
    if v >= 500 then incr large
  done;
  Alcotest.(check bool) "head heavier than tail" true (!small > 10 * !large)

let test_rng_split_independent () =
  let r = Rng.create 1 in
  let r2 = Rng.split r in
  let x = Rng.int r 1000 and y = Rng.int r2 1000 in
  Alcotest.(check bool) "streams differ (probabilistically)" true
    (x <> y || Rng.int r 1000 <> Rng.int r2 1000)

let test_rng_shuffle_permutation () =
  let r = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "pop" (99 * 99) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let test_vec_iter_order () =
  let v = Vec.of_array ~dummy:0 [| 3; 1; 4; 1; 5 |] in
  let out = ref [] in
  Vec.iter (fun x -> out := x :: !out) v;
  Alcotest.(check (list int)) "order" [ 3; 1; 4; 1; 5 ] (List.rev !out)

let test_heap_sorted_output () =
  let h = Heap.create () in
  let r = Rng.create 5 in
  let items = List.init 500 (fun i -> (Rng.float r, i)) in
  List.iter (fun (p, v) -> Heap.push h p v) items;
  let last = ref neg_infinity in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop_min h with
    | None -> continue := false
    | Some (p, _) ->
      Alcotest.(check bool) "non-decreasing" true (p >= !last);
      last := p;
      incr n
  done;
  Alcotest.(check int) "all popped" 500 !n

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 1.0 "c";
  let pop () = match Heap.pop_min h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_stats_mean_geomean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" 1.0
    (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5.0 ])

let test_histogram_bucket_boundaries () =
  (* 4 buckets over [0, 8]: width 2, boundaries at 2/4/6, and the top
     edge is inclusive — a sample equal to [hi] lands in the last
     bucket instead of being dropped. *)
  let counts =
    Stats.histogram ~buckets:4 ~lo:0 ~hi:8 [ 0; 1; 2; 3; 4; 6; 7; 8 ]
  in
  Alcotest.(check (array int)) "boundaries" [| 2; 2; 1; 3 |] counts;
  (* Out-of-range samples are still dropped on both sides. *)
  let counts = Stats.histogram ~buckets:4 ~lo:0 ~hi:8 [ -1; 9; 8; 0 ] in
  Alcotest.(check (array int)) "out of range dropped" [| 1; 0; 0; 1 |] counts

let test_histogram_all_samples_counted () =
  (* Every in-range sample lands in exactly one bucket. *)
  let samples = List.init 101 Fun.id in
  let counts = Stats.histogram ~buckets:7 ~lo:0 ~hi:100 samples in
  Alcotest.(check int) "total preserved" 101
    (Array.fold_left ( + ) 0 counts)

let test_table_render () =
  let t =
    Table.create ~title:"t" ~headers:[ "a"; "b" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0
    && String.sub s 0 7 = "=== t =");
  Alcotest.(check int) "row count" 2 (List.length (Table.rows t))

let test_table_arity_check () =
  let t = Table.create ~title:"t" ~headers:[ "a"; "b" ] () in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_wsdeque_owner_lifo () =
  let d = Wsdeque.create () in
  Alcotest.(check bool) "fresh empty" true (Wsdeque.is_empty d);
  Alcotest.(check (option int)) "pop empty" None (Wsdeque.pop_bottom d);
  List.iter (Wsdeque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Wsdeque.length d);
  (* The owner end is a stack: most recently pushed comes back first. *)
  Alcotest.(check (option int)) "lifo 1" (Some 3) (Wsdeque.pop_bottom d);
  Alcotest.(check (option int)) "lifo 2" (Some 2) (Wsdeque.pop_bottom d);
  Alcotest.(check (option int)) "lifo 3" (Some 1) (Wsdeque.pop_bottom d);
  Alcotest.(check (option int)) "drained" None (Wsdeque.pop_bottom d)

let test_wsdeque_steal_fifo () =
  let d = Wsdeque.create () in
  Alcotest.(check (option int)) "steal empty" None (Wsdeque.steal_top d);
  List.iter (Wsdeque.push_bottom d) [ 1; 2; 3; 4 ];
  (* Thieves take the oldest element — the opposite end of the owner. *)
  Alcotest.(check (option int)) "steal 1" (Some 1) (Wsdeque.steal_top d);
  Alcotest.(check (option int)) "steal 2" (Some 2) (Wsdeque.steal_top d);
  Alcotest.(check (option int)) "owner still lifo" (Some 4)
    (Wsdeque.pop_bottom d);
  Alcotest.(check (option int)) "meet in middle" (Some 3)
    (Wsdeque.steal_top d);
  Alcotest.(check bool) "empty again" true (Wsdeque.is_empty d)

let test_wsdeque_growth () =
  (* Force the ring past its initial capacity, with interleaved pops so
     top/bottom wrap around, then check nothing was lost or reordered. *)
  let d = Wsdeque.create ~capacity:2 () in
  for i = 0 to 199 do
    Wsdeque.push_bottom d i;
    if i mod 3 = 0 then ignore (Wsdeque.steal_top d)
  done;
  let n = Wsdeque.length d in
  let drained = List.init n (fun _ -> Option.get (Wsdeque.steal_top d)) in
  Alcotest.(check bool) "steals ascending" true
    (List.sort compare drained = drained);
  Alcotest.(check (option int)) "fully drained" None (Wsdeque.pop_bottom d)

let test_wsdeque_concurrent_drain () =
  (* One owner popping, three thieves stealing: every element is taken
     exactly once.  Exercises the mutex under real domain contention. *)
  let d = Wsdeque.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Wsdeque.push_bottom d i
  done;
  let seen = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    seen.(i) <- Atomic.make 0
  done;
  let take pop () =
    let got = ref 0 in
    let rec loop () =
      match pop d with
      | Some i ->
        Atomic.incr seen.(i);
        incr got;
        loop ()
      | None -> !got
    in
    loop ()
  in
  let thieves =
    List.init 3 (fun _ -> Domain.spawn (take Wsdeque.steal_top))
  in
  let own = take Wsdeque.pop_bottom () in
  let total =
    List.fold_left (fun acc t -> acc + Domain.join t) own thieves
  in
  Alcotest.(check int) "all taken" n total;
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "element %d taken %d times" i (Atomic.get c))
    seen

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng power-law bounds" `Quick test_rng_power_law_bounds;
    Alcotest.test_case "rng power-law skew" `Quick test_rng_power_law_skew;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "vec push/get/pop" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec iter order" `Quick test_vec_iter_order;
    Alcotest.test_case "heap sorted" `Quick test_heap_sorted_output;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "stats mean/geomean" `Quick test_stats_mean_geomean;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "histogram boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "histogram totals" `Quick
      test_histogram_all_samples_counted;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "wsdeque owner lifo" `Quick test_wsdeque_owner_lifo;
    Alcotest.test_case "wsdeque steal fifo" `Quick test_wsdeque_steal_fifo;
    Alcotest.test_case "wsdeque growth" `Quick test_wsdeque_growth;
    Alcotest.test_case "wsdeque concurrent drain" `Quick
      test_wsdeque_concurrent_drain;
  ]
