(* Serve layer: wire framing, dpc-serve-v1 codecs, the persistent
   on-disk program cache, online cost learning, and the daemon itself
   (run in-process on a second domain against a temp socket).

   The load-bearing properties: a sweep served by the daemon is
   record-wise byte-identical to the same sweep run directly; a store
   directory warm-starts a cold process to the same bytes; and no
   client-side failure (bad request, quota, timeout, vanishing peer)
   kills the daemon. *)

module H = Dpc_apps.Harness
module Pragma = Dpc_kir.Pragma
module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session
module Kcache = Dpc_engine.Kcache
module Pstore = Dpc_engine.Pstore
module Costs = Dpc_engine.Costs
module Export = Dpc_experiments.Export
module Framing = Dpc_util.Framing
module Protocol = Dpc_serve.Protocol
module Server = Dpc_serve.Server
module Client = Dpc_serve.Client

let outcome_str (o : Session.outcome) = Json.to_string (Export.outcome_json o)

let mk_temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir prefix f =
  let dir = mk_temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- framing ---------------------------------------------------------------- *)

(* Frames split arbitrarily across feeds reassemble exactly, CR-LF and
   bare-LF alike, and a trailing partial line stays pending. *)
let framing_reassembly () =
  let t = Framing.create () in
  Alcotest.(check (list string)) "first chunk holds one frame"
    [ "alpha" ]
    (Framing.feed_string t "alpha\nbr");
  Alcotest.(check int) "partial stays buffered" 2 (Framing.pending t);
  Alcotest.(check (list string)) "split frame completes"
    [ "bravo"; "charlie" ]
    (Framing.feed_string t "avo\r\ncharlie\n");
  Alcotest.(check (list string)) "empty feed yields nothing" []
    (Framing.feed_string t "");
  Alcotest.(check (list string)) "empty line is an empty frame" [ "" ]
    (Framing.feed_string t "\n");
  Alcotest.(check int) "nothing pending" 0 (Framing.pending t)

let framing_byte_at_a_time () =
  let t = Framing.create () in
  let input = "one\ntwo\r\nthree\n" in
  let got = ref [] in
  String.iter
    (fun c ->
      got := !got @ Framing.feed_string t (String.make 1 c))
    input;
  Alcotest.(check (list string)) "byte-at-a-time framing"
    [ "one"; "two"; "three" ] !got

(* --- protocol codecs -------------------------------------------------------- *)

let sc_a = Scenario.make ~app:"SSSP" ~scale:300 (H.Cons Pragma.Grid)
let sc_b = Scenario.make ~app:"SpMV" ~scale:200 (H.Cons Pragma.Block)

let protocol_request_roundtrip () =
  let reqs =
    [
      Protocol.Sweep { id = "r1"; scenarios = [ sc_a; sc_b ]; timeout_s = Some 2.5 };
      Protocol.Sweep { id = "r2"; scenarios = [ sc_a ]; timeout_s = None };
      Protocol.Stats { id = "s" };
      Protocol.Ping { id = "p" };
      Protocol.Shutdown { id = "q" };
    ]
  in
  List.iter
    (fun r ->
      let line = Protocol.frame (Protocol.request_to_json r) in
      match Protocol.request_of_string (String.trim line) with
      | Error e -> Alcotest.failf "roundtrip rejected %s: %s" line e
      | Ok r' ->
        Alcotest.(check string)
          "request roundtrips"
          (Json.to_string (Protocol.request_to_json r))
          (Json.to_string (Protocol.request_to_json r')))
    reqs;
  (match Protocol.request_of_string "{\"verb\":\"sweep\",\"id\":\"x\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sweep without scenarios must be rejected");
  (match Protocol.request_of_string "{\"v\":\"dpc-serve-v9\",\"verb\":\"ping\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong protocol version must be rejected");
  match Protocol.request_of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-JSON must be rejected"

let protocol_event_roundtrip () =
  let events =
    [
      Protocol.Outcome
        {
          id = "r1";
          seq = 3;
          total = 7;
          elapsed_s = 0.25;
          outcome = Json.Obj [ ("key", Json.String "k") ];
        };
      Protocol.Done
        { id = "r1"; runs = 7; failed = 1; skipped = 2; timed_out = true;
          elapsed_s = 1.5 };
      Protocol.Error_event { id = "r2"; code = "quota"; message = "too big" };
      Protocol.Stats_event { id = "s"; stats = Json.Obj [ ("x", Json.Int 1) ] };
      Protocol.Pong { id = "p" };
      Protocol.Bye { id = "q" };
    ]
  in
  List.iter
    (fun e ->
      let line = Protocol.frame (Protocol.event_to_json e) in
      match Protocol.event_of_string (String.trim line) with
      | Error msg -> Alcotest.failf "event roundtrip rejected %s: %s" line msg
      | Ok e' ->
        Alcotest.(check string)
          "event roundtrips"
          (Json.to_string (Protocol.event_to_json e))
          (Json.to_string (Protocol.event_to_json e')))
    events

(* --- online cost learning --------------------------------------------------- *)

(* Observations override the static model: when measured wall clocks
   invert the static ordering, the estimates follow the measurement. *)
let costs_inversion () =
  let c = Costs.create () in
  (* Static model says "a" is 10x the work of "b"; the wall clock says
     the opposite. *)
  Costs.record c ~key:"a" ~static:10. ~seconds:0.001;
  Costs.record c ~key:"b" ~static:1. ~seconds:0.1;
  Alcotest.(check int) "two observations" 2 (Costs.observations c);
  let ea = Costs.estimate c ~key:"a" ~static:10. in
  let eb = Costs.estimate c ~key:"b" ~static:1. in
  Alcotest.(check bool) "observed ordering wins" true (eb > ea);
  (* Never-seen keys keep the static estimate, on the same scale. *)
  Alcotest.(check (float 1e-9)) "unseen key keeps static" 5.
    (Costs.estimate c ~key:"c" ~static:5.);
  (* Garbage durations are ignored. *)
  Costs.record c ~key:"d" ~static:1. ~seconds:0.;
  Costs.record c ~key:"e" ~static:1. ~seconds:Float.nan;
  Alcotest.(check int) "garbage ignored" 2 (Costs.observations c)

(* A session's cost estimate switches from the static model to the
   calibrated observation once a scenario has run: a second sweep seeds
   the stealing scheduler by measured cost. *)
let session_cost_learning () =
  let s = Session.create () in
  let small = Scenario.make ~app:"SSSP" ~scale:100 (H.Cons Pragma.Grid) in
  let big = Scenario.make ~app:"SSSP" ~scale:1000 (H.Cons Pragma.Grid) in
  Alcotest.(check int) "no observations yet" 0 (Session.observed_costs s);
  let o_small = Session.run_outcome s small in
  let o_big = Session.run_outcome s big in
  Alcotest.(check int) "both runs observed" 2 (Session.observed_costs s);
  (* Ratio guard against scheduler noise: only assert the ordering when
     the measured wall clocks are unambiguous. *)
  if o_big.Session.elapsed_s > 1.5 *. o_small.Session.elapsed_s then
    Alcotest.(check bool)
      "second-sweep seeding follows measured cost" true
      (Session.cost s big > Session.cost s small)

(* --- persistent store ------------------------------------------------------- *)

let run_one ?persist sc =
  let s = Session.create ?persist () in
  let o = Session.run_outcome s sc in
  (s, outcome_str o)

(* A store written by one session warm-starts a second, byte-identically:
   the second session builds nothing (disk hits only). *)
let pstore_roundtrip () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let sa, ra = run_one ~persist:dir sc_a in
  let stats_a = Session.cache_stats sa in
  Alcotest.(check int) "first run builds fresh" 1 stats_a.Kcache.misses;
  Alcotest.(check int) "first run persists" 1 stats_a.Kcache.disk_writes;
  let sb, rb = run_one ~persist:dir sc_a in
  let stats_b = Session.cache_stats sb in
  Alcotest.(check int) "warm start builds nothing" 0 stats_b.Kcache.misses;
  Alcotest.(check int) "warm start loads from disk" 1 stats_b.Kcache.disk_hits;
  Alcotest.(check string) "warm metrics byte-identical" ra rb;
  (* And byte-identical to a session with no store at all. *)
  let _, rc = run_one sc_a in
  Alcotest.(check string) "identical to storeless run" ra rc

(* Warm-vs-cold identity across program families (the fig7 apps at small
   scale): the store is invisible in the metrics. *)
let pstore_warm_identity_suite () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let scs =
    [
      Scenario.make ~app:"SSSP" ~scale:300 (H.Cons Pragma.Grid);
      Scenario.make ~app:"SpMV" ~scale:200 (H.Cons Pragma.Block);
      Scenario.make ~app:"GC" ~scale:8 (H.Cons Pragma.Warp);
      Scenario.make ~app:"TD" H.Basic;
    ]
  in
  let cold = Session.create () in
  let cold_strs = List.map outcome_str (Session.run_all cold scs) in
  let writer = Session.create ~persist:dir () in
  ignore (Session.run_all writer scs);
  let warm = Session.create ~persist:dir () in
  let warm_strs = List.map outcome_str (Session.run_all warm scs) in
  List.iter2
    (Alcotest.(check string) "warm outcome byte-identical to cold")
    cold_strs warm_strs;
  let stats = Session.cache_stats warm in
  Alcotest.(check int) "warm session built nothing" 0 stats.Kcache.misses;
  Alcotest.(check bool) "warm session loaded from disk" true
    (stats.Kcache.disk_hits > 0)

(* Corrupt, truncated and stale-format store files degrade to ordinary
   misses (the run rebuilds, byte-identically) and never raise. *)
let pstore_rejects_bad_files () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let _, ra = run_one ~persist:dir sc_a in
  let file =
    match
      List.filter
        (fun f -> Filename.check_suffix f ".prep")
        (Array.to_list (Sys.readdir dir))
    with
    | [ f ] -> Filename.concat dir f
    | files -> Alcotest.failf "expected one .prep file, got %d" (List.length files)
  in
  let original = In_channel.with_open_bin file In_channel.input_all in
  let rewrite s = Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc s) in
  let check_degrades what expect_failure =
    let sb, rb = run_one ~persist:dir sc_a in
    let cs = Session.cache_stats sb in
    Alcotest.(check int) (what ^ ": no disk hit") 0 cs.Kcache.disk_hits;
    Alcotest.(check int) (what ^ ": rebuilt fresh") 1 cs.Kcache.misses;
    Alcotest.(check string) (what ^ ": metrics unaffected") ra rb;
    let ps = Option.get (Session.persist_stats sb) in
    Alcotest.(check bool)
      (what ^ ": counted as load failure")
      expect_failure
      (ps.Pstore.load_failures > 0)
  in
  (* Truncated payload. *)
  rewrite (String.sub original 0 (String.length original - 7));
  check_degrades "truncated" true;
  (* Flipped payload byte (digest mismatch). *)
  let corrupt = Bytes.of_string original in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0xff));
  rewrite (Bytes.to_string corrupt);
  check_degrades "corrupt" true;
  (* Format-version mismatch: header from a hypothetical older repo. *)
  rewrite ("dpc-kcache-v0" ^ String.sub original (String.length Pstore.format_version) (String.length original - String.length Pstore.format_version));
  check_degrades "stale format" true;
  (* Not even our file shape. *)
  rewrite "not a cache file at all\n";
  check_degrades "foreign file" true

(* Concurrent writers to one store directory: atomic renames mean the
   published file is always complete and loadable. *)
let pstore_concurrent_writers () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let domains =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let s = Session.create ~persist:dir () in
            let o = Session.run_outcome s (if i = 0 then sc_a else Scenario.make ~app:"SSSP" ~scale:300 ~seed:7 (H.Cons Pragma.Grid)) in
            outcome_str o))
  in
  let _ = List.map Domain.join domains in
  (* Both scenarios share one program family; whoever won the rename
     race left a complete, loadable file behind. *)
  let sb, rb = run_one ~persist:dir sc_a in
  let stats = Session.cache_stats sb in
  Alcotest.(check int) "racing writers left a loadable file" 1
    stats.Kcache.disk_hits;
  let _, rc = run_one sc_a in
  Alcotest.(check string) "store file valid after racing writers" rc rb

(* Keys that could escape the store directory are refused outright. *)
let pstore_key_hygiene () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let _ = run_one ~persist:dir sc_a in
  let key =
    match
      List.filter_map
        (fun f -> Filename.chop_suffix_opt ~suffix:".prep" f)
        (Array.to_list (Sys.readdir dir))
    with
    | [ k ] -> k
    | _ -> Alcotest.fail "expected one .prep file"
  in
  let st = Pstore.create dir in
  let tier = "compiled" in
  let cfgkey = H.cfg_digest Dpc_gpu.Config.k20c in
  let prep = Option.get (Pstore.load st ~key ~tier ~cfgkey) in
  Alcotest.(check bool) "traversal key refused on store" false
    (Pstore.store st ~key:"../evil" ~tier ~cfgkey prep);
  Alcotest.(check bool) "traversal key never loads" true
    (Option.is_none (Pstore.load st ~key:"../evil" ~tier ~cfgkey));
  (* The header's tier stamp must match the requested tier: a file
     written for the closure tier never answers a bytecode load. *)
  Alcotest.(check bool) "other-tier load degrades to a miss" true
    (Option.is_none (Pstore.load st ~key ~tier:"bytecode" ~cfgkey));
  Alcotest.(check bool) "malformed tier refused on store" false
    (Pstore.store st ~key ~tier:"two words" ~cfgkey prep);
  (* Same for the config stamp: a file written under one preset never
     answers a load for another. *)
  let deep = H.cfg_digest Dpc_gpu.Config.k20c_deep in
  Alcotest.(check bool) "other-preset load degrades to a miss" true
    (Option.is_none (Pstore.load st ~key ~tier ~cfgkey:deep));
  Alcotest.(check bool) "malformed cfg digest refused on store" false
    (Pstore.store st ~key ~tier ~cfgkey:"not hex!" prep)

(* The verifier is the Pstore trust boundary.  The degrade matrix: a
   decodable .prep whose payload fails re-verification (a planted
   lint-bad body — valid header, valid digest), a tier-mismatched v2
   stream, and a verifier that itself raises must all degrade to a
   re-prepare with byte-identical metrics — never a crash, never an
   executed stale program — and the semantic rejections bump
   [verify_rejects], not [load_failures].  (A truncated FUSE quad cannot
   reach a stored .prep — streams are re-derived from KIR at load — so
   that leg of the matrix lives in the direct bytecode-verifier units in
   test_check.ml.) *)
let pstore_verify_degrade_matrix () =
  with_temp_dir "dpc-pstore" @@ fun dir ->
  let _, ra = run_one ~persist:dir sc_a in
  let key =
    match
      List.filter_map
        (fun f -> Filename.chop_suffix_opt ~suffix:".prep" f)
        (Array.to_list (Sys.readdir dir))
    with
    | [ k ] -> k
    | _ -> Alcotest.fail "expected one .prep file"
  in
  let tier = "compiled" in
  let cfgkey = H.cfg_digest Dpc_gpu.Config.k20c in
  (* Plant a semantically bad prep under the real key: the header and
     digest are valid (a raw verify-less store wrote it), but the body's
     kernel puts a barrier under a thread-divergent branch — something
     only the semantic verifier can catch. *)
  let raw = Pstore.create dir in
  let good = Option.get (Pstore.load raw ~key ~tier ~cfgkey) in
  let bad_prog =
    let open Dpc_kir.Build in
    let prog = Dpc_kir.Kernel.Program.create () in
    Dpc_kir.Kernel.Program.add prog
      (kernel ~name:good.H.p_entry ~params:[ p "n" ]
         [ if_then (tid <: v "n") [ sync ] ]);
    Dpc_kir.Kernel.Program.finalize prog;
    prog
  in
  Alcotest.(check bool) "planted bad prep stored" true
    (Pstore.store raw ~key ~tier ~cfgkey { good with H.p_prog = bad_prog });
  let sb, rb = run_one ~persist:dir sc_a in
  let cs = Session.cache_stats sb in
  let ps = Option.get (Session.persist_stats sb) in
  Alcotest.(check int) "planted: verifier rejected it" 1
    ps.Pstore.verify_rejects;
  Alcotest.(check int) "planted: decode itself was fine" 0
    ps.Pstore.load_failures;
  Alcotest.(check int) "planted: no disk hit" 0 cs.Kcache.disk_hits;
  Alcotest.(check int) "planted: re-prepared fresh" 1 cs.Kcache.misses;
  Alcotest.(check string) "planted: metrics byte-identical" ra rb;
  (* That re-prepare re-published a good file.  A tier-mismatched load is
     refused by the header guard before the verifier is ever consulted. *)
  let consulted = ref false in
  let vetting =
    Pstore.create
      ~verify:(fun ~tier:_ _ ->
        consulted := true;
        Ok ())
      dir
  in
  Alcotest.(check bool) "good file loads through the verifier" true
    (Option.is_some (Pstore.load vetting ~key ~tier ~cfgkey));
  Alcotest.(check bool) "verifier consulted on tier match" true !consulted;
  consulted := false;
  Alcotest.(check bool) "tier-mismatched stream never loads" true
    (Option.is_none (Pstore.load vetting ~key ~tier:"bytecode" ~cfgkey));
  Alcotest.(check bool) "tier mismatch short-circuits the verifier" false
    !consulted;
  (* A verifier that raises is contained: ordinary miss, counted as a
     verify reject, not a decode failure. *)
  let throwing =
    Pstore.create ~verify:(fun ~tier:_ _ -> failwith "boom") dir
  in
  Alcotest.(check bool) "throwing verifier degrades to a miss" true
    (Option.is_none (Pstore.load throwing ~key ~tier ~cfgkey));
  Alcotest.(check int) "exception counted as verify reject" 1
    (Pstore.stats throwing).Pstore.verify_rejects;
  Alcotest.(check int) "exception is not a decode failure" 0
    (Pstore.stats throwing).Pstore.load_failures

(* --- the daemon ------------------------------------------------------------- *)

let with_server ?(configure = fun c -> c) f =
  with_temp_dir "dpc-serve" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    configure
      (Server.config ~cache_dir:(Some (Filename.concat dir "cache")) sock)
  in
  let server = Server.create cfg in
  let dom = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Domain.join dom)
    (fun () -> f ~sock ~server)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* The tentpole identity: a daemon-served sweep streams records that are
   byte-wise the ones a direct session run exports, and a second request
   (from a new connection) runs entirely from the warm cache. *)
let server_sweep_identity () =
  let scs = [ sc_a; sc_b ] in
  let direct = Session.create () in
  let expect = List.map outcome_str (Session.run_all direct scs) in
  with_server @@ fun ~sock ~server:_ ->
  let run_once () =
    Client.with_connection sock @@ fun c ->
    let r = ok_or_fail "sweep" (Client.sweep c scs) in
    Alcotest.(check int) "all scenarios ran" (List.length scs) r.Client.runs;
    Alcotest.(check int) "none failed" 0 r.Client.failed;
    Alcotest.(check bool) "not timed out" false r.Client.timed_out;
    List.map Json.to_string r.Client.outcomes
  in
  let first = run_once () in
  List.iter2
    (Alcotest.(check string) "served record byte-identical to direct run")
    expect first;
  let second = run_once () in
  List.iter2 (Alcotest.(check string) "second request identical") expect second;
  (* The second request was served from the warm in-memory cache. *)
  Client.with_connection sock @@ fun c ->
  let stats = ok_or_fail "stats" (Client.stats c) in
  let cache = Option.get (Json.member "cache" stats) in
  let hits = Json.to_int (Option.get (Json.member "hits" cache)) in
  Alcotest.(check bool) "warm cache hits observed" true (hits > 0);
  let obs = Json.to_int (Option.get (Json.member "cost_observations" stats)) in
  Alcotest.(check bool) "daemon learns costs" true (obs > 0);
  (* The memmodel totals are present, and stay zero for the
     features-off default preset these sweeps ran under. *)
  let mm = Option.get (Json.member "memmodel" stats) in
  Alcotest.(check int) "k20c sweeps accumulate no bank replays" 0
    (Json.to_int (Option.get (Json.member "bank_conflict_replays" mm)));
  Alcotest.(check int) "k20c sweeps accumulate no mshr stalls" 0
    (Json.to_int (Option.get (Json.member "mshr_stalls" mm)))

(* Failures are per-request: quota refusals, over-budget sweeps and
   malformed lines answer with error/timeout events and the daemon keeps
   serving. *)
let server_isolation () =
  with_server ~configure:(fun c -> { c with Server.max_scenarios = 1 })
  @@ fun ~sock ~server:_ ->
  (* Quota: two scenarios against a one-scenario server. *)
  (Client.with_connection sock @@ fun c ->
   match Client.sweep c [ sc_a; sc_b ] with
   | Ok _ -> Alcotest.fail "over-quota sweep must be refused"
   | Error msg ->
     Alcotest.(check bool) "refusal names the quota" true
       (String.length msg >= 5 && String.sub msg 0 5 = "quota"));
  (* Timeout: a zero budget skips everything and reports timed_out. *)
  (Client.with_connection sock @@ fun c ->
   let r = ok_or_fail "timed-out sweep" (Client.sweep ~timeout_s:0. c [ sc_a ]) in
   Alcotest.(check bool) "request timed out" true r.Client.timed_out;
   Alcotest.(check int) "nothing ran" 0 r.Client.runs;
   Alcotest.(check int) "scenario skipped" 1 r.Client.skipped);
  (* Garbage on the wire answers with a bad-request error event. *)
  (let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
   Fun.protect
     ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
     (fun () ->
       Unix.connect fd (Unix.ADDR_UNIX sock);
       let msg = Bytes.of_string "this is not json\n" in
       ignore (Unix.write fd msg 0 (Bytes.length msg));
       let buf = Bytes.create 4096 in
       let n = Unix.read fd buf 0 (Bytes.length buf) in
       match
         Protocol.event_of_string (String.trim (Bytes.sub_string buf 0 n))
       with
       | Ok (Protocol.Error_event e) ->
         Alcotest.(check string) "garbage answered with bad-request"
           "bad-request" e.code
       | other ->
         Alcotest.failf "expected a bad-request event, got %s"
           (match other with
           | Ok _ -> "another event"
           | Error m -> "unparseable reply: " ^ m)));
  (* The daemon survived all of the above. *)
  Client.with_connection sock @@ fun c ->
  ok_or_fail "ping after failures" (Client.ping c);
  let r = ok_or_fail "sweep after failures" (Client.sweep c [ sc_a ]) in
  Alcotest.(check int) "daemon still serves" 1 r.Client.runs

(* Two clients sweeping concurrently (from two domains): the server
   interleaves them and both streams complete with identical records. *)
let server_concurrent_clients () =
  let scs = [ sc_a; sc_b ] in
  with_server @@ fun ~sock ~server:_ ->
  let sweep_strings () =
    Client.with_connection sock @@ fun c ->
    match Client.sweep c scs with
    | Error e -> Error e
    | Ok r -> Ok (List.map Json.to_string r.Client.outcomes)
  in
  let doms = List.init 2 (fun _ -> Domain.spawn sweep_strings) in
  match List.map Domain.join doms with
  | [ Ok a; Ok b ] ->
    List.iter2
      (Alcotest.(check string) "concurrent clients see identical records")
      a b
  | results ->
    List.iter (function Error e -> Alcotest.failf "client failed: %s" e | Ok _ -> ()) results

(* The shutdown verb drains and exits: the run loop returns and the
   socket path is removed. *)
let server_shutdown_verb () =
  with_temp_dir "dpc-serve" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let server = Server.create (Server.config sock) in
  let dom = Domain.spawn (fun () -> Server.run server) in
  Alcotest.(check bool) "daemon came up" true (Client.wait_ready sock);
  (Client.with_connection sock @@ fun c ->
   ok_or_fail "shutdown" (Client.shutdown c));
  Domain.join dom;
  Alcotest.(check bool) "socket path unlinked" false (Sys.file_exists sock)

(* A second daemon refuses to steal a live socket, but replaces a stale
   socket file. *)
let server_socket_claim () =
  with_temp_dir "dpc-serve" @@ fun dir ->
  let sock = Filename.concat dir "d.sock" in
  let server = Server.create (Server.config sock) in
  let dom = Domain.spawn (fun () -> Server.run server) in
  Alcotest.(check bool) "daemon came up" true (Client.wait_ready sock);
  (match Server.create (Server.config sock) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "second daemon must refuse a live socket");
  Server.request_stop server;
  Domain.join dom;
  (* Simulate a crash leaving a stale socket file behind. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists sock);
  let server2 = Server.create (Server.config sock) in
  let dom2 = Domain.spawn (fun () -> Server.run server2) in
  Alcotest.(check bool) "stale socket replaced" true (Client.wait_ready sock);
  Server.request_stop server2;
  Domain.join dom2

let suite =
  [
    Alcotest.test_case "framing reassembly" `Quick framing_reassembly;
    Alcotest.test_case "framing byte-at-a-time" `Quick framing_byte_at_a_time;
    Alcotest.test_case "protocol request roundtrip" `Quick
      protocol_request_roundtrip;
    Alcotest.test_case "protocol event roundtrip" `Quick
      protocol_event_roundtrip;
    Alcotest.test_case "cost learning inverts static order" `Quick
      costs_inversion;
    Alcotest.test_case "session reseeds by observed cost" `Quick
      session_cost_learning;
    Alcotest.test_case "pstore roundtrip" `Quick pstore_roundtrip;
    Alcotest.test_case "pstore warm identity across apps" `Slow
      pstore_warm_identity_suite;
    Alcotest.test_case "pstore rejects bad files" `Quick
      pstore_rejects_bad_files;
    Alcotest.test_case "pstore concurrent writers" `Quick
      pstore_concurrent_writers;
    Alcotest.test_case "pstore key hygiene" `Quick pstore_key_hygiene;
    Alcotest.test_case "pstore verify degrade matrix" `Quick
      pstore_verify_degrade_matrix;
    Alcotest.test_case "server sweep identity" `Quick server_sweep_identity;
    Alcotest.test_case "server isolates failures" `Quick server_isolation;
    Alcotest.test_case "server concurrent clients" `Quick
      server_concurrent_clients;
    Alcotest.test_case "server shutdown verb" `Quick server_shutdown_verb;
    Alcotest.test_case "server socket claim" `Quick server_socket_claim;
  ]
