(* End-to-end tests of the SIMT interpreter and timing model on small
   hand-built kernels. *)

open Dpc_kir
open Dpc_kir.Build
module Device = Dpc_sim.Device
module Interp = Dpc_sim.Interp
module V = Dpc_kir.Value

let mk_program kernels =
  let p = Kernel.Program.create () in
  List.iter (Kernel.Program.add p) kernels;
  p

let launch_args (bufs : Dpc_gpu.Memory.buf list) (ints : int list) =
  List.map (fun (b : Dpc_gpu.Memory.buf) -> V.Vbuf b.Dpc_gpu.Memory.id) bufs
  @ List.map (fun i -> V.Vint i) ints

(* --- vector add ----------------------------------------------------------- *)

let vec_add_kernel =
  kernel ~name:"vec_add"
    ~params:[ pi "a"; pi "b"; pi "c"; p "n" ]
    [
      set "i" gtid;
      if_then (v "i" <: v "n")
        [ store (v "c") (v "i") (load (v "a") (v "i") +: load (v "b") (v "i")) ];
    ]

let test_vec_add () =
  let dev = Device.create (mk_program [ vec_add_kernel ]) in
  let n = 1000 in
  let a = Device.of_int_array dev ~name:"a" (Array.init n Fun.id) in
  let b = Device.of_int_array dev ~name:"b" (Array.init n (fun i -> 2 * i)) in
  let c = Device.alloc_int dev ~name:"c" n in
  Device.launch dev "vec_add" ~grid:8 ~block:128
    (launch_args [ a; b; c ] [ n ]);
  let got = Device.read_int_array dev c.Dpc_gpu.Memory.id in
  Alcotest.(check (array int)) "c = a + b" (Array.init n (fun i -> 3 * i)) got

let test_vec_add_report () =
  let dev = Device.create (mk_program [ vec_add_kernel ]) in
  let n = 1000 in
  let a = Device.of_int_array dev ~name:"a" (Array.make n 1) in
  let b = Device.of_int_array dev ~name:"b" (Array.make n 1) in
  let c = Device.alloc_int dev ~name:"c" n in
  Device.launch dev "vec_add" ~grid:8 ~block:128
    (launch_args [ a; b; c ] [ n ]);
  let r = Device.report dev in
  Alcotest.(check int) "one host launch" 1 r.Dpc_sim.Metrics.host_launches;
  Alcotest.(check int) "no device launches" 0
    r.Dpc_sim.Metrics.device_launches;
  Alcotest.(check bool) "positive cycles" true (r.Dpc_sim.Metrics.cycles > 0.0);
  Alcotest.(check bool) "high warp efficiency" true
    (r.Dpc_sim.Metrics.warp_efficiency > 0.9)

(* --- divergence ------------------------------------------------------------ *)

(* Half the lanes take a long path: warp efficiency must drop. *)
let divergent_kernel =
  kernel ~name:"divergent"
    ~params:[ pi "out"; p "n" ]
    [
      set "i" gtid;
      if_then (v "i" <: v "n")
        [
          if_ (v "i" %: i 2 ==: i 0)
            [
              set "acc" (i 0);
              for_ "k" ~from:(i 0) ~below:(i 100)
                [ set "acc" (v "acc" +: v "k") ];
              store (v "out") (v "i") (v "acc");
            ]
            [ store (v "out") (v "i") (i (-1)) ];
        ];
    ]

let test_divergence_efficiency () =
  let dev = Device.create (mk_program [ divergent_kernel ]) in
  let n = 512 in
  let out = Device.alloc_int dev ~name:"out" n in
  Device.launch dev "divergent" ~grid:4 ~block:128
    (launch_args [ out ] [ n ]);
  let got = Device.read_int_array dev out.Dpc_gpu.Memory.id in
  Alcotest.(check int) "even lane" 4950 got.(0);
  Alcotest.(check int) "odd lane" (-1) got.(1);
  let r = Device.report dev in
  Alcotest.(check bool) "warp efficiency degraded" true
    (r.Dpc_sim.Metrics.warp_efficiency < 0.75)

(* --- shared memory + syncthreads ------------------------------------------- *)

let reverse_kernel =
  kernel ~name:"reverse_block" ~params:[ pi "data" ]
    ~shared:[ ("tmp", 128) ]
    [
      shared_set "tmp" tid (load (v "data") (bid *: bdim +: tid));
      sync;
      store (v "data")
        (bid *: bdim +: tid)
        (shared "tmp" (bdim -: i 1 -: tid));
    ]

let test_shared_reverse () =
  let dev = Device.create (mk_program [ reverse_kernel ]) in
  let n = 256 in
  let data = Device.of_int_array dev ~name:"d" (Array.init n Fun.id) in
  Device.launch dev "reverse_block" ~grid:2 ~block:128
    (launch_args [ data ] []);
  let got = Device.read_int_array dev data.Dpc_gpu.Memory.id in
  let expect =
    Array.init n (fun i ->
        let blk = i / 128 and off = i mod 128 in
        (blk * 128) + (127 - off))
  in
  Alcotest.(check (array int)) "block-reversed" expect got

(* --- atomics ---------------------------------------------------------------- *)

let atomic_sum_kernel =
  kernel ~name:"atomic_sum"
    ~params:[ pi "src"; pi "total"; p "n" ]
    [
      set "i" gtid;
      if_then (v "i" <: v "n")
        [ atomic_add (v "total") (i 0) (load (v "src") (v "i")) ];
    ]

let test_atomic_sum () =
  let dev = Device.create (mk_program [ atomic_sum_kernel ]) in
  let n = 777 in
  let src = Device.of_int_array dev ~name:"src" (Array.init n Fun.id) in
  let total = Device.alloc_int dev ~name:"total" 1 in
  Device.launch dev "atomic_sum" ~grid:7 ~block:128
    (launch_args [ src; total ] [ n ]);
  let got = (Device.read_int_array dev total.Dpc_gpu.Memory.id).(0) in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) got

let test_atomic_old_binding () =
  let k =
    kernel ~name:"ticket" ~params:[ pi "ctr"; pi "out" ]
      [
        atomic_add ~old:"mine" (v "ctr") (i 0) (i 1);
        store (v "out") gtid (v "mine");
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let ctr = Device.alloc_int dev ~name:"ctr" 1 in
  let out = Device.alloc_int dev ~name:"out" 64 in
  Device.launch dev "ticket" ~grid:1 ~block:64 (launch_args [ ctr; out ] []);
  let got = Device.read_int_array dev out.Dpc_gpu.Memory.id in
  Array.sort compare got;
  Alcotest.(check (array int)) "tickets unique 0..63"
    (Array.init 64 Fun.id) got

(* --- dynamic parallelism ----------------------------------------------------- *)

let child_kernel =
  kernel ~name:"child"
    ~params:[ pi "out"; p "base"; p "count" ]
    [
      set "i" gtid;
      if_then (v "i" <: v "count") [ store (v "out") (v "base" +: v "i") (i 7) ];
    ]

let parent_kernel =
  kernel ~name:"parent"
    ~params:[ pi "out"; p "per" ]
    [
      set "i" gtid;
      launch "child"
        ~grid:(i 1) ~block:(i 32)
        [ v "out"; v "i" *: v "per"; v "per" ];
    ]

let test_nested_launch () =
  let dev = Device.create (mk_program [ child_kernel; parent_kernel ]) in
  let per = 8 in
  let out = Device.alloc_int dev ~name:"out" (64 * per) in
  Device.launch dev "parent" ~grid:2 ~block:32 (launch_args [ out ] [ per ]);
  let got = Device.read_int_array dev out.Dpc_gpu.Memory.id in
  Alcotest.(check (array int)) "all cells written"
    (Array.make (64 * per) 7) got;
  let r = Device.report dev in
  Alcotest.(check int) "64 device launches" 64
    r.Dpc_sim.Metrics.device_launches;
  Alcotest.(check int) "max depth 1" 1 r.Dpc_sim.Metrics.max_depth

let test_device_sync_postwork () =
  (* Parent writes after device sync must observe child writes. *)
  let child =
    kernel ~name:"c2" ~params:[ pi "data" ]
      [ store (v "data") tid (i 5) ]
  in
  let parent =
    kernel ~name:"p2" ~params:[ pi "data"; pi "out" ]
      [
        if_then (tid ==: i 0)
          [ launch "c2" ~grid:(i 1) ~block:(i 32) [ v "data" ] ];
        device_sync;
        if_then (tid ==: i 0)
          [
            set "acc" (i 0);
            for_ "k" ~from:(i 0) ~below:(i 32)
              [ set "acc" (v "acc" +: load (v "data") (v "k")) ];
            store (v "out") (i 0) (v "acc");
          ];
      ]
  in
  let dev = Device.create (mk_program [ child; parent ]) in
  let data = Device.alloc_int dev ~name:"data" 32 in
  let out = Device.alloc_int dev ~name:"out" 1 in
  Device.launch dev "p2" ~grid:1 ~block:32 (launch_args [ data; out ] []);
  Alcotest.(check int) "postwork sees child writes" 160
    (Device.read_int_array dev out.Dpc_gpu.Memory.id).(0)

(* --- recursion ---------------------------------------------------------------- *)

let countdown_kernel =
  kernel ~name:"countdown"
    ~params:[ pi "log"; p "depth" ]
    [
      if_then (tid ==: i 0)
        [
          atomic_add (v "log") (i 0) (i 1);
          if_then (v "depth" >: i 0)
            [
              launch "countdown" ~grid:(i 1) ~block:(i 32)
                [ v "log"; v "depth" -: i 1 ];
            ];
        ];
    ]

let test_recursion_depth () =
  let dev = Device.create (mk_program [ countdown_kernel ]) in
  let log = Device.alloc_int dev ~name:"log" 1 in
  Device.launch dev "countdown" ~grid:1 ~block:32 (launch_args [ log ] [ 5 ]);
  Alcotest.(check int) "6 invocations" 6
    (Device.read_int_array dev log.Dpc_gpu.Memory.id).(0);
  let r = Device.report dev in
  Alcotest.(check int) "depth 5" 5 r.Dpc_sim.Metrics.max_depth

let test_nesting_limit () =
  let dev = Device.create (mk_program [ countdown_kernel ]) in
  let log = Device.alloc_int dev ~name:"log" 1 in
  Alcotest.check_raises "exceeds nesting limit"
    (Interp.Sim_error
       "launch of countdown exceeds max nesting depth 24") (fun () ->
      Device.launch dev "countdown" ~grid:1 ~block:32 (launch_args [ log ] [ 30 ]))

(* --- grid barrier --------------------------------------------------------------- *)

let barrier_kernel =
  kernel ~name:"barrier_k"
    ~params:[ pi "data"; pi "out" ]
    [
      store (v "data") bid (bid +: i 1);
      grid_barrier;
      (* Only the last block runs this. *)
      if_then (tid ==: i 0)
        [
          set "acc" (i 0);
          for_ "k" ~from:(i 0) ~below:gdim
            [ set "acc" (v "acc" +: load (v "data") (v "k")) ];
          store (v "out") (i 0) (v "acc");
        ];
    ]

let test_grid_barrier () =
  let dev = Device.create (mk_program [ barrier_kernel ]) in
  let g = 10 in
  let data = Device.alloc_int dev ~name:"data" g in
  let out = Device.alloc_int dev ~name:"out" 1 in
  Device.launch dev "barrier_k" ~grid:g ~block:32
    (launch_args [ data; out ] []);
  Alcotest.(check int) "sum over blocks" (g * (g + 1) / 2)
    (Device.read_int_array dev out.Dpc_gpu.Memory.id).(0)

(* --- malloc scopes ---------------------------------------------------------------- *)

let test_malloc_per_block () =
  (* Each block gets its own buffer; lanes see the same one. *)
  let k =
    kernel ~name:"mb" ~params:[ pi "out" ]
      [
        malloc ~scope:Ast.Per_block "buf" (i 64);
        store (v "buf") tid (bid *: i 1000 +: tid);
        store (v "out") (bid *: bdim +: tid) (load (v "buf") tid);
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 128 in
  Device.launch dev "mb" ~grid:2 ~block:64 (launch_args [ out ] []);
  let got = Device.read_int_array dev out.Dpc_gpu.Memory.id in
  let expect = Array.init 128 (fun i -> (i / 64 * 1000) + (i mod 64)) in
  Alcotest.(check (array int)) "per-block buffers isolated" expect got

let test_malloc_per_grid_shared () =
  (* All blocks share one grid-scope buffer. *)
  let k =
    kernel ~name:"mg" ~params:[ pi "out" ]
      [
        malloc ~scope:Ast.Per_grid "buf" (i 4);
        if_then (tid ==: i 0) [ atomic_add (v "buf") (i 0) (i 1) ];
        grid_barrier;
        if_then (tid ==: i 0) [ store (v "out") (i 0) (load (v "buf") (i 0)) ];
      ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 1 in
  Device.launch dev "mg" ~grid:6 ~block:32 (launch_args [ out ] []);
  Alcotest.(check int) "6 increments on one buffer" 6
    (Device.read_int_array dev out.Dpc_gpu.Memory.id).(0)

(* --- error cases --------------------------------------------------------------------- *)

let test_out_of_bounds () =
  let k =
    kernel ~name:"oob" ~params:[ pi "a" ] [ store (v "a") (i 99) (i 1) ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.alloc_int dev ~name:"a" 4 in
  Alcotest.(check bool) "raises out of bounds" true
    (try
       Device.launch dev "oob" ~grid:1 ~block:1 (launch_args [ a ] []);
       false
     with Dpc_gpu.Memory.Out_of_bounds _ -> true)

let test_divergent_syncthreads_rejected () =
  let k =
    kernel ~name:"bad_sync" ~params:[ pi "a" ]
      [ if_ (tid <: i 16) [ sync ] [ store (v "a") (i 0) (i 1) ] ]
  in
  let dev = Device.create (mk_program [ k ]) in
  let a = Device.alloc_int dev ~name:"a" 4 in
  Alcotest.(check bool) "raises on divergent barrier" true
    (try
       Device.launch dev "bad_sync" ~grid:1 ~block:32 (launch_args [ a ] []);
       false
     with Interp.Sim_error _ -> true)

let suite =
  [
    Alcotest.test_case "vec add result" `Quick test_vec_add;
    Alcotest.test_case "vec add report" `Quick test_vec_add_report;
    Alcotest.test_case "divergence efficiency" `Quick test_divergence_efficiency;
    Alcotest.test_case "shared memory reverse" `Quick test_shared_reverse;
    Alcotest.test_case "atomic sum" `Quick test_atomic_sum;
    Alcotest.test_case "atomic old binding" `Quick test_atomic_old_binding;
    Alcotest.test_case "nested launch" `Quick test_nested_launch;
    Alcotest.test_case "device sync postwork" `Quick test_device_sync_postwork;
    Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
    Alcotest.test_case "nesting limit" `Quick test_nesting_limit;
    Alcotest.test_case "grid barrier" `Quick test_grid_barrier;
    Alcotest.test_case "malloc per block" `Quick test_malloc_per_block;
    Alcotest.test_case "malloc per grid" `Quick test_malloc_per_grid_shared;
    Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
    Alcotest.test_case "divergent syncthreads" `Quick
      test_divergent_syncthreads_rejected;
  ]
