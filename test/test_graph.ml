(* Tests for the graph/tree substrate: CSR invariants, generators'
   distribution properties, CPU references. *)

module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Tree = Dpc_graph.Tree
module Cpu = Dpc_graph.Cpu_ref

let test_csr_of_adjacency () =
  let g = Csr.of_adjacency [| [ 1; 2 ]; [ 2 ]; [] |] in
  Alcotest.(check int) "n" 3 g.Csr.n;
  Alcotest.(check int) "nnz" 3 (Csr.nnz g);
  Alcotest.(check int) "deg 0" 2 (Csr.degree g 0);
  Alcotest.(check int) "deg 2" 0 (Csr.degree g 2);
  Csr.validate g

let test_csr_validate_rejects_bad_target () =
  let g =
    { Csr.n = 2; row_ptr = [| 0; 1; 1 |]; col = [| 5 |]; weights = [| 1 |] }
  in
  Alcotest.(check bool) "invalid" true
    (try
       Csr.validate g;
       false
     with Csr.Invalid _ -> true)

let test_csr_transpose_involution () =
  let g = Gen.uniform_random ~n:50 ~deg_lo:0 ~deg_hi:6 ~seed:3 in
  let gtt = Csr.transpose (Csr.transpose g) in
  (* transpose^2 preserves the edge multiset *)
  let edges gr =
    let out = ref [] in
    for v = 0 to gr.Csr.n - 1 do
      for e = gr.Csr.row_ptr.(v) to gr.Csr.row_ptr.(v + 1) - 1 do
        out := (v, gr.Csr.col.(e), gr.Csr.weights.(e)) :: !out
      done
    done;
    List.sort compare !out
  in
  Alcotest.(check bool) "same edges" true (edges g = edges gtt)

let test_csr_symmetrize () =
  let g = Csr.of_adjacency [| [ 1 ]; []; [ 1 ] |] in
  let s = Csr.symmetrize g in
  let has v u =
    let found = ref false in
    for e = s.Csr.row_ptr.(v) to s.Csr.row_ptr.(v + 1) - 1 do
      if s.Csr.col.(e) = u then found := true
    done;
    !found
  in
  Alcotest.(check bool) "0->1" true (has 0 1);
  Alcotest.(check bool) "1->0" true (has 1 0);
  Alcotest.(check bool) "1->2" true (has 1 2)

let test_citeseer_like_shape () =
  let g = Gen.citeseer_like ~n:4000 ~seed:1 in
  Csr.validate g;
  Alcotest.(check int) "n" 4000 g.Csr.n;
  (* Every node has at least one out-edge; heavy tail present. *)
  let mind = ref max_int in
  for v = 0 to g.Csr.n - 1 do
    mind := Int.min !mind (Csr.degree g v)
  done;
  Alcotest.(check bool) "min degree >= 1" true (!mind >= 1);
  Alcotest.(check bool) "max degree heavy" true (Csr.max_degree g > 100);
  Alcotest.(check bool) "mean moderate" true
    (Csr.avg_degree g > 5.0 && Csr.avg_degree g < 150.0)

let test_citeseer_deterministic () =
  let a = Gen.citeseer_like ~n:500 ~seed:9 in
  let b = Gen.citeseer_like ~n:500 ~seed:9 in
  Alcotest.(check bool) "same graph" true
    (a.Csr.row_ptr = b.Csr.row_ptr && a.Csr.col = b.Csr.col)

let test_kron_like_shape () =
  let g = Gen.kron_like ~scale:10 ~edge_factor:8 ~seed:2 in
  Csr.validate g;
  Alcotest.(check int) "n" 1024 g.Csr.n;
  Alcotest.(check bool) "edges ~ n*ef" true (Csr.nnz g >= 1024 * 8);
  (* R-MAT hubs: the max degree far exceeds the average. *)
  Alcotest.(check bool) "hubby" true
    (Float.of_int (Csr.max_degree g) > 8.0 *. Csr.avg_degree g)

let test_tree_structure () =
  let t = Tree.generate ~depth:4 ~lo:2 ~hi:4 ~p_child:1.0 ~seed:5 () in
  Alcotest.(check int) "root depth" 0 t.Tree.depth_of.(0);
  Alcotest.(check int) "depth" 4 t.Tree.depth;
  (* Every non-root node appears exactly once as a child. *)
  let seen = Array.make t.Tree.n 0 in
  Array.iter (fun c -> seen.(c) <- seen.(c) + 1) t.Tree.child_list;
  for v = 1 to t.Tree.n - 1 do
    Alcotest.(check int) (Printf.sprintf "node %d in-degree" v) 1 seen.(v)
  done;
  Alcotest.(check int) "root not a child" 0 seen.(0)

let test_tree_truncation_cap () =
  let t = Tree.generate ~depth:6 ~lo:8 ~hi:10 ~p_child:1.0 ~seed:7
      ~max_nodes:500 ()
  in
  Alcotest.(check bool) "capped" true (t.Tree.n <= 500)

let test_tree_heights_descendants () =
  (* root -> a, b; a -> c *)
  let t =
    { Tree.n = 4; child_ptr = [| 0; 2; 3; 3; 3 |];
      child_list = [| 1; 2; 3 |]; depth_of = [| 0; 1; 1; 2 |]; depth = 2 }
  in
  Alcotest.(check (array int)) "heights" [| 2; 1; 0; 0 |] (Tree.heights t);
  Alcotest.(check (array int)) "descendants" [| 3; 1; 0; 0 |]
    (Tree.descendants t)

let test_cpu_sssp_small () =
  (* 0 -1-> 1 -1-> 2 ; 0 -5-> 2 *)
  let g =
    Csr.of_adjacency
      ~weights:[| [ 1; 5 ]; [ 1 ]; [] |]
      [| [ 1; 2 ]; [ 2 ]; [] |]
  in
  Alcotest.(check (array int)) "dists" [| 0; 1; 2 |] (Cpu.sssp g ~src:0)

let test_cpu_bfs_small () =
  let g = Csr.of_adjacency [| [ 1 ]; [ 2 ]; []; [] |] in
  let lv = Cpu.bfs_levels g ~src:0 in
  Alcotest.(check int) "level 2" 2 lv.(2);
  Alcotest.(check bool) "unreachable" true (lv.(3) = Cpu.inf)

let test_cpu_pagerank_sums_to_one () =
  let g = Gen.uniform_random ~n:100 ~deg_lo:1 ~deg_hi:5 ~seed:4 in
  let pr = Cpu.pagerank g ~iters:10 ~d:0.85 in
  let total = Array.fold_left ( +. ) 0.0 pr in
  Alcotest.(check (float 1e-6)) "mass conserved" 1.0 total

let test_valid_coloring_detects_conflict () =
  let g = Csr.of_adjacency [| [ 1 ]; [ 0 ] |] in
  Alcotest.(check bool) "conflict" false (Cpu.valid_coloring g [| 1; 1 |]);
  Alcotest.(check bool) "ok" true (Cpu.valid_coloring g [| 0; 1 |]);
  Alcotest.(check bool) "uncolored" false (Cpu.valid_coloring g [| -1; 1 |])

(* Property: Dijkstra distances satisfy the triangle inequality over every
   edge (relaxation fixpoint). *)
let prop_sssp_fixpoint =
  QCheck.Test.make ~count:30 ~name:"sssp distances are a relaxation fixpoint"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Gen.uniform_random ~n:80 ~deg_lo:0 ~deg_hi:5 ~seed in
      let d = Cpu.sssp g ~src:0 in
      let ok = ref true in
      for v = 0 to g.Csr.n - 1 do
        for e = g.Csr.row_ptr.(v) to g.Csr.row_ptr.(v + 1) - 1 do
          if d.(v) < Cpu.inf && d.(g.Csr.col.(e)) > d.(v) + g.Csr.weights.(e)
          then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "csr of adjacency" `Quick test_csr_of_adjacency;
    Alcotest.test_case "csr validate" `Quick test_csr_validate_rejects_bad_target;
    Alcotest.test_case "csr transpose" `Quick test_csr_transpose_involution;
    Alcotest.test_case "csr symmetrize" `Quick test_csr_symmetrize;
    Alcotest.test_case "citeseer shape" `Quick test_citeseer_like_shape;
    Alcotest.test_case "citeseer deterministic" `Quick
      test_citeseer_deterministic;
    Alcotest.test_case "kron shape" `Quick test_kron_like_shape;
    Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "tree truncation" `Quick test_tree_truncation_cap;
    Alcotest.test_case "tree heights/descendants" `Quick
      test_tree_heights_descendants;
    Alcotest.test_case "cpu sssp" `Quick test_cpu_sssp_small;
    Alcotest.test_case "cpu bfs" `Quick test_cpu_bfs_small;
    Alcotest.test_case "cpu pagerank mass" `Quick test_cpu_pagerank_sums_to_one;
    Alcotest.test_case "coloring validity" `Quick
      test_valid_coloring_detects_conflict;
    QCheck_alcotest.to_alcotest prop_sssp_fixpoint;
  ]
