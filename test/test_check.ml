(* Tests for the static kernel verifier (Dpc_check): the uniformity,
   race, bounds and legality analyses, the mutation harness, the strict
   finalize hook, source locations threaded from MiniCU, and the
   regression suite pinning the analyses' false-positive envelope on the
   registered apps. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module P = Dpc_kir.Pragma
module Check = Dpc_check.Check
module Diag = Dpc_check.Diag
module U = Dpc_check.Uniformity
module Bounds = Dpc_check.Bounds
module Eu = Dpc_check.Expr_util
module Mutate = Dpc_check.Mutate
open Dpc_kir.Build

let ids ds = List.map (fun (d : Diag.t) -> d.Diag.id) ds

let has_id id ds = List.mem id (ids ds)

let finalized k =
  K.finalize k;
  k

(* --- expression utilities ------------------------------------------------- *)

let test_const_fold () =
  let cases =
    [
      ((i 3 +: i 4) *: i 2, Some 14);
      (i 7 /: i 2, Some 3);
      (i 7 %: i 0, None);
      (min_ (i 3) (i 9), Some 3);
      (neg (i 5), Some (-5));
      (v "x" +: i 1, None);
    ]
  in
  List.iter
    (fun (e, expect) ->
      Alcotest.(check (option int))
        (Dpc_kir.Pp.expr e) expect (Eu.const_int e))
    cases;
  Alcotest.(check (option int))
    "warpSize folds when the device is known" (Some 64)
    (Eu.const_int ~warp_size:32 (warpsize *: i 2))

let test_block_distinct () =
  let yes = [ tid; tid +: i 4; tid *: i 2; bdim *: bid +: tid ] in
  let no = [ lane; tid %: i 2; tid *: i 0; tid +: tid; v "x"; tid +: v "x" ] in
  List.iter
    (fun e ->
      Alcotest.(check bool) (Dpc_kir.Pp.expr e) true (Eu.block_distinct e))
    yes;
  List.iter
    (fun e ->
      Alcotest.(check bool) (Dpc_kir.Pp.expr e) false (Eu.block_distinct e))
    no

(* --- uniformity ----------------------------------------------------------- *)

let slot_of k name =
  let found = ref (-1) in
  let note (v : A.var) =
    if v.A.name = name && v.A.slot >= 0 then found := v.A.slot
  in
  A.iter_block k.K.body
    ~on_stmt:(fun s ->
      match s with
      | A.Let (v, _) | A.For (v, _, _, _) | A.Malloc { dst = v; _ }
      | A.Atomic { old = Some v; _ } ->
        note v
      | _ -> ())
    ~on_expr:(fun e -> match e with A.Var v -> note v | _ -> ());
  List.iter
    (fun (p : A.param) ->
      if p.A.pname = name then found := p.A.pvar.A.slot)
    k.K.params;
  if !found < 0 then Alcotest.failf "no resolved slot for %s" name;
  !found

let test_uniformity_levels () =
  let k =
    finalized
      (kernel ~name:"levels" ~params:[ p "n" ]
         [
           set "d" tid;
           set "w" warp;
           set "b" bid;
           set "u" (v "n" +: i 1);
           (* uniform rhs under a divergent branch is still divergent *)
           if_then (tid <: v "n") [ set "g" (i 1) ];
         ])
  in
  let levels = U.infer k in
  let check name expect =
    Alcotest.(check string)
      name
      (U.level_to_string expect)
      (U.level_to_string levels.(slot_of k name))
  in
  check "d" U.Divergent;
  check "w" U.Warp_uniform;
  check "b" U.Block_uniform;
  check "u" U.Uniform;
  check "g" U.Divergent;
  check "n" U.Uniform

let test_bd01_path () =
  let k =
    finalized
      (kernel ~name:"bd" ~params:[ p "n" ]
         [ set "t" tid; if_then (v "t" <: v "n") [ sync ] ])
  in
  match U.check k with
  | [ d ] ->
    Alcotest.(check string) "id" "BD01" d.Diag.id;
    Alcotest.(check string) "path" "body[1]/then[0]" d.Diag.path;
    Alcotest.(check bool) "is error" true (Diag.is_error d)
  | ds -> Alcotest.failf "expected exactly BD01, got %d diags" (List.length ds)

let test_grid_barrier_needs_grid_uniform () =
  let bad =
    finalized (kernel ~name:"g1" [ if_then (bid ==: i 0) [ grid_barrier ] ])
  in
  Alcotest.(check bool) "BD02 on block-divergent" true
    (has_id "BD02" (U.check bad));
  let ok = finalized (kernel ~name:"g2" [ grid_barrier ]) in
  Alcotest.(check (list string)) "top-level barrier clean" [] (ids (U.check ok))

let test_loop_condition_divergence () =
  (* A loop whose condition reads a divergent variable makes its body
     divergent, even when the barrier itself is unconditioned inside. *)
  let k =
    finalized
      (kernel ~name:"loop" ~params:[ p "n" ]
         [ set "t" tid; while_ (v "t" <: v "n") [ sync; set "t" (v "t" +: bdim) ] ])
  in
  Alcotest.(check bool) "BD01 in divergent loop" true
    (has_id "BD01" (U.check k))

(* --- races ----------------------------------------------------------------- *)

let test_race_suppressions () =
  (* The everyday cooperative patterns must stay quiet. *)
  let clean =
    finalized
      (kernel ~name:"clean" ~params:[ p "x" ] ~shared:[ ("s", 64) ]
         [
           shared_set "s" tid (v "x");
           sync;
           set "y" (shared "s" ((tid +: i 1) %: i 64));
         ])
  in
  Alcotest.(check (list string)) "barrier separates" []
    (ids (Dpc_check.Races.check clean))

let test_race_detected_without_sync () =
  let racy =
    finalized
      (kernel ~name:"racy" ~params:[ p "x" ] ~shared:[ ("s", 64) ]
         [
           shared_set "s" tid (v "x");
           set "y" (shared "s" ((tid +: i 1) %: i 64));
         ])
  in
  Alcotest.(check bool) "SM02" true
    (has_id "SM02" (Dpc_check.Races.check racy))

let test_race_distinct_constants_disjoint () =
  let k =
    finalized
      (kernel ~name:"disj" ~params:[ p "x" ] ~shared:[ ("s", 8) ]
         [
           if_then (tid ==: i 0) [ shared_set "s" (i 0) (v "x") ];
           if_then (tid ==: i 1) [ shared_set "s" (i 1) (v "x") ];
           set "y" (shared "s" (i 2));
         ])
  in
  Alcotest.(check (list string)) "distinct constant slots" []
    (ids (Dpc_check.Races.check k))

(* --- bounds ---------------------------------------------------------------- *)

let test_interval_loop () =
  let k =
    finalized
      (kernel ~name:"iv" [ for_ "j" ~from:(i 2) ~below:(i 10) [ set "x" (v "j") ] ])
  in
  let slots = Bounds.infer k in
  let j = slots.(slot_of k "j") in
  Alcotest.(check (option int)) "j lo" (Some 2) j.Bounds.lo;
  Alcotest.(check (option int)) "j hi" (Some 9) j.Bounds.hi

let test_bounds_definite_vs_may () =
  let definite =
    finalized
      (kernel ~name:"b1" ~shared:[ ("s", 16) ] [ shared_set "s" (i 16) (i 0) ])
  in
  Alcotest.(check bool) "BN01" true (has_id "BN01" (Bounds.check definite));
  let may =
    finalized
      (kernel ~name:"b2" ~shared:[ ("s", 16) ]
         [ for_ "j" ~from:(i 0) ~below:(i 17) [ shared_set "s" (v "j") (i 0) ] ])
  in
  let ds = Bounds.check may in
  Alcotest.(check bool) "BN02" true (has_id "BN02" ds);
  Alcotest.(check bool) "not BN01" false (has_id "BN01" ds);
  (* unbounded (thread-indexed) accesses are never flagged *)
  let unbounded =
    finalized
      (kernel ~name:"b3" ~shared:[ ("s", 16) ] [ shared_set "s" tid (i 0) ])
  in
  Alcotest.(check (list string)) "tid index quiet" []
    (ids (Bounds.check unbounded))

let test_use_before_def () =
  let k =
    finalized
      (kernel ~name:"ubd" ~params:[ p "n" ]
         [
           if_ (tid <: v "n") [ set "t" (i 1) ] [ set "u" (i 2) ];
           set "r" (v "t" +: v "u");
         ])
  in
  let ds = Bounds.check k in
  (* both t and u are only assigned on one side of the branch *)
  Alcotest.(check int) "two BN03" 2
    (List.length (List.filter (fun (d : Diag.t) -> d.Diag.id = "BN03") ds));
  let ok =
    finalized
      (kernel ~name:"dom" ~params:[ p "n" ]
         [
           if_ (tid <: v "n") [ set "t" (i 1) ] [ set "t" (i 2) ];
           set "r" (v "t");
         ])
  in
  Alcotest.(check (list string)) "both-arm def dominates" []
    (ids (Bounds.check ok))

(* --- legality -------------------------------------------------------------- *)

let test_legality_from_source () =
  (* Diagnostics carry the pragma's source line. *)
  let src =
    "__global__ void child(int* a, int x) {\n\
    \  a[x] = x;\n\
     }\n\
     __global__ void parent(int* a, int n) {\n\
    \  var w = blockIdx.x * blockDim.x + threadIdx.x;\n\
    \  if (w < n) {\n\
    \    #pragma dp consldt(warp) work(missing)\n\
    \    launch child<<<1, 64>>>(a, w);\n\
    \  }\n\
     }\n"
  in
  let prog = Dpc_minicu.Parser.parse_program src in
  let ds = Check.check_program prog in
  match List.filter (fun (d : Diag.t) -> d.Diag.id = "LC05") ds with
  | [ d ] ->
    Alcotest.(check string) "kernel" "parent" d.Diag.kernel;
    Alcotest.(check int) "pragma line" 7 d.Diag.line
  | _ -> Alcotest.fail "expected exactly one LC05"

let test_kernel_line_threaded () =
  let src =
    "__global__ void first(int n) {\n\
    \  var x = n;\n\
     }\n\
     __global__ void second(int n) {\n\
    \  if (threadIdx.x < n) {\n\
    \    __syncthreads();\n\
    \  }\n\
     }\n"
  in
  let prog = Dpc_minicu.Parser.parse_program src in
  let ds = Check.check_program prog in
  match ds with
  | [ d ] ->
    Alcotest.(check string) "id" "BD01" d.Diag.id;
    Alcotest.(check string) "kernel" "second" d.Diag.kernel;
    Alcotest.(check int) "kernel line" 4 d.Diag.line
  | _ -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* --- strict finalize hook -------------------------------------------------- *)

let test_strict_finalize_hook () =
  let bad () =
    kernel ~name:"strict_bad" ~params:[ p "n" ]
      [ if_then (tid <: v "n") [ sync ] ]
  in
  (* Default: finalize accepts the kernel (no hook installed). *)
  K.finalize (bad ());
  Check.with_strict (fun () ->
      Alcotest.(check bool) "strict finalize rejects" true
        (try
           K.finalize (bad ());
           false
         with Check.Check_error ds -> has_id "BD01" ds);
      (* warnings do not raise in strict finalize *)
      K.finalize
        (kernel ~name:"strict_warn" ~params:[ p "n" ]
           [ if_then (tid <: v "n") [ set "t" (i 1) ]; set "u" (v "t") ]));
  (* Hook restored: bad kernels finalize again. *)
  K.finalize (bad ())

(* --- mutation harness ------------------------------------------------------ *)

let test_mutants_all_detected () =
  List.iter
    (fun (o : Mutate.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s)" o.Mutate.mutant.Mutate.mname
           o.Mutate.mutant.Mutate.analysis)
        true o.Mutate.ok)
    (Mutate.run_all ())

let test_mutants_cover_all_analyses () =
  let seeded =
    List.filter (fun (m : Mutate.mutant) -> m.Mutate.expect <> None) Mutate.all
  in
  Alcotest.(check bool) "at least 8 seeded-bad kernels" true
    (List.length seeded >= 8);
  let verifier_seeded =
    List.filter
      (fun (m : Mutate.mutant) ->
        m.Mutate.analysis = "tv" || m.Mutate.analysis = "bytecode")
      seeded
  in
  Alcotest.(check bool) "at least 15 seeded tv/bytecode mutants" true
    (List.length verifier_seeded >= 15);
  List.iter
    (fun analysis ->
      Alcotest.(check bool) (analysis ^ " covered") true
        (List.exists
           (fun (m : Mutate.mutant) -> m.Mutate.analysis = analysis)
           seeded))
    [ "uniformity"; "races"; "bounds"; "legality"; "tv"; "bytecode" ]

(* --- the apps stay clean (false-positive regression) ----------------------- *)

let test_apps_lint_clean () =
  List.iter
    (fun (e : Dpc_apps.Registry.entry) ->
      List.iter
        (fun (variant, prog) ->
          let ds = Check.check_program prog in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s" e.Dpc_apps.Registry.name variant)
            []
            (List.map (Diag.to_string ?file:None) ds))
        (e.Dpc_apps.Registry.programs ()))
    Dpc_apps.Registry.all

(* Translation validation accepts every real consolidation of every
   registered app at every granularity (false-positive envelope for Tv). *)
let test_tv_apps_clean () =
  List.iter
    (fun (e : Dpc_apps.Registry.entry) ->
      List.iter
        (fun (variant, parent, orig, r) ->
          let ds = Dpc_check.Tv.check ~parent ~orig r in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/tv/%s" e.Dpc_apps.Registry.name variant)
            []
            (List.map (Diag.to_string ?file:None) ds))
        (e.Dpc_apps.Registry.tv_units ()))
    Dpc_apps.Registry.all

(* The bytecode verifier accepts every stream the real lowering produces
   for every app variant (false-positive envelope for Bcverify). *)
let test_bcverify_apps_clean () =
  List.iter
    (fun (e : Dpc_apps.Registry.entry) ->
      List.iter
        (fun (variant, prog) ->
          let ds = Dpc_check.Bcverify.check prog in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/%s/bytecode" e.Dpc_apps.Registry.name
               variant)
            []
            (List.map (Diag.to_string ?file:None) ds))
        (e.Dpc_apps.Registry.programs ()))
    Dpc_apps.Registry.all

(* Direct bytecode-verifier units: a truncated FUSE quad (the exact
   corruption a torn .prep body would induce), an unknown opcode, and a
   well-formed straight-line stream.  The verifier must diagnose, never
   raise, and stay silent on the clean stream. *)
let test_bcverify_direct () =
  let stream code =
    {
      Dpc_sim.Bytecode.s_kname = "unit";
      s_code = Array.of_list code;
      s_nstmts = 3;
      s_nic = 2;
      s_nfc = 1;
      s_ntmpi = 2;
      s_ntmpf = 1;
      s_nint = 4;
      s_nflt = 2;
      s_nshared = 1;
      s_nnames = 2;
    }
  in
  let check code = Dpc_check.Bcverify.check_stream (stream code) in
  Alcotest.(check bool) "truncated FUSE quad -> BC02" true
    (has_id "BC02" (check [ 7; 2; 0; 0; 0; 1; 2 ]));
  Alcotest.(check bool) "unknown opcode -> BC01" true
    (has_id "BC01" (check [ 99 ]));
  Alcotest.(check bool) "register out of range -> BC03" true
    (has_id "BC03" (check [ 7; 1; 0; 0; 9; 1; 2 ]));
  Alcotest.(check (list string))
    "clean stream is silent" []
    (List.map
       (Diag.to_string ?file:None)
       (check [ 7; 1; 0; 0; 0; 1; 2; 8; 0; 1; 3; 12; 0; 2; 2; 1 ]))

(* Strict mode routes Transform.apply through the translation-validation
   hook: a faithful transform passes silently, and a corrupted result fed
   to the installed hook raises Check_error. *)
let test_strict_transform_hook () =
  Dpc_check.Strict.with_strict (fun () ->
      ignore
        (Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c
           ~parent:Mutate.tv_parent
           (Mutate.tv_prog P.Block)
          : Dpc.Transform.result));
  Dpc_check.Strict.with_strict (fun () ->
      let orig = Mutate.tv_prog P.Block in
      let r =
        Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:Mutate.tv_parent
          orig
      in
      let bad = { r with Dpc.Transform.entry = "tv_no_such_kernel" } in
      let hook = Dpc.Transform.apply_check () in
      match hook ~parent:Mutate.tv_parent orig bad with
      | exception Check.Check_error ds ->
        Alcotest.(check bool) "TV07 reported" true (has_id "TV07" ds)
      | () -> Alcotest.fail "corrupted transform accepted under strict");
  (* Hooks restored: outside with_strict the default hook is a no-op. *)
  let orig = Mutate.tv_prog P.Block in
  let r =
    Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:Mutate.tv_parent orig
  in
  let bad = { r with Dpc.Transform.entry = "tv_no_such_kernel" } in
  (Dpc.Transform.apply_check ()) ~parent:Mutate.tv_parent orig bad

(* --- JSON report ----------------------------------------------------------- *)

let test_report_json_roundtrip () =
  let diags =
    [
      Diag.make ~id:"BD01" ~severity:Diag.Error ~kernel:"k"
        ~path:"body[0]" ~line:3 "boom";
      Diag.make ~id:"BN03" ~severity:Diag.Warning ~kernel:"k" "quiet";
    ]
  in
  let json = Dpc_prof.Json.to_string (Diag.report_to_json diags) in
  match Dpc_prof.Json.parse json with
  | Dpc_prof.Json.Obj fields ->
    Alcotest.(check bool) "schema" true
      (List.assoc_opt "schema" fields
      = Some (Dpc_prof.Json.String "dpc-check-v1"));
    Alcotest.(check bool) "errors count" true
      (List.assoc_opt "errors" fields = Some (Dpc_prof.Json.Int 1));
    Alcotest.(check bool) "warnings count" true
      (List.assoc_opt "warnings" fields = Some (Dpc_prof.Json.Int 1))
  | _ -> Alcotest.fail "expected object"

let suite =
  [
    Alcotest.test_case "const fold" `Quick test_const_fold;
    Alcotest.test_case "block distinct" `Quick test_block_distinct;
    Alcotest.test_case "uniformity levels" `Quick test_uniformity_levels;
    Alcotest.test_case "BD01 path" `Quick test_bd01_path;
    Alcotest.test_case "grid barrier uniformity" `Quick
      test_grid_barrier_needs_grid_uniform;
    Alcotest.test_case "divergent loop barrier" `Quick
      test_loop_condition_divergence;
    Alcotest.test_case "race suppressions" `Quick test_race_suppressions;
    Alcotest.test_case "race without sync" `Quick
      test_race_detected_without_sync;
    Alcotest.test_case "disjoint constants" `Quick
      test_race_distinct_constants_disjoint;
    Alcotest.test_case "interval of for" `Quick test_interval_loop;
    Alcotest.test_case "bounds definite vs may" `Quick
      test_bounds_definite_vs_may;
    Alcotest.test_case "use before def" `Quick test_use_before_def;
    Alcotest.test_case "legality pragma line" `Quick test_legality_from_source;
    Alcotest.test_case "kernel line threaded" `Quick test_kernel_line_threaded;
    Alcotest.test_case "strict finalize hook" `Quick test_strict_finalize_hook;
    Alcotest.test_case "mutants all detected" `Quick test_mutants_all_detected;
    Alcotest.test_case "mutants cover analyses" `Quick
      test_mutants_cover_all_analyses;
    Alcotest.test_case "apps lint clean" `Quick test_apps_lint_clean;
    Alcotest.test_case "apps tv clean" `Quick test_tv_apps_clean;
    Alcotest.test_case "apps bytecode clean" `Quick test_bcverify_apps_clean;
    Alcotest.test_case "bytecode verifier direct" `Quick test_bcverify_direct;
    Alcotest.test_case "strict transform hook" `Quick
      test_strict_transform_hook;
    Alcotest.test_case "report json" `Quick test_report_json_roundtrip;
  ]
