(* Unit tests of the discrete-event timing model, run on the deliberately
   tiny [Config.test_device] so concurrency and pool effects appear at
   small problem sizes. *)

open Dpc_kir.Build
module Cfg = Dpc_gpu.Config
module Device = Dpc_sim.Device
module M = Dpc_sim.Metrics
module V = Dpc_kir.Value
module Kernel = Dpc_kir.Kernel

let mk_program kernels =
  let p = Kernel.Program.create () in
  List.iter (Kernel.Program.add p) kernels;
  p

(* A kernel doing a fixed amount of per-thread busy work. *)
let busy_kernel name iters =
  kernel ~name ~params:[ pi "out" ]
    [
      set "acc" (i 0);
      for_ "k" ~from:(i 0) ~below:(i iters) [ set "acc" (v "acc" +: v "k") ];
      store (v "out") (i 0) (v "acc");
    ]

let run_report ?(cfg = Cfg.test_device) kernels ~entry ~grid ~block =
  let dev = Device.create ~cfg (mk_program kernels) in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev entry ~grid ~block [ V.Vbuf out.Dpc_gpu.Memory.id ];
  Device.report dev

let test_more_blocks_take_longer () =
  (* Enough per-block work that execution dominates the host launch
     latency included in the end-to-end cycle count. *)
  let r1 = run_report [ busy_kernel "b" 2000 ] ~entry:"b" ~grid:1 ~block:32 in
  (* 32 blocks on a 2-SMX device with 4 blocks/SMX: ~4 sequential waves. *)
  let r8 = run_report [ busy_kernel "b" 2000 ] ~entry:"b" ~grid:32 ~block:32 in
  Alcotest.(check bool) "more blocks, more cycles" true
    (r8.M.cycles > r1.M.cycles *. 1.5)

let test_occupancy_higher_with_more_warps () =
  let r1 = run_report [ busy_kernel "b" 500 ] ~entry:"b" ~grid:1 ~block:32 in
  let r4 = run_report [ busy_kernel "b" 500 ] ~entry:"b" ~grid:8 ~block:64 in
  Alcotest.(check bool) "occupancy grows" true
    (r4.M.occupancy > r1.M.occupancy)

(* Launch storms must overflow the tiny device's 16-entry fixed pool. *)
let test_pool_overflow_penalty () =
  let child = busy_kernel "child" 5 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [ launch "child" ~grid:(i 1) ~block:(i 32) [ v "out" ] ]
  in
  let r =
    run_report [ child; parent ] ~entry:"parent" ~grid:4 ~block:64
  in
  (* 4 blocks x 64 threads = 256 launches >> 16 pool entries *)
  Alcotest.(check int) "launch count" 256 r.M.device_launches;
  Alcotest.(check bool) "pool overflowed" true (r.M.max_pending > 16);
  Alcotest.(check bool) "virtualized launches recorded" true
    (r.M.virtualized_launches > 0)

let test_sync_swap_recorded () =
  let child = busy_kernel "child" 50 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [
        if_then (tid ==: i 0)
          [ launch "child" ~grid:(i 2) ~block:(i 32) [ v "out" ] ];
        device_sync;
        store (v "out") (i 1) (i 7);
      ]
  in
  let r = run_report [ child; parent ] ~entry:"parent" ~grid:1 ~block:32 in
  Alcotest.(check bool) "sync caused a swap" true (r.M.swapped_syncs >= 1)

let test_launch_latency_raises_total () =
  let child = busy_kernel "child" 5 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [
        if_then (tid ==: i 0)
          [ launch "child" ~grid:(i 1) ~block:(i 32) [ v "out" ] ];
      ]
  in
  let run lat =
    let cfg = { Cfg.test_device with Cfg.device_launch_latency = lat } in
    (run_report ~cfg [ child; parent ] ~entry:"parent" ~grid:1 ~block:32)
      .M.cycles
  in
  Alcotest.(check bool) "latency visible end-to-end" true
    (run 50_000 -. run 1_000 > 40_000.0)

let test_host_launches_serialize () =
  let k = busy_kernel "b" 50 in
  let dev = Device.create ~cfg:Cfg.test_device (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev "b" ~grid:1 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  let one = (Device.report dev).M.cycles in
  Device.launch dev "b" ~grid:1 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  let two = (Device.report dev).M.cycles in
  Alcotest.(check bool) "two launches take about twice as long" true
    (two > one *. 1.7)

let test_fcfs_not_slower_than_ps () =
  (* Without contention modeling every block runs at its solo rate, so the
     FCFS discipline can only speed things up. *)
  let mk sched =
    let dev =
      Device.create ~cfg:Cfg.test_device ~scheduler:sched
        (mk_program [ busy_kernel "b" 300 ])
    in
    let out = Device.alloc_int dev ~name:"out" 4 in
    Device.launch dev "b" ~grid:8 ~block:64 [ V.Vbuf out.Dpc_gpu.Memory.id ];
    (Device.report dev).M.cycles
  in
  Alcotest.(check bool) "fcfs <= ps" true
    (mk Dpc_sim.Timing.Fcfs <= mk Dpc_sim.Timing.Processor_sharing +. 1.0)

let test_report_deterministic () =
  let run () =
    (run_report [ busy_kernel "b" 100 ] ~entry:"b" ~grid:4 ~block:64).M.cycles
  in
  Alcotest.(check (float 0.0)) "same cycles both runs" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "blocks serialize" `Quick test_more_blocks_take_longer;
    Alcotest.test_case "occupancy grows with warps" `Quick
      test_occupancy_higher_with_more_warps;
    Alcotest.test_case "pool overflow" `Quick test_pool_overflow_penalty;
    Alcotest.test_case "sync swap" `Quick test_sync_swap_recorded;
    Alcotest.test_case "launch latency" `Quick test_launch_latency_raises_total;
    Alcotest.test_case "host launches serialize" `Quick
      test_host_launches_serialize;
    Alcotest.test_case "fcfs vs ps" `Quick test_fcfs_not_slower_than_ps;
    Alcotest.test_case "deterministic" `Quick test_report_deterministic;
  ]

let test_timeline_renders () =
  let dev =
    Device.create ~cfg:Cfg.test_device (mk_program [ busy_kernel "b" 200 ])
  in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev "b" ~grid:4 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  ignore (Device.report dev);
  let chart =
    Dpc_sim.Timeline.of_session ~width:40 ~height:4 (Device.session dev)
  in
  let lines = String.split_on_char '\n' chart in
  (* 4 rows + axis + caption *)
  Alcotest.(check bool) "has rows" true (List.length lines >= 6);
  Alcotest.(check bool) "shows some utilization" true
    (String.exists (fun c -> c = '#' || c = '@' || c = '=') chart)

let test_timeline_bucketize_conserves_mass () =
  (* Time-weighted warp mass is preserved by bucketing. *)
  let samples = [ (0.0, 10); (50.0, 20); (75.0, 0) ] in
  let total = 100.0 in
  let buckets = Dpc_sim.Timeline.bucketize ~width:10 ~total samples in
  let mass = Array.fold_left ( +. ) 0.0 buckets *. (total /. 10.0) in
  (* 10 warps * 50 cycles + 20 * 25 + 0 * 25 = 1000 *)
  Alcotest.(check (float 1e-6)) "mass" 1000.0 mass

let suite =
  suite
  @ [
      Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
      Alcotest.test_case "timeline mass" `Quick
        test_timeline_bucketize_conserves_mass;
    ]
