(* Unit tests of the discrete-event timing model, run on the deliberately
   tiny [Config.test_device] so concurrency and pool effects appear at
   small problem sizes. *)

open Dpc_kir.Build
module Cfg = Dpc_gpu.Config
module Device = Dpc_sim.Device
module M = Dpc_sim.Metrics
module V = Dpc_kir.Value
module Kernel = Dpc_kir.Kernel

let mk_program kernels =
  let p = Kernel.Program.create () in
  List.iter (Kernel.Program.add p) kernels;
  p

(* A kernel doing a fixed amount of per-thread busy work. *)
let busy_kernel name iters =
  kernel ~name ~params:[ pi "out" ]
    [
      set "acc" (i 0);
      for_ "k" ~from:(i 0) ~below:(i iters) [ set "acc" (v "acc" +: v "k") ];
      store (v "out") (i 0) (v "acc");
    ]

let run_report ?(cfg = Cfg.test_device) kernels ~entry ~grid ~block =
  let dev = Device.create ~cfg (mk_program kernels) in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev entry ~grid ~block [ V.Vbuf out.Dpc_gpu.Memory.id ];
  Device.report dev

let test_more_blocks_take_longer () =
  (* Enough per-block work that execution dominates the host launch
     latency included in the end-to-end cycle count. *)
  let r1 = run_report [ busy_kernel "b" 2000 ] ~entry:"b" ~grid:1 ~block:32 in
  (* 32 blocks on a 2-SMX device with 4 blocks/SMX: ~4 sequential waves. *)
  let r8 = run_report [ busy_kernel "b" 2000 ] ~entry:"b" ~grid:32 ~block:32 in
  Alcotest.(check bool) "more blocks, more cycles" true
    (r8.M.cycles > r1.M.cycles *. 1.5)

let test_occupancy_higher_with_more_warps () =
  let r1 = run_report [ busy_kernel "b" 500 ] ~entry:"b" ~grid:1 ~block:32 in
  let r4 = run_report [ busy_kernel "b" 500 ] ~entry:"b" ~grid:8 ~block:64 in
  Alcotest.(check bool) "occupancy grows" true
    (r4.M.occupancy > r1.M.occupancy)

(* Launch storms must overflow the tiny device's 16-entry fixed pool. *)
let test_pool_overflow_penalty () =
  let child = busy_kernel "child" 5 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [ launch "child" ~grid:(i 1) ~block:(i 32) [ v "out" ] ]
  in
  let r =
    run_report [ child; parent ] ~entry:"parent" ~grid:4 ~block:64
  in
  (* 4 blocks x 64 threads = 256 launches >> 16 pool entries *)
  Alcotest.(check int) "launch count" 256 r.M.device_launches;
  Alcotest.(check bool) "pool overflowed" true (r.M.max_pending > 16);
  Alcotest.(check bool) "virtualized launches recorded" true
    (r.M.virtualized_launches > 0)

let test_sync_swap_recorded () =
  let child = busy_kernel "child" 50 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [
        if_then (tid ==: i 0)
          [ launch "child" ~grid:(i 2) ~block:(i 32) [ v "out" ] ];
        device_sync;
        store (v "out") (i 1) (i 7);
      ]
  in
  let r = run_report [ child; parent ] ~entry:"parent" ~grid:1 ~block:32 in
  Alcotest.(check bool) "sync caused a swap" true (r.M.swapped_syncs >= 1)

let test_launch_latency_raises_total () =
  let child = busy_kernel "child" 5 in
  let parent =
    kernel ~name:"parent" ~params:[ pi "out" ]
      [
        if_then (tid ==: i 0)
          [ launch "child" ~grid:(i 1) ~block:(i 32) [ v "out" ] ];
      ]
  in
  let run lat =
    let cfg = { Cfg.test_device with Cfg.device_launch_latency = lat } in
    (run_report ~cfg [ child; parent ] ~entry:"parent" ~grid:1 ~block:32)
      .M.cycles
  in
  Alcotest.(check bool) "latency visible end-to-end" true
    (run 50_000 -. run 1_000 > 40_000.0)

let test_host_launches_serialize () =
  let k = busy_kernel "b" 50 in
  let dev = Device.create ~cfg:Cfg.test_device (mk_program [ k ]) in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev "b" ~grid:1 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  let one = (Device.report dev).M.cycles in
  Device.launch dev "b" ~grid:1 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  let two = (Device.report dev).M.cycles in
  Alcotest.(check bool) "two launches take about twice as long" true
    (two > one *. 1.7)

let test_fcfs_not_slower_than_ps () =
  (* Without contention modeling every block runs at its solo rate, so the
     FCFS discipline can only speed things up. *)
  let mk sched =
    let dev =
      Device.create ~cfg:Cfg.test_device ~scheduler:sched
        (mk_program [ busy_kernel "b" 300 ])
    in
    let out = Device.alloc_int dev ~name:"out" 4 in
    Device.launch dev "b" ~grid:8 ~block:64 [ V.Vbuf out.Dpc_gpu.Memory.id ];
    (Device.report dev).M.cycles
  in
  Alcotest.(check bool) "fcfs <= ps" true
    (mk Dpc_sim.Timing.Fcfs <= mk Dpc_sim.Timing.Processor_sharing +. 1.0)

let test_report_deterministic () =
  let run () =
    (run_report [ busy_kernel "b" 100 ] ~entry:"b" ~grid:4 ~block:64).M.cycles
  in
  Alcotest.(check (float 0.0)) "same cycles both runs" (run ()) (run ())

(* --- deep memory-model features: Memmodel counting + Timing pricing --- *)

module Mm = Dpc_sim.Memmodel
module T = Dpc_sim.Trace

let deep_cfg =
  {
    Cfg.test_device with
    Cfg.shared_banks = 32;
    bank_replay_cycles = 2;
    mshr_per_warp = 8;
    mshr_retire_per_access = 1;
    mshr_stall_cycles = 4;
  }

let test_memmodel_bank_replays () =
  let mm = Mm.create deep_cfg in
  let seg = T.seg_builder () in
  let idx f = Array.init 32 f in
  let count a =
    let before = seg.T.bank_rp in
    Mm.account_shared mm ~seg a 32;
    seg.T.bank_rp - before
  in
  Alcotest.(check int) "unit stride is conflict-free" 0
    (count (idx (fun l -> l)));
  Alcotest.(check int) "one word broadcasts for free" 0
    (count (idx (fun _ -> 7)));
  Alcotest.(check int) "stride two: two words per bank, one replay" 1
    (count (idx (fun l -> 2 * l)));
  Alcotest.(check int) "stride 32: all lanes on one bank" 31
    (count (idx (fun l -> 32 * l)));
  (* Two distinct words 64 apart share one dedup scratch slot; the
     linear fallback must still see two words on bank zero (one
     replay), not collapse them into a broadcast. *)
  Alcotest.(check int) "slot-colliding words stay distinct" 1
    (count (idx (fun l -> if l < 16 then 0 else 64)))

let test_memmodel_mshr_stalls () =
  let mm = Mm.create deep_cfg in
  Mm.block_start mm;
  let seg = T.seg_builder () in
  (* 32 lanes touch 32 distinct cold segments: 32 misses against the
     8-entry budget leave 24 transactions past it. *)
  let addrs = Array.init 32 (fun l -> l * 128) in
  Mm.account_access mm ~seg ~warp:0 addrs 32;
  Alcotest.(check int) "misses counted" 32 seg.T.dram;
  Alcotest.(check int) "stalls past the budget" 24 seg.T.mshr_st;
  (* The same segments now hit in L2: no new misses, and the occupancy
     drains instead of stalling again. *)
  Mm.account_access mm ~seg ~warp:0 addrs 32;
  Alcotest.(check int) "hits add no stalls" 24 seg.T.mshr_st;
  Alcotest.(check int) "hits served by L2" 32 seg.T.l2;
  (* A fresh block resets per-warp occupancy. *)
  Mm.block_start mm;
  let seg2 = T.seg_builder () in
  Mm.account_access mm ~seg:seg2 ~warp:0 [| 0 |] 1;
  Alcotest.(check int) "block reset: one hit, no stall" 0 seg2.T.mshr_st

let test_dual_issue_speedup () =
  (* One block of two warps on a 4-slot SMX: single-issue caps the block
     at 2 instructions/cycle, dual-issue at 4. *)
  let run ipw =
    let cfg = { Cfg.test_device with Cfg.issue_per_warp = ipw } in
    (run_report ~cfg [ busy_kernel "b" 2000 ] ~entry:"b" ~grid:1 ~block:64)
      .M.cycles
  in
  let single = run 1 and dual = run 2 in
  Alcotest.(check bool) "dual-issue is materially faster" true
    (dual < single *. 0.8)

let test_bank_replays_charged () =
  let k =
    kernel ~name:"b" ~params:[ pi "out" ] ~shared:[ ("s", 64) ]
      [
        shared_set "s" (tid *: i 2 %: i 64) tid;
        sync;
        store (v "out") (i 0) (shared "s" (i 0));
      ]
  in
  let run banks =
    let cfg =
      {
        Cfg.test_device with
        Cfg.shared_banks = banks;
        bank_replay_cycles = 64;
      }
    in
    run_report ~cfg [ k ] ~entry:"b" ~grid:1 ~block:32
  in
  let off = run 0 and on_ = run 32 in
  Alcotest.(check int) "no replays with banks unmodeled" 0
    off.M.bank_conflict_replays;
  Alcotest.(check bool) "stride-two store replays" true
    (on_.M.bank_conflict_replays > 0);
  Alcotest.(check bool) "replays cost cycles" true
    (on_.M.cycles > off.M.cycles)

let test_mshr_stalls_charged () =
  let k =
    kernel ~name:"b"
      ~params:[ pi "d"; pi "out" ]
      [
        set "x" (load (v "d") (tid *: i 64));
        store (v "out") (i 0) (v "x");
      ]
  in
  let run mshr =
    let cfg =
      {
        Cfg.test_device with
        Cfg.mshr_per_warp = mshr;
        mshr_retire_per_access = 1;
        mshr_stall_cycles = 100;
      }
    in
    let dev = Device.create ~cfg (mk_program [ k ]) in
    let d = Device.alloc_int dev ~name:"d" 2048 in
    let out = Device.alloc_int dev ~name:"out" 4 in
    Device.launch dev "b" ~grid:1 ~block:32
      [ V.Vbuf d.Dpc_gpu.Memory.id; V.Vbuf out.Dpc_gpu.Memory.id ];
    Device.report dev
  in
  let off = run 0 and on_ = run 8 in
  Alcotest.(check int) "no stalls with MSHRs unmodeled" 0 off.M.mshr_stalls;
  Alcotest.(check bool) "scatter past the budget stalls" true
    (on_.M.mshr_stalls > 0);
  Alcotest.(check bool) "stalls cost cycles" true
    (on_.M.cycles > off.M.cycles)

let suite =
  [
    Alcotest.test_case "blocks serialize" `Quick test_more_blocks_take_longer;
    Alcotest.test_case "occupancy grows with warps" `Quick
      test_occupancy_higher_with_more_warps;
    Alcotest.test_case "pool overflow" `Quick test_pool_overflow_penalty;
    Alcotest.test_case "sync swap" `Quick test_sync_swap_recorded;
    Alcotest.test_case "launch latency" `Quick test_launch_latency_raises_total;
    Alcotest.test_case "host launches serialize" `Quick
      test_host_launches_serialize;
    Alcotest.test_case "fcfs vs ps" `Quick test_fcfs_not_slower_than_ps;
    Alcotest.test_case "deterministic" `Quick test_report_deterministic;
    Alcotest.test_case "memmodel bank replays" `Quick
      test_memmodel_bank_replays;
    Alcotest.test_case "memmodel mshr stalls" `Quick
      test_memmodel_mshr_stalls;
    Alcotest.test_case "dual issue" `Quick test_dual_issue_speedup;
    Alcotest.test_case "bank replays charged" `Quick
      test_bank_replays_charged;
    Alcotest.test_case "mshr stalls charged" `Quick test_mshr_stalls_charged;
  ]

let test_timeline_renders () =
  let dev =
    Device.create ~cfg:Cfg.test_device (mk_program [ busy_kernel "b" 200 ])
  in
  let out = Device.alloc_int dev ~name:"out" 4 in
  Device.launch dev "b" ~grid:4 ~block:32 [ V.Vbuf out.Dpc_gpu.Memory.id ];
  ignore (Device.report dev);
  let chart =
    Dpc_sim.Timeline.of_session ~width:40 ~height:4 (Device.session dev)
  in
  let lines = String.split_on_char '\n' chart in
  (* 4 rows + axis + caption *)
  Alcotest.(check bool) "has rows" true (List.length lines >= 6);
  Alcotest.(check bool) "shows some utilization" true
    (String.exists (fun c -> c = '#' || c = '@' || c = '=') chart)

let test_timeline_bucketize_conserves_mass () =
  (* Time-weighted warp mass is preserved by bucketing. *)
  let samples = [ (0.0, 10); (50.0, 20); (75.0, 0) ] in
  let total = 100.0 in
  let buckets = Dpc_sim.Timeline.bucketize ~width:10 ~total samples in
  let mass = Array.fold_left ( +. ) 0.0 buckets *. (total /. 10.0) in
  (* 10 warps * 50 cycles + 20 * 25 + 0 * 25 = 1000 *)
  Alcotest.(check (float 1e-6)) "mass" 1000.0 mass

let suite =
  suite
  @ [
      Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
      Alcotest.test_case "timeline mass" `Quick
        test_timeline_bucketize_conserves_mass;
    ]
