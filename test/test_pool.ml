(* Tests for the Domain worker pool: ordering, exception propagation,
   the stealing scheduler's contract (identical results, steals actually
   happen, deterministic lowest-index failure reporting) and — the
   property the experiment harness depends on — byte-identical figure
   tables at any job count. *)

module Pool = Dpc_util.Pool
module Suite = Dpc_experiments.Suite
module Figs = Dpc_experiments.Figs7_10
module R = Dpc_apps.Registry
module Table = Dpc_util.Table

let test_create_validates () =
  Alcotest.check_raises "jobs >= 1"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_sched_strings () =
  Alcotest.(check string) "shared" "shared" (Pool.sched_to_string Pool.Shared);
  Alcotest.(check string) "steal" "steal" (Pool.sched_to_string Pool.Steal);
  Alcotest.(check bool) "roundtrip" true
    (Pool.sched_of_string "Steal" = Pool.Steal
    && Pool.sched_of_string "shared" = Pool.Shared);
  Alcotest.check_raises "unknown rejected"
    (Invalid_argument "bad pool scheduler \"lifo\" (expected shared or steal)")
    (fun () -> ignore (Pool.sched_of_string "lifo"))

let test_map_empty () =
  let p = Pool.create ~jobs:4 () in
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map p succ [])

let test_map_order_preserved () =
  (* More tasks than workers, with the later tasks much cheaper: results
     must still come back in submission order. *)
  let p = Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  let f i =
    if i < 4 then ignore (Sys.opaque_identity (Array.make 10_000 i));
    i * i
  in
  Alcotest.(check (list int)) "ordered" (List.map f xs)
    (Pool.parallel_map p f xs)

let test_iter_runs_all_tasks () =
  let p = Pool.create ~jobs:3 () in
  let hits = Atomic.make 0 in
  Pool.parallel_iter p
    (fun k -> ignore (Atomic.fetch_and_add hits k))
    (List.init 50 Fun.id);
  Alcotest.(check int) "sum of indices" (50 * 49 / 2) (Atomic.get hits)

let test_exception_propagates () =
  let p = Pool.create ~jobs:4 () in
  Alcotest.check_raises "worker failure re-raised" (Failure "task 17")
    (fun () ->
      ignore
        (Pool.parallel_map p
           (fun i -> if i = 17 then failwith "task 17" else i)
           (List.init 40 Fun.id)))

let test_serial_path_identical () =
  let f i = (i * 7919) mod 997 in
  let xs = List.init 64 Fun.id in
  let serial = Pool.parallel_map (Pool.create ~jobs:1 ()) f xs in
  let parallel = Pool.parallel_map (Pool.create ~jobs:5 ()) f xs in
  Alcotest.(check (list int)) "jobs-independent" serial parallel

(* The QCheck form of the contract: parallel_map is List.map. *)
let prop_map_equals_list_map =
  QCheck.Test.make ~count:50 ~name:"parallel_map = List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 31) lxor 5 in
      Pool.parallel_map (Pool.create ~jobs ()) f xs = List.map f xs)

(* Same contract for the stealing scheduler, with an arbitrary cost
   estimate: estimates steer scheduling only, never results or order. *)
let prop_steal_map_equals_list_map =
  QCheck.Test.make ~count:50 ~name:"steal parallel_map = List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 31) lxor 5 in
      let cost x = float_of_int ((abs x mod 7) + 1) in
      Pool.parallel_map ~cost
        (Pool.create ~sched:Pool.Steal ~jobs ())
        f xs
      = List.map f xs)

let test_steal_order_preserved () =
  (* Skewed costs reverse the execution order (LPT runs the expensive
     tail first), but the result list must stay in submission order. *)
  let p = Pool.create ~sched:Pool.Steal ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  let cost i = float_of_int (i * i) in
  let f i = i * 3 in
  Alcotest.(check (list int)) "ordered" (List.map f xs)
    (Pool.parallel_map ~cost p f xs)

let test_steal_occurs () =
  (* One task is ~100x the rest; its owner is pinned on it while the
     other three workers drain their own deques and then come stealing
     its queued share.  [last_steals] must see that. *)
  let p = Pool.create ~sched:Pool.Steal ~jobs:4 () in
  let cost i = if i = 0 then 100. else 1. in
  let f i =
    Unix.sleepf (if i = 0 then 0.1 else 0.001);
    i
  in
  let xs = List.init 40 Fun.id in
  let res = Pool.parallel_map ~cost p f xs in
  Alcotest.(check (list int)) "order" xs res;
  Alcotest.(check bool) "steals happened" true (Pool.last_steals p > 0)

let test_steal_counter_resets () =
  (* A uniform run after a stealing run must report its own count, not
     the previous call's. *)
  let p = Pool.create ~sched:Pool.Steal ~jobs:1 () in
  Pool.parallel_iter p ignore (List.init 10 Fun.id);
  Alcotest.(check int) "serial path never steals" 0 (Pool.last_steals p)

(* Two tasks rendezvous on an atomic so they are guaranteed to be
   in-flight simultaneously, then both raise.  Whatever the claim timing,
   the pool must report the lowest-indexed one.  The deadline guard keeps
   the test finite if a scheduler ever ran both on one worker. *)
let test_lowest_failure_concurrent () =
  let check sched =
    let p = Pool.create ~sched ~jobs:2 () in
    for _ = 1 to 3 do
      let arrived = Atomic.make 0 in
      let f i =
        if i = 5 || i = 17 then begin
          Atomic.incr arrived;
          let deadline = Unix.gettimeofday () +. 5.0 in
          while Atomic.get arrived < 2 && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.0005
          done;
          failwith (Printf.sprintf "task %d" i)
        end;
        i
      in
      Alcotest.check_raises
        (Pool.sched_to_string sched ^ ": lowest index reported")
        (Failure "task 5")
        (fun () -> ignore (Pool.parallel_map p f (List.init 40 Fun.id)))
    done
  in
  check Pool.Shared;
  check Pool.Steal

let test_lowest_failure_unclaimed () =
  (* The stealing scheduler runs the most expensive task first; it fails
     immediately, while a cheaper, lower-indexed task that would also
     fail is still sitting unclaimed in a deque.  The cleanup pass must
     find it: the reported error names the lowest-indexed failing task
     even though it had not run when the pool went down. *)
  let p = Pool.create ~sched:Pool.Steal ~jobs:2 () in
  let cost i = if i = 25 then 1000. else 1. in
  let f i =
    if i = 25 then failwith "task 25";
    Unix.sleepf 0.001;
    if i = 3 then failwith "task 3";
    i
  in
  Alcotest.check_raises "unclaimed lower failure reported" (Failure "task 3")
    (fun () ->
      ignore (Pool.parallel_map ~cost p f (List.init 40 Fun.id)))

(* Figure tables must be byte-identical at any job count.  Runs the
   fig7/fig8 pipeline end-to-end on the three node-count-scaled apps (the
   registry's scale semantics differ per app, so the full-suite identity
   check lives in bin/experiments.exe --jobs). *)
let test_fig7_tables_jobs_identical () =
  let apps = [ R.sssp; R.spmv; R.pagerank ] in
  let collect jobs =
    Suite.collect ~verbose:false ~scale:500 ~jobs ~apps ()
  in
  let s1 = collect 1 and s4 = collect 4 in
  Alcotest.(check string) "fig7 byte-identical"
    (Table.render (Figs.fig7 s1))
    (Table.render (Figs.fig7 s4));
  Alcotest.(check string) "fig8 byte-identical"
    (Table.render (Figs.fig8 s1))
    (Table.render (Figs.fig8 s4))

let suite =
  [
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
    Alcotest.test_case "sched codecs" `Quick test_sched_strings;
    Alcotest.test_case "map empty" `Quick test_map_empty;
    Alcotest.test_case "map order" `Quick test_map_order_preserved;
    Alcotest.test_case "iter all tasks" `Quick test_iter_runs_all_tasks;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "serial/parallel identical" `Quick
      test_serial_path_identical;
    QCheck_alcotest.to_alcotest prop_map_equals_list_map;
    QCheck_alcotest.to_alcotest prop_steal_map_equals_list_map;
    Alcotest.test_case "steal order preserved" `Quick
      test_steal_order_preserved;
    Alcotest.test_case "steal occurs under skew" `Quick test_steal_occurs;
    Alcotest.test_case "steal counter per-call" `Quick
      test_steal_counter_resets;
    Alcotest.test_case "concurrent failures: lowest wins" `Quick
      test_lowest_failure_concurrent;
    Alcotest.test_case "unclaimed lower failure wins" `Quick
      test_lowest_failure_unclaimed;
    Alcotest.test_case "fig7/fig8 tables jobs-identical" `Slow
      test_fig7_tables_jobs_identical;
  ]
