(* Tests for the Domain worker pool: ordering, exception propagation,
   and — the property the experiment harness depends on — byte-identical
   figure tables at any job count. *)

module Pool = Dpc_util.Pool
module Suite = Dpc_experiments.Suite
module Figs = Dpc_experiments.Figs7_10
module R = Dpc_apps.Registry
module Table = Dpc_util.Table

let test_create_validates () =
  Alcotest.check_raises "jobs >= 1"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_map_empty () =
  let p = Pool.create ~jobs:4 in
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map p succ [])

let test_map_order_preserved () =
  (* More tasks than workers, with the later tasks much cheaper: results
     must still come back in submission order. *)
  let p = Pool.create ~jobs:4 in
  let xs = List.init 100 Fun.id in
  let f i =
    if i < 4 then ignore (Sys.opaque_identity (Array.make 10_000 i));
    i * i
  in
  Alcotest.(check (list int)) "ordered" (List.map f xs)
    (Pool.parallel_map p f xs)

let test_iter_runs_all_tasks () =
  let p = Pool.create ~jobs:3 in
  let hits = Atomic.make 0 in
  Pool.parallel_iter p
    (fun k -> ignore (Atomic.fetch_and_add hits k))
    (List.init 50 Fun.id);
  Alcotest.(check int) "sum of indices" (50 * 49 / 2) (Atomic.get hits)

let test_exception_propagates () =
  let p = Pool.create ~jobs:4 in
  Alcotest.check_raises "worker failure re-raised" (Failure "task 17")
    (fun () ->
      ignore
        (Pool.parallel_map p
           (fun i -> if i = 17 then failwith "task 17" else i)
           (List.init 40 Fun.id)))

let test_serial_path_identical () =
  let f i = (i * 7919) mod 997 in
  let xs = List.init 64 Fun.id in
  let serial = Pool.parallel_map (Pool.create ~jobs:1) f xs in
  let parallel = Pool.parallel_map (Pool.create ~jobs:5) f xs in
  Alcotest.(check (list int)) "jobs-independent" serial parallel

(* The QCheck form of the contract: parallel_map is List.map. *)
let prop_map_equals_list_map =
  QCheck.Test.make ~count:50 ~name:"parallel_map = List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 31) lxor 5 in
      Pool.parallel_map (Pool.create ~jobs) f xs = List.map f xs)

(* Figure tables must be byte-identical at any job count.  Runs the
   fig7/fig8 pipeline end-to-end on the three node-count-scaled apps (the
   registry's scale semantics differ per app, so the full-suite identity
   check lives in bin/experiments.exe --jobs). *)
let test_fig7_tables_jobs_identical () =
  let apps = [ R.sssp; R.spmv; R.pagerank ] in
  let collect jobs =
    Suite.collect ~verbose:false ~scale:500 ~jobs ~apps ()
  in
  let s1 = collect 1 and s4 = collect 4 in
  Alcotest.(check string) "fig7 byte-identical"
    (Table.render (Figs.fig7 s1))
    (Table.render (Figs.fig7 s4));
  Alcotest.(check string) "fig8 byte-identical"
    (Table.render (Figs.fig8 s1))
    (Table.render (Figs.fig8 s4))

let suite =
  [
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
    Alcotest.test_case "map empty" `Quick test_map_empty;
    Alcotest.test_case "map order" `Quick test_map_order_preserved;
    Alcotest.test_case "iter all tasks" `Quick test_iter_runs_all_tasks;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "serial/parallel identical" `Quick
      test_serial_path_identical;
    QCheck_alcotest.to_alcotest prop_map_equals_list_map;
    Alcotest.test_case "fig7/fig8 tables jobs-identical" `Slow
      test_fig7_tables_jobs_identical;
  ]
