(* Tests for the Free Launch comparison baseline. *)

module Parser = Dpc_minicu.Parser
module FL = Dpc.Free_launch
module Device = Dpc_sim.Device
module M = Dpc_sim.Metrics
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory

let ragged_src =
  {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(block) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}

let run_free_launch () =
  let prog = Parser.parse_program ragged_src in
  let r = FL.apply ~parent:"parent" prog in
  let n = 400 in
  let g = Dpc_graph.Gen.uniform_random ~n ~deg_lo:0 ~deg_hi:40 ~seed:3 in
  let dev = Device.create r.FL.program in
  let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
  let data0 = Array.init (Dpc_graph.Csr.nnz g) (fun i -> i + 1) in
  let data = Device.of_int_array dev ~name:"d" data0 in
  Device.launch dev r.FL.entry ~grid:((n + 127) / 128) ~block:128
    [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 10 ];
  (Device.read_int_array dev data.Mem.id, data0, Device.report dev)

let test_free_launch_correct () =
  let got, data0, report = run_free_launch () in
  Alcotest.(check (array int)) "all doubled"
    (Array.map (fun x -> x * 2) data0)
    got;
  Alcotest.(check int) "no device launches remain" 0
    report.M.device_launches

let test_free_launch_rejects_recursion () =
  let src =
    {|
__global__ void rec(int* d, int x) {
  if (x > 0) {
    #pragma dp consldt(block) work(x)
    launch rec<<<1, 32>>>(d, x - 1);
  }
}
|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "recursion rejected" true
    (try
       ignore (FL.apply ~parent:"rec" prog);
       false
     with FL.Unsupported _ -> true)

let test_free_launch_rejects_sync_child () =
  let src =
    {|
__global__ void child(int* d, int x) {
  __shared__ int tmp[32];
  tmp[threadIdx.x] = d[x];
  __syncthreads();
  d[x] = tmp[0];
}
__global__ void parent(int* d) {
  var x = threadIdx.x;
  #pragma dp consldt(block) work(x)
  launch child<<<1, 32>>>(d, x);
}
|}
  in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "barrier child rejected" true
    (try
       ignore (FL.apply ~parent:"parent" prog);
       false
     with FL.Unsupported _ -> true)

let test_free_launch_slower_than_consolidation () =
  (* Thread reuse removes launches but serializes the heavy rows on one
     thread; consolidation should beat it on imbalanced inputs. *)
  let n = 1500 in
  let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
  let data0 = Array.init (Dpc_graph.Csr.nnz g) (fun i -> i + 1) in
  let run program entry =
    let dev = Device.create program in
    let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
    let data = Device.of_int_array dev ~name:"d" data0 in
    Device.launch dev entry ~grid:((n + 127) / 128) ~block:128
      [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 10 ];
    (Device.report dev).M.cycles
  in
  let prog () = Parser.parse_program ragged_src in
  let fl = FL.apply ~parent:"parent" (prog ()) in
  let cons =
    Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:"parent" (prog ())
  in
  let fl_cycles = run fl.FL.program fl.FL.entry in
  let cons_cycles = run cons.Dpc.Transform.program cons.Dpc.Transform.entry in
  Alcotest.(check bool) "consolidation beats thread reuse" true
    (cons_cycles < fl_cycles)

let suite =
  [
    Alcotest.test_case "free launch correct" `Quick test_free_launch_correct;
    Alcotest.test_case "rejects recursion" `Quick
      test_free_launch_rejects_recursion;
    Alcotest.test_case "rejects sync child" `Quick
      test_free_launch_rejects_sync_child;
    Alcotest.test_case "consolidation beats it" `Quick
      test_free_launch_slower_than_consolidation;
  ]
