(* Dpc_prof: JSON printer/parser, event-stream invariants, per-kernel
   profiles, Chrome-trace structure, and the exported suite snapshot.

   The profiling subsystem has a determinism contract — per-run sinks,
   insertion-ordered JSON objects, fixed float formatting — so these
   tests lean on byte-for-byte comparisons, including across domain
   counts. *)

module Json = Dpc_prof.Json
module Event = Dpc_prof.Event
module Profile = Dpc_prof.Profile
module Chrome = Dpc_prof.Chrome_trace
module M = Dpc_sim.Metrics
module Device = Dpc_sim.Device
module H = Dpc_apps.Harness
module R = Dpc_apps.Registry
module Pragma = Dpc_kir.Pragma
module Table = Dpc_util.Table
module E = Dpc_experiments

(* --- Json ---------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
      ("n", Json.Int (-42));
      ("big", Json.Int 9007199254740993);
      ("xs", Json.List [ Json.Float 1.5; Json.Float 0.1; Json.Float 1e-3 ]);
      ("s", Json.String "quote \" slash \\ newline \n tab \t unicode \x01");
      ("empty_obj", Json.Obj []);
      ("empty_list", Json.List []);
    ]

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool a, Json.Bool b -> a = b
  | Json.Int a, Json.Int b -> a = b
  | Json.Float a, Json.Float b -> a = b
  | Json.String a, Json.String b -> a = b
  | Json.List a, Json.List b ->
    List.length a = List.length b && List.for_all2 json_eq a b
  | Json.Obj a, Json.Obj b ->
    List.length a = List.length b
    && List.for_all2
         (fun (ka, va) (kb, vb) -> ka = kb && json_eq va vb)
         a b
  | _ -> false

let test_json_roundtrip () =
  let compact = Json.to_string sample_json in
  let pretty = Json.to_string_pretty sample_json in
  Alcotest.(check bool) "compact roundtrips" true
    (json_eq sample_json (Json.parse compact));
  Alcotest.(check bool) "pretty roundtrips" true
    (json_eq sample_json (Json.parse pretty));
  (* printing is a function of the value alone *)
  Alcotest.(check string) "reprint is stable" compact
    (Json.to_string (Json.parse compact))

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad {|"abc|});
  Alcotest.(check bool) "bare word" true (bad "nul");
  Alcotest.(check bool) "nan not representable" true
    (match Json.to_string (Json.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Metrics completeness ------------------------------------------------ *)

(* A report whose eighteen fields all carry distinct, recognizable
   values: if a field is dropped from [to_rows] or [to_json], its value
   disappears from the output and the test names it. *)
let distinct_report =
  {
    M.cycles = 101.0;
    time_ms = 102.5;
    host_launches = 103;
    device_launches = 104;
    warp_efficiency = 0.105;
    occupancy = 0.106;
    dram_transactions = 107;
    l2_hits = 108;
    bank_conflict_replays = 117;
    mshr_stalls = 118;
    alloc_calls = 109;
    alloc_cycles = 110;
    pool_fallbacks = 111;
    virtualized_launches = 112;
    max_pending = 113;
    swapped_syncs = 114;
    max_depth = 115;
    total_grids = 116;
  }

let test_metrics_rows_complete () =
  let rows = M.to_rows distinct_report in
  Alcotest.(check int) "eighteen rows" 18 (List.length rows);
  let mem v what =
    Alcotest.(check bool) (what ^ " present") true
      (List.exists (fun (_, cell) -> cell = v) rows
       || List.exists
            (fun (_, cell) ->
              (* percentage-formatted fields *)
              cell = v ^ "%")
            rows)
  in
  mem "101" "cycles";
  mem "102.500" "time_ms";
  mem "103" "host_launches";
  mem "104" "device_launches";
  mem "10.5" "warp_efficiency";
  mem "10.6" "occupancy";
  mem "107" "dram_transactions";
  mem "108" "l2_hits";
  mem "117" "bank_conflict_replays";
  mem "118" "mshr_stalls";
  mem "109" "alloc_calls";
  mem "110" "alloc_cycles";
  mem "111" "pool_fallbacks";
  mem "112" "virtualized_launches";
  mem "113" "max_pending";
  mem "114" "swapped_syncs";
  mem "115" "max_depth";
  mem "116" "total_grids"

let test_metrics_json_complete () =
  let j = M.to_json distinct_report in
  let fields =
    match j with
    | Json.Obj kvs -> kvs
    | _ -> Alcotest.fail "to_json is not an object"
  in
  Alcotest.(check int) "eighteen fields" 18 (List.length fields);
  let num key expect =
    match Json.member key j with
    | Some v -> Alcotest.(check (float 1e-9)) key expect (Json.number v)
    | None -> Alcotest.fail (key ^ " missing")
  in
  num "cycles" 101.0;
  num "time_ms" 102.5;
  num "host_launches" 103.0;
  num "device_launches" 104.0;
  num "warp_efficiency" 0.105;
  num "occupancy" 0.106;
  num "dram_transactions" 107.0;
  num "l2_hits" 108.0;
  num "bank_conflict_replays" 117.0;
  num "mshr_stalls" 118.0;
  num "alloc_calls" 109.0;
  num "alloc_cycles" 110.0;
  num "pool_fallbacks" 111.0;
  num "virtualized_launches" 112.0;
  num "max_pending" 113.0;
  num "swapped_syncs" 114.0;
  num "max_depth" 115.0;
  num "total_grids" 116.0

(* --- event-stream invariants --------------------------------------------- *)

(* One profiled SSSP run, shared across the stream/profile/trace tests
   (profiling replays the timing model, so keep it to a single run). *)
let profiled =
  lazy
    (let events = ref [||] in
     let num_smx = ref 0 in
     let inspect dev =
       events := Device.profile dev;
       num_smx := (Device.config dev).Dpc_gpu.Config.num_smx
     in
     let report = R.sssp.R.run ~scale:700 ~inspect (H.Cons Pragma.Grid) in
     (report, !events, !num_smx))

let test_event_stream_invariants () =
  let _, events, num_smx = Lazy.force profiled in
  Alcotest.(check bool) "events recorded" true (Array.length events > 0);
  (* global emission order is simulated-time order *)
  let last = ref neg_infinity in
  Array.iter
    (fun (ev : Event.t) ->
      Alcotest.(check bool) "cycles monotone" true (ev.Event.cycles >= !last);
      last := ev.Event.cycles;
      Alcotest.(check bool) "smx in range" true
        (ev.Event.smx >= -1 && ev.Event.smx < num_smx);
      Alcotest.(check bool) "depth sane" true (ev.Event.depth >= 0))
    events;
  (* per-SMX streams are monotone too (they are a filtration of the
     global stream, but check independently — the Chrome exporter
     builds one track per SMX from them) *)
  let per_smx = Hashtbl.create 16 in
  Array.iter
    (fun (ev : Event.t) ->
      if ev.Event.smx >= 0 then begin
        let prev =
          Option.value ~default:neg_infinity
            (Hashtbl.find_opt per_smx ev.Event.smx)
        in
        Alcotest.(check bool) "per-SMX monotone" true
          (ev.Event.cycles >= prev);
        Hashtbl.replace per_smx ev.Event.smx ev.Event.cycles
      end)
    events;
  (* every grid that starts also completes, exactly once *)
  let started = Hashtbl.create 64 and completed = Hashtbl.create 64 in
  Array.iter
    (fun (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Grid_started ->
        Alcotest.(check bool) "started once" false
          (Hashtbl.mem started ev.Event.gid);
        Hashtbl.add started ev.Event.gid ()
      | Event.Grid_completed _ ->
        Alcotest.(check bool) "completed once" false
          (Hashtbl.mem completed ev.Event.gid);
        Hashtbl.add completed ev.Event.gid ()
      | _ -> ())
    events;
  Alcotest.(check int) "every started grid completes"
    (Hashtbl.length started) (Hashtbl.length completed)

let test_profile_launch_counts () =
  let report, events, _ = Lazy.force profiled in
  let rows = Profile.of_events events in
  Alcotest.(check bool) "has rows" true (rows <> []);
  let total =
    List.fold_left (fun acc (r : Profile.row) -> acc + r.Profile.launches) 0
      rows
  in
  Alcotest.(check int) "launches = host + device"
    (report.M.host_launches + report.M.device_launches)
    total;
  (* depth 0 rows account for exactly the host launches *)
  let host =
    List.fold_left
      (fun acc (r : Profile.row) ->
        if r.Profile.depth = 0 then acc + r.Profile.launches else acc)
      0 rows
  in
  Alcotest.(check int) "depth-0 launches = host launches"
    report.M.host_launches host

let test_chrome_trace_invariants () =
  let _, events, num_smx = Lazy.force profiled in
  let doc = Json.parse (Chrome.to_string ~num_smx events) in
  let evs =
    match Json.member "traceEvents" doc with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no traceEvents"
  in
  Alcotest.(check bool) "has events" true (evs <> []);
  let queue_tid = Chrome.queue_tid ~num_smx in
  let field name e =
    match Json.member name e with
    | Some v -> v
    | None -> Alcotest.fail ("event missing " ^ name)
  in
  let last_ts = ref neg_infinity in
  let seen_slice_tids = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Json.to_str (field "ph" e) with
      | "M" -> () (* metadata records carry no ts *)
      | "X" ->
        let ts = Json.number (field "ts" e) in
        let dur = Json.number (field "dur" e) in
        let tid = Json.to_int (field "tid" e) in
        Alcotest.(check bool) "ts sorted" true (ts >= !last_ts);
        last_ts := ts;
        Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
        Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
        Alcotest.(check bool) "tid in range" true
          (tid >= 0 && tid <= queue_tid);
        Hashtbl.replace seen_slice_tids tid ()
      | "C" | "i" ->
        let ts = Json.number (field "ts" e) in
        Alcotest.(check bool) "ts sorted" true (ts >= !last_ts);
        last_ts := ts
      | ph -> Alcotest.fail ("unexpected phase " ^ ph))
    evs;
  Alcotest.(check bool) "launch-queue track populated" true
    (Hashtbl.mem seen_slice_tids queue_tid);
  Alcotest.(check bool) "at least one SMX track populated" true
    (Hashtbl.fold (fun tid () acc -> acc || tid < queue_tid)
       seen_slice_tids false)

(* --- suite artifacts: jobs-independence and JSON round-trip -------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir name f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> Sys.remove (Filename.concat dir fn))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_trace_files_jobs_identical () =
  with_temp_dir "dpc-prof-j1" (fun d1 ->
      with_temp_dir "dpc-prof-j4" (fun d4 ->
          let collect jobs dir =
            ignore
              (E.Suite.collect ~verbose:false ~scale:700 ~jobs
                 ~apps:[ R.sssp ] ~trace_dir:dir ())
          in
          collect 1 d1;
          collect 4 d4;
          let names dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
          Alcotest.(check (list string)) "same artifact set" (names d1)
            (names d4);
          Alcotest.(check bool) "traces written" true
            (List.exists
               (fun n -> Filename.check_suffix n ".trace.json")
               (names d1));
          List.iter
            (fun n ->
              Alcotest.(check string) (n ^ " byte-identical")
                (read_file (Filename.concat d1 n))
                (read_file (Filename.concat d4 n)))
            (names d1)))

let test_suite_json_roundtrip () =
  let s =
    E.Suite.collect ~verbose:false ~scale:700 ~jobs:1 ~apps:[ R.sssp ] ()
  in
  let fig7 = E.Figs7_10.fig7 s in
  let doc =
    Json.parse
      (Json.to_string_pretty (E.Export.suite_json ~scale:700 s ~tables:[ fig7 ]))
  in
  (match Json.member "schema" doc with
  | Some v ->
    Alcotest.(check string) "schema" E.Export.schema_version (Json.to_str v)
  | None -> Alcotest.fail "schema missing");
  (match Json.member "scale" doc with
  | Some v -> Alcotest.(check int) "scale recorded" 700 (Json.to_int v)
  | None -> Alcotest.fail "scale missing");
  (* the exported table must match the rendered one cell for cell *)
  let table =
    match Json.member "tables" doc with
    | Some l -> List.hd (Json.to_list l)
    | None -> Alcotest.fail "tables missing"
  in
  (match Json.member "title" table with
  | Some v -> Alcotest.(check string) "title" (Table.title fig7) (Json.to_str v)
  | None -> Alcotest.fail "title missing");
  let exported_rows =
    match Json.member "rows" table with
    | Some l -> List.map (fun r -> List.map Json.to_str (Json.to_list r)) (Json.to_list l)
    | None -> Alcotest.fail "rows missing"
  in
  Alcotest.(check (list (list string))) "cells round-trip" (Table.rows fig7)
    exported_rows;
  (* and the per-variant reports re-read as the numbers the suite holds *)
  let row = List.hd s in
  let app =
    match Json.member "apps" doc with
    | Some l -> List.hd (Json.to_list l)
    | None -> Alcotest.fail "apps missing"
  in
  let variants =
    match Json.member "variants" app with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "variants missing"
  in
  List.iter2
    (fun (_, (report : M.report)) v ->
      let rj =
        match Json.member "report" v with
        | Some r -> r
        | None -> Alcotest.fail "report missing"
      in
      match Json.member "cycles" rj with
      | Some c ->
        Alcotest.(check (float 0.0)) "cycles exact" report.M.cycles
          (Json.number c)
      | None -> Alcotest.fail "cycles missing")
    row.E.Suite.results variants

(* --- timeline axis (the negative-padding regression) --------------------- *)

let test_timeline_narrow_width () =
  let cfg = Dpc_gpu.Config.k20c in
  let samples = [ (0.0, 64); (500.0, 128); (900.0, 16) ] in
  List.iter
    (fun width ->
      let out =
        Dpc_sim.Timeline.render ~width ~height:4 cfg ~total_cycles:1000.0
          samples
      in
      let lines = String.split_on_char '\n' out in
      let axis =
        match List.rev lines with
        | "" :: a :: _ -> a
        | a :: _ -> a
        | [] -> Alcotest.fail "empty render"
      in
      Alcotest.(check bool)
        (Printf.sprintf "width %d axis intact" width)
        true
        (String.length axis > 0
        && String.sub axis 0 (String.length "        0 cycles")
           = "        0 cycles");
      (* the trailer must survive unsheared at any width *)
      let trailer = "cycles (resident warps over time)" in
      let has_trailer =
        let tl = String.length trailer and al = String.length axis in
        al >= tl && String.sub axis (al - tl) tl = trailer
      in
      Alcotest.(check bool)
        (Printf.sprintf "width %d trailer intact" width)
        true has_trailer)
    [ 8; 20; 31; 72 ]

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "metrics rows complete" `Quick
      test_metrics_rows_complete;
    Alcotest.test_case "metrics json complete" `Quick
      test_metrics_json_complete;
    Alcotest.test_case "event stream invariants" `Quick
      test_event_stream_invariants;
    Alcotest.test_case "profile launch counts" `Quick
      test_profile_launch_counts;
    Alcotest.test_case "chrome trace invariants" `Quick
      test_chrome_trace_invariants;
    Alcotest.test_case "trace files jobs-identical" `Slow
      test_trace_files_jobs_identical;
    Alcotest.test_case "suite json round-trip" `Quick
      test_suite_json_roundtrip;
    Alcotest.test_case "timeline narrow width" `Quick
      test_timeline_narrow_width;
  ]
