(* Differential test of the three interpreter back ends.

   The compiled closure fast path (Compile) and the bytecode tier
   (Bytecode) must both be observationally identical to the reference
   AST walker: every app x variant run under all three back ends has to
   produce the same Metrics report and, stronger, the same per-block
   Trace segments — issue cycles, weighted active lanes (float
   accumulation order included), DRAM/L2 counts, allocator charges and
   segment delimiters.  Byte-identical traces mean every downstream
   number (timing model, figures, profiler) is provably independent of
   the back end. *)

module H = Dpc_apps.Harness
module R = Dpc_apps.Registry
module M = Dpc_sim.Metrics
module I = Dpc_sim.Interp
module T = Dpc_sim.Trace
module Device = Dpc_sim.Device
module Pragma = Dpc_kir.Pragma

(* Small scales per app (same table as test_apps). *)
let small_scale = function
  | "SSSP" -> 700
  | "SpMV" -> 900
  | "PageRank" -> 600
  | "GC" -> 8 (* 2^8 nodes *)
  | "BFS-Rec" -> 8
  | "TH" | "TD" -> 16 (* shrink divisor *)
  | other -> invalid_arg other

type capture = {
  report : M.report;
  grids : T.grid_exec array;
  compiled_kernels : int;  (** kernels that lowered to closures *)
}

let run_mode ?cfg (e : R.entry) v mode : capture =
  let saved = I.default_mode () in
  I.set_default_mode mode;
  Fun.protect
    ~finally:(fun () -> I.set_default_mode saved)
    (fun () ->
      let grids = ref [||] in
      let compiled = ref 0 in
      let report =
        e.R.run ?cfg ~scale:(small_scale e.R.name)
          ~inspect:(fun dev ->
            let s = Device.session dev in
            grids := I.grids s;
            Hashtbl.iter
              (fun _ ck -> if Option.is_some ck then incr compiled)
              s.I.ckernels)
          v
      in
      { report; grids = !grids; compiled_kernels = !compiled })

let check_segment ~tier ctx (a : T.segment) (b : T.segment) =
  let fail what ppa ppb =
    Alcotest.failf "%s: %s differs: walker %s vs %s %s" ctx what ppa tier
      ppb
  in
  let chk_int what x y =
    if x <> y then fail what (string_of_int x) (string_of_int y)
  in
  chk_int "issue_cycles" a.T.issue_cycles b.T.issue_cycles;
  if not (Float.equal a.T.weighted_active b.T.weighted_active) then
    fail "weighted_active"
      (Printf.sprintf "%h" a.T.weighted_active)
      (Printf.sprintf "%h" b.T.weighted_active);
  chk_int "dram_transactions" a.T.dram_transactions b.T.dram_transactions;
  chk_int "l2_hits" a.T.l2_hits b.T.l2_hits;
  chk_int "bank_replays" a.T.bank_replays b.T.bank_replays;
  chk_int "mshr_stalls" a.T.mshr_stalls b.T.mshr_stalls;
  chk_int "alloc_calls" a.T.alloc_calls b.T.alloc_calls;
  chk_int "alloc_fallbacks" a.T.alloc_fallbacks b.T.alloc_fallbacks;
  chk_int "alloc_cycles" a.T.alloc_cycles b.T.alloc_cycles;
  match (a.T.ends_with, b.T.ends_with) with
  | T.Seg_done, T.Seg_done
  | T.Seg_sync, T.Seg_sync
  | T.Seg_barrier, T.Seg_barrier ->
    ()
  | T.Seg_launch x, T.Seg_launch y when x = y -> ()
  | _ -> fail "ends_with" "<seg_end>" "<seg_end>"

let check_block ~tier ctx (a : T.block_trace) (b : T.block_trace) =
  if a.T.block_idx <> b.T.block_idx then
    Alcotest.failf "%s: block_idx %d vs %d" ctx a.T.block_idx b.T.block_idx;
  if a.T.warps <> b.T.warps then
    Alcotest.failf "%s: warps %d vs %d" ctx a.T.warps b.T.warps;
  if Array.length a.T.segments <> Array.length b.T.segments then
    Alcotest.failf "%s: segment count %d vs %d" ctx
      (Array.length a.T.segments)
      (Array.length b.T.segments);
  Array.iteri
    (fun i sa ->
      check_segment ~tier
        (Printf.sprintf "%s seg %d" ctx i)
        sa b.T.segments.(i))
    a.T.segments

let check_grid ~tier ctx (a : T.grid_exec) (b : T.grid_exec) =
  if
    a.T.gid <> b.T.gid || a.T.kernel <> b.T.kernel
    || a.T.grid_dim <> b.T.grid_dim
    || a.T.block_dim <> b.T.block_dim
    || a.T.depth <> b.T.depth || a.T.parent <> b.T.parent
  then
    Alcotest.failf "%s: grid header differs (%s g%d vs %s g%d)" ctx
      a.T.kernel a.T.gid b.T.kernel b.T.gid;
  if Array.length a.T.blocks <> Array.length b.T.blocks then
    Alcotest.failf "%s: block count %d vs %d" ctx (Array.length a.T.blocks)
      (Array.length b.T.blocks);
  Array.iteri
    (fun i ba ->
      check_block ~tier
        (Printf.sprintf "%s block %d" ctx i)
        ba b.T.blocks.(i))
    a.T.blocks

let report_str (r : M.report) =
  String.concat "; "
    (List.map (fun (k, v) -> k ^ "=" ^ v) (M.to_rows r))

let check_tier ~tier name (ref_ : capture) (cmp : capture) =
  (* The fast path must actually engage, or the test is vacuous. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: at least one kernel lowered by %s tier" name tier)
    true (cmp.compiled_kernels > 0);
  if compare ref_.report cmp.report <> 0 then
    Alcotest.failf "%s: Metrics.report differs\nwalker: %s\n%s: %s" name
      (report_str ref_.report) tier (report_str cmp.report);
  if Array.length ref_.grids <> Array.length cmp.grids then
    Alcotest.failf "%s: grid count %d vs %s %d" name
      (Array.length ref_.grids) tier (Array.length cmp.grids);
  Array.iteri
    (fun i ga ->
      check_grid ~tier
        (Printf.sprintf "%s grid %d" name i)
        ga cmp.grids.(i))
    ref_.grids

let diff_app_variant ?cfg (e : R.entry) v () =
  let name = Printf.sprintf "%s/%s" e.R.name (H.variant_to_string v) in
  let ref_ = run_mode ?cfg e v I.Reference in
  check_tier ~tier:"compiled" name ref_ (run_mode ?cfg e v I.Compiled);
  check_tier ~tier:"bytecode" name ref_ (run_mode ?cfg e v I.Bytecode)

let variants =
  [ H.Basic; H.Cons Pragma.Warp; H.Cons Pragma.Block; H.Cons Pragma.Grid ]

(* Deep presets exercise the gated Memmodel features (bank-conflict
   replay, MSHR stalls, dual-issue); byte-identity must hold under them
   too, including the two new segment counters.  Basic-dp plus one
   consolidated variant per app keeps the added wall-clock modest while
   still covering the transform's shared-memory inlining. *)
let deep_presets =
  [ ("k20c-deep", Dpc_gpu.Config.k20c_deep);
    ("milo832", Dpc_gpu.Config.milo832) ]

let deep_variants = [ H.Basic; H.Cons Pragma.Block ]

(* On the features-off default preset the new counters must stay exactly
   zero everywhere — the guarantee that default exports remain
   byte-identical to releases before the deep model existed. *)
let test_k20c_counters_zero () =
  List.iter
    (fun (e : R.entry) ->
      let r = e.R.run ~scale:(small_scale e.R.name) H.Basic in
      Alcotest.(check int)
        (Printf.sprintf "%s: bank replays on k20c" e.R.name)
        0 r.M.bank_conflict_replays;
      Alcotest.(check int)
        (Printf.sprintf "%s: mshr stalls on k20c" e.R.name)
        0 r.M.mshr_stalls)
    R.all

let suite =
  List.concat_map
    (fun (e : R.entry) ->
      List.map
        (fun v ->
          Alcotest.test_case
            (Printf.sprintf "%s %s" e.R.name (H.variant_to_string v))
            `Slow (diff_app_variant e v))
        variants)
    R.all
  @ List.concat_map
      (fun (pname, cfg) ->
        List.concat_map
          (fun (e : R.entry) ->
            List.map
              (fun v ->
                Alcotest.test_case
                  (Printf.sprintf "%s %s [%s]" e.R.name
                     (H.variant_to_string v) pname)
                  `Slow
                  (diff_app_variant ~cfg e v))
              deep_variants)
          R.all)
      deep_presets
  @ [
      Alcotest.test_case "k20c deep counters stay zero" `Quick
        test_k20c_counters_zero;
    ]
