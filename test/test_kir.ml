(* Tests for the kernel IR: AST utilities, kernel finalization, the
   rewriter, pragma type, and the printer (including qcheck property
   tests for the print->parse round-trip of random expressions). *)

open Dpc_kir
module A = Ast
module B = Build
open Build

let mk_kernel body = Kernel.make ~name:"k" ~params:[ A.param ~ty:A.Tptr_int "a"; A.param "n" ] body

(* --- finalization / slot resolution -------------------------------------- *)

let test_finalize_slots () =
  let k =
    mk_kernel
      [ set "x" (v "n" +: i 1); set "y" (v "x" *: i 2) ]
  in
  Kernel.finalize k;
  Alcotest.(check bool) "finalized" true (Kernel.is_finalized k);
  (* params a, n + locals x, y = 4 slots *)
  Alcotest.(check int) "slot count" 4 k.Kernel.nslots;
  (* every occurrence resolved *)
  A.iter_block k.Kernel.body
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      match e with
      | A.Var v -> Alcotest.(check bool) "slot set" true (v.A.slot >= 0)
      | _ -> ())

let test_finalize_same_name_same_slot () =
  let k = mk_kernel [ set "x" (i 1); set "x" (v "x" +: i 1) ] in
  Kernel.finalize k;
  let slots = ref [] in
  A.iter_block k.Kernel.body
    ~on_stmt:(fun s ->
      match s with A.Let (v, _) -> slots := v.A.slot :: !slots | _ -> ())
    ~on_expr:(fun _ -> ());
  match !slots with
  | [ s1; s2 ] -> Alcotest.(check int) "same slot" s1 s2
  | _ -> Alcotest.fail "expected two lets"

let test_malloc_sites_numbered () =
  let k =
    mk_kernel
      [
        malloc ~scope:A.Per_warp "b1" (i 8);
        malloc ~scope:A.Per_grid "b2" (i 8);
      ]
  in
  Kernel.finalize k;
  Alcotest.(check int) "two sites" 2 k.Kernel.nsites

let test_duplicate_param_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Kernel.make ~name:"bad" ~params:[ A.param "x"; A.param "x" ] []);
       false
     with Kernel.Invalid_kernel _ -> true)

let test_program_duplicate_kernel () =
  let p = Kernel.Program.create () in
  Kernel.Program.add p (mk_kernel []);
  Alcotest.(check bool) "duplicate kernel rejected" true
    (try
       Kernel.Program.add p (mk_kernel []);
       false
     with Kernel.Invalid_kernel _ -> true)

(* --- copy independence ---------------------------------------------------- *)

let test_copy_has_fresh_vars () =
  let s = set "x" (v "y" +: i 1) in
  let s' = A.copy_stmt s in
  (match (s, s') with
  | A.Let (v1, A.Binop (_, A.Var u1, _)), A.Let (v2, A.Binop (_, A.Var u2, _))
    ->
    Alcotest.(check bool) "let var fresh" true (v1 != v2);
    Alcotest.(check bool) "use var fresh" true (u1 != u2);
    Alcotest.(check string) "names preserved" v1.A.name v2.A.name
  | _ -> Alcotest.fail "unexpected shapes");
  (* Resolving one copy must not touch the other. *)
  let k1 = mk_kernel [ s ] and k2 = mk_kernel [ s' ] in
  Kernel.finalize k1;
  ignore k2;
  (match s' with
  | A.Let (v, _) -> Alcotest.(check int) "copy unresolved" (-1) v.A.slot
  | _ -> ())

(* --- analyses --------------------------------------------------------------- *)

let test_needs_block_uniform () =
  Alcotest.(check bool) "sync" true (A.needs_block_uniform A.Syncthreads);
  Alcotest.(check bool) "barrier" true (A.needs_block_uniform A.Grid_barrier);
  Alcotest.(check bool) "nested" true
    (A.needs_block_uniform (if_then (i 1) [ A.Syncthreads ]));
  Alcotest.(check bool) "plain" false
    (A.needs_block_uniform (set "x" (i 1)))

let test_collect_launches_order () =
  let body =
    [
      launch "a" ~grid:(i 1) ~block:(i 1) [];
      if_then (i 1) [ launch "b" ~grid:(i 1) ~block:(i 1) [] ];
    ]
  in
  Alcotest.(check (list string)) "order" [ "a"; "b" ]
    (List.map (fun (l : A.launch) -> l.A.callee) (A.collect_launches body))

let test_free_reads () =
  let block =
    [
      set "x" (v "a" +: i 1);
      set "y" (v "x" +: v "b");
      store (v "out") (i 0) (v "y");
    ]
  in
  Alcotest.(check (list string)) "free reads"
    [ "a"; "b"; "out" ]
    (Rewrite.free_reads ~bound:[] block)

let test_rewrite_subst_specials () =
  let body = [ set "t" (tid +: (bid *: bdim)) ] in
  let out =
    Rewrite.subst_specials
      (function
        | A.Thread_idx -> Some (i 0)
        | A.Block_idx -> Some (i 0)
        | _ -> None)
      body
  in
  (* No Thread_idx/Block_idx should remain. *)
  let remaining = ref 0 in
  A.iter_block out
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      match e with
      | A.Special (A.Thread_idx | A.Block_idx) -> incr remaining
      | _ -> ());
  Alcotest.(check int) "substituted" 0 !remaining

let test_rewrite_launch_hook () =
  let body =
    [ if_then (i 1) [ launch "c" ~grid:(i 1) ~block:(i 1) [] ] ]
  in
  let hooks =
    { Rewrite.no_hooks with
      Rewrite.launch = (fun _ -> Some [ set "replaced" (i 1) ]) }
  in
  let out = Rewrite.rw_block hooks body in
  Alcotest.(check int) "launch gone" 0 (List.length (A.collect_launches out))

(* --- printer round-trip (property) ---------------------------------------- *)

let gen_expr : A.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun i -> A.Const (Value.Vint i)) (int_range (-100) 100);
            return (v "x");
            return (v "y");
            return tid;
            return bdim;
          ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map2 (fun a b -> A.Binop (A.Add, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Mul, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Lt, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.And, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Min, a, b)) sub sub;
            map (fun a -> A.Unop (A.Neg, a)) sub;
            map2 (fun a i -> A.Load (a, i)) (return (v "buf")) sub;
          ])

(* The printer's output is stable under re-parsing: after one parse/print
   normalization (e.g. a negative literal becomes a unary minus), further
   round trips are the identity on the printed text. *)
let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print/parse expression round-trip"
    (QCheck.make ~print:Pp.expr gen_expr)
    (fun e ->
      let kernel_of body =
        Kernel.make ~name:"k"
          ~params:[ A.param ~ty:A.Tptr_int "buf"; A.param "x"; A.param "y" ]
          body
      in
      let s1 = Pp.kernel (kernel_of [ A.Let (A.var "z", e) ]) in
      let s2 = Pp.kernel (Dpc_minicu.Parser.parse_kernel_string s1) in
      let s3 = Pp.kernel (Dpc_minicu.Parser.parse_kernel_string s2) in
      String.equal s2 s3)

let test_pp_precedence_cases () =
  let cases =
    [
      ((v "a" +: v "b") *: v "c", "(a + b) * c");
      (v "a" +: (v "b" *: v "c"), "a + b * c");
      (neg (v "a" +: i 1), "-(a + 1)");
      (min_ (v "a") (v "b"), "min(a, b)");
    ]
  in
  List.iter
    (fun (e, expect) ->
      Alcotest.(check string) expect expect (Pp.expr e))
    cases

(* --- slot-type inference edge cases --------------------------------------- *)

let typing_of k =
  Kernel.finalize k;
  match k.Kernel.typing with
  | Some ty -> ty
  | None -> Alcotest.fail "finalize did not populate typing"

let slot_named k name =
  let found = ref (-1) in
  let note (v : A.var) = if v.A.name = name && v.A.slot >= 0 then found := v.A.slot in
  A.iter_block k.Kernel.body
    ~on_stmt:(fun s ->
      match s with
      | A.Let (v, _) | A.For (v, _, _, _) -> note v
      | _ -> ())
    ~on_expr:(fun e -> match e with A.Var v -> note v | _ -> ());
  List.iter (fun (p : A.param) -> if p.A.pname = name then note p.A.pvar) k.Kernel.params;
  if !found < 0 then Alcotest.failf "no slot named %s" name;
  !found

let check_slot_ty k name expect =
  let ty = typing_of k in
  Alcotest.(check string)
    name
    (Typing.slot_ty_to_string expect)
    (Typing.slot_ty_to_string ty.Typing.slots.(slot_named k name))

let test_typing_divergent_join () =
  (* A slot assigned an int on one path and a float on the other joins to
     boxed; a slot consistently float on both stays unboxed float. *)
  let k =
    kernel ~name:"tj" ~params:[ p "n" ]
      [
        if_ (tid <: v "n") [ set "x" (i 1) ] [ set "x" (f 2.0) ];
        if_ (tid <: v "n") [ set "y" (f 1.0) ] [ set "y" (f 2.0) ];
        set "z" (v "x");
      ]
  in
  check_slot_ty k "x" Typing.St_boxed;
  check_slot_ty k "y" Typing.St_float;
  (* a copy of a boxed slot is itself boxed *)
  check_slot_ty k "z" Typing.St_boxed

let test_typing_buffer_element_conflict () =
  (* A pointer slot that may alias int* and float* buffers keeps buffer-ness
     but loses the element type, so loads through it are dynamic. *)
  let k =
    kernel ~name:"bc" ~params:[ pi "a"; pp "b"; p "n" ]
      [
        if_ (tid <: v "n") [ set "ptr" (v "a") ] [ set "ptr" (v "b") ];
        set "e" (load (v "ptr") (i 0));
        set "ei" (load (v "a") (i 0));
        set "ef" (load (v "b") (i 0));
      ]
  in
  check_slot_ty k "ptr" (Typing.St_buf Typing.Eany);
  check_slot_ty k "e" Typing.St_boxed;
  check_slot_ty k "ei" Typing.St_int;
  check_slot_ty k "ef" Typing.St_float

let test_typing_shared_inference () =
  (* Shared arrays: all-int stores stay unboxed, a single float store
     (or a store of a boxed slot) boxes the whole array. *)
  let k =
    kernel ~name:"sh" ~params:[ p "n" ] ~shared:[ ("si", 32); ("sf", 32) ]
      [
        shared_set "si" tid (tid +: i 1);
        shared_set "sf" tid (f 0.5);
        set "r" (shared "si" tid);
      ]
  in
  let ty = typing_of k in
  let sh name = List.assoc name ty.Typing.shared in
  Alcotest.(check bool) "si unboxed int" true (sh "si" = Typing.Sh_int);
  Alcotest.(check bool) "sf boxed" true (sh "sf" = Typing.Sh_boxed);
  (* loads from an int shared array produce int slots *)
  check_slot_ty k "r" Typing.St_int

let test_typing_use_before_def_joins_int () =
  (* The frame zero-fills slots, so a use not dominated by an assignment
     joins Vint 0: a float-assigned slot read early becomes boxed, while
     the same kernel with a dominating assignment stays float. *)
  let early =
    kernel ~name:"ub1" ~params:[ p "n" ]
      [ if_then (tid <: v "n") [ set "x" (f 1.0) ]; set "y" (v "x") ]
  in
  check_slot_ty early "x" Typing.St_boxed;
  let dominated =
    kernel ~name:"ub2" ~params:[ p "n" ]
      [ set "x" (f 1.0); if_then (tid <: v "n") [ set "x" (f 2.0) ]; set "y" (v "x") ]
  in
  check_slot_ty dominated "x" Typing.St_float;
  check_slot_ty dominated "y" Typing.St_float

let suite =
  [
    Alcotest.test_case "finalize slots" `Quick test_finalize_slots;
    Alcotest.test_case "same name same slot" `Quick
      test_finalize_same_name_same_slot;
    Alcotest.test_case "malloc sites" `Quick test_malloc_sites_numbered;
    Alcotest.test_case "duplicate param" `Quick test_duplicate_param_rejected;
    Alcotest.test_case "duplicate kernel" `Quick test_program_duplicate_kernel;
    Alcotest.test_case "copy fresh vars" `Quick test_copy_has_fresh_vars;
    Alcotest.test_case "needs block uniform" `Quick test_needs_block_uniform;
    Alcotest.test_case "collect launches" `Quick test_collect_launches_order;
    Alcotest.test_case "free reads" `Quick test_free_reads;
    Alcotest.test_case "rewrite specials" `Quick test_rewrite_subst_specials;
    Alcotest.test_case "rewrite launch hook" `Quick test_rewrite_launch_hook;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    Alcotest.test_case "pp precedence" `Quick test_pp_precedence_cases;
    Alcotest.test_case "typing divergent join" `Quick test_typing_divergent_join;
    Alcotest.test_case "typing buffer conflict" `Quick
      test_typing_buffer_element_conflict;
    Alcotest.test_case "typing shared arrays" `Quick test_typing_shared_inference;
    Alcotest.test_case "typing use before def" `Quick
      test_typing_use_before_def_joins_int;
  ]
