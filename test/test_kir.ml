(* Tests for the kernel IR: AST utilities, kernel finalization, the
   rewriter, pragma type, and the printer (including qcheck property
   tests for the print->parse round-trip of random expressions). *)

open Dpc_kir
module A = Ast
module B = Build
open Build

let mk_kernel body = Kernel.make ~name:"k" ~params:[ A.param ~ty:A.Tptr_int "a"; A.param "n" ] body

(* --- finalization / slot resolution -------------------------------------- *)

let test_finalize_slots () =
  let k =
    mk_kernel
      [ set "x" (v "n" +: i 1); set "y" (v "x" *: i 2) ]
  in
  Kernel.finalize k;
  Alcotest.(check bool) "finalized" true (Kernel.is_finalized k);
  (* params a, n + locals x, y = 4 slots *)
  Alcotest.(check int) "slot count" 4 k.Kernel.nslots;
  (* every occurrence resolved *)
  A.iter_block k.Kernel.body
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      match e with
      | A.Var v -> Alcotest.(check bool) "slot set" true (v.A.slot >= 0)
      | _ -> ())

let test_finalize_same_name_same_slot () =
  let k = mk_kernel [ set "x" (i 1); set "x" (v "x" +: i 1) ] in
  Kernel.finalize k;
  let slots = ref [] in
  A.iter_block k.Kernel.body
    ~on_stmt:(fun s ->
      match s with A.Let (v, _) -> slots := v.A.slot :: !slots | _ -> ())
    ~on_expr:(fun _ -> ());
  match !slots with
  | [ s1; s2 ] -> Alcotest.(check int) "same slot" s1 s2
  | _ -> Alcotest.fail "expected two lets"

let test_malloc_sites_numbered () =
  let k =
    mk_kernel
      [
        malloc ~scope:A.Per_warp "b1" (i 8);
        malloc ~scope:A.Per_grid "b2" (i 8);
      ]
  in
  Kernel.finalize k;
  Alcotest.(check int) "two sites" 2 k.Kernel.nsites

let test_duplicate_param_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Kernel.make ~name:"bad" ~params:[ A.param "x"; A.param "x" ] []);
       false
     with Kernel.Invalid_kernel _ -> true)

let test_program_duplicate_kernel () =
  let p = Kernel.Program.create () in
  Kernel.Program.add p (mk_kernel []);
  Alcotest.(check bool) "duplicate kernel rejected" true
    (try
       Kernel.Program.add p (mk_kernel []);
       false
     with Kernel.Invalid_kernel _ -> true)

(* --- copy independence ---------------------------------------------------- *)

let test_copy_has_fresh_vars () =
  let s = set "x" (v "y" +: i 1) in
  let s' = A.copy_stmt s in
  (match (s, s') with
  | A.Let (v1, A.Binop (_, A.Var u1, _)), A.Let (v2, A.Binop (_, A.Var u2, _))
    ->
    Alcotest.(check bool) "let var fresh" true (v1 != v2);
    Alcotest.(check bool) "use var fresh" true (u1 != u2);
    Alcotest.(check string) "names preserved" v1.A.name v2.A.name
  | _ -> Alcotest.fail "unexpected shapes");
  (* Resolving one copy must not touch the other. *)
  let k1 = mk_kernel [ s ] and k2 = mk_kernel [ s' ] in
  Kernel.finalize k1;
  ignore k2;
  (match s' with
  | A.Let (v, _) -> Alcotest.(check int) "copy unresolved" (-1) v.A.slot
  | _ -> ())

(* --- analyses --------------------------------------------------------------- *)

let test_needs_block_uniform () =
  Alcotest.(check bool) "sync" true (A.needs_block_uniform A.Syncthreads);
  Alcotest.(check bool) "barrier" true (A.needs_block_uniform A.Grid_barrier);
  Alcotest.(check bool) "nested" true
    (A.needs_block_uniform (if_then (i 1) [ A.Syncthreads ]));
  Alcotest.(check bool) "plain" false
    (A.needs_block_uniform (set "x" (i 1)))

let test_collect_launches_order () =
  let body =
    [
      launch "a" ~grid:(i 1) ~block:(i 1) [];
      if_then (i 1) [ launch "b" ~grid:(i 1) ~block:(i 1) [] ];
    ]
  in
  Alcotest.(check (list string)) "order" [ "a"; "b" ]
    (List.map (fun (l : A.launch) -> l.A.callee) (A.collect_launches body))

let test_free_reads () =
  let block =
    [
      set "x" (v "a" +: i 1);
      set "y" (v "x" +: v "b");
      store (v "out") (i 0) (v "y");
    ]
  in
  Alcotest.(check (list string)) "free reads"
    [ "a"; "b"; "out" ]
    (Rewrite.free_reads ~bound:[] block)

let test_rewrite_subst_specials () =
  let body = [ set "t" (tid +: (bid *: bdim)) ] in
  let out =
    Rewrite.subst_specials
      (function
        | A.Thread_idx -> Some (i 0)
        | A.Block_idx -> Some (i 0)
        | _ -> None)
      body
  in
  (* No Thread_idx/Block_idx should remain. *)
  let remaining = ref 0 in
  A.iter_block out
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      match e with
      | A.Special (A.Thread_idx | A.Block_idx) -> incr remaining
      | _ -> ());
  Alcotest.(check int) "substituted" 0 !remaining

let test_rewrite_launch_hook () =
  let body =
    [ if_then (i 1) [ launch "c" ~grid:(i 1) ~block:(i 1) [] ] ]
  in
  let hooks =
    { Rewrite.no_hooks with
      Rewrite.launch = (fun _ -> Some [ set "replaced" (i 1) ]) }
  in
  let out = Rewrite.rw_block hooks body in
  Alcotest.(check int) "launch gone" 0 (List.length (A.collect_launches out))

(* --- printer round-trip (property) ---------------------------------------- *)

let gen_expr : A.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun i -> A.Const (Value.Vint i)) (int_range (-100) 100);
            return (v "x");
            return (v "y");
            return tid;
            return bdim;
          ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map2 (fun a b -> A.Binop (A.Add, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Mul, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Lt, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.And, a, b)) sub sub;
            map2 (fun a b -> A.Binop (A.Min, a, b)) sub sub;
            map (fun a -> A.Unop (A.Neg, a)) sub;
            map2 (fun a i -> A.Load (a, i)) (return (v "buf")) sub;
          ])

(* The printer's output is stable under re-parsing: after one parse/print
   normalization (e.g. a negative literal becomes a unary minus), further
   round trips are the identity on the printed text. *)
let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print/parse expression round-trip"
    (QCheck.make ~print:Pp.expr gen_expr)
    (fun e ->
      let kernel_of body =
        Kernel.make ~name:"k"
          ~params:[ A.param ~ty:A.Tptr_int "buf"; A.param "x"; A.param "y" ]
          body
      in
      let s1 = Pp.kernel (kernel_of [ A.Let (A.var "z", e) ]) in
      let s2 = Pp.kernel (Dpc_minicu.Parser.parse_kernel_string s1) in
      let s3 = Pp.kernel (Dpc_minicu.Parser.parse_kernel_string s2) in
      String.equal s2 s3)

let test_pp_precedence_cases () =
  let cases =
    [
      ((v "a" +: v "b") *: v "c", "(a + b) * c");
      (v "a" +: (v "b" *: v "c"), "a + b * c");
      (neg (v "a" +: i 1), "-(a + 1)");
      (min_ (v "a") (v "b"), "min(a, b)");
    ]
  in
  List.iter
    (fun (e, expect) ->
      Alcotest.(check string) expect expect (Pp.expr e))
    cases

let suite =
  [
    Alcotest.test_case "finalize slots" `Quick test_finalize_slots;
    Alcotest.test_case "same name same slot" `Quick
      test_finalize_same_name_same_slot;
    Alcotest.test_case "malloc sites" `Quick test_malloc_sites_numbered;
    Alcotest.test_case "duplicate param" `Quick test_duplicate_param_rejected;
    Alcotest.test_case "duplicate kernel" `Quick test_program_duplicate_kernel;
    Alcotest.test_case "copy fresh vars" `Quick test_copy_has_fresh_vars;
    Alcotest.test_case "needs block uniform" `Quick test_needs_block_uniform;
    Alcotest.test_case "collect launches" `Quick test_collect_launches_order;
    Alcotest.test_case "free reads" `Quick test_free_reads;
    Alcotest.test_case "rewrite specials" `Quick test_rewrite_subst_specials;
    Alcotest.test_case "rewrite launch hook" `Quick test_rewrite_launch_hook;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    Alcotest.test_case "pp precedence" `Quick test_pp_precedence_cases;
  ]
