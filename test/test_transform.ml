(* End-to-end tests of the consolidation transforms: annotated MiniCU
   source -> transform -> simulate, comparing results and launch counts
   against the basic-dp execution. *)

module Parser = Dpc_minicu.Parser
module Pragma = Dpc_kir.Pragma
module Kernel = Dpc_kir.Kernel
module Pp = Dpc_kir.Pp
module V = Dpc_kir.Value
module Device = Dpc_sim.Device
module Transform = Dpc.Transform
module Cs = Dpc.Config_select
module Mem = Dpc_gpu.Memory

let cfg = Dpc_gpu.Config.k20c

(* ----------------------------------------------------------------------
   Non-recursive irregular loop: each thread owns a row of a ragged array;
   heavy rows are delegated to a child kernel that doubles each element.
   ---------------------------------------------------------------------- *)

let ragged_src gran =
  Printf.sprintf
    {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}
    gran

(* Rows 0..n-1, row i has (i mod 7) * 5 elements. *)
let make_ragged n =
  let degrees = Array.init n (fun i -> i mod 7 * 5) in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + degrees.(i)
  done;
  let data = Array.init row_ptr.(n) (fun i -> i + 1) in
  (row_ptr, data)

let expected_ragged data = Array.map (fun x -> x * 2) data

let run_ragged_basic n =
  let prog = Parser.parse_program (ragged_src "grid") in
  let dev = Device.create ~cfg prog in
  let row_ptr, data = make_ragged n in
  let rp = Device.of_int_array dev ~name:"row_ptr" row_ptr in
  let d = Device.of_int_array dev ~name:"data" data in
  Device.launch dev "parent" ~grid:((n + 127) / 128) ~block:128
    [ V.Vbuf rp.Mem.id; V.Vbuf d.Mem.id; V.Vint n; V.Vint 10 ];
  (Device.read_int_array dev d.Mem.id, Device.report dev)

let run_ragged_consolidated gran n =
  let prog = Parser.parse_program (ragged_src gran) in
  let r = Transform.apply ~cfg ~parent:"parent" prog in
  let dev = Device.create ~cfg r.Transform.program in
  let row_ptr, data = make_ragged n in
  let rp = Device.of_int_array dev ~name:"row_ptr" row_ptr in
  let d = Device.of_int_array dev ~name:"data" data in
  Device.launch dev r.Transform.entry ~grid:((n + 127) / 128) ~block:128
    [ V.Vbuf rp.Mem.id; V.Vbuf d.Mem.id; V.Vint n; V.Vint 10 ];
  (Device.read_int_array dev d.Mem.id, Device.report dev, r)

let test_ragged_correct gran () =
  let n = 300 in
  let _, data = make_ragged n in
  let got, _, r = run_ragged_consolidated gran n in
  Alcotest.(check (array int))
    (gran ^ " result matches")
    (expected_ragged data) got;
  Alcotest.(check bool) "not recursive" false r.Transform.recursive

let test_ragged_launch_reduction () =
  let n = 3000 in
  let _, basic = run_ragged_basic n in
  let _, grid_r, _ = run_ragged_consolidated "grid" n in
  let _, block_r, _ = run_ragged_consolidated "block" n in
  let _, warp_r, _ = run_ragged_consolidated "warp" n in
  let open Dpc_sim.Metrics in
  Alcotest.(check bool) "basic launches many" true (basic.device_launches > 100);
  Alcotest.(check int) "grid launches once" 1 grid_r.device_launches;
  Alcotest.(check bool) "block-level reduces launches" true
    (block_r.device_launches < basic.device_launches / 4);
  Alcotest.(check bool) "warp <= basic/8" true
    (warp_r.device_launches <= basic.device_launches / 8);
  Alcotest.(check bool) "warp >= block" true
    (warp_r.device_launches >= block_r.device_launches);
  Alcotest.(check bool) "grid faster than basic" true
    (grid_r.cycles < basic.cycles)

let test_generated_code_roundtrips () =
  let prog = Parser.parse_program (ragged_src "block") in
  let r = Transform.apply ~cfg ~parent:"parent" prog in
  (* Generated kernels must be valid MiniCU: print and re-parse. *)
  let printed = Pp.program r.Transform.program in
  let reparsed = Parser.parse_program printed in
  Alcotest.(check int) "same kernel count"
    (List.length (Kernel.Program.kernels r.Transform.program))
    (List.length (Kernel.Program.kernels reparsed));
  Alcotest.(check string) "fixpoint" printed (Pp.program reparsed)

(* ----------------------------------------------------------------------
   Recursive kernel with postwork: subtree sizes in a tree (TD-like).
   ---------------------------------------------------------------------- *)

let tree_src gran =
  Printf.sprintf
    {|
__global__ void desc(int* child_ptr, int* child_list, int* out, int nnodes, int node) {
  var t = blockIdx.x * blockDim.x + threadIdx.x;
  var cstart = child_ptr[node];
  var nchild = child_ptr[node + 1] - cstart;
  var c = 0 - 1;
  var nc = 0;
  if (t < nchild) {
    c = child_list[cstart + t];
    nc = child_ptr[c + 1] - child_ptr[c];
    if (nc == 0) {
      out[c] = 0;
    } else {
      #pragma dp consldt(%s) buffer(custom, perBufferSize: nnodes) work(c)
      launch desc<<<1, 256>>>(child_ptr, child_list, out, nnodes, c);
    }
  }
  cudaDeviceSynchronize();
  if (c >= 0) {
    var nc2 = child_ptr[c + 1] - child_ptr[c];
    if (nc2 > 0) {
      var acc = 0;
      for (var k = child_ptr[c]; k < child_ptr[c] + nc2; k = k + 1) {
        acc = acc + out[child_list[k]] + 1;
      }
      out[c] = acc;
    }
  }
}
|}
    gran

(* A deterministic small tree in CSR-ish (child_ptr / child_list) form:
   node i has children decided by a simple rule; returns the arrays plus
   the expected descendant counts. *)
let make_tree () =
  (* Three-level tree: root 0 with 6 children; child i has i mod 4 leaves. *)
  let kids = Array.make 30 [] in
  let next = ref 1 in
  let root_kids = List.init 6 (fun _ -> let c = !next in incr next; c) in
  kids.(0) <- root_kids;
  List.iteri
    (fun i c ->
      kids.(c) <-
        List.init (i mod 4) (fun _ -> let g = !next in incr next; g))
    root_kids;
  let n = !next in
  let child_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    child_ptr.(i + 1) <- child_ptr.(i) + List.length kids.(i)
  done;
  let child_list = Array.make (Int.max 1 child_ptr.(n)) 0 in
  for i = 0 to n - 1 do
    List.iteri (fun j c -> child_list.(child_ptr.(i) + j) <- c) kids.(i)
  done;
  let rec descendants i =
    List.fold_left (fun acc c -> acc + 1 + descendants c) 0 kids.(i)
  in
  (n, child_ptr, child_list, Array.init n descendants)

let run_tree_basic () =
  let n, child_ptr, child_list, expect = make_tree () in
  let prog = Parser.parse_program (tree_src "grid") in
  let dev = Device.create ~cfg prog in
  let cp = Device.of_int_array dev ~name:"child_ptr" child_ptr in
  let cl = Device.of_int_array dev ~name:"child_list" child_list in
  let out = Device.alloc_int dev ~name:"out" n in
  let root_children = child_ptr.(1) - child_ptr.(0) in
  Device.launch dev "desc"
    ~grid:((root_children + 31) / 32)
    ~block:32
    [ V.Vbuf cp.Mem.id; V.Vbuf cl.Mem.id; V.Vbuf out.Mem.id; V.Vint n;
      V.Vint 0 ];
  let got = Device.read_int_array dev out.Mem.id in
  (* The root itself is processed by nobody (host handles it). *)
  got.(0) <- expect.(0);
  (got, expect, Device.report dev)

let run_tree_consolidated gran =
  let n, child_ptr, child_list, expect = make_tree () in
  let prog = Parser.parse_program (tree_src gran) in
  let r = Transform.apply ~cfg ~parent:"desc" prog in
  Alcotest.(check bool) "recursive" true r.Transform.recursive;
  let dev = Device.create ~cfg r.Transform.program in
  let cp = Device.of_int_array dev ~name:"child_ptr" child_ptr in
  let cl = Device.of_int_array dev ~name:"child_list" child_list in
  let out = Device.alloc_int dev ~name:"out" n in
  (* Seed: the consolidated kernel takes (uniform args..., buf, cnt). *)
  let seed = Device.of_int_array dev ~name:"seed" [| 0 |] in
  let seed_cnt = Device.of_int_array dev ~name:"seed_cnt" [| 1 |] in
  let grid, block = Transform.launch_config cfg r ~items:1 in
  Device.launch dev r.Transform.entry ~grid ~block
    [ V.Vbuf cp.Mem.id; V.Vbuf cl.Mem.id; V.Vbuf out.Mem.id; V.Vint n;
      V.Vbuf seed.Mem.id; V.Vbuf seed_cnt.Mem.id ];
  let got = Device.read_int_array dev out.Mem.id in
  (got, expect, Device.report dev, r)

let test_tree_basic_correct () =
  let got, expect, report = run_tree_basic () in
  Alcotest.(check (array int)) "basic-dp descendants" expect got;
  Alcotest.(check bool) "nested launches happened" true
    (report.Dpc_sim.Metrics.device_launches > 3)

let test_tree_consolidated_correct gran () =
  let got, expect, _, _ = run_tree_consolidated gran in
  (* As in basic-dp, the seed item's own postwork belongs to the host. *)
  got.(0) <- expect.(0);
  Alcotest.(check (array int)) (gran ^ " descendants") expect got

let test_tree_launch_reduction () =
  let _, _, basic = run_tree_basic () in
  let _, _, grid_r, _ = run_tree_consolidated "grid" in
  Alcotest.(check bool) "grid-level launches fewer kernels" true
    (grid_r.Dpc_sim.Metrics.device_launches
    < basic.Dpc_sim.Metrics.device_launches)

let test_tree_post_kernel_expected () =
  let _, _, _, r = run_tree_consolidated "grid" in
  Alcotest.(check (option string)) "postwork kernel generated"
    (Some "desc_post_grid") r.Transform.post_kernel;
  let _, _, _, rw = run_tree_consolidated "warp" in
  Alcotest.(check (option string)) "warp level inlines postwork" None
    rw.Transform.post_kernel

(* ----------------------------------------------------------------------
   Contract violations
   ---------------------------------------------------------------------- *)

let expect_unsupported src =
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "raises Unsupported" true
    (try
       ignore (Transform.apply ~cfg ~parent:"parent" prog);
       false
     with Transform.Unsupported _ -> true)

let test_reject_unannotated () =
  expect_unsupported
    {|
__global__ void child(int* d, int i) { d[i] = 1; }
__global__ void parent(int* d) {
  var i = threadIdx.x;
  launch child<<<1, 1>>>(d, i);
}
|}

let test_reject_work_not_arg () =
  expect_unsupported
    {|
__global__ void child(int* d, int i) { d[i] = 1; }
__global__ void parent(int* d) {
  var i = threadIdx.x;
  var j = i + 1;
  #pragma dp consldt(block) work(j)
  launch child<<<1, 1>>>(d, i);
}
|}

let test_reject_uniform_arg_reading_work () =
  expect_unsupported
    {|
__global__ void child(int* d, int i, int x) { d[i] = x; }
__global__ void parent(int* d) {
  var i = threadIdx.x;
  #pragma dp consldt(block) work(i)
  launch child<<<1, 1>>>(d, i, i * 2);
}
|}

let test_reject_child_with_return () =
  expect_unsupported
    {|
__global__ void child(int* d, int i) {
  if (i < 0) { return; }
  d[i] = 1;
}
__global__ void parent(int* d) {
  var i = threadIdx.x;
  #pragma dp consldt(warp) work(i)
  launch child<<<1, 1>>>(d, i);
}
|}

let test_reject_postwork_using_tid () =
  expect_unsupported
    {|
__global__ void child(int* d, int i) { d[i] = 1; }
__global__ void parent(int* d, int n) {
  var i = blockIdx.x * blockDim.x + threadIdx.x;
  #pragma dp consldt(grid) work(i)
  launch child<<<1, 1>>>(d, i);
  cudaDeviceSynchronize();
  d[threadIdx.x] = d[threadIdx.x] + 1;
}
|}

(* ----------------------------------------------------------------------
   Configuration selection unit checks
   ---------------------------------------------------------------------- *)

let test_kc_configs () =
  let pragma = Pragma.make ~granularity:Pragma.Grid ~work:[ "x" ] () in
  let cnt = Dpc_kir.Build.i 7 in
  let check_policy policy expect_blocks =
    match
      Cs.select cfg ~policy ~pragma ~shape:Cs.Solo_thread ~cnt
    with
    | Dpc_kir.Ast.Const (V.Vint b), Dpc_kir.Ast.Const (V.Vint t) ->
      Alcotest.(check int) "blocks" expect_blocks b;
      Alcotest.(check int) "threads" 256 t
    | _ -> Alcotest.fail "expected constant config"
  in
  (* fill = 13 SMX * (2048/256 = 8 blocks) = 104 *)
  check_policy (Cs.Kc 1) 104;
  check_policy (Cs.Kc 16) 6;
  check_policy (Cs.Kc 32) 3;
  check_policy (Cs.Explicit (5, 256)) 5

(* Constant-fold a configuration expression at a given item count, so we
   can check what grid a policy would actually launch. *)
let rec eval_cfg_expr ~cnt (e : Dpc_kir.Ast.expr) : int =
  match e with
  | Dpc_kir.Ast.Const (V.Vint n) -> n
  | Dpc_kir.Ast.Binop (op, a, b) -> (
    let a = eval_cfg_expr ~cnt a and b = eval_cfg_expr ~cnt b in
    match op with
    | Dpc_kir.Ast.Add -> a + b
    | Dpc_kir.Ast.Sub -> a - b
    | Dpc_kir.Ast.Mul -> a * b
    | Dpc_kir.Ast.Div -> a / b
    | Dpc_kir.Ast.Min -> Int.min a b
    | Dpc_kir.Ast.Max -> Int.max a b
    | _ -> Alcotest.fail "unexpected operator in config expression")
  | Dpc_kir.Ast.Var _ -> cnt  (* the buffered-item count *)
  | _ -> Alcotest.fail "unexpected config expression"

let test_one_to_one_never_zero_blocks () =
  let pragma = Pragma.make ~granularity:Pragma.Warp ~work:[ "x" ] () in
  let cnt = Dpc_kir.Build.v "cnt" in
  List.iter
    (fun shape ->
      let grid_e, block_e =
        Cs.select cfg ~policy:Cs.One_to_one ~pragma ~shape ~cnt
      in
      (* An empty buffer must still launch a well-formed (1, t) grid. *)
      List.iter
        (fun items ->
          let g = eval_cfg_expr ~cnt:items grid_e in
          let b = eval_cfg_expr ~cnt:items block_e in
          Alcotest.(check bool)
            (Printf.sprintf "grid >= 1 at cnt=%d" items)
            true (g >= 1);
          Alcotest.(check bool)
            (Printf.sprintf "block >= 1 at cnt=%d" items)
            true (b >= 1))
        [ 0; 1; 1024; 5000 ];
      (* And the thread-mapped arm still covers all items exactly. *)
      match shape with
      | Cs.Solo_thread ->
        Alcotest.(check int) "ceil-div at 5000"
          5
          (eval_cfg_expr ~cnt:5000 grid_e)
      | _ -> ())
    [ Cs.Solo_thread; Cs.Solo_block None; Cs.Multi_block ]

let test_default_policies () =
  Alcotest.(check bool) "warp default KC_32" true
    (Cs.default_policy Pragma.Warp = Cs.Kc 32);
  Alcotest.(check bool) "block default KC_16" true
    (Cs.default_policy Pragma.Block = Cs.Kc 16);
  Alcotest.(check bool) "grid default KC_1" true
    (Cs.default_policy Pragma.Grid = Cs.Kc 1)

let suite =
  [
    Alcotest.test_case "ragged warp correct" `Quick (test_ragged_correct "warp");
    Alcotest.test_case "ragged block correct" `Quick
      (test_ragged_correct "block");
    Alcotest.test_case "ragged grid correct" `Quick (test_ragged_correct "grid");
    Alcotest.test_case "ragged launch reduction" `Quick
      test_ragged_launch_reduction;
    Alcotest.test_case "generated code roundtrips" `Quick
      test_generated_code_roundtrips;
    Alcotest.test_case "tree basic correct" `Quick test_tree_basic_correct;
    Alcotest.test_case "tree warp correct" `Quick
      (test_tree_consolidated_correct "warp");
    Alcotest.test_case "tree block correct" `Quick
      (test_tree_consolidated_correct "block");
    Alcotest.test_case "tree grid correct" `Quick
      (test_tree_consolidated_correct "grid");
    Alcotest.test_case "tree launch reduction" `Quick test_tree_launch_reduction;
    Alcotest.test_case "tree post kernel" `Quick test_tree_post_kernel_expected;
    Alcotest.test_case "reject unannotated" `Quick test_reject_unannotated;
    Alcotest.test_case "reject work not arg" `Quick test_reject_work_not_arg;
    Alcotest.test_case "reject uniform reads work" `Quick
      test_reject_uniform_arg_reading_work;
    Alcotest.test_case "reject child return" `Quick test_reject_child_with_return;
    Alcotest.test_case "reject postwork tid" `Quick test_reject_postwork_using_tid;
    Alcotest.test_case "KC configs" `Quick test_kc_configs;
    Alcotest.test_case "1-1 grid never zero blocks" `Quick
      test_one_to_one_never_zero_blocks;
    Alcotest.test_case "default policies" `Quick test_default_policies;
  ]
