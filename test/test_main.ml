let () =
  Alcotest.run "dpc"
    [
      ("util", Test_util.suite);
      ("pool", Test_pool.suite);
      ("gpu", Test_gpu.suite);
      ("kir", Test_kir.suite);
      ("alloc", Test_alloc.suite);
      ("graph", Test_graph.suite);
      ("sim", Test_sim.suite);
      ("interp-details", Test_interp_details.suite);
      ("timing", Test_timing.suite);
      ("minicu", Test_minicu.suite);
      ("transform", Test_transform.suite);
      ("codegen", Test_codegen.suite);
      ("apps", Test_apps.suite);
      ("differential", Test_differential.suite);
      ("free-launch", Test_free_launch.suite);
      ("experiments", Test_experiments.suite);
      ("engine", Test_engine.suite);
      ("serve", Test_serve.suite);
      ("prof", Test_prof.suite);
      ("check", Test_check.suite);
    ]
