(* Integration tests: every benchmark app, every variant, at reduced
   scale.  Each app run verifies its own results against the CPU
   reference and raises on any mismatch, so these tests assert both
   "runs to completion" and "is correct". *)

module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module R = Dpc_apps.Registry
module Pragma = Dpc_kir.Pragma

(* Small scales per app (see each app's scale semantics). *)
let small_scale = function
  | "SSSP" -> 700
  | "SpMV" -> 900
  | "PageRank" -> 600
  | "GC" -> 8  (* 2^8 nodes *)
  | "BFS-Rec" -> 8
  | "TH" | "TD" -> 16  (* shrink divisor *)
  | other -> invalid_arg other

let run_app_variant (e : R.entry) v () =
  let r = e.R.run ~scale:(small_scale e.R.name) v in
  Alcotest.(check bool) "simulated time positive" true (r.M.cycles > 0.0);
  Alcotest.(check bool) "warp efficiency sane" true
    (r.M.warp_efficiency > 0.0 && r.M.warp_efficiency <= 1.0);
  Alcotest.(check bool) "occupancy sane" true
    (r.M.occupancy >= 0.0 && r.M.occupancy <= 1.0);
  match v with
  | H.Flat -> Alcotest.(check int) "flat has no device launches" 0 r.M.device_launches
  | H.Basic -> ()
  | H.Cons _ -> ()

let consolidation_reduces_launches (e : R.entry) () =
  let scale = small_scale e.R.name in
  let basic = e.R.run ~scale H.Basic in
  let grid = e.R.run ~scale (H.Cons Pragma.Grid) in
  Alcotest.(check bool)
    (e.R.name ^ ": grid-level launches far fewer kernels")
    true
    (grid.M.device_launches * 4 < basic.M.device_launches
    || basic.M.device_launches < 8);
  Alcotest.(check bool)
    (e.R.name ^ ": warp efficiency improves")
    true
    (grid.M.warp_efficiency >= basic.M.warp_efficiency -. 0.05)

let allocator_choice_runs (e : R.entry) () =
  (* Consolidated runs must be correct with every allocator. *)
  List.iter
    (fun kind ->
      ignore
        (e.R.run ~scale:(small_scale e.R.name) ~alloc:kind
           (H.Cons Pragma.Block)))
    Dpc_alloc.Allocator.[ Default; Halloc; Pool ]

let policy_choice_runs (e : R.entry) () =
  List.iter
    (fun policy ->
      ignore
        (e.R.run ~scale:(small_scale e.R.name) ~policy (H.Cons Pragma.Grid)))
    Dpc.Config_select.[ Kc 1; Kc 16; One_to_one ]

let basic_alloc_honored () =
  (* Regression: [Harness.prepare] used to drop [~alloc] on the Basic
     path, silently running the no-DP baseline on the default allocator. *)
  List.iter
    (fun v ->
      let seen = ref "" in
      let inspect dev =
        seen :=
          Dpc_alloc.Allocator.kind_to_string
            (Dpc_alloc.Allocator.kind (Dpc_sim.Device.allocator dev))
      in
      ignore
        (R.sssp.R.run ~scale:(small_scale R.sssp.R.name)
           ~alloc:Dpc_alloc.Allocator.Halloc ~inspect v);
      Alcotest.(check string)
        (H.variant_to_string v ^ " allocator honored")
        "halloc" !seen)
    [ H.Basic; H.Cons Pragma.Grid ]

let variant_cases (e : R.entry) =
  List.map
    (fun v ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" e.R.name (H.variant_to_string v))
        `Slow (run_app_variant e v))
    H.all_variants

let suite =
  List.concat_map variant_cases R.all
  @ List.map
      (fun e ->
        Alcotest.test_case (e.R.name ^ " launch reduction") `Slow
          (consolidation_reduces_launches e))
      R.all
  @ [
      Alcotest.test_case "SSSP all allocators" `Slow
        (allocator_choice_runs R.sssp);
      Alcotest.test_case "TD all allocators" `Slow
        (allocator_choice_runs R.tree_descendants);
      Alcotest.test_case "SSSP all policies" `Slow (policy_choice_runs R.sssp);
      Alcotest.test_case "TD all policies" `Slow
        (policy_choice_runs R.tree_descendants);
      Alcotest.test_case "basic variant honors allocator" `Slow
        basic_alloc_honored;
    ]
