(* Parallel recursion and consolidation (the paper's Fig. 1(c) pattern).

   A recursive tree-descendants kernel: every invocation processes the
   children of one node, recursing on non-leaves, with postwork after
   cudaDeviceSynchronize combining the children's results.  Grid-level
   consolidation turns the recursion into one kernel launch per tree
   level.

     dune exec examples/parallel_recursion.exe *)

module Device = Dpc_sim.Device
module M = Dpc_sim.Metrics
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory
module Tree = Dpc_graph.Tree

let source gran =
  Printf.sprintf
    {|
__global__ void desc(int* child_ptr, int* child_list, int* out, int nnodes, int node) {
  var t = blockIdx.x * blockDim.x + threadIdx.x;
  var cstart = child_ptr[node];
  var nchild = child_ptr[node + 1] - cstart;
  var c = 0 - 1;
  if (t < nchild) {
    c = child_list[cstart + t];
    var nc = child_ptr[c + 1] - child_ptr[c];
    if (nc == 0) {
      out[c] = 0;
    } else {
      #pragma dp consldt(%s) buffer(custom, perBufferSize: nnodes) work(c)
      launch desc<<<1, 64>>>(child_ptr, child_list, out, nnodes, c);
    }
  }
  cudaDeviceSynchronize();
  if (c >= 0) {
    var nc2 = child_ptr[c + 1] - child_ptr[c];
    if (nc2 > 0) {
      var acc = 0;
      for (var k = child_ptr[c]; k < child_ptr[c] + nc2; k = k + 1) {
        acc = acc + out[child_list[k]] + 1;
      }
      out[c] = acc;
    }
  }
}
|}
    gran

let () =
  let tree = Tree.generate ~depth:5 ~lo:8 ~hi:32 ~p_child:0.7 ~seed:3 () in
  let expect = Tree.descendants tree in
  Printf.printf "tree: %d nodes, depth %d\n\n" tree.Tree.n tree.Tree.depth;

  (* basic-dp: run the recursion as written, starting from the root. *)
  let run_basic () =
    let dev =
      Device.create (Dpc_minicu.Parser.parse_program (source "grid"))
    in
    let cp = Device.of_int_array dev ~name:"child_ptr" tree.Tree.child_ptr in
    let cl = Device.of_int_array dev ~name:"child_list" tree.Tree.child_list in
    let out = Device.alloc_int dev ~name:"out" tree.Tree.n in
    Device.launch dev "desc" ~grid:1 ~block:64
      [ V.Vbuf cp.Mem.id; V.Vbuf cl.Mem.id; V.Vbuf out.Mem.id;
        V.Vint tree.Tree.n; V.Vint 0 ];
    (dev, out)
  in

  (* consolidated: the transformed kernel takes a seed buffer of work
     items; the host seeds it with the root. *)
  let run_consolidated gran =
    let prog = Dpc_minicu.Parser.parse_program (source gran) in
    let r = Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:"desc" prog in
    let dev = Device.create r.Dpc.Transform.program in
    let cp = Device.of_int_array dev ~name:"child_ptr" tree.Tree.child_ptr in
    let cl = Device.of_int_array dev ~name:"child_list" tree.Tree.child_list in
    let out = Device.alloc_int dev ~name:"out" tree.Tree.n in
    let seed = Device.of_int_array dev ~name:"seed" [| 0 |] in
    let seed_cnt = Device.of_int_array dev ~name:"seed_cnt" [| 1 |] in
    let grid, block =
      Dpc.Transform.launch_config Dpc_gpu.Config.k20c r ~items:1
    in
    Device.launch dev r.Dpc.Transform.entry ~grid ~block
      [ V.Vbuf cp.Mem.id; V.Vbuf cl.Mem.id; V.Vbuf out.Mem.id;
        V.Vint tree.Tree.n; V.Vbuf seed.Mem.id; V.Vbuf seed_cnt.Mem.id ];
    (dev, out)
  in

  let check_and_report label (dev, (out : Mem.buf)) =
    let got = Device.read_int_array dev out.Mem.id in
    (* The host combines the root (it launched/seeded the root's work). *)
    got.(0) <- expect.(0);
    assert (got = expect);
    let r = Device.report dev in
    Printf.printf
      "%-22s %10.0f cycles  %6d launches  nesting depth %d\n" label
      r.M.cycles r.M.device_launches r.M.max_depth;
    r
  in
  let basic = check_and_report "basic-dp" (run_basic ()) in
  let grid = check_and_report "grid-level" (run_consolidated "grid") in
  let block = check_and_report "block-level" (run_consolidated "block") in
  Printf.printf
    "\nconsolidation speedup over basic-dp: grid %.0fx, block %.0fx\n"
    (basic.M.cycles /. grid.M.cycles)
    (basic.M.cycles /. block.M.cycles);
  Printf.printf
    "grid-level launches one consolidated kernel per tree level plus one \
     postwork kernel per level.\n"
