(* A tour of the source-to-source compiler: annotated MiniCU in,
   consolidated MiniCU out — what `dpcc` does, driven from the API.

     dune exec examples/compiler_tour.exe

   The same transformation from the command line:

     dune exec bin/dpcc.exe -- --help-pragma
     dune exec bin/dpcc.exe -- examples/sssp_annotated.mcu *)

let annotated =
  {|
__global__ void relax_child(int* row_ptr, int* col, int* w, int* dist, int* changed, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  var du = dist[node];
  while (start + t < end) {
    var alt = du + w[start + t];
    var old = atomicMin(dist, col[start + t], alt);
    if (alt < old) {
      changed[0] = 1;
    }
    t = t + blockDim.x;
  }
}
__global__ void relax(int* row_ptr, int* col, int* w, int* dist, int* changed, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(block) buffer(custom, perBufferSize: 256) work(node)
      launch relax_child<<<1, 64>>>(row_ptr, col, w, dist, changed, node);
    } else {
      var du = dist[node];
      for (var e = row_ptr[node]; e < row_ptr[node + 1]; e = e + 1) {
        var alt = du + w[e];
        var old = atomicMin(dist, col[e], alt);
        if (alt < old) {
          changed[0] = 1;
        }
      }
    }
  }
}
|}

let () =
  print_endline "=== annotated input (the paper's Fig. 4(a)) ===";
  print_string annotated;
  let prog = Dpc_minicu.Parser.parse_program annotated in
  let r = Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:"relax" prog in
  print_endline "\n=== generated code (the paper's Fig. 4(b)) ===";
  print_string (Dpc_kir.Pp.program r.Dpc.Transform.program);
  Printf.printf
    "\nentry kernel: %s; consolidated child: %s; policy %s -> blocks %s, \
     threads %d\n"
    r.Dpc.Transform.entry r.Dpc.Transform.cons_kernel
    (Dpc.Config_select.policy_to_string r.Dpc.Transform.policy)
    (match r.Dpc.Transform.static_blocks with
    | Some b -> string_of_int b
    | None -> "(dynamic)")
    r.Dpc.Transform.threads
