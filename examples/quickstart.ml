(* Quickstart: write a kernel in MiniCU, run it on the simulated GPU, and
   read the profiler-style report.

     dune exec examples/quickstart.exe *)

let source =
  {|
__global__ void saxpy(float* x, float* y, float a, int n) {
  var i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
|}

let () =
  (* 1. Parse the kernel and create a simulated K20c. *)
  let program = Dpc_minicu.Parser.parse_program source in
  let dev = Dpc_sim.Device.create program in

  (* 2. Allocate and fill device buffers. *)
  let n = 10_000 in
  let x =
    Dpc_sim.Device.of_float_array dev ~name:"x"
      (Array.init n Float.of_int)
  in
  let y =
    Dpc_sim.Device.of_float_array dev ~name:"y" (Array.make n 1.0)
  in

  (* 3. Launch: 128-thread blocks covering n elements. *)
  let open Dpc_kir.Value in
  Dpc_sim.Device.launch dev "saxpy" ~grid:((n + 127) / 128) ~block:128
    [ Vbuf x.Dpc_gpu.Memory.id; Vbuf y.Dpc_gpu.Memory.id; Vfloat 2.0; Vint n ];

  (* 4. Read results back and check one value. *)
  let result = Dpc_sim.Device.read_float_array dev y.Dpc_gpu.Memory.id in
  Printf.printf "y[42] = %g (expected %g)\n" result.(42) ((2.0 *. 42.0) +. 1.0);

  (* 5. The report carries the profiler metrics used across the paper. *)
  Dpc_sim.Metrics.print ~title:"saxpy on simulated K20c"
    (Dpc_sim.Device.report dev)
