(* Irregular loops and dynamic parallelism (the paper's Fig. 1(b) pattern).

   A ragged "neighbor scaling" workload: row i has a data-dependent number
   of elements.  We run it four ways — flat, basic-dp, and consolidated at
   block and grid level — and compare the reports, reproducing in
   miniature what Figs. 7-9 show.

     dune exec examples/irregular_loop.exe *)

module Device = Dpc_sim.Device
module M = Dpc_sim.Metrics
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory

(* The annotated DP source: threads owning heavy rows delegate to a child
   kernel; the #pragma dp directive tells the consolidation compiler what
   to buffer. *)
let dp_source granularity =
  Printf.sprintf
    {|
__global__ void scale_child(int* row_ptr, int* data, int row) {
  var t = threadIdx.x;
  var start = row_ptr[row];
  var end = row_ptr[row + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 3;
    t = t + blockDim.x;
  }
}
__global__ void scale_rows(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var row = tid;
    var deg = row_ptr[row + 1] - row_ptr[row];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(row)
      launch scale_child<<<1, 64>>>(row_ptr, data, row);
    } else {
      for (var e = row_ptr[row]; e < row_ptr[row + 1]; e = e + 1) {
        data[e] = data[e] * 3;
      }
    }
  }
}
|}
    granularity

let flat_source =
  {|
__global__ void scale_flat(int* row_ptr, int* data, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
      data[e] = data[e] * 3;
    }
  }
}
|}

let n = 4000

(* Ragged rows: mostly small, a heavy tail (the irregularity that makes
   flat kernels diverge). *)
let make_input () =
  let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
  (g.Dpc_graph.Csr.row_ptr, Array.init (Dpc_graph.Csr.nnz g) (fun i -> i))

let run_variant label program entry extra_args =
  let row_ptr_data, data0 = make_input () in
  let dev = Device.create program in
  let row_ptr = Device.of_int_array dev ~name:"row_ptr" row_ptr_data in
  let data = Device.of_int_array dev ~name:"data" data0 in
  Device.launch dev entry ~grid:((n + 127) / 128) ~block:128
    ([ V.Vbuf row_ptr.Mem.id; V.Vbuf data.Mem.id; V.Vint n ] @ extra_args);
  let got = Device.read_int_array dev data.Mem.id in
  Array.iteri
    (fun i v -> assert (v = data0.(i) * 3))
    got;
  let r = Device.report dev in
  Printf.printf "%-22s %10.0f cycles  %6d launches  eff %5.1f%%  occ %5.1f%%\n"
    label r.M.cycles r.M.device_launches
    (100. *. r.M.warp_efficiency) (100. *. r.M.occupancy);
  r

let () =
  Printf.printf "ragged scaling over %d rows (power-law row lengths)\n\n" n;
  let flat =
    run_variant "no-dp (flat)"
      (Dpc_minicu.Parser.parse_program flat_source)
      "scale_flat" []
  in
  let basic =
    run_variant "basic-dp"
      (Dpc_minicu.Parser.parse_program (dp_source "grid"))
      "scale_rows" [ V.Vint 16 ]
  in
  let consolidated gran =
    let prog = Dpc_minicu.Parser.parse_program (dp_source gran) in
    let r = Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:"scale_rows" prog in
    run_variant (gran ^ "-level consolidated") r.Dpc.Transform.program
      r.Dpc.Transform.entry [ V.Vint 16 ]
  in
  let block = consolidated "block" in
  let grid = consolidated "grid" in
  Printf.printf
    "\nspeedup over basic-dp: flat %.1fx, block-level %.1fx, grid-level %.1fx\n"
    (basic.M.cycles /. flat.M.cycles)
    (basic.M.cycles /. block.M.cycles)
    (basic.M.cycles /. grid.M.cycles)

(* Device-utilization timelines: basic-dp's long sparse tail of tiny
   kernels vs the dense burst of the consolidated kernel. *)
let () =
  let show label source entry extra =
    let row_ptr_data, data0 = make_input () in
    let dev = Device.create source in
    let row_ptr = Device.of_int_array dev ~name:"row_ptr" row_ptr_data in
    let data = Device.of_int_array dev ~name:"data" data0 in
    Device.launch dev entry ~grid:((n + 127) / 128) ~block:128
      ([ V.Vbuf row_ptr.Mem.id; V.Vbuf data.Mem.id; V.Vint n ] @ extra);
    Printf.printf "\n%s:\n%s" label
      (Dpc_sim.Timeline.of_session (Device.session dev))
  in
  show "basic-dp utilization"
    (Dpc_minicu.Parser.parse_program (dp_source "grid"))
    "scale_rows" [ V.Vint 16 ];
  let r =
    Dpc.Transform.apply ~cfg:Dpc_gpu.Config.k20c ~parent:"scale_rows"
      (Dpc_minicu.Parser.parse_program (dp_source "grid"))
  in
  show "grid-level consolidated utilization" r.Dpc.Transform.program
    r.Dpc.Transform.entry [ V.Vint 16 ]
