(* Benchmark harness.

   Two halves:

   1. Bechamel microbenchmarks — one Test.make per paper table/figure,
      each regenerating that experiment end-to-end (directive parsing,
      consolidation transform, functional SIMT simulation and timing
      replay) at a reduced problem size.  These measure the toolchain's
      wall-clock cost; the *simulated* results the paper reports come from
      `bin/experiments.exe`.

   2. Ablation tables (DESIGN.md section 5) — printed directly, since
      their interesting output is simulated device cycles, not wall time:
        A1  device-launch-latency sensitivity (basic-dp vs grid-level)
        A2  SMX scheduler: processor sharing vs FCFS
        A3  pending-pool capacity (the cudaDeviceSetLimit analogue)
        A4  perBufferSize sizing vs overflow fallbacks
        A5  basic-dp slowdown growth with problem scale

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Cfg = Dpc_gpu.Config
module Table = Dpc_util.Table
module Pragma = Dpc_kir.Pragma
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory
module Device = Dpc_sim.Device

let grid = H.Cons Pragma.Grid
let warp = H.Cons Pragma.Warp

(* Run [f] under a specific interpreter back end, restoring the session
   default afterwards (used by the compiled-vs-walker rows below). *)
let with_interp mode f =
  let saved = Dpc_sim.Interp.default_mode () in
  Dpc_sim.Interp.set_default_mode mode;
  Fun.protect ~finally:(fun () -> Dpc_sim.Interp.set_default_mode saved) f

(* --- 1. bechamel microbenchmarks (one per table/figure) ------------------- *)

let bechamel_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  [
    (* Table I: directive parsing. *)
    t "tableI/pragma-parse" (fun () ->
        ignore
          (Dpc_minicu.Pragma_parser.parse
             "dp consldt(block) buffer(custom, perBufferSize: 256, \
              totalSize: 1048576) work(curr, next) threads(128)"));
    (* Fig 4: the source-to-source transform itself. *)
    t "fig4/parse+transform" (fun () ->
        let prog =
          Dpc_minicu.Parser.parse_program
            (Dpc_apps.Sssp.dp_source Pragma.Block)
        in
        ignore (Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"sssp_parent" prog));
    (* Fig 5: one SSSP consolidated run per allocator extreme. *)
    t "fig5/sssp-warp-default" (fun () ->
        ignore
          (Dpc_apps.Sssp.run ~scale:800 ~alloc:Dpc_alloc.Allocator.Default warp));
    t "fig5/sssp-warp-prealloc" (fun () ->
        ignore
          (Dpc_apps.Sssp.run ~scale:800 ~alloc:Dpc_alloc.Allocator.Pool warp));
    (* Fig 6: policy points on TD. *)
    t "fig6/td-grid-KC1" (fun () ->
        ignore
          (Dpc_apps.Tree_descendants.run ~scale:16
             ~policy:(Dpc.Config_select.Kc 1) grid));
    t "fig6/td-grid-1to1" (fun () ->
        ignore
          (Dpc_apps.Tree_descendants.run ~scale:16
             ~policy:Dpc.Config_select.One_to_one grid));
    (* Figs 7-10: each benchmark app end to end. *)
    t "fig7/sssp-basic" (fun () -> ignore (Dpc_apps.Sssp.run ~scale:800 H.Basic));
    t "fig7/sssp-grid" (fun () -> ignore (Dpc_apps.Sssp.run ~scale:800 grid));
    t "fig7/spmv-grid" (fun () -> ignore (Dpc_apps.Spmv.run ~scale:1500 grid));
    t "fig7/pagerank-grid" (fun () ->
        ignore (Dpc_apps.Pagerank.run ~scale:800 grid));
    t "fig7/gc-grid" (fun () ->
        ignore (Dpc_apps.Graph_coloring.run ~scale:9 grid));
    t "fig7/bfs-rec-grid" (fun () -> ignore (Dpc_apps.Bfs_rec.run ~scale:9 grid));
    t "fig7/th-grid" (fun () ->
        ignore (Dpc_apps.Tree_height.run ~scale:16 grid));
    t "fig7/td-grid" (fun () ->
        ignore (Dpc_apps.Tree_descendants.run ~scale:16 grid));
    (* Interpreter back ends head to head: identical simulations through
       the compiled closure fast path vs the reference AST walker (the
       tentpole speedup; suite-level numbers live in BENCH_pr3.json). *)
    t "interp/sssp-basic-compiled" (fun () ->
        with_interp Dpc_sim.Interp.Compiled (fun () ->
            ignore (Dpc_apps.Sssp.run ~scale:800 H.Basic)));
    t "interp/sssp-basic-walker" (fun () ->
        with_interp Dpc_sim.Interp.Reference (fun () ->
            ignore (Dpc_apps.Sssp.run ~scale:800 H.Basic)));
    t "interp/td-grid-compiled" (fun () ->
        with_interp Dpc_sim.Interp.Compiled (fun () ->
            ignore (Dpc_apps.Tree_descendants.run ~scale:16 grid)));
    t "interp/td-grid-walker" (fun () ->
        with_interp Dpc_sim.Interp.Reference (fun () ->
            ignore (Dpc_apps.Tree_descendants.run ~scale:16 grid)));
  ]

let run_bechamel ?(quota = 0.4) () =
  print_endline "=== bechamel microbenchmarks (ns per run, OLS estimate) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"dpc" bechamel_tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    rows;
  print_newline ()

(* --- 2. ablation tables ---------------------------------------------------- *)

(* The ablation sweeps are rows of fully independent simulations; each
   table fans its rows out over [pool] and appends them in submission
   order, so the printed tables match the serial run byte for byte. *)
module Pool = Dpc_util.Pool

(* A1: how sensitive is each variant to the device-side launch latency?
   basic-dp should track it linearly; grid-level should barely notice. *)
let ablation_launch_latency pool =
  let t =
    Table.create
      ~title:
        "Ablation A1: device-launch-latency sweep, SSSP cycles (basic-dp vs \
         grid-level)"
      ~headers:[ "latency (cycles)"; "basic-dp"; "grid-level"; "ratio" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  Pool.parallel_map pool
    (fun lat ->
      let cfg = { Cfg.k20c with Cfg.device_launch_latency = lat } in
      let b = Dpc_apps.Sssp.run ~cfg ~scale:1500 H.Basic in
      let g = Dpc_apps.Sssp.run ~cfg ~scale:1500 grid in
      [ string_of_int lat;
        Printf.sprintf "%.0f" b.M.cycles;
        Printf.sprintf "%.0f" g.M.cycles;
        Table.fmt_ratio (b.M.cycles /. g.M.cycles) ])
    [ 1_000; 5_000; 20_000 ]
  |> List.iter (Table.add_row t);
  Table.print t

(* A2: processor-sharing vs FCFS SMX scheduling. *)
let ablation_scheduler pool =
  let t =
    Table.create
      ~title:"Ablation A2: SMX scheduler model, SSSP cycles"
      ~headers:[ "variant"; "processor sharing"; "fcfs (no contention)" ]
      ~aligns:Table.[ Left; Right; Right ] ()
  in
  let prog gran = Dpc_minicu.Parser.parse_program (Dpc_apps.Sssp.dp_source gran) in
  let run sched variant =
    (* Re-run SSSP by hand to select the scheduler. *)
    let g = Dpc_graph.Gen.citeseer_like ~n:1500 ~seed:7 in
    let entry, program =
      match variant with
      | `Basic -> ("sssp_parent", prog Pragma.Grid)
      | `Grid ->
        let r =
          Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"sssp_parent"
            (prog Pragma.Grid)
        in
        (r.Dpc.Transform.entry, r.Dpc.Transform.program)
    in
    let dev = Device.create ~cfg:Cfg.k20c ~scheduler:sched program in
    let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
    let col = Device.of_int_array dev ~name:"col" g.Dpc_graph.Csr.col in
    let w = Device.of_int_array dev ~name:"w" g.Dpc_graph.Csr.weights in
    let d0 = Array.make g.Dpc_graph.Csr.n 1_000_000_000 in
    d0.(0) <- 0;
    let dist = Device.of_int_array dev ~name:"dist" d0 in
    let changed = Device.alloc_int dev ~name:"ch" 1 in
    let continue = ref true in
    while !continue do
      Device.launch dev entry
        ~grid:((g.Dpc_graph.Csr.n + 127) / 128)
        ~block:128
        [ V.Vbuf rp.Mem.id; V.Vbuf col.Mem.id; V.Vbuf w.Mem.id;
          V.Vbuf dist.Mem.id; V.Vbuf changed.Mem.id;
          V.Vint g.Dpc_graph.Csr.n; V.Vint 8 ];
      let c = (Device.read_int_array dev changed.Mem.id).(0) in
      Mem.write_int (Device.buf dev changed.Mem.id) 0 0;
      continue := c <> 0
    done;
    (Device.report dev).M.cycles
  in
  (* Four independent (variant x scheduler) simulations. *)
  let cells =
    Pool.parallel_map pool
      (fun (variant, sched) -> Printf.sprintf "%.0f" (run sched variant))
      (List.concat_map
         (fun v ->
           [ (v, Dpc_sim.Timing.Processor_sharing); (v, Dpc_sim.Timing.Fcfs) ])
         [ `Basic; `Grid ])
  in
  (match cells with
  | [ b_ps; b_fcfs; g_ps; g_fcfs ] ->
    Table.add_row t [ "basic-dp"; b_ps; b_fcfs ];
    Table.add_row t [ "grid-level"; g_ps; g_fcfs ]
  | _ -> assert false);
  Table.print t

(* A3: pending-pool capacity sweep — the cudaDeviceSetLimit analogue the
   paper mentions in Section III.B. *)
let ablation_pool_capacity pool =
  let t =
    Table.create
      ~title:
        "Ablation A3: fixed pending-pool capacity, SSSP basic-dp \
         (cudaDeviceSetLimit analogue)"
      ~headers:
        [ "pool entries"; "cycles"; "virtualized launches"; "max pending" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  Pool.parallel_map pool
    (fun cap ->
      let cfg = { Cfg.k20c with Cfg.fixed_pool_capacity = cap } in
      let r = Dpc_apps.Sssp.run ~cfg ~scale:3000 H.Basic in
      [ string_of_int cap;
        Printf.sprintf "%.0f" r.M.cycles;
        string_of_int r.M.virtualized_launches;
        string_of_int r.M.max_pending ])
    [ 256; 2048; 16384 ]
  |> List.iter (Table.add_row t);
  Table.print t

(* A4: consolidation-buffer sizing.  Small explicit perBufferSize values
   overflow and fall back to direct launches; the report counts both the
   fallback launches and the cycles they cost. *)
let ablation_buffer_sizing pool =
  let t =
    Table.create
      ~title:
        "Ablation A4: perBufferSize vs overflow fallback (ragged workload, \
         block-level)"
      ~headers:[ "perBufferSize (items)"; "cycles"; "device launches" ]
      ~aligns:Table.[ Left; Right; Right ] ()
  in
  let source cap =
    Printf.sprintf
      {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(block) buffer(custom, perBufferSize: %d) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}
      cap
  in
  let n = 3000 in
  Pool.parallel_map pool
    (fun cap ->
      (* Each task builds its own graph and device: nothing simulated is
         shared across domains. *)
      let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
      let prog = Dpc_minicu.Parser.parse_program (source cap) in
      let r = Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"parent" prog in
      let dev = Device.create ~cfg:Cfg.k20c r.Dpc.Transform.program in
      let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
      let data =
        Device.of_int_array dev ~name:"data"
          (Array.init (Dpc_graph.Csr.nnz g) (fun i -> i))
      in
      Device.launch dev r.Dpc.Transform.entry ~grid:((n + 127) / 128)
        ~block:128
        [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 8 ];
      let rep = Device.report dev in
      [ string_of_int cap;
        Printf.sprintf "%.0f" rep.M.cycles;
        string_of_int rep.M.device_launches ])
    [ 4; 32; 512 ]
  |> List.iter (Table.add_row t);
  Table.print t

(* A5: the basic-dp slowdown grows with problem scale (why the paper's
   full-size runs show 2-3 orders of magnitude). *)
let ablation_scale_growth pool =
  let t =
    Table.create
      ~title:"Ablation A5: basic-dp slowdown vs no-dp as SSSP scale grows"
      ~headers:[ "nodes"; "basic-dp cycles"; "no-dp cycles"; "slowdown" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  Pool.parallel_map pool
    (fun n ->
      let b = Dpc_apps.Sssp.run ~scale:n H.Basic in
      let f = Dpc_apps.Sssp.run ~scale:n H.Flat in
      [ string_of_int n;
        Printf.sprintf "%.0f" b.M.cycles;
        Printf.sprintf "%.0f" f.M.cycles;
        Table.fmt_ratio (b.M.cycles /. f.M.cycles) ])
    [ 1000; 2000; 4000; 8000 ]
  |> List.iter (Table.add_row t);
  Table.print t

(* A6: the Free Launch (MICRO'15) thread-reuse baseline vs consolidation
   on the ragged workload — the related-work comparison of Section VI. *)
let ablation_free_launch () =
  let t =
    Table.create
      ~title:
        "Ablation A6: Free Launch (thread reuse) vs workload consolidation          (ragged workload)"
      ~headers:[ "variant"; "cycles"; "device launches"; "warp efficiency" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  let n = 3000 in
  let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
  let source gran =
    Printf.sprintf
      {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}
      gran
  in
  let run label program entry =
    let dev = Device.create ~cfg:Cfg.k20c program in
    let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
    let data =
      Device.of_int_array dev ~name:"data"
        (Array.init (Dpc_graph.Csr.nnz g) (fun i -> i))
    in
    Device.launch dev entry ~grid:((n + 127) / 128) ~block:128
      [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 8 ];
    let r = Device.report dev in
    Table.add_row t
      [ label;
        Printf.sprintf "%.0f" r.M.cycles;
        string_of_int r.M.device_launches;
        Table.fmt_pct r.M.warp_efficiency ]
  in
  let prog () = Dpc_minicu.Parser.parse_program (source "grid") in
  run "basic-dp" (prog ()) "parent";
  let fl = Dpc.Free_launch.apply ~parent:"parent" (prog ()) in
  run "free launch (thread reuse)" fl.Dpc.Free_launch.program
    fl.Dpc.Free_launch.entry;
  let cons = Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"parent" (prog ()) in
  run "grid-level consolidation" cons.Dpc.Transform.program
    cons.Dpc.Transform.entry;
  Table.print t

let () =
  (* --smoke: the reduced CI run — bechamel rows at a small quota, no
     ablation sweeps.  Default: full microbenchmarks + ablations. *)
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  if smoke then begin
    run_bechamel ~quota:0.05 ();
    print_endline "bench: smoke done"
  end
  else begin
    (* Microbenchmarks stay serial (they measure wall time); the ablation
       sweeps fan out over domains. *)
    run_bechamel ();
    let pool = Pool.create ~jobs:(Pool.default_jobs ()) in
    ablation_launch_latency pool;
    ablation_scheduler pool;
    ablation_pool_capacity pool;
    ablation_buffer_sizing pool;
    ablation_scale_growth pool;
    ablation_free_launch ();
    print_endline "bench: done (see bin/experiments.exe for the paper figures)"
  end
