(* Benchmark harness.

   Two halves:

   1. Bechamel microbenchmarks — one Test.make per paper table/figure,
      each regenerating that experiment end-to-end (directive parsing,
      consolidation transform, functional SIMT simulation and timing
      replay) at a reduced problem size.  These measure the toolchain's
      wall-clock cost; the *simulated* results the paper reports come from
      `bin/experiments.exe`.

   2. Ablation tables (DESIGN.md section 5) — printed directly, since
      their interesting output is simulated device cycles, not wall time:
        A1  device-launch-latency sensitivity (basic-dp vs grid-level)
        A2  SMX scheduler: processor sharing vs FCFS
        A3  pending-pool capacity (the cudaDeviceSetLimit analogue)
        A4  perBufferSize sizing vs overflow fallbacks
        A5  basic-dp slowdown growth with problem scale

   3. The pool-scheduler sweep (--sched-sweep, also part of the default
      run): shared-counter vs work-stealing dispatch on uniform and
      skewed 1000-scenario sweeps, wall-clocked across a jobs axis with
      delay-calibrated task bodies, written to BENCH_pr6.json.

   4. The compiled-kernel cache sweep (--cache-sweep, also part of the
      default run): one scenario sweep executed through a caching and a
      cacheless Dpc_engine session, wall-clocked, written to
      BENCH_pr5.json.

   5. The interpreter-tier sweep (--interp-sweep, also part of the
      default run): the evaluation suite under the compiled, bytecode,
      bytecode-without-fusion and walker back ends, wall-clocked with a
      metrics-identity check, written to BENCH_pr8.json.

   App runs go through Dpc_engine scenarios: the ablation sweeps share
   one caching session; the bechamel rows use a cacheless session so
   each iteration measures the full parse/transform/simulate pipeline.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Cfg = Dpc_gpu.Config
module Table = Dpc_util.Table
module Pragma = Dpc_kir.Pragma
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory
module Device = Dpc_sim.Device
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session
module Json = Dpc_prof.Json

let grid = H.Cons Pragma.Grid
let warp = H.Cons Pragma.Warp

(* --- 1. bechamel microbenchmarks (one per table/figure) ------------------- *)

(* Cacheless on purpose: every iteration re-runs the whole toolchain,
   which is what these rows measure. *)
let bench_session = Session.create ~cache:false ()

let srun sc = ignore (Session.run bench_session sc)

let bechamel_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  let sc = Scenario.make in
  [
    (* Table I: directive parsing. *)
    t "tableI/pragma-parse" (fun () ->
        ignore
          (Dpc_minicu.Pragma_parser.parse
             "dp consldt(block) buffer(custom, perBufferSize: 256, \
              totalSize: 1048576) work(curr, next) threads(128)"));
    (* Fig 4: the source-to-source transform itself. *)
    t "fig4/parse+transform" (fun () ->
        let prog =
          Dpc_minicu.Parser.parse_program
            (Dpc_apps.Sssp.dp_source Pragma.Block)
        in
        ignore (Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"sssp_parent" prog));
    (* Fig 5: one SSSP consolidated run per allocator extreme. *)
    t "fig5/sssp-warp-default" (fun () ->
        srun (sc ~app:"SSSP" ~alloc:Dpc_alloc.Allocator.Default ~scale:800 warp));
    t "fig5/sssp-warp-prealloc" (fun () ->
        srun (sc ~app:"SSSP" ~alloc:Dpc_alloc.Allocator.Pool ~scale:800 warp));
    (* Fig 6: policy points on TD. *)
    t "fig6/td-grid-KC1" (fun () ->
        srun (sc ~app:"TD" ~scale:16 ~policy:(Dpc.Config_select.Kc 1) grid));
    t "fig6/td-grid-1to1" (fun () ->
        srun (sc ~app:"TD" ~scale:16 ~policy:Dpc.Config_select.One_to_one grid));
    (* Figs 7-10: each benchmark app end to end. *)
    t "fig7/sssp-basic" (fun () -> srun (sc ~app:"SSSP" ~scale:800 H.Basic));
    t "fig7/sssp-grid" (fun () -> srun (sc ~app:"SSSP" ~scale:800 grid));
    t "fig7/spmv-grid" (fun () -> srun (sc ~app:"SpMV" ~scale:1500 grid));
    t "fig7/pagerank-grid" (fun () ->
        srun (sc ~app:"PageRank" ~scale:800 grid));
    t "fig7/gc-grid" (fun () -> srun (sc ~app:"GC" ~scale:9 grid));
    t "fig7/bfs-rec-grid" (fun () -> srun (sc ~app:"BFS-Rec" ~scale:9 grid));
    t "fig7/th-grid" (fun () -> srun (sc ~app:"TH" ~scale:16 grid));
    t "fig7/td-grid" (fun () -> srun (sc ~app:"TD" ~scale:16 grid));
    (* Interpreter back ends head to head: identical simulations through
       the compiled closure fast path, the bytecode tier and the
       reference AST walker (tentpole speedups of PRs 3 and 8;
       suite-level numbers live in BENCH_pr3.json / BENCH_pr8.json).
       The back end is part of the scenario, not ambient state. *)
    t "interp/sssp-basic-compiled" (fun () ->
        srun
          (sc ~app:"SSSP" ~interp:Dpc_sim.Interp.Compiled ~scale:800 H.Basic));
    t "interp/sssp-basic-bytecode" (fun () ->
        srun
          (sc ~app:"SSSP" ~interp:Dpc_sim.Interp.Bytecode ~scale:800 H.Basic));
    t "interp/sssp-basic-walker" (fun () ->
        srun
          (sc ~app:"SSSP" ~interp:Dpc_sim.Interp.Reference ~scale:800 H.Basic));
    t "interp/td-grid-compiled" (fun () ->
        srun (sc ~app:"TD" ~interp:Dpc_sim.Interp.Compiled ~scale:16 grid));
    t "interp/td-grid-bytecode" (fun () ->
        srun (sc ~app:"TD" ~interp:Dpc_sim.Interp.Bytecode ~scale:16 grid));
    t "interp/td-grid-walker" (fun () ->
        srun (sc ~app:"TD" ~interp:Dpc_sim.Interp.Reference ~scale:16 grid));
  ]

let run_bechamel ?(quota = 0.4) () =
  print_endline "=== bechamel microbenchmarks (ns per run, OLS estimate) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"dpc" bechamel_tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    rows;
  print_newline ()

(* --- 2. ablation tables ---------------------------------------------------- *)

(* The ablation sweeps are rows of fully independent simulations,
   expressed as scenario lists and fanned out over the shared session's
   pool; [run_all] preserves submission order, so the printed tables
   match the serial run byte for byte.  Device knobs (launch latency,
   pool capacity, scheduler) are part of the scenario, not hand-threaded
   config records. *)
module Pool = Dpc_util.Pool

let reports session scs =
  List.map Session.report (Session.run_all session scs)

(* A1: how sensitive is each variant to the device-side launch latency?
   basic-dp should track it linearly; grid-level should barely notice. *)
let ablation_launch_latency session =
  let t =
    Table.create
      ~title:
        "Ablation A1: device-launch-latency sweep, SSSP cycles (basic-dp vs \
         grid-level)"
      ~headers:[ "latency (cycles)"; "basic-dp"; "grid-level"; "ratio" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  let lats = [ 1_000; 5_000; 20_000 ] in
  let rs =
    reports session
      (List.concat_map
         (fun lat ->
           let cfg_overrides = [ ("device_launch_latency", lat) ] in
           [ Scenario.make ~app:"SSSP" ~cfg_overrides ~scale:1500 H.Basic;
             Scenario.make ~app:"SSSP" ~cfg_overrides ~scale:1500 grid ])
         lats)
  in
  let rec rows lats rs =
    match (lats, rs) with
    | [], [] -> ()
    | lat :: lats, (b : M.report) :: g :: rs ->
      Table.add_row t
        [ string_of_int lat;
          Printf.sprintf "%.0f" b.M.cycles;
          Printf.sprintf "%.0f" g.M.cycles;
          Table.fmt_ratio (b.M.cycles /. g.M.cycles) ];
      rows lats rs
    | _ -> assert false
  in
  rows lats rs;
  Table.print t

(* A2: processor-sharing vs FCFS SMX scheduling — the scheduler is a
   scenario field, so this is four declarative runs. *)
let ablation_scheduler session =
  let t =
    Table.create
      ~title:"Ablation A2: SMX scheduler model, SSSP cycles"
      ~headers:[ "variant"; "processor sharing"; "fcfs (no contention)" ]
      ~aligns:Table.[ Left; Right; Right ] ()
  in
  let cells =
    List.map
      (fun (r : M.report) -> Printf.sprintf "%.0f" r.M.cycles)
      (reports session
         (List.concat_map
            (fun v ->
              List.map
                (fun scheduler ->
                  Scenario.make ~app:"SSSP" ~scale:1500 ~scheduler v)
                [ Dpc_sim.Timing.Processor_sharing; Dpc_sim.Timing.Fcfs ])
            [ H.Basic; grid ]))
  in
  (match cells with
  | [ b_ps; b_fcfs; g_ps; g_fcfs ] ->
    Table.add_row t [ "basic-dp"; b_ps; b_fcfs ];
    Table.add_row t [ "grid-level"; g_ps; g_fcfs ]
  | _ -> assert false);
  Table.print t

(* A3: pending-pool capacity sweep — the cudaDeviceSetLimit analogue the
   paper mentions in Section III.B. *)
let ablation_pool_capacity session =
  let t =
    Table.create
      ~title:
        "Ablation A3: fixed pending-pool capacity, SSSP basic-dp \
         (cudaDeviceSetLimit analogue)"
      ~headers:
        [ "pool entries"; "cycles"; "virtualized launches"; "max pending" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  let caps = [ 256; 2048; 16384 ] in
  List.iter2
    (fun cap (r : M.report) ->
      Table.add_row t
        [ string_of_int cap;
          Printf.sprintf "%.0f" r.M.cycles;
          string_of_int r.M.virtualized_launches;
          string_of_int r.M.max_pending ])
    caps
    (reports session
       (List.map
          (fun cap ->
            Scenario.make ~app:"SSSP"
              ~cfg_overrides:[ ("fixed_pool_capacity", cap) ]
              ~scale:3000 H.Basic)
          caps));
  Table.print t

(* A4: consolidation-buffer sizing.  Small explicit perBufferSize values
   overflow and fall back to direct launches; the report counts both the
   fallback launches and the cycles they cost. *)
let ablation_buffer_sizing pool =
  let t =
    Table.create
      ~title:
        "Ablation A4: perBufferSize vs overflow fallback (ragged workload, \
         block-level)"
      ~headers:[ "perBufferSize (items)"; "cycles"; "device launches" ]
      ~aligns:Table.[ Left; Right; Right ] ()
  in
  let source cap =
    Printf.sprintf
      {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(block) buffer(custom, perBufferSize: %d) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}
      cap
  in
  let n = 3000 in
  Pool.parallel_map pool
    (fun cap ->
      (* Each task builds its own graph and device: nothing simulated is
         shared across domains. *)
      let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
      let prog = Dpc_minicu.Parser.parse_program (source cap) in
      let r = Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"parent" prog in
      let dev = Device.create ~cfg:Cfg.k20c r.Dpc.Transform.program in
      let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
      let data =
        Device.of_int_array dev ~name:"data"
          (Array.init (Dpc_graph.Csr.nnz g) (fun i -> i))
      in
      Device.launch dev r.Dpc.Transform.entry ~grid:((n + 127) / 128)
        ~block:128
        [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 8 ];
      let rep = Device.report dev in
      [ string_of_int cap;
        Printf.sprintf "%.0f" rep.M.cycles;
        string_of_int rep.M.device_launches ])
    [ 4; 32; 512 ]
  |> List.iter (Table.add_row t);
  Table.print t

(* A5: the basic-dp slowdown grows with problem scale (why the paper's
   full-size runs show 2-3 orders of magnitude).  All eight runs share
   one program build through the session cache: only scale varies. *)
let ablation_scale_growth session =
  let t =
    Table.create
      ~title:"Ablation A5: basic-dp slowdown vs no-dp as SSSP scale grows"
      ~headers:[ "nodes"; "basic-dp cycles"; "no-dp cycles"; "slowdown" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  let scales = [ 1000; 2000; 4000; 8000 ] in
  let rs =
    reports session
      (List.concat_map
         (fun n ->
           [ Scenario.make ~app:"SSSP" ~scale:n H.Basic;
             Scenario.make ~app:"SSSP" ~scale:n H.Flat ])
         scales)
  in
  let rec rows scales rs =
    match (scales, rs) with
    | [], [] -> ()
    | n :: scales, (b : M.report) :: f :: rs ->
      Table.add_row t
        [ string_of_int n;
          Printf.sprintf "%.0f" b.M.cycles;
          Printf.sprintf "%.0f" f.M.cycles;
          Table.fmt_ratio (b.M.cycles /. f.M.cycles) ];
      rows scales rs
    | _ -> assert false
  in
  rows scales rs;
  Table.print t

(* A6: the Free Launch (MICRO'15) thread-reuse baseline vs consolidation
   on the ragged workload — the related-work comparison of Section VI. *)
let ablation_free_launch () =
  let t =
    Table.create
      ~title:
        "Ablation A6: Free Launch (thread reuse) vs workload consolidation          (ragged workload)"
      ~headers:[ "variant"; "cycles"; "device launches"; "warp efficiency" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  let n = 3000 in
  let g = Dpc_graph.Gen.citeseer_like ~n ~seed:5 in
  let source gran =
    Printf.sprintf
      {|
__global__ void child(int* row_ptr, int* data, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    data[start + t] = data[start + t] * 2;
    t = t + blockDim.x;
  }
}
__global__ void parent(int* row_ptr, int* data, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(node)
      launch child<<<1, 64>>>(row_ptr, data, node);
    } else {
      for (var j = row_ptr[node]; j < row_ptr[node + 1]; j = j + 1) {
        data[j] = data[j] * 2;
      }
    }
  }
}
|}
      gran
  in
  let run label program entry =
    let dev = Device.create ~cfg:Cfg.k20c program in
    let rp = Device.of_int_array dev ~name:"rp" g.Dpc_graph.Csr.row_ptr in
    let data =
      Device.of_int_array dev ~name:"data"
        (Array.init (Dpc_graph.Csr.nnz g) (fun i -> i))
    in
    Device.launch dev entry ~grid:((n + 127) / 128) ~block:128
      [ V.Vbuf rp.Mem.id; V.Vbuf data.Mem.id; V.Vint n; V.Vint 8 ];
    let r = Device.report dev in
    Table.add_row t
      [ label;
        Printf.sprintf "%.0f" r.M.cycles;
        string_of_int r.M.device_launches;
        Table.fmt_pct r.M.warp_efficiency ]
  in
  let prog () = Dpc_minicu.Parser.parse_program (source "grid") in
  run "basic-dp" (prog ()) "parent";
  let fl = Dpc.Free_launch.apply ~parent:"parent" (prog ()) in
  run "free launch (thread reuse)" fl.Dpc.Free_launch.program
    fl.Dpc.Free_launch.entry;
  let cons = Dpc.Transform.apply ~cfg:Cfg.k20c ~parent:"parent" (prog ()) in
  run "grid-level consolidation" cons.Dpc.Transform.program
    cons.Dpc.Transform.entry;
  Table.print t

(* --- 3. the pool-scheduler sweep (BENCH_pr6.json) ------------------------- *)

(* Shared-counter vs work-stealing dispatch on 1000-scenario sweeps.

   What this measures: the *scheduler*, not the simulator.  Each task's
   body is a calibrated delay — Unix.sleepf of its scenario's
   Scenario.cost_estimate, scaled to SCHED_UNIT seconds per cost unit —
   so task durations are controlled, wall clocks are real, and the
   comparison isolates dispatch order and load balance.  (Delays also
   overlap across domains on a single-core host, where CPU-bound bodies
   would serialize and hide any scheduling difference; the committed
   JSON records the host's core count.)  To keep the idealization
   honest, each task's *actual* delay gets a deterministic ±20% jitter
   the scheduler never sees: stealing must win on estimates, not on
   oracle knowledge.

   Two sweep shapes, both 1000 scenarios:
   - uniform: identical cost everywhere — any work-conserving scheduler
     is optimal, so steal must only show its overhead is negligible;
   - skewed: a handful of expensive runs listed *last* (the natural
     "ascending scale" sweep order).  Shared dispatch claims in
     submission order, so the big runs start after every small one and
     the last-claimed big run straggles alone; stealing's longest-first
     seed starts them immediately and idle workers steal the queued
     small tasks behind them. *)

let sched_unit = 0.0008 (* seconds of delay per unit of relative cost *)

let sched_uniform_sweep =
  List.init 1000 (fun i ->
      Scenario.make ~app:"SSSP" ~scale:1000 ~seed:(i + 1) grid)

let sched_skewed_sweep =
  (* 995 small runs, then 5 at 200x the scale — ascending scale order,
     exactly how a parameter sweep is usually written. *)
  List.init 995 (fun i ->
      Scenario.make ~app:"SSSP" ~scale:1000 ~seed:(i + 1) grid)
  @ List.init 5 (fun i ->
        Scenario.make ~app:"SSSP" ~scale:200_000 ~seed:(i + 1) grid)

(* Relative-cost units, normalized so the cheapest task costs 1. *)
let sched_costs scs =
  let raw = List.map Scenario.cost_estimate scs in
  let lo = List.fold_left Float.min infinity raw in
  List.map (fun c -> c /. lo) raw

(* Measure both schedulers on one sweep shape, interleaving the reps so
   slow host drift — this is a wall-clock bench on a shared machine —
   hits both equally, and taking the best rep of each.  The pair order
   flips every rep: a run that starts right after another one pays a
   measurable tail (teardown of the previous rep's domains overlapping
   its start), so a fixed order would bill that tail to one scheduler
   only.  A short settle between runs drains most of it.  Returns
   (shared_best, steal_best, steals). *)
let sched_walls ~jobs scs =
  let costs = Array.of_list (sched_costs scs) in
  let task i =
    (* ±20% deterministic jitter on the executed delay only: the
       scheduler orders by the unjittered estimate.  The hash must
       avalanche: a plain linear congruence makes every stride-w task
       subsequence an arithmetic progression mod 256, so the statically
       dealt workers' cumulative delays stay phase-locked and their
       wakeups contend for the CPU at the same instants all run long. *)
    let h = i * 0x9E3779B1 in
    let h = h lxor (h lsr 13) in
    let h = h * 0x85EBCA6B in
    let h = (h lxor (h lsr 16)) land 0xff in
    let jitter = 0.8 +. (0.4 *. float_of_int h /. 255.) in
    Unix.sleepf (costs.(i) *. sched_unit *. jitter)
  in
  let idx = List.init (Array.length costs) Fun.id in
  let shared_pool = Pool.create ~sched:Pool.Shared ~jobs () in
  let steal_pool = Pool.create ~sched:Pool.Steal ~jobs () in
  let time pool =
    let t0 = Unix.gettimeofday () in
    Pool.parallel_iter ~cost:(fun i -> costs.(i)) pool task idx;
    Unix.gettimeofday () -. t0
  in
  let reps = 10 in
  let shared_best = ref infinity and steal_best = ref infinity in
  let steals = ref 0 in
  let settle () = Unix.sleepf 0.005 in
  for r = 1 to reps do
    let measure_shared () =
      settle ();
      shared_best := Float.min !shared_best (time shared_pool)
    and measure_steal () =
      settle ();
      steal_best := Float.min !steal_best (time steal_pool);
      steals := Pool.last_steals steal_pool
    in
    if r land 1 = 0 then begin
      measure_shared ();
      measure_steal ()
    end
    else begin
      measure_steal ();
      measure_shared ()
    end
  done;
  (!shared_best, !steal_best, !steals)

(* Stealing must never change results: one real mixed-app sweep through
   a shared-dispatch session and a stealing session, metrics compared
   byte for byte. *)
let sched_identity_check () =
  let scs =
    List.concat_map
      (fun seed ->
        [ Scenario.make ~app:"SSSP" ~scale:400 ~seed grid;
          Scenario.make ~app:"SpMV" ~scale:300 ~seed (H.Cons Pragma.Block);
          Scenario.make ~app:"GC" ~scale:6 ~seed warp ])
      [ 1; 2; 3; 4 ]
  in
  let metrics sched jobs =
    let s = Session.create ~jobs ~sched () in
    let rs =
      List.map
        (fun o -> Json.to_string (M.to_json (Session.report o)))
        (Session.run_all s scs)
    in
    (rs, Session.last_steals s)
  in
  let shared, _ = metrics Pool.Shared 2 in
  let steal, steals = metrics Pool.Steal 4 in
  if shared <> steal then
    failwith "sched sweep: stealing changed the metrics";
  (List.length scs, steals)

let bench_sched_sweep ~out () =
  let jobs_axis = [ 1; 2; 4; 8 ] in
  let run_curve name scs =
    Printf.printf "=== pool scheduler sweep: %s (%d scenarios) ===\n" name
      (List.length scs);
    let rows =
      List.map
        (fun jobs ->
          let shared_s, steal_s, steals = sched_walls ~jobs scs in
          Printf.printf
            "  jobs %2d   shared %7.3f s   steal %7.3f s   speedup %.2fx   \
             (%d steals)\n\
             %!"
            jobs shared_s steal_s (shared_s /. steal_s) steals;
          Json.Obj
            [
              ("jobs", Json.Int jobs);
              ("shared_wall_s", Json.Float shared_s);
              ("steal_wall_s", Json.Float steal_s);
              ("speedup", Json.Float (shared_s /. steal_s));
              ("steals", Json.Int steals);
            ])
        jobs_axis
    in
    print_newline ();
    rows
  in
  let uniform = run_curve "uniform" sched_uniform_sweep in
  let skewed = run_curve "skewed" sched_skewed_sweep in
  let identity_runs, identity_steals = sched_identity_check () in
  Printf.printf
    "  identity: %d-run mixed sweep byte-identical shared vs steal (%d \
     steals)\n\n"
    identity_runs identity_steals;
  let j =
    Json.Obj
      [
        ("schema", Json.String "dpc-sched-bench-v1");
        ("source", Json.String "bench/main.exe --sched-sweep");
        ( "method",
          Json.String
            "task body = Unix.sleepf(cost_estimate * unit * jitter); \
             scheduler sees the unjittered estimate; wall = best of 10 order-alternated \
             interleaved shared/steal reps; delays overlap across \
             domains, so the curve measures dispatch order and load \
             balance, not simulator throughput" );
        ("unit_s_per_cost", Json.Float sched_unit);
        ("jitter", Json.String "deterministic, +/-20% of each task delay");
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ( "sweeps",
          Json.Obj
            [
              ( "uniform",
                Json.Obj
                  [
                    ( "scenarios",
                      Json.Int (List.length sched_uniform_sweep) );
                    ( "shape",
                      Json.String "1000 x SSSP/grid-level scale=1000" );
                    ("curve", Json.List uniform);
                  ] );
              ( "skewed",
                Json.Obj
                  [
                    ("scenarios", Json.Int (List.length sched_skewed_sweep));
                    ( "shape",
                      Json.String
                        "995 x SSSP/grid-level scale=1000 + 5 x \
                         scale=200000, ascending scale order" );
                    ("curve", Json.List skewed);
                  ] );
            ] );
        ( "identity",
          Json.Obj
            [
              ("runs", Json.Int identity_runs);
              ("steals", Json.Int identity_steals);
              ("identical_metrics", Json.Bool true);
            ] );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty j));
  Printf.printf "bench: scheduler sweep -> %s\n" out

(* --- 4. the compiled-kernel cache sweep (BENCH_pr5.json) ------------------ *)

(* A sweep in the engine's sweet spot: many short runs of few distinct
   (program x device-config x policy) families, differing only in scale
   and seed — the shape of a parameter search like fig6's exhaustive
   sweep.  A caching session builds each family's program once (and
   compiles each kernel to a closure once per domain); the cacheless
   session re-runs the parse/transform/finalize/compile pipeline for
   every run — the pre-engine behaviour.  Long simulations amortize
   their one-off build to noise; short ones pay it on every run, which
   is exactly what this benchmark exposes. *)
let cache_sweep_scenarios =
  let seeds = List.init 15 (fun i -> i + 1) in
  List.concat_map
    (fun scale ->
      List.map (fun seed -> Scenario.make ~app:"GC" ~scale ~seed grid) seeds)
    [ 2; 3 ]
  @ List.concat_map
      (fun scale ->
        List.map
          (fun seed ->
            Scenario.make ~app:"SpMV" ~scale ~seed (H.Cons Pragma.Block))
          seeds)
      [ 20; 30 ]
  @ List.map
      (fun seed -> Scenario.make ~app:"SpMV" ~scale:20 ~seed warp)
      seeds

let bench_cache_sweep ~out () =
  let scs = cache_sweep_scenarios in
  let reps = 5 in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Serial sessions on both sides: the comparison isolates cache reuse,
     not domain parallelism.  Best-of-[reps] damps scheduler noise. *)
  let exec ~cache =
    let best = ref infinity and cycles = ref [] and stats = ref None in
    for _ = 1 to reps do
      let s = Session.create ~jobs:1 ~cache () in
      let outs, dt = wall (fun () -> Session.run_all s scs) in
      cycles :=
        List.map (fun o -> (Session.report o).M.cycles) outs;
      stats := Some (Session.cache_stats s);
      if dt < !best then best := dt
    done;
    (!best, !cycles, Option.get !stats)
  in
  let uncached_s, uncached_cycles, _ = exec ~cache:false in
  let cached_s, cached_cycles, stats = exec ~cache:true in
  if uncached_cycles <> cached_cycles then
    failwith "cache sweep: cached metrics diverged from uncached metrics";
  let speedup = uncached_s /. cached_s in
  Printf.printf
    "=== compiled-kernel cache sweep (%d runs, best of %d) ===\n\
    \  uncached %.3f s   cached %.3f s   speedup %.2fx   (%d hits, %d \
     misses; metrics byte-identical)\n\n"
    (List.length scs) reps uncached_s cached_s speedup
    stats.Dpc_engine.Kcache.hits stats.Dpc_engine.Kcache.misses;
  let j =
    Json.Obj
      [
        ("schema", Json.String "dpc-cache-bench-v1");
        ("source", Json.String "bench/main.exe");
        ("runs", Json.Int (List.length scs));
        ("reps", Json.Int reps);
        ( "sweep",
          Json.List
            (List.map (fun sc -> Json.String (Scenario.key sc)) scs) );
        ("uncached_wall_s", Json.Float uncached_s);
        ("cached_wall_s", Json.Float cached_s);
        ("speedup", Json.Float speedup);
        ( "cache",
          Json.Obj
            [
              ("hits", Json.Int stats.Dpc_engine.Kcache.hits);
              ("misses", Json.Int stats.Dpc_engine.Kcache.misses);
            ] );
        ("identical_metrics", Json.Bool true);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty j));
  Printf.printf "bench: cache sweep -> %s\n" out

(* --- 5. the serve-daemon sweep (BENCH_pr7.json) ---------------------------- *)

(* Two consolidation effects of the serve path:

   (a) one warm daemon vs N independent CLI invocations.  The baseline
       forks and execs the real `experiments` binary once per request —
       what a script loop costs: a process start, a runtime init and
       every program build, per request.  Against it, N sequential
       in-process clients of one dpcd instance over the Unix socket: the
       first client fills the cache, every later one rides it.  Client
       walls include the full socket round trip, so the speedup is
       end-to-end, not cache-counter arithmetic.

   (b) cold-process warm start from the on-disk store: a fresh session
       with a populated --cache-dir loads prepared programs instead of
       building them — the cold-start path of both dpcd and
       `experiments --cache-dir`.  Program preparation in this simulator
       is sub-millisecond per family, so the wall-clock effect is
       deliberately measured on the widest build surface there is (every
       app x variant family at minimal problem scale) and stays modest;
       the store's value is that the warm start is byte-identical, not
       that builds were expensive to begin with.

   Both sides of both comparisons must produce byte-identical outcome
   records; the bench fails loudly if they do not. *)

module Serve_server = Dpc_serve.Server
module Serve_client = Dpc_serve.Client

let mk_temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let outcome_strings outs =
  List.map
    (fun o -> Json.to_string (Dpc_experiments.Export.outcome_json o))
    outs

(* The per-request workload of comparison (a): the small interactive
   request shape dpcd exists for — a handful of short runs where a CLI
   invocation's process start and builds rival the simulations. *)
let serve_request_scenarios =
  [
    Scenario.make ~app:"SpMV" ~scale:20 (H.Cons Pragma.Block);
    Scenario.make ~app:"SpMV" ~scale:20 warp;
    Scenario.make ~app:"GC" ~scale:2 grid;
  ]

(* The widest build surface for comparison (b): one scenario per
   (app x variant) program family, at each app's minimal sensible
   scale so preparation is as large a fraction of the wall as this
   simulator allows. *)
let serve_family_sweep =
  let min_scale = function
    | "GC" | "BFS-Rec" -> 2
    | "TH" | "TD" -> 64
    | _ -> 50
  in
  List.concat_map
    (fun (e : Dpc_apps.Registry.entry) ->
      let app = e.Dpc_apps.Registry.name in
      List.map
        (fun v -> Scenario.make ~app ~scale:(min_scale app) v)
        [ H.Basic; grid; H.Cons Pragma.Block; warp ])
    Dpc_apps.Registry.all

(* Fork+exec one real CLI invocation, stdout/stderr to /dev/null. *)
let run_process argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin devnull devnull
  in
  let _, status = Unix.waitpid [] pid in
  Unix.close devnull;
  match status with
  | Unix.WEXITED 0 -> ()
  | _ -> failwith ("serve sweep: CLI invocation failed: " ^ argv.(0))

let sweep_records_of_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.member "runs" (Json.parse text) with
  | Some (Json.List rs) -> List.map Json.to_string rs
  | _ -> failwith ("serve sweep: no runs in " ^ path)

let bench_serve_sweep ~out () =
  let req = serve_request_scenarios in
  let n_clients = 6 in
  let expect =
    outcome_strings (Session.run_all (Session.create ~jobs:1 ()) req)
  in
  let dir = mk_temp_dir "dpc-serve-bench" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* (a) N independent CLI invocations of the request... *)
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "experiments.exe"))
  in
  if not (Sys.file_exists exe) then
    failwith ("serve sweep: experiments binary not found at " ^ exe);
  let sweep_file = Filename.concat dir "request.json" in
  let oc = open_out sweep_file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Json.to_string
           (Json.Obj
              [
                ( "scenarios",
                  Json.List
                    (List.map (fun sc -> Json.String (Scenario.key sc)) req)
                );
              ])));
  let cli_walls =
    List.init n_clients (fun i ->
        let out_json = Filename.concat dir (Printf.sprintf "cli%d.json" i) in
        let (), dt =
          wall (fun () ->
              run_process
                [| exe; "--sweep"; sweep_file; "--json"; out_json; "-q" |])
        in
        if sweep_records_of_file out_json <> expect then
          failwith "serve sweep: CLI metrics diverged";
        dt)
  in
  (* ... vs N sequential in-process clients of one warm daemon. *)
  let sock = Filename.concat dir "d.sock" in
  let server = Serve_server.create (Serve_server.config sock) in
  let dom = Domain.spawn (fun () -> Serve_server.run server) in
  let client_walls, server_stats =
    Fun.protect
      ~finally:(fun () ->
        Serve_server.request_stop server;
        Domain.join dom)
      (fun () ->
        let walls =
          List.init n_clients (fun _ ->
              let records, dt =
                wall (fun () ->
                    Serve_client.with_connection sock (fun c ->
                        match Serve_client.sweep c req with
                        | Error e -> failwith ("serve sweep: " ^ e)
                        | Ok r ->
                          List.map Json.to_string r.Serve_client.outcomes))
              in
              if records <> expect then
                failwith "serve sweep: served metrics diverged";
              dt)
        in
        let stats =
          Serve_client.with_connection sock (fun c ->
              match Serve_client.stats c with
              | Ok j -> j
              | Error e -> failwith ("serve sweep: stats: " ^ e))
        in
        (walls, stats))
  in
  let first_client = List.hd client_walls in
  let warm_clients = List.tl client_walls in
  let cli_mean = mean cli_walls and warm_mean = mean warm_clients in
  let warm_speedup = cli_mean /. warm_mean in
  Printf.printf
    "=== serve sweep: %d-scenario request x %d clients ===\n\
    \  CLI invocation %.4f s (mean of %d)   first client %.4f s   warm \
     client %.4f s (mean of %d)   speedup %.2fx\n"
    (List.length req) n_clients cli_mean n_clients first_client warm_mean
    (List.length warm_clients) warm_speedup;
  (* (b) cold-process warm start from a populated on-disk store, over
     every program family. *)
  let fam = serve_family_sweep in
  let fam_expect =
    outcome_strings (Session.run_all (Session.create ~jobs:1 ()) fam)
  in
  let store = Filename.concat dir "cache" in
  ignore (Session.run_all (Session.create ~jobs:1 ~persist:store ()) fam);
  let reps = 5 in
  let best mk =
    let b = ref infinity in
    for _ = 1 to reps do
      let outs, dt = wall (fun () -> Session.run_all (mk ()) fam) in
      if outcome_strings outs <> fam_expect then
        failwith "serve sweep: warm-start metrics diverged";
      if dt < !b then b := dt
    done;
    !b
  in
  let cold_start = best (fun () -> Session.create ~jobs:1 ()) in
  let warm_start = best (fun () -> Session.create ~jobs:1 ~persist:store ()) in
  let disk_speedup = cold_start /. warm_start in
  Printf.printf
    "  disk warm start over %d families: cold %.4f s   warm %.4f s   \
     speedup %.2fx (best of %d; metrics byte-identical)\n\n"
    (List.length fam) cold_start warm_start disk_speedup reps;
  let j =
    Json.Obj
      [
        ("schema", Json.String "dpc-serve-bench-v1");
        ("source", Json.String "bench/main.exe --serve-sweep");
        ( "method",
          Json.String
            "(a) wall of N fork+exec'd `experiments --sweep` invocations \
             (process start + runtime init + builds, per request) vs N \
             sequential in-process dpcd clients over one Unix socket, warm \
             mean excluding the first (cache-filling) client; (b) \
             fresh-session wall over every app x variant family at minimal \
             scale, cold vs with a populated --cache-dir store, best of \
             reps.  Program preparation is sub-millisecond per family in \
             this simulator, so (b) stays modest by construction.  All \
             record streams byte-identical." );
        ( "request",
          Json.Obj
            [
              ("scenarios", Json.Int (List.length req));
              ("clients", Json.Int n_clients);
              ( "cli_wall_s",
                Json.List (List.map (fun s -> Json.Float s) cli_walls) );
              ( "client_wall_s",
                Json.List (List.map (fun s -> Json.Float s) client_walls) );
              ("cli_mean_s", Json.Float cli_mean);
              ("first_client_s", Json.Float first_client);
              ("warm_client_mean_s", Json.Float warm_mean);
              ("warm_speedup", Json.Float warm_speedup);
              ("server_stats", server_stats);
            ] );
        ( "disk_cache",
          Json.Obj
            [
              ("families", Json.Int (List.length fam));
              ("reps", Json.Int reps);
              ("cold_start_wall_s", Json.Float cold_start);
              ("warm_start_wall_s", Json.Float warm_start);
              ("warm_start_speedup", Json.Float disk_speedup);
            ] );
        ("identical_metrics", Json.Bool true);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty j));
  Printf.printf "bench: serve sweep -> %s\n" out

(* --- 6. the interpreter-tier sweep (BENCH_pr8.json) ------------------------ *)

(* The evaluation suite (every registry app x variant, the runs behind
   figs 7-10) executed serially under each interpreter back end: the
   closure fast path, the bytecode tier, the bytecode tier with
   superinstruction fusion disabled (a lowering-time ablation, so it
   needs its own sessions), and the reference walker.  Fresh
   single-domain sessions per repetition keep every tier's lowering
   cost inside its own measurement; per-scenario walls take the best of
   [reps].  Every tier must reproduce the compiled tier's reports
   byte-for-byte or the bench fails loudly. *)
let interp_sweep_scenarios interp =
  List.concat_map
    (fun (e : Dpc_apps.Registry.entry) ->
      List.map
        (fun v -> Scenario.make ~interp ~app:e.Dpc_apps.Registry.name v)
        H.all_variants)
    Dpc_apps.Registry.all

let bench_interp_sweep ~out () =
  let reps = 3 in
  let tiers =
    [
      ("compiled", Dpc_sim.Interp.Compiled, true);
      ("bytecode", Dpc_sim.Interp.Bytecode, true);
      ("bytecode-nofuse", Dpc_sim.Interp.Bytecode, false);
      ("walker", Dpc_sim.Interp.Reference, true);
    ]
  in
  let run_tier (name, interp, fuse) =
    let scs = interp_sweep_scenarios interp in
    let n = List.length scs in
    let best = Array.make n infinity in
    let reports = ref [] in
    Dpc_sim.Bytecode.set_fusion fuse;
    Fun.protect
      ~finally:(fun () -> Dpc_sim.Bytecode.set_fusion true)
      (fun () ->
        for _ = 1 to reps do
          let s = Session.create ~jobs:1 () in
          reports :=
            List.mapi
              (fun i sc ->
                let t0 = Unix.gettimeofday () in
                let r = Session.run s sc in
                let dt = Unix.gettimeofday () -. t0 in
                if dt < best.(i) then best.(i) <- dt;
                r)
              scs
        done);
    let total = Array.fold_left ( +. ) 0.0 best in
    (name, scs, best, total, !reports)
  in
  let results = List.map run_tier tiers in
  let find name =
    List.find (fun (n, _, _, _, _) -> n = name) results
  in
  let _, scs, _, compiled_s, compiled_reports = find "compiled" in
  List.iter
    (fun (name, _, _, _, reports) ->
      if reports <> compiled_reports then
        failwith
          (Printf.sprintf
             "interp sweep: %s metrics diverged from compiled metrics" name))
    results;
  let total name = (fun (_, _, _, t, _) -> t) (find name) in
  let bytecode_s = total "bytecode" in
  let nofuse_s = total "bytecode-nofuse" in
  let walker_s = total "walker" in
  Printf.printf
    "=== interpreter-tier sweep (%d runs, best of %d) ===\n\
    \  compiled %.3f s   bytecode %.3f s   speedup %.2fx\n\
    \  bytecode-nofuse %.3f s   (fusion contributes %.2fx)\n\
    \  walker %.3f s   (bytecode %.2fx over walker; metrics \
     byte-identical)\n\n"
    (List.length scs) reps compiled_s bytecode_s (compiled_s /. bytecode_s)
    nofuse_s (nofuse_s /. bytecode_s) walker_s (walker_s /. bytecode_s);
  let tier_json (name, scs, best, total, _) =
    ( name,
      Json.Obj
        [
          ("wall_s", Json.Float total);
          ("speedup_vs_compiled", Json.Float (compiled_s /. total));
          ( "per_scenario_s",
            Json.Obj
              (List.mapi
                 (fun i sc -> (Scenario.key sc, Json.Float best.(i)))
                 scs) );
        ] )
  in
  let j =
    Json.Obj
      [
        ("schema", Json.String "dpc-interp-bench-v1");
        ("source", Json.String "bench/main.exe");
        ("runs", Json.Int (List.length scs));
        ("reps", Json.Int reps);
        ("bytecode_speedup", Json.Float (compiled_s /. bytecode_s));
        ("fusion_speedup", Json.Float (nofuse_s /. bytecode_s));
        ("tiers", Json.Obj (List.map tier_json results));
        ("identical_metrics", Json.Bool true);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty j));
  Printf.printf "bench: interp sweep -> %s\n" out

(* --- 7. the memory-model sweep (BENCH_pr10.json) ---------------------------- *)

(* The evaluation suite behind figs 7-10 re-collected under each device
   preset.  [k20c] is the paper's flat memory model; the deep presets
   additionally charge shared-memory bank-conflict replays and MSHR
   occupancy stalls and issue up to two instructions per warp per cycle,
   which reprices the consolidation granularities differently per app —
   so the best granularity can shift.  The sweep records every
   (preset, app, variant) report, each app's fastest consolidated
   variant under each preset, and the winner shifts relative to [k20c]
   (the "crossovers").  The deep presets must actually engage the new
   accounting (nonzero replay/stall totals) and [k20c] must not (both
   totals exactly zero) or the bench fails loudly. *)
module Suite = Dpc_experiments.Suite

let memmodel_presets = [ "k20c"; "k20c-deep"; "milo832" ]

let bench_memmodel_sweep ~out () =
  let cons = [ H.Cons Pragma.Warp; H.Cons Pragma.Block; grid ] in
  let suites =
    List.map
      (fun preset ->
        ( preset,
          Suite.collect ~verbose:false ~cfg:preset
            ~jobs:(Pool.default_jobs ()) () ))
      memmodel_presets
  in
  (* Fastest consolidated variant by simulated cycles; ties (which the
     deterministic simulator reproduces exactly) go to the coarser
     granularity last in [cons], matching the paper's preference. *)
  let best row =
    List.fold_left
      (fun (bv, bc) v ->
        let c = (Suite.report_of row v).M.cycles in
        if c <= bc then (v, c) else (bv, bc))
      (H.Cons Pragma.Warp, (Suite.report_of row (H.Cons Pragma.Warp)).M.cycles)
      cons
    |> fst
  in
  let winners s = List.map (fun row -> (row.Suite.app, best row)) s in
  let totals s =
    List.fold_left
      (fun (br, ms) row ->
        List.fold_left
          (fun (br, ms) (_, r) ->
            (br + r.M.bank_conflict_replays, ms + r.M.mshr_stalls))
          (br, ms) row.Suite.results)
      (0, 0) s
  in
  let base = winners (List.assoc "k20c" suites) in
  let crossovers =
    List.concat_map
      (fun (preset, s) ->
        if preset = "k20c" then []
        else
          List.filter_map
            (fun (app, w) ->
              let w0 = List.assoc app base in
              if w0 <> w then Some (preset, app, w0, w) else None)
            (winners s))
      suites
  in
  List.iter
    (fun (preset, s) ->
      let br, ms = totals s in
      if preset = "k20c" then begin
        if br <> 0 || ms <> 0 then
          failwith "memmodel sweep: flat k20c accrued deep-model counters"
      end
      else if br = 0 && ms = 0 then
        failwith
          (Printf.sprintf
             "memmodel sweep: deep preset %s never engaged the new accounting"
             preset))
    suites;
  if crossovers = [] then
    failwith "memmodel sweep: no granularity crossover shifted under the deep presets";
  let t =
    Table.create ~title:"Memory-model sweep: fastest consolidation granularity"
      ~headers:("benchmark" :: memmodel_presets)
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) memmodel_presets)
      ()
  in
  List.iter
    (fun (app, _) ->
      Table.add_row t
        (app
        :: List.map
             (fun (_, s) ->
               let row = List.find (fun r -> r.Suite.app = app) s in
               H.variant_to_string (best row))
             suites))
    base;
  Table.print t;
  List.iter
    (fun (preset, app, w0, w) ->
      Printf.printf "  crossover: %-6s %-22s k20c=%s -> %s\n" app preset
        (H.variant_to_string w0) (H.variant_to_string w))
    crossovers;
  print_newline ();
  let report_json (r : M.report) =
    Json.Obj
      [
        ("cycles", Json.Float r.M.cycles);
        ("dram_transactions", Json.Int r.M.dram_transactions);
        ("l2_hits", Json.Int r.M.l2_hits);
        ("bank_conflict_replays", Json.Int r.M.bank_conflict_replays);
        ("mshr_stalls", Json.Int r.M.mshr_stalls);
        ("device_launches", Json.Int r.M.device_launches);
      ]
  in
  let preset_json (preset, s) =
    let br, ms = totals s in
    ( preset,
      Json.Obj
        [
          ( "apps",
            Json.Obj
              (List.map
                 (fun row ->
                   ( row.Suite.app,
                     Json.Obj
                       [
                         ( "variants",
                           Json.Obj
                             (List.map
                                (fun (v, r) ->
                                  (H.variant_to_string v, report_json r))
                                row.Suite.results) );
                         ( "best",
                           Json.String (H.variant_to_string (best row)) );
                       ] ))
                 s) );
          ( "totals",
            Json.Obj
              [
                ("bank_conflict_replays", Json.Int br);
                ("mshr_stalls", Json.Int ms);
              ] );
        ] )
  in
  let j =
    Json.Obj
      [
        ("schema", Json.String "dpc-memmodel-bench-v1");
        ("source", Json.String "bench/main.exe --memmodel-sweep");
        ( "note",
          Json.String
            "figs 7-10 evaluation suite per device preset; 'crossovers' \
             lists apps whose fastest consolidation granularity shifts \
             versus the flat k20c model" );
        ("presets", Json.Obj (List.map preset_json suites));
        ( "crossovers",
          Json.List
            (List.map
               (fun (preset, app, w0, w) ->
                 Json.Obj
                   [
                     ("preset", Json.String preset);
                     ("app", Json.String app);
                     ("k20c_best", Json.String (H.variant_to_string w0));
                     ("best", Json.String (H.variant_to_string w));
                   ])
               crossovers) );
        ("crossover_count", Json.Int (List.length crossovers));
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty j));
  Printf.printf "bench: memmodel sweep -> %s\n" out

let () =
  (* --smoke: the reduced CI run — bechamel rows at a small quota, no
     ablation sweeps.  --cache-sweep: only the compiled-kernel cache
     sweep.  --sched-sweep: only the pool-scheduler sweep.
     --serve-sweep: only the serve-daemon sweep.  --interp-sweep: only
     the interpreter-tier sweep.  --memmodel-sweep: only the
     memory-model preset sweep.  Default: full microbenchmarks +
     ablations + all sweeps. *)
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let cache_only = Array.exists (( = ) "--cache-sweep") Sys.argv in
  let sched_only = Array.exists (( = ) "--sched-sweep") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve-sweep") Sys.argv in
  let interp_only = Array.exists (( = ) "--interp-sweep") Sys.argv in
  let memmodel_only = Array.exists (( = ) "--memmodel-sweep") Sys.argv in
  if smoke then begin
    run_bechamel ~quota:0.05 ();
    print_endline "bench: smoke done"
  end
  else if cache_only then bench_cache_sweep ~out:"BENCH_pr5.json" ()
  else if sched_only then bench_sched_sweep ~out:"BENCH_pr6.json" ()
  else if serve_only then bench_serve_sweep ~out:"BENCH_pr7.json" ()
  else if interp_only then bench_interp_sweep ~out:"BENCH_pr8.json" ()
  else if memmodel_only then bench_memmodel_sweep ~out:"BENCH_pr10.json" ()
  else begin
    (* Microbenchmarks stay serial (they measure wall time); the ablation
       sweeps fan out over the shared session's domains. *)
    run_bechamel ();
    let session = Session.create ~jobs:(Pool.default_jobs ()) () in
    let pool = Pool.create ~jobs:(Pool.default_jobs ()) () in
    ablation_launch_latency session;
    ablation_scheduler session;
    ablation_pool_capacity session;
    ablation_buffer_sizing pool;
    ablation_scale_growth session;
    ablation_free_launch ();
    bench_sched_sweep ~out:"BENCH_pr6.json" ();
    bench_cache_sweep ~out:"BENCH_pr5.json" ();
    bench_serve_sweep ~out:"BENCH_pr7.json" ();
    bench_interp_sweep ~out:"BENCH_pr8.json" ();
    bench_memmodel_sweep ~out:"BENCH_pr10.json" ();
    print_endline "bench: done (see bin/experiments.exe for the paper figures)"
  end
