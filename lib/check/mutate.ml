(** Mutation harness: known-bad kernels the verifier must catch.

    Each mutant seeds one specific bug class and names the catalog id the
    verifier is required to raise on it; most mutants have a {e clean
    twin} — the same kernel with the bug repaired — that must produce no
    diagnostics at all, pinning the false-positive side of the analyses.
    [dpcc --mutants] and the test suite both run {!all} through {!run}
    and demand zero missed detections and zero dirty twins. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module B = Dpc_kir.Build
module P = Dpc_kir.Pragma
open B

type mutant = {
  mname : string;
  analysis : string;  (** which pass owns the bug class *)
  expect : string option;
      (** required catalog id; [None] marks a clean twin that must lint
          without a single diagnostic *)
  program : unit -> K.Program.t;
      (** fresh AST per call: var cells are mutable *)
}

let prog_of ks =
  let p = K.Program.create () in
  List.iter (K.Program.add p) ks;
  p

(* ------------------------------------------------------------------ *)
(* Barrier divergence                                                   *)
(* ------------------------------------------------------------------ *)

let bd01_divergent_sync () =
  prog_of
    [
      kernel ~name:"bd01_divergent_sync" ~params:[ p "n" ]
        [ if_then (tid <: v "n") [ sync ] ];
    ]

let bd01_warp_guard_sync () =
  prog_of
    [
      kernel ~name:"bd01_warp_guard_sync"
        [ if_then (warp ==: i 0) [ sync ] ];
    ]

let bd02_grid_barrier_one_block () =
  prog_of
    [
      kernel ~name:"bd02_grid_barrier_one_block"
        [ if_then (bid ==: i 0) [ grid_barrier ] ];
    ]

let bd03_divergent_return () =
  prog_of
    [
      kernel ~name:"bd03_divergent_return"
        [ if_then (tid ==: i 0) [ return ]; sync ];
    ]

let bd_clean_uniform_sync () =
  prog_of
    [
      kernel ~name:"bd_clean_uniform_sync" ~params:[ p "n" ]
        [
          (* block-uniform condition around the barrier is legal *)
          if_then (v "n" >: i 0) [ sync ];
          while_ (v "n" >: i 0) [ sync; set "n" (v "n" -: i 1) ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Shared-memory races                                                  *)
(* ------------------------------------------------------------------ *)

let sm01_broadcast_race () =
  prog_of
    [
      kernel ~name:"sm01_broadcast_race" ~shared:[ ("s", 32) ]
        [ shared_set "s" (i 0) tid ];
    ]

let sm02_missing_sync () =
  prog_of
    [
      kernel ~name:"sm02_missing_sync" ~params:[ p "x" ]
        ~shared:[ ("s", 32) ]
        [
          shared_set "s" tid (v "x");
          (* no __syncthreads: reads the neighbour's slot unordered *)
          set "y" (shared "s" ((tid +: i 1) %: i 32));
        ];
    ]

let sm02_misplaced_barrier () =
  prog_of
    [
      kernel ~name:"sm02_misplaced_barrier" ~params:[ p "n" ]
        ~shared:[ ("s", 32) ]
        [
          for_ "it" ~from:(i 0) ~below:(v "n")
            [
              shared_set "s" tid (v "it");
              sync;
              (* tail read races with the head write of iteration it+1 *)
              set "y" (shared "s" ((tid +: i 1) %: i 32));
            ];
        ];
    ]

let sm_clean_tid_indexed () =
  prog_of
    [
      kernel ~name:"sm_clean_tid_indexed" ~params:[ p "x" ]
        ~shared:[ ("s", 32) ]
        [
          shared_set "s" tid (v "x");
          sync;
          set "y" (shared "s" ((tid +: i 1) %: i 32));
          sync;
          shared_set "s" tid (v "y" +: i 1);
        ];
    ]

let sm_clean_designated_writer () =
  prog_of
    [
      kernel ~name:"sm_clean_designated_writer" ~params:[ p "n" ]
        ~shared:[ ("s", 32) ]
        [
          if_then (tid ==: i 0) [ shared_set "s" (i 0) (v "n") ];
          sync;
          set "y" (shared "s" (i 0));
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Bounds and use-before-def                                            *)
(* ------------------------------------------------------------------ *)

let bn01_const_oob () =
  prog_of
    [
      kernel ~name:"bn01_const_oob" ~shared:[ ("s", 64) ]
        [ shared_set "s" (i 64) (i 1) ];
    ]

let bn02_loop_off_by_one () =
  prog_of
    [
      kernel ~name:"bn02_loop_off_by_one" ~shared:[ ("s", 64) ]
        [ for_ "j" ~from:(i 0) ~below:(i 65) [ shared_set "s" (v "j") (i 0) ] ];
    ]

let bn03_use_before_def () =
  prog_of
    [
      kernel ~name:"bn03_use_before_def" ~params:[ p "n" ]
        [ if_then (tid <: v "n") [ set "t" (i 1) ]; set "u" (v "t") ];
    ]

let bn_clean_exact_extent () =
  prog_of
    [
      kernel ~name:"bn_clean_exact_extent" ~shared:[ ("s", 64) ]
        [
          for_ "j" ~from:(i 0) ~below:(i 64) [ shared_set "s" (v "j") (i 0) ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Launch / consolidation legality                                      *)
(* ------------------------------------------------------------------ *)

let child_ok ~name =
  kernel ~name ~params:[ p "x" ] [ set "y" (v "x" +: i 1) ]

let dp ?per_buffer_size ?total_size ?threads ?blocks () =
  P.make ?per_buffer_size ?total_size ?threads ?blocks ~granularity:P.Warp
    ~work:[ "w" ] ()

let lc01_unknown_callee () =
  prog_of
    [
      kernel ~name:"lc01_unknown_callee"
        [ launch "missing_kernel" ~grid:(i 1) ~block:(i 32) [] ];
    ]

let lc02_arity_mismatch () =
  prog_of
    [
      child_ok ~name:"lc02_child";
      kernel ~name:"lc02_arity_mismatch"
        [ launch "lc02_child" ~grid:(i 1) ~block:(i 32) [ i 1; i 2 ] ];
    ]

let lc03_block_too_big () =
  prog_of
    [
      child_ok ~name:"lc03_child";
      kernel ~name:"lc03_block_too_big"
        [ launch "lc03_child" ~grid:(i 1) ~block:(i 2048) [ i 1 ] ];
    ]

let lc05_work_not_arg () =
  prog_of
    [
      child_ok ~name:"lc05_child";
      kernel ~name:"lc05_work_not_arg"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc05_child" ~grid:(i 1) ~block:(i 1)
            [ i 5 ];
        ];
    ]

let lc06_uniform_reads_work () =
  prog_of
    [
      kernel ~name:"lc06_child" ~params:[ p "x"; p "u" ]
        [ set "y" (v "x" +: v "u") ];
      kernel ~name:"lc06_uniform_reads_work"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc06_child" ~grid:(i 1) ~block:(i 1)
            [ v "w"; v "w" +: i 1 ];
        ];
    ]

let lc07_unmaterialized_size () =
  prog_of
    [
      child_ok ~name:"lc07_child";
      kernel ~name:"lc07_unmaterialized_size"
        [
          set "w" gtid;
          launch
            ~pragma:(dp ~per_buffer_size:(P.Size_var "phantom") ())
            "lc07_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
        ];
    ]

let lc08_pool_too_small () =
  prog_of
    [
      child_ok ~name:"lc08_child";
      kernel ~name:"lc08_pool_too_small"
        [
          set "w" gtid;
          launch
            ~pragma:
              (dp ~per_buffer_size:(P.Size_const 1_000_000) ~total_size:1024
                 ())
            "lc08_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
        ];
    ]

let lc11_child_returns () =
  prog_of
    [
      kernel ~name:"lc11_child" ~params:[ p "x" ]
        [ if_then (v "x" <: i 0) [ return ]; set "y" (v "x") ];
      kernel ~name:"lc11_child_returns"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc11_child" ~grid:(i 1) ~block:(i 1)
            [ v "w" ];
        ];
    ]

let lc12_solo_thread_syncs () =
  prog_of
    [
      kernel ~name:"lc12_child" ~params:[ p "x" ]
        [ set "y" (v "x"); sync ];
      kernel ~name:"lc12_solo_thread_syncs"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc12_child" ~grid:(i 1) ~block:(i 1)
            [ v "w" ];
        ];
    ]

let lc_clean_annotated_launch () =
  prog_of
    [
      child_ok ~name:"lc_clean_child";
      kernel ~name:"lc_clean_annotated_launch" ~params:[ p "n" ]
        [
          set "w" gtid;
          if_then (v "w" <: v "n")
            [
              launch
                ~pragma:(dp ~per_buffer_size:(P.Size_const 8) ~threads:256 ())
                "lc_clean_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
            ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* The catalog                                                          *)
(* ------------------------------------------------------------------ *)

let all : mutant list =
  [
    { mname = "bd01_divergent_sync"; analysis = "uniformity";
      expect = Some "BD01"; program = bd01_divergent_sync };
    { mname = "bd01_warp_guard_sync"; analysis = "uniformity";
      expect = Some "BD01"; program = bd01_warp_guard_sync };
    { mname = "bd02_grid_barrier_one_block"; analysis = "uniformity";
      expect = Some "BD02"; program = bd02_grid_barrier_one_block };
    { mname = "bd03_divergent_return"; analysis = "uniformity";
      expect = Some "BD03"; program = bd03_divergent_return };
    { mname = "bd_clean_uniform_sync"; analysis = "uniformity";
      expect = None; program = bd_clean_uniform_sync };
    { mname = "sm01_broadcast_race"; analysis = "races";
      expect = Some "SM01"; program = sm01_broadcast_race };
    { mname = "sm02_missing_sync"; analysis = "races";
      expect = Some "SM02"; program = sm02_missing_sync };
    { mname = "sm02_misplaced_barrier"; analysis = "races";
      expect = Some "SM02"; program = sm02_misplaced_barrier };
    { mname = "sm_clean_tid_indexed"; analysis = "races";
      expect = None; program = sm_clean_tid_indexed };
    { mname = "sm_clean_designated_writer"; analysis = "races";
      expect = None; program = sm_clean_designated_writer };
    { mname = "bn01_const_oob"; analysis = "bounds";
      expect = Some "BN01"; program = bn01_const_oob };
    { mname = "bn02_loop_off_by_one"; analysis = "bounds";
      expect = Some "BN02"; program = bn02_loop_off_by_one };
    { mname = "bn03_use_before_def"; analysis = "bounds";
      expect = Some "BN03"; program = bn03_use_before_def };
    { mname = "bn_clean_exact_extent"; analysis = "bounds";
      expect = None; program = bn_clean_exact_extent };
    { mname = "lc01_unknown_callee"; analysis = "legality";
      expect = Some "LC01"; program = lc01_unknown_callee };
    { mname = "lc02_arity_mismatch"; analysis = "legality";
      expect = Some "LC02"; program = lc02_arity_mismatch };
    { mname = "lc03_block_too_big"; analysis = "legality";
      expect = Some "LC03"; program = lc03_block_too_big };
    { mname = "lc05_work_not_arg"; analysis = "legality";
      expect = Some "LC05"; program = lc05_work_not_arg };
    { mname = "lc06_uniform_reads_work"; analysis = "legality";
      expect = Some "LC06"; program = lc06_uniform_reads_work };
    { mname = "lc07_unmaterialized_size"; analysis = "legality";
      expect = Some "LC07"; program = lc07_unmaterialized_size };
    { mname = "lc08_pool_too_small"; analysis = "legality";
      expect = Some "LC08"; program = lc08_pool_too_small };
    { mname = "lc11_child_returns"; analysis = "legality";
      expect = Some "LC11"; program = lc11_child_returns };
    { mname = "lc12_solo_thread_syncs"; analysis = "legality";
      expect = Some "LC12"; program = lc12_solo_thread_syncs };
    { mname = "lc_clean_annotated_launch"; analysis = "legality";
      expect = None; program = lc_clean_annotated_launch };
  ]

type outcome = {
  mutant : mutant;
  diags : Diag.t list;
  ok : bool;
      (** seeded mutants: the expected id was raised; clean twins: not a
          single diagnostic *)
}

let run ?cfg (m : mutant) : outcome =
  let diags = Check.check_program ?cfg (m.program ()) in
  let ok =
    match m.expect with
    | Some id -> List.exists (fun (d : Diag.t) -> d.Diag.id = id) diags
    | None -> diags = []
  in
  { mutant = m; diags; ok }

let run_all ?cfg () : outcome list = List.map (run ?cfg) all

let all_detected ?cfg () = List.for_all (fun o -> o.ok) (run_all ?cfg ())
