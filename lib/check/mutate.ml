(** Mutation harness: known-bad kernels the verifier must catch.

    Each mutant seeds one specific bug class and names the catalog id the
    verifier is required to raise on it; most mutants have a {e clean
    twin} — the same kernel with the bug repaired — that must produce no
    diagnostics at all, pinning the false-positive side of the analyses.
    [dpcc --mutants] and the test suite both run {!all} through {!run}
    and demand zero missed detections and zero dirty twins.

    Three mutant families, one per verification surface:
    - {e lint} mutants are single-kernel programs checked by
      {!Check.check_program} (BD/SM/BN/LC catalogs);
    - {e transform} mutants run {!Dpc.Transform.apply} on a known-good
      annotated fixture and then surgically corrupt the result (dropped
      stores, wrong offsets, missing barriers, ...), checked by
      {!Tv.check} (TV catalog);
    - {e bytecode} mutants are instruction streams — hand-assembled or
      captured from a real lowering and then damaged — checked by
      {!Bcverify.check_stream} (BC catalog). *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module B = Dpc_kir.Build
module P = Dpc_kir.Pragma
open B

(* What a mutant feeds to which verifier.  Builders construct fresh
   values per call: var cells (and the transform fixture) are mutable. *)
type target =
  | Lint of (unit -> K.Program.t)  (** {!Check.check_program} *)
  | Trans of (unit -> string * K.Program.t * Dpc.Transform.result)
      (** parent, original program, (possibly corrupted) transform
          result; checked by {!Tv.check} *)
  | Stream of (unit -> Dpc_sim.Bytecode.stream)
      (** checked by {!Bcverify.check_stream} *)

type mutant = {
  mname : string;
  analysis : string;  (** which pass owns the bug class *)
  expect : string option;
      (** required catalog id; [None] marks a clean twin that must lint
          without a single diagnostic *)
  target : target;
}

let prog_of ks =
  let p = K.Program.create () in
  List.iter (K.Program.add p) ks;
  p

(* ------------------------------------------------------------------ *)
(* Barrier divergence                                                   *)
(* ------------------------------------------------------------------ *)

let bd01_divergent_sync () =
  prog_of
    [
      kernel ~name:"bd01_divergent_sync" ~params:[ p "n" ]
        [ if_then (tid <: v "n") [ sync ] ];
    ]

let bd01_warp_guard_sync () =
  prog_of
    [
      kernel ~name:"bd01_warp_guard_sync"
        [ if_then (warp ==: i 0) [ sync ] ];
    ]

let bd02_grid_barrier_one_block () =
  prog_of
    [
      kernel ~name:"bd02_grid_barrier_one_block"
        [ if_then (bid ==: i 0) [ grid_barrier ] ];
    ]

let bd03_divergent_return () =
  prog_of
    [
      kernel ~name:"bd03_divergent_return"
        [ if_then (tid ==: i 0) [ return ]; sync ];
    ]

let bd_clean_uniform_sync () =
  prog_of
    [
      kernel ~name:"bd_clean_uniform_sync" ~params:[ p "n" ]
        [
          (* block-uniform condition around the barrier is legal *)
          if_then (v "n" >: i 0) [ sync ];
          while_ (v "n" >: i 0) [ sync; set "n" (v "n" -: i 1) ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Shared-memory races                                                  *)
(* ------------------------------------------------------------------ *)

let sm01_broadcast_race () =
  prog_of
    [
      kernel ~name:"sm01_broadcast_race" ~shared:[ ("s", 32) ]
        [ shared_set "s" (i 0) tid ];
    ]

let sm02_missing_sync () =
  prog_of
    [
      kernel ~name:"sm02_missing_sync" ~params:[ p "x" ]
        ~shared:[ ("s", 32) ]
        [
          shared_set "s" tid (v "x");
          (* no __syncthreads: reads the neighbour's slot unordered *)
          set "y" (shared "s" ((tid +: i 1) %: i 32));
        ];
    ]

let sm02_misplaced_barrier () =
  prog_of
    [
      kernel ~name:"sm02_misplaced_barrier" ~params:[ p "n" ]
        ~shared:[ ("s", 32) ]
        [
          for_ "it" ~from:(i 0) ~below:(v "n")
            [
              shared_set "s" tid (v "it");
              sync;
              (* tail read races with the head write of iteration it+1 *)
              set "y" (shared "s" ((tid +: i 1) %: i 32));
            ];
        ];
    ]

let sm_clean_tid_indexed () =
  prog_of
    [
      kernel ~name:"sm_clean_tid_indexed" ~params:[ p "x" ]
        ~shared:[ ("s", 32) ]
        [
          shared_set "s" tid (v "x");
          sync;
          set "y" (shared "s" ((tid +: i 1) %: i 32));
          sync;
          shared_set "s" tid (v "y" +: i 1);
        ];
    ]

let sm_clean_designated_writer () =
  prog_of
    [
      kernel ~name:"sm_clean_designated_writer" ~params:[ p "n" ]
        ~shared:[ ("s", 32) ]
        [
          if_then (tid ==: i 0) [ shared_set "s" (i 0) (v "n") ];
          sync;
          set "y" (shared "s" (i 0));
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Bounds and use-before-def                                            *)
(* ------------------------------------------------------------------ *)

let bn01_const_oob () =
  prog_of
    [
      kernel ~name:"bn01_const_oob" ~shared:[ ("s", 64) ]
        [ shared_set "s" (i 64) (i 1) ];
    ]

let bn02_loop_off_by_one () =
  prog_of
    [
      kernel ~name:"bn02_loop_off_by_one" ~shared:[ ("s", 64) ]
        [ for_ "j" ~from:(i 0) ~below:(i 65) [ shared_set "s" (v "j") (i 0) ] ];
    ]

let bn03_use_before_def () =
  prog_of
    [
      kernel ~name:"bn03_use_before_def" ~params:[ p "n" ]
        [ if_then (tid <: v "n") [ set "t" (i 1) ]; set "u" (v "t") ];
    ]

let bn_clean_exact_extent () =
  prog_of
    [
      kernel ~name:"bn_clean_exact_extent" ~shared:[ ("s", 64) ]
        [
          for_ "j" ~from:(i 0) ~below:(i 64) [ shared_set "s" (v "j") (i 0) ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Launch / consolidation legality                                      *)
(* ------------------------------------------------------------------ *)

let child_ok ~name =
  kernel ~name ~params:[ p "x" ] [ set "y" (v "x" +: i 1) ]

let dp ?per_buffer_size ?total_size ?threads ?blocks () =
  P.make ?per_buffer_size ?total_size ?threads ?blocks ~granularity:P.Warp
    ~work:[ "w" ] ()

let lc01_unknown_callee () =
  prog_of
    [
      kernel ~name:"lc01_unknown_callee"
        [ launch "missing_kernel" ~grid:(i 1) ~block:(i 32) [] ];
    ]

let lc02_arity_mismatch () =
  prog_of
    [
      child_ok ~name:"lc02_child";
      kernel ~name:"lc02_arity_mismatch"
        [ launch "lc02_child" ~grid:(i 1) ~block:(i 32) [ i 1; i 2 ] ];
    ]

let lc03_block_too_big () =
  prog_of
    [
      child_ok ~name:"lc03_child";
      kernel ~name:"lc03_block_too_big"
        [ launch "lc03_child" ~grid:(i 1) ~block:(i 2048) [ i 1 ] ];
    ]

let lc05_work_not_arg () =
  prog_of
    [
      child_ok ~name:"lc05_child";
      kernel ~name:"lc05_work_not_arg"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc05_child" ~grid:(i 1) ~block:(i 1)
            [ i 5 ];
        ];
    ]

let lc06_uniform_reads_work () =
  prog_of
    [
      kernel ~name:"lc06_child" ~params:[ p "x"; p "u" ]
        [ set "y" (v "x" +: v "u") ];
      kernel ~name:"lc06_uniform_reads_work"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc06_child" ~grid:(i 1) ~block:(i 1)
            [ v "w"; v "w" +: i 1 ];
        ];
    ]

let lc07_unmaterialized_size () =
  prog_of
    [
      child_ok ~name:"lc07_child";
      kernel ~name:"lc07_unmaterialized_size"
        [
          set "w" gtid;
          launch
            ~pragma:(dp ~per_buffer_size:(P.Size_var "phantom") ())
            "lc07_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
        ];
    ]

let lc08_pool_too_small () =
  prog_of
    [
      child_ok ~name:"lc08_child";
      kernel ~name:"lc08_pool_too_small"
        [
          set "w" gtid;
          launch
            ~pragma:
              (dp ~per_buffer_size:(P.Size_const 1_000_000) ~total_size:1024
                 ())
            "lc08_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
        ];
    ]

let lc11_child_returns () =
  prog_of
    [
      kernel ~name:"lc11_child" ~params:[ p "x" ]
        [ if_then (v "x" <: i 0) [ return ]; set "y" (v "x") ];
      kernel ~name:"lc11_child_returns"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc11_child" ~grid:(i 1) ~block:(i 1)
            [ v "w" ];
        ];
    ]

let lc12_solo_thread_syncs () =
  prog_of
    [
      kernel ~name:"lc12_child" ~params:[ p "x" ]
        [ set "y" (v "x"); sync ];
      kernel ~name:"lc12_solo_thread_syncs"
        [
          set "w" gtid;
          launch ~pragma:(dp ()) "lc12_child" ~grid:(i 1) ~block:(i 1)
            [ v "w" ];
        ];
    ]

let lc_clean_annotated_launch () =
  prog_of
    [
      child_ok ~name:"lc_clean_child";
      kernel ~name:"lc_clean_annotated_launch" ~params:[ p "n" ]
        [
          set "w" gtid;
          if_then (v "w" <: v "n")
            [
              launch
                ~pragma:(dp ~per_buffer_size:(P.Size_const 8) ~threads:256 ())
                "lc_clean_child" ~grid:(i 1) ~block:(i 1) [ v "w" ];
            ];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Transform translation-validation mutants                             *)
(*                                                                      *)
(* A known-good annotated fixture (the Fig. 1 template reduced to the   *)
(* bone) is transformed for real, then the *result* is corrupted the    *)
(* way a codegen bug would corrupt it; [Tv.check] must catch every      *)
(* corruption and stay silent on the pristine result.                   *)
(* ------------------------------------------------------------------ *)

module V = Dpc_kir.Value
module T = Dpc.Transform
module Bc = Dpc_sim.Bytecode

let tv_parent = "tv_parent"
let tv_child = "tv_child"

let tv_prog gran =
  prog_of
    [
      kernel ~name:"tv_bystander" ~params:[ p "n" ]
        [ set "z" (v "n" +: i 1) ];
      child_ok ~name:tv_child;
      kernel ~name:tv_parent ~params:[ p "n" ]
        [
          set "w" gtid;
          if_then (v "w" <: v "n")
            [
              launch
                ~pragma:
                  (P.make ~per_buffer_size:(P.Size_const 64) ~threads:128
                     ~granularity:gran ~work:[ "w" ] ())
                tv_child ~grid:(i 1) ~block:(i 32) [ v "w" ];
            ];
        ];
    ]

(* Program surgery: rebuild the result program with one kernel's body
   deep-copied and edited.  [f] runs top-down on every statement;
   [Some repl] substitutes, [None] descends. *)
let rec edit_stmts f stmts =
  List.concat_map
    (fun s ->
      match f s with
      | Some repl -> repl
      | None ->
        [
          (match s with
          | A.If (c, t, e) -> A.If (c, edit_stmts f t, edit_stmts f e)
          | A.While (c, b) -> A.While (c, edit_stmts f b)
          | A.For (iv, lo, hi, b) -> A.For (iv, lo, hi, edit_stmts f b)
          | s -> s);
        ])
    stmts

let copy_params ps =
  List.map (fun (pr : A.param) -> A.param ~ty:pr.A.ptype pr.A.pname) ps

let remake (k : K.t) body =
  K.make ~name:k.K.kname ~params:(copy_params k.K.params) ~shared:k.K.shared
    body

let map_program f prog =
  let out = K.Program.create () in
  List.iter
    (fun k -> Option.iter (K.Program.add out) (f k))
    (K.Program.kernels prog);
  out

let edit_kernel name f prog =
  map_program
    (fun k ->
      Some
        (if k.K.kname = name then remake k (edit_stmts f (A.copy_block k.K.body))
         else k))
    prog

let append_to_kernel name extra prog =
  map_program
    (fun k ->
      Some
        (if k.K.kname = name then remake k (A.copy_block k.K.body @ extra)
         else k))
    prog

(* One TV mutant: transform the fixture at [gran], corrupt the result. *)
let tv_case ?(gran = P.Block) corrupt () =
  let orig = tv_prog gran in
  let r = T.apply ~cfg:Dpc_gpu.Config.k20c ~parent:tv_parent orig in
  (tv_parent, orig, corrupt r)

let on_program f (r : T.result) = { r with T.program = f r.T.program }

let is_cons_buf = function
  | A.Var vr -> vr.A.name = "__cons_buf" || vr.A.name = "__cons_buf_next"
  | _ -> false

let is_cons_cnt = function
  | A.Var vr -> vr.A.name = "__cons_cnt" || vr.A.name = "__cons_cnt_next"
  | _ -> false

let reads_cnt e =
  let found = ref false in
  A.iter_expr
    (fun x -> match x with A.Load (b, _) when is_cons_cnt b -> found := true | _ -> ())
    e;
  !found

let rec replace_cnt_read e =
  match e with
  | A.Load (b, _) when is_cons_cnt b -> A.Const (V.Vint 64)
  | A.Binop (op, a, b) -> A.Binop (op, replace_cnt_read a, replace_cnt_read b)
  | A.Unop (op, a) -> A.Unop (op, replace_cnt_read a)
  | e -> e

(* TV01: kernel-set preservation *)
let tv01_lost_cons =
  tv_case (fun r ->
      on_program
        (map_program (fun k ->
             if k.K.kname = r.T.cons_kernel then None else Some k))
        r)

let tv01_unexpected_kernel =
  tv_case
    (on_program (fun prog ->
         let out = map_program Option.some prog in
         K.Program.add out (kernel ~name:"tv_sneaky" [ set "q" (i 0) ]);
         out))

let tv01_touched_bystander =
  tv_case
    (on_program (append_to_kernel "tv_bystander" [ set "z2" (i 0) ]))

(* TV02: insertion-side work conservation (host = transformed parent) *)
let drop_buf_store = function
  | A.Store (b, _, _) when is_cons_buf b -> Some []
  | _ -> None

let tv02_dropped_store =
  tv_case (on_program (edit_kernel tv_parent drop_buf_store))

let tv02_double_store =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Store (b, _, _) as st when is_cons_buf b ->
           Some [ st; A.copy_stmt st ]
         | _ -> None)))

let tv02_no_fallback =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Launch { callee; pragma = None; _ } when callee = tv_child ->
           Some []
         | _ -> None)))

(* TV03: fetch-side work conservation (in the consolidated kernel) *)
let tv03_wrong_fetch_offset =
  tv_case (fun r ->
      on_program
        (edit_kernel r.T.cons_kernel (function
          | A.Let (lv, A.Load (b, A.Binop (A.Add, m, A.Const (V.Vint 0))))
            when is_cons_buf b ->
            Some [ A.Let (lv, A.Load (b, A.Binop (A.Add, m, A.Const (V.Vint 1)))) ]
          | _ -> None))
        r)

let tv03_unbounded_fetch_loop =
  tv_case (fun r ->
      on_program
        (edit_kernel r.T.cons_kernel (function
          | A.While (c, b) when reads_cnt c ->
            Some [ A.While (replace_cnt_read c, b) ]
          | A.For (iv, lo, hi, b) when reads_cnt hi ->
            Some [ A.For (iv, lo, replace_cnt_read hi, b) ]
          | _ -> None))
        r)

(* TV04: buffer-footprint preservation *)
let tv04_store_outside_item =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Store (b, A.Binop (A.Add, m, A.Const (V.Vint 0)), x)
           when is_cons_buf b ->
           Some [ A.Store (b, A.Binop (A.Add, m, A.Const (V.Vint 2)), x) ]
         | _ -> None)))

let tv04_counter_nonzero_index =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Atomic ({ idx = A.Const (V.Vint 0); buf; _ } as a)
           when is_cons_cnt buf ->
           Some [ A.Atomic { a with idx = A.Const (V.Vint 1) } ]
         | _ -> None)))

(* TV05: pragma-contract conformance (block granularity fixture) *)
let tv05_missing_barrier =
  tv_case
    (on_program
       (edit_kernel tv_parent (function A.Syncthreads -> Some [] | _ -> None)))

let tv05_wrong_alloc_scope =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Malloc { dst; count; scope = _; _ } when dst.A.name = "__cons_buf"
           ->
           Some [ A.Malloc { dst; count; scope = A.Per_warp; site = -1 } ]
         | _ -> None)))

let tv05_missing_clamp =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.Store (c, A.Const (V.Vint 0), A.Binop (A.Min, _, _))
           when is_cons_cnt c ->
           Some []
         | _ -> None)))

let tv05_no_designated_guard =
  tv_case
    (on_program
       (edit_kernel tv_parent (function
         | A.If (A.Binop (A.And, A.Binop (A.Eq, A.Special _, _), _), _, _) ->
           Some []
         | _ -> None)))

(* TV06: lint-clean preservation — a transform bug that manufactures a
   divergent barrier in the consolidated kernel *)
let tv06_lint_regression =
  tv_case (fun r ->
      on_program
        (append_to_kernel r.T.cons_kernel [ if_then (tid ==: i 0) [ sync ] ])
        r)

(* TV07: result-metadata consistency *)
let tv07_wrong_nvars = tv_case (fun r -> { r with T.nvars = r.T.nvars + 1 })

let tv07_phantom_postwork =
  tv_case (fun r -> { r with T.post_kernel = Some "tv_ghost_post" })

let tv07_missing_entry = tv_case (fun r -> { r with T.entry = "tv_no_such" })

(* Clean twins: the pristine result at each granularity. *)
let tv_clean_warp = tv_case ~gran:P.Warp Fun.id
let tv_clean_block = tv_case ~gran:P.Block Fun.id
let tv_clean_grid = tv_case ~gran:P.Grid Fun.id

(* ------------------------------------------------------------------ *)
(* Bytecode-stream mutants                                              *)
(*                                                                      *)
(* Hand-assembled streams exercise each BC class with a pinpoint        *)
(* corruption; one pair captures a real lowering and damages it, tying  *)
(* the synthetic encoding to the actual one.                            *)
(* ------------------------------------------------------------------ *)

let bc_stream ?(nstmts = 3) ?(nic = 2) ?(nfc = 1) ?(ntmpi = 2) ?(ntmpf = 1)
    ?(nint = 4) ?(nflt = 2) ?(nshared = 1) ?(nnames = 2) code () =
  {
    Bc.s_kname = "bc_mutant";
    s_code = Array.of_list code;
    s_nstmts = nstmts;
    s_nic = nic;
    s_nfc = nfc;
    s_ntmpi = ntmpi;
    s_ntmpf = ntmpf;
    s_nint = nint;
    s_nflt = nflt;
    s_nshared = nshared;
    s_nnames = nnames;
  }

(* Encoding cheat sheet (mirrors the executor): FUSE groups are
   [7; n; _; (sub-op a b d) * n]; sub-op 0 is integer add, 3/4 are
   div/mod (raising), 18 float add, 41 SPECIAL.  Operand [r < 0] is
   constant-pool row [-r-1]; [r >= temp_base] is temp row. *)
let bc01_unknown_opcode = bc_stream [ 99 ]
let bc02_truncated_fuse_quad = bc_stream [ 7; 2; 0; 0; 0; 1; 2 ]
let bc02_short_if = bc_stream [ 3; 0; 0 ]
let bc03_int_row_oob = bc_stream [ 7; 1; 0; 0; 9; 1; 2 ]
let bc03_int_temp_oob = bc_stream [ 7; 1; 0; 0; Bc.temp_base + 5; 1; 2 ]
let bc03_int_const_oob = bc_stream [ 7; 1; 0; 0; -5; 1; 2 ]
let bc04_float_row_oob = bc_stream [ 7; 1; 0; 18; 5; 0; 1 ]
let bc05_unknown_subop = bc_stream [ 7; 1; 0; 77; 0; 0; 0 ]
let bc05_mixed_raising = bc_stream [ 7; 2; 0; 3; 0; 1; 2; 4; 0; 1; 3 ]
let bc05_bad_special_kind = bc_stream [ 7; 1; 0; 41; 9; 0; 2 ]
let bc06_if_backward_target = bc_stream [ 3; 0; 0; 2; 9 ]
let bc06_bad_cond_kind = bc_stream [ 3; 5; 0; 5; 5 ]
let bc06_while_backward_test = bc_stream [ 4; 2; 9 ]
let bc07_call_oob = bc_stream [ 2; 7 ]
let bc08_shared_slot_oob = bc_stream [ 13; 0; 1; 5; 0 ]
let bc08_shstore_bad_kind = bc_stream [ 14; 7; 0; 0; 0; 0 ]
let bc09_write_to_const = bc_stream [ 7; 1; 0; 0; 0; 1; -1 ]

let bc_clean_straightline =
  bc_stream [ 7; 1; 0; 0; 0; 1; 2; 8; 0; 1; 3; 12; 0; 2; 2; 1 ]

let bc_clean_structured =
  bc_stream [ 3; 0; 0; 12; 12; 7; 1; 0; 0; 0; 1; 2 ]

(* A real lowering, pristine and with a damaged tail. *)
let bc_real_stream () =
  let k =
    kernel ~name:"bc_real" ~params:[ p "n" ]
      [ if_then (v "n" >: i 0) [ set "x" (v "n" +: i 1) ] ]
  in
  K.finalize k;
  match Bc.streams_of_kernel k with
  | Some (s :: _) -> s
  | _ -> failwith "bc_real: kernel did not lower to bytecode"

let bc01_real_damaged_tail () =
  let s = bc_real_stream () in
  { s with Bc.s_code = Array.append s.Bc.s_code [| 99 |] }

let bc_clean_real_lowering () = bc_real_stream ()

(* ------------------------------------------------------------------ *)
(* The catalog                                                          *)
(* ------------------------------------------------------------------ *)

let all : mutant list =
  [
    { mname = "bd01_divergent_sync"; analysis = "uniformity";
      expect = Some "BD01"; target = Lint bd01_divergent_sync };
    { mname = "bd01_warp_guard_sync"; analysis = "uniformity";
      expect = Some "BD01"; target = Lint bd01_warp_guard_sync };
    { mname = "bd02_grid_barrier_one_block"; analysis = "uniformity";
      expect = Some "BD02"; target = Lint bd02_grid_barrier_one_block };
    { mname = "bd03_divergent_return"; analysis = "uniformity";
      expect = Some "BD03"; target = Lint bd03_divergent_return };
    { mname = "bd_clean_uniform_sync"; analysis = "uniformity";
      expect = None; target = Lint bd_clean_uniform_sync };
    { mname = "sm01_broadcast_race"; analysis = "races";
      expect = Some "SM01"; target = Lint sm01_broadcast_race };
    { mname = "sm02_missing_sync"; analysis = "races";
      expect = Some "SM02"; target = Lint sm02_missing_sync };
    { mname = "sm02_misplaced_barrier"; analysis = "races";
      expect = Some "SM02"; target = Lint sm02_misplaced_barrier };
    { mname = "sm_clean_tid_indexed"; analysis = "races";
      expect = None; target = Lint sm_clean_tid_indexed };
    { mname = "sm_clean_designated_writer"; analysis = "races";
      expect = None; target = Lint sm_clean_designated_writer };
    { mname = "bn01_const_oob"; analysis = "bounds";
      expect = Some "BN01"; target = Lint bn01_const_oob };
    { mname = "bn02_loop_off_by_one"; analysis = "bounds";
      expect = Some "BN02"; target = Lint bn02_loop_off_by_one };
    { mname = "bn03_use_before_def"; analysis = "bounds";
      expect = Some "BN03"; target = Lint bn03_use_before_def };
    { mname = "bn_clean_exact_extent"; analysis = "bounds";
      expect = None; target = Lint bn_clean_exact_extent };
    { mname = "lc01_unknown_callee"; analysis = "legality";
      expect = Some "LC01"; target = Lint lc01_unknown_callee };
    { mname = "lc02_arity_mismatch"; analysis = "legality";
      expect = Some "LC02"; target = Lint lc02_arity_mismatch };
    { mname = "lc03_block_too_big"; analysis = "legality";
      expect = Some "LC03"; target = Lint lc03_block_too_big };
    { mname = "lc05_work_not_arg"; analysis = "legality";
      expect = Some "LC05"; target = Lint lc05_work_not_arg };
    { mname = "lc06_uniform_reads_work"; analysis = "legality";
      expect = Some "LC06"; target = Lint lc06_uniform_reads_work };
    { mname = "lc07_unmaterialized_size"; analysis = "legality";
      expect = Some "LC07"; target = Lint lc07_unmaterialized_size };
    { mname = "lc08_pool_too_small"; analysis = "legality";
      expect = Some "LC08"; target = Lint lc08_pool_too_small };
    { mname = "lc11_child_returns"; analysis = "legality";
      expect = Some "LC11"; target = Lint lc11_child_returns };
    { mname = "lc12_solo_thread_syncs"; analysis = "legality";
      expect = Some "LC12"; target = Lint lc12_solo_thread_syncs };
    { mname = "lc_clean_annotated_launch"; analysis = "legality";
      expect = None; target = Lint lc_clean_annotated_launch };
    { mname = "tv01_lost_cons"; analysis = "tv";
      expect = Some "TV01"; target = Trans tv01_lost_cons };
    { mname = "tv01_unexpected_kernel"; analysis = "tv";
      expect = Some "TV01"; target = Trans tv01_unexpected_kernel };
    { mname = "tv01_touched_bystander"; analysis = "tv";
      expect = Some "TV01"; target = Trans tv01_touched_bystander };
    { mname = "tv02_dropped_store"; analysis = "tv";
      expect = Some "TV02"; target = Trans tv02_dropped_store };
    { mname = "tv02_double_store"; analysis = "tv";
      expect = Some "TV02"; target = Trans tv02_double_store };
    { mname = "tv02_no_fallback"; analysis = "tv";
      expect = Some "TV02"; target = Trans tv02_no_fallback };
    { mname = "tv03_wrong_fetch_offset"; analysis = "tv";
      expect = Some "TV03"; target = Trans tv03_wrong_fetch_offset };
    { mname = "tv03_unbounded_fetch_loop"; analysis = "tv";
      expect = Some "TV03"; target = Trans tv03_unbounded_fetch_loop };
    { mname = "tv04_store_outside_item"; analysis = "tv";
      expect = Some "TV04"; target = Trans tv04_store_outside_item };
    { mname = "tv04_counter_nonzero_index"; analysis = "tv";
      expect = Some "TV04"; target = Trans tv04_counter_nonzero_index };
    { mname = "tv05_missing_barrier"; analysis = "tv";
      expect = Some "TV05"; target = Trans tv05_missing_barrier };
    { mname = "tv05_wrong_alloc_scope"; analysis = "tv";
      expect = Some "TV05"; target = Trans tv05_wrong_alloc_scope };
    { mname = "tv05_missing_clamp"; analysis = "tv";
      expect = Some "TV05"; target = Trans tv05_missing_clamp };
    { mname = "tv05_no_designated_guard"; analysis = "tv";
      expect = Some "TV05"; target = Trans tv05_no_designated_guard };
    { mname = "tv06_lint_regression"; analysis = "tv";
      expect = Some "TV06"; target = Trans tv06_lint_regression };
    { mname = "tv07_wrong_nvars"; analysis = "tv";
      expect = Some "TV07"; target = Trans tv07_wrong_nvars };
    { mname = "tv07_phantom_postwork"; analysis = "tv";
      expect = Some "TV07"; target = Trans tv07_phantom_postwork };
    { mname = "tv07_missing_entry"; analysis = "tv";
      expect = Some "TV07"; target = Trans tv07_missing_entry };
    { mname = "tv_clean_warp"; analysis = "tv";
      expect = None; target = Trans tv_clean_warp };
    { mname = "tv_clean_block"; analysis = "tv";
      expect = None; target = Trans tv_clean_block };
    { mname = "tv_clean_grid"; analysis = "tv";
      expect = None; target = Trans tv_clean_grid };
    { mname = "bc01_unknown_opcode"; analysis = "bytecode";
      expect = Some "BC01"; target = Stream bc01_unknown_opcode };
    { mname = "bc01_real_damaged_tail"; analysis = "bytecode";
      expect = Some "BC01"; target = Stream bc01_real_damaged_tail };
    { mname = "bc02_truncated_fuse_quad"; analysis = "bytecode";
      expect = Some "BC02"; target = Stream bc02_truncated_fuse_quad };
    { mname = "bc02_short_if"; analysis = "bytecode";
      expect = Some "BC02"; target = Stream bc02_short_if };
    { mname = "bc03_int_row_oob"; analysis = "bytecode";
      expect = Some "BC03"; target = Stream bc03_int_row_oob };
    { mname = "bc03_int_temp_oob"; analysis = "bytecode";
      expect = Some "BC03"; target = Stream bc03_int_temp_oob };
    { mname = "bc03_int_const_oob"; analysis = "bytecode";
      expect = Some "BC03"; target = Stream bc03_int_const_oob };
    { mname = "bc04_float_row_oob"; analysis = "bytecode";
      expect = Some "BC04"; target = Stream bc04_float_row_oob };
    { mname = "bc05_unknown_subop"; analysis = "bytecode";
      expect = Some "BC05"; target = Stream bc05_unknown_subop };
    { mname = "bc05_mixed_raising"; analysis = "bytecode";
      expect = Some "BC05"; target = Stream bc05_mixed_raising };
    { mname = "bc05_bad_special_kind"; analysis = "bytecode";
      expect = Some "BC05"; target = Stream bc05_bad_special_kind };
    { mname = "bc06_if_backward_target"; analysis = "bytecode";
      expect = Some "BC06"; target = Stream bc06_if_backward_target };
    { mname = "bc06_bad_cond_kind"; analysis = "bytecode";
      expect = Some "BC06"; target = Stream bc06_bad_cond_kind };
    { mname = "bc06_while_backward_test"; analysis = "bytecode";
      expect = Some "BC06"; target = Stream bc06_while_backward_test };
    { mname = "bc07_call_oob"; analysis = "bytecode";
      expect = Some "BC07"; target = Stream bc07_call_oob };
    { mname = "bc08_shared_slot_oob"; analysis = "bytecode";
      expect = Some "BC08"; target = Stream bc08_shared_slot_oob };
    { mname = "bc08_shstore_bad_kind"; analysis = "bytecode";
      expect = Some "BC08"; target = Stream bc08_shstore_bad_kind };
    { mname = "bc09_write_to_const"; analysis = "bytecode";
      expect = Some "BC09"; target = Stream bc09_write_to_const };
    { mname = "bc_clean_straightline"; analysis = "bytecode";
      expect = None; target = Stream bc_clean_straightline };
    { mname = "bc_clean_structured"; analysis = "bytecode";
      expect = None; target = Stream bc_clean_structured };
    { mname = "bc_clean_real_lowering"; analysis = "bytecode";
      expect = None; target = Stream bc_clean_real_lowering };
  ]

type outcome = {
  mutant : mutant;
  diags : Diag.t list;
  ok : bool;
      (** seeded mutants: the expected id was raised; clean twins: not a
          single diagnostic *)
}

let run ?cfg (m : mutant) : outcome =
  let diags =
    match m.target with
    | Lint build -> Check.check_program ?cfg (build ())
    | Trans build ->
      let parent, orig, r = build () in
      Tv.check ?cfg ~parent ~orig r
    | Stream build -> Bcverify.check_stream (build ())
  in
  let ok =
    match m.expect with
    | Some id -> List.exists (fun (d : Diag.t) -> d.Diag.id = id) diags
    | None -> diags = []
  in
  { mutant = m; diags; ok }

let run_all ?cfg () : outcome list = List.map (run ?cfg) all

let all_detected ?cfg () = List.for_all (fun o -> o.ok) (run_all ?cfg ())
