(** Shared expression machinery for the verifier passes: structural
    equality, constant folding, thread-distinctness of index expressions,
    designated-thread guard recognition, and statement-path formatting. *)

module A = Dpc_kir.Ast
module V = Dpc_kir.Value

(* ------------------------------------------------------------------ *)
(* Statement paths                                                      *)
(* ------------------------------------------------------------------ *)

(** [top i] and [sub parent label i] format the statement paths carried by
    diagnostics: [body[2]/if/then[0]], [body[4]/while[1]], ... *)
let top i = Printf.sprintf "body[%d]" i

let sub parent label i = Printf.sprintf "%s/%s[%d]" parent label i

(* ------------------------------------------------------------------ *)
(* Structural equality (variables compared by name)                     *)
(* ------------------------------------------------------------------ *)

let rec equal (a : A.expr) (b : A.expr) =
  match (a, b) with
  | A.Const x, A.Const y -> x = y
  | A.Var u, A.Var v -> u.A.name = v.A.name
  | A.Special s, A.Special t -> s = t
  | A.Unop (op, x), A.Unop (op', y) -> op = op' && equal x y
  | A.Binop (op, x1, x2), A.Binop (op', y1, y2) ->
    op = op' && equal x1 y1 && equal x2 y2
  | A.Load (x1, x2), A.Load (y1, y2) -> equal x1 y1 && equal x2 y2
  | A.Shared_load (n, x), A.Shared_load (m, y) -> n = m && equal x y
  | A.Buf_len x, A.Buf_len y -> equal x y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Constant folding                                                     *)
(* ------------------------------------------------------------------ *)

(** Fold an expression to an integer constant when it contains only
    integer literals (and [warpSize], when the device is known).  The
    arithmetic mirrors the interpreter's integer semantics; anything that
    would raise at runtime (division by zero) folds to [None]. *)
let rec const_int ?warp_size (e : A.expr) : int option =
  let bool_ b = Some (if b then 1 else 0) in
  match e with
  | A.Const (V.Vint n) -> Some n
  | A.Special A.Warp_size -> warp_size
  | A.Unop (A.Neg, a) -> Option.map Int.neg (const_int ?warp_size a)
  | A.Unop (A.Not, a) ->
    Option.map (fun n -> if n = 0 then 1 else 0) (const_int ?warp_size a)
  | A.Unop (A.To_int, a) -> const_int ?warp_size a
  | A.Binop (op, a, b) -> (
    match (const_int ?warp_size a, const_int ?warp_size b) with
    | Some x, Some y -> (
      match op with
      | A.Add -> Some (x + y)
      | A.Sub -> Some (x - y)
      | A.Mul -> Some (x * y)
      | A.Div -> if y = 0 then None else Some (x / y)
      | A.Mod -> if y = 0 then None else Some (x mod y)
      | A.Min -> Some (Int.min x y)
      | A.Max -> Some (Int.max x y)
      | A.And -> bool_ (x <> 0 && y <> 0)
      | A.Or -> bool_ (x <> 0 || y <> 0)
      | A.Eq -> bool_ (x = y)
      | A.Ne -> bool_ (x <> y)
      | A.Lt -> bool_ (x < y)
      | A.Le -> bool_ (x <= y)
      | A.Gt -> bool_ (x > y)
      | A.Ge -> bool_ (x >= y)
      | A.Shl -> Some (x lsl y)
      | A.Shr -> Some (x asr y)
      | A.Bit_and -> Some (x land y)
      | A.Bit_or -> Some (x lor y)
      | A.Bit_xor -> Some (x lxor y))
    | _ -> None)
  | A.Const (V.Vfloat _ | V.Vbuf _)
  | A.Var _ | A.Special _ | A.Unop _ | A.Load _ | A.Shared_load _
  | A.Buf_len _ ->
    None

(* ------------------------------------------------------------------ *)
(* Thread-distinct index expressions                                    *)
(* ------------------------------------------------------------------ *)

(** Is an index expression provably {e injective in the thread id within a
    block}: do two distinct threads of one block always hit distinct
    slots, at every point in time?  This is what lets the race detector
    suppress the [a[tid] = ...] false-positive class.  The sufficient
    condition used: the expression is affine in [threadIdx.x] with a
    provably non-zero coefficient, and every other leaf is a constant or a
    block-invariant, loop-invariant special ([blockDim.x], [gridDim.x],
    [warpSize], [blockIdx.x]).  Note [laneId] does NOT qualify: lane 0 of
    every warp shares [laneId = 0], so [a[laneId]] races across warps. *)
let block_distinct (e : A.expr) : bool =
  (* `Tid: injective in threadIdx.x; `Unif: thread- and loop-invariant;
     `No: neither provable. *)
  let rec go e =
    match e with
    | A.Special A.Thread_idx -> `Tid
    | A.Const (V.Vint _) -> `Unif
    | A.Special (A.Block_dim | A.Grid_dim | A.Warp_size | A.Block_idx) ->
      `Unif
    | A.Binop ((A.Add | A.Sub), a, b) -> (
      match (go a, go b) with
      | `Tid, `Unif | `Unif, `Tid -> `Tid
      | `Unif, `Unif -> `Unif
      | _ -> `No)
    | A.Binop (A.Mul, a, b) -> (
      match (go a, go b, const_int a, const_int b) with
      | `Tid, `Unif, _, Some c when c <> 0 -> `Tid
      | `Unif, `Tid, Some c, _ when c <> 0 -> `Tid
      | `Unif, `Unif, _, _ -> `Unif
      | _ -> `No)
    | A.Binop (A.Shl, a, b) -> (
      match (go a, const_int b) with
      | `Tid, Some c when c >= 0 -> `Tid
      | `Unif, Some _ -> `Unif
      | _ -> `No)
    | _ -> `No
  in
  go e = `Tid

(** Recognize designated-thread guards: conditions that restrict execution
    to exactly one thread of the consolidation domain, such as
    [threadIdx.x == 0] or [laneId == 0 && ...].  Returns the guard's
    normalized key so two accesses under the {e same} guard can be proven
    same-thread.  A [laneId == c] guard pins one thread per warp — single
    within a warp but not within a block — so it is keyed separately. *)
let rec single_thread_guard (cond : A.expr) : string option =
  match cond with
  | A.Binop (A.Eq, A.Special A.Thread_idx, rhs)
  | A.Binop (A.Eq, rhs, A.Special A.Thread_idx) ->
    Option.map (Printf.sprintf "tid=%d") (const_int rhs)
  | A.Binop (A.And, a, b) -> (
    match single_thread_guard a with
    | Some _ as g -> g
    | None -> single_thread_guard b)
  | _ -> None

(** Does the expression mention any special register satisfying [pred]? *)
let mentions_special pred (e : A.expr) =
  let found = ref false in
  A.iter_expr
    (fun x -> match x with A.Special s when pred s -> found := true | _ -> ())
    e;
  !found
