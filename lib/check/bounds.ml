(** Bounds and uninitialized-slot checking (BN01–BN03).

    {b Intervals.}  Every frame slot gets an integer interval
    [[lo, hi]] where either end may be unbounded ([None]); the per-slot
    map is computed by a flow-insensitive fixpoint over assignments with
    widening (an endpoint that grows twice is dropped to unbounded, so
    loop-carried updates like [i = i + 1] converge immediately).  Slots
    whose reads are all dominated by assignments start at bottom; slots
    with an undominated read additionally include the frame's zero fill.
    Special registers seed half-open ranges — [threadIdx.x ∈ [0, ∞)],
    [laneId ∈ [0, warpSize)], [blockDim.x ∈ [1, ∞)] — and kernel
    parameters are unknown, so thread- or parameter-indexed accesses never
    produce finite upper bounds and cannot be flagged: the checker only
    speaks up when it can actually bound the index.

    Shared accesses are compared against the array's declared extent:

    - [BN01] (error): the index interval lies entirely outside
      [[0, extent)] — a definite out-of-bounds access.
    - [BN02] (warning): the interval has a {e finite} endpoint outside
      [[0, extent)] — the access may go out of bounds (e.g. a loop bound
      one past the extent).

    {b Use before def.}  A forward pass mirrors {!Dpc_kir.Typing}'s
    definite-assignment analysis: parameters, [for] variables, [Malloc]
    destinations and atomic [old] binders define their slots; branch
    joins intersect; loop bodies may execute zero times, so their
    definitions do not survive the loop.  A read of a slot with no
    dominating definition is reported once per variable:

    - [BN03] (warning): the interpreter zero-fills frames, so the read
      yields 0 rather than garbage, but it is almost always a bug in the
      kernel (and would be undefined behavior in real CUDA). *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module V = Dpc_kir.Value
module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Intervals                                                            *)
(* ------------------------------------------------------------------ *)

type itv = { lo : int option; hi : int option }

let top = { lo = None; hi = None }
let const n = { lo = Some n; hi = Some n }
let range l h = { lo = Some l; hi = h }

let itv_to_string { lo; hi } =
  let b pre = function None -> pre ^ "inf" | Some n -> string_of_int n in
  Printf.sprintf "[%s, %s]" (b "-" lo) (b "+" hi)

let lift2 f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* Hull of two intervals (None absorbs: unbounded). *)
let hull a b = { lo = lift2 Int.min a.lo b.lo; hi = lift2 Int.max a.hi b.hi }

let add_itv a b = { lo = lift2 ( + ) a.lo b.lo; hi = lift2 ( + ) a.hi b.hi }
let neg_itv a = { lo = Option.map Int.neg a.hi; hi = Option.map Int.neg a.lo }
let sub_itv a b = add_itv a (neg_itv b)

let nonneg a = match a.lo with Some l -> l >= 0 | None -> false

(* Multiplication: track only the common all-non-negative case. *)
let mul_itv a b =
  if nonneg a && nonneg b then
    { lo = lift2 ( * ) a.lo b.lo; hi = lift2 ( * ) a.hi b.hi }
  else top

let min_itv a b =
  {
    lo = lift2 Int.min a.lo b.lo;
    hi =
      (match (a.hi, b.hi) with
      | Some x, Some y -> Some (Int.min x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None);
  }

let max_itv a b =
  {
    lo =
      (match (a.lo, b.lo) with
      | Some x, Some y -> Some (Int.max x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None);
    hi = lift2 Int.max a.hi b.hi;
  }

let special_itv ~warp_size = function
  | A.Thread_idx | A.Warp_id | A.Block_idx -> range 0 None
  | A.Lane_id -> range 0 (Some (warp_size - 1))
  | A.Block_dim | A.Grid_dim -> range 1 None
  | A.Warp_size -> const warp_size

(* Per-slot state: [None] is bottom (no assignment seen yet).  A read of a
   bottom slot folds to top — with the zero-fill seeding below it can only
   happen transiently before the fixpoint converges. *)
let rec expr_itv ~warp_size (slots : itv option array) (e : A.expr) : itv =
  let ev = expr_itv ~warp_size slots in
  match e with
  | A.Const (V.Vint n) -> const n
  | A.Const _ -> top
  | A.Var v ->
    if v.A.slot >= 0 then Option.value slots.(v.A.slot) ~default:top
    else top
  | A.Special s -> special_itv ~warp_size s
  | A.Unop (A.Neg, a) -> neg_itv (ev a)
  | A.Unop (A.Not, _) -> range 0 (Some 1)
  | A.Unop ((A.To_int | A.To_float), a) -> ev a
  | A.Binop (op, a, b) -> (
    let ia = ev a and ib = ev b in
    match op with
    | A.Add -> add_itv ia ib
    | A.Sub -> sub_itv ia ib
    | A.Mul -> mul_itv ia ib
    | A.Min -> min_itv ia ib
    | A.Max -> max_itv ia ib
    | A.Mod -> (
      (* a mod b with b ≥ 1 and a ≥ 0: result in [0, hi(b) - 1] *)
      match ib.lo with
      | Some l when l >= 1 && nonneg ia ->
        { lo = Some 0; hi = Option.map (fun h -> h - 1) ib.hi }
      | _ -> top)
    | A.Div -> (
      match ib.lo with
      | Some l when l >= 1 && nonneg ia ->
        { lo = Some 0; hi = lift2 ( / ) ia.hi ib.lo }
      | _ -> top)
    | A.And | A.Or | A.Eq | A.Ne | A.Lt | A.Le | A.Gt | A.Ge ->
      range 0 (Some 1)
    | A.Bit_and ->
      (* both non-negative: bounded by either side *)
      if nonneg ia && nonneg ib then { lo = Some 0; hi = (min_itv ia ib).hi }
      else top
    | A.Shl | A.Shr | A.Bit_or | A.Bit_xor ->
      if nonneg ia && nonneg ib then range 0 None else top)
  | A.Load _ | A.Shared_load _ -> top
  | A.Buf_len _ -> range 0 None

(* ------------------------------------------------------------------ *)
(* Use before def (shared by BN03 and the interval seeding)             *)
(* ------------------------------------------------------------------ *)

(** First undominated read of each slot: [(slot, variable name, path)]. *)
let undominated_reads (k : K.t) : (int * string * string) list =
  let params =
    List.fold_left
      (fun acc (p : A.param) ->
        if p.A.pvar.A.slot >= 0 then IntSet.add p.A.pvar.A.slot acc else acc)
      IntSet.empty k.K.params
  in
  let found = ref [] and seen = ref IntSet.empty in
  let use path defined (e : A.expr) =
    A.iter_expr
      (fun x ->
        match x with
        | A.Var v
          when v.A.slot >= 0
               && (not (IntSet.mem v.A.slot defined))
               && not (IntSet.mem v.A.slot !seen) ->
          seen := IntSet.add v.A.slot !seen;
          found := (v.A.slot, v.A.name, path) :: !found
        | _ -> ())
      e
  in
  let def (v : A.var) defined =
    if v.A.slot >= 0 then IntSet.add v.A.slot defined else defined
  in
  let rec stmt path defined (s : A.stmt) : IntSet.t =
    match s with
    | A.Let (v, e) ->
      use path defined e;
      def v defined
    | A.Store (b, i, x) ->
      use path defined b;
      use path defined i;
      use path defined x;
      defined
    | A.Shared_store (_, i, x) ->
      use path defined i;
      use path defined x;
      defined
    | A.If (c, a, b) ->
      use path defined c;
      let da = block path "then" defined a
      and db = block path "else" defined b in
      IntSet.inter da db
    | A.While (c, body) ->
      use path defined c;
      (* body may run zero times: its definitions do not survive *)
      ignore (block path "while" defined body);
      defined
    | A.For (v, lo, hi, body) ->
      use path defined lo;
      use path defined hi;
      let defined = def v defined in
      ignore (block path "for" defined body);
      defined
    | A.Atomic { buf; idx; operand; compare; old; _ } ->
      use path defined buf;
      use path defined idx;
      use path defined operand;
      Option.iter (use path defined) compare;
      (match old with Some v -> def v defined | None -> defined)
    | A.Launch l ->
      use path defined l.A.grid;
      use path defined l.A.block;
      List.iter (use path defined) l.A.args;
      defined
    | A.Malloc { dst; count; _ } ->
      use path defined count;
      def dst defined
    | A.Free e ->
      use path defined e;
      defined
    | A.Syncthreads | A.Device_sync | A.Grid_barrier | A.Return -> defined
  and block parent label defined stmts =
    let d = ref defined in
    List.iteri
      (fun i s -> d := stmt (Expr_util.sub parent label i) !d s)
      stmts;
    !d
  in
  let d = ref params in
  List.iteri (fun i s -> d := stmt (Expr_util.top i) !d s) k.K.body;
  List.rev !found

(* ------------------------------------------------------------------ *)
(* The interval fixpoint                                                *)
(* ------------------------------------------------------------------ *)

(** Converged per-slot intervals of a finalized kernel. *)
let infer ?(warp_size = 32) (k : K.t) : itv array =
  if not (K.is_finalized k) then K.finalize k;
  let n = Int.max k.K.nslots 0 in
  let slots : itv option array = Array.make n None in
  (* Slots read before any dominating assignment see the zero fill. *)
  List.iter
    (fun (s, _, _) -> slots.(s) <- Some (const 0))
    (undominated_reads k);
  List.iter
    (fun (p : A.param) ->
      if p.A.pvar.A.slot >= 0 then slots.(p.A.pvar.A.slot) <- Some top)
    k.K.params;
  (* Widening: an endpoint that grows twice goes unbounded. *)
  let grew_lo = Array.make n false and grew_hi = Array.make n false in
  let changed = ref true in
  let assign (v : A.var) itv =
    if v.A.slot >= 0 then begin
      let s = v.A.slot in
      match slots.(s) with
      | None ->
        slots.(s) <- Some itv;
        changed := true
      | Some old ->
        let h = hull old itv in
        let lo =
          if h.lo <> old.lo then
            if grew_lo.(s) then None
            else begin
              grew_lo.(s) <- true;
              h.lo
            end
          else h.lo
        and hi =
          if h.hi <> old.hi then
            if grew_hi.(s) then None
            else begin
              grew_hi.(s) <- true;
              h.hi
            end
          else h.hi
        in
        let next = { lo; hi } in
        if next <> old then begin
          slots.(s) <- Some next;
          changed := true
        end
    end
  in
  let rec stmt (s : A.stmt) =
    match s with
    | A.Let (v, e) -> assign v (expr_itv ~warp_size slots e)
    | A.If (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | A.While (_, body) -> List.iter stmt body
    | A.For (v, lo, hi, body) ->
      (* v ranges over [lo, hi) *)
      let ilo = expr_itv ~warp_size slots lo
      and ihi = expr_itv ~warp_size slots hi in
      assign v { lo = ilo.lo; hi = Option.map (fun h -> h - 1) ihi.hi };
      List.iter stmt body
    | A.Atomic { old = Some v; _ } -> assign v top
    | A.Malloc { dst; _ } -> assign dst top
    | A.Store _ | A.Shared_store _ | A.Atomic { old = None; _ }
    | A.Launch _ | A.Free _ | A.Syncthreads | A.Device_sync
    | A.Grid_barrier | A.Return ->
      ()
  in
  while !changed do
    changed := false;
    List.iter stmt k.K.body
  done;
  Array.map (fun s -> Option.value s ~default:(const 0)) slots

(* ------------------------------------------------------------------ *)
(* Checks                                                               *)
(* ------------------------------------------------------------------ *)

let check ?(warp_size = 32) (k : K.t) : Diag.t list =
  let slots = infer ~warp_size k in
  (* [infer] collapses bottom for its callers; the expression walker below
     wants the option array shape back. *)
  let oslots = Array.map Option.some slots in
  let diags = ref [] in
  let emit ~id ~severity ~path fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          Diag.make ~id ~severity ~kernel:k.K.kname ~path ~line:k.K.line
            "%s" message
          :: !diags)
      fmt
  in
  (* --- shared-extent checks ------------------------------------- *)
  let shared_access path array idx =
    match List.assoc_opt array k.K.shared with
    | None -> () (* unknown array: the interpreter raises at runtime *)
    | Some extent ->
      let i = expr_itv ~warp_size oslots idx in
      let definitely_out =
        (match i.lo with Some l -> l >= extent | None -> false)
        || match i.hi with Some h -> h < 0 | None -> false
      in
      if definitely_out then
        emit ~id:"BN01" ~severity:Diag.Error ~path
          "index of %s is always out of bounds: range %s vs extent %d"
          array (itv_to_string i) extent
      else begin
        let may_high =
          match i.hi with Some h -> h >= extent | None -> false
        and may_low = match i.lo with Some l -> l < 0 | None -> false in
        if may_high || may_low then
          emit ~id:"BN02" ~severity:Diag.Warning ~path
            "index of %s may go out of bounds: range %s vs extent %d"
            array (itv_to_string i) extent
      end
  in
  let rec bounds_stmt path (s : A.stmt) =
    let exprs es = List.iter (bounds_expr path) es in
    match s with
    | A.Let (_, e) | A.Free e -> exprs [ e ]
    | A.Store (b, i, v) -> exprs [ b; i; v ]
    | A.Shared_store (array, idx, v) ->
      exprs [ idx; v ];
      shared_access path array idx
    | A.If (c, a, b) ->
      exprs [ c ];
      List.iteri (fun i s -> bounds_stmt (Expr_util.sub path "then" i) s) a;
      List.iteri (fun i s -> bounds_stmt (Expr_util.sub path "else" i) s) b
    | A.While (c, body) ->
      exprs [ c ];
      List.iteri
        (fun i s -> bounds_stmt (Expr_util.sub path "while" i) s)
        body
    | A.For (_, lo, hi, body) ->
      exprs [ lo; hi ];
      List.iteri (fun i s -> bounds_stmt (Expr_util.sub path "for" i) s) body
    | A.Atomic { buf; idx; operand; compare; _ } ->
      exprs [ buf; idx; operand ];
      Option.iter (fun c -> exprs [ c ]) compare
    | A.Launch l ->
      exprs [ l.A.grid; l.A.block ];
      exprs l.A.args
    | A.Malloc { count; _ } -> exprs [ count ]
    | A.Syncthreads | A.Device_sync | A.Grid_barrier | A.Return -> ()
  and bounds_expr path (e : A.expr) =
    A.iter_expr
      (fun x ->
        match x with
        | A.Shared_load (array, idx) -> shared_access path array idx
        | _ -> ())
      e
  in
  List.iteri (fun i s -> bounds_stmt (Expr_util.top i) s) k.K.body;
  (* --- use before def ------------------------------------------- *)
  List.iter
    (fun (_, name, path) ->
      emit ~id:"BN03" ~severity:Diag.Warning ~path
        "%s is read before any assignment dominates the use (the simulator \
         zero-fills it)"
        name)
    (undominated_reads k);
  Diag.sort !diags
