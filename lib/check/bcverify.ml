(** Static verifier for bytecode instruction streams.

    The bytecode tier ({!Dpc_sim.Bytecode}) executes dense int-coded
    streams with unchecked register indexing — [row_i]/[row_f] use
    [unsafe_get], the FUSE dispatch trusts every quad's sub-op, and the
    region walker trusts every patched jump target.  That is sound for
    streams the lowering just produced, but nothing else: a stale or
    hand-edited persisted program, a future lowering bug, or a mutant
    stream would execute garbage (or segfault) instead of failing.

    This pass re-derives, by abstract interpretation over the stream
    alone, every property the executor assumes:

    - {b BC01} opcode validity / fallback-matrix conformance: only the
      fifteen documented stream ops may appear; anything else means an
      op the lowering documents as unlowerable (atomics, launches,
      mallocs, barriers — always [CALL] fallbacks) was encoded directly.
    - {b BC02} instruction fit: every operand (including each FUSE
      quad) lies inside its enclosing region — a truncated stream is
      caught before the executor reads past the end.
    - {b BC03}/{b BC04} register-plane typing: every int/float operand
      resolves inside its plane — temp rows below the temp-plane
      height, warp rows below the plane row count, constants inside
      the pool.
    - {b BC05} FUSE well-formedness: a positive quad count, documented
      sub-ops only, SPECIAL kinds 0–6, and raising quads (IDIV/IMOD) of
      at most one kind per group (the lowering's abort-ordering rule).
    - {b BC06} structured control: IF/WHILE/FOR/ANDOR region targets
      monotone and inside the enclosing region, condition kinds 0/1.
    - {b BC07} CALL fallback indices inside the statement table.
    - {b BC08} shared-memory operands: array slot and interned name in
      range, SHSTORE kinds 0–2.
    - {b BC09} no write destination may address the constant pool
      (rows there are shared across lanes; a write would corrupt every
      use of the constant).

    All findings are errors: a stream with any of them must not run. *)

module B = Dpc_sim.Bytecode
module K = Dpc_kir.Kernel

(* Operand planes, for the register checks. *)
type plane = Pi | Pf

let check_stream (s : B.stream) : Diag.t list =
  let diags = ref [] in
  let emit ~id fmt =
    Printf.ksprintf
      (fun m ->
        diags :=
          Diag.make ~id ~severity:Diag.Error ~kernel:s.B.s_kname "%s" m
          :: !diags)
      fmt
  in
  let code = s.B.s_code in
  let len = Array.length code in
  let plane_name = function Pi -> "int" | Pf -> "float" in
  let ntmp = function Pi -> s.B.s_ntmpi | Pf -> s.B.s_ntmpf in
  let nrows = function Pi -> s.B.s_nint | Pf -> s.B.s_nflt in
  let npool = function Pi -> s.B.s_nic | Pf -> s.B.s_nfc in
  let oob_id = function Pi -> "BC03" | Pf -> "BC04" in
  let reg_read pl ~pc ~what r =
    if r >= B.temp_base then begin
      let t = r - B.temp_base in
      if t >= ntmp pl then
        emit ~id:(oob_id pl)
          "pc %d: %s reads %s temp row %d, but the temp plane has %d rows"
          pc what (plane_name pl) t (ntmp pl)
    end
    else if r >= 0 then begin
      if r >= nrows pl then
        emit ~id:(oob_id pl)
          "pc %d: %s reads %s register row %d, but the warp plane has %d \
           rows"
          pc what (plane_name pl) r (nrows pl)
    end
    else begin
      let i = -r - 1 in
      if i >= npool pl then
        emit ~id:(oob_id pl)
          "pc %d: %s reads %s constant %d, but the pool has %d entries" pc
          what (plane_name pl) i (npool pl)
    end
  in
  let reg_write pl ~pc ~what r =
    if r < 0 then
      emit ~id:"BC09"
        "pc %d: %s writes %s constant-pool entry %d (constants are \
         read-only)"
        pc what (plane_name pl) (-r - 1)
    else reg_read pl ~pc ~what r
  in
  let cond ~pc ~what kind row =
    if kind <> 0 && kind <> 1 then
      emit ~id:"BC06" "pc %d: %s condition kind %d (expected 0=int 1=float)"
        pc what kind
    else reg_read (if kind = 0 then Pi else Pf) ~pc ~what:(what ^ " condition")
        row
  in
  (* One FUSE quad at [q]; returns the raise kind (0 none, 1 div, 2 mod). *)
  let quad ~pc q =
    let op = code.(q) and a = code.(q + 1) and b = code.(q + 2) in
    let d = code.(q + 3) in
    let what = Printf.sprintf "FUSE quad at %d (sub-op %d)" q op in
    let r2 ap bp dp =
      reg_read ap ~pc ~what a;
      reg_read bp ~pc ~what b;
      reg_write dp ~pc ~what d
    in
    let r1 ap dp =
      reg_read ap ~pc ~what a;
      reg_write dp ~pc ~what d
    in
    match op with
    | 3 -> r2 Pi Pi Pi; 1  (* IDIV raises on zero *)
    | 4 -> r2 Pi Pi Pi; 2  (* IMOD raises on zero *)
    | 0 | 1 | 2 | 5 | 6 | 7 | 8 | 9 | 10 | 11  (* int arith *)
    | 12 | 13 | 14 | 15 | 16 | 17 (* int compare *) ->
      r2 Pi Pi Pi; 0
    | 18 | 19 | 20 | 21 | 22 | 23 (* float arith *) -> r2 Pf Pf Pf; 0
    | 24 | 25 | 26 | 27 | 28 | 29 (* float compare, int truth *) ->
      r2 Pf Pf Pi; 0
    | 30 | 32 | 38 -> r1 Pi Pi; 0  (* INEG INOT MOVI *)
    | 31 | 39 -> r1 Pf Pf; 0  (* FNEG MOVF *)
    | 33 | 35 | 37 -> r1 Pf Pi; 0  (* FNOT F2I F2I_FREE *)
    | 34 | 36 -> r1 Pi Pf; 0  (* I2F I2F_FREE *)
    | 40 -> 0  (* CHARGE1: operands unused *)
    | 41 ->
      if a < 0 || a > 6 then
        emit ~id:"BC05" "pc %d: %s: SPECIAL kind %d (expected 0..6)" pc what
          a;
      reg_write Pi ~pc ~what d;
      0
    | _ ->
      emit ~id:"BC05" "pc %d: unknown FUSE sub-op %d at quad %d" pc op q;
      0
  in
  (* Walk one region [p, stop).  Malformed control targets end the walk
     of their region (the executor would jump arbitrarily from there, so
     nothing later in the region is trustworthy). *)
  let rec walk p stop =
    if p < stop then begin
      let op = code.(p) in
      let need n k =
        if p + n > stop then
          emit ~id:"BC02"
            "pc %d: opcode %d needs %d slots but its region ends at %d" p op
            n stop
        else k ()
      in
      match op with
      | 0 | 1 -> walk (p + 1) stop
      | 2 ->
        need 2 (fun () ->
            let st = code.(p + 1) in
            if st < 0 || st >= s.B.s_nstmts then
              emit ~id:"BC07"
                "pc %d: CALL statement %d, but the fallback table has %d \
                 entries"
                p st s.B.s_nstmts;
            walk (p + 2) stop)
      | 3 ->
        need 5 (fun () ->
            cond ~pc:p ~what:"IF" code.(p + 1) code.(p + 2);
            let elsep = code.(p + 3) and endp = code.(p + 4) in
            if not (p + 5 <= elsep && elsep <= endp && endp <= stop) then
              emit ~id:"BC06"
                "pc %d: IF targets else=%d end=%d violate %d <= else <= end \
                 <= %d"
                p elsep endp (p + 5) stop
            else begin
              walk (p + 5) elsep;
              walk elsep endp;
              walk endp stop
            end)
      | 4 ->
        need 3 (fun () ->
            let testp = code.(p + 1) and endp = code.(p + 2) in
            if not (p + 3 <= testp && testp + 2 <= endp && endp <= stop)
            then
              emit ~id:"BC06"
                "pc %d: WHILE targets test=%d end=%d violate %d <= test, \
                 test+2 <= end <= %d"
                p testp endp (p + 3) stop
            else begin
              walk (p + 3) testp;
              cond ~pc:p ~what:"WHILE" code.(testp) code.(testp + 1);
              walk (testp + 2) endp;
              walk endp stop
            end)
      | 5 ->
        need 6 (fun () ->
            let var = code.(p + 1) in
            if var < 0 || var >= s.B.s_nint then
              emit ~id:"BC03"
                "pc %d: FOR induction row %d, but the warp int plane has %d \
                 rows"
                p var s.B.s_nint;
            reg_read Pi ~pc:p ~what:"FOR lower bound" code.(p + 2);
            reg_read Pi ~pc:p ~what:"FOR upper bound" code.(p + 3);
            let testp = code.(p + 4) and endp = code.(p + 5) in
            if not (p + 6 <= testp && testp <= endp && endp <= stop) then
              emit ~id:"BC06"
                "pc %d: FOR targets test=%d end=%d violate %d <= test <= \
                 end <= %d"
                p testp endp (p + 6) stop
            else begin
              walk (p + 6) testp;
              walk testp endp;
              walk endp stop
            end)
      | 6 ->
        need 8 (fun () ->
            let isand = code.(p + 1) in
            if isand <> 0 && isand <> 1 then
              emit ~id:"BC06" "pc %d: ANDOR kind %d (expected 0=or 1=and)" p
                isand;
            reg_write Pi ~pc:p ~what:"ANDOR destination" code.(p + 2);
            cond ~pc:p ~what:"ANDOR left" code.(p + 3) code.(p + 4);
            cond ~pc:p ~what:"ANDOR right" code.(p + 5) code.(p + 6);
            let be = code.(p + 7) in
            if not (p + 8 <= be && be <= stop) then
              emit ~id:"BC06"
                "pc %d: ANDOR target b-end=%d violates %d <= b-end <= %d" p
                be (p + 8) stop
            else begin
              walk (p + 8) be;
              walk be stop
            end)
      | 7 ->
        need 3 (fun () ->
            let n = code.(p + 1) in
            if n < 1 then begin
              emit ~id:"BC05" "pc %d: FUSE group with quad count %d" p n;
              walk (p + 3) stop
            end
            else begin
              let group_end = p + 3 + (4 * n) in
              if group_end > stop then
                emit ~id:"BC02"
                  "pc %d: FUSE group of %d quads needs %d slots but its \
                   region ends at %d (truncated quad)"
                  p n (group_end - p) stop
              else begin
                let raises = ref 0 in
                for j = 0 to n - 1 do
                  let rk = quad ~pc:p (p + 3 + (4 * j)) in
                  if rk <> 0 then begin
                    if !raises <> 0 && !raises <> rk then
                      emit ~id:"BC05"
                        "pc %d: FUSE group mixes division and modulo \
                         raising quads (abort order would be unspecified)"
                        p;
                    raises := rk
                  end
                done;
                walk group_end stop
              end
            end)
      | 8 | 9 ->
        need 4 (fun () ->
            let what = if op = 8 then "LOADI" else "LOADF" in
            reg_read Pi ~pc:p ~what:(what ^ " buffer") code.(p + 1);
            reg_read Pi ~pc:p ~what:(what ^ " index") code.(p + 2);
            reg_write (if op = 8 then Pi else Pf) ~pc:p
              ~what:(what ^ " destination")
              code.(p + 3);
            walk (p + 4) stop)
      | 10 | 11 ->
        need 4 (fun () ->
            let what = if op = 10 then "STOREI" else "STOREF" in
            reg_read Pi ~pc:p ~what:(what ^ " buffer") code.(p + 1);
            reg_read Pi ~pc:p ~what:(what ^ " index") code.(p + 2);
            reg_read (if op = 10 then Pi else Pf) ~pc:p
              ~what:(what ^ " value")
              code.(p + 3);
            walk (p + 4) stop)
      | 12 ->
        need 3 (fun () ->
            reg_read Pi ~pc:p ~what:"BUFLEN buffer" code.(p + 1);
            reg_write Pi ~pc:p ~what:"BUFLEN destination" code.(p + 2);
            walk (p + 3) stop)
      | 13 | 14 ->
        let shload = op = 13 in
        let n = if shload then 5 else 6 in
        need n (fun () ->
            let what = if shload then "SHLOAD" else "SHSTORE" in
            let sh = code.(p + (if shload then 3 else 4)) in
            let nm = code.(p + (if shload then 4 else 5)) in
            if sh < 0 || sh >= s.B.s_nshared then
              emit ~id:"BC08"
                "pc %d: %s shared array %d, but the kernel has %d shared \
                 arrays"
                p what sh s.B.s_nshared;
            if nm < 0 || nm >= s.B.s_nnames then
              emit ~id:"BC08"
                "pc %d: %s name id %d, but %d names are interned" p what nm
                s.B.s_nnames;
            if shload then begin
              reg_read Pi ~pc:p ~what:"SHLOAD index" code.(p + 1);
              reg_write Pi ~pc:p ~what:"SHLOAD destination" code.(p + 2)
            end
            else begin
              let kind = code.(p + 1) in
              if kind < 0 || kind > 2 then
                emit ~id:"BC08"
                  "pc %d: SHSTORE kind %d (expected 0=int 1=float 2=buf)" p
                  kind;
              reg_read Pi ~pc:p ~what:"SHSTORE index" code.(p + 2);
              reg_read
                (if kind = 1 then Pf else Pi)
                ~pc:p ~what:"SHSTORE value"
                code.(p + 3)
            end;
            walk (p + n) stop)
      | _ ->
        emit ~id:"BC01"
          "pc %d: opcode %d is not a stream op — an unlowerable statement \
           (atomic/launch/malloc/sync) must be a CALL fallback"
          p op
        (* Unknown width: nothing after this pc can be decoded. *)
    end
  in
  walk 0 len;
  Diag.sort !diags

(** Verify every stream a finalized kernel lowers to.  Kernels that do
    not compile (no typing: reference-walker only) have no bytecode and
    verify vacuously. *)
let check_kernel (k : K.t) : Diag.t list =
  if k.K.typing = None then K.finalize k;
  match B.streams_of_kernel k with
  | None -> []
  | Some streams -> List.concat_map check_stream streams

(** Verify every kernel of a program. *)
let check (prog : K.Program.t) : Diag.t list =
  List.concat_map check_kernel (K.Program.kernels prog) |> Diag.sort
