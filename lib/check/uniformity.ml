(** Barrier-divergence analysis (BD01–BD03).

    An abstract {e uniformity} value is attached to every frame slot and
    every expression:

    {v  Uniform ⊑ Block_uniform ⊑ Warp_uniform ⊑ Divergent  v}

    [Uniform] means all threads of the grid agree on the value,
    [Block_uniform] all threads of one block, [Warp_uniform] all lanes of
    one warp, [Divergent] nothing provable.  The join is the coarser of
    the two sides.  Seeds: [threadIdx.x] and [laneId] are divergent,
    [warpId] is warp-uniform, [blockIdx.x] is block-uniform, and
    [blockDim.x] / [gridDim.x] / [warpSize] and kernel parameters are
    uniform (launch arguments are shared by every thread).

    Loads join the uniformity of their operands — i.e. a load from a
    uniformly computed address is assumed to see a single value.  That is
    only sound for race-free programs, which is exactly the property the
    {!Races} pass patrols; the two analyses together keep each other
    honest (DESIGN.md §7).

    Slot levels are computed by a flow-insensitive fixpoint: an assignment
    contributes [join ctx (level rhs)] where [ctx] is the uniformity of
    the enclosing control conditions — a write under a divergent branch
    yields a divergent variable even if the right-hand side is uniform,
    because {e whether} the write happened now depends on the thread.

    A second pass walks the body with the converged levels and reports:

    - [BD01] (error): [__syncthreads] under a condition that is not
      block-uniform.  Warps that skip the barrier deadlock the block.
    - [BD02] (error): the custom grid barrier under a condition that is
      not grid-uniform.  Blocks that skip it break the arrival count.
    - [BD03] (warning): [return] under a condition more divergent than a
      barrier appearing in the same kernel tolerates; threads that leave
      early are missed at the barrier. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel

type level = Uniform | Block_uniform | Warp_uniform | Divergent

let rank = function
  | Uniform -> 0
  | Block_uniform -> 1
  | Warp_uniform -> 2
  | Divergent -> 3

let join a b = if rank a >= rank b then a else b

let level_to_string = function
  | Uniform -> "uniform"
  | Block_uniform -> "block-uniform"
  | Warp_uniform -> "warp-uniform"
  | Divergent -> "divergent"

let special_level = function
  | A.Thread_idx | A.Lane_id -> Divergent
  | A.Warp_id -> Warp_uniform
  | A.Block_idx -> Block_uniform
  | A.Block_dim | A.Grid_dim | A.Warp_size -> Uniform

let scope_level = function
  | A.Per_warp -> Warp_uniform
  | A.Per_block -> Block_uniform
  | A.Per_grid -> Uniform

let rec expr_level levels (e : A.expr) =
  match e with
  | A.Const _ -> Uniform
  | A.Var v -> if v.A.slot >= 0 then levels.(v.A.slot) else Divergent
  | A.Special s -> special_level s
  | A.Unop (_, a) -> expr_level levels a
  | A.Binop (_, a, b) -> join (expr_level levels a) (expr_level levels b)
  | A.Load (b, i) -> join (expr_level levels b) (expr_level levels i)
  | A.Shared_load (_, i) ->
    (* distinct blocks hold distinct copies of the array *)
    join Block_uniform (expr_level levels i)
  | A.Buf_len b -> expr_level levels b

(** Converged per-slot uniformity levels of a finalized kernel. *)
let infer (k : K.t) : level array =
  if not (K.is_finalized k) then K.finalize k;
  let levels = Array.make (Int.max k.K.nslots 0) Uniform in
  let changed = ref true in
  let assign (v : A.var) lv =
    if v.A.slot >= 0 then begin
      let lv' = join levels.(v.A.slot) lv in
      if lv' <> levels.(v.A.slot) then begin
        levels.(v.A.slot) <- lv';
        changed := true
      end
    end
  in
  let rec stmt ctx (s : A.stmt) =
    match s with
    | A.Let (v, e) -> assign v (join ctx (expr_level levels e))
    | A.If (c, a, b) ->
      let ctx' = join ctx (expr_level levels c) in
      List.iter (stmt ctx') a;
      List.iter (stmt ctx') b
    | A.While (c, body) ->
      let ctx' = join ctx (expr_level levels c) in
      List.iter (stmt ctx') body
    | A.For (v, lo, hi, body) ->
      assign v
        (join ctx (join (expr_level levels lo) (expr_level levels hi)));
      let ctx' = if v.A.slot >= 0 then levels.(v.A.slot) else Divergent in
      List.iter (stmt (join ctx ctx')) body
    | A.Atomic { old = Some v; _ } ->
      (* each thread receives its own pre-update value *)
      assign v Divergent
    | A.Malloc { dst; scope; _ } -> assign dst (join ctx (scope_level scope))
    | A.Store _ | A.Shared_store _ | A.Atomic { old = None; _ }
    | A.Launch _ | A.Free _ | A.Syncthreads | A.Device_sync
    | A.Grid_barrier | A.Return ->
      ()
  in
  while !changed do
    changed := false;
    List.iter (stmt Uniform) k.K.body
  done;
  levels

let check (k : K.t) : Diag.t list =
  let levels = infer k in
  let has_sync = ref false and has_gbar = ref false in
  List.iter
    (A.iter_stmt
       ~on_stmt:(function
         | A.Syncthreads -> has_sync := true
         | A.Grid_barrier -> has_gbar := true
         | _ -> ())
       ~on_expr:(fun _ -> ()))
    k.K.body;
  let diags = ref [] in
  let emit ~id ~severity ~path fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          Diag.make ~id ~severity ~kernel:k.K.kname ~path ~line:k.K.line
            "%s" message
          :: !diags)
      fmt
  in
  let rec stmt ctx path (s : A.stmt) =
    match s with
    | A.Syncthreads ->
      if rank ctx > rank Block_uniform then
        emit ~id:"BD01" ~severity:Diag.Error ~path
          "__syncthreads under a %s condition: warps that skip the \
           barrier deadlock the block"
          (level_to_string ctx)
    | A.Grid_barrier ->
      if rank ctx > rank Uniform then
        emit ~id:"BD02" ~severity:Diag.Error ~path
          "grid barrier under a %s condition: blocks that skip it break \
           the arrival protocol"
          (level_to_string ctx)
    | A.Return ->
      if !has_sync && rank ctx > rank Block_uniform then
        emit ~id:"BD03" ~severity:Diag.Warning ~path
          "return under a %s condition in a kernel that synchronizes: \
           threads that exit early are missed at __syncthreads"
          (level_to_string ctx)
      else if !has_gbar && rank ctx > rank Uniform then
        emit ~id:"BD03" ~severity:Diag.Warning ~path
          "return under a %s condition in a kernel with a grid barrier: \
           blocks that exit early are missed at the barrier"
          (level_to_string ctx)
    | A.If (c, a, b) ->
      let ctx' = join ctx (expr_level levels c) in
      List.iteri (fun i s -> stmt ctx' (Expr_util.sub path "then" i) s) a;
      List.iteri (fun i s -> stmt ctx' (Expr_util.sub path "else" i) s) b
    | A.While (c, body) ->
      let ctx' = join ctx (expr_level levels c) in
      List.iteri (fun i s -> stmt ctx' (Expr_util.sub path "while" i) s) body
    | A.For (v, _, _, body) ->
      let ctx' =
        join ctx (if v.A.slot >= 0 then levels.(v.A.slot) else Divergent)
      in
      List.iteri (fun i s -> stmt ctx' (Expr_util.sub path "for" i) s) body
    | A.Let _ | A.Store _ | A.Shared_store _ | A.Atomic _ | A.Launch _
    | A.Malloc _ | A.Free _ | A.Device_sync ->
      ()
  in
  List.iteri (fun i s -> stmt Uniform (Expr_util.top i) s) k.K.body;
  Diag.sort !diags
