(** Translation validation for the consolidation transforms (TV01–TV07).

    {!Dpc.Transform.apply} rewrites a parent/child kernel pair into the
    consolidated program; {!Dpc.Free_launch.apply} inlines the child at
    the launch site.  Both are trusted today only through end-to-end
    differential runs.  This pass re-checks each produced
    original/transformed pair {e structurally}: it does not re-derive
    the generated code, it verifies the properties that make the rewrite
    a workload-preserving transformation.

    Catalog (all [Error] severity):

    - {b TV01} kernel-set preservation: the transformed program must
      contain exactly the original kernels plus the consolidated child
      (and postwork kernel when promised), and every kernel the
      transform had no business touching must be printed-representation
      identical to its original.
    - {b TV02} insertion-side work conservation: the launch site must
      have become one atomic slot reservation plus exactly one buffered
      store per work variable (offsets [0..nvars-1], each exactly once),
      with the documented overflow fallback — a direct, unannotated
      launch of the original child.
    - {b TV03} fetch-side work conservation: the consolidated child must
      bind every work-dependent child parameter from the buffer at its
      work-clause offset and bound its fetch loop by the item counter.
    - {b TV04} buffer-footprint preservation: every access to a
      consolidation buffer stays inside one item's interval
      ([item*nvars + k], [0 <= k < nvars]); the counter is only ever
      accessed at index 0; the allocations request exactly
      [capacity*nvars] and [1] cells.
    - {b TV05} pragma-contract conformance: allocation scope, barrier
      kind, designated-thread guard and the counter clamp must match the
      pragma's granularity.
    - {b TV06} lint-clean preservation: a lint-clean input must
      transform to a lint-clean output (PR 4's invariants survive the
      rewrite); every fresh error is re-reported under TV06.
    - {b TV07} result-metadata consistency: the kernels the result
      record names must exist and have the documented shapes (entry
      present, consolidated child ends with the buffer/counter
      parameters, postwork kernel present exactly when promised). *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module V = Dpc_kir.Value
module Pragma = Dpc_kir.Pragma
module Pp = Dpc_kir.Pp
module T = Dpc.Transform
module Fl = Dpc.Free_launch

let err ~id ~kernel fmt =
  Printf.ksprintf
    (fun message -> Diag.make ~id ~severity:Diag.Error ~kernel "%s" message)
    fmt

(* The transforms' reserved buffer/counter names.  Fetch-side code reads
   the [__cons_buf]/[__cons_cnt] parameters; recursive insertion code
   writes the [_next] pair. *)
let is_buf_name n = n = "__cons_buf" || n = "__cons_buf_next"
let is_cnt_name n = n = "__cons_cnt" || n = "__cons_cnt_next"

let var_named pred = function A.Var v -> pred v.A.name | _ -> false

(* [item*nvars + k] — the only index shape allowed into a consolidation
   buffer.  Returns the work-variable offset [k]. *)
let item_offset ~nvars (idx : A.expr) : int option =
  match idx with
  | A.Binop
      (A.Add, A.Binop (A.Mul, _, A.Const (V.Vint nv)), A.Const (V.Vint k))
    when nv = nvars ->
    Some k
  | _ -> None

let iter_kernel (k : K.t) ~on_stmt ~on_expr =
  A.iter_block ~on_stmt ~on_expr k.K.body

(* ------------------------------------------------------------------ *)
(* TV01: kernel-set preservation                                        *)
(* ------------------------------------------------------------------ *)

let names_of (prog : K.Program.t) =
  List.map (fun k -> k.K.kname) (K.Program.kernels prog)

let check_kernel_set ~(parent : string) ~(orig : K.Program.t)
    ~(out : K.Program.t) ~(fresh : string list) ~(rebuilt : string list) :
    Diag.t list =
  let diags = ref [] in
  let expected =
    names_of orig @ List.filter (fun n -> not (K.Program.mem orig n)) fresh
  in
  let actual = names_of out in
  List.iter
    (fun n ->
      if not (List.mem n actual) then
        diags :=
          err ~id:"TV01" ~kernel:parent
            "transformed program lost kernel %s" n
          :: !diags)
    expected;
  List.iter
    (fun n ->
      if not (List.mem n expected) then
        diags :=
          err ~id:"TV01" ~kernel:parent
            "transformed program contains unexpected kernel %s" n
          :: !diags)
    actual;
  (* Kernels the transform had no business touching must be identical. *)
  List.iter
    (fun k ->
      let n = k.K.kname in
      if (not (List.mem n fresh)) && not (List.mem n rebuilt) then
        match K.Program.find_opt out n with
        | None -> ()
        | Some k' ->
          if Pp.kernel k <> Pp.kernel k' then
            diags :=
              err ~id:"TV01" ~kernel:n
                "untouched kernel was modified by the transform"
              :: !diags)
    (K.Program.kernels orig);
  !diags

(* ------------------------------------------------------------------ *)
(* TV02: insertion-side work conservation                               *)
(* ------------------------------------------------------------------ *)

(* The insertion site (in [host], the kernel the launch was rewritten
   in) must reserve a slot atomically and store offsets 0..nvars-1 each
   exactly once, with a direct launch of the original child as the
   overflow fallback. *)
let check_insertions ~(host : K.t) ~(callee : string) ~(nvars : int) :
    Diag.t list =
  let diags = ref [] in
  let atomic = ref false in
  let offsets = ref [] in
  let fallback = ref false in
  iter_kernel host
    ~on_stmt:(fun s ->
      match s with
      | A.Atomic { op = A.Aadd; buf; idx = A.Const (V.Vint 0); old = Some _; _ }
        when var_named is_cnt_name buf ->
        atomic := true
      | A.Store (buf, idx, _) when var_named is_buf_name buf -> (
        match item_offset ~nvars idx with
        | Some k -> offsets := k :: !offsets
        | None -> ())
      | A.Launch { callee = c; pragma = None; _ } when c = callee ->
        fallback := true
      | _ -> ())
    ~on_expr:(fun _ -> ());
  if not !atomic then
    diags :=
      err ~id:"TV02" ~kernel:host.K.kname
        "no atomic slot reservation on the item counter (work items can \
         be lost or duplicated)"
      :: !diags;
  for k = 0 to nvars - 1 do
    match List.length (List.filter (fun x -> x = k) !offsets) with
    | 1 -> ()
    | 0 ->
      diags :=
        err ~id:"TV02" ~kernel:host.K.kname
          "work variable %d of %d is never stored into the consolidation \
           buffer"
          k nvars
        :: !diags
    | n ->
      diags :=
        err ~id:"TV02" ~kernel:host.K.kname
          "work variable %d of %d is stored %d times (expected once)" k nvars
          n
        :: !diags
  done;
  if not !fallback then
    diags :=
      err ~id:"TV02" ~kernel:host.K.kname
        "no direct-launch overflow fallback for child %s (items beyond \
         the buffer capacity would be dropped)"
        callee
      :: !diags;
  !diags

(* ------------------------------------------------------------------ *)
(* TV03: fetch-side work conservation                                   *)
(* ------------------------------------------------------------------ *)

(* Recompute the original launch's parameter roles the way
   [Transform.analyze_site] did: argument positions whose expression is
   a work variable fetch that variable's offset from the buffer. *)
let param_roles ~(work : string list) (launch : A.launch)
    (child : K.t) : (string * int) list =
  List.map2
    (fun (p : A.param) (arg : A.expr) ->
      match arg with
      | A.Var v when List.mem v.A.name work ->
        let rec index i = function
          | [] -> -1
          | w :: rest -> if w = v.A.name then i else index (i + 1) rest
        in
        (p.A.pname, index 0 work)
      | _ -> (p.A.pname, -1))
    child.K.params launch.A.args
  |> List.filter (fun (_, k) -> k >= 0)

let check_fetch ~(cons : K.t) ~(roles : (string * int) list) ~(nvars : int) :
    Diag.t list =
  let diags = ref [] in
  let bound = ref [] in
  let counter_loop = ref false in
  let reads_cnt0 e =
    let found = ref false in
    A.iter_expr
      (fun x ->
        match x with
        | A.Load (b, A.Const (V.Vint 0)) when var_named is_cnt_name b ->
          found := true
        | _ -> ())
      e;
    !found
  in
  iter_kernel cons
    ~on_stmt:(fun s ->
      match s with
      | A.Let (v, A.Load (buf, idx)) when var_named is_buf_name buf -> (
        match item_offset ~nvars idx with
        | Some k -> bound := (v.A.name, k) :: !bound
        | None -> ())
      | A.While (cond, _) when reads_cnt0 cond -> counter_loop := true
      | A.For (_, _, hi, _) when reads_cnt0 hi -> counter_loop := true
      | _ -> ())
    ~on_expr:(fun _ -> ());
  List.iter
    (fun (pname, k) ->
      if not (List.mem (pname, k) !bound) then
        diags :=
          err ~id:"TV03" ~kernel:cons.K.kname
            "work-dependent parameter %s is not fetched from buffer offset \
             %d"
            pname k
          :: !diags)
    roles;
  if not !counter_loop then
    diags :=
      err ~id:"TV03" ~kernel:cons.K.kname
        "no fetch loop bounded by the item counter (buffered items would \
         not all be processed)"
      :: !diags;
  !diags

(* ------------------------------------------------------------------ *)
(* TV04: buffer-footprint preservation                                  *)
(* ------------------------------------------------------------------ *)

let check_footprint ~(parent : string) ~(out : K.Program.t) ~(nvars : int) :
    Diag.t list =
  let diags = ref [] in
  let bad ~kernel fmt = Printf.ksprintf (fun m ->
      diags := err ~id:"TV04" ~kernel "%s" m :: !diags) fmt
  in
  let vet_index ~kernel ~what base idx =
    match base with
    | A.Var v when is_buf_name v.A.name -> (
      match item_offset ~nvars idx with
      | Some k when k >= 0 && k < nvars -> ()
      | Some k ->
        bad ~kernel
          "%s of %s at offset %d outside the item interval [0,%d)" what
          v.A.name k nvars
      | None ->
        bad ~kernel
          "%s of %s with an index not of the form item*%d+k (footprint \
           not provably per-item)"
          what v.A.name nvars)
    | A.Var v when is_cnt_name v.A.name -> (
      match idx with
      | A.Const (V.Vint 0) -> ()
      | _ -> bad ~kernel "%s of counter %s at a nonzero index" what v.A.name)
    | _ -> ()
  in
  List.iter
    (fun k ->
      let kernel = k.K.kname in
      iter_kernel k
        ~on_stmt:(fun s ->
          match s with
          | A.Store (b, idx, _) -> vet_index ~kernel ~what:"store" b idx
          | A.Atomic { buf; idx; _ } -> vet_index ~kernel ~what:"atomic" buf idx
          | A.Malloc { dst; count; _ } when is_buf_name dst.A.name -> (
            match count with
            | A.Binop (A.Mul, _, A.Const (V.Vint nv)) when nv = nvars -> ()
            | _ ->
              bad ~kernel
                "allocation of %s does not request capacity*%d cells"
                dst.A.name nvars)
          | A.Malloc { dst; count; _ } when is_cnt_name dst.A.name -> (
            match count with
            | A.Const (V.Vint 1) -> ()
            | _ ->
              bad ~kernel "allocation of counter %s is not one cell"
                dst.A.name)
          | _ -> ())
        ~on_expr:(fun e ->
          match e with
          | A.Load (b, idx) -> vet_index ~kernel ~what:"load" b idx
          | _ -> ()))
    (K.Program.kernels out);
  ignore parent;
  !diags

(* ------------------------------------------------------------------ *)
(* TV05: pragma-contract conformance                                    *)
(* ------------------------------------------------------------------ *)

(* [host] is the kernel holding the designated-thread launch (the
   transformed parent, or the consolidated kernel when recursive). *)
let check_contract ~(host : K.t) ~(cons : string)
    ~(gran : Pragma.granularity) : Diag.t list =
  let diags = ref [] in
  let miss fmt = Printf.ksprintf (fun m ->
      diags := err ~id:"TV05" ~kernel:host.K.kname "%s" m :: !diags) fmt
  in
  let gname = Pragma.granularity_to_string gran in
  (* Allocation scope. *)
  let want_scope =
    match gran with
    | Pragma.Warp -> A.Per_warp
    | Pragma.Block -> A.Per_block
    | Pragma.Grid -> A.Per_grid
  in
  let scope_ok = ref true in
  let barrier = ref (gran = Pragma.Warp) (* implicit in warp lockstep *) in
  let guard = ref false in
  let clamp = ref false in
  let launch_cons = ref false in
  let want_special =
    match gran with
    | Pragma.Warp -> A.Lane_id
    | Pragma.Block | Pragma.Grid -> A.Thread_idx
  in
  iter_kernel host
    ~on_stmt:(fun s ->
      match s with
      | A.Malloc { dst; scope; _ }
        when is_buf_name dst.A.name || is_cnt_name dst.A.name ->
        if scope <> want_scope then scope_ok := false
      | A.Syncthreads when gran = Pragma.Block -> barrier := true
      | A.Grid_barrier when gran = Pragma.Grid -> barrier := true
      | A.If
          ( A.Binop
              ( A.And,
                A.Binop (A.Eq, A.Special sp, A.Const (V.Vint 0)),
                A.Binop (A.Gt, A.Load (cnt, A.Const (V.Vint 0)), A.Const (V.Vint 0))
              ),
            then_b,
            _ )
        when sp = want_special && var_named is_cnt_name cnt ->
        guard := true;
        A.iter_block then_b
          ~on_stmt:(fun s' ->
            match s' with
            | A.Store (c, A.Const (V.Vint 0), A.Binop (A.Min, _, _))
              when var_named is_cnt_name c ->
              clamp := true
            | A.Launch { callee; pragma = None; _ } when callee = cons ->
              launch_cons := true
            | _ -> ())
          ~on_expr:(fun _ -> ())
      | _ -> ())
    ~on_expr:(fun _ -> ());
  if not !scope_ok then
    miss "consolidation buffers are not allocated at %s scope" gname;
  if not !barrier then
    miss "missing the %s-level barrier before the designated launch" gname;
  if not !guard then
    miss
      "missing the designated-thread guard (%s == 0 && counter > 0) for \
       granularity %s"
      (Dpc_kir.Pp.special_to_string want_special)
      gname
  else begin
    if not !clamp then
      miss
        "designated branch does not clamp the counter to the buffer \
         capacity (overflowed counts would over-read the buffer)";
    if not !launch_cons then
      miss "designated branch does not launch the consolidated kernel %s"
        cons
  end;
  !diags

(* ------------------------------------------------------------------ *)
(* TV06: lint-clean preservation                                        *)
(* ------------------------------------------------------------------ *)

(* Run the PR 4 linter with the strict-finalize hook masked: TV runs
   from inside that very hook, and the sub-lint must report, not
   raise. *)
let lint_errors ?cfg (prog : K.Program.t) : Diag.t list =
  let saved = K.finalize_check () in
  K.set_finalize_check (fun _ -> ());
  Fun.protect
    ~finally:(fun () -> K.set_finalize_check saved)
    (fun () -> List.filter Diag.is_error (Check.check_program ?cfg prog))

let check_lint_preserved ?cfg ~(parent : string) ~(orig : K.Program.t)
    (out : K.Program.t) : Diag.t list =
  if lint_errors ?cfg orig <> [] then []
  else
    List.map
      (fun (d : Diag.t) ->
        err ~id:"TV06" ~kernel:d.Diag.kernel
          "transform of lint-clean %s introduced %s: %s" parent d.Diag.id
          d.Diag.message)
      (lint_errors ?cfg out)

(* ------------------------------------------------------------------ *)
(* Drivers                                                              *)
(* ------------------------------------------------------------------ *)

(** Validate one {!Dpc.Transform.apply} result against its input.
    [parent] and [orig] are the transform's arguments; kernels named by
    [r] are looked up in [r.program]. *)
let check ?cfg ~(parent : string) ~(orig : K.Program.t) (r : T.result) :
    Diag.t list =
  let out = r.T.program in
  let diags = ref [] in
  let add ds = diags := ds @ !diags in
  let meta fmt = Printf.ksprintf (fun m ->
      diags := err ~id:"TV07" ~kernel:parent "%s" m :: !diags) fmt
  in
  let fresh =
    r.T.cons_kernel :: (match r.T.post_kernel with Some p -> [ p ] | None -> [])
  in
  let rebuilt = if r.T.recursive then [] else [ parent ] in
  add (check_kernel_set ~parent ~orig ~out ~fresh ~rebuilt);
  if not (K.Program.mem out r.T.entry) then
    meta "entry kernel %s does not exist in the transformed program"
      r.T.entry;
  (match r.T.post_kernel with
  | Some p when not (K.Program.mem out p) ->
    meta "promised postwork kernel %s does not exist" p
  | _ -> ());
  (* Everything further needs the original launch site and the
     consolidated kernel; report shape mismatches instead of raising. *)
  match
    ( K.Program.find_opt orig parent,
      K.Program.find_opt out r.T.cons_kernel )
  with
  | None, _ ->
    meta "original program has no kernel %s" parent;
    Diag.sort !diags
  | _, None ->
    meta "consolidated kernel %s does not exist" r.T.cons_kernel;
    Diag.sort !diags
  | Some p0, Some cons -> (
    match T.find_annotated_launch p0 with
    | exception T.Unsupported m ->
      meta "original parent has no valid annotated launch: %s" m;
      Diag.sort !diags
    | launch, pragma ->
      let nvars = List.length pragma.Pragma.work in
      if nvars <> r.T.nvars then
        meta "result claims %d buffered variables; the work clause has %d"
          r.T.nvars nvars;
      (match
         (List.rev cons.K.params : A.param list)
       with
      | cp :: bp :: _
        when bp.A.pname = "__cons_buf" && cp.A.pname = "__cons_cnt" ->
        ()
      | _ ->
        meta
          "consolidated kernel %s does not end with the __cons_buf, \
           __cons_cnt parameters"
          r.T.cons_kernel);
      let host_name = if r.T.recursive then r.T.cons_kernel else parent in
      (match K.Program.find_opt out host_name with
      | None -> () (* already reported by TV01/TV07 *)
      | Some host ->
        add (check_insertions ~host ~callee:launch.A.callee ~nvars);
        add (check_contract ~host ~cons:r.T.cons_kernel ~gran:r.T.granularity));
      (match K.Program.find_opt orig launch.A.callee with
      | None -> meta "original program has no child kernel %s" launch.A.callee
      | Some child when List.length child.K.params = List.length launch.A.args
        ->
        let roles = param_roles ~work:pragma.Pragma.work launch child in
        add (check_fetch ~cons ~roles ~nvars)
      | Some _ ->
        meta "launch of %s: argument count mismatch" launch.A.callee);
      add (check_footprint ~parent ~out ~nvars);
      add (check_lint_preserved ?cfg ~parent ~orig out);
      Diag.sort !diags)

(** Validate one {!Dpc.Free_launch.apply} result: the kernel set is
    preserved exactly (the parent is rebuilt in place, nothing is added
    or removed), the rewritten parent launches nothing annotated any
    more, and lint-cleanliness survives the inlining. *)
let check_free_launch ?cfg ~(parent : string) ~(orig : K.Program.t)
    (r : Fl.result) : Diag.t list =
  let out = r.Fl.program in
  let diags = ref [] in
  let add ds = diags := ds @ !diags in
  add (check_kernel_set ~parent ~orig ~out ~fresh:[] ~rebuilt:[ parent ]);
  if not (K.Program.mem out r.Fl.entry) then
    diags :=
      err ~id:"TV07" ~kernel:parent
        "entry kernel %s does not exist in the transformed program"
        r.Fl.entry
      :: !diags;
  (match K.Program.find_opt out parent with
  | None -> ()
  | Some p' ->
    if
      List.exists
        (fun (l : A.launch) -> l.A.pragma <> None)
        (A.collect_launches p'.K.body)
    then
      diags :=
        err ~id:"TV02" ~kernel:parent
          "free launch left an annotated device launch in place (child \
           work would run twice)"
        :: !diags);
  add (check_lint_preserved ?cfg ~parent ~orig out);
  Diag.sort !diags
