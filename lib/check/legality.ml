(** Launch and consolidation legality (LC01–LC12).

    A whole-program pass over every device-side [Launch] node.  The first
    group holds for any launch:

    - [LC01] (error): the callee is not a kernel of the program.
    - [LC02] (error): argument count differs from the callee's parameter
      count.
    - [LC03] (error): a constant block size outside
      [[1, max_threads_per_block]] of the device.
    - [LC04] (error): a constant grid size outside
      [[1, max_grid_blocks]].

    The second group vets [#pragma dp] annotations against the
    consolidation transform's source contract (the checks mirror
    {!Dpc.Transform}'s [Unsupported] conditions, so a program that lints
    clean will not be rejected mid-transformation), plus sizing sanity:

    - [LC05] (error): a [work] variable is not a launch argument.
    - [LC06] (error): a uniform (non-work) launch argument reads a work
      variable — the capture would miss its per-thread value.
    - [LC07] (error): [perBufferSize] names a variable that is never
      materialized in the annotated kernel (not a parameter and never
      assigned), so the buffering code could not read it.
    - [LC08] (error): [perBufferSize] and [totalSize] are inconsistent —
      a single consolidation buffer already overflows the pool.
    - [LC09] (error): a [threads] clause outside
      [[1, max_threads_per_block]].
    - [LC10] (error): a [blocks] clause outside [[1, max_grid_blocks]].
    - [LC11] (error): the annotated child kernel contains [return]
      (consolidated items share the fetch loop; an early exit would drop
      the remaining items).
    - [LC12] (error): a solo-thread child (launched [<<<1, 1>>>]) uses
      [__syncthreads]; after consolidation each item is one thread of a
      cooperative block, so the barrier changes meaning. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module P = Dpc_kir.Pragma
module Cfg = Dpc_gpu.Config

(* Bytes per buffered work item: each work variable is one int slot. *)
let bytes_per_int = 4

(* Names materialized in a kernel: parameters and every binder. *)
let materialized (k : K.t) =
  let names = Hashtbl.create 16 in
  List.iter (fun (p : A.param) -> Hashtbl.replace names p.A.pname ()) k.K.params;
  List.iter
    (A.iter_stmt
       ~on_stmt:(fun s ->
         match s with
         | A.Let (v, _) | A.For (v, _, _, _) | A.Malloc { dst = v; _ } ->
           Hashtbl.replace names v.A.name ()
         | A.Atomic { old = Some v; _ } -> Hashtbl.replace names v.A.name ()
         | _ -> ())
       ~on_expr:(fun _ -> ()))
    k.K.body;
  names

let solo_thread ~grid ~block =
  match (Expr_util.const_int grid, Expr_util.const_int block) with
  | Some 1, Some 1 -> true
  | _ -> false

let has_return (k : K.t) =
  let f = ref false in
  A.iter_block k.K.body
    ~on_stmt:(function A.Return -> f := true | _ -> ())
    ~on_expr:(fun _ -> ());
  !f

let check_kernel ?(cfg = Cfg.k20c) (prog : K.Program.t option) (k : K.t) :
    Diag.t list =
  let diags = ref [] in
  let emit ?line ~id ~path fmt =
    let line = match line with Some l when l > 0 -> l | _ -> k.K.line in
    Printf.ksprintf
      (fun message ->
        diags :=
          Diag.make ~id ~severity:Diag.Error ~kernel:k.K.kname ~path ~line
            "%s" message
          :: !diags)
      fmt
  in
  let mat = lazy (materialized k) in
  let check_launch path (l : A.launch) =
    let callee =
      match prog with
      | None -> None
      | Some prog -> (
        match K.Program.find_opt prog l.A.callee with
        | Some c -> Some c
        | None ->
          emit ~id:"LC01" ~path "launch of unknown kernel %s" l.A.callee;
          None)
    in
    (match callee with
    | Some c when List.length l.A.args <> List.length c.K.params ->
      emit ~id:"LC02" ~path
        "launch of %s passes %d arguments; the kernel declares %d \
         parameters"
        l.A.callee
        (List.length l.A.args)
        (List.length c.K.params)
    | _ -> ());
    (match Expr_util.const_int ~warp_size:cfg.Cfg.warp_size l.A.block with
    | Some b when b < 1 || b > cfg.Cfg.max_threads_per_block ->
      emit ~id:"LC03" ~path
        "block size %d outside [1, %d] of device %s" b
        cfg.Cfg.max_threads_per_block cfg.Cfg.name
    | _ -> ());
    (match Expr_util.const_int ~warp_size:cfg.Cfg.warp_size l.A.grid with
    | Some g when g < 1 || g > cfg.Cfg.max_grid_blocks ->
      emit ~id:"LC04" ~path "grid size %d outside [1, %d] of device %s" g
        cfg.Cfg.max_grid_blocks cfg.Cfg.name
    | _ -> ());
    match l.A.pragma with
    | None -> ()
    | Some p ->
      let line = p.P.line in
      let arg_var_names =
        List.filter_map
          (fun (a : A.expr) ->
            match a with A.Var v -> Some v.A.name | _ -> None)
          l.A.args
      in
      List.iter
        (fun w ->
          if not (List.mem w arg_var_names) then
            emit ~line ~id:"LC05" ~path
              "work variable %s is not a launch argument" w)
        p.P.work;
      List.iter
        (fun (a : A.expr) ->
          let is_work_var =
            match a with
            | A.Var v -> List.mem v.A.name p.P.work
            | _ -> false
          in
          if not is_work_var then
            A.iter_expr
              (fun x ->
                match x with
                | A.Var v when List.mem v.A.name p.P.work ->
                  emit ~line ~id:"LC06" ~path
                    "uniform launch argument reads work variable %s; list \
                     it in the work clause or hoist it"
                    v.A.name
                | _ -> ())
              a)
        l.A.args;
      (match p.P.per_buffer_size with
      | Some (P.Size_var v) when not (Hashtbl.mem (Lazy.force mat) v) ->
        emit ~line ~id:"LC07" ~path
          "perBufferSize names %s, which is never materialized in kernel \
           %s"
          v k.K.kname
      | Some (P.Size_const n) when n < 1 ->
        emit ~line ~id:"LC08" ~path "perBufferSize %d is not positive" n
      | _ -> ());
      (match (p.P.per_buffer_size, p.P.total_size) with
      | Some (P.Size_const items), Some total
        when items > 0
             && items * Int.max 1 (List.length p.P.work) * bytes_per_int
                > total ->
        emit ~line ~id:"LC08" ~path
          "one consolidation buffer (%d items x %d work vars x %d bytes) \
           exceeds totalSize %d"
          items (List.length p.P.work) bytes_per_int total
      | _ -> ());
      (match p.P.threads with
      | Some t when t < 1 || t > cfg.Cfg.max_threads_per_block ->
        emit ~line ~id:"LC09" ~path
          "threads(%d) outside [1, %d] of device %s" t
          cfg.Cfg.max_threads_per_block cfg.Cfg.name
      | _ -> ());
      (match p.P.blocks with
      | Some b when b < 1 || b > cfg.Cfg.max_grid_blocks ->
        emit ~line ~id:"LC10" ~path
          "blocks(%d) outside [1, %d] of device %s" b cfg.Cfg.max_grid_blocks
          cfg.Cfg.name
      | _ -> ());
      (match callee with
      | Some c ->
        if has_return c then
          emit ~line ~id:"LC11" ~path
            "annotated child kernel %s contains return; consolidated \
             items share the fetch loop and cannot exit early"
            c.K.kname;
        if
          solo_thread ~grid:l.A.grid ~block:l.A.block
          && A.has_syncthreads_block c.K.body
        then
          emit ~line ~id:"LC12" ~path
            "solo-thread child kernel %s uses __syncthreads; after \
             consolidation each work item is a single thread of a \
             cooperative block"
            c.K.kname
      | None -> ())
  in
  let rec stmt path (s : A.stmt) =
    match s with
    | A.Launch l -> check_launch path l
    | A.If (_, a, b) ->
      List.iteri (fun i s -> stmt (Expr_util.sub path "then" i) s) a;
      List.iteri (fun i s -> stmt (Expr_util.sub path "else" i) s) b
    | A.While (_, body) ->
      List.iteri (fun i s -> stmt (Expr_util.sub path "while" i) s) body
    | A.For (_, _, _, body) ->
      List.iteri (fun i s -> stmt (Expr_util.sub path "for" i) s) body
    | A.Let _ | A.Store _ | A.Shared_store _ | A.Atomic _ | A.Malloc _
    | A.Free _ | A.Syncthreads | A.Device_sync | A.Grid_barrier | A.Return
      ->
      ()
  in
  List.iteri (fun i s -> stmt (Expr_util.top i) s) k.K.body;
  Diag.sort !diags

let check ?cfg (prog : K.Program.t) : Diag.t list =
  List.concat_map (check_kernel ?cfg (Some prog)) (K.Program.kernels prog)
  |> Diag.sort
