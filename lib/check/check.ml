(** The static kernel verifier, assembled.

    [check_kernel] runs the three kernel-local analyses — barrier
    divergence ({!Uniformity}), shared-memory races ({!Races}), bounds and
    use-before-def ({!Bounds}) — and, when a program context is supplied,
    the per-launch legality pass ({!Legality}).  [check_program] finalizes
    and vets every kernel of a program.

    {b Strict mode.}  {!install_strict_finalize} hooks the verifier into
    {!Dpc_kir.Kernel.finalize} so that every kernel is vetted the moment
    it is finalized — before the interpreter can touch it.  Error-severity
    findings raise {!Check_error}; warnings pass (the CLI's [--strict]
    flag separately refuses warnings at lint time).  The hook is
    kernel-local: launch legality needs the whole program and is only run
    by [check_program].  It is also domain-local — see {!with_strict}. *)

module K = Dpc_kir.Kernel
module Cfg = Dpc_gpu.Config

exception Check_error of Diag.t list

let () =
  Printexc.register_printer (function
    | Check_error ds ->
      Some
        (Printf.sprintf "Check_error:\n%s"
           (String.concat "\n" (List.map (Diag.to_string ?file:None) ds)))
    | _ -> None)

(** All diagnostics for one kernel, sorted.  [prog] enables the launch
    legality checks (callee resolution needs the program). *)
let check_kernel ?(cfg = Cfg.k20c) ?prog (k : K.t) : Diag.t list =
  if not (K.is_finalized k) then K.finalize k;
  Uniformity.check k
  @ Races.check k
  @ Bounds.check ~warp_size:cfg.Cfg.warp_size k
  @ Legality.check_kernel ~cfg prog k
  |> Diag.sort

(** Finalize and vet every kernel of a program. *)
let check_program ?(cfg = Cfg.k20c) (prog : K.Program.t) : Diag.t list =
  K.Program.finalize prog;
  List.concat_map
    (fun k -> check_kernel ~cfg ~prog k)
    (K.Program.kernels prog)
  |> Diag.sort

(* ------------------------------------------------------------------ *)
(* Strict finalize hook                                                 *)
(* ------------------------------------------------------------------ *)

let strict_hook cfg (k : K.t) =
  let errors =
    List.filter Diag.is_error
      (Uniformity.check k @ Races.check k
      @ Bounds.check ~warp_size:cfg.Cfg.warp_size k)
  in
  if errors <> [] then raise (Check_error (Diag.sort errors))

let install_strict_finalize ?(cfg = Cfg.k20c) () =
  K.set_finalize_check (strict_hook cfg)

let uninstall_strict_finalize () = K.set_finalize_check (fun _ -> ())

(** Run [f] with the strict hook installed, restoring the previous hook
    on the way out.  The hook is domain-local: [f]'s own finalizations
    are vetted, but work [f] hands to other domains is not — a parallel
    executor must call [with_strict] inside each worker task (as
    [Dpc_engine.Session.run_all] does).  Because the hook state is
    per-domain, concurrent [with_strict] scopes on different domains
    save and restore independently. *)
let with_strict ?cfg f =
  let saved = K.finalize_check () in
  install_strict_finalize ?cfg ();
  Fun.protect ~finally:(fun () -> K.set_finalize_check saved) f

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let summary (ds : Diag.t list) =
  let e = List.length (List.filter Diag.is_error ds) in
  let w = List.length ds - e in
  Printf.sprintf "%d error%s, %d warning%s" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")

let print_report ?file oc (ds : Diag.t list) =
  List.iter
    (fun d -> Printf.fprintf oc "%s\n" (Diag.to_string ?file d))
    (Diag.sort ds)

let report_json (ds : Diag.t list) = Diag.report_to_json (Diag.sort ds)
