(** Strict-mode composition (Dpc_check v2).

    PR 4's strict mode vetted every kernel at finalize time
    ({!Check.install_strict_finalize}).  v2 adds two more domain-local
    hooks to the same scope:

    - {!Dpc.Transform.set_apply_check} / {!Dpc.Free_launch.set_apply_check}
      run translation validation ({!Tv}) over every original/transformed
      program pair the moment a transform produces it;
    - the {!Bcverify} pass is exposed here for the engine to run over
      freshly lowered (or disk-loaded) bytecode streams.

    All hooks are per-domain, exactly like the finalize hook: a parallel
    executor installs them inside each worker task (see
    [Dpc_engine.Session]).  Error-severity findings raise
    {!Check.Check_error}. *)

module K = Dpc_kir.Kernel
module T = Dpc.Transform
module Fl = Dpc.Free_launch

let fail_on_errors diags =
  match List.filter Diag.is_error diags with
  | [] -> ()
  | errors -> raise (Check.Check_error (Diag.sort errors))

let install ?cfg () =
  Check.install_strict_finalize ?cfg ();
  T.set_apply_check (fun ~parent orig r ->
      fail_on_errors (Tv.check ?cfg ~parent ~orig r));
  Fl.set_apply_check (fun ~parent orig r ->
      fail_on_errors (Tv.check_free_launch ?cfg ~parent ~orig r))

let uninstall () =
  Check.uninstall_strict_finalize ();
  T.set_apply_check (fun ~parent:_ _ _ -> ());
  Fl.set_apply_check (fun ~parent:_ _ _ -> ())

(** Run [f] with the full v2 strict scope installed — the finalize
    linter plus both translation-validation hooks — restoring every
    previous hook on the way out (all per-domain; see
    {!Check.with_strict}). *)
let with_strict ?cfg f =
  let saved_fin = K.finalize_check () in
  let saved_t = T.apply_check () in
  let saved_fl = Fl.apply_check () in
  install ?cfg ();
  Fun.protect
    ~finally:(fun () ->
      K.set_finalize_check saved_fin;
      T.set_apply_check saved_t;
      Fl.set_apply_check saved_fl)
    f

(** Statically verify every bytecode stream of every kernel of [prog]
    ({!Bcverify}); raises {!Check.Check_error} on findings.  Used by the
    engine at prepare time under strict mode. *)
let verify_bytecode (prog : K.Program.t) =
  fail_on_errors (Bcverify.check prog)
