(** Structured diagnostics emitted by the kernel verifier.

    Every finding carries a stable catalog id (the warning catalog is
    documented in DESIGN.md §7), a severity, the kernel it was found in, a
    statement path such as [body[3]/if/then[0]] locating the offending
    node, and — when the front end recorded one — a source line.

    Severities: [Error] marks code the simulator (or a real GPU) could
    execute incorrectly (divergent barriers, definite out-of-bounds
    accesses, illegal launch configurations); [Warning] marks
    may-happen findings of the conservative analyses (possible races,
    possible overflows, uninitialized reads).  [dpcc --check] exits
    non-zero on errors; [--strict] promotes every diagnostic to fatal. *)

type severity = Error | Warning

type t = {
  id : string;  (** catalog id, e.g. ["BD01"] *)
  severity : severity;
  kernel : string;
  path : string;  (** statement path within the kernel body *)
  line : int;  (** source line when known, else 0 *)
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let is_error d = d.severity = Error

let make ~id ~severity ~kernel ?(path = "") ?(line = 0) fmt =
  Printf.ksprintf
    (fun message -> { id; severity; kernel; path; line; message })
    fmt

(** [file] prefixes the location when the program came from a file. *)
let to_string ?file (d : t) =
  let loc =
    match (file, d.line) with
    | Some f, l when l > 0 -> Printf.sprintf "%s:%d: " f l
    | Some f, _ -> Printf.sprintf "%s: " f
    | None, l when l > 0 -> Printf.sprintf "line %d: " l
    | None, _ -> ""
  in
  let where =
    if d.path = "" then d.kernel else Printf.sprintf "%s at %s" d.kernel d.path
  in
  Printf.sprintf "%s%s[%s] kernel %s: %s" loc
    (severity_to_string d.severity)
    d.id where d.message

let to_json (d : t) : Dpc_prof.Json.t =
  Dpc_prof.Json.Obj
    [
      ("id", Dpc_prof.Json.String d.id);
      ("severity", Dpc_prof.Json.String (severity_to_string d.severity));
      ("kernel", Dpc_prof.Json.String d.kernel);
      ("path", Dpc_prof.Json.String d.path);
      ("line", Dpc_prof.Json.Int d.line);
      ("message", Dpc_prof.Json.String d.message);
    ]

let report_to_json (ds : t list) : Dpc_prof.Json.t =
  Dpc_prof.Json.Obj
    [
      ("schema", Dpc_prof.Json.String "dpc-check-v1");
      ( "errors",
        Dpc_prof.Json.Int (List.length (List.filter is_error ds)) );
      ( "warnings",
        Dpc_prof.Json.Int
          (List.length (List.filter (fun d -> not (is_error d)) ds)) );
      ("diagnostics", Dpc_prof.Json.List (List.map to_json ds));
    ]

(** Stable presentation order: kernel, then path, then id. *)
let sort (ds : t list) =
  List.sort
    (fun a b ->
      match String.compare a.kernel b.kernel with
      | 0 -> (
        match String.compare a.path b.path with
        | 0 -> String.compare a.id b.id
        | c -> c)
      | c -> c)
    ds
