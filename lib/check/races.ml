(** Shared-memory race detection (SM01–SM02).

    The model is {e phase-based}: a kernel body is cut into phases at its
    barriers ([__syncthreads] and the grid barrier), walking the
    statement tree in program order.  Accesses to the same shared array by
    different threads are unordered within a phase, so any same-phase
    pair touching a common slot with at least one write is a potential
    race.  A loop whose body contains a barrier is walked twice so that
    accesses at the tail of iteration [i] meet accesses at the head of
    iteration [i+1] in one phase (the wrap-around race of a mis-placed
    barrier).

    Two suppression rules keep the everyday [a[tid] = ...] patterns
    quiet:

    - {b thread-distinct indexes}: if both accesses use the {e same}
      index expression and that expression is provably injective in
      [threadIdx.x] ({!Expr_util.block_distinct}), distinct threads touch
      distinct slots, and same-thread accesses are program-ordered;
    - {b designated-thread guards}: two accesses under the same
      [threadIdx.x == c] guard execute on one thread and are ordered.

    Diagnostics:

    - [SM01] (error): every thread writes one block-uniform slot with
      thread-dependent values ([sh[0] = tid]) — a definite
      write/write race.
    - [SM02] (warning): same-phase accesses that may touch a common slot
      (index expressions not provably disjoint), at least one a write;
      or a lone write whose index is thread-dependent but not provably
      injective ([sh[tid % 2] = x]).

    The walk is linear over branches (both arms of an [if] land in the
    current phase), which is exact for the race question: different
    threads may take different arms concurrently. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module U = Uniformity

type access = {
  array : string;
  idx : A.expr;
  write : bool;
  value : A.expr option;  (** stored expression, for writes *)
  guard : string option;  (** innermost designated-thread guard key *)
  path : string;
}

(* Split a kernel body into barrier-delimited phases of shared accesses. *)
let phases_of (k : K.t) : access list list =
  let phases = ref [] and cur = ref [] in
  let new_phase () =
    phases := List.rev !cur :: !phases;
    cur := []
  in
  let add a = cur := a :: !cur in
  (* reads inside an arbitrary expression *)
  let reads ~guard ~path (e : A.expr) =
    A.iter_expr
      (fun x ->
        match x with
        | A.Shared_load (array, idx) ->
          add { array; idx; write = false; value = None; guard; path }
        | _ -> ())
      e
  in
  let has_barrier_block body =
    let f = ref false in
    A.iter_block body
      ~on_stmt:(function
        | A.Syncthreads | A.Grid_barrier -> f := true
        | _ -> ())
      ~on_expr:(fun _ -> ());
    !f
  in
  let rec stmt guard path (s : A.stmt) =
    match s with
    | A.Syncthreads | A.Grid_barrier -> new_phase ()
    | A.Shared_store (array, idx, value) ->
      reads ~guard ~path idx;
      reads ~guard ~path value;
      add { array; idx; write = true; value = Some value; guard; path }
    | A.Let (_, e) | A.Free e -> reads ~guard ~path e
    | A.Store (b, i, v) ->
      reads ~guard ~path b;
      reads ~guard ~path i;
      reads ~guard ~path v
    | A.If (c, a, b) ->
      reads ~guard ~path c;
      let guard' =
        match Expr_util.single_thread_guard c with
        | Some _ as g -> g
        | None -> guard
      in
      List.iteri (fun i s -> stmt guard' (Expr_util.sub path "then" i) s) a;
      (* the else-arm is NOT under the designated-thread guard *)
      List.iteri (fun i s -> stmt guard (Expr_util.sub path "else" i) s) b
    | A.While (c, body) ->
      reads ~guard ~path c;
      let visit () =
        List.iteri
          (fun i s -> stmt guard (Expr_util.sub path "while" i) s)
          body
      in
      visit ();
      if has_barrier_block body then visit ()
    | A.For (_, lo, hi, body) ->
      reads ~guard ~path lo;
      reads ~guard ~path hi;
      let visit () =
        List.iteri (fun i s -> stmt guard (Expr_util.sub path "for" i) s) body
      in
      visit ();
      if has_barrier_block body then visit ()
    | A.Atomic { buf; idx; operand; compare; _ } ->
      reads ~guard ~path buf;
      reads ~guard ~path idx;
      reads ~guard ~path operand;
      Option.iter (reads ~guard ~path) compare
    | A.Launch l ->
      reads ~guard ~path l.A.grid;
      reads ~guard ~path l.A.block;
      List.iter (reads ~guard ~path) l.A.args
    | A.Malloc { count; _ } -> reads ~guard ~path count
    | A.Device_sync | A.Return -> ()
  in
  List.iteri (fun i s -> stmt None (Expr_util.top i) s) k.K.body;
  new_phase ();
  List.rev !phases

(* Indices provably never equal: distinct constants. *)
let disjoint a b =
  match (Expr_util.const_int a, Expr_util.const_int b) with
  | Some x, Some y -> x <> y
  | _ -> false

let check (k : K.t) : Diag.t list =
  if k.K.shared = [] then []
  else begin
    let levels = U.infer k in
    let thread_dep e =
      U.rank (U.expr_level levels e) > U.rank U.Block_uniform
    in
    let diags = ref [] in
    let emit ~id ~severity ~path fmt =
      Printf.ksprintf
        (fun message ->
          diags :=
            Diag.make ~id ~severity ~kernel:k.K.kname ~path ~line:k.K.line
              "%s" message
            :: !diags)
        fmt
    in
    (* A lone write executed by colliding threads races with itself. *)
    let self_race (a : access) =
      if a.write && a.guard = None && not (Expr_util.block_distinct a.idx)
      then
        if thread_dep a.idx then
          emit ~id:"SM02" ~severity:Diag.Warning ~path:a.path
            "write to %s: index is thread-dependent but not provably \
             distinct per thread; threads may collide on one slot"
            a.array
        else if
          match a.value with Some v -> thread_dep v | None -> false
        then
          emit ~id:"SM01" ~severity:Diag.Error ~path:a.path
            "every thread writes the same slot of %s with \
             thread-dependent values: write/write race"
            a.array
    in
    (* A same-phase pair on one array, at least one write. *)
    let pair_race (a : access) (b : access) =
      if a.array = b.array && (a.write || b.write) then
        if a.guard <> None && a.guard = b.guard then () (* same thread *)
        else if Expr_util.equal a.idx b.idx then begin
          (* same index expression: safe only when thread-distinct *)
          if not (Expr_util.block_distinct a.idx) then
            (* the colliding-write cases are already reported by
               [self_race]; here catch cross-access read/write pairs
               like a designated-thread write vs an unguarded read *)
            if not (a.write && b.write) then
              emit ~id:"SM02" ~severity:Diag.Warning ~path:b.path
                "unsynchronized read/write of one slot of %s in the same \
                 barrier phase (accesses at %s and %s)"
                a.array a.path b.path
        end
        else if not (disjoint a.idx b.idx) then
          emit ~id:"SM02" ~severity:Diag.Warning ~path:b.path
            "accesses to %s with indexes %s may overlap across threads in \
             the same barrier phase (accesses at %s and %s)"
            a.array
            (if a.write && b.write then "(write/write)" else "(read/write)")
            a.path b.path
    in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter (pair_race a) rest;
        pairs rest
    in
    List.iter
      (fun phase ->
        List.iter self_race phase;
        pairs phase)
      (phases_of k);
    (* A pair inside a loop is visited twice; collapse duplicates. *)
    List.sort_uniq compare !diags |> Diag.sort
  end
