(** The workload-consolidation code transformations (Section IV).

    Given a parent kernel containing a [#pragma dp]-annotated device-side
    launch of a child kernel, this module generates:

    - the {e consolidated child kernel} ([<child>_cons_<gran>]): fetches
      buffered work items and processes them with the original child code
      (Section IV.C, "Child kernel transformation"; the three cases —
      solo-thread, solo-block, multi-block — follow
      {!Config_select.child_shape});
    - the {e transformed parent}: consolidation-buffer allocation before
      the prework, buffer insertions replacing the launch, the granularity's
      barrier (implicit warp lockstep / [__syncthreads] / the custom grid
      barrier), and a designated-thread launch of the consolidated child
      (Section IV.C, "Parent kernel transformation");
    - for grid-level consolidation with postwork, the {e consolidated
      postwork kernel} ([<parent>_post_grid]) launched by the last block
      after [cudaDeviceSynchronize] (the deadlock-avoidance design of
      Section IV.C).

    Recursive kernels (parent = child) get both stages applied to the one
    kernel (Section IV.C, Fig. 3): the consolidated kernel fetches items
    from its input buffer, re-buffers the work its items generate into a
    fresh buffer, and launches itself on that buffer for the next level.

    {2 Source contract}

    The transforms accept the paper's basic-DP template (Fig. 1):

    - exactly one annotated launch per parent kernel;
    - every [work] variable appears verbatim as a launch argument, and the
      remaining (uniform) arguments do not read work variables;
    - the child kernel does not [return];
    - if the parent has postwork (statements after a top-level
      [cudaDeviceSynchronize]), the postwork may only read work variables,
      uniform kernel parameters and values it defines itself, and may not
      use thread/block indices — this is what lets it be re-executed per
      buffered item (the paper handles the same dependences by "duplicating
      in the postwork the relevant portions of prework").

    Violations raise {!Unsupported} with an explanation. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module V = Dpc_kir.Value
module Pragma = Dpc_kir.Pragma
module R = Dpc_kir.Rewrite
module Cfg = Dpc_gpu.Config
module Cs = Config_select

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Reserved names introduced by the transforms. *)
let buf_param = "__cons_buf"
let cnt_param = "__cons_cnt"
let buf_next = "__cons_buf_next"
let cnt_next = "__cons_cnt_next"
let pos_name = "__cons_pos"
let it_name = "__cons_it"
let pi_name = "__cons_pi"

let cons_name base gran =
  Printf.sprintf "%s_cons_%s" base (Pragma.granularity_to_string gran)

let post_kernel_name base gran =
  Printf.sprintf "%s_post_%s" base (Pragma.granularity_to_string gran)

let vint n = A.Const (V.Vint n)
let evar name = A.Var (A.var name)
let ( +: ) a b = A.Binop (A.Add, a, b)
let ( *: ) a b = A.Binop (A.Mul, a, b)
let ( <: ) a b = A.Binop (A.Lt, a, b)
let ( >: ) a b = A.Binop (A.Gt, a, b)
let ( ==: ) a b = A.Binop (A.Eq, a, b)
let ( &&: ) a b = A.Binop (A.And, a, b)
let read0 name = A.Load (evar name, vint 0)
let gtid = (A.Special A.Block_idx *: A.Special A.Block_dim) +: A.Special A.Thread_idx

(* ------------------------------------------------------------------ *)
(* Launch-site analysis                                                 *)
(* ------------------------------------------------------------------ *)

type site = {
  launch : A.launch;
  pragma : Pragma.t;
  nvars : int;
  shape : Cs.child_shape;
  (* For each child parameter position: [Some k] when bound from work
     variable k of the buffer, [None] when uniform. *)
  param_roles : int option list;
  uniform_positions : int list;
}

let find_annotated_launch (k : K.t) : A.launch * Pragma.t =
  let annotated =
    List.filter_map
      (fun (l : A.launch) -> Option.map (fun p -> (l, p)) l.A.pragma)
      (A.collect_launches k.K.body)
  in
  match annotated with
  | [ lp ] -> lp
  | [] -> unsupported "kernel %s has no #pragma dp annotated launch" k.K.kname
  | _ ->
    unsupported "kernel %s has multiple annotated launches (one supported)"
      k.K.kname

let expr_reads_any (names : string list) (e : A.expr) =
  let found = ref false in
  A.iter_expr
    (fun x ->
      match x with
      | A.Var v -> if List.mem v.A.name names then found := true
      | _ -> ())
    e;
  !found

let index_of x lst =
  let rec go i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else go (i + 1) rest
  in
  go 0 lst

let analyze_site (parent : K.t) (launch : A.launch) (pragma : Pragma.t)
    (child : K.t) : site =
  let work = pragma.Pragma.work in
  if List.length launch.A.args <> List.length child.K.params then
    unsupported "launch of %s: argument count mismatch" launch.A.callee;
  let param_roles =
    List.map
      (fun (arg : A.expr) ->
        match arg with
        | A.Var v when List.mem v.A.name work -> index_of v.A.name work
        | _ ->
          if expr_reads_any work arg then
            unsupported
              "kernel %s: a uniform launch argument reads a work variable; \
               list it in the work clause or hoist it"
              parent.K.kname;
          None)
      launch.A.args
  in
  List.iteri
    (fun k w ->
      if not (List.exists (fun r -> r = Some k) param_roles) then
        unsupported "kernel %s: work variable %s is not a launch argument"
          parent.K.kname w)
    work;
  let uniform_positions =
    List.mapi (fun i r -> (i, r)) param_roles
    |> List.filter_map (fun (i, r) -> if r = None then Some i else None)
  in
  {
    launch;
    pragma;
    nvars = List.length work;
    shape = Cs.classify ~grid:launch.A.grid ~block:launch.A.block;
    param_roles;
    uniform_positions;
  }

(* ------------------------------------------------------------------ *)
(* Validation helpers                                                   *)
(* ------------------------------------------------------------------ *)

let block_contains pred (body : A.stmt list) =
  let found = ref false in
  A.iter_block body
    ~on_stmt:(fun s -> if pred s then found := true)
    ~on_expr:(fun _ -> ());
  !found

let contains_return = block_contains (function A.Return -> true | _ -> false)

let thread_dependent_specials (body : A.stmt list) =
  let found = ref [] in
  A.iter_block
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      match e with
      | A.Special
          ((A.Thread_idx | A.Block_idx | A.Lane_id | A.Warp_id | A.Block_dim
           | A.Grid_dim) as s) ->
        let name = Dpc_kir.Pp.special_to_string s in
        if not (List.mem name !found) then found := name :: !found
      | _ -> ())
    body;
  !found

let check_postwork_contract ~context ~allowed (postwork : A.stmt list) =
  (match R.free_reads ~bound:allowed postwork with
  | [] -> ()
  | frees ->
    unsupported
      "%s: postwork reads %s, which are neither work variables, uniform \
       parameters nor defined in the postwork itself"
      context
      (String.concat ", " frees));
  match thread_dependent_specials postwork with
  | [] -> ()
  | specials ->
    unsupported
      "%s: postwork uses %s; per-item postwork cannot depend on thread or \
       block indices"
      context
      (String.concat ", " specials)

(* ------------------------------------------------------------------ *)
(* Generated code fragments                                             *)
(* ------------------------------------------------------------------ *)

let alloc_scope = function
  | Pragma.Warp -> A.Per_warp
  | Pragma.Block -> A.Per_block
  | Pragma.Grid -> A.Per_grid

(* Buffer capacity in items (Section IV.E): the pragma's perBufferSize if
   given; otherwise the paper's prediction totalThread * const, where
   totalThread is the size of the consolidation domain and const estimates
   work items per thread. *)
let items_capacity (pragma : Pragma.t) =
  match pragma.Pragma.per_buffer_size with
  | Some (Pragma.Size_const n) -> vint n
  | Some (Pragma.Size_var v) -> evar v
  | None ->
    let domain =
      match pragma.Pragma.granularity with
      | Pragma.Warp -> A.Special A.Warp_size
      | Pragma.Block -> A.Special A.Block_dim
      | Pragma.Grid -> A.Special A.Grid_dim *: A.Special A.Block_dim
    in
    domain *: vint Pragma.default_items_per_thread

let alloc_stmts (pragma : Pragma.t) ~nvars ~buf ~cnt : A.stmt list =
  let scope = alloc_scope pragma.Pragma.granularity in
  [
    A.Malloc
      {
        dst = A.var buf;
        count = items_capacity pragma *: vint nvars;
        scope;
        site = -1;
      };
    A.Malloc { dst = A.var cnt; count = vint 1; scope; site = -1 };
  ]

(* Buffer insertions replacing the launch: one atomic slot reservation plus
   one store per work variable (Fig. 2(b)).  If the reserved slot is beyond
   the buffer's capacity, the thread falls back to launching the original
   (unconsolidated) child directly — consolidation degrades gracefully
   instead of corrupting memory when the perBufferSize prediction is low.

   [overflow_post] is the parent's postwork when that postwork is
   buffer-driven (a grid-level postwork kernel, or the inline
   buffer-striding loop of recursive warp/block consolidation): those
   loops only visit buffered items, so an overflowed item's postwork
   would be silently skipped.  The fallback therefore waits for its
   direct launch and runs the item's postwork itself, with the work
   variables still bound at the launch site — exactly the basic-DP
   per-thread behavior the fallback degrades to.  When the postwork
   stays in place per thread (non-recursive warp/block), it already
   covers overflowed items and [overflow_post] must be [None]. *)
let insertion_stmts ?overflow_post (site : site) ~buf ~cnt : A.stmt list =
  let direct_launch =
    A.Launch
      {
        callee = site.launch.A.callee;
        grid = A.copy_expr site.launch.A.grid;
        block = A.copy_expr site.launch.A.block;
        args = List.map A.copy_expr site.launch.A.args;
        pragma = None;
      }
  in
  [
    A.Atomic
      {
        op = A.Aadd;
        buf = evar cnt;
        idx = vint 0;
        operand = vint 1;
        compare = None;
        old = Some (A.var pos_name);
      };
    A.If
      ( evar pos_name <: items_capacity site.pragma,
        List.mapi
          (fun k w ->
            A.Store
              (evar buf, (evar pos_name *: vint site.nvars) +: vint k, evar w))
          site.pragma.Pragma.work,
        direct_launch
        ::
        (match overflow_post with
        | None -> []
        | Some pw -> A.Device_sync :: pw) );
  ]

let barrier_stmts = function
  | Pragma.Warp -> []  (* implicit: lockstep execution within the warp *)
  | Pragma.Block -> [ A.Syncthreads ]
  | Pragma.Grid -> [ A.Grid_barrier ]

let designated_cond = function
  | Pragma.Warp -> A.Special A.Lane_id ==: vint 0
  | Pragma.Block | Pragma.Grid -> A.Special A.Thread_idx ==: vint 0

(* Arguments of the consolidated child launch: the uniform arguments of the
   original launch (copied), then the buffer and the counter. *)
let cons_launch_args (site : site) ~buf ~cnt : A.expr list =
  (List.filteri
     (fun i _ -> List.mem i site.uniform_positions)
     site.launch.A.args
  |> List.map A.copy_expr)
  @ [ evar buf; evar cnt ]

(* The designated-thread launch of the consolidated child, guarded by a
   non-empty buffer; at grid level with postwork it also synchronizes and
   launches the consolidated postwork kernel. *)
let designated_launch_stmts ~cfg ~policy (site : site) ~callee ~buf ~cnt
    ~(post : (string * A.expr list) option) : A.stmt list =
  let grid, block =
    Cs.select cfg ~policy ~pragma:site.pragma ~shape:site.shape
      ~cnt:(read0 cnt)
  in
  let launch_child =
    A.Launch
      { callee; grid; block; args = cons_launch_args site ~buf ~cnt;
        pragma = None }
  in
  (* Overflowed insertions fell back to direct launches; clamp the counter
     to the buffer capacity before handing it to the consolidated child. *)
  let clamp =
    A.Store
      ( evar cnt,
        vint 0,
        A.Binop (A.Min, read0 cnt, items_capacity site.pragma) )
  in
  let body =
    match post with
    | None -> [ clamp; launch_child ]
    | Some (post_name, post_args) ->
      let pgrid, pblock =
        Cs.select cfg ~policy ~pragma:site.pragma ~shape:Cs.Solo_thread
          ~cnt:(read0 cnt)
      in
      [
        clamp;
        launch_child;
        A.Device_sync;
        A.Launch
          {
            callee = post_name;
            grid = pgrid;
            block = pblock;
            args = post_args @ [ evar buf; evar cnt ];
            pragma = None;
          };
      ]
  in
  [
    A.If
      ( designated_cond site.pragma.Pragma.granularity &&: (read0 cnt >: vint 0),
        body,
        [] );
  ]

(* ------------------------------------------------------------------ *)
(* Child-kernel transformation (Section IV.C)                           *)
(* ------------------------------------------------------------------ *)

let shape_specials (shape : Cs.child_shape) (s : A.special) : A.expr option =
  match shape with
  | Cs.Solo_thread -> (
    match s with
    | A.Thread_idx | A.Block_idx | A.Lane_id | A.Warp_id -> Some (vint 0)
    | A.Block_dim | A.Grid_dim -> Some (vint 1)
    | A.Warp_size -> None)
  | Cs.Solo_block _ -> (
    match s with
    | A.Block_idx -> Some (vint 0)
    | A.Grid_dim -> Some (vint 1)
    | A.Thread_idx | A.Block_dim | A.Lane_id | A.Warp_id | A.Warp_size -> None)
  | Cs.Multi_block -> None

(* Bindings that fetch one work item: each varying child parameter is bound
   from the buffer at item index [it]. *)
let fetch_bindings (site : site) (child : K.t) ~buf (it : A.expr) :
    A.stmt list =
  List.concat
    (List.map2
       (fun (p : A.param) role ->
         match role with
         | Some k ->
           [
             A.Let
               ( A.var p.A.pname,
                 A.Load (evar buf, (it *: vint site.nvars) +: vint k) );
           ]
         | None -> [])
       child.K.params site.param_roles)

(* Bindings that rebind the parent-side work variable names from the buffer
   (used by postwork re-execution). *)
let work_bindings (site : site) ~buf (it : A.expr) : A.stmt list =
  List.mapi
    (fun k w ->
      A.Let (A.var w, A.Load (evar buf, (it *: vint site.nvars) +: vint k)))
    site.pragma.Pragma.work

(* Wrap per-item code in the work-fetch loop appropriate to the child's
   shape, making the consolidated kernel moldable (Section IV.C). *)
let wrap_fetch (site : site) ~cnt ~(bindings : A.expr -> A.stmt list)
    (per_item : A.stmt list) : A.stmt list =
  let it = evar it_name in
  match site.shape with
  | Cs.Solo_thread ->
    [
      A.Let (A.var it_name, gtid);
      A.While
        ( it <: read0 cnt,
          bindings it @ per_item
          @ [
              A.Let
                ( A.var it_name,
                  it +: (A.Special A.Grid_dim *: A.Special A.Block_dim) );
            ] );
    ]
  | Cs.Solo_block _ ->
    (* When the child body synchronizes (cooperative shared-memory use),
       also separate successive items with a barrier. *)
    let maybe_sync =
      if A.has_syncthreads_block per_item then [ A.Syncthreads ] else []
    in
    [
      A.Let (A.var it_name, A.Special A.Block_idx);
      A.While
        ( it <: read0 cnt,
          bindings it @ per_item @ maybe_sync
          @ [ A.Let (A.var it_name, it +: A.Special A.Grid_dim) ] );
    ]
  | Cs.Multi_block ->
    [ A.For (A.var it_name, vint 0, read0 cnt, bindings it @ per_item) ]

(* The consolidated child kernel for a non-recursive site. *)
let make_consolidated_child (site : site) (child : K.t) ~name : K.t =
  if contains_return child.K.body then
    unsupported
      "kernel %s: child kernels with return are not consolidatable (the \
       fetch loop must continue)"
      child.K.kname;
  (match (site.shape, A.has_syncthreads_block child.K.body) with
  | Cs.Solo_thread, true ->
    unsupported
      "kernel %s: __syncthreads in a solo-thread child kernel" child.K.kname
  | _ -> ());
  let body' = R.subst_specials (shape_specials site.shape) child.K.body in
  let uniform_params =
    List.filteri
      (fun i _ -> List.mem i site.uniform_positions)
      child.K.params
    |> List.map (fun (p : A.param) -> A.param ~ty:p.A.ptype p.A.pname)
  in
  let params =
    uniform_params
    @ [ A.param ~ty:A.Tptr_int buf_param; A.param ~ty:A.Tptr_int cnt_param ]
  in
  let bindings it = fetch_bindings site child ~buf:buf_param it in
  K.make ~name ~line:child.K.line ~params ~shared:child.K.shared
    (wrap_fetch site ~cnt:cnt_param ~bindings body')

(* ------------------------------------------------------------------ *)
(* Parent-kernel transformation (Section IV.C)                          *)
(* ------------------------------------------------------------------ *)

(* Split a parent body at its first top-level cudaDeviceSynchronize:
   (prefix, Some postwork) or (body, None). *)
let split_postwork (body : A.stmt list) : A.stmt list * A.stmt list option =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | A.Device_sync :: rest -> (List.rev acc, Some rest)
    | s :: rest -> go (s :: acc) rest
  in
  go [] body

let launch_in_block (body : A.stmt list) =
  block_contains
    (function A.Launch { pragma = Some _; _ } -> true | _ -> false)
    body

(* Rewrite a body replacing the annotated launch with buffer insertions
   (and optionally substituting specials, for the recursive fetch body).
   [overflow_post] as in {!insertion_stmts}. *)
let replace_launch_with_insertions ?(specials = fun _ -> None) ?overflow_post
    (site : site) ~buf ~cnt (body : A.stmt list) : A.stmt list =
  let hooks =
    {
      R.no_hooks with
      R.special = specials;
      R.launch =
        (fun (l : A.launch) ->
          match l.A.pragma with
          | Some _ ->
            (* The replacement must see the same special-register
               substitution as the surrounding (inlined) child body. *)
            Some
              (R.rw_block
                 { R.no_hooks with R.special = specials }
                 (insertion_stmts ?overflow_post site ~buf ~cnt))
          | None -> None);
    }
  in
  R.rw_block hooks body

(* The consolidated postwork kernel: one thread per buffered item, work
   variables rebound from the buffer (grid-level consolidation). *)
let make_post_kernel (site : site) ~name ~(params : A.param list)
    (postwork : A.stmt list) : K.t =
  let params =
    List.map (fun (p : A.param) -> A.param ~ty:p.A.ptype p.A.pname) params
    @ [ A.param ~ty:A.Tptr_int buf_param; A.param ~ty:A.Tptr_int cnt_param ]
  in
  let it = evar it_name in
  let body =
    [
      A.Let (A.var it_name, gtid);
      A.While
        ( it <: read0 cnt_param,
          work_bindings site ~buf:buf_param it
          @ R.rw_block R.no_hooks postwork
          @ [
              A.Let
                ( A.var it_name,
                  it +: (A.Special A.Grid_dim *: A.Special A.Block_dim) );
            ] );
    ]
  in
  K.make ~name ~params body

(* Inline hoisted postwork for recursive warp-/block-level consolidation:
   after the consolidated child completes, the lanes of the consolidation
   domain stride over the freshly filled buffer. *)
let inline_postwork_stmts (site : site) ~buf ~cnt (postwork : A.stmt list) :
    A.stmt list =
  let start, stride =
    match site.pragma.Pragma.granularity with
    | Pragma.Warp -> (A.Special A.Lane_id, A.Special A.Warp_size)
    | Pragma.Block -> (A.Special A.Thread_idx, A.Special A.Block_dim)
    | Pragma.Grid ->
      invalid_arg "inline_postwork_stmts: grid level uses a postwork kernel"
  in
  let pi = evar pi_name in
  (* At block level, re-synchronize before reading the counter thread 0
     clamped in the designated branch (implicit at warp level). *)
  (match site.pragma.Pragma.granularity with
  | Pragma.Block -> [ A.Syncthreads ]
  | Pragma.Warp | Pragma.Grid -> [])
  @ [
    A.Device_sync;
    A.Let (A.var pi_name, start);
    A.While
      ( pi <: read0 cnt,
        work_bindings site ~buf pi
        @ R.rw_block R.no_hooks postwork
        @ [ A.Let (A.var pi_name, pi +: stride) ] );
  ]

(* ------------------------------------------------------------------ *)
(* Top-level driver                                                     *)
(* ------------------------------------------------------------------ *)

type result = {
  program : K.Program.t;  (** fresh program with the transformed kernels *)
  entry : string;  (** kernel the host launches *)
  recursive : bool;
      (** when true, [entry] is the consolidated kernel itself and the host
          must seed it with an initial work buffer (see
          {!val:seed_param_note}) *)
  cons_kernel : string;
  post_kernel : string option;
  granularity : Pragma.granularity;
  buffer_alloc : Pragma.buffer_alloc;
  nvars : int;
  policy : Cs.policy;
  threads : int;  (** block size of the consolidated kernel *)
  static_blocks : int option;  (** grid size when the policy is static *)
}

(** For recursive consolidation the host launches [entry] with the uniform
    arguments followed by two extra int buffers: the seed work-item buffer
    and a one-element counter holding the item count. *)
let seed_param_note = (buf_param, cnt_param)

(* Post-apply validation hook (the same shape as Kernel.finalize_check):
   the checker library installs translation validation here without
   creating a dependency cycle.  Called with the *original* program and
   the freshly built result; raising aborts the transformation. *)
let apply_check_key : (parent:string -> K.Program.t -> result -> unit) Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> fun ~parent:_ _ _ -> ())

let apply_check () = Domain.DLS.get apply_check_key
let set_apply_check f = Domain.DLS.set apply_check_key f

let copy_kernel (k : K.t) : K.t =
  K.make ~name:k.K.kname ~line:k.K.line
    ~params:
      (List.map (fun (p : A.param) -> A.param ~ty:p.A.ptype p.A.pname)
         k.K.params)
    ~shared:k.K.shared
    (A.copy_block k.K.body)

let param_names (params : A.param list) =
  List.map (fun (p : A.param) -> p.A.pname) params

let uniform_params_of (site : site) (child : K.t) : A.param list =
  List.filteri (fun i _ -> List.mem i site.uniform_positions) child.K.params
  |> List.map (fun (p : A.param) -> A.param ~ty:p.A.ptype p.A.pname)

(** Host-side launch configuration for [entry] when it is the consolidated
    kernel (recursive case): [items] is the seed item count. *)
let launch_config (cfg : Cfg.t) (r : result) ~items =
  match r.policy with
  | Cs.Explicit (b, t) -> (b, t)
  | Cs.Kc _ ->
    ( (match r.static_blocks with Some b -> b | None -> 1),
      r.threads )
  | Cs.One_to_one ->
    let t = r.threads in
    (Int.max 1 ((items + t - 1) / t), t)
    |> fun (b, t) -> (Int.min b cfg.Cfg.max_grid_blocks, t)

let apply ?policy ~(cfg : Cfg.t) ~(parent : string) (prog : K.Program.t) :
    result =
  let p = K.Program.find prog parent in
  let launch, pragma = find_annotated_launch p in
  let recursive = launch.A.callee = parent in
  let child = K.Program.find prog launch.A.callee in
  let site = analyze_site p launch pragma child in
  let gran = pragma.Pragma.granularity in
  let policy =
    match policy with Some pl -> pl | None -> Cs.default_policy gran
  in
  let cons = cons_name child.K.kname gran in
  let postname = post_kernel_name p.K.kname gran in
  let out = K.Program.create () in
  (* Copy every kernel through; the parent is replaced below for the
     non-recursive case. *)
  List.iter
    (fun k ->
      if recursive || k.K.kname <> parent then
        K.Program.add out (copy_kernel k))
    (K.Program.kernels prog);
  let threads = Cs.select_threads ~pragma ~shape:site.shape in
  let static_blocks =
    match policy with
    | Cs.Explicit (b, _) -> Some b
    | Cs.Kc x ->
      Some (Int.max 1 (Cfg.device_fill_blocks cfg ~block_dim:threads / x))
    | Cs.One_to_one -> None
  in
  let finish ~entry ~post_kernel =
    K.Program.finalize out;
    let r =
      {
        program = out;
        entry;
        recursive;
        cons_kernel = cons;
        post_kernel;
        granularity = gran;
        buffer_alloc = pragma.Pragma.buffer;
        nvars = site.nvars;
        policy;
        threads;
        static_blocks;
      }
    in
    apply_check () ~parent prog r;
    r
  in
  if not recursive then begin
    let prefix, postwork = split_postwork p.K.body in
    if not (launch_in_block prefix) then
      unsupported
        "kernel %s: the annotated launch must appear before the top-level \
         cudaDeviceSynchronize"
        parent;
    let buf = buf_param and cnt = cnt_param in
    let c_cons = make_consolidated_child site child ~name:cons in
    (* Grid-level postwork runs in a kernel over the buffered items, so
       overflowed items must self-handle their postwork at the fallback
       site; warp/block postwork stays in place per thread and already
       covers them. *)
    let overflow_post =
      match (postwork, gran) with
      | Some pw, Pragma.Grid -> Some (R.rw_block R.no_hooks pw)
      | _ -> None
    in
    let prefix' =
      replace_launch_with_insertions ?overflow_post site ~buf ~cnt prefix
    in
    let post_kernel, designated_post, tail =
      match postwork with
      | None -> (None, None, [])
      | Some pw -> (
        match gran with
        | Pragma.Grid ->
          check_postwork_contract
            ~context:(Printf.sprintf "kernel %s" parent)
            ~allowed:(pragma.Pragma.work @ param_names p.K.params)
            pw;
          let pk = make_post_kernel site ~name:postname ~params:p.K.params pw in
          ( Some pk,
            Some
              ( postname,
                List.map (fun (pp : A.param) -> evar pp.A.pname) p.K.params ),
            [] )
        | Pragma.Warp | Pragma.Block ->
          (* Postwork stays in place: each thread's postwork still matches
             its own (buffered) work, and cudaDeviceSynchronize makes the
             block wait for the consolidated child. *)
          (None, None, A.Device_sync :: R.rw_block R.no_hooks pw))
    in
    let body =
      alloc_stmts pragma ~nvars:site.nvars ~buf ~cnt
      @ prefix' @ barrier_stmts gran
      @ designated_launch_stmts ~cfg ~policy site ~callee:cons ~buf ~cnt
          ~post:designated_post
      @ tail
    in
    let p' =
      K.make ~name:parent ~line:p.K.line
        ~params:
          (List.map (fun (pp : A.param) -> A.param ~ty:pp.A.ptype pp.A.pname)
             p.K.params)
        ~shared:p.K.shared body
    in
    K.Program.add out p';
    K.Program.add out c_cons;
    Option.iter (K.Program.add out) post_kernel;
    finish ~entry:parent ~post_kernel:(Option.map (fun _ -> postname) post_kernel)
  end
  else begin
    (* Recursive kernel: both stages applied to the single kernel. *)
    if contains_return child.K.body then
      unsupported
        "kernel %s: recursive kernels with return are not consolidatable"
        parent;
    (match (site.shape, A.has_syncthreads_block child.K.body) with
    | Cs.Solo_thread, true ->
      unsupported "kernel %s: __syncthreads in a solo-thread kernel" parent
    | _ -> ());
    let prefix, postwork = split_postwork child.K.body in
    if not (launch_in_block prefix) then
      unsupported
        "kernel %s: the recursive launch must appear before the top-level \
         cudaDeviceSynchronize"
        parent;
    let uniform_params = uniform_params_of site child in
    let buf = buf_next and cnt = cnt_next in
    (* Every recursive postwork is buffer-driven (the grid-level postwork
       kernel, or the inline buffer-striding loop at warp/block level), so
       an overflowed item always self-handles its postwork. *)
    let overflow_post =
      Option.map (fun pw -> R.rw_block R.no_hooks pw) postwork
    in
    let prefix' =
      replace_launch_with_insertions
        ~specials:(shape_specials site.shape)
        ?overflow_post site ~buf ~cnt prefix
    in
    let bindings it = fetch_bindings site child ~buf:buf_param it in
    let wrapped = wrap_fetch site ~cnt:cnt_param ~bindings prefix' in
    let allowed = pragma.Pragma.work @ param_names uniform_params in
    let post_kernel, designated_post, tail =
      match postwork with
      | None -> (None, None, [])
      | Some pw -> (
        check_postwork_contract
          ~context:(Printf.sprintf "kernel %s" parent)
          ~allowed pw;
        match gran with
        | Pragma.Grid ->
          let pk =
            make_post_kernel site ~name:postname ~params:uniform_params pw
          in
          ( Some pk,
            Some
              ( postname,
                List.map (fun (pp : A.param) -> evar pp.A.pname)
                  uniform_params ),
            [] )
        | Pragma.Warp | Pragma.Block ->
          (None, None, inline_postwork_stmts site ~buf ~cnt pw))
    in
    let body =
      alloc_stmts pragma ~nvars:site.nvars ~buf ~cnt
      @ wrapped @ barrier_stmts gran
      @ designated_launch_stmts ~cfg ~policy site ~callee:cons ~buf ~cnt
          ~post:designated_post
      @ tail
    in
    let params =
      uniform_params
      @ [ A.param ~ty:A.Tptr_int buf_param; A.param ~ty:A.Tptr_int cnt_param ]
    in
    let c_cons =
      K.make ~name:cons ~line:child.K.line ~params ~shared:child.K.shared body
    in
    K.Program.add out c_cons;
    Option.iter (K.Program.add out) post_kernel;
    finish ~entry:cons
      ~post_kernel:(Option.map (fun _ -> postname) post_kernel)
  end
