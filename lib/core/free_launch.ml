(** A simplified "Free Launch" transformation (Chen & Shen, MICRO 2015),
    implemented as a comparison baseline.

    Free Launch removes child kernels by {e reusing parent threads}: the
    launching thread (and, in the stronger variants, its block) executes
    the child's work in place instead of launching a grid.  The paper
    discusses it in related work and notes its key limitation — it does
    not apply to recursive computations — which this implementation
    reproduces by rejecting parent = child kernels.

    We implement the thread-reuse variant the original calls T1-style:
    the annotated launch is replaced by an inlined loop in which the
    launching thread iterates the child's logical threads sequentially.
    This eliminates every launch (like grid-level consolidation) but
    re-introduces the work imbalance that made the flat kernel slow — the
    trade-off the workload-consolidation paper is positioned against. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module V = Dpc_kir.Value
module R = Dpc_kir.Rewrite
module Cs = Config_select

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let vint n = A.Const (V.Vint n)
let fl_tid = "__fl_tid"

type result = {
  program : K.Program.t;
  entry : string;
}

(* Post-apply validation hook; see Transform.set_apply_check. *)
let apply_check_key : (parent:string -> K.Program.t -> result -> unit) Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> fun ~parent:_ _ _ -> ())

let apply_check () = Domain.DLS.get apply_check_key
let set_apply_check f = Domain.DLS.set apply_check_key f

(* Inline the child kernel body at the launch site: bind the child's
   parameters to the (copied) launch arguments, then wrap the body in a
   sequential loop over the child's logical thread ids.  The child must be
   moldable in the usual thread-stride style, which our solo-block /
   solo-thread children are: substituting
     threadIdx.x -> __fl_tid, blockIdx.x -> 0, blockDim.x -> B, gridDim.x -> 1
   makes the stride loop enumerate each logical thread exactly once. *)
let inline_child (child : K.t) (l : A.launch) : A.stmt list =
  let shape = Cs.classify ~grid:l.A.grid ~block:l.A.block in
  (match shape with
  | Cs.Solo_thread | Cs.Solo_block _ -> ()
  | Cs.Multi_block ->
    unsupported
      "free launch: child %s uses a multi-block configuration; thread reuse \
       supports solo-thread/solo-block children"
      child.K.kname);
  if A.has_syncthreads_block child.K.body then
    unsupported
      "free launch: child %s synchronizes its block; a single parent thread \
       cannot emulate the barrier"
      child.K.kname;
  let contains_return body =
    let found = ref false in
    A.iter_block body
      ~on_stmt:(fun st -> match st with A.Return -> found := true | _ -> ())
      ~on_expr:(fun _ -> ());
    !found
  in
  if contains_return child.K.body then
    unsupported
      "free launch: child %s returns; inlined, that would exit the parent \
       thread instead of one logical child thread"
      child.K.kname;
  let bindings =
    List.map2
      (fun (p : A.param) arg -> A.Let (A.var p.A.pname, A.copy_expr arg))
      child.K.params l.A.args
  in
  let logical_threads =
    match l.A.block with
    | A.Const (V.Vint t) -> t
    | _ ->
      unsupported
        "free launch: child %s has a dynamic block size" child.K.kname
  in
  let body =
    R.subst_specials
      (fun s ->
        match s with
        | A.Thread_idx -> Some (A.Var (A.var fl_tid))
        | A.Block_idx -> Some (vint 0)
        | A.Block_dim -> Some (vint logical_threads)
        | A.Grid_dim -> Some (vint 1)
        | A.Lane_id -> Some (A.Binop (A.Mod, A.Var (A.var fl_tid), vint 32))
        | A.Warp_id -> Some (A.Binop (A.Div, A.Var (A.var fl_tid), vint 32))
        | A.Warp_size -> None)
      child.K.body
  in
  bindings
  @ [ A.For (A.var fl_tid, vint 0, vint logical_threads, body) ]

(** Apply free launch to the kernel named [parent] in [prog]; returns a
    fresh program in which the annotated launch has been inlined. *)
let apply ~(parent : string) (prog : K.Program.t) : result =
  let p = K.Program.find prog parent in
  let launch, _pragma = Transform.find_annotated_launch p in
  if launch.A.callee = parent then
    unsupported
      "free launch does not apply to recursive computations (kernel %s \
       launches itself); use workload consolidation instead"
      parent;
  let child = K.Program.find prog launch.A.callee in
  let body' =
    R.rw_block
      {
        R.no_hooks with
        R.launch =
          (fun (l : A.launch) ->
            match l.A.pragma with
            | Some _ -> Some (inline_child child l)
            | None -> None);
      }
      p.K.body
  in
  let out = K.Program.create () in
  List.iter
    (fun k ->
      if k.K.kname <> parent then K.Program.add out (Transform.copy_kernel k))
    (K.Program.kernels prog);
  K.Program.add out
    (K.make ~name:parent
       ~params:
         (List.map (fun (pp : A.param) -> A.param ~ty:pp.A.ptype pp.A.pname)
            p.K.params)
       ~shared:p.K.shared body');
  K.Program.finalize out;
  let r = { program = out; entry = parent } in
  apply_check () ~parent prog r;
  r
