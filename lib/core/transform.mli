(** The workload-consolidation code transformations (Section IV): the
    paper's primary contribution.

    Given a program containing a kernel with a [#pragma dp]-annotated
    device-side launch, {!apply} produces a fresh program with:

    - the consolidated child kernel ([<child>_cons_<granularity>]) that
      fetches buffered work items and processes them with the original
      child code;
    - the transformed parent: buffer allocation, atomic buffer insertions
      replacing the launch (with graceful overflow fallback to a direct
      launch), the granularity's barrier, and a designated-thread launch
      of the consolidated child;
    - for grid-level consolidation with postwork, the consolidated
      postwork kernel launched by the last block after
      [cudaDeviceSynchronize].

    Recursive kernels (parent = child) are supported: the consolidated
    kernel re-buffers the work its items generate and launches itself for
    the next level; the host seeds it with an initial work buffer.

    The accepted source shape (the paper's Fig. 1 template) and its
    restrictions are documented in the implementation header; violations
    raise {!Unsupported} with an explanation. *)

exception Unsupported of string

(** Names generated for the consolidated and postwork kernels. *)
val cons_name : string -> Dpc_kir.Pragma.granularity -> string

val post_kernel_name : string -> Dpc_kir.Pragma.granularity -> string

(** Exposed for {!Free_launch} and tests. *)
val find_annotated_launch :
  Dpc_kir.Kernel.t -> Dpc_kir.Ast.launch * Dpc_kir.Pragma.t

val copy_kernel : Dpc_kir.Kernel.t -> Dpc_kir.Kernel.t

type result = {
  program : Dpc_kir.Kernel.Program.t;
      (** fresh program with the transformed kernels (finalized) *)
  entry : string;  (** kernel the host launches *)
  recursive : bool;
      (** when true, [entry] is the consolidated kernel itself and the
          host must append two int buffers to the uniform arguments: the
          seed work-item buffer and a one-element counter *)
  cons_kernel : string;
  post_kernel : string option;
  granularity : Dpc_kir.Pragma.granularity;
  buffer_alloc : Dpc_kir.Pragma.buffer_alloc;
  nvars : int;  (** buffered variables per work item *)
  policy : Config_select.policy;
  threads : int;  (** consolidated kernel block size *)
  static_blocks : int option;  (** grid size when the policy is static *)
}

(** The names of the two extra parameters of a recursive [entry]. *)
val seed_param_note : string * string

(** Post-apply validation hook, the same domain-local shape as
    {!Dpc_kir.Kernel.set_finalize_check}: {!apply} calls the installed
    function with the original program and the finished result just
    before returning it.  The checker library installs translation
    validation here; raising aborts the transformation.  Default:
    no-op. *)
val apply_check : unit -> parent:string -> Dpc_kir.Kernel.Program.t -> result -> unit

val set_apply_check :
  (parent:string -> Dpc_kir.Kernel.Program.t -> result -> unit) -> unit

(** Host-side launch configuration for a recursive [entry] seeded with
    [items] work items. *)
val launch_config : Dpc_gpu.Config.t -> result -> items:int -> int * int

(** Apply the transformation to the kernel named [parent].
    @raise Unsupported when the source violates the template contract. *)
val apply :
  ?policy:Config_select.policy ->
  cfg:Dpc_gpu.Config.t ->
  parent:string ->
  Dpc_kir.Kernel.Program.t ->
  result
