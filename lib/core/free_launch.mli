(** A simplified "Free Launch" transformation (Chen & Shen, MICRO 2015) —
    child-kernel removal by parent-thread reuse — implemented as a
    comparison baseline.

    The launching thread executes the child's logical threads in a
    sequential loop instead of launching a grid.  This removes every
    launch but re-introduces the work imbalance consolidation avoids.  As
    the paper notes of the original, it does not apply to recursive
    computations; {!apply} rejects them. *)

exception Unsupported of string

type result = {
  program : Dpc_kir.Kernel.Program.t;
  entry : string;
}

(** @raise Unsupported for recursive kernels, multi-block or
    dynamically-sized children, or children that use [__syncthreads]. *)
val apply : parent:string -> Dpc_kir.Kernel.Program.t -> result

(** Post-apply validation hook; same shape as
    {!Transform.set_apply_check}.  Default: no-op. *)
val apply_check : unit -> parent:string -> Dpc_kir.Kernel.Program.t -> result -> unit

val set_apply_check :
  (parent:string -> Dpc_kir.Kernel.Program.t -> result -> unit) -> unit
