(** Kernel-configuration selection for consolidated kernels (Section IV.E,
    "Kernel Configuration Handling" and Fig. 6).

    The occupancy calculator gives a configuration [(B, T)] that fills the
    device for a single kernel.  Concurrent kernels must share the device,
    so a concurrency target of [X] downgrades it to [(B/X, T)] — the
    paper's [KC_X].  The paper's defaults: KC_1 for grid-level, KC_16 for
    block-level, KC_32 for warp-level consolidation.

    [One_to_one] reproduces the naive baseline of Fig. 6: as many blocks
    (or threads, for thread-mapped children) as buffered items.
    [Explicit] pins a configuration — used by the pragma's [threads]/
    [blocks] clauses and by the exhaustive-search harness. *)

module A = Dpc_kir.Ast
module Pragma = Dpc_kir.Pragma
module Cfg = Dpc_gpu.Config

type policy =
  | Kc of int  (** target kernel concurrency: (B/X, T) *)
  | One_to_one
  | Explicit of int * int  (** blocks, threads *)

(** How the original child kernel maps work to threads (Section IV.C). *)
type child_shape =
  | Solo_thread  (** grid 1, block 1: one thread per work item *)
  | Solo_block of int option
      (** grid 1, block T: one cooperative block per item (T if static) *)
  | Multi_block  (** full grid cooperates on each item *)

let default_policy = function
  | Pragma.Warp -> Kc 32
  | Pragma.Block -> Kc 16
  | Pragma.Grid -> Kc 1

let policy_to_string = function
  | Kc x -> Printf.sprintf "KC_%d" x
  | One_to_one -> "1-1"
  | Explicit (b, t) -> Printf.sprintf "(%d,%d)" b t

(* Machine-readable spelling: comma- and paren-free so it can live in
   KEY=V scenario strings; [policy_of_string] inverts it. *)
let policy_to_key = function
  | Kc x -> Printf.sprintf "kc%d" x
  | One_to_one -> "1-1"
  | Explicit (b, t) -> Printf.sprintf "%dx%d" b t

let policy_of_string s =
  let bad () =
    invalid_arg
      (Printf.sprintf
         "bad policy %S (expected kcN, 1-1, or BxT, e.g. kc16 or 26x256)" s)
  in
  match String.lowercase_ascii s with
  | "1-1" | "one-to-one" -> One_to_one
  | other ->
    if String.length other > 2 && String.sub other 0 2 = "kc" then begin
      let rest = String.sub other 2 (String.length other - 2) in
      (* accept both the key spelling kcN and the display spelling KC_N *)
      let rest =
        if String.length rest > 1 && rest.[0] = '_' then
          String.sub rest 1 (String.length rest - 1)
        else rest
      in
      match int_of_string_opt rest with
      | Some x when x > 0 -> Kc x
      | _ -> bad ()
    end
    else
      match String.index_opt other 'x' with
      | Some i -> (
        match
          ( int_of_string_opt (String.sub other 0 i),
            int_of_string_opt
              (String.sub other (i + 1) (String.length other - i - 1)) )
        with
        | Some b, Some t when b > 0 && t > 0 -> Explicit (b, t)
        | _ -> bad ())
      | None -> bad ()

(** Classify a child launch from its original configuration expressions. *)
let classify ~(grid : A.expr) ~(block : A.expr) : child_shape =
  match (grid, block) with
  | A.Const (Dpc_kir.Value.Vint 1), A.Const (Dpc_kir.Value.Vint 1) ->
    Solo_thread
  | A.Const (Dpc_kir.Value.Vint 1), A.Const (Dpc_kir.Value.Vint t) ->
    Solo_block (Some t)
  | A.Const (Dpc_kir.Value.Vint 1), _ -> Solo_block None
  | _ -> Multi_block

(** Threads per block of the consolidated kernel: the pragma's [threads]
    clause wins; otherwise a static solo-block child keeps its block size;
    otherwise 256 (a good default for moldable kernels on Kepler). *)
let select_threads ~(pragma : Pragma.t) ~(shape : child_shape) =
  match pragma.Pragma.threads with
  | Some t -> t
  | None -> (
    match shape with
    | Solo_block (Some t) -> t
    | Solo_thread | Solo_block None | Multi_block -> 256)

(** Configuration expressions [(grid, block)] for the consolidated child
    launch.  [cnt] is the expression reading the number of buffered items
    (used by the 1-1 policy). *)
let select (cfg : Cfg.t) ~policy ~(pragma : Pragma.t) ~(shape : child_shape)
    ~(cnt : A.expr) : A.expr * A.expr =
  let t = select_threads ~pragma ~shape in
  let const n = A.Const (Dpc_kir.Value.Vint n) in
  match policy with
  | Explicit (b, th) -> (const b, const th)
  | Kc x ->
    if x <= 0 then invalid_arg "Config_select.select: KC_X with X <= 0";
    let fill = Cfg.device_fill_blocks cfg ~block_dim:t in
    let b =
      match pragma.Pragma.blocks with
      | Some b -> b
      | None -> Int.max 1 (fill / x)
    in
    (const b, const t)
  | One_to_one -> (
    match shape with
    | Solo_thread ->
      (* Thread-mapped child: as many threads as items, in one block of up
         to the hardware maximum.  The ceiling division yields 0 blocks
         when the buffer is empty, so clamp the grid to >= 1 (matching the
         block-mapped arm): a launch of 0 blocks is not a valid
         configuration. *)
      let cap = cfg.Cfg.max_threads_per_block in
      ( A.Binop
          ( A.Max,
            A.Binop (A.Div, A.Binop (A.Add, cnt, const (cap - 1)), const cap),
            const 1 ),
        A.Binop (A.Min, A.Binop (A.Max, cnt, const 1), const cap) )
    | Solo_block _ | Multi_block ->
      (* Block-mapped child: one block per item, clamped to the hardware
         grid limit. *)
      ( A.Binop
          (A.Min, A.Binop (A.Max, cnt, const 1), const cfg.Cfg.max_grid_blocks),
        const t ))
