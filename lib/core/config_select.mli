(** Kernel-configuration selection for consolidated kernels (Section IV.E
    and Fig. 6).

    The occupancy calculator gives a configuration [(B, T)] that fills the
    device for a single kernel; a concurrency target of X downgrades it to
    [(B/X, T)] — the paper's KC_X.  Defaults: KC_32 for warp-level, KC_16
    for block-level, KC_1 for grid-level consolidation. *)

type policy =
  | Kc of int  (** target kernel concurrency: ([B/X], T) *)
  | One_to_one  (** as many blocks (or threads) as buffered items *)
  | Explicit of int * int  (** pinned (blocks, threads) *)

(** How the original child kernel maps work to threads (Section IV.C). *)
type child_shape =
  | Solo_thread  (** grid 1, block 1: one thread per work item *)
  | Solo_block of int option
      (** grid 1, block T: one cooperative block per item *)
  | Multi_block  (** the whole grid cooperates on each item *)

(** The paper's per-granularity default. *)
val default_policy : Dpc_kir.Pragma.granularity -> policy

val policy_to_string : policy -> string

(** Machine-readable spelling ([kcN], [1-1], [BxT]) — comma- and
    paren-free so it embeds in KEY=V scenario strings; inverted by
    {!policy_of_string}. *)
val policy_to_key : policy -> string

(** Parse [kcN] / [KC_N], [1-1] / [one-to-one], or [BxT] (e.g. [26x256]).
    @raise Invalid_argument on anything else. *)
val policy_of_string : string -> policy

(** Classify a child launch from its configuration expressions. *)
val classify :
  grid:Dpc_kir.Ast.expr -> block:Dpc_kir.Ast.expr -> child_shape

(** Block size of the consolidated kernel: the pragma's [threads] clause,
    else a static solo-block child's own block size, else 256. *)
val select_threads :
  pragma:Dpc_kir.Pragma.t -> shape:child_shape -> int

(** Configuration expressions [(grid, block)] for the consolidated launch.
    [cnt] is the expression reading the buffered-item count (used by
    [One_to_one], clamped to hardware limits). *)
val select :
  Dpc_gpu.Config.t ->
  policy:policy ->
  pragma:Dpc_kir.Pragma.t ->
  shape:child_shape ->
  cnt:Dpc_kir.Ast.expr ->
  Dpc_kir.Ast.expr * Dpc_kir.Ast.expr
