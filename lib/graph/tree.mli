(** Tree datasets for the recursive benchmarks (TH, TD), after the
    datasets of [3]; see DESIGN.md for the scaling discussion. *)

type t = {
  n : int;
  child_ptr : int array;  (** length n+1 *)
  child_list : int array;
  depth_of : int array;  (** node depth; root = 0 *)
  depth : int;  (** maximum depth *)
}

val nchildren : t -> int -> int
val is_leaf : t -> int -> bool

(** Generate breadth-first: a node at depth < [depth] becomes fertile with
    probability [p_child] (the root always is) and gets a uniform child
    count in [\[lo, hi\]].  Generation stops adding children once
    [max_nodes] would be exceeded. *)
val generate :
  depth:int ->
  lo:int ->
  hi:int ->
  p_child:float ->
  seed:int ->
  ?max_nodes:int ->
  unit ->
  t

(** dataset1 shape (128-256 children, half of candidates fertile, depth 5)
    with branching divided by [shrink]. *)
val dataset1 : ?shrink:int -> ?max_nodes:int -> seed:int -> unit -> t

(** dataset2 shape (32-128 children, all fertile, depth 5) with branching
    divided by [shrink]. *)
val dataset2 : ?shrink:int -> ?max_nodes:int -> seed:int -> unit -> t

(** CPU references: height of every subtree (leaves 0) and proper
    descendant counts. *)
val heights : t -> int array

val descendants : t -> int array
