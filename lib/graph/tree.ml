(** Tree datasets for the recursive benchmarks (TH, TD, and the tree shape
    of BFS-Rec in [3]).

    The paper's datasets (from [3]):
    - dataset1: depth-5 tree, 128-256 children per fertile node, only half
      of the non-leaf candidates have children;
    - dataset2: depth-5 tree, 32-128 children, every internal node at
      depth < 5 has children.

    At those branching factors a full depth-5 tree has billions of nodes on
    the heavy levels; the authors necessarily used sampled/sparse variants.
    We expose the shape parameters directly and provide scaled instances
    whose branching is divided by [shrink] while keeping depth, fertility
    probability and the child-count *ratio* identical — the properties the
    benchmarks are sensitive to (fan-out skew and recursion depth). *)

module Rng = Dpc_util.Rng

type t = {
  n : int;
  child_ptr : int array;  (** length n+1 *)
  child_list : int array;
  depth_of : int array;  (** node depth, root = 0 *)
  depth : int;  (** max depth *)
}

let nchildren t v = t.child_ptr.(v + 1) - t.child_ptr.(v)

let is_leaf t v = nchildren t v = 0

(** Generate a tree breadth-first.  A node at depth < [depth] becomes
    fertile with probability [p_child] (the root always is) and then gets a
    uniform child count in [lo, hi]. *)
let generate ~depth ~lo ~hi ~p_child ~seed ?(max_nodes = 150_000) () : t =
  if lo < 1 || hi < lo then invalid_arg "Tree.generate: bad child range";
  let rng = Rng.create seed in
  let child_lists = Dpc_util.Vec.create ~dummy:[||] in
  let depths = Dpc_util.Vec.create ~dummy:0 in
  let next_id = ref 0 in
  let fresh d =
    let id = !next_id in
    incr next_id;
    Dpc_util.Vec.push child_lists [||];
    Dpc_util.Vec.push depths d;
    id
  in
  let root = fresh 0 in
  let frontier = Queue.create () in
  Queue.push root frontier;
  let truncated = ref false in
  while not (Queue.is_empty frontier) do
    let v = Queue.pop frontier in
    let d = Dpc_util.Vec.get depths v in
    if d < depth then begin
      let fertile = v = root || Rng.float rng < p_child in
      if fertile && not !truncated then begin
        let count = Rng.int_in rng lo hi in
        if !next_id + count > max_nodes then truncated := true
        else begin
          let children = Array.init count (fun _ -> fresh (d + 1)) in
          Dpc_util.Vec.set child_lists v children;
          Array.iter (fun c -> Queue.push c frontier) children
        end
      end
    end
  done;
  let n = !next_id in
  let child_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    child_ptr.(v + 1) <-
      child_ptr.(v) + Array.length (Dpc_util.Vec.get child_lists v)
  done;
  let child_list = Array.make (Int.max 1 child_ptr.(n)) 0 in
  for v = 0 to n - 1 do
    Array.iteri
      (fun i c -> child_list.(child_ptr.(v) + i) <- c)
      (Dpc_util.Vec.get child_lists v)
  done;
  let depth_of = Array.init n (Dpc_util.Vec.get depths) in
  let max_depth = Array.fold_left Int.max 0 depth_of in
  { n; child_ptr; child_list; depth_of; depth = max_depth }

(** dataset1 shape (128-256 children, half fertile, depth 5), with
    branching divided by [shrink] (default 16: 8-16 children). *)
let dataset1 ?(shrink = 16) ?max_nodes ~seed () =
  generate ~depth:5 ~lo:(Int.max 1 (128 / shrink)) ~hi:(Int.max 2 (256 / shrink))
    ~p_child:0.5 ~seed ?max_nodes ()

(** dataset2 shape (32-128 children, all fertile, depth 5), with branching
    divided by [shrink] (default 16: 2-8 children). *)
let dataset2 ?(shrink = 16) ?max_nodes ~seed () =
  generate ~depth:5 ~lo:(Int.max 1 (32 / shrink)) ~hi:(Int.max 2 (128 / shrink))
    ~p_child:1.0 ~seed ?max_nodes ()

(* --- CPU references ----------------------------------------------------- *)

(** Height of every subtree: leaves are 0. *)
let heights t =
  let h = Array.make t.n 0 in
  (* Children always have larger ids (BFS generation), so a reverse scan
     is a valid bottom-up order. *)
  for v = t.n - 1 downto 0 do
    let best = ref (-1) in
    for e = t.child_ptr.(v) to t.child_ptr.(v + 1) - 1 do
      best := Int.max !best h.(t.child_list.(e))
    done;
    h.(v) <- !best + 1
  done;
  h

(** Number of proper descendants of every node. *)
let descendants t =
  let d = Array.make t.n 0 in
  for v = t.n - 1 downto 0 do
    let acc = ref 0 in
    for e = t.child_ptr.(v) to t.child_ptr.(v + 1) - 1 do
      acc := !acc + 1 + d.(t.child_list.(e))
    done;
    d.(v) <- !acc
  done;
  d
