(** Synthetic graph generators standing in for the paper's datasets
    (DESIGN.md, substitution table).

    - {!citeseer_like}: a citation-network stand-in for CiteSeer (DIMACS):
      power-law out-degrees in [1, 1199] with mean ≈ 74, scaled to [n]
      nodes.  The degree skew is what drives warp divergence and the
      child-launch counts, so it is the property we match.
    - {!kron_like}: an R-MAT/Kronecker generator for Kron_log16: 2^scale
      nodes, heavy-tailed degrees with a hub out-degree orders of magnitude
      above the average.

    All generators are deterministic in [seed]. *)

module Rng = Dpc_util.Rng

(* Sample a CiteSeer-ish out-degree: power law over [1,1199] whose mean is
   pulled toward ~74 by mixing a light head with a heavy tail. *)
let citeseer_degree rng ~max_degree =
  let d = Rng.power_law rng ~lo:1 ~hi:max_degree ~alpha:1.45 in
  Int.min max_degree d

let citeseer_like ~n ~seed : Csr.t =
  if n < 2 then invalid_arg "Gen.citeseer_like: need at least 2 nodes";
  let rng = Rng.create seed in
  let max_degree = Int.min 1199 (n - 1) in
  let adj = Array.make n [] in
  let weights = Array.make n [] in
  for v = 0 to n - 1 do
    let d = citeseer_degree rng ~max_degree in
    let targets = ref [] and ws = ref [] in
    for _ = 1 to d do
      (* Preferential-ish attachment: half the edges go to low ids (hubs),
         half uniformly. *)
      let u =
        if Rng.bool rng then Rng.int rng (Int.max 1 (n / 16))
        else Rng.int rng n
      in
      let u = if u = v then (u + 1) mod n else u in
      targets := u :: !targets;
      ws := Rng.int_in rng 1 10 :: !ws
    done;
    adj.(v) <- !targets;
    weights.(v) <- !ws
  done;
  let g = Csr.of_adjacency ~weights adj in
  Csr.validate g;
  g

(* R-MAT edge placement: recursively descend the adjacency matrix with
   quadrant probabilities (a, b, c, d). *)
let rmat_edge rng ~scale =
  let a = 0.57 and b = 0.19 and c = 0.19 in
  let src = ref 0 and dst = ref 0 in
  for _ = 1 to scale do
    let r = Rng.float rng in
    let qi, qj =
      if r < a then (0, 0)
      else if r < a +. b then (0, 1)
      else if r < a +. b +. c then (1, 0)
      else (1, 1)
    in
    src := (!src * 2) + qi;
    dst := (!dst * 2) + qj
  done;
  (!src, !dst)

let kron_like ~scale ~edge_factor ~seed : Csr.t =
  if scale < 2 || scale > 24 then invalid_arg "Gen.kron_like: scale in [2,24]";
  let n = 1 lsl scale in
  let m = n * edge_factor in
  let rng = Rng.create seed in
  let adj = Array.make n [] in
  let weights = Array.make n [] in
  for _ = 1 to m do
    let src, dst = rmat_edge rng ~scale in
    let dst = if dst = src then (dst + 1) mod n else dst in
    adj.(src) <- dst :: adj.(src);
    weights.(src) <- Rng.int_in rng 1 10 :: weights.(src)
  done;
  (* Kron graphs leave some nodes isolated; give every node one edge so
     all benchmarks touch the whole id space (matches the connected core
     the paper's codes traverse). *)
  for v = 0 to n - 1 do
    if adj.(v) = [] then begin
      adj.(v) <- [ Rng.int rng n ];
      weights.(v) <- [ Rng.int_in rng 1 10 ]
    end
  done;
  let g = Csr.of_adjacency ~weights adj in
  Csr.validate g;
  g

(** A ragged matrix/graph with uniformly random degrees in [lo, hi] — used
    by tests and microbenchmarks. *)
let uniform_random ~n ~deg_lo ~deg_hi ~seed : Csr.t =
  let rng = Rng.create seed in
  let adj =
    Array.init n (fun v ->
        let d = Rng.int_in rng deg_lo deg_hi in
        List.init d (fun _ ->
            let u = Rng.int rng n in
            if u = v then (u + 1) mod n else u))
  in
  let g = Csr.of_adjacency adj in
  Csr.validate g;
  g
