(** Compressed Sparse Row graphs/matrices — the representation all the
    paper's graph benchmarks use ([5]). *)

type t = {
  n : int;  (** nodes (or matrix rows) *)
  row_ptr : int array;  (** length n+1 *)
  col : int array;  (** column/neighbor indices, length row_ptr.(n) *)
  weights : int array;  (** per-edge integer weights (SSSP); length nnz *)
}

let nnz g = g.row_ptr.(g.n)

let degree g v = g.row_ptr.(v + 1) - g.row_ptr.(v)

let max_degree g =
  let m = ref 0 in
  for v = 0 to g.n - 1 do
    m := Int.max !m (degree g v)
  done;
  !m

let avg_degree g = Float.of_int (nnz g) /. Float.of_int (Int.max 1 g.n)

(** Build from adjacency lists; edge weights supplied per edge or default 1. *)
let of_adjacency ?(weights : int list array option) (adj : int list array) : t
    =
  let n = Array.length adj in
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + List.length adj.(v)
  done;
  let m = row_ptr.(n) in
  let col = Array.make (Int.max 1 m) 0 in
  let w = Array.make (Int.max 1 m) 1 in
  for v = 0 to n - 1 do
    List.iteri (fun i u -> col.(row_ptr.(v) + i) <- u) adj.(v);
    match weights with
    | Some ws -> List.iteri (fun i x -> w.(row_ptr.(v) + i) <- x) ws.(v)
    | None -> ()
  done;
  { n; row_ptr; col; weights = w }

exception Invalid of string

(** Check structural invariants; raises {!Invalid}. *)
let validate g =
  if Array.length g.row_ptr <> g.n + 1 then
    raise (Invalid "row_ptr length must be n+1");
  if g.row_ptr.(0) <> 0 then raise (Invalid "row_ptr must start at 0");
  for v = 0 to g.n - 1 do
    if g.row_ptr.(v + 1) < g.row_ptr.(v) then
      raise (Invalid "row_ptr must be non-decreasing")
  done;
  let m = nnz g in
  if Array.length g.col < m then raise (Invalid "col shorter than nnz");
  if Array.length g.weights < m then raise (Invalid "weights shorter than nnz");
  for e = 0 to m - 1 do
    if g.col.(e) < 0 || g.col.(e) >= g.n then
      raise (Invalid (Printf.sprintf "edge %d targets invalid node %d" e g.col.(e)))
  done

(** Transpose (reverse every edge); weights follow their edges. *)
let transpose g =
  let in_deg = Array.make g.n 0 in
  for e = 0 to nnz g - 1 do
    in_deg.(g.col.(e)) <- in_deg.(g.col.(e)) + 1
  done;
  let row_ptr = Array.make (g.n + 1) 0 in
  for v = 0 to g.n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + in_deg.(v)
  done;
  let m = nnz g in
  let col = Array.make (Int.max 1 m) 0 in
  let weights = Array.make (Int.max 1 m) 1 in
  let cursor = Array.copy row_ptr in
  for v = 0 to g.n - 1 do
    for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      let u = g.col.(e) in
      col.(cursor.(u)) <- v;
      weights.(cursor.(u)) <- g.weights.(e);
      cursor.(u) <- cursor.(u) + 1
    done
  done;
  { n = g.n; row_ptr; col; weights }

(** Undirected closure: every edge present in both directions (duplicates
    removed).  Graph coloring needs symmetric conflict visibility. *)
let symmetrize g =
  let adj = Array.make g.n [] in
  let add v u = if u <> v then adj.(v) <- u :: adj.(v) in
  for v = 0 to g.n - 1 do
    for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      add v g.col.(e);
      add g.col.(e) v
    done
  done;
  let dedup l = List.sort_uniq compare l in
  let g' = of_adjacency (Array.map dedup adj) in
  validate g';
  g'

(** Out-degree histogram as (bucket_upper_bound, count) pairs. *)
let degree_histogram g =
  let buckets = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; max_int ] in
  let counts = Array.make (List.length buckets) 0 in
  for v = 0 to g.n - 1 do
    let d = degree g v in
    let rec place i = function
      | [] -> ()
      | b :: rest -> if d <= b then counts.(i) <- counts.(i) + 1 else place (i + 1) rest
    in
    place 0 buckets
  done;
  List.mapi (fun i b -> (b, counts.(i))) buckets
