(** Sequential reference implementations used to verify every GPU variant
    (the simulator's results must match these exactly, or within floating
    tolerance where atomics reorder float additions). *)

let inf = 1_000_000_000

(** Dijkstra with a simple binary-heap-free O(n^2 + m) loop is fine at our
    scales; weights are small positive ints. *)
let sssp (g : Csr.t) ~src =
  let dist = Array.make g.n inf in
  dist.(src) <- 0;
  let visited = Array.make g.n false in
  let rec loop () =
    let u = ref (-1) and best = ref inf in
    for v = 0 to g.n - 1 do
      if (not visited.(v)) && dist.(v) < !best then begin
        u := v;
        best := dist.(v)
      end
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      for e = g.row_ptr.(!u) to g.row_ptr.(!u + 1) - 1 do
        let v = g.col.(e) in
        let alt = dist.(!u) + g.weights.(e) in
        if alt < dist.(v) then dist.(v) <- alt
      done;
      loop ()
    end
  in
  loop ();
  dist

(** y = A x for a CSR matrix whose values are [float_of_int weights]. *)
let spmv (g : Csr.t) (x : float array) =
  Array.init g.n (fun r ->
      let acc = ref 0.0 in
      for e = g.row_ptr.(r) to g.row_ptr.(r + 1) - 1 do
        acc := !acc +. (Float.of_int g.weights.(e) *. x.(g.col.(e)))
      done;
      !acc)

(** Push-style PageRank, [iters] synchronous iterations with damping [d];
    matches the GPU schedule exactly (modulo float addition order). *)
let pagerank (g : Csr.t) ~iters ~d =
  let n = g.n in
  let pr = Array.make n (1.0 /. Float.of_int n) in
  let next = Array.make n 0.0 in
  for _ = 1 to iters do
    Array.fill next 0 n ((1.0 -. d) /. Float.of_int n);
    for v = 0 to n - 1 do
      let deg = Csr.degree g v in
      if deg > 0 then begin
        let share = d *. pr.(v) /. Float.of_int deg in
        for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
          next.(g.col.(e)) <- next.(g.col.(e)) +. share
        done
      end
    done;
    Array.blit next 0 pr 0 n
  done;
  pr

(** BFS levels over the out-edges; unreachable nodes keep [inf]. *)
let bfs_levels (g : Csr.t) ~src =
  let levels = Array.make g.n inf in
  levels.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = g.row_ptr.(u) to g.row_ptr.(u + 1) - 1 do
      let v = g.col.(e) in
      if levels.(v) = inf then begin
        levels.(v) <- levels.(u) + 1;
        Queue.push v q
      end
    done
  done;
  levels

(** Validity check for a graph coloring over the UNDIRECTED closure of g
    (the GPU kernels treat an out-edge as a conflict in both directions):
    every node colored (>= 0) and no edge monochromatic. *)
let valid_coloring (g : Csr.t) (colors : int array) =
  let ok = ref true in
  for v = 0 to g.n - 1 do
    if colors.(v) < 0 then ok := false;
    for e = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
      let u = g.col.(e) in
      if u <> v && colors.(u) = colors.(v) then ok := false
    done
  done;
  !ok
