(** Synthetic graph generators standing in for the paper's datasets (see
    DESIGN.md, substitution table).  All are deterministic in [seed]. *)

(** CiteSeer stand-in: power-law out-degrees with a heavy tail (up to
    1199, as in the DIMACS CiteSeer graph), preferential-attachment-style
    targets, edge weights in [1, 10].  Every node has out-degree ≥ 1. *)
val citeseer_like : n:int -> seed:int -> Csr.t

(** Kron_log16 stand-in: an R-MAT generator with the usual (0.57, 0.19,
    0.19, 0.05) quadrant probabilities over [2^scale] nodes and
    [edge_factor] edges per node; isolated nodes receive one random edge. *)
val kron_like : scale:int -> edge_factor:int -> seed:int -> Csr.t

(** Ragged matrix with uniform degrees in [\[deg_lo, deg_hi\]] (tests and
    microbenchmarks). *)
val uniform_random : n:int -> deg_lo:int -> deg_hi:int -> seed:int -> Csr.t
