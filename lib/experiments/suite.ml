(** Shared run collection for the evaluation figures.

    Figures 7-10 all read the same 35 runs (7 apps x 5 variants); this
    module runs them once and caches the reports.  Every run verifies its
    output against the CPU reference, so a populated suite doubles as an
    integration test of the whole stack. *)

module H = Dpc_apps.Harness
module R = Dpc_apps.Registry
module M = Dpc_sim.Metrics
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session

type row = {
  app : string;
  dataset : string;
  results : (H.variant * M.report) list;
}

type t = row list

let variant_order = H.all_variants

let report_of row v = List.assoc v row.results

let basic row = report_of row H.Basic

(** File-name slug for one (app, variant) run: lowercase with every
    non-alphanumeric squeezed to ['-'] (e.g. ["sssp-basic-dp"]). *)
let run_slug ~app variant =
  let raw = app ^ "-" ^ H.variant_to_string variant in
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as l -> l
      | _ -> '-')
    raw

(* Capture the device's event stream and drop the Chrome trace and the
   per-kernel profile next to each other in [dir].  Runs inside the
   worker domain; each task writes distinct files, so parallel collection
   is race-free and the bytes depend only on the (deterministic) run. *)
let write_run_artifacts ~dir ~app variant dev =
  let slug = run_slug ~app variant in
  let events = Dpc_sim.Device.profile dev in
  let num_smx = (Dpc_sim.Device.config dev).Dpc_gpu.Config.num_smx in
  let save name contents =
    let oc = open_out (Filename.concat dir name) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents)
  in
  save (slug ^ ".trace.json")
    (Dpc_prof.Chrome_trace.to_string ~num_smx events);
  save (slug ^ ".profile.json")
    (Dpc_prof.Json.to_string_pretty
       (Dpc_prof.Profile.to_json (Dpc_prof.Profile.of_events events)))

(** The suite as a declarative scenario list: every registry app (or the
    [apps] subset) at every variant, at [scale], on the [cfg] device
    preset. *)
let scenarios ?scale ?(cfg = "k20c") ?(apps = R.all) () =
  List.concat_map
    (fun (e : R.entry) ->
      List.map
        (fun v -> Scenario.make ~cfg ?scale ~app:e.R.name v)
        variant_order)
    apps

(** Collect all runs through the engine.  [scale] overrides each app's
    default problem size (interpreted per app); [cfg] names a device
    preset.  The 35 (app x variant) simulations are independent, so the
    session fans them out over its domain pool; every simulation builds
    its own device and dataset from fixed seeds, so the collected reports
    are identical regardless of the job count.  [apps] restricts the
    collection to a subset of the registry (default: all seven).

    [session] reuses a caller-owned {!Session.t} (sharing its
    compiled-kernel cache with other figures); without one — or whenever
    [trace_dir] is set, because the artifact hook is fixed at session
    creation — a fresh session with [jobs] workers (and the [sched] pool
    scheduler, when given) is built here.
    [trace_dir] profiles every run and writes
    [<app>-<variant>.trace.json] (Chrome trace-event format) and
    [<app>-<variant>.profile.json] (per-kernel summary) there; the files
    are byte-identical for any [jobs]. *)
let collect ?(verbose = true) ?scale ?(cfg = "k20c") ?(jobs = 1) ?sched
    ?(apps = R.all) ?trace_dir ?session () : t =
  (match trace_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let session =
    match (session, trace_dir) with
    | Some s, None -> s
    | _, dir ->
      let inspect =
        Option.map
          (fun dir (sc : Scenario.t) dev ->
            write_run_artifacts ~dir ~app:sc.Scenario.app
              sc.Scenario.variant dev)
          dir
      in
      Session.create ~jobs ?sched ~verbose ?inspect ()
  in
  let outcomes = Session.run_all session (scenarios ?scale ~cfg ~apps ()) in
  (* Reassemble per-app rows; [run_all] preserves submission order, so
     this grouping is deterministic.  [Scenario.make] canonicalized the
     app names against the registry, so matching on [e.name] is exact. *)
  List.map
    (fun (e : R.entry) ->
      let results =
        List.filter_map
          (fun (o : Session.outcome) ->
            if o.Session.scenario.Scenario.app = e.R.name then
              Some (o.Session.scenario.Scenario.variant, Session.report o)
            else None)
          outcomes
      in
      { app = e.R.name; dataset = e.R.dataset; results })
    apps

let speedup_over_basic row v =
  (basic row).M.cycles /. (report_of row v).M.cycles

(** Per-variant geometric-mean speedup over basic-dp across all apps. *)
let mean_speedups (t : t) =
  List.map
    (fun v ->
      (v, Dpc_util.Stats.geomean (List.map (fun row -> speedup_over_basic row v) t)))
    [ H.Flat; H.Cons Dpc_kir.Pragma.Warp; H.Cons Dpc_kir.Pragma.Block;
      H.Cons Dpc_kir.Pragma.Grid ]
