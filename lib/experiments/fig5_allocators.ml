(** Figure 5: performance of the three consolidation-buffer allocators
    (CUDA default malloc, halloc, pre-allocated pool) on SSSP, at every
    consolidation granularity, normalized to basic-dp.

    Paper's findings to reproduce: default and halloc are close to each
    other; at warp level they are far worse than the pool (frequent small
    allocations); at block level the pool is ~5.7x ahead of them; at grid
    level (one buffer) all three are equivalent. *)

module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Alloc = Dpc_alloc.Allocator
module Pragma = Dpc_kir.Pragma
module Table = Dpc_util.Table
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session

type result = {
  basic_cycles : float;
  flat_speedup : float;
  (* (granularity, allocator) -> speedup over basic *)
  cells : ((Pragma.granularity * Alloc.kind) * float) list;
}

let granularities = [ Pragma.Warp; Pragma.Block; Pragma.Grid ]
let allocators = [ Alloc.Default; Alloc.Halloc; Alloc.Pool ]

(* One independent simulation per table cell, plus the two references. *)
type task = Basic_ref | Flat_ref | Cell of Pragma.granularity * Alloc.kind

let tasks =
  Basic_ref :: Flat_ref
  :: List.concat_map
       (fun g -> List.map (fun a -> Cell (g, a)) allocators)
       granularities

let scenario ?scale ~cfg task =
  match task with
  | Basic_ref -> Scenario.make ~cfg ?scale ~app:"SSSP" H.Basic
  | Flat_ref -> Scenario.make ~cfg ?scale ~app:"SSSP" H.Flat
  | Cell (g, a) -> Scenario.make ~alloc:a ~cfg ?scale ~app:"SSSP" (H.Cons g)

(** The figure as a declarative scenario list.  Every cell differs from
    its siblings only in allocator (or granularity), so a caching session
    builds each consolidated program once and reuses it across the
    allocator sweep. *)
let scenarios ?scale ?(cfg = "k20c") () =
  List.map (scenario ?scale ~cfg) tasks

let run ?(verbose = true) ?scale ?(cfg = "k20c") ?(jobs = 1) ?session () :
    result =
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~jobs ~verbose ()
  in
  let reports =
    List.map Session.report
      (Session.run_all session (scenarios ?scale ~cfg ()))
  in
  let tagged = List.combine tasks reports in
  let report_of t = List.assoc t tagged in
  let basic = report_of Basic_ref in
  let flat = report_of Flat_ref in
  let cells =
    List.filter_map
      (function
        | Cell (g, a), (r : M.report) ->
          Some ((g, a), basic.M.cycles /. r.M.cycles)
        | (Basic_ref | Flat_ref), _ -> None)
      tagged
  in
  {
    basic_cycles = basic.M.cycles;
    flat_speedup = basic.M.cycles /. flat.M.cycles;
    cells;
  }

let to_table (r : result) =
  let t =
    Table.create ~title:"Figure 5: buffer allocators on SSSP (speedup over basic-dp)"
      ~headers:[ "allocator"; "warp-level"; "block-level"; "grid-level" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ] ()
  in
  List.iter
    (fun a ->
      Table.add_row t
        (Alloc.kind_to_string a
        :: List.map
             (fun g -> Table.fmt_ratio (List.assoc (g, a) r.cells))
             granularities))
    allocators;
  Table.add_row t
    [ "(no-dp reference)"; Table.fmt_ratio r.flat_speedup;
      Table.fmt_ratio r.flat_speedup; Table.fmt_ratio r.flat_speedup ];
  t

let print ?verbose ?scale ?cfg ?jobs ?session () =
  Table.print (to_table (run ?verbose ?scale ?cfg ?jobs ?session ()))
