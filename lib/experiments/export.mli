(** JSON snapshots of the evaluation suite and of scenario sweeps.

    Two schemas:

    - [dpc-bench-v1] ({!suite_json}): the full figure suite — raw
      {!Dpc_sim.Metrics.report}s plus the rendered tables, cell-for-cell
      identical to what [bin/experiments] prints.
    - [dpc-sweep-v1] ({!sweep_json}): one record per scenario outcome,
      in submission order; the same records the serve daemon streams.

    Default exports carry no timestamps or environment data, so
    identical runs produce byte-identical files (the CI exact-diff
    guards depend on this); [timings:true] opts into per-outcome
    [elapsed_s] wall clocks. *)

val schema_version : string
val sweep_schema_version : string

val table_json : Dpc_util.Table.t -> Dpc_prof.Json.t
val row_json : Suite.row -> Dpc_prof.Json.t

(** The full suite snapshot.  [scale] records the problem-size override
    the suite ran with (absent = every app's default); [tables] are the
    rendered figures, in presentation order. *)
val suite_json :
  ?scale:int -> Suite.t -> tables:Dpc_util.Table.t list -> Dpc_prof.Json.t

(** One tagged engine outcome: the full scenario (object, canonical key,
    hash) and either the metrics report or the failure message.
    [timings] (default [false]) adds the measured [elapsed_s]. *)
val outcome_json :
  ?timings:bool -> Dpc_engine.Session.outcome -> Dpc_prof.Json.t

(** Sweep snapshot wrapping {!outcome_json} records.  [source] tags the
    producer (default ["bin/experiments"]; the daemon client writes
    ["dpc-client"]). *)
val sweep_json :
  ?source:string ->
  ?timings:bool ->
  Dpc_engine.Session.outcome list ->
  Dpc_prof.Json.t

(** Pretty-print a JSON document to [path]. *)
val write_file : string -> Dpc_prof.Json.t -> unit
