(** Figure 6: kernel-configuration selection on Tree Descendants, over
    tree datasets 1 and 2 — KC_1 / KC_16 / KC_32 versus 1-1 mapping and
    exhaustive search, per consolidation granularity, normalized to
    basic-dp.

    Paper's findings to reproduce: KC_1 is best for grid-level, KC_16 for
    block-level, KC_32 for warp-level; 1-1 mapping is much worse for
    block/warp level; the KC defaults reach ~97% of the exhaustive-search
    optimum. *)

module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Cs = Dpc.Config_select
module Pragma = Dpc_kir.Pragma
module Table = Dpc_util.Table
module Cfg = Dpc_gpu.Config
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session

type policy_point = Kc1 | Kc16 | Kc32 | One_to_one | Exhaustive

let policy_points = [ Kc1; Kc16; Kc32; One_to_one; Exhaustive ]

let point_name = function
  | Kc1 -> "KC_1"
  | Kc16 -> "KC_16"
  | Kc32 -> "KC_32"
  | One_to_one -> "1-1 mapping"
  | Exhaustive -> "exhaustive"

let granularities = [ Pragma.Warp; Pragma.Block; Pragma.Grid ]

(* Candidate (blocks, threads) space for the exhaustive search [16]. *)
let exhaustive_space (cfg : Cfg.t) =
  let threads = [ 32; 64; 128; 256 ] in
  List.concat_map
    (fun t ->
      let fill = Cfg.device_fill_blocks cfg ~block_dim:t in
      List.filter_map
        (fun b -> if b <= fill * 2 then Some (b, t) else None)
        [ 1; 2; 4; 8; 13; 26; 52; 104; 208 ])
    threads

type dataset_result = {
  dataset : string;
  basic_cycles : float;
  (* (granularity, policy point) -> speedup over basic *)
  cells : ((Pragma.granularity * policy_point) * float) list;
  best_configs : (Pragma.granularity * (int * int)) list;
}

(* One independent simulation per task: the basic-dp reference, each
   fixed-policy point, and each candidate of the exhaustive sweep. *)
type task =
  | T_basic
  | T_point of Pragma.granularity * policy_point
  | T_cand of Pragma.granularity * (int * int)

(* Scenario for one fig-6 cell.  The reduced tree cap keeps the
   exhaustive sweep's worst configs (huge 1-1 grids full of per-block
   buffers) inside memory; it and the dataset choice travel as app
   extras. *)
let scenario ?policy ?scale ~cfg ~dataset variant =
  Scenario.make ?policy ~cfg ?scale ~app:"TD"
    ~extras:(Dpc_apps.Tree_common.extras ~max_nodes:40_000 ~dataset ())
    variant

let run_dataset ?(verbose = true) ?scale ~cfg ~session ~dataset () :
    dataset_result =
  let dname = match dataset with `Dataset1 -> "dataset1" | `Dataset2 -> "dataset2" in
  let log fmt =
    Printf.ksprintf
      (fun s -> if verbose then Printf.eprintf "[fig6:%s] %s\n%!" dname s)
      fmt
  in
  let policy_of = function
    | Kc1 -> Cs.Kc 1
    | Kc16 -> Cs.Kc 16
    | Kc32 -> Cs.Kc 32
    | One_to_one -> Cs.One_to_one
    | Exhaustive -> assert false
  in
  let scenario_of = function
    | T_basic -> scenario ?scale ~cfg ~dataset H.Basic
    | T_point (g, point) ->
      scenario ~policy:(policy_of point) ?scale ~cfg ~dataset (H.Cons g)
    | T_cand (g, (b, t)) ->
      scenario ~policy:(Cs.Explicit (b, t)) ?scale ~cfg ~dataset (H.Cons g)
  in
  let cfg_t = Scenario.resolve_cfg (scenario ?scale ~cfg ~dataset H.Basic) in
  let tasks =
    T_basic
    :: List.concat_map
         (fun g ->
           List.concat_map
             (fun point ->
               match point with
               | Exhaustive ->
                 List.map (fun c -> T_cand (g, c)) (exhaustive_space cfg_t)
               | _ -> [ T_point (g, point) ])
             policy_points)
         granularities
  in
  let outcomes = Session.run_all session (List.map scenario_of tasks) in
  (* Exhaustive candidates too small for the workload fail their run;
     [run_all] captured that as [Error], which the sweep reduction below
     skips.  The reference and fixed-policy points must succeed —
     [Session.report] re-raises their failures. *)
  let reports =
    List.map
      (fun (o : Session.outcome) ->
        match o.Session.result with Ok r -> Some r | Error _ -> None)
      outcomes
  in
  let tagged = List.combine tasks reports in
  let tagged_outcomes = List.combine tasks outcomes in
  let basic = Session.report (List.assoc T_basic tagged_outcomes) in
  let speedup (r : M.report) = basic.M.cycles /. r.M.cycles in
  let cells = ref [] and best_configs = ref [] in
  List.iter
    (fun g ->
      let gname = Pragma.granularity_to_string g in
      List.iter
        (fun point ->
          match point with
          | Exhaustive ->
            (* Reduce the sweep's candidates in submission order: the
               first strictly-better candidate wins, exactly as the
               serial sweep did. *)
            let best = ref neg_infinity and best_cfg = ref (0, 0) in
            List.iter
              (fun (task, r) ->
                match (task, r) with
                | T_cand (g', c), Some r when g' = g ->
                  let s = speedup r in
                  if s > !best then begin
                    best := s;
                    best_cfg := c
                  end
                | _ -> ())
              tagged;
            log "%s exhaustive best %s at (%d,%d)" gname
              (Table.fmt_ratio !best) (fst !best_cfg) (snd !best_cfg);
            cells := ((g, Exhaustive), !best) :: !cells;
            best_configs := (g, !best_cfg) :: !best_configs
          | _ ->
            let r =
              Session.report (List.assoc (T_point (g, point)) tagged_outcomes)
            in
            cells := ((g, point), speedup r) :: !cells)
        policy_points)
    granularities;
  { dataset = dname; basic_cycles = basic.M.cycles; cells = !cells;
    best_configs = !best_configs }

type result = dataset_result list

let run ?(verbose = true) ?scale ?(cfg = "k20c") ?(jobs = 1) ?session () :
    result =
  (* One session for both datasets: the policy points and candidate
     configurations build identical programs on either dataset, so the
     second dataset's sweep runs entirely out of the compiled cache. *)
  let session =
    match session with
    | Some s -> s
    | None -> Session.create ~jobs ~verbose ()
  in
  [
    run_dataset ~verbose ?scale ~cfg ~session ~dataset:`Dataset1 ();
    run_dataset ~verbose ?scale ~cfg ~session ~dataset:`Dataset2 ();
  ]

let to_tables (r : result) =
  List.map
    (fun d ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 6: kernel configurations on TD, %s (speedup over \
                basic-dp)"
               d.dataset)
          ~headers:[ "configuration"; "warp-level"; "block-level"; "grid-level" ]
          ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ] ()
      in
      List.iter
        (fun point ->
          Table.add_row t
            (point_name point
            :: List.map
                 (fun g -> Table.fmt_ratio (List.assoc (g, point) d.cells))
                 granularities))
        policy_points;
      t)
    r

(** Fraction of the exhaustive optimum achieved by the paper's default
    policy (KC_32/KC_16/KC_1 by granularity); paper reports ~97%. *)
let default_vs_exhaustive (r : result) =
  List.concat_map
    (fun d ->
      List.map
        (fun g ->
          let default_point =
            match g with
            | Pragma.Warp -> Kc32
            | Pragma.Block -> Kc16
            | Pragma.Grid -> Kc1
          in
          List.assoc (g, default_point) d.cells
          /. List.assoc (g, Exhaustive) d.cells)
        granularities)
    r
  |> Dpc_util.Stats.mean

let print ?verbose ?scale ?cfg ?jobs ?session () =
  let r = run ?verbose ?scale ?cfg ?jobs ?session () in
  List.iter Table.print (to_tables r);
  Printf.printf
    "Default KC policy achieves %.1f%% of the exhaustive-search optimum \
     (paper: ~97%%)\n"
    (100.0 *. default_vs_exhaustive r)
