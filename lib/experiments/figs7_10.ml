(** Figures 7-10: the overall-evaluation figures, all rendered from one
    {!Suite.t} collection.

    - Fig. 7: speedup over basic-dp per benchmark (plus no-dp).
    - Fig. 8: warp execution efficiency, annotated with the number of
      child-kernel invocations.
    - Fig. 9: achieved SMX occupancy.
    - Fig. 10: DRAM transactions relative to basic-dp. *)

module H = Dpc_apps.Harness
module M = Dpc_sim.Metrics
module Table = Dpc_util.Table
module Pragma = Dpc_kir.Pragma

let cons_variants =
  [ H.Cons Pragma.Warp; H.Cons Pragma.Block; H.Cons Pragma.Grid ]

let headers = [ "benchmark"; "no-dp"; "warp-level"; "block-level"; "grid-level" ]
let aligns = Table.[ Left; Right; Right; Right; Right ]

let row_of suite_row f =
  suite_row.Suite.app
  :: List.map f (H.Flat :: cons_variants)

let fig7 (s : Suite.t) =
  let t =
    Table.create ~title:"Figure 7: overall speedup over basic-dp" ~headers
      ~aligns ()
  in
  List.iter
    (fun row ->
      Table.add_row t
        (row_of row (fun v ->
             Table.fmt_ratio (Suite.speedup_over_basic row v))))
    s;
  let means = Suite.mean_speedups s in
  Table.add_row t
    ("geomean"
    :: List.map
         (fun v -> Table.fmt_ratio (List.assoc v means))
         (H.Flat :: cons_variants));
  t

let fig8 (s : Suite.t) =
  let t =
    Table.create
      ~title:
        "Figure 8: warp execution efficiency (child kernel launches in \
         parentheses)"
      ~headers:
        [ "benchmark"; "basic-dp"; "warp-level"; "block-level"; "grid-level" ]
      ~aligns ()
  in
  List.iter
    (fun row ->
      Table.add_row t
        (row.Suite.app
        :: List.map
             (fun v ->
               let r = Suite.report_of row v in
               Printf.sprintf "%s (%d)"
                 (Table.fmt_pct r.M.warp_efficiency)
                 r.M.device_launches)
             (H.Basic :: cons_variants)))
    s;
  t

let fig9 (s : Suite.t) =
  let t =
    Table.create ~title:"Figure 9: achieved SMX occupancy"
      ~headers:
        [ "benchmark"; "basic-dp"; "warp-level"; "block-level"; "grid-level" ]
      ~aligns ()
  in
  List.iter
    (fun row ->
      Table.add_row t
        (row.Suite.app
        :: List.map
             (fun v ->
               Table.fmt_pct (Suite.report_of row v).M.occupancy)
             (H.Basic :: cons_variants)))
    s;
  t

let fig10 (s : Suite.t) =
  let t =
    Table.create
      ~title:"Figure 10: DRAM transactions relative to basic-dp"
      ~headers:
        [ "benchmark"; "warp-level"; "block-level"; "grid-level" ]
      ~aligns:Table.[ Left; Right; Right; Right ] ()
  in
  List.iter
    (fun row ->
      let basic = Float.of_int (Suite.basic row).M.dram_transactions in
      Table.add_row t
        (row.Suite.app
        :: List.map
             (fun v ->
               let r = Suite.report_of row v in
               Table.fmt_pct (Float.of_int r.M.dram_transactions /. basic))
             cons_variants))
    s;
  t

(** Collect the shared suite — fanning its 35 independent simulations
    over [jobs] domains — and render every figure that reads it, in
    presentation order.  The returned tables are identical for any
    [jobs]. *)
let collect_and_render ?verbose ?scale ?cfg ?jobs () =
  let s = Suite.collect ?verbose ?scale ?cfg ?jobs () in
  (s, [ fig7 s; fig8 s; fig9 s; fig10 s ])

(** Section V.C text: average speedups of each consolidation granularity
    over basic-dp and over no-dp. *)
let summary (s : Suite.t) =
  let t =
    Table.create ~title:"Summary (Section V.C averages, geometric mean)"
      ~headers:[ "variant"; "speedup vs basic-dp"; "speedup vs no-dp" ]
      ~aligns:Table.[ Left; Right; Right ] ()
  in
  List.iter
    (fun v ->
      let over_basic =
        Dpc_util.Stats.geomean
          (List.map (fun row -> Suite.speedup_over_basic row v) s)
      in
      let over_flat =
        Dpc_util.Stats.geomean
          (List.map
             (fun row ->
               (Suite.report_of row H.Flat).M.cycles
               /. (Suite.report_of row v).M.cycles)
             s)
      in
      Table.add_row t
        [ H.variant_to_string v; Table.fmt_ratio over_basic;
          Table.fmt_ratio over_flat ])
    cons_variants;
  t
