(** JSON snapshots of the evaluation suite (the `BENCH_pr2.json` schema,
    documented in EXPERIMENTS.md).

    Two complementary views of the same {!Suite.t} collection:

    - the raw {!Dpc_sim.Metrics.report} of every (app x variant) run, as
      numbers, for trend tracking and regression gating across PRs;
    - the rendered figure tables, cell-for-cell identical to what
      [bin/experiments] prints, so a JSON consumer can cross-check the
      human-readable output without re-deriving any formatting.

    The export contains no timestamps or environment data: identical
    runs produce byte-identical files. *)

module Json = Dpc_prof.Json
module M = Dpc_sim.Metrics
module H = Dpc_apps.Harness
module Table = Dpc_util.Table

let schema_version = "dpc-bench-v1"

let table_json (t : Table.t) =
  Json.Obj
    [
      ("title", Json.String (Table.title t));
      ( "headers",
        Json.List (List.map (fun h -> Json.String h) (Table.headers t)) );
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map (fun c -> Json.String c) r))
             (Table.rows t)) );
    ]

let row_json (row : Suite.row) =
  Json.Obj
    [
      ("app", Json.String row.Suite.app);
      ("dataset", Json.String row.Suite.dataset);
      ( "variants",
        Json.List
          (List.map
             (fun (v, report) ->
               Json.Obj
                 [
                   ("variant", Json.String (H.variant_to_string v));
                   ("report", M.to_json report);
                 ])
             row.Suite.results) );
    ]

(** The full snapshot.  [scale] records the problem-size override the
    suite ran with (absent = every app's default); [tables] are the
    rendered figures, in presentation order. *)
let suite_json ?scale (s : Suite.t) ~(tables : Table.t list) =
  Json.Obj
    ([
       ("schema", Json.String schema_version);
       ("source", Json.String "bin/experiments");
     ]
    @ (match scale with
      | Some n -> [ ("scale", Json.Int n) ]
      | None -> [])
    @ [
        ("apps", Json.List (List.map row_json s));
        ( "mean_speedups",
          Json.List
            (List.map
               (fun (v, x) ->
                 Json.Obj
                   [
                     ("variant", Json.String (H.variant_to_string v));
                     ("over_basic", Json.Float x);
                   ])
               (Suite.mean_speedups s)) );
        ("tables", Json.List (List.map table_json tables));
      ])

(* --- scenario sweeps (dpc-sweep-v1) ---------------------------------------- *)

let sweep_schema_version = "dpc-sweep-v1"

(** One tagged engine outcome: the full scenario (object and canonical
    key plus hash, so consumers can join runs across sweeps), and either
    the metrics report or the failure message.

    [timings:true] adds the outcome's measured wall clock as an
    [elapsed_s] member — the stable per-scenario duration field the
    serve daemon's latency stats and the cost-learning consumers read.
    It is off by default because wall clocks vary run to run, and the
    default export must stay byte-identical across identical runs (the
    CI exact-diff guards depend on it). *)
let outcome_json ?(timings = false) (o : Dpc_engine.Session.outcome) =
  let sc = o.Dpc_engine.Session.scenario in
  Json.Obj
    ([
       ("scenario", Dpc_engine.Scenario.to_json sc);
       ("key", Json.String (Dpc_engine.Scenario.key sc));
       ("hash", Json.String (Dpc_engine.Scenario.hash sc));
     ]
    @ (if timings then
         [ ("elapsed_s", Json.Float o.Dpc_engine.Session.elapsed_s) ]
       else [])
    @
    match o.Dpc_engine.Session.result with
    | Ok r -> [ ("report", M.to_json r) ]
    | Error e -> [ ("error", Json.String (Printexc.to_string e)) ])

(** Snapshot of a scenario sweep ([--scenario]/[--sweep] runs): one
    entry per outcome, in submission order.  Without [timings] the
    export carries no timestamps or environment data (like
    {!suite_json}), so identical sweeps produce byte-identical files;
    [timings:true] adds each outcome's [elapsed_s]. *)
let sweep_json ?(source = "bin/experiments") ?timings outcomes =
  Json.Obj
    [
      ("schema", Json.String sweep_schema_version);
      ("source", Json.String source);
      ("runs", Json.List (List.map (outcome_json ?timings) outcomes));
    ]

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty json))
