(** Aggregated run metrics — the simulator's equivalent of the Nvidia
    Visual Profiler counters the paper reports (Figs. 7-10). *)

type report = {
  cycles : float;  (** end-to-end simulated device cycles *)
  time_ms : float;
  host_launches : int;
  device_launches : int;  (** child kernel invocations (Fig. 8 labels) *)
  warp_efficiency : float;  (** Fig. 8 *)
  occupancy : float;  (** achieved SMX occupancy (Fig. 9) *)
  dram_transactions : int;  (** read+write DRAM transactions (Fig. 10) *)
  l2_hits : int;
  alloc_calls : int;
  alloc_cycles : int;
  pool_fallbacks : int;
  virtualized_launches : int;
  max_pending : int;
  swapped_syncs : int;
  max_depth : int;
  total_grids : int;
}

let speedup ~baseline r = baseline.cycles /. r.cycles

let to_rows r =
  [
    ("cycles", Printf.sprintf "%.0f" r.cycles);
    ("time (ms)", Printf.sprintf "%.3f" r.time_ms);
    ("host launches", string_of_int r.host_launches);
    ("device launches", string_of_int r.device_launches);
    ("warp efficiency", Printf.sprintf "%.1f%%" (100.0 *. r.warp_efficiency));
    ("achieved occupancy", Printf.sprintf "%.1f%%" (100.0 *. r.occupancy));
    ("DRAM transactions", string_of_int r.dram_transactions);
    ("L2 hits", string_of_int r.l2_hits);
    ("allocator calls", string_of_int r.alloc_calls);
    ("allocator cycles", string_of_int r.alloc_cycles);
    ("pool fallbacks", string_of_int r.pool_fallbacks);
    ("virtualized launches", string_of_int r.virtualized_launches);
    ("max pending kernels", string_of_int r.max_pending);
    ("swapped syncs", string_of_int r.swapped_syncs);
    ("max nesting depth", string_of_int r.max_depth);
    ("total grids", string_of_int r.total_grids);
  ]

let print ?(title = "run report") r =
  Printf.printf "--- %s ---\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) (to_rows r)
