(** Aggregated run metrics — the simulator's equivalent of the Nvidia
    Visual Profiler counters the paper reports (Figs. 7-10). *)

type report = {
  cycles : float;  (** end-to-end simulated device cycles *)
  time_ms : float;
  host_launches : int;
  device_launches : int;  (** child kernel invocations (Fig. 8 labels) *)
  warp_efficiency : float;  (** Fig. 8 *)
  occupancy : float;  (** achieved SMX occupancy (Fig. 9) *)
  dram_transactions : int;  (** read+write DRAM transactions (Fig. 10) *)
  l2_hits : int;
  bank_conflict_replays : int;  (** shared-memory replays (deep presets) *)
  mshr_stalls : int;  (** MSHR-full stall transactions (deep presets) *)
  alloc_calls : int;
  alloc_cycles : int;
  pool_fallbacks : int;
  virtualized_launches : int;
  max_pending : int;
  swapped_syncs : int;
  max_depth : int;
  total_grids : int;
}

let speedup ~baseline r = baseline.cycles /. r.cycles

let to_rows r =
  [
    ("cycles", Printf.sprintf "%.0f" r.cycles);
    ("time (ms)", Printf.sprintf "%.3f" r.time_ms);
    ("host launches", string_of_int r.host_launches);
    ("device launches", string_of_int r.device_launches);
    ("warp efficiency", Printf.sprintf "%.1f%%" (100.0 *. r.warp_efficiency));
    ("achieved occupancy", Printf.sprintf "%.1f%%" (100.0 *. r.occupancy));
    ("DRAM transactions", string_of_int r.dram_transactions);
    ("L2 hits", string_of_int r.l2_hits);
    ("bank-conflict replays", string_of_int r.bank_conflict_replays);
    ("MSHR stalls", string_of_int r.mshr_stalls);
    ("allocator calls", string_of_int r.alloc_calls);
    ("allocator cycles", string_of_int r.alloc_cycles);
    ("pool fallbacks", string_of_int r.pool_fallbacks);
    ("virtualized launches", string_of_int r.virtualized_launches);
    ("max pending kernels", string_of_int r.max_pending);
    ("swapped syncs", string_of_int r.swapped_syncs);
    ("max nesting depth", string_of_int r.max_depth);
    ("total grids", string_of_int r.total_grids);
  ]

let print ?(title = "run report") r =
  Printf.printf "--- %s ---\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) (to_rows r)

(** Machine-readable view of the full report.  Keep in sync with the
    record: the completeness test checks every field's value shows up
    both here and in {!to_rows}. *)
let to_json r : Dpc_prof.Json.t =
  Dpc_prof.Json.Obj
    [
      ("cycles", Dpc_prof.Json.Float r.cycles);
      ("time_ms", Dpc_prof.Json.Float r.time_ms);
      ("host_launches", Dpc_prof.Json.Int r.host_launches);
      ("device_launches", Dpc_prof.Json.Int r.device_launches);
      ("warp_efficiency", Dpc_prof.Json.Float r.warp_efficiency);
      ("occupancy", Dpc_prof.Json.Float r.occupancy);
      ("dram_transactions", Dpc_prof.Json.Int r.dram_transactions);
      ("l2_hits", Dpc_prof.Json.Int r.l2_hits);
      ("bank_conflict_replays", Dpc_prof.Json.Int r.bank_conflict_replays);
      ("mshr_stalls", Dpc_prof.Json.Int r.mshr_stalls);
      ("alloc_calls", Dpc_prof.Json.Int r.alloc_calls);
      ("alloc_cycles", Dpc_prof.Json.Int r.alloc_cycles);
      ("pool_fallbacks", Dpc_prof.Json.Int r.pool_fallbacks);
      ("virtualized_launches", Dpc_prof.Json.Int r.virtualized_launches);
      ("max_pending", Dpc_prof.Json.Int r.max_pending);
      ("swapped_syncs", Dpc_prof.Json.Int r.swapped_syncs);
      ("max_depth", Dpc_prof.Json.Int r.max_depth);
      ("total_grids", Dpc_prof.Json.Int r.total_grids);
    ]
