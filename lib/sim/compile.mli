(** One-time lowering of kernel IR into OCaml closures (the interpreter's
    fast path).

    The reference walker in {!Interp} re-traverses the AST for every
    warp x instruction; this module compiles each kernel body once into a
    tree of closures over a typed per-warp register plane (see the
    implementation header for the full design).  Semantics are the
    walker's, charge for charge: both back ends emit byte-identical
    {!Trace} data, including float accumulation order and error identity.

    A compiled kernel's closures own mutable per-node scratch, so a
    {!ckernel} may be reused freely across launches, sessions and runs
    {e within one domain}, but must never execute concurrently in two
    domains.  The engine's cross-run cache therefore keeps one
    compilation table per domain. *)

(** A kernel lowered to closures, with its register-plane layout and the
    inferred parameter storage/types used to vet launch arguments. *)
type ckernel

(** Lower one finalized kernel.  [None] when the kernel uses something
    the fast path does not support (every launch of it must then take
    the reference walker).  Requires {!Dpc_kir.Kernel.finalize} to have
    run (the cached {!Dpc_kir.Typing} inference is consumed here). *)
val compile_kernel : Dpc_kir.Kernel.t -> ckernel option

(** Do this launch's runtime argument values agree with the static slot
    inference the kernel was compiled against?  Rejection falls back to
    the reference walker for this launch only. *)
val args_ok : ckernel -> Dpc_gpu.Memory.t -> Dpc_kir.Value.t list -> bool

(** Execute one block of a compiled kernel and return its trace.  The
    labelled arguments mirror the reference walker's block context;
    [flush_deep] runs a pending launch immediately (deep drain at
    [cudaDeviceSynchronize]), [enqueue] defers it to the session's
    breadth-order queue, [add_alloc_cycles] accumulates allocator cycles
    on the session. *)
val exec_block :
  ckernel ->
  cfg:Dpc_gpu.Config.t ->
  mem:Dpc_gpu.Memory.t ->
  alloc:Dpc_alloc.Allocator.t ->
  l2_tags:int array ->
  gid:int ->
  grid_dim:int ->
  block_dim:int ->
  depth:int ->
  block_idx:int ->
  args:Dpc_kir.Value.t list ->
  grid_mallocs:Dpc_kir.Value.t option array ->
  grid_alloc_count:int ref ->
  flush_deep:(Runtime.pending_launch -> unit) ->
  enqueue:(Runtime.pending_launch -> unit) ->
  add_alloc_cycles:(int -> unit) ->
  deep:bool ->
  Trace.block_trace
