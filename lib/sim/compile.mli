(** One-time lowering of kernel IR into OCaml closures (the interpreter's
    fast path).

    The reference walker in {!Interp} re-traverses the AST for every
    warp x instruction; this module compiles each kernel body once into a
    tree of closures over a typed per-warp register plane (see the
    implementation header for the full design).  Semantics are the
    walker's, charge for charge: both back ends emit byte-identical
    {!Trace} data, including float accumulation order and error identity.

    A compiled kernel's closures own mutable per-node scratch, so a
    {!ckernel} may be reused freely across launches, sessions and runs
    {e within one domain}, but must never execute concurrently in two
    domains.  The engine's cross-run cache therefore keeps one
    compilation table per domain.

    The block/statement machinery below is exposed so that a second
    lowering ({!Bytecode}) can plug into {!compile_kernel} via
    [?run_lower]: it receives each maximal barrier-free statement run and
    may lower it however it likes, falling back per statement to
    {!compile_stmt} for anything it does not support.  Such a lowering
    executes inside the same {!cctx}/{!warp} state and must preserve the
    walker's charge-for-charge semantics. *)

(** Raised (compile time only) when a kernel uses something the fast
    path does not support; {!compile_kernel} then returns [None] and
    every launch of the kernel takes the reference walker. *)
exception Not_compilable

(** Where a frame slot lives: [Si]/[Sf] are rows of the unboxed int/float
    planes (buffer handles are [Si] ids), [Sb] rows of the boxed plane. *)
type storage = Si of int | Sf of int | Sb of int

type warp = {
  widx : int;
  base_lane : int;  (** threadIdx.x of lane 0 *)
  nlanes : int;  (** threads in this warp (last warp may be partial) *)
  ints : int array array;  (** indexed [row].[lane] *)
  flts : float array array;
  boxd : Dpc_kir.Value.t array array;
  mutable returned : int;  (** bitmask of lanes that executed [return] *)
}

val full_mask : warp -> int

val live_mask : warp -> int

(** Per-block execution context, mirroring Interp's bctx. *)
type cctx = {
  cfg : Dpc_gpu.Config.t;
  mem : Dpc_gpu.Memory.t;
  alloc : Dpc_alloc.Allocator.t;
  mm : Memmodel.t;  (** memory-hierarchy model: the single accounting path *)
  gid : int;
  grid_dim : int;
  block_dim : int;
  depth : int;
  block_idx : int;
  shared : Dpc_kir.Value.t array array;  (** by shared-decl index *)
  warps : warp array;
  seg : Trace.seg_builder;
  block_mallocs : Dpc_kir.Value.t option array;  (** by Malloc site *)
  grid_mallocs : Dpc_kir.Value.t option array;
  grid_alloc_count : int ref;
  pending : Runtime.pending_launch Dpc_util.Vec.t;
  deep : bool;
  flush_deep : Runtime.pending_launch -> unit;
      (** run one pending launch now, draining its subtree *)
  add_alloc_cycles : int -> unit;  (** session alloc_cycles accumulator *)
}

val charge : cctx -> int -> int -> unit
(** [charge c cycles active]: issue cycles against the block's segment. *)

val account : cctx -> warp -> int array -> int -> unit
(** [account c w addrs n]: one warp global-memory instruction through
    {!Memmodel.account_access} (coalescing, L2, MSHR). *)

val account_shared : cctx -> int array -> int -> unit
(** [account_shared c idxs n]: one warp shared-memory instruction
    through {!Memmodel.account_shared} (bank-conflict replays). *)

(** Compile-time environment of one kernel: slot types, slot storage
    rows, shared-array indices.  [run_lower], when set, replaces the
    closure lowering of every barrier-free statement run. *)
type env = {
  kname : string;
  slots : Dpc_kir.Typing.slot_ty array;
  storage : storage array;
  shindex : (string, int) Hashtbl.t;  (** shared name -> decl index *)
  shtys : Dpc_kir.Typing.sh_ty array;
  run_lower : (env -> Dpc_kir.Ast.stmt list -> cctx -> warp -> unit) option;
}

val storage_of : env -> Dpc_kir.Ast.var -> storage
(** Storage row of a resolved variable; raises {!Not_compilable} on an
    unresolved slot. *)

val compile_stmt : env -> Dpc_kir.Ast.stmt -> cctx -> warp -> int -> unit
(** Lower one statement to a closure.  The closure re-filters its mask
    against [w.returned], so callers may pass an unfiltered region mask.
    Raises {!Not_compilable} (at compile time) for unsupported forms. *)

(** A kernel lowered to closures, with its register-plane layout and the
    inferred parameter storage/types used to vet launch arguments. *)
type ckernel

(** Lower one finalized kernel.  [None] when the kernel uses something
    the fast path does not support (every launch of it must then take
    the reference walker).  Requires {!Dpc_kir.Kernel.finalize} to have
    run (the cached {!Dpc_kir.Typing} inference is consumed here).
    [run_lower], when given, lowers each barrier-free statement run in
    place of the closure path (block-uniform segments keep closures). *)
val compile_kernel :
  ?run_lower:(env -> Dpc_kir.Ast.stmt list -> cctx -> warp -> unit) ->
  Dpc_kir.Kernel.t ->
  ckernel option

(** Do this launch's runtime argument values agree with the static slot
    inference the kernel was compiled against?  Rejection falls back to
    the reference walker for this launch only. *)
val args_ok : ckernel -> Dpc_gpu.Memory.t -> Dpc_kir.Value.t list -> bool

(** Execute one block of a compiled kernel and return its trace.  The
    labelled arguments mirror the reference walker's block context;
    [flush_deep] runs a pending launch immediately (deep drain at
    [cudaDeviceSynchronize]), [enqueue] defers it to the session's
    breadth-order queue, [add_alloc_cycles] accumulates allocator cycles
    on the session. *)
val exec_block :
  ckernel ->
  cfg:Dpc_gpu.Config.t ->
  mem:Dpc_gpu.Memory.t ->
  alloc:Dpc_alloc.Allocator.t ->
  mm:Memmodel.t ->
  gid:int ->
  grid_dim:int ->
  block_dim:int ->
  depth:int ->
  block_idx:int ->
  args:Dpc_kir.Value.t list ->
  grid_mallocs:Dpc_kir.Value.t option array ->
  grid_alloc_count:int ref ->
  flush_deep:(Runtime.pending_launch -> unit) ->
  enqueue:(Runtime.pending_launch -> unit) ->
  add_alloc_cycles:(int -> unit) ->
  deep:bool ->
  Trace.block_trace
