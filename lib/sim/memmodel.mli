(** The memory-hierarchy model — the single per-access accounting path.

    Owns every cost the simulator charges for a memory instruction:
    coalesced segment formation, the direct-mapped L2 filter, and the
    config-gated deep-model features (shared-memory bank-conflict
    replay, the per-warp MSHR occupancy limit).  All three interpreter
    tiers call these entry points — there is deliberately no other
    accounting implementation in the tree, so the tiers cannot drift.

    With the features off ([shared_banks = 0], [mshr_per_warp = 0] —
    the default [k20c] preset) the model is exactly the historical flat
    path: the new counters stay zero and traces are byte-identical.
    Replay/stall costs are separate {!Trace} counters priced by
    {!Timing.seg_work}, never folded into issue cycles. *)

type t

(** Fresh model state for one interpreter session: L2 tags, dedup
    scratch and per-warp MSHR occupancy.  Session-lifetime, single
    domain — blocks execute sequentially against it. *)
val create : Dpc_gpu.Config.t -> t

val cfg : t -> Dpc_gpu.Config.t

(** Does this model track shared-memory bank conflicts?  Call sites
    skip per-lane index collection entirely when [false]. *)
val models_shared : t -> bool

(** Reset per-block state (MSHR occupancy).  Every tier calls this when
    a block starts executing, before any access is accounted. *)
val block_start : t -> unit

(** [account_access t ~seg ~warp addrs n] accounts one warp global-
    memory instruction: [addrs.(0..n-1)] are the byte addresses touched
    by active lanes.  Coalesces into distinct [mem_segment_bytes]
    segments, runs each through the L2 model (hit -> [seg.l2], miss ->
    tag replace + [seg.dram]), then charges warp [warp]'s MSHR file for
    the new misses when the budget is enabled (overflow -> one
    [seg.mshr_st] stall per transaction past the budget). *)
val account_access :
  t -> seg:Trace.seg_builder -> warp:int -> int array -> int -> unit

(** [account_shared t ~seg idxs n] accounts one warp shared-memory
    instruction: [idxs.(0..n-1)] are the word indices touched by active
    lanes.  No-op unless [shared_banks > 0]; otherwise identical
    indices broadcast and the instruction replays once per extra
    distinct word on its most-loaded bank, counted into
    [seg.bank_rp]. *)
val account_shared : t -> seg:Trace.seg_builder -> int array -> int -> unit
