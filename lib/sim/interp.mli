(** Functional SIMT interpreter.

    Executes kernel IR the way a SIMT machine does at warp granularity:
    each warp evaluates instructions as 32-wide vectors under an
    active-lane mask, divergent branches serialize both paths, and
    global-memory instructions are coalesced into 128-byte segments
    filtered through an L2 model.  It produces real results (verified by
    the apps against CPU references) and records the per-block
    {!Trace.segment}s consumed by the timing model.

    Device-side launches are recorded and executed when the launching
    block reaches [cudaDeviceSynchronize] (deep, run-to-completion drain)
    or finishes (global breadth-order queue) — a valid CUDA execution
    order that keeps data-dependent launch chains near their
    breadth-first depth, as concurrent hardware does. *)

exception Sim_error of string

type pending_launch = Runtime.pending_launch

(** Interpreter back end.  [Compiled] dispatches through the closure
    compiler ({!Compile}) whenever a kernel lowers successfully and the
    launch arguments match the inferred slot types, falling back to the
    reference AST walker otherwise; [Bytecode] does the same through the
    {!Bytecode} lowering (dense int-coded programs with
    superinstruction fusion); [Reference] forces the walker for every
    launch.  All three back ends emit byte-identical {!Trace} data. *)
type mode = Compiled | Bytecode | Reference

(** Set the back end used by sessions created without an explicit [?mode].
    The initial default is [Compiled], or as overridden by the
    environment variable [DPC_INTERP] ([ref] or [bytecode]). *)
val set_default_mode : mode -> unit

val default_mode : unit -> mode

(** Canonical tier tag ([compiled] / [bytecode] / [ref]) — the string
    used by scenario codecs, CLI flags and tier-aware cache keys. *)
val mode_to_string : mode -> string

(** Inverse of {!mode_to_string}, accepting the [bc] / [reference] /
    [walker] aliases; [None] on anything else. *)
val mode_of_string : string -> mode option

type session = {
  cfg : Dpc_gpu.Config.t;
  mem : Dpc_gpu.Memory.t;
  alloc : Dpc_alloc.Allocator.t;
  prog : Dpc_kir.Kernel.Program.t;
  grids : Trace.grid_exec Dpc_util.Vec.t;
  mutable roots : int list;
  mm : Memmodel.t;  (** memory-hierarchy model: the single accounting path *)
  mutable alloc_cycles : int;
  mutable max_depth : int;
  mutable grid_budget : int;
  fifo : pending_launch Queue.t;
  mode : mode;
  ckernels : (string, Compile.ckernel option) Hashtbl.t;
}

(** [create_session ~cfg ~alloc prog] finalizes [prog] and prepares an
    execution session.  [grid_budget] bounds the total number of grids a
    session may execute (a runaway-recursion guard; exceeded raises
    {!Sim_error}).  [ckernels] supplies the compilation-cache table to
    use instead of a fresh empty one: the engine's cross-run
    compiled-kernel cache hands the same table (and the same finalized
    program) to successive sessions in one domain so each kernel lowers
    at most once per domain.  Compiled closures own mutable scratch, so a
    given table must never be shared by sessions running concurrently in
    different domains. *)
val create_session :
  ?grid_budget:int ->
  ?mode:mode ->
  ?ckernels:(string, Compile.ckernel option) Hashtbl.t ->
  cfg:Dpc_gpu.Config.t ->
  alloc:Dpc_alloc.Allocator.t ->
  Dpc_kir.Kernel.Program.t ->
  session

(** Synchronous host-side launch: executes the grid and every device-side
    launch it transitively produces, records the traces, and returns the
    root grid id.
    @raise Sim_error on invalid configurations, nesting-depth overflow,
    type errors, or barrier misuse;
    @raise Dpc_gpu.Memory.Out_of_bounds on wild accesses. *)
val host_launch :
  session ->
  kernel:string ->
  grid:int ->
  block:int ->
  Dpc_kir.Value.t list ->
  int

(** All executed grids, indexed by grid id. *)
val grids : session -> Trace.grid_exec array

(** Host-launched roots, in launch order. *)
val roots : session -> int list
