(** User-facing simulated device: host-side memory management, synchronous
    kernel launches, and profiler-style reports.

    {[
      let dev = Device.create ~alloc_kind:Pool program in
      let dist = Device.alloc_int dev ~name:"dist" n in
      Device.launch dev "sssp" ~grid:40 ~block:256 [ Vbuf dist.id; ... ];
      let report = Device.report dev in
    ]} *)

type t

(** [mode] pins this device's interpreter back end (default: the session
    default, see {!Interp.set_default_mode}); [ckernels] seeds the
    kernel-compilation cache table (see {!Interp.create_session} for the
    sharing contract). *)
val create :
  ?cfg:Dpc_gpu.Config.t ->
  ?alloc_kind:Dpc_alloc.Allocator.kind ->
  ?pool_bytes:int ->
  ?scheduler:Timing.scheduler ->
  ?grid_budget:int ->
  ?mode:Interp.mode ->
  ?ckernels:(string, Compile.ckernel option) Hashtbl.t ->
  Dpc_kir.Kernel.Program.t ->
  t

val config : t -> Dpc_gpu.Config.t
val memory : t -> Dpc_gpu.Memory.t
val allocator : t -> Dpc_alloc.Allocator.t

(** The underlying interpreter session (traces, raw counters). *)
val session : t -> Interp.session

(** {2 Host-side memory management} *)

val alloc_int : t -> name:string -> int -> Dpc_gpu.Memory.buf
val alloc_float : t -> name:string -> int -> Dpc_gpu.Memory.buf
val of_int_array : t -> name:string -> int array -> Dpc_gpu.Memory.buf
val of_float_array : t -> name:string -> float array -> Dpc_gpu.Memory.buf
val buf : t -> int -> Dpc_gpu.Memory.buf
val read_int_array : t -> int -> int array
val read_float_array : t -> int -> float array

(** {2 Execution} *)

(** Synchronous host-side kernel launch (1-D grid of 1-D blocks). *)
val launch :
  t -> string -> grid:int -> block:int -> Dpc_kir.Value.t list -> unit

(** Reset the pre-allocated pool's bump pointer between logical phases
    (no-op for the default and halloc allocators). *)
val reset_pool : t -> unit

(** Full run report: functional counters plus the timing replay.  Cached
    until the next launch. *)
val report : t -> Metrics.report

(** {2 Profiling} *)

(** Re-run the timing replay over everything launched so far with a
    profiling sink attached and return the recorded event stream.  The
    replay is deterministic, so the events are consistent with
    {!report}'s numbers; the recorder is created per call (no shared
    state between concurrent devices). *)
val profile : t -> Dpc_prof.Event.t array

(** {!profile} folded into the per-kernel nvprof-style summary. *)
val kernel_profile : t -> Dpc_prof.Profile.row list

(** {!profile} rendered as a Chrome trace-event document (one track per
    SMX plus the launch-queue track). *)
val chrome_trace : t -> Dpc_prof.Json.t
