(** Shared execution primitives of the SIMT interpreter.

    Both interpreter back ends — the reference AST walker in {!Interp} and
    the compiled closure path in {!Compile} — agree bit-for-bit on lane
    masks, charge accounting and memory coalescing because they share the
    primitives below.  Anything that touches a {!Trace.seg_builder} lives
    here so the two paths cannot drift. *)

module A = Dpc_kir.Ast
module V = Dpc_kir.Value

exception Sim_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

(* A device-side launch recorded but not yet executed.  Children run when
   the launching block reaches [cudaDeviceSynchronize] or finishes — a
   valid CUDA execution order that (unlike depth-first execution at the
   launch point) lets sibling work complete first, so data-dependent
   launch chains (e.g. BFS-Rec level improvements) stay near the breadth-
   first depth instead of the worst-case path length. *)
type pending_launch = {
  pl_callee : string;
  pl_grid : int;
  pl_block : int;
  pl_args : V.t list;
  pl_ids : int array;  (** the Seg_launch id slot to patch at execution *)
  pl_slot : int;
  pl_parent : int * int;  (** launching grid id, block idx *)
  pl_depth : int;  (** nesting depth of the child *)
}

let dummy_pending =
  { pl_callee = ""; pl_grid = 0; pl_block = 0; pl_args = []; pl_ids = [||];
    pl_slot = 0; pl_parent = (-1, -1); pl_depth = 0 }

(* --- scalar operations --------------------------------------------------

   The dynamically-typed semantics of the IR's operators, shared verbatim
   by both back ends (the walker applies them per lane; the compiled path
   falls back to them whenever static types cannot rule out a runtime
   type error, so error identity and C-style int/float promotion stay
   exact). *)

let unop_apply op (x : V.t) : V.t =
  match (op : A.unop) with
  | A.Neg -> (
    match x with V.Vint i -> V.Vint (-i) | _ -> V.Vfloat (-.V.as_float x))
  | A.Not -> V.of_bool (not (V.truthy x))
  | A.To_float -> V.Vfloat (V.as_float x)
  | A.To_int -> V.Vint (V.as_int x)

let both_int a b =
  match (a, b) with V.Vint _, V.Vint _ -> true | _ -> false

let binop_apply op (a : V.t) (b : V.t) : V.t =
  match (op : A.binop) with
  | A.Add ->
    if both_int a b then V.Vint (V.as_int a + V.as_int b)
    else V.Vfloat (V.as_float a +. V.as_float b)
  | A.Sub ->
    if both_int a b then V.Vint (V.as_int a - V.as_int b)
    else V.Vfloat (V.as_float a -. V.as_float b)
  | A.Mul ->
    if both_int a b then V.Vint (V.as_int a * V.as_int b)
    else V.Vfloat (V.as_float a *. V.as_float b)
  | A.Div ->
    if both_int a b then begin
      let d = V.as_int b in
      if d = 0 then err "integer division by zero";
      V.Vint (V.as_int a / d)
    end
    else V.Vfloat (V.as_float a /. V.as_float b)
  | A.Mod ->
    let d = V.as_int b in
    if d = 0 then err "integer modulo by zero";
    V.Vint (V.as_int a mod d)
  | A.Min ->
    if both_int a b then V.Vint (Int.min (V.as_int a) (V.as_int b))
    else V.Vfloat (Float.min (V.as_float a) (V.as_float b))
  | A.Max ->
    if both_int a b then V.Vint (Int.max (V.as_int a) (V.as_int b))
    else V.Vfloat (Float.max (V.as_float a) (V.as_float b))
  | A.And -> V.of_bool (V.truthy a && V.truthy b)
  | A.Or -> V.of_bool (V.truthy a || V.truthy b)
  | A.Eq -> (
    match (a, b) with
    | V.Vbuf x, V.Vbuf y -> V.of_bool (x = y)
    | _ ->
      if both_int a b then V.of_bool (V.as_int a = V.as_int b)
      else V.of_bool (V.as_float a = V.as_float b))
  | A.Ne -> (
    match (a, b) with
    | V.Vbuf x, V.Vbuf y -> V.of_bool (x <> y)
    | _ ->
      if both_int a b then V.of_bool (V.as_int a <> V.as_int b)
      else V.of_bool (V.as_float a <> V.as_float b))
  | A.Lt ->
    if both_int a b then V.of_bool (V.as_int a < V.as_int b)
    else V.of_bool (V.as_float a < V.as_float b)
  | A.Le ->
    if both_int a b then V.of_bool (V.as_int a <= V.as_int b)
    else V.of_bool (V.as_float a <= V.as_float b)
  | A.Gt ->
    if both_int a b then V.of_bool (V.as_int a > V.as_int b)
    else V.of_bool (V.as_float a > V.as_float b)
  | A.Ge ->
    if both_int a b then V.of_bool (V.as_int a >= V.as_int b)
    else V.of_bool (V.as_float a >= V.as_float b)
  | A.Shl -> V.Vint (V.as_int a lsl V.as_int b)
  | A.Shr -> V.Vint (V.as_int a asr V.as_int b)
  | A.Bit_and -> V.Vint (V.as_int a land V.as_int b)
  | A.Bit_or -> V.Vint (V.as_int a lor V.as_int b)
  | A.Bit_xor -> V.Vint (V.as_int a lxor V.as_int b)

let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (x * 0x01010101) lsr 24 land 0xff

(* De Bruijn multiply: constant-time index of the least-significant set
   bit of a 32-bit mask (Leiserson/Prokop/Randall).  [m land (-m)]
   isolates the lowest bit; multiplying by the De Bruijn constant makes
   the top 5 bits enumerate all 32 one-hot inputs uniquely. *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let lowest_bit m =
  debruijn_table.((((m land -m) * 0x077CB531) lsr 27) land 31)

let iter_lanes mask f =
  let m = ref mask in
  while !m <> 0 do
    f (lowest_bit !m);
    (* clear the lowest set bit *)
    m := !m land (!m - 1)
  done

let lanes_where mask f =
  let out = ref 0 in
  iter_lanes mask (fun l -> if f l then out := !out lor (1 lsl l));
  !out

(** Charge [cycles] warp issue cycles with [active] lanes enabled. *)
let charge (seg : Trace.seg_builder) cycles active =
  seg.Trace.issue <- seg.Trace.issue + cycles;
  seg.Trace.weighted <-
    seg.Trace.weighted +. (Float.of_int (cycles * active) /. 32.0)

(* Memory-access accounting deliberately does NOT live here: coalescing,
   L2, bank conflicts and MSHR occupancy are {!Memmodel}'s — the one
   accounting path all three interpreter tiers share. *)
