(** Execution traces.

    The simulator is split in two phases (DESIGN.md, decision 1): the
    functional SIMT interpreter executes kernels depth-first and records,
    per block, a sequence of {e segments} — stretches of execution
    delimited by device-side launches, device synchronization and the
    grid-wide barrier.  The discrete-event timing model then replays the
    segments against the device's resources.

    Segment costs are in warp issue cycles: the total number of cycles the
    block's warps spent issuing, with [weighted_active] recording how many
    of those cycle-slots had each lane active (the basis of the profiler's
    warp-execution-efficiency metric).

    All record types are concrete: the timing model, profiler and tests
    pattern-match and byte-compare traces directly. *)

type seg_end =
  | Seg_done  (** block finished *)
  | Seg_launch of int array  (** device-side launches: child grid ids *)
  | Seg_sync  (** cudaDeviceSynchronize: wait for this block's children *)
  | Seg_barrier  (** arrival at the custom grid-wide barrier *)

type segment = {
  issue_cycles : int;
  weighted_active : float;  (** sum over issue cycles of active_lanes/32 *)
  dram_transactions : int;
  l2_hits : int;
  bank_replays : int;  (** shared-memory bank-conflict replay accesses *)
  mshr_stalls : int;  (** DRAM transactions issued past the MSHR budget *)
  alloc_calls : int;  (** device-heap allocations issued in this segment *)
  alloc_fallbacks : int;  (** of which pool-exhaustion fallbacks *)
  alloc_cycles : int;  (** allocator cycles charged to this segment *)
  ends_with : seg_end;
}

type block_trace = {
  block_idx : int;
  warps : int;  (** resident warps this block occupies *)
  segments : segment array;
}

type grid_exec = {
  gid : int;
  kernel : string;
  grid_dim : int;
  block_dim : int;
  depth : int;  (** 0 for host-launched grids *)
  parent : (int * int) option;  (** launching (grid id, block idx) *)
  mutable blocks : block_trace array;
}

(** {2 Builders used by the interpreter}

    A [seg_builder] accumulates the current segment's counters; every
    interpreter back end mutates its fields directly (via
    {!Runtime.charge} and {!Memmodel.account_access}), so they are
    exposed. *)

type seg_builder = {
  mutable issue : int;
  mutable weighted : float;
  mutable dram : int;
  mutable l2 : int;
  mutable bank_rp : int;
  mutable mshr_st : int;
  mutable allocs : int;
  mutable alloc_fb : int;
  mutable alloc_cyc : int;
  segs : segment Dpc_util.Vec.t;
}

(** The all-zero [Seg_done] segment ({!Dpc_util.Vec} dummy element). *)
val dummy_segment : segment

val seg_builder : unit -> seg_builder

(** Close the current segment with the given terminator and start a fresh
    one. *)
val cut : seg_builder -> seg_end -> unit

(** [cut] with [Seg_done], then package the block's trace. *)
val finish : seg_builder -> block_idx:int -> warps:int -> block_trace

(** {2 Aggregate statistics over traces} *)

type totals = {
  total_issue : int;
  total_weighted : float;
  total_dram : int;
  total_l2_hits : int;
  total_bank_replays : int;
  total_mshr_stalls : int;
  device_launches : int;
  device_syncs : int;
}

val totals_of_grids : grid_exec array -> totals

(** Functional totals of a single grid (the per-kernel profile's raw
    material). *)
val totals_of_grid : grid_exec -> totals

(** Warp execution efficiency: cycle-weighted average active lanes per warp
    over maximum lanes per warp (CUDA Profiler User's Guide definition);
    [1.0] when nothing issued. *)
val warp_efficiency : totals -> float
