(** Third interpreter tier: kernels flattened to dense int-coded
    bytecode over unboxed register planes with superinstruction fusion,
    executed by a tight dispatch loop.  Produces ordinary
    {!Compile.ckernel} values (the lowering plugs into
    {!Compile.compile_kernel} via [?run_lower]), so caching, argument
    vetting and block execution are shared with the closure tier.
    Trace and metrics output is byte-identical to both other tiers. *)

(** Lower one finalized kernel through the bytecode tier.  [None] when
    the kernel uses something no fast path supports (exactly the
    closure tier's coverage: unsupported statements fall back per
    statement to closures, and {!Compile.Not_compilable} still demotes
    the whole kernel to the reference walker). *)
val compile_kernel : Dpc_kir.Kernel.t -> Compile.ckernel option

(** The marshal-safe image of one lowered barrier-free run: the
    instruction stream plus every bound its operands can be checked
    against.  The static bytecode verifier ({!Dpc_check.Bcverify})
    consumes these. *)
type stream = {
  s_kname : string;
  s_code : int array;
  s_nstmts : int;  (** closure-fallback slots ([CALL] operand space) *)
  s_nic : int;  (** int constant-pool rows *)
  s_nfc : int;  (** float constant-pool rows *)
  s_ntmpi : int;  (** int temp-plane rows *)
  s_ntmpf : int;  (** float temp-plane rows *)
  s_nint : int;  (** warp int-plane rows (buffer handles included) *)
  s_nflt : int;  (** warp float-plane rows *)
  s_nshared : int;  (** shared arrays in scope *)
  s_nnames : int;  (** interned shared-name ids *)
}

(** The register encoding's temp-plane split point: an operand [r >=
    temp_base] addresses temp-plane row [r - temp_base], [0 <= r <
    temp_base] a warp register row, [r < 0] constant-pool row
    [-r - 1]. *)
val temp_base : int

(** Lower each of [k]'s barrier-free runs exactly as {!compile_kernel}
    would and return their stream images (in program order) instead of
    an executable.  [None] when the kernel does not compile at all
    (missing/failed typing: it runs on the reference walker and has no
    bytecode to verify).  The kernel must be finalized. *)
val streams_of_kernel : Dpc_kir.Kernel.t -> stream list option

(** Enable/disable superinstruction fusion (default on, or the
    [DPC_BYTECODE_FUSE] environment variable).  A lowering-time switch
    for the bench ablation: flip it only with cache-free sessions, or
    cached programs keep the setting they were lowered under. *)
val set_fusion : bool -> unit

val fusion_enabled : unit -> bool
