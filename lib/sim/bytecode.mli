(** Third interpreter tier: kernels flattened to dense int-coded
    bytecode over unboxed register planes with superinstruction fusion,
    executed by a tight dispatch loop.  Produces ordinary
    {!Compile.ckernel} values (the lowering plugs into
    {!Compile.compile_kernel} via [?run_lower]), so caching, argument
    vetting and block execution are shared with the closure tier.
    Trace and metrics output is byte-identical to both other tiers. *)

(** Lower one finalized kernel through the bytecode tier.  [None] when
    the kernel uses something no fast path supports (exactly the
    closure tier's coverage: unsupported statements fall back per
    statement to closures, and {!Compile.Not_compilable} still demotes
    the whole kernel to the reference walker). *)
val compile_kernel : Dpc_kir.Kernel.t -> Compile.ckernel option

(** Enable/disable superinstruction fusion (default on, or the
    [DPC_BYTECODE_FUSE] environment variable).  A lowering-time switch
    for the bench ablation: flip it only with cache-free sessions, or
    cached programs keep the setting they were lowered under. *)
val set_fusion : bool -> unit

val fusion_enabled : unit -> bool
