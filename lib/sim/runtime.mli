(** Shared execution primitives of the SIMT interpreter.

    Both interpreter back ends — the reference AST walker in {!Interp} and
    the compiled closure path in {!Compile} — agree bit-for-bit on lane
    masks, charge accounting and memory coalescing because they share the
    primitives below.  Anything that touches a {!Trace.seg_builder} lives
    here so the two paths cannot drift. *)

exception Sim_error of string

(** Raise {!Sim_error} with a formatted message. *)
val err : ('a, unit, string, 'b) format4 -> 'a

(** A device-side launch recorded but not yet executed.  Children run when
    the launching block reaches [cudaDeviceSynchronize] or finishes — a
    valid CUDA execution order that (unlike depth-first execution at the
    launch point) lets sibling work complete first, so data-dependent
    launch chains (e.g. BFS-Rec level improvements) stay near the breadth-
    first depth instead of the worst-case path length. *)
type pending_launch = {
  pl_callee : string;
  pl_grid : int;
  pl_block : int;
  pl_args : Dpc_kir.Value.t list;
  pl_ids : int array;  (** the Seg_launch id slot to patch at execution *)
  pl_slot : int;
  pl_parent : int * int;  (** launching grid id, block idx *)
  pl_depth : int;  (** nesting depth of the child *)
}

(** Placeholder element for {!Dpc_util.Vec} of pending launches. *)
val dummy_pending : pending_launch

(** {2 Scalar operations}

    The dynamically-typed semantics of the IR's operators, shared verbatim
    by both back ends (the walker applies them per lane; the compiled path
    falls back to them whenever static types cannot rule out a runtime
    type error, so error identity and C-style int/float promotion stay
    exact). *)

val unop_apply : Dpc_kir.Ast.unop -> Dpc_kir.Value.t -> Dpc_kir.Value.t

val both_int : Dpc_kir.Value.t -> Dpc_kir.Value.t -> bool

val binop_apply :
  Dpc_kir.Ast.binop -> Dpc_kir.Value.t -> Dpc_kir.Value.t -> Dpc_kir.Value.t

(** {2 Lane-mask utilities} *)

(** Population count of a 32-bit mask. *)
val popcount : int -> int

(** Index of the least-significant set bit of a nonzero 32-bit mask
    (De Bruijn multiply, constant time). *)
val lowest_bit : int -> int

(** Apply [f] to each set lane of [mask], lowest first. *)
val iter_lanes : int -> (int -> unit) -> unit

(** Sub-mask of [mask]'s lanes satisfying the predicate. *)
val lanes_where : int -> (int -> bool) -> int

(** {2 Charge accounting} *)

(** [charge seg cycles active] charges warp issue cycles with [active]
    lanes enabled.  Memory-access accounting lives in {!Memmodel} — the
    single per-access cost path all three interpreter tiers share. *)
val charge : Trace.seg_builder -> int -> int -> unit
