(** The memory-hierarchy model — the single per-access accounting path.

    Every cost the simulator charges for a memory instruction lives in
    this module: coalesced 128-byte segment formation, the direct-mapped
    L2 filter, and the three config-gated deep-model features — shared-
    memory bank-conflict replay, the per-warp MSHR occupancy limit, and
    (via the counters {!Timing} prices) their cycle costs.  All three
    interpreter tiers (the reference walker in {!Interp}, the compiled
    closures in {!Compile}, the bytecode fast paths in {!Bytecode})
    call these entry points, so the cost semantics cannot drift between
    tiers — the invariant the differential suite asserts byte-for-byte.

    Feature gating: a preset with [shared_banks = 0] and
    [mshr_per_warp = 0] (e.g. the default [k20c]) takes exactly the
    historical flat path — the new counters stay zero, the charge
    stream is untouched, and traces are byte-identical to releases
    before the deep model existed.

    Determinism: the model is trace-phase state.  Blocks execute
    sequentially within a session, and every tier calls {!block_start}
    at block entry, so per-warp MSHR occupancy evolves identically no
    matter which tier executes the block.  Replay and stall costs are
    recorded as separate segment counters ([bank_replays] /
    [mshr_stalls]) rather than folded into issue cycles, which keeps
    warp-efficiency semantics intact; {!Timing.seg_work} converts them
    to cycles using the config's per-event costs. *)

module Cfg = Dpc_gpu.Config

type t = {
  cfg : Cfg.t;
  l2_tags : int array;  (** direct-mapped L2 tag store (session lifetime) *)
  seen : int array;  (** segment-dedup scratch, length >= warp size *)
  banks : int;  (** shared-memory banks; 0 = unmodeled *)
  mshr : int;  (** per-warp outstanding budget; 0 = unlimited *)
  mshr_retire : int;
  mshr_out : int array;
      (** per-warp outstanding DRAM transactions, reset at block entry *)
  bank_gen : int array;  (** per-bank generation stamps *)
  bank_cnt : int array;  (** distinct words touched per bank *)
  word_gen : int array;  (** per-index broadcast-dedup stamps *)
  mutable gen : int;  (** current generation for the stamp scratch *)
}

(* The broadcast-dedup scratch is keyed by [index mod word_slots]; two
   distinct indices sharing a slot within one instruction fall back to
   a linear check of this instruction's indices, so the scratch size
   only affects speed, never the count. *)
let word_slots = 64

let create (cfg : Cfg.t) =
  {
    cfg;
    l2_tags = Array.make cfg.Cfg.l2_segments (-1);
    seen = Array.make (Int.max 32 cfg.Cfg.warp_size) 0;
    banks = cfg.Cfg.shared_banks;
    mshr = cfg.Cfg.mshr_per_warp;
    mshr_retire = cfg.Cfg.mshr_retire_per_access;
    mshr_out = Array.make 64 0;
    bank_gen = Array.make (Int.max 1 cfg.Cfg.shared_banks) (-1);
    bank_cnt = Array.make (Int.max 1 cfg.Cfg.shared_banks) 0;
    word_gen = Array.make word_slots (-1);
    gen = 0;
  }

let cfg t = t.cfg

(** Does this model track shared-memory bank conflicts?  Call sites use
    this to skip per-lane index collection entirely when off. *)
let models_shared t = t.banks > 0

(** Reset per-block state (MSHR occupancy).  Every tier calls this when
    a block starts executing, before any access is accounted. *)
let block_start t =
  if t.mshr > 0 then Array.fill t.mshr_out 0 (Array.length t.mshr_out) 0

(* --- global memory: coalescing, L2, MSHR ------------------------------- *)

(** Account one warp global-memory instruction: [addrs.(0..n-1)] are the
    byte addresses touched by active lanes.  Coalesce into distinct
    [mem_segment_bytes] segments, filter each through the direct-mapped
    L2 (hit -> [seg.l2], miss -> tag replace + [seg.dram]), then charge
    the warp's MSHR file for the new misses: outstanding transactions
    drain by [mshr_retire_per_access] per memory instruction, and any
    transaction issued past the [mshr_per_warp] budget counts one
    [seg.mshr_st] stall. *)
let account_access t ~(seg : Trace.seg_builder) ~warp (addrs : int array) n =
  let seg_bytes = t.cfg.Cfg.mem_segment_bytes in
  let l2_tags = t.l2_tags in
  let seen = t.seen in
  let ntags = Array.length l2_tags in
  let nseen = ref 0 in
  let dram_before = seg.Trace.dram in
  for k = 0 to n - 1 do
    let sg = addrs.(k) / seg_bytes in
    let dup = ref false in
    let j = ref 0 in
    while (not !dup) && !j < !nseen do
      if seen.(!j) = sg then dup := true;
      incr j
    done;
    if not !dup then begin
      seen.(!nseen) <- sg;
      incr nseen;
      let idx = sg mod ntags in
      if l2_tags.(idx) = sg then seg.Trace.l2 <- seg.Trace.l2 + 1
      else begin
        l2_tags.(idx) <- sg;
        seg.Trace.dram <- seg.Trace.dram + 1
      end
    end
  done;
  if t.mshr > 0 then begin
    let w = warp land (Array.length t.mshr_out - 1) in
    let misses = seg.Trace.dram - dram_before in
    let out = Int.max 0 (t.mshr_out.(w) - t.mshr_retire) in
    let total = out + misses in
    if total > t.mshr then begin
      seg.Trace.mshr_st <- seg.Trace.mshr_st + (total - t.mshr);
      t.mshr_out.(w) <- t.mshr
    end
    else t.mshr_out.(w) <- total
  end

(* --- shared memory: bank conflicts ------------------------------------- *)

(* Count replays of one warp shared-memory instruction.  Identical
   indices broadcast (one access serves every requesting lane); the
   remaining distinct words map to banks by [index mod banks], and the
   instruction replays once per extra distinct word on its most-loaded
   bank.  Generation stamps make the scratch reset O(1) per call. *)
let count_replays t (idxs : int array) n =
  t.gen <- t.gen + 1;
  let g = t.gen in
  let maxb = ref 1 in
  for k = 0 to n - 1 do
    let i = idxs.(k) in
    (* broadcast dedup: an index equal to an earlier lane's is free *)
    let slot = i mod word_slots in
    let fresh =
      if t.word_gen.(slot) <> g then begin
        t.word_gen.(slot) <- g;
        true
      end
      else begin
        (* slot collision: confirm against this instruction's lanes *)
        let dup = ref false in
        let j = ref 0 in
        while (not !dup) && !j < k do
          if idxs.(!j) = i then dup := true;
          incr j
        done;
        not !dup
      end
    in
    if fresh then begin
      let b = i mod t.banks in
      let c = if t.bank_gen.(b) = g then t.bank_cnt.(b) + 1 else 1 in
      t.bank_gen.(b) <- g;
      t.bank_cnt.(b) <- c;
      if c > !maxb then maxb := c
    end
  done;
  !maxb - 1

(** Account one warp shared-memory instruction: [idxs.(0..n-1)] are the
    word indices touched by active lanes.  No-op unless the config
    models banks ([shared_banks > 0]); otherwise the access replays
    once per extra distinct word on its most-loaded bank, counted into
    [seg.bank_rp]. *)
let account_shared t ~(seg : Trace.seg_builder) (idxs : int array) n =
  if t.banks > 0 && n > 0 then begin
    let r = count_replays t idxs n in
    if r > 0 then seg.Trace.bank_rp <- seg.Trace.bank_rp + r
  end
