(** Execution traces.

    The simulator is split in two phases (DESIGN.md, decision 1): the
    functional SIMT interpreter executes kernels depth-first and records,
    per block, a sequence of {e segments} — stretches of execution
    delimited by device-side launches, device synchronization and the
    grid-wide barrier.  The discrete-event timing model then replays the
    segments against the device's resources.

    Segment costs are in warp issue cycles: the total number of cycles the
    block's warps spent issuing, with [weighted_active] recording how many
    of those cycle-slots had each lane active (the basis of the profiler's
    warp-execution-efficiency metric). *)

type seg_end =
  | Seg_done  (** block finished *)
  | Seg_launch of int array  (** device-side launches: child grid ids *)
  | Seg_sync  (** cudaDeviceSynchronize: wait for this block's children *)
  | Seg_barrier  (** arrival at the custom grid-wide barrier *)

type segment = {
  issue_cycles : int;
  weighted_active : float;  (** sum over issue cycles of active_lanes/32 *)
  dram_transactions : int;
  l2_hits : int;
  bank_replays : int;  (** shared-memory bank-conflict replay accesses *)
  mshr_stalls : int;  (** DRAM transactions issued past the MSHR budget *)
  alloc_calls : int;  (** device-heap allocations issued in this segment *)
  alloc_fallbacks : int;  (** of which pool-exhaustion fallbacks *)
  alloc_cycles : int;  (** allocator cycles charged to this segment *)
  ends_with : seg_end;
}

type block_trace = {
  block_idx : int;
  warps : int;  (** resident warps this block occupies *)
  segments : segment array;
}

type grid_exec = {
  gid : int;
  kernel : string;
  grid_dim : int;
  block_dim : int;
  depth : int;  (** 0 for host-launched grids *)
  parent : (int * int) option;  (** launching (grid id, block idx) *)
  mutable blocks : block_trace array;
}

(* --- builders used by the interpreter --------------------------------- *)

type seg_builder = {
  mutable issue : int;
  mutable weighted : float;
  mutable dram : int;
  mutable l2 : int;
  mutable bank_rp : int;
  mutable mshr_st : int;
  mutable allocs : int;
  mutable alloc_fb : int;
  mutable alloc_cyc : int;
  segs : segment Dpc_util.Vec.t;
}

let dummy_segment =
  { issue_cycles = 0; weighted_active = 0.0; dram_transactions = 0;
    l2_hits = 0; bank_replays = 0; mshr_stalls = 0; alloc_calls = 0;
    alloc_fallbacks = 0; alloc_cycles = 0; ends_with = Seg_done }

let seg_builder () =
  { issue = 0; weighted = 0.0; dram = 0; l2 = 0; bank_rp = 0; mshr_st = 0;
    allocs = 0; alloc_fb = 0; alloc_cyc = 0;
    segs = Dpc_util.Vec.create ~dummy:dummy_segment }

(** Close the current segment with [ends_with] and start a fresh one. *)
let cut b ends_with =
  Dpc_util.Vec.push b.segs
    {
      issue_cycles = b.issue;
      weighted_active = b.weighted;
      dram_transactions = b.dram;
      l2_hits = b.l2;
      bank_replays = b.bank_rp;
      mshr_stalls = b.mshr_st;
      alloc_calls = b.allocs;
      alloc_fallbacks = b.alloc_fb;
      alloc_cycles = b.alloc_cyc;
      ends_with;
    };
  b.issue <- 0;
  b.weighted <- 0.0;
  b.dram <- 0;
  b.l2 <- 0;
  b.bank_rp <- 0;
  b.mshr_st <- 0;
  b.allocs <- 0;
  b.alloc_fb <- 0;
  b.alloc_cyc <- 0

let finish b ~block_idx ~warps =
  cut b Seg_done;
  { block_idx; warps; segments = Dpc_util.Vec.to_array b.segs }

(* --- aggregate statistics over traces ---------------------------------- *)

type totals = {
  total_issue : int;
  total_weighted : float;
  total_dram : int;
  total_l2_hits : int;
  total_bank_replays : int;
  total_mshr_stalls : int;
  device_launches : int;
  device_syncs : int;
}

let accumulate_grid ~issue ~weighted ~dram ~l2 ~bank_rp ~mshr_st ~launches
    ~syncs (g : grid_exec) =
  Array.iter
    (fun bt ->
      Array.iter
        (fun s ->
          issue := !issue + s.issue_cycles;
          weighted := !weighted +. s.weighted_active;
          dram := !dram + s.dram_transactions;
          l2 := !l2 + s.l2_hits;
          bank_rp := !bank_rp + s.bank_replays;
          mshr_st := !mshr_st + s.mshr_stalls;
          match s.ends_with with
          | Seg_launch ids -> launches := !launches + Array.length ids
          | Seg_sync -> incr syncs
          | Seg_done | Seg_barrier -> ())
        bt.segments)
    g.blocks

let totals_of_grids (grids : grid_exec array) =
  let issue = ref 0 and weighted = ref 0.0 in
  let dram = ref 0 and l2 = ref 0 in
  let bank_rp = ref 0 and mshr_st = ref 0 in
  let launches = ref 0 and syncs = ref 0 in
  Array.iter
    (accumulate_grid ~issue ~weighted ~dram ~l2 ~bank_rp ~mshr_st ~launches
       ~syncs)
    grids;
  {
    total_issue = !issue;
    total_weighted = !weighted;
    total_dram = !dram;
    total_l2_hits = !l2;
    total_bank_replays = !bank_rp;
    total_mshr_stalls = !mshr_st;
    device_launches = !launches;
    device_syncs = !syncs;
  }

(** Functional totals of a single grid (the per-kernel profile's raw
    material). *)
let totals_of_grid (g : grid_exec) = totals_of_grids [| g |]

(** Warp execution efficiency: cycle-weighted average active lanes per warp
    over maximum lanes per warp (CUDA Profiler User's Guide definition). *)
let warp_efficiency totals =
  if totals.total_issue = 0 then 1.0
  else totals.total_weighted /. Float.of_int totals.total_issue
