(** ASCII device-utilization timelines.

    Renders the timing model's resident-warp samples as a braille-free,
    log-safe chart: one column per time bucket, height proportional to
    resident warps.  Useful for eyeballing why a variant is slow — e.g.
    basic-dp shows a long, almost-empty tail of serialized tiny kernels
    where grid-level consolidation shows a few dense bursts. *)

module Cfg = Dpc_gpu.Config

(** Bucket step samples into [width] equal time slices; each bucket holds
    the time-weighted average of resident warps. *)
let bucketize ~width ~(total : float) (samples : (float * int) list) :
    float array =
  let out = Array.make width 0.0 in
  if total <= 0.0 then out
  else begin
    let bucket_span = total /. Float.of_int width in
    let add_interval t0 t1 warps =
      (* distribute warps * dt over the buckets the interval covers *)
      let b0 = Float.to_int (t0 /. bucket_span) in
      let b1 = Float.to_int (t1 /. bucket_span) in
      for b = Int.max 0 b0 to Int.min (width - 1) b1 do
        let lo = Float.max t0 (Float.of_int b *. bucket_span) in
        let hi = Float.min t1 (Float.of_int (b + 1) *. bucket_span) in
        if hi > lo then
          out.(b) <- out.(b) +. (Float.of_int warps *. (hi -. lo))
      done
    in
    let rec go = function
      | (t0, w) :: ((t1, _) :: _ as rest) ->
        add_interval t0 t1 w;
        go rest
      | [ (t0, w) ] -> add_interval t0 total w
      | [] -> ()
    in
    go samples;
    Array.map (fun acc -> acc /. bucket_span) out
  end

let bars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

(** Render a one-line-per-level chart: [height] rows of [width] columns,
    plus a time axis.  [capacity] is the warp count that fills the top
    row (defaults to the device's total warp capacity). *)
let render ?(width = 72) ?(height = 8) ?capacity (cfg : Cfg.t)
    ~(total_cycles : float) (samples : (float * int) list) : string =
  let capacity =
    match capacity with
    | Some c -> Float.of_int c
    | None -> Float.of_int (cfg.Cfg.num_smx * cfg.Cfg.max_warps_per_smx)
  in
  let buckets = bucketize ~width ~total:total_cycles samples in
  let buf = Buffer.create ((width + 8) * (height + 2)) in
  for row = height downto 1 do
    let threshold = capacity *. Float.of_int row /. Float.of_int height in
    let label =
      if row = height then Printf.sprintf "%5.0fw |" capacity
      else if row = 1 then "    0w |"
      else "       |"
    in
    Buffer.add_string buf label;
    Array.iter
      (fun v ->
        let c =
          if v >= threshold then '#'
          else if row = 1 && v > 0.0 then
            (* sub-row utilization: shade the bottom row *)
            bars.(Int.min 9 (Float.to_int (10.0 *. v /. (capacity /. Float.of_int height))))
          else ' '
        in
        Buffer.add_char buf c)
      buckets;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "       +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  (* Time-axis label: right-align the end-time annotation with the end of
     the axis when it fits; otherwise fall back to a single space.  (A
     computed field width must never go negative: [Printf "%*s"] treats a
     negative width as left-justification, shearing the axis.) *)
  let left = "        0 cycles" in
  let trailer =
    Printf.sprintf "%.0f cycles (resident warps over time)" total_cycles
  in
  let pad =
    Int.max 1 (8 + width - String.length left - String.length trailer)
  in
  Buffer.add_string buf left;
  Buffer.add_string buf (String.make pad ' ');
  Buffer.add_string buf trailer;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** Run the timing replay for a device's recorded session and render its
    utilization timeline. *)
let of_session ?width ?height ?scheduler (s : Interp.session) : string =
  let t =
    Timing.create ?scheduler ~record_timeline:true s.Interp.cfg
      (Interp.grids s) (Interp.roots s)
  in
  let result = Timing.run t in
  render ?width ?height s.Interp.cfg
    ~total_cycles:result.Timing.total_cycles (Timing.timeline t)
