(** Aggregated run metrics — the simulator's equivalent of the Nvidia
    Visual Profiler counters the paper reports (Figs. 7-10).

    A report is a flat record of scalars: identical runs produce
    structurally equal reports, which the differential and engine
    determinism tests rely on. *)

type report = {
  cycles : float;  (** end-to-end simulated device cycles *)
  time_ms : float;
  host_launches : int;
  device_launches : int;  (** child kernel invocations (Fig. 8 labels) *)
  warp_efficiency : float;  (** Fig. 8 *)
  occupancy : float;  (** achieved SMX occupancy (Fig. 9) *)
  dram_transactions : int;  (** read+write DRAM transactions (Fig. 10) *)
  l2_hits : int;
  bank_conflict_replays : int;  (** shared-memory replays (deep presets) *)
  mshr_stalls : int;  (** MSHR-full stall transactions (deep presets) *)
  alloc_calls : int;
  alloc_cycles : int;
  pool_fallbacks : int;
  virtualized_launches : int;
  max_pending : int;
  swapped_syncs : int;
  max_depth : int;
  total_grids : int;
}

val speedup : baseline:report -> report -> float

(** Human-readable [(label, value)] rows, in presentation order. *)
val to_rows : report -> (string * string) list

val print : ?title:string -> report -> unit

(** Machine-readable view of the full report; kept field-for-field in
    sync with the record (checked by the prof test suite). *)
val to_json : report -> Dpc_prof.Json.t
