(** One-time lowering of kernel IR into OCaml closures (the interpreter's
    fast path).

    The reference walker in {!Interp} re-traverses the AST for every
    warp x instruction and allocates a fresh 32-element boxed {!V.t}
    vector per expression node.  This module compiles each kernel body
    once per session into a tree of closures over a typed per-warp
    {e register plane}:

    - frame slots proven monomorphic by {!Dpc_kir.Typing} live in raw
      [int array] / [float array] lanes (buffer handles are ints);
      everything else stays in boxed {!V.t} lanes;
    - every expression node owns a 32-element scratch vector allocated at
      compile time, so steady-state evaluation performs no heap
      allocation on monomorphic kernels;
    - lane iteration is closure-free ([m land (m - 1)] plus the De Bruijn
      {!Runtime.lowest_bit}).

    Semantics are the reference walker's, charge for charge: the compiled
    code issues the same {!Runtime.charge} and {!Runtime.account_access}
    calls in the same order, so {!Trace} output is byte-identical (float
    accumulation order included).  Wherever an operand's static type
    cannot rule out a runtime type error, the compiled code falls back to
    the exact boxed per-lane application ({!Runtime.binop_apply} and
    friends) so error identity and ordering are preserved too.  Kernels
    (or launches) the compiler cannot handle fall back to the walker
    entirely: {!compile_kernel} returns [None], and {!args_ok} rejects
    argument lists whose runtime types contradict the inference. *)

module A = Dpc_kir.Ast
module V = Dpc_kir.Value
module K = Dpc_kir.Kernel
module Ty = Dpc_kir.Typing
module Mem = Dpc_gpu.Memory
module Cfg = Dpc_gpu.Config
module Alloc = Dpc_alloc.Allocator
module Vec = Dpc_util.Vec
module R = Runtime

let err = R.err

let pc = R.popcount

let lb = R.lowest_bit

(* Raised (compile time only) when a kernel uses something the fast path
   does not support; the caller falls back to the reference walker. *)
exception Not_compilable

(* --- register plane ----------------------------------------------------- *)

(** Where a frame slot lives: [Si]/[Sf] are rows of the unboxed int/float
    planes (buffer handles are [Si] ids), [Sb] rows of the boxed plane. *)
type storage = Si of int | Sf of int | Sb of int

type warp = {
  widx : int;
  base_lane : int;  (** threadIdx.x of lane 0 *)
  nlanes : int;  (** threads in this warp (last warp may be partial) *)
  ints : int array array;  (** indexed [row].[lane] *)
  flts : float array array;
  boxd : V.t array array;
  mutable returned : int;  (** bitmask of lanes that executed [return] *)
}

let full_mask w = (1 lsl w.nlanes) - 1

let live_mask w = full_mask w land lnot w.returned

(* Per-block execution context, mirroring Interp's bctx. *)
type cctx = {
  cfg : Cfg.t;
  mem : Mem.t;
  alloc : Alloc.t;
  mm : Memmodel.t;  (** memory-hierarchy model: the single accounting path *)
  gid : int;
  grid_dim : int;
  block_dim : int;
  depth : int;
  block_idx : int;
  shared : V.t array array;  (** by shared-decl index *)
  warps : warp array;
  seg : Trace.seg_builder;
  block_mallocs : V.t option array;  (** by Malloc site *)
  grid_mallocs : V.t option array;
  grid_alloc_count : int ref;
  pending : R.pending_launch Vec.t;
  deep : bool;
  flush_deep : R.pending_launch -> unit;
      (** run one pending launch now, draining its subtree *)
  add_alloc_cycles : int -> unit;  (** session alloc_cycles accumulator *)
}

let charge c cycles active = R.charge c.seg cycles active

let account c (w : warp) addrs n =
  Memmodel.account_access c.mm ~seg:c.seg ~warp:w.widx addrs n

let account_shared c idxs n = Memmodel.account_shared c.mm ~seg:c.seg idxs n

(* --- compiled expressions ----------------------------------------------- *)

(* A compiled expression returns its 32-wide result as a raw array; the
   constructor records its static type ([Xu] carries buffer ids).  The
   returned array is either the node's own compile-time scratch or a
   register row -- consumers read lanes inside their mask and never write
   into operand arrays. *)
type cexpr =
  | Xi of (cctx -> warp -> int -> int array)
  | Xu of Ty.elem * (cctx -> warp -> int -> int array)
  | Xf of (cctx -> warp -> int -> float array)
  | Xb of (cctx -> warp -> int -> V.t array)

(* Lane getters: deferred per-lane coercions that reproduce V.as_int /
   V.as_float / V.truthy exactly (including the exception and its
   message) without boxing on the monomorphic cases. *)

type igett = Igi of int array | Igf of float array | Igu of int array
           | Igb of V.t array

let[@inline] ig g l =
  match g with
  | Igi a -> a.(l)
  | Igf a -> Float.to_int a.(l)
  | Igu a -> V.as_int (V.Vbuf a.(l))
  | Igb a -> V.as_int a.(l)

let irun = function
  | Xi f -> fun c w m -> Igi (f c w m)
  | Xu (_, f) -> fun c w m -> Igu (f c w m)
  | Xf f -> fun c w m -> Igf (f c w m)
  | Xb f -> fun c w m -> Igb (f c w m)

type fgett = Fgi of int array | Fgf of float array | Fgu of int array
           | Fgb of V.t array

let[@inline] fg g l =
  match g with
  | Fgi a -> Float.of_int a.(l)
  | Fgf a -> a.(l)
  | Fgu a -> V.as_float (V.Vbuf a.(l))
  | Fgb a -> V.as_float a.(l)

let frun = function
  | Xi f -> fun c w m -> Fgi (f c w m)
  | Xu (_, f) -> fun c w m -> Fgu (f c w m)
  | Xf f -> fun c w m -> Fgf (f c w m)
  | Xb f -> fun c w m -> Fgb (f c w m)

type tgett = Tgi of int array | Tgf of float array | Tgu of int array
           | Tgb of V.t array

let[@inline] tg g l =
  match g with
  | Tgi a -> a.(l) <> 0
  | Tgf a -> a.(l) <> 0.0
  | Tgu a -> V.truthy (V.Vbuf a.(l))
  | Tgb a -> V.truthy a.(l)

let trun = function
  | Xi f -> fun c w m -> Tgi (f c w m)
  | Xu (_, f) -> fun c w m -> Tgu (f c w m)
  | Xf f -> fun c w m -> Tgf (f c w m)
  | Xb f -> fun c w m -> Tgb (f c w m)

type vgett = Vgi of int array | Vgf of float array | Vgu of int array
           | Vgb of V.t array

let[@inline] vg g l =
  match g with
  | Vgi a -> V.Vint a.(l)
  | Vgf a -> V.Vfloat a.(l)
  | Vgu a -> V.Vbuf a.(l)
  | Vgb a -> a.(l)

let vrun = function
  | Xi f -> fun c w m -> Vgi (f c w m)
  | Xu (_, f) -> fun c w m -> Vgu (f c w m)
  | Xf f -> fun c w m -> Vgf (f c w m)
  | Xb f -> fun c w m -> Vgb (f c w m)

(* Allocation-free coercions for the hot paths.  [int_of_safe] /
   [float_of_safe] produce a raw-array evaluator when the coercion cannot
   raise (int/float sources); raising sources (buffers, boxed) return
   [None] and the consumer keeps the exact per-lane getter path. *)

let int_of_safe = function
  | Xi f -> Some f
  | Xf f ->
    let res = Array.make 32 0 in
    Some
      (fun c w mask ->
        let a = f c w mask in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- Float.to_int a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | Xu _ | Xb _ -> None

let float_of_safe = function
  | Xf f -> Some f
  | Xi f ->
    let res = Array.make 32 0.0 in
    Some
      (fun c w mask ->
        let a = f c w mask in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- Float.of_int a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | Xu _ | Xb _ -> None

(* Evaluate a condition under [mask] and return the mask of lanes where it
   is truthy.  When [charge_node] the node's own 1-cycle charge is issued
   between operand evaluation and the scan, exactly where the walker
   charges branch conditions; the b-side of And/Or charges nothing. *)
let compile_truth ~charge_node (ce : cexpr) : cctx -> warp -> int -> int =
  match ce with
  | Xi f ->
    fun c w mask ->
      let a = f c w mask in
      if charge_node then charge c 1 (pc mask);
      let mt = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        if a.(l) <> 0 then mt := !mt lor (1 lsl l);
        m := !m land (!m - 1)
      done;
      !mt
  | Xf f ->
    fun c w mask ->
      let a = f c w mask in
      if charge_node then charge c 1 (pc mask);
      let mt = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        if a.(l) <> 0.0 then mt := !mt lor (1 lsl l);
        m := !m land (!m - 1)
      done;
      !mt
  | Xu (_, f) ->
    fun c w mask ->
      let a = f c w mask in
      if charge_node then charge c 1 (pc mask);
      let mt = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        if V.truthy (V.Vbuf a.(l)) then mt := !mt lor (1 lsl l);
        m := !m land (!m - 1)
      done;
      !mt
  | Xb f ->
    fun c w mask ->
      let a = f c w mask in
      if charge_node then charge c 1 (pc mask);
      let mt = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        if V.truthy a.(l) then mt := !mt lor (1 lsl l);
        m := !m land (!m - 1)
      done;
      !mt

(* --- compile-time environment ------------------------------------------- *)

type env = {
  kname : string;
  slots : Ty.slot_ty array;
  storage : storage array;
  shindex : (string, int) Hashtbl.t;  (** shared name -> decl index *)
  shtys : Ty.sh_ty array;
  run_lower : (env -> A.stmt list -> cctx -> warp -> unit) option;
      (** alternative lowering for barrier-free statement runs (the
          bytecode tier installs itself here); [None] lowers runs to
          closure arrays *)
}

let get_buf_v env c (v : V.t) =
  match v with
  | V.Vbuf id -> Mem.get_buf c.mem id
  | _ -> err "kernel %s: %s used as a buffer" env.kname (V.to_string v)

(* Can an operand pair raise a type error on both sides?  If so the exact
   raise order is binop_apply's, so we must use the boxed path. *)
let may_raise = function Xu _ | Xb _ -> true | Xi _ | Xf _ -> false

let is_f = function Xf _ -> true | _ -> false

(* --- expression compilation --------------------------------------------- *)

let rec compile_expr env (e : A.expr) : cexpr =
  match e with
  | A.Const (V.Vint i) ->
    let r = Array.make 32 i in
    Xi (fun _ _ _ -> r)
  | A.Const (V.Vfloat f) ->
    let r = Array.make 32 f in
    Xf (fun _ _ _ -> r)
  | A.Const (V.Vbuf id) ->
    let r = Array.make 32 id in
    Xu (Ty.Eany, fun _ _ _ -> r)
  | A.Var v ->
    if v.A.slot < 0 then raise Not_compilable;
    (match (env.storage.(v.A.slot), env.slots.(v.A.slot)) with
    | Si r, Ty.St_buf el -> Xu (el, fun _ w _ -> w.ints.(r))
    | Si r, _ -> Xi (fun _ w _ -> w.ints.(r))
    | Sf r, _ -> Xf (fun _ w _ -> w.flts.(r))
    | Sb r, _ -> Xb (fun _ w _ -> w.boxd.(r)))
  | A.Special sp ->
    let res = Array.make 32 0 in
    let fill =
      match sp with
      | A.Thread_idx -> fun _ w l -> w.base_lane + l
      | A.Block_idx -> fun c _ _ -> c.block_idx
      | A.Block_dim -> fun c _ _ -> c.block_dim
      | A.Grid_dim -> fun c _ _ -> c.grid_dim
      | A.Lane_id -> fun _ _ l -> l
      | A.Warp_id -> fun _ w _ -> w.widx
      | A.Warp_size -> fun c _ _ -> c.cfg.Cfg.warp_size
    in
    Xi
      (fun c w mask ->
        charge c 1 (pc mask);
        for l = 0 to w.nlanes - 1 do
          res.(l) <- fill c w l
        done;
        res)
  | A.Unop (op, a) -> compile_unop env op (compile_expr env a)
  | A.Binop (A.And, a, b) ->
    compile_andor ~is_and:true (compile_expr env a) (compile_expr env b)
  | A.Binop (A.Or, a, b) ->
    compile_andor ~is_and:false (compile_expr env a) (compile_expr env b)
  | A.Binop (op, a, b) ->
    compile_binop env op (compile_expr env a) (compile_expr env b)
  | A.Load (be, ie) -> compile_load env (compile_expr env be) ie
  | A.Shared_load (name, ie) ->
    let gi = irun (compile_expr env ie) in
    (match Hashtbl.find_opt env.shindex name with
    | None ->
      Xb
        (fun c w mask ->
          let _g = gi c w mask in
          charge c 1 (pc mask);
          err "kernel %s: undeclared shared array %s" env.kname name)
    | Some idx ->
      let oob arr i =
        err "kernel %s: shared array %s[%d] out of bounds (size %d)"
          env.kname name i (Array.length arr)
      in
      (match env.shtys.(idx) with
      | Ty.Sh_bot | Ty.Sh_int ->
        (* every value ever stored is an int, so unboxing is exact *)
        let res = Array.make 32 0 in
        let sidx = Array.make 32 0 in
        Xi
          (fun c w mask ->
            let g = gi c w mask in
            charge c 1 (pc mask);
            let arr = c.shared.(idx) in
            let k = ref 0 in
            let m = ref mask in
            while !m <> 0 do
              let l = lb !m in
              let i = ig g l in
              if i < 0 || i >= Array.length arr then oob arr i;
              sidx.(!k) <- i;
              incr k;
              res.(l) <- V.as_int arr.(i);
              m := !m land (!m - 1)
            done;
            account_shared c sidx !k;
            res)
      | Ty.Sh_boxed ->
        let res = Array.make 32 (V.Vint 0) in
        let sidx = Array.make 32 0 in
        Xb
          (fun c w mask ->
            let g = gi c w mask in
            charge c 1 (pc mask);
            let arr = c.shared.(idx) in
            let k = ref 0 in
            let m = ref mask in
            while !m <> 0 do
              let l = lb !m in
              let i = ig g l in
              if i < 0 || i >= Array.length arr then oob arr i;
              sidx.(!k) <- i;
              incr k;
              res.(l) <- arr.(i);
              m := !m land (!m - 1)
            done;
            account_shared c sidx !k;
            res)))
  | A.Buf_len be -> (
    let cb = compile_expr env be in
    let res = Array.make 32 0 in
    match cb with
    | Xu (_, fb) ->
      Xi
        (fun c w mask ->
          let ids = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- Mem.buf_length (Mem.get_buf c.mem ids.(l));
            m := !m land (!m - 1)
          done;
          res)
    | _ ->
      let gb = vrun cb in
      Xi
        (fun c w mask ->
          let g = gb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- Mem.buf_length (get_buf_v env c (vg g l));
            m := !m land (!m - 1)
          done;
          res))

and compile_unop env op (ca : cexpr) : cexpr =
  ignore env;
  match (op, ca) with
  | A.Neg, Xi fa ->
    let res = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- -a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | A.Neg, Xf fa ->
    let res = Array.make 32 0.0 in
    Xf
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- -.a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | A.Neg, (Xu _ as x) ->
    (* always raises (Neg coerces non-ints via as_float); typed E_float *)
    let ga = frun x in
    let res = Array.make 32 0.0 in
    Xf
      (fun c w mask ->
        let g = ga c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- -.fg g l;
          m := !m land (!m - 1)
        done;
        res)
  | A.Neg, Xb fa ->
    let res = Array.make 32 (V.Vint 0) in
    Xb
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- R.unop_apply A.Neg a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | A.Not, x ->
    let ga = trun x in
    let res = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let g = ga c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- (if tg g l then 0 else 1);
          m := !m land (!m - 1)
        done;
        res)
  | A.To_float, Xf fa ->
    Xf
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        a)
  | A.To_float, Xi fa ->
    let res = Array.make 32 0.0 in
    Xf
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- Float.of_int a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | A.To_float, x ->
    let ga = frun x in
    let res = Array.make 32 0.0 in
    Xf
      (fun c w mask ->
        let g = ga c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- fg g l;
          m := !m land (!m - 1)
        done;
        res)
  | A.To_int, Xi fa ->
    Xi
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        a)
  | A.To_int, Xf fa ->
    let res = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let a = fa c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- Float.to_int a.(l);
          m := !m land (!m - 1)
        done;
        res)
  | A.To_int, x ->
    let ga = irun x in
    let res = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let g = ga c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- ig g l;
          m := !m land (!m - 1)
        done;
        res)

(* Short-circuit And/Or.  [b] is evaluated only on the lanes where [a]
   decided nothing; out-of-sub-mask lanes take the short-circuit value.
   The result scratch is reset on every lane of [mask] first, because
   (unlike the walker's fresh zeroed vectors) scratch is reused. *)
and compile_andor ~is_and ca cb : cexpr =
  let ta = compile_truth ~charge_node:true ca in
  let tb = compile_truth ~charge_node:false cb in
  let res = Array.make 32 0 in
  let default = if is_and then 0 else 1 in
  Xi
    (fun c w mask ->
      let mt_a = ta c w mask in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        res.(l) <- default;
        m := !m land (!m - 1)
      done;
      (* the short-circuit value stands where [a] decided; [b] runs on the
         rest *)
      let sub = if is_and then mt_a else mask land lnot mt_a in
      if sub <> 0 then begin
        let mt_b = tb c w sub in
        let flip = if is_and then mt_b else sub land lnot mt_b in
        let v = if is_and then 1 else 0 in
        let m = ref flip in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- v;
          m := !m land (!m - 1)
        done
      end;
      res)

and compile_binop env op ca cb : cexpr =
  ignore env;
  let int2 iop =
    match (ca, cb) with
    | Xi fa, Xi fb ->
      let res = Array.make 32 0 in
      Some
        (Xi
           (fun c w mask ->
             let a = fa c w mask in
             let b = fb c w mask in
             charge c 1 (pc mask);
             let m = ref mask in
             while !m <> 0 do
               let l = lb !m in
               res.(l) <- iop a.(l) b.(l);
               m := !m land (!m - 1)
             done;
             res))
    | _ -> None
  in
  let float_arith fop =
    (* both operands reach as_float; safe when at most one can raise *)
    match (float_of_safe ca, float_of_safe cb) with
    | Some fa, Some fb ->
      let res = Array.make 32 0.0 in
      Xf
        (fun c w mask ->
          let a = fa c w mask in
          let b = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- fop a.(l) b.(l);
            m := !m land (!m - 1)
          done;
          res)
    | _ ->
      let ga = frun ca and gb = frun cb in
      let res = Array.make 32 0.0 in
      Xf
        (fun c w mask ->
          let a = ga c w mask in
          let b = gb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- fop (fg a l) (fg b l);
            m := !m land (!m - 1)
          done;
          res)
  in
  let float_cmp fop =
    match (float_of_safe ca, float_of_safe cb) with
    | Some fa, Some fb ->
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = fa c w mask in
          let b = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- (if fop a.(l) b.(l) then 1 else 0);
            m := !m land (!m - 1)
          done;
          res)
    | _ ->
      let ga = frun ca and gb = frun cb in
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = ga c w mask in
          let b = gb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            let x = fg a l in
            let y = fg b l in
            res.(l) <- (if fop x y then 1 else 0);
            m := !m land (!m - 1)
          done;
          res)
  in
  let boxed_arith () =
    let ga = vrun ca and gb = vrun cb in
    let res = Array.make 32 (V.Vint 0) in
    Xb
      (fun c w mask ->
        let a = ga c w mask in
        let b = gb c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- R.binop_apply op (vg a l) (vg b l);
          m := !m land (!m - 1)
        done;
        res)
  in
  let boxed_int () =
    (* ops whose result is statically int: unwrap binop_apply's Vint *)
    let ga = vrun ca and gb = vrun cb in
    let res = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let a = ga c w mask in
        let b = gb c w mask in
        charge c 1 (pc mask);
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          res.(l) <- V.as_int (R.binop_apply op (vg a l) (vg b l));
          m := !m land (!m - 1)
        done;
        res)
  in
  let arith iop fop =
    if is_f ca || is_f cb then float_arith fop
    else
      match int2 iop with Some x -> x | None -> boxed_arith ()
  in
  let cmp iop fop =
    match int2 (fun a b -> if iop a b then 1 else 0) with
    | Some x -> x
    | None ->
      if may_raise ca && may_raise cb then boxed_int () else float_cmp fop
  in
  (* int-context ops: a and b both go through as_int; binop_apply
     evaluates [as_int a OP as_int b] whose operand order is the
     compiler's, so when both sides could raise we defer to it *)
  let int_ctx iop =
    match int2 iop with
    | Some x -> x
    | None ->
      if may_raise ca && may_raise cb then boxed_int ()
      else
        let ga = irun ca and gb = irun cb in
        let res = Array.make 32 0 in
        Xi
          (fun c w mask ->
            let a = ga c w mask in
            let b = gb c w mask in
            charge c 1 (pc mask);
            let m = ref mask in
            while !m <> 0 do
              let l = lb !m in
              res.(l) <- iop (ig a l) (ig b l);
              m := !m land (!m - 1)
            done;
            res)
  in
  match op with
  | A.And | A.Or -> assert false (* routed to compile_andor *)
  | A.Add -> arith ( + ) ( +. )
  | A.Sub -> arith ( - ) ( -. )
  | A.Mul -> arith ( * ) ( *. )
  | A.Div -> (
    if is_f ca || is_f cb then float_arith ( /. )
    else
      match (ca, cb) with
      | Xi fa, Xi fb ->
        let res = Array.make 32 0 in
        Xi
          (fun c w mask ->
            let a = fa c w mask in
            let b = fb c w mask in
            charge c 1 (pc mask);
            let m = ref mask in
            while !m <> 0 do
              let l = lb !m in
              let d = b.(l) in
              if d = 0 then err "integer division by zero";
              res.(l) <- a.(l) / d;
              m := !m land (!m - 1)
            done;
            res)
      | _ -> boxed_arith ())
  | A.Mod -> (
    match (ca, cb) with
    | Xi fa, Xi fb ->
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = fa c w mask in
          let b = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            let d = b.(l) in
            if d = 0 then err "integer modulo by zero";
            res.(l) <- a.(l) mod d;
            m := !m land (!m - 1)
          done;
          res)
    | _ ->
      (* binop_apply evaluates the divisor first (explicit let), so the
         getter path can mirror it exactly for any operand kinds *)
      let ga = irun ca and gb = irun cb in
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = ga c w mask in
          let b = gb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            let d = ig b l in
            if d = 0 then err "integer modulo by zero";
            res.(l) <- ig a l mod d;
            m := !m land (!m - 1)
          done;
          res))
  | A.Min -> arith Int.min Float.min
  | A.Max -> arith Int.max Float.max
  | A.Eq -> (
    match (ca, cb) with
    | Xu (_, fa), Xu (_, fb) ->
      (* buffer identity: compare handles *)
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = fa c w mask in
          let b = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- (if a.(l) = b.(l) then 1 else 0);
            m := !m land (!m - 1)
          done;
          res)
    | _ -> cmp ( = ) ( = ))
  | A.Ne -> (
    match (ca, cb) with
    | Xu (_, fa), Xu (_, fb) ->
      let res = Array.make 32 0 in
      Xi
        (fun c w mask ->
          let a = fa c w mask in
          let b = fb c w mask in
          charge c 1 (pc mask);
          let m = ref mask in
          while !m <> 0 do
            let l = lb !m in
            res.(l) <- (if a.(l) <> b.(l) then 1 else 0);
            m := !m land (!m - 1)
          done;
          res)
    | _ -> cmp ( <> ) ( <> ))
  | A.Lt -> cmp ( < ) ( < )
  | A.Le -> cmp ( <= ) ( <= )
  | A.Gt -> cmp ( > ) ( > )
  | A.Ge -> cmp ( >= ) ( >= )
  | A.Shl -> int_ctx ( lsl )
  | A.Shr -> int_ctx ( asr )
  | A.Bit_and -> int_ctx ( land )
  | A.Bit_or -> int_ctx ( lor )
  | A.Bit_xor -> int_ctx ( lxor )

and compile_load env cb ie : cexpr =
  let ci = compile_expr env ie in
  match (cb, int_of_safe ci) with
  | Xu (Ty.Eint, fb), Some fi ->
    let res = Array.make 32 0 in
    let addrs = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let ids = fb c w mask in
        let g = fi c w mask in
        let n = pc mask in
        charge c c.cfg.Cfg.mem_issue_cycles n;
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let buf = Mem.get_buf c.mem ids.(l) in
          let idx = g.(l) in
          res.(l) <- Mem.read_int buf idx;
          addrs.(!k) <- Mem.addr buf idx;
          incr k;
          m := !m land (!m - 1)
        done;
        account c w addrs !k;
        res)
  | Xu (Ty.Efloat, fb), Some fi ->
    let res = Array.make 32 0.0 in
    let addrs = Array.make 32 0 in
    Xf
      (fun c w mask ->
        let ids = fb c w mask in
        let g = fi c w mask in
        let n = pc mask in
        charge c c.cfg.Cfg.mem_issue_cycles n;
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let buf = Mem.get_buf c.mem ids.(l) in
          let idx = g.(l) in
          res.(l) <- Mem.read_float buf idx;
          addrs.(!k) <- Mem.addr buf idx;
          incr k;
          m := !m land (!m - 1)
        done;
        account c w addrs !k;
        res)
  | Xu (Ty.Eint, fb), None ->
    (* raising index coercion: getter keeps the per-lane raise order *)
    let gi = irun ci in
    let res = Array.make 32 0 in
    let addrs = Array.make 32 0 in
    Xi
      (fun c w mask ->
        let ids = fb c w mask in
        let g = gi c w mask in
        let n = pc mask in
        charge c c.cfg.Cfg.mem_issue_cycles n;
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let buf = Mem.get_buf c.mem ids.(l) in
          let idx = ig g l in
          res.(l) <- Mem.read_int buf idx;
          addrs.(!k) <- Mem.addr buf idx;
          incr k;
          m := !m land (!m - 1)
        done;
        account c w addrs !k;
        res)
  | Xu (Ty.Efloat, fb), None ->
    let gi = irun ci in
    let res = Array.make 32 0.0 in
    let addrs = Array.make 32 0 in
    Xf
      (fun c w mask ->
        let ids = fb c w mask in
        let g = gi c w mask in
        let n = pc mask in
        charge c c.cfg.Cfg.mem_issue_cycles n;
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let buf = Mem.get_buf c.mem ids.(l) in
          let idx = ig g l in
          res.(l) <- Mem.read_float buf idx;
          addrs.(!k) <- Mem.addr buf idx;
          incr k;
          m := !m land (!m - 1)
        done;
        account c w addrs !k;
        res)
  | _ ->
    (* element type unknown (or not a buffer at all): boxed, walker-exact *)
    let gi = irun ci in
    let gb = vrun cb in
    let res = Array.make 32 (V.Vint 0) in
    let addrs = Array.make 32 0 in
    Xb
      (fun c w mask ->
        let b = gb c w mask in
        let g = gi c w mask in
        let n = pc mask in
        charge c c.cfg.Cfg.mem_issue_cycles n;
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let buf = get_buf_v env c (vg b l) in
          let idx = ig g l in
          (match buf.Mem.data with
          | Mem.I _ -> res.(l) <- V.Vint (Mem.read_int buf idx)
          | Mem.F _ -> res.(l) <- V.Vfloat (Mem.read_float buf idx));
          addrs.(!k) <- Mem.addr buf idx;
          incr k;
          m := !m land (!m - 1)
        done;
        account c w addrs !k;
        res)

(* --- statement compilation ---------------------------------------------- *)

(* Writers for assigning a statement's 32-wide result into a slot. *)

let copy_lanes_i (dst : int array) (src : int array) mask =
  let m = ref mask in
  while !m <> 0 do
    let l = lb !m in
    dst.(l) <- src.(l);
    m := !m land (!m - 1)
  done

let copy_lanes_f (dst : float array) (src : float array) mask =
  let m = ref mask in
  while !m <> 0 do
    let l = lb !m in
    dst.(l) <- src.(l);
    m := !m land (!m - 1)
  done

let storage_of env (v : A.var) =
  if v.A.slot < 0 then raise Not_compilable;
  env.storage.(v.A.slot)

(* Assign from a boxed scratch (used by the cold atomic path): the slot's
   unboxed representation is exact because inference proved every value
   reaching it monomorphic. *)
let assign_from_v env (v : A.var) : warp -> int -> V.t array -> unit =
  match storage_of env v with
  | Si r ->
    fun w mask olds ->
      let dst = w.ints.(r) in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        dst.(l) <- V.as_int olds.(l);
        m := !m land (!m - 1)
      done
  | Sf r ->
    fun w mask olds ->
      let dst = w.flts.(r) in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        dst.(l) <- V.as_float olds.(l);
        m := !m land (!m - 1)
      done
  | Sb r ->
    fun w mask olds ->
      let dst = w.boxd.(r) in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        dst.(l) <- olds.(l);
        m := !m land (!m - 1)
      done

let assign_all env (v : A.var) : warp -> V.t -> unit =
  match storage_of env v with
  | Si r ->
    fun w value ->
      let x =
        match value with
        | V.Vint i -> i
        | V.Vbuf id -> id
        | V.Vfloat _ -> assert false
      in
      Array.fill w.ints.(r) 0 32 x
  | Sf r ->
    fun w value -> Array.fill w.flts.(r) 0 32 (V.as_float value)
  | Sb r -> fun w value -> Array.fill w.boxd.(r) 0 32 value

let rec compile_stmt env (s : A.stmt) : cctx -> warp -> int -> unit =
  let f = compile_stmt_inner env s in
  fun c w mask ->
    let mask = mask land lnot w.returned in
    if mask <> 0 then f c w mask

and compile_stmt_inner env (s : A.stmt) : cctx -> warp -> int -> unit =
  match s with
  | A.Let (v, e) -> (
    let ce = compile_expr env e in
    match (storage_of env v, ce) with
    | Si r, (Xi fe | Xu (_, fe)) ->
      fun c w mask ->
        let vals = fe c w mask in
        charge c 1 (pc mask);
        copy_lanes_i w.ints.(r) vals mask
    | Sf r, Xf fe ->
      fun c w mask ->
        let vals = fe c w mask in
        charge c 1 (pc mask);
        copy_lanes_f w.flts.(r) vals mask
    | Sb r, ce ->
      let ge = vrun ce in
      fun c w mask ->
        let g = ge c w mask in
        charge c 1 (pc mask);
        let dst = w.boxd.(r) in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          dst.(l) <- vg g l;
          m := !m land (!m - 1)
        done
    | (Si _ | Sf _), _ ->
      (* inference promised this could not happen *)
      raise Not_compilable)
  | A.Store (be, ie, xe) -> compile_store env be ie xe
  | A.Shared_store (name, ie, xe) -> (
    let gi = irun (compile_expr env ie) in
    let gx = vrun (compile_expr env xe) in
    match Hashtbl.find_opt env.shindex name with
    | None ->
      fun c w mask ->
        let _gi = gi c w mask in
        let _gx = gx c w mask in
        charge c 1 (pc mask);
        err "kernel %s: undeclared shared array %s" env.kname name
    | Some idx ->
      let sidx = Array.make 32 0 in
      fun c w mask ->
        let g = gi c w mask in
        let x = gx c w mask in
        charge c 1 (pc mask);
        let arr = c.shared.(idx) in
        let k = ref 0 in
        let m = ref mask in
        while !m <> 0 do
          let l = lb !m in
          let i = ig g l in
          if i < 0 || i >= Array.length arr then
            err "kernel %s: shared array %s[%d] out of bounds (size %d)"
              env.kname name i (Array.length arr);
          sidx.(!k) <- i;
          incr k;
          arr.(i) <- vg x l;
          m := !m land (!m - 1)
        done;
        account_shared c sidx !k)
  | A.If (cond, t, f) ->
    let tc = compile_truth ~charge_node:true (compile_expr env cond) in
    let ct = Array.of_list (List.map (compile_stmt env) t) in
    let cf = Array.of_list (List.map (compile_stmt env) f) in
    fun c w mask ->
      let m_true = tc c w mask in
      let m_false = mask land lnot m_true in
      if m_true <> 0 then
        Array.iter (fun st -> st c w m_true) ct;
      if m_false <> 0 then Array.iter (fun st -> st c w m_false) cf
  | A.While (cond, body) ->
    let tc = compile_truth ~charge_node:true (compile_expr env cond) in
    let cbody = Array.of_list (List.map (compile_stmt env) body) in
    fun c w mask ->
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m0 = !continue_mask land lnot w.returned in
        if m0 = 0 then running := false
        else begin
          let m_true = tc c w m0 in
          if m_true = 0 then running := false
          else begin
            Array.iter (fun st -> st c w m_true) cbody;
            continue_mask := m_true
          end
        end
      done
  | A.For (v, lo, hi, body) -> compile_for env v lo hi body
  | A.Atomic { op; buf = be; idx = ie; operand = oe; compare = ce; old } ->
    compile_atomic env op be ie oe ce old
  | A.Launch l ->
    let gg = irun (compile_expr env l.A.grid) in
    let gb = irun (compile_expr env l.A.block) in
    let gargs = List.map (fun a -> vrun (compile_expr env a)) l.A.args in
    let callee = l.A.callee in
    fun c w mask ->
      let vg_ = gg c w mask in
      let vb_ = gb c w mask in
      let vargs = List.map (fun ga -> ga c w mask) gargs in
      let n = pc mask in
      let ids = Array.make n (-1) in
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let lane = lb !m in
        let grid_dim = ig vg_ lane in
        let block_dim = ig vb_ lane in
        let args = List.map (fun g -> vg g lane) vargs in
        charge c c.cfg.Cfg.launch_issue_cycles 1;
        c.seg.Trace.dram <-
          c.seg.Trace.dram + c.cfg.Cfg.launch_dram_transactions;
        Vec.push c.pending
          { R.pl_callee = callee; pl_grid = grid_dim; pl_block = block_dim;
            pl_args = args; pl_ids = ids; pl_slot = !k;
            pl_parent = (c.gid, c.block_idx); pl_depth = c.depth + 1 };
        incr k;
        m := !m land (!m - 1)
      done;
      Trace.cut c.seg (Trace.Seg_launch ids)
  | A.Device_sync ->
    fun c _w mask ->
      charge c 2 (pc mask);
      let todo = Vec.to_array c.pending in
      Vec.clear c.pending;
      Array.iter c.flush_deep todo;
      Trace.cut c.seg Trace.Seg_sync
  | A.Malloc { dst; count; scope; site } ->
    if site < 0 then raise Not_compilable;
    let gcount = irun (compile_expr env count) in
    let set = assign_all env dst in
    let kname = env.kname in
    fun c w mask ->
      let g = gcount c w mask in
      let first = lb mask in
      let n_elems = ig g first in
      let fresh () =
        let name = Printf.sprintf "%s#m%d@g%d" kname site c.gid in
        let contention = !(c.grid_alloc_count) in
        incr c.grid_alloc_count;
        let fallbacks_before = Alloc.pool_fallbacks c.alloc in
        let buf, cost =
          Alloc.alloc ~contention c.alloc c.mem ~name ~count:n_elems
        in
        c.add_alloc_cycles cost;
        c.seg.Trace.allocs <- c.seg.Trace.allocs + 1;
        c.seg.Trace.alloc_fb <-
          c.seg.Trace.alloc_fb
          + (Alloc.pool_fallbacks c.alloc - fallbacks_before);
        c.seg.Trace.alloc_cyc <- c.seg.Trace.alloc_cyc + cost;
        charge c cost 1;
        V.Vbuf buf.Mem.id
      in
      let value =
        match scope with
        | A.Per_warp -> fresh ()
        | A.Per_block -> (
          match c.block_mallocs.(site) with
          | Some v ->
            charge c 2 (pc mask);
            v
          | None ->
            let v = fresh () in
            c.block_mallocs.(site) <- Some v;
            v)
        | A.Per_grid -> (
          match c.grid_mallocs.(site) with
          | Some v ->
            charge c 2 (pc mask);
            v
          | None ->
            let v = fresh () in
            c.grid_mallocs.(site) <- Some v;
            v)
      in
      set w value
  | A.Free e -> (
    let cb = compile_expr env e in
    match cb with
    | Xu (_, fb) ->
      fun c w mask ->
        let ids = fb c w mask in
        let first = lb mask in
        let buf = Mem.get_buf c.mem ids.(first) in
        let cost = Alloc.free c.alloc buf in
        c.add_alloc_cycles cost;
        c.seg.Trace.alloc_cyc <- c.seg.Trace.alloc_cyc + cost;
        charge c cost 1
    | _ ->
      let gb = vrun cb in
      fun c w mask ->
        let g = gb c w mask in
        let first = lb mask in
        let buf = get_buf_v env c (vg g first) in
        let cost = Alloc.free c.alloc buf in
        c.add_alloc_cycles cost;
        c.seg.Trace.alloc_cyc <- c.seg.Trace.alloc_cyc + cost;
        charge c cost 1)
  | A.Return -> fun _c w mask -> w.returned <- w.returned lor mask
  | A.Syncthreads | A.Grid_barrier ->
    fun _c _w _mask ->
      err
        "kernel %s: __syncthreads/__dp_global_barrier reached in divergent \
         (non block-uniform) control flow"
        env.kname

and compile_store env be ie xe : cctx -> warp -> int -> unit =
  let cb = compile_expr env be in
  let ci = compile_expr env ie in
  let cx = compile_expr env xe in
  match (cb, int_of_safe ci) with
  | Xu (Ty.Eint, fb), Some fi when int_of_safe cx <> None ->
    let fx = Option.get (int_of_safe cx) in
    let addrs = Array.make 32 0 in
    fun c w mask ->
      let ids = fb c w mask in
      let g = fi c w mask in
      let x = fx c w mask in
      let n = pc mask in
      charge c c.cfg.Cfg.mem_issue_cycles n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = g.(l) in
        Mem.write_int buf idx x.(l);
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k
  | Xu (Ty.Efloat, fb), Some fi when float_of_safe cx <> None ->
    let fx = Option.get (float_of_safe cx) in
    let addrs = Array.make 32 0 in
    fun c w mask ->
      let ids = fb c w mask in
      let g = fi c w mask in
      let x = fx c w mask in
      let n = pc mask in
      charge c c.cfg.Cfg.mem_issue_cycles n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = g.(l) in
        Mem.write_float buf idx x.(l);
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k
  | Xu (Ty.Eint, fb), _ ->
    (* a raising coercion somewhere: getters keep the per-lane raise
       order *)
    let gi = irun ci in
    let gx = irun cx in
    let addrs = Array.make 32 0 in
    fun c w mask ->
      let ids = fb c w mask in
      let g = gi c w mask in
      let x = gx c w mask in
      let n = pc mask in
      charge c c.cfg.Cfg.mem_issue_cycles n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = ig g l in
        Mem.write_int buf idx (ig x l);
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k
  | Xu (Ty.Efloat, fb), _ ->
    let gi = irun ci in
    let gx = frun cx in
    let addrs = Array.make 32 0 in
    fun c w mask ->
      let ids = fb c w mask in
      let g = gi c w mask in
      let x = gx c w mask in
      let n = pc mask in
      charge c c.cfg.Cfg.mem_issue_cycles n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = ig g l in
        Mem.write_float buf idx (fg x l);
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k
  | _ ->
    let gi = irun ci in
    let gb = vrun cb in
    let gx = vrun cx in
    let addrs = Array.make 32 0 in
    fun c w mask ->
      let b = gb c w mask in
      let g = gi c w mask in
      let x = gx c w mask in
      let n = pc mask in
      charge c c.cfg.Cfg.mem_issue_cycles n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = get_buf_v env c (vg b l) in
        let idx = ig g l in
        (match buf.Mem.data with
        | Mem.I _ -> Mem.write_int buf idx (V.as_int (vg x l))
        | Mem.F _ -> Mem.write_float buf idx (V.as_float (vg x l)));
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k

and compile_for env v lo hi body : cctx -> warp -> int -> unit =
  let clo = compile_expr env lo in
  let chi = compile_expr env hi in
  let ghi = irun chi in
  let cbody = Array.of_list (List.map (compile_stmt env) body) in
  match (storage_of env v, int_of_safe chi) with
  | Si r, Some fhi ->
    (* induction variable proven int: lo must be int-typed *)
    let flo =
      match clo with
      | Xi f -> f
      | _ -> raise Not_compilable
    in
    fun c w mask ->
      let vlo = flo c w mask in
      charge c 1 (pc mask);
      copy_lanes_i w.ints.(r) vlo mask;
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m0 = !continue_mask land lnot w.returned in
        if m0 = 0 then running := false
        else begin
          let h = fhi c w m0 in
          charge c 1 (pc m0);
          let cur = w.ints.(r) in
          let mt = ref 0 in
          let m = ref m0 in
          while !m <> 0 do
            let l = lb !m in
            if cur.(l) < h.(l) then mt := !mt lor (1 lsl l);
            m := !m land (!m - 1)
          done;
          if !mt = 0 then running := false
          else begin
            let m_true = !mt in
            Array.iter (fun st -> st c w m_true) cbody;
            let cur = w.ints.(r) in
            charge c 1 (pc m_true);
            let m = ref m_true in
            while !m <> 0 do
              let l = lb !m in
              cur.(l) <- cur.(l) + 1;
              m := !m land (!m - 1)
            done;
            continue_mask := m_true
          end
        end
      done
  | Si r, None ->
    let flo =
      match clo with
      | Xi f -> f
      | _ -> raise Not_compilable
    in
    fun c w mask ->
      let vlo = flo c w mask in
      charge c 1 (pc mask);
      copy_lanes_i w.ints.(r) vlo mask;
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m0 = !continue_mask land lnot w.returned in
        if m0 = 0 then running := false
        else begin
          let h = ghi c w m0 in
          charge c 1 (pc m0);
          let cur = w.ints.(r) in
          let mt = ref 0 in
          let m = ref m0 in
          while !m <> 0 do
            let l = lb !m in
            if cur.(l) < ig h l then mt := !mt lor (1 lsl l);
            m := !m land (!m - 1)
          done;
          if !mt = 0 then running := false
          else begin
            let m_true = !mt in
            Array.iter (fun st -> st c w m_true) cbody;
            let cur = w.ints.(r) in
            charge c 1 (pc m_true);
            let m = ref m_true in
            while !m <> 0 do
              let l = lb !m in
              cur.(l) <- cur.(l) + 1;
              m := !m land (!m - 1)
            done;
            continue_mask := m_true
          end
        end
      done
  | Sf _, _ -> raise Not_compilable
  | Sb r, _ ->
    let glo = vrun clo in
    fun c w mask ->
      let g = glo c w mask in
      charge c 1 (pc mask);
      let dst = w.boxd.(r) in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        dst.(l) <- vg g l;
        m := !m land (!m - 1)
      done;
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m0 = !continue_mask land lnot w.returned in
        if m0 = 0 then running := false
        else begin
          let h = ghi c w m0 in
          charge c 1 (pc m0);
          let cur = w.boxd.(r) in
          let mt = ref 0 in
          let m = ref m0 in
          while !m <> 0 do
            let l = lb !m in
            if V.as_int cur.(l) < ig h l then mt := !mt lor (1 lsl l);
            m := !m land (!m - 1)
          done;
          if !mt = 0 then running := false
          else begin
            let m_true = !mt in
            Array.iter (fun st -> st c w m_true) cbody;
            let cur = w.boxd.(r) in
            charge c 1 (pc m_true);
            let m = ref m_true in
            while !m <> 0 do
              let l = lb !m in
              cur.(l) <- V.Vint (V.as_int cur.(l) + 1);
              m := !m land (!m - 1)
            done;
            continue_mask := m_true
          end
        end
      done

and compile_atomic env op be ie oe ce old : cctx -> warp -> int -> unit =
  let cb = compile_expr env be in
  let ci = compile_expr env ie in
  let co = compile_expr env oe in
  let cc = Option.map (compile_expr env) ce in
  let idx_safe = int_of_safe ci in
  let fast_int =
    (* int buffer, int operand, non-raising index: all unboxed *)
    idx_safe <> None
    &&
    match (cb, co, op) with
    | Xu (Ty.Eint, _), Xi _, (A.Aadd | A.Amin | A.Amax | A.Aexch) -> true
    | Xu (Ty.Eint, _), Xi _, A.Acas -> (
      match cc with Some (Xi _ | Xf _) -> true | _ -> false)
    | _ -> false
  in
  let fast_float =
    (* float buffer, arithmetic op: C promotion makes int operands exact *)
    idx_safe <> None
    &&
    match (cb, co, op) with
    | Xu (Ty.Efloat, _), (Xf _ | Xi _), (A.Aadd | A.Amin | A.Amax) -> true
    | Xu (Ty.Efloat, _), Xf _, A.Aexch -> true
    | _ -> false
  in
  if fast_int then begin
    let fb = match cb with Xu (_, f) -> f | _ -> assert false in
    let fi = Option.get idx_safe in
    let fo = Option.get (int_of_safe co) in
    let fc = Option.map (fun cx -> Option.get (int_of_safe cx)) cc in
    let olds = Array.make 32 0 in
    let addrs = Array.make 32 0 in
    let apply =
      match op with
      | A.Aadd -> fun old o _cmp -> old + o
      | A.Amin -> fun old o _cmp -> Int.min old o
      | A.Amax -> fun old o _cmp -> Int.max old o
      | A.Aexch -> fun _old o _cmp -> o
      | A.Acas -> fun old o cmp -> if old = cmp then o else old
    in
    let assign =
      match old with
      | None -> None
      | Some v -> (
        match storage_of env v with
        | Si r -> Some (`I r)
        | Sb r -> Some (`B r)
        | Sf _ -> raise Not_compilable)
    in
    fun c w mask ->
      let ids = fb c w mask in
      let g = fi c w mask in
      let o = fo c w mask in
      let cmp = Option.map (fun fc -> fc c w mask) fc in
      let n = pc mask in
      charge c (c.cfg.Cfg.atomic_cycles * n) n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = g.(l) in
        let old_v = Mem.read_int buf idx in
        olds.(l) <- old_v;
        let cmp_v = match cmp with Some a -> a.(l) | None -> 0 in
        let new_v = apply old_v o.(l) cmp_v in
        Mem.write_int buf idx new_v;
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k;
      match assign with
      | None -> ()
      | Some (`I r) -> copy_lanes_i w.ints.(r) olds mask
      | Some (`B r) ->
        let dst = w.boxd.(r) in
        let mm = ref mask in
        while !mm <> 0 do
          let l = lb !mm in
          dst.(l) <- V.Vint olds.(l);
          mm := !mm land (!mm - 1)
        done
  end
  else if fast_float then begin
    let fb = match cb with Xu (_, f) -> f | _ -> assert false in
    let fi = Option.get idx_safe in
    let fo = Option.get (float_of_safe co) in
    let olds = Array.make 32 0.0 in
    let addrs = Array.make 32 0 in
    let apply =
      match op with
      | A.Aadd -> fun old o -> old +. o
      | A.Amin -> fun old o -> Float.min old o
      | A.Amax -> fun old o -> Float.max old o
      | A.Aexch -> fun _old o -> o
      | A.Acas -> assert false
    in
    let assign =
      match old with
      | None -> None
      | Some v -> (
        match storage_of env v with
        | Sf r -> Some (`F r)
        | Sb r -> Some (`B r)
        | Si _ -> raise Not_compilable)
    in
    fun c w mask ->
      let ids = fb c w mask in
      let g = fi c w mask in
      let o = fo c w mask in
      let n = pc mask in
      charge c (c.cfg.Cfg.atomic_cycles * n) n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = Mem.get_buf c.mem ids.(l) in
        let idx = g.(l) in
        let old_v = Mem.read_float buf idx in
        olds.(l) <- old_v;
        let new_v = apply old_v o.(l) in
        Mem.write_float buf idx new_v;
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k;
      match assign with
      | None -> ()
      | Some (`F r) -> copy_lanes_f w.flts.(r) olds mask
      | Some (`B r) ->
        let dst = w.boxd.(r) in
        let mm = ref mask in
        while !mm <> 0 do
          let l = lb !mm in
          dst.(l) <- V.Vfloat olds.(l);
          mm := !mm land (!mm - 1)
        done
  end
  else begin
    (* cold path: exact mirror of the walker, boxed per lane *)
    let gi = irun ci in
    let gb = vrun cb in
    let go = vrun co in
    let gc = Option.map vrun cc in
    let olds = Array.make 32 (V.Vint 0) in
    let addrs = Array.make 32 0 in
    let assign = Option.map (assign_from_v env) old in
    fun c w mask ->
      let b = gb c w mask in
      let g = gi c w mask in
      let o = go c w mask in
      let cmp = Option.map (fun gc -> gc c w mask) gc in
      let n = pc mask in
      charge c (c.cfg.Cfg.atomic_cycles * n) n;
      let k = ref 0 in
      let m = ref mask in
      while !m <> 0 do
        let l = lb !m in
        let buf = get_buf_v env c (vg b l) in
        let idx = ig g l in
        let old_v =
          match buf.Mem.data with
          | Mem.I _ -> V.Vint (Mem.read_int buf idx)
          | Mem.F _ -> V.Vfloat (Mem.read_float buf idx)
        in
        olds.(l) <- old_v;
        let new_v =
          match op with
          | A.Aadd -> R.binop_apply A.Add old_v (vg o l)
          | A.Amin -> R.binop_apply A.Min old_v (vg o l)
          | A.Amax -> R.binop_apply A.Max old_v (vg o l)
          | A.Aexch -> vg o l
          | A.Acas ->
            let cmp_v =
              match cmp with
              | Some gc -> vg gc l
              | None -> err "atomicCAS without compare value"
            in
            if V.as_int old_v = V.as_int cmp_v then vg o l else old_v
        in
        (match buf.Mem.data with
        | Mem.I _ -> Mem.write_int buf idx (V.as_int new_v)
        | Mem.F _ -> Mem.write_float buf idx (V.as_float new_v));
        addrs.(!k) <- Mem.addr buf idx;
        incr k;
        m := !m land (!m - 1)
      done;
      account c w addrs !k;
      match assign with
      | None -> ()
      | Some set -> set w mask olds
  end

(* --- block-uniform statement compilation -------------------------------- *)

type uval = Unone | Uint of int | Ufloat of float | Ubuf of int
          | Uboxed of V.t

let utruthy = function
  | Unone -> false
  | Uint i -> i <> 0
  | Ufloat f -> f <> 0.0
  | Ubuf id -> V.truthy (V.Vbuf id)
  | Uboxed v -> V.truthy v

let uint = function
  | Unone -> 0
  | Uint i -> i
  | Ufloat f -> Float.to_int f
  | Ubuf id -> V.as_int (V.Vbuf id)
  | Uboxed v -> V.as_int v

let nonuniform env (v0 : V.t) (v1 : V.t) =
  err
    "kernel %s: non-uniform condition around a block-level barrier (%s vs \
     %s)"
    env.kname (V.to_string v0) (V.to_string v1)

(* Evaluate [e] on every live lane of the block; all live lanes must
   agree (the CUDA legality rule for barriers inside control flow).
   Returns [Unone] when no lane in the block is live.  The uniformity
   test on raw ints/floats is the walker's polymorphic [<>] on the boxed
   values (IEEE semantics on floats, NaN included). *)
let compile_ueval env (ce : cexpr) : cctx -> uval =
  match ce with
  | Xi f ->
    fun c ->
      let got = ref false and v0 = ref 0 in
      Array.iter
        (fun w ->
          let m0 = live_mask w in
          if m0 <> 0 then begin
            let a = f c w m0 in
            charge c 1 (pc m0);
            let m = ref m0 in
            while !m <> 0 do
              let l = lb !m in
              if not !got then begin
                got := true;
                v0 := a.(l)
              end
              else if a.(l) <> !v0 then
                nonuniform env (V.Vint !v0) (V.Vint a.(l));
              m := !m land (!m - 1)
            done
          end)
        c.warps;
      if !got then Uint !v0 else Unone
  | Xu (_, f) ->
    fun c ->
      let got = ref false and v0 = ref 0 in
      Array.iter
        (fun w ->
          let m0 = live_mask w in
          if m0 <> 0 then begin
            let a = f c w m0 in
            charge c 1 (pc m0);
            let m = ref m0 in
            while !m <> 0 do
              let l = lb !m in
              if not !got then begin
                got := true;
                v0 := a.(l)
              end
              else if a.(l) <> !v0 then
                nonuniform env (V.Vbuf !v0) (V.Vbuf a.(l));
              m := !m land (!m - 1)
            done
          end)
        c.warps;
      if !got then Ubuf !v0 else Unone
  | Xf f ->
    fun c ->
      let got = ref false and v0 = ref 0.0 in
      Array.iter
        (fun w ->
          let m0 = live_mask w in
          if m0 <> 0 then begin
            let a = f c w m0 in
            charge c 1 (pc m0);
            let m = ref m0 in
            while !m <> 0 do
              let l = lb !m in
              if not !got then begin
                got := true;
                v0 := a.(l)
              end
              else if a.(l) <> !v0 then
                nonuniform env (V.Vfloat !v0) (V.Vfloat a.(l));
              m := !m land (!m - 1)
            done
          end)
        c.warps;
      if !got then Ufloat !v0 else Unone
  | Xb f ->
    fun c ->
      let result = ref None in
      Array.iter
        (fun w ->
          let m0 = live_mask w in
          if m0 <> 0 then begin
            let a = f c w m0 in
            charge c 1 (pc m0);
            let m = ref m0 in
            while !m <> 0 do
              let l = lb !m in
              (match !result with
              | None -> result := Some a.(l)
              | Some v0 -> if a.(l) <> v0 then nonuniform env v0 a.(l));
              m := !m land (!m - 1)
            done
          end)
        c.warps;
      (match !result with Some v -> Uboxed v | None -> Unone)

let rec compile_uniform env (s : A.stmt) : cctx -> unit =
  match s with
  | A.Syncthreads ->
    fun c ->
      Array.iter
        (fun w ->
          let m = live_mask w in
          if m <> 0 then charge c 2 (pc m))
        c.warps
  | A.Grid_barrier ->
    fun c ->
      (* One lane per block performs the arrival atomic; all blocks except
         the last to arrive exit (Section IV.E deadlock avoidance). *)
      charge c c.cfg.Cfg.atomic_cycles 1;
      Trace.cut c.seg Trace.Seg_barrier;
      if c.block_idx <> c.grid_dim - 1 then
        Array.iter
          (fun w -> w.returned <- w.returned lor full_mask w)
          c.warps
  | A.If (cond, t, f) ->
    let ue = compile_ueval env (compile_expr env cond) in
    let ct = compile_block env t in
    let cf = compile_block env f in
    fun c -> (
      match ue c with
      | Unone -> ()
      | u -> if utruthy u then ct c else cf c)
  | A.While (cond, body) ->
    let ue = compile_ueval env (compile_expr env cond) in
    let cbody = compile_block env body in
    fun c ->
      let running = ref true in
      while !running do
        match ue c with
        | Unone -> running := false
        | u -> if utruthy u then cbody c else running := false
      done
  | A.For (v, lo, hi, body) ->
    let ulo = compile_ueval env (compile_expr env lo) in
    let uhi = compile_ueval env (compile_expr env hi) in
    let cbody = compile_block env body in
    let set_var =
      match storage_of env v with
      | Si r ->
        fun c i ->
          Array.iter
            (fun w ->
              let m0 = live_mask w in
              if m0 <> 0 then begin
                charge c 1 (pc m0);
                let dst = w.ints.(r) in
                let m = ref m0 in
                while !m <> 0 do
                  let l = lb !m in
                  dst.(l) <- i;
                  m := !m land (!m - 1)
                done
              end)
            c.warps
      | Sb r ->
        fun c i ->
          let v = V.Vint i in
          Array.iter
            (fun w ->
              let m0 = live_mask w in
              if m0 <> 0 then begin
                charge c 1 (pc m0);
                let dst = w.boxd.(r) in
                let m = ref m0 in
                while !m <> 0 do
                  let l = lb !m in
                  dst.(l) <- v;
                  m := !m land (!m - 1)
                done
              end)
            c.warps
      | Sf _ -> raise Not_compilable
    in
    fun c -> (
      match ulo c with
      | Unone -> ()
      | u0 ->
        let i = ref (uint u0) in
        set_var c !i;
        let running = ref true in
        while !running do
          match uhi c with
          | Unone -> running := false
          | uh ->
            if !i < uint uh then begin
              cbody c;
              incr i;
              set_var c !i
            end
            else running := false
        done)
  | A.Let _ | A.Store _ | A.Shared_store _ | A.Device_sync | A.Atomic _
  | A.Launch _ | A.Malloc _ | A.Free _ | A.Return ->
    (* Only barrier-bearing statements are routed here. *)
    fun _c ->
      err "kernel %s: internal error: non-uniform statement in uniform walk"
        env.kname

(* Execute maximal runs of barrier-free statements warp by warp; handle
   barrier-bearing statements block-uniformly.  The split happens once,
   at compile time. *)
and compile_block env (stmts : A.stmt list) : cctx -> unit =
  let rec split_run acc = function
    | s :: rest when not (A.needs_block_uniform s) ->
      split_run (s :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> []
    | s :: rest when A.needs_block_uniform s ->
      `U (compile_uniform env s) :: go rest
    | stmts ->
      let run, rest = split_run [] stmts in
      (match env.run_lower with
      | Some lower -> `L (lower env run) :: go rest
      | None -> `R (Array.of_list (List.map (compile_stmt env) run)) :: go rest)
  in
  let segs = Array.of_list (go stmts) in
  fun c ->
    Array.iter
      (function
        | `U f -> f c
        | `L f -> Array.iter (fun w -> if live_mask w <> 0 then f c w) c.warps
        | `R run ->
          Array.iter
            (fun w ->
              if live_mask w <> 0 then
                Array.iter (fun st -> st c w (full_mask w)) run)
            c.warps)
      segs

(* --- whole-kernel compilation ------------------------------------------- *)

type ckernel = {
  ck_kernel : K.t;
  ck_nint : int;  (** int-plane rows per warp *)
  ck_nflt : int;
  ck_nbox : int;
  ck_param_store : storage list;  (** aligned with the parameter list *)
  ck_param_ty : Ty.slot_ty list;
  ck_shared : (string * int) list;
  ck_run : cctx -> unit;
}

let compile_kernel ?run_lower (k : K.t) : ckernel option =
  match k.K.typing with
  | None -> None
  | Some ty when not ty.Ty.ok -> None
  | Some ty -> (
    try
      let nslots = Array.length ty.Ty.slots in
      let storage = Array.make nslots (Si 0) in
      let ni = ref 0 and nf = ref 0 and nb = ref 0 in
      Array.iteri
        (fun i st ->
          match st with
          | Ty.St_bot | Ty.St_int | Ty.St_buf _ ->
            storage.(i) <- Si !ni;
            incr ni
          | Ty.St_float ->
            storage.(i) <- Sf !nf;
            incr nf
          | Ty.St_boxed ->
            storage.(i) <- Sb !nb;
            incr nb)
        ty.Ty.slots;
      let shindex = Hashtbl.create 4 in
      List.iteri
        (fun i (name, _) -> Hashtbl.replace shindex name i)
        k.K.shared;
      let shtys = Array.of_list (List.map snd ty.Ty.shared) in
      let env = { kname = k.K.kname; slots = ty.Ty.slots; storage; shindex;
                  shtys; run_lower }
      in
      let run = compile_block env k.K.body in
      let param_store =
        List.map
          (fun (p : A.param) ->
            if p.A.pvar.A.slot < 0 then raise Not_compilable;
            storage.(p.A.pvar.A.slot))
          k.K.params
      in
      let param_ty =
        List.map
          (fun (p : A.param) -> ty.Ty.slots.(p.A.pvar.A.slot))
          k.K.params
      in
      Some
        { ck_kernel = k; ck_nint = !ni; ck_nflt = !nf; ck_nbox = !nb;
          ck_param_store = param_store; ck_param_ty = param_ty;
          ck_shared = k.K.shared; ck_run = run }
    with Not_compilable -> None)

(** Do the launch arguments' runtime types agree with the inference?  A
    mismatching launch (e.g. a float passed for an int parameter) falls
    back to the reference walker, which defines the semantics of such
    calls. *)
let args_ok ck mem (args : V.t list) =
  try
    List.for_all2
      (fun sty (v : V.t) ->
        match (sty, v) with
        | (Ty.St_boxed | Ty.St_bot), _ -> true
        | Ty.St_int, V.Vint _ -> true
        | Ty.St_float, V.Vfloat _ -> true
        | Ty.St_buf Ty.Eany, V.Vbuf _ -> true
        | Ty.St_buf Ty.Eint, V.Vbuf id -> (
          match (Mem.get_buf mem id).Mem.data with
          | Mem.I _ -> true
          | Mem.F _ -> false)
        | Ty.St_buf Ty.Efloat, V.Vbuf id -> (
          match (Mem.get_buf mem id).Mem.data with
          | Mem.F _ -> true
          | Mem.I _ -> false)
        | _ -> false)
      ck.ck_param_ty args
  with _ -> false

(* --- block execution ----------------------------------------------------- *)

let exec_block (ck : ckernel) ~(cfg : Cfg.t) ~mem ~alloc ~mm ~gid
    ~grid_dim ~block_dim ~depth ~block_idx ~(args : V.t list) ~grid_mallocs
    ~grid_alloc_count ~flush_deep ~enqueue ~add_alloc_cycles ~deep :
    Trace.block_trace =
  let nwarps = Cfg.warps_per_block cfg ~block_dim in
  let warps =
    Array.init nwarps (fun widx ->
        let base_lane = widx * cfg.Cfg.warp_size in
        let nlanes = Int.min cfg.Cfg.warp_size (block_dim - base_lane) in
        {
          widx;
          base_lane;
          nlanes;
          ints = Array.init ck.ck_nint (fun _ -> Array.make 32 0);
          flts = Array.init ck.ck_nflt (fun _ -> Array.make 32 0.0);
          boxd = Array.init ck.ck_nbox (fun _ -> Array.make 32 (V.Vint 0));
          returned = 0;
        })
  in
  (* Bind parameters in every lane (argument kinds verified by args_ok). *)
  List.iter2
    (fun st (v : V.t) ->
      match st with
      | Si r ->
        let x =
          match v with
          | V.Vint i -> i
          | V.Vbuf id -> id
          | V.Vfloat _ -> assert false
        in
        Array.iter (fun w -> Array.fill w.ints.(r) 0 32 x) warps
      | Sf r ->
        let x = match v with V.Vfloat f -> f | _ -> assert false in
        Array.iter (fun w -> Array.fill w.flts.(r) 0 32 x) warps
      | Sb r -> Array.iter (fun w -> Array.fill w.boxd.(r) 0 32 v) warps)
    ck.ck_param_store args;
  let shared =
    Array.of_list
      (List.map (fun (_, size) -> Array.make size (V.Vint 0)) ck.ck_shared)
  in
  let c =
    {
      cfg;
      mem;
      alloc;
      mm;
      gid;
      grid_dim;
      block_dim;
      depth;
      block_idx;
      shared;
      warps;
      seg = Trace.seg_builder ();
      block_mallocs =
        Array.make (Int.max 1 ck.ck_kernel.K.nsites) None;
      grid_mallocs;
      grid_alloc_count;
      pending = Vec.create ~dummy:R.dummy_pending;
      deep;
      flush_deep;
      add_alloc_cycles;
    }
  in
  Memmodel.block_start mm;
  ck.ck_run c;
  (* Block end: in deep mode (an enclosing sync is waiting on this
     subtree) children run to completion now; otherwise they join the
     global breadth-order queue. *)
  let todo = Vec.to_array c.pending in
  Vec.clear c.pending;
  if deep then Array.iter flush_deep todo else Array.iter enqueue todo;
  Trace.finish c.seg ~block_idx ~warps:nwarps
