(** Discrete-event timing model.

    Replays the traces recorded by {!Interp} against the device's
    resources: SMX occupancy limits, per-SMX issue bandwidth, the
    32-concurrent-grid limit, the device-side launch pipeline with its
    fixed/virtualized pending pools, CTA startup cost, and parent-block
    swap on [cudaDeviceSynchronize].  Host launches replay sequentially
    (the drivers synchronize between kernels). *)

(** SMX scheduling discipline (DESIGN.md ablation A2):
    [Processor_sharing] (default) shares each SMX's issue bandwidth among
    resident blocks in proportion to their warp counts; [Fcfs] runs every
    block at its solo rate (no contention). *)
type scheduler = Processor_sharing | Fcfs

type result = {
  total_cycles : float;
  occupancy : float;
      (** achieved SMX occupancy: time-averaged resident warps per busy
          SMX over the warp capacity (the profiler's definition) *)
  extra_dram : int;  (** swap + virtualized-pool traffic *)
  virtualized_launches : int;
  max_pending : int;
  swapped_syncs : int;
}

type t

exception Stuck of string

(** [sink] receives one {!Dpc_prof.Event.t} per interesting state
    transition (grid lifecycle, SMX residency, sync swaps, pending-pool
    pressure, allocator replay), stamped with the simulated cycle.  The
    sink is per-model state: concurrent replays on separate domains with
    their own sinks record independent, deterministic streams. *)
val create :
  ?scheduler:scheduler ->
  ?record_timeline:bool ->
  ?sink:Dpc_prof.Event.sink ->
  Dpc_gpu.Config.t ->
  Trace.grid_exec array ->
  int list ->
  t

(** Run the replay to completion.
    @raise Stuck if any grid cannot complete (a model invariant
    violation). *)
val run : t -> result

(** Resident-warp step samples (start_time, warps) in time order; empty
    unless the model was created with [record_timeline:true]. *)
val timeline : t -> (float * int) list

(** [simulate cfg grids roots] = [run (create cfg grids roots)]. *)
val simulate :
  ?scheduler:scheduler ->
  ?sink:Dpc_prof.Event.sink ->
  Dpc_gpu.Config.t ->
  Trace.grid_exec array ->
  int list ->
  result
