(** Functional SIMT interpreter.

    Executes kernel IR the way a SIMT machine does at warp granularity:
    each warp evaluates every instruction as a 32-wide vector under an
    active-lane mask, divergent branches serialize both paths, loops run
    with shrinking masks, and global-memory instructions are coalesced
    into 128-byte segments filtered through an L2 model.  It records the
    per-block {!Trace.segment}s consumed by the timing model.

    Two back ends implement the semantics:

    - the {e reference walker} below re-traverses the AST per warp with
      boxed {!V.t} vectors — slow, obviously correct, and the oracle for
      differential testing;
    - the {e compiled fast path} ({!Compile}) lowers each kernel once
      into closures over an unboxed register plane and is dispatched to
      whenever the kernel compiles and the launch arguments match the
      inferred types.

    Both paths emit byte-identical traces (same charges in the same
    order).  The default is the compiled path; set [DPC_INTERP=ref] (or
    call {!set_default_mode}) to force the walker.

    Device-side launches are recorded and executed when the launching
    block reaches [cudaDeviceSynchronize] or finishes.  This is sound for
    any program in which a parent only reads data written by a child after
    [cudaDeviceSynchronize] or kernel end — the visibility rule the CUDA
    DP memory model gives real programs (see DESIGN.md, "Execution-model
    restriction") — and it keeps data-dependent launch chains near their
    breadth-first depth, as concurrent hardware execution does. *)

module A = Dpc_kir.Ast
module V = Dpc_kir.Value
module K = Dpc_kir.Kernel
module Mem = Dpc_gpu.Memory
module Cfg = Dpc_gpu.Config
module Alloc = Dpc_alloc.Allocator
module Vec = Dpc_util.Vec
module R = Runtime

exception Sim_error = Runtime.Sim_error

let err = R.err

type pending_launch = Runtime.pending_launch = {
  pl_callee : string;
  pl_grid : int;
  pl_block : int;
  pl_args : V.t list;
  pl_ids : int array;  (** the Seg_launch id slot to patch at execution *)
  pl_slot : int;
  pl_parent : int * int;  (** launching grid id, block idx *)
  pl_depth : int;  (** nesting depth of the child *)
}

(* --- back-end selection -------------------------------------------------- *)

type mode = Compiled | Bytecode | Reference

let default_mode_ref =
  ref
    (match Sys.getenv_opt "DPC_INTERP" with
    | Some ("ref" | "reference" | "walker") -> Reference
    | Some ("bytecode" | "bc") -> Bytecode
    | _ -> Compiled)

let set_default_mode m = default_mode_ref := m

let default_mode () = !default_mode_ref

let mode_to_string = function
  | Compiled -> "compiled"
  | Bytecode -> "bytecode"
  | Reference -> "ref"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "compiled" -> Some Compiled
  | "bytecode" | "bc" -> Some Bytecode
  | "ref" | "reference" | "walker" -> Some Reference
  | _ -> None

type session = {
  cfg : Cfg.t;
  mem : Mem.t;
  alloc : Alloc.t;
  prog : K.Program.t;
  grids : Trace.grid_exec Vec.t;
  mutable roots : int list;  (** host-launched grid ids, reverse order *)
  mm : Memmodel.t;  (** memory-hierarchy model: the single accounting path *)
  mutable alloc_cycles : int;
  mutable max_depth : int;
  mutable grid_budget : int;  (** runaway-recursion guard *)
  fifo : pending_launch Queue.t;
      (** global breadth-order queue of launches awaiting execution *)
  mode : mode;
  ckernels : (string, Compile.ckernel option) Hashtbl.t;
      (** per-session compilation cache: kernel name -> compiled form, or
          [None] when the kernel does not compile and every launch of it
          must take the reference walker *)
}

let dummy_grid : Trace.grid_exec =
  { gid = -1; kernel = ""; grid_dim = 0; block_dim = 0; depth = 0;
    parent = None; blocks = [||] }

let create_session ?(grid_budget = 150_000) ?mode ?ckernels ~cfg ~alloc prog =
  K.Program.finalize prog;
  {
    cfg;
    mem = Mem.create ();
    alloc;
    prog;
    grids = Vec.create ~dummy:dummy_grid;
    roots = [];
    mm = Memmodel.create cfg;
    alloc_cycles = 0;
    max_depth = 0;
    grid_budget;
    fifo = Queue.create ();
    mode = (match mode with Some m -> m | None -> !default_mode_ref);
    ckernels =
      (match ckernels with Some tbl -> tbl | None -> Hashtbl.create 16);
  }

(* --- warp / block execution state -------------------------------------- *)

type warp_state = {
  widx : int;
  base_lane : int;  (** threadIdx.x of lane 0 *)
  nlanes : int;  (** threads in this warp (last warp may be partial) *)
  frames : V.t array array;  (** indexed [slot].[lane] *)
  mutable returned : int;  (** bitmask of lanes that executed [return] *)
}

type bctx = {
  s : session;
  gid : int;
  kernel : K.t;
  grid_dim : int;
  block_dim : int;
  depth : int;
  block_idx : int;
  shared : (string, V.t array) Hashtbl.t;
  warps : warp_state array;
  seg : Trace.seg_builder;
  shidx : int array;  (** shared-access index scratch for {!Memmodel} *)
  block_mallocs : (int, V.t) Hashtbl.t;
  grid_mallocs : V.t option array;
  grid_alloc_count : int ref;
      (** allocator calls issued by this grid so far (heap contention) *)
  pending : pending_launch Vec.t;
  deep : bool;
      (** this grid is being drained to completion for an enclosing
          [cudaDeviceSynchronize]: its launches must also complete now *)
}

let popcount = R.popcount

let lowest_bit = R.lowest_bit

let iter_lanes = R.iter_lanes

let lanes_where = R.lanes_where

let full_mask w = (1 lsl w.nlanes) - 1

let live_mask w = full_mask w land lnot w.returned

let charge c cycles active = R.charge c.seg cycles active

(* --- scalar operations -------------------------------------------------- *)

let unop_apply = R.unop_apply

let binop_apply = R.binop_apply

let special_value c w (s : A.special) lane =
  match s with
  | A.Thread_idx -> w.base_lane + lane
  | A.Block_idx -> c.block_idx
  | A.Block_dim -> c.block_dim
  | A.Grid_dim -> c.grid_dim
  | A.Lane_id -> lane
  | A.Warp_id -> w.widx
  | A.Warp_size -> c.s.cfg.Cfg.warp_size

(* --- memory access accounting ------------------------------------------ *)

let account_access c w (addrs : int array) n =
  Memmodel.account_access c.s.mm ~seg:c.seg ~warp:w.widx addrs n

let account_shared c (idxs : int array) n =
  Memmodel.account_shared c.s.mm ~seg:c.seg idxs n

(* --- expression evaluation (32-wide vectors) ---------------------------- *)

let get_buf c (v : V.t) =
  match v with
  | V.Vbuf id -> Mem.get_buf c.s.mem id
  | _ ->
    err "kernel %s: %s used as a buffer" c.kernel.K.kname (V.to_string v)

let rec eval c w mask (e : A.expr) : V.t array =
  match e with
  | A.Const v -> Array.make 32 v
  | A.Var v ->
    if v.A.slot < 0 then
      err "kernel %s: unresolved variable %s" c.kernel.K.kname v.A.name;
    w.frames.(v.A.slot)
  | A.Special sp ->
    charge c 1 (popcount mask);
    let arr = Array.make 32 (V.Vint 0) in
    for l = 0 to w.nlanes - 1 do
      arr.(l) <- V.Vint (special_value c w sp l)
    done;
    arr
  | A.Unop (op, a) ->
    let va = eval c w mask a in
    charge c 1 (popcount mask);
    let res = Array.make 32 (V.Vint 0) in
    iter_lanes mask (fun l -> res.(l) <- unop_apply op va.(l));
    res
  | A.Binop (A.And, a, b) ->
    (* Short-circuit: evaluate [b] only on lanes where [a] held. *)
    let va = eval c w mask a in
    charge c 1 (popcount mask);
    let m_true = lanes_where mask (fun l -> V.truthy va.(l)) in
    let res = Array.make 32 (V.Vint 0) in
    if m_true <> 0 then begin
      let vb = eval c w m_true b in
      iter_lanes m_true (fun l -> res.(l) <- V.of_bool (V.truthy vb.(l)))
    end;
    res
  | A.Binop (A.Or, a, b) ->
    let va = eval c w mask a in
    charge c 1 (popcount mask);
    let m_false = lanes_where mask (fun l -> not (V.truthy va.(l))) in
    let res = Array.make 32 (V.Vint 1) in
    if m_false <> 0 then begin
      let vb = eval c w m_false b in
      iter_lanes m_false (fun l -> res.(l) <- V.of_bool (V.truthy vb.(l)))
    end;
    res
  | A.Binop (op, a, b) ->
    let va = eval c w mask a in
    let vb = eval c w mask b in
    charge c 1 (popcount mask);
    let res = Array.make 32 (V.Vint 0) in
    iter_lanes mask (fun l -> res.(l) <- binop_apply op va.(l) vb.(l));
    res
  | A.Load (be, ie) ->
    let vb = eval c w mask be in
    let vi = eval c w mask ie in
    let n = popcount mask in
    charge c c.s.cfg.Cfg.mem_issue_cycles n;
    let res = Array.make 32 (V.Vint 0) in
    let addrs = Array.make 32 0 in
    let k = ref 0 in
    iter_lanes mask (fun l ->
        let buf = get_buf c vb.(l) in
        let idx = V.as_int vi.(l) in
        (match buf.Mem.data with
        | Mem.I _ -> res.(l) <- V.Vint (Mem.read_int buf idx)
        | Mem.F _ -> res.(l) <- V.Vfloat (Mem.read_float buf idx));
        addrs.(!k) <- Mem.addr buf idx;
        incr k);
    account_access c w addrs !k;
    res
  | A.Shared_load (name, ie) ->
    let vi = eval c w mask ie in
    charge c 1 (popcount mask);
    let arr = shared_array c name in
    let res = Array.make 32 (V.Vint 0) in
    let k = ref 0 in
    iter_lanes mask (fun l ->
        let idx = V.as_int vi.(l) in
        if idx < 0 || idx >= Array.length arr then
          err "kernel %s: shared array %s[%d] out of bounds (size %d)"
            c.kernel.K.kname name idx (Array.length arr);
        c.shidx.(!k) <- idx;
        incr k;
        res.(l) <- arr.(idx));
    account_shared c c.shidx !k;
    res
  | A.Buf_len be ->
    let vb = eval c w mask be in
    charge c 1 (popcount mask);
    let res = Array.make 32 (V.Vint 0) in
    iter_lanes mask (fun l ->
        res.(l) <- V.Vint (Mem.buf_length (get_buf c vb.(l))));
    res

and shared_array c name =
  match Hashtbl.find_opt c.shared name with
  | Some arr -> arr
  | None ->
    err "kernel %s: undeclared shared array %s" c.kernel.K.kname name

(* --- per-warp statement execution --------------------------------------- *)

let assign_lanes w (v : A.var) mask (vals : V.t array) =
  let dst = w.frames.(v.A.slot) in
  iter_lanes mask (fun l -> dst.(l) <- vals.(l))

let assign_all_lanes w (v : A.var) value =
  let dst = w.frames.(v.A.slot) in
  for l = 0 to 31 do
    dst.(l) <- value
  done

let rec exec_warp c w mask (s : A.stmt) =
  let mask = mask land lnot w.returned in
  if mask <> 0 then
    match s with
    | A.Let (v, e) ->
      let vals = eval c w mask e in
      charge c 1 (popcount mask);
      assign_lanes w v mask vals
    | A.Store (be, ie, xe) ->
      let vb = eval c w mask be in
      let vi = eval c w mask ie in
      let vx = eval c w mask xe in
      let n = popcount mask in
      charge c c.s.cfg.Cfg.mem_issue_cycles n;
      let addrs = Array.make 32 0 in
      let k = ref 0 in
      iter_lanes mask (fun l ->
          let buf = get_buf c vb.(l) in
          let idx = V.as_int vi.(l) in
          (match buf.Mem.data with
          | Mem.I _ -> Mem.write_int buf idx (V.as_int vx.(l))
          | Mem.F _ -> Mem.write_float buf idx (V.as_float vx.(l)));
          addrs.(!k) <- Mem.addr buf idx;
          incr k);
      account_access c w addrs !k
    | A.Shared_store (name, ie, xe) ->
      let vi = eval c w mask ie in
      let vx = eval c w mask xe in
      charge c 1 (popcount mask);
      let arr = shared_array c name in
      let k = ref 0 in
      iter_lanes mask (fun l ->
          let idx = V.as_int vi.(l) in
          if idx < 0 || idx >= Array.length arr then
            err "kernel %s: shared array %s[%d] out of bounds (size %d)"
              c.kernel.K.kname name idx (Array.length arr);
          c.shidx.(!k) <- idx;
          incr k;
          arr.(idx) <- vx.(l));
      account_shared c c.shidx !k
    | A.If (cond, t, f) ->
      let vc = eval c w mask cond in
      charge c 1 (popcount mask);
      let m_true = lanes_where mask (fun l -> V.truthy vc.(l)) in
      let m_false = mask land lnot m_true in
      if m_true <> 0 then List.iter (exec_warp c w m_true) t;
      if m_false <> 0 then List.iter (exec_warp c w m_false) f
    | A.While (cond, body) ->
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m = !continue_mask land lnot w.returned in
        if m = 0 then running := false
        else begin
          let vc = eval c w m cond in
          charge c 1 (popcount m);
          let m_true = lanes_where m (fun l -> V.truthy vc.(l)) in
          if m_true = 0 then running := false
          else begin
            List.iter (exec_warp c w m_true) body;
            continue_mask := m_true
          end
        end
      done
    | A.For (v, lo, hi, body) ->
      let vlo = eval c w mask lo in
      charge c 1 (popcount mask);
      assign_lanes w v mask vlo;
      let continue_mask = ref mask in
      let running = ref true in
      while !running do
        let m = !continue_mask land lnot w.returned in
        if m = 0 then running := false
        else begin
          let vhi = eval c w m hi in
          charge c 1 (popcount m);
          let cur = w.frames.(v.A.slot) in
          let m_true =
            lanes_where m (fun l -> V.as_int cur.(l) < V.as_int vhi.(l))
          in
          if m_true = 0 then running := false
          else begin
            List.iter (exec_warp c w m_true) body;
            let cur = w.frames.(v.A.slot) in
            charge c 1 (popcount m_true);
            iter_lanes m_true (fun l ->
                cur.(l) <- V.Vint (V.as_int cur.(l) + 1));
            continue_mask := m_true
          end
        end
      done
    | A.Atomic { op; buf = be; idx = ie; operand = oe; compare = ce; old } ->
      let vb = eval c w mask be in
      let vi = eval c w mask ie in
      let vo = eval c w mask oe in
      let vcmp = Option.map (eval c w mask) ce in
      let n = popcount mask in
      (* Atomics serialize per lane. *)
      charge c (c.s.cfg.Cfg.atomic_cycles * n) n;
      let olds = Array.make 32 (V.Vint 0) in
      let addrs = Array.make 32 0 in
      let k = ref 0 in
      iter_lanes mask (fun l ->
          let buf = get_buf c vb.(l) in
          let idx = V.as_int vi.(l) in
          let old_v =
            match buf.Mem.data with
            | Mem.I _ -> V.Vint (Mem.read_int buf idx)
            | Mem.F _ -> V.Vfloat (Mem.read_float buf idx)
          in
          olds.(l) <- old_v;
          let new_v =
            match op with
            | A.Aadd -> binop_apply A.Add old_v vo.(l)
            | A.Amin -> binop_apply A.Min old_v vo.(l)
            | A.Amax -> binop_apply A.Max old_v vo.(l)
            | A.Aexch -> vo.(l)
            | A.Acas ->
              let cmp =
                match vcmp with
                | Some vc -> vc.(l)
                | None -> err "atomicCAS without compare value"
              in
              if V.as_int old_v = V.as_int cmp then vo.(l) else old_v
          in
          (match buf.Mem.data with
          | Mem.I _ -> Mem.write_int buf idx (V.as_int new_v)
          | Mem.F _ -> Mem.write_float buf idx (V.as_float new_v));
          addrs.(!k) <- Mem.addr buf idx;
          incr k);
      account_access c w addrs !k;
      Option.iter (fun v -> assign_lanes w v mask olds) old
    | A.Launch l ->
      let vg = eval c w mask l.A.grid in
      let vb = eval c w mask l.A.block in
      let vargs = List.map (eval c w mask) l.A.args in
      let n = popcount mask in
      let ids = Array.make n (-1) in
      let k = ref 0 in
      iter_lanes mask (fun lane ->
          let grid_dim = V.as_int vg.(lane) in
          let block_dim = V.as_int vb.(lane) in
          let args = List.map (fun vec -> vec.(lane)) vargs in
          charge c c.s.cfg.Cfg.launch_issue_cycles 1;
          c.seg.dram <- c.seg.dram + c.s.cfg.Cfg.launch_dram_transactions;
          Vec.push c.pending
            { pl_callee = l.A.callee; pl_grid = grid_dim;
              pl_block = block_dim; pl_args = args; pl_ids = ids;
              pl_slot = !k; pl_parent = (c.gid, c.block_idx);
              pl_depth = c.depth + 1 };
          incr k);
      Trace.cut c.seg (Trace.Seg_launch ids)
    | A.Device_sync ->
      charge c 2 (popcount mask);
      flush_for_sync c;
      Trace.cut c.seg Trace.Seg_sync
    | A.Malloc { dst; count; scope; site } ->
      if site < 0 then err "kernel %s: unresolved Malloc site" c.kernel.K.kname;
      let vcount = eval c w mask count in
      let first = lowest_bit mask in
      let n_elems = V.as_int vcount.(first) in
      let fresh () =
        let name =
          Printf.sprintf "%s#m%d@g%d" c.kernel.K.kname site c.gid
        in
        let contention = !(c.grid_alloc_count) in
        incr c.grid_alloc_count;
        let fallbacks_before = Alloc.pool_fallbacks c.s.alloc in
        let buf, cost =
          Alloc.alloc ~contention c.s.alloc c.s.mem ~name ~count:n_elems
        in
        c.s.alloc_cycles <- c.s.alloc_cycles + cost;
        c.seg.Trace.allocs <- c.seg.Trace.allocs + 1;
        c.seg.Trace.alloc_fb <-
          c.seg.Trace.alloc_fb
          + (Alloc.pool_fallbacks c.s.alloc - fallbacks_before);
        c.seg.Trace.alloc_cyc <- c.seg.Trace.alloc_cyc + cost;
        charge c cost 1;
        V.Vbuf buf.Mem.id
      in
      let value =
        match scope with
        | A.Per_warp -> fresh ()
        | A.Per_block -> (
          match Hashtbl.find_opt c.block_mallocs site with
          | Some v ->
            charge c 2 (popcount mask);
            v
          | None ->
            let v = fresh () in
            Hashtbl.replace c.block_mallocs site v;
            v)
        | A.Per_grid -> (
          match c.grid_mallocs.(site) with
          | Some v ->
            charge c 2 (popcount mask);
            v
          | None ->
            let v = fresh () in
            c.grid_mallocs.(site) <- Some v;
            v)
      in
      assign_all_lanes w dst value
    | A.Free e ->
      let vb = eval c w mask e in
      let first = lowest_bit mask in
      let buf = get_buf c vb.(first) in
      let cost = Alloc.free c.s.alloc buf in
      c.s.alloc_cycles <- c.s.alloc_cycles + cost;
      c.seg.Trace.alloc_cyc <- c.seg.Trace.alloc_cyc + cost;
      charge c cost 1
    | A.Return -> w.returned <- w.returned lor mask
    | A.Syncthreads | A.Grid_barrier ->
      err
        "kernel %s: __syncthreads/__dp_global_barrier reached in divergent \
         (non block-uniform) control flow"
        c.kernel.K.kname

(* --- block-uniform statement walk --------------------------------------- *)

(* Evaluate [cond] on every live lane of the block; all live lanes must
   agree (the CUDA legality rule for barriers inside control flow).
   Returns [None] when no lane in the block is live. *)
and eval_uniform c (e : A.expr) : V.t option =
  let result = ref None in
  Array.iter
    (fun w ->
      let m = live_mask w in
      if m <> 0 then begin
        let vals = eval c w m e in
        charge c 1 (popcount m);
        iter_lanes m (fun l ->
            match !result with
            | None -> result := Some vals.(l)
            | Some v0 ->
              if vals.(l) <> v0 then
                err
                  "kernel %s: non-uniform condition around a block-level \
                   barrier (%s vs %s)"
                  c.kernel.K.kname (V.to_string v0) (V.to_string vals.(l)))
      end)
    c.warps;
  !result

and exec_uniform c (s : A.stmt) =
  match s with
  | A.Syncthreads ->
    Array.iter
      (fun w ->
        let m = live_mask w in
        if m <> 0 then charge c 2 (popcount m))
      c.warps
  | A.Grid_barrier ->
    (* One lane per block performs the arrival atomic; all blocks except
       the last to arrive exit (Section IV.E deadlock avoidance). *)
    charge c c.s.cfg.Cfg.atomic_cycles 1;
    Trace.cut c.seg Trace.Seg_barrier;
    if c.block_idx <> c.grid_dim - 1 then
      Array.iter (fun w -> w.returned <- w.returned lor full_mask w) c.warps
  | A.If (cond, t, f) -> (
    match eval_uniform c cond with
    | None -> ()
    | Some v -> if V.truthy v then exec_block_stmts c t else exec_block_stmts c f)
  | A.While (cond, body) ->
    let running = ref true in
    while !running do
      match eval_uniform c cond with
      | None -> running := false
      | Some v ->
        if V.truthy v then exec_block_stmts c body else running := false
    done
  | A.For (v, lo, hi, body) -> (
    match eval_uniform c lo with
    | None -> ()
    | Some v0 ->
      let i = ref (V.as_int v0) in
      let set_var () =
        Array.iter
          (fun w ->
            let m = live_mask w in
            if m <> 0 then begin
              charge c 1 (popcount m);
              iter_lanes m (fun l -> w.frames.(v.A.slot).(l) <- V.Vint !i)
            end)
          c.warps
      in
      set_var ();
      let running = ref true in
      while !running do
        match eval_uniform c hi with
        | None -> running := false
        | Some vhi ->
          if !i < V.as_int vhi then begin
            exec_block_stmts c body;
            incr i;
            set_var ()
          end
          else running := false
      done)
  | A.Let _ | A.Store _ | A.Shared_store _ | A.Device_sync | A.Atomic _
  | A.Launch _ | A.Malloc _ | A.Free _ | A.Return ->
    (* Only barrier-bearing statements are routed here. *)
    err "kernel %s: internal error: non-uniform statement in uniform walk"
      c.kernel.K.kname

and exec_block_stmts c (stmts : A.stmt list) =
  (* Execute maximal runs of barrier-free statements warp by warp; handle
     barrier-bearing statements block-uniformly. *)
  let rec split_run acc = function
    | s :: rest when not (A.needs_block_uniform s) -> split_run (s :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> ()
    | s :: rest when A.needs_block_uniform s ->
      exec_uniform c s;
      go rest
    | stmts ->
      let run, rest = split_run [] stmts in
      Array.iter
        (fun w ->
          if live_mask w <> 0 then
            List.iter (exec_warp c w (full_mask w)) run)
        c.warps;
      go rest
  in
  go stmts

(* --- block and grid execution ------------------------------------------- *)

(* Execute one recorded launch now, patching its Seg_launch id slot. *)
and run_pending s ~deep (pl : pending_launch) =
  let gid =
    exec_grid s ~callee:pl.pl_callee ~grid_dim:pl.pl_grid
      ~block_dim:pl.pl_block ~args:pl.pl_args ~parent:(Some pl.pl_parent)
      ~depth:pl.pl_depth ~deep
  in
  pl.pl_ids.(pl.pl_slot) <- gid

(* cudaDeviceSynchronize: everything this block has launched so far must
   complete, including descendants, before execution continues — so these
   children run immediately and deeply. *)
and flush_for_sync (c : bctx) =
  let todo = Vec.to_array c.pending in
  Vec.clear c.pending;
  Array.iter (run_pending c.s ~deep:true) todo

(* Block end.  In deep mode (an enclosing sync is waiting on this subtree)
   children also run to completion now; otherwise they join the global
   breadth-order queue, which is how concurrent hardware interleaves
   independent subtrees and what keeps data-dependent launch chains near
   their breadth-first depth. *)
and flush_at_block_end (c : bctx) =
  let todo = Vec.to_array c.pending in
  Vec.clear c.pending;
  if c.deep then Array.iter (run_pending c.s ~deep:true) todo
  else Array.iter (fun pl -> Queue.push pl c.s.fifo) todo

and exec_block s ~(kernel : K.t) ~gid ~grid_dim ~block_dim ~depth ~block_idx
    ~(args : V.t list) ~grid_mallocs ~grid_alloc_count ~deep :
    Trace.block_trace =
  let cfg = s.cfg in
  let nwarps = Cfg.warps_per_block cfg ~block_dim in
  let warps =
    Array.init nwarps (fun widx ->
        let base_lane = widx * cfg.Cfg.warp_size in
        let nlanes = Int.min cfg.Cfg.warp_size (block_dim - base_lane) in
        {
          widx;
          base_lane;
          nlanes;
          frames =
            Array.init kernel.K.nslots (fun _ -> Array.make 32 (V.Vint 0));
          returned = 0;
        })
  in
  (* Bind parameters in every lane. *)
  List.iter2
    (fun (p : A.param) v ->
      Array.iter (fun w -> assign_all_lanes w p.A.pvar v) warps)
    kernel.K.params args;
  let shared = Hashtbl.create 4 in
  List.iter
    (fun (name, size) ->
      Hashtbl.replace shared name (Array.make size (V.Vint 0)))
    kernel.K.shared;
  let c =
    {
      s;
      gid;
      kernel;
      grid_dim;
      block_dim;
      depth;
      block_idx;
      shared;
      warps;
      seg = Trace.seg_builder ();
      shidx = Array.make 32 0;
      block_mallocs = Hashtbl.create 4;
      grid_mallocs;
      grid_alloc_count;
      pending = Vec.create ~dummy:R.dummy_pending;
      deep;
    }
  in
  Memmodel.block_start s.mm;
  exec_block_stmts c kernel.K.body;
  flush_at_block_end c;
  Trace.finish c.seg ~block_idx ~warps:nwarps

and exec_grid s ~callee ~grid_dim ~block_dim ~(args : V.t list) ~parent
    ~depth ~deep : int =
  let cfg = s.cfg in
  if depth > cfg.Cfg.max_nesting_depth then
    err "launch of %s exceeds max nesting depth %d" callee
      cfg.Cfg.max_nesting_depth;
  if grid_dim <= 0 || grid_dim > cfg.Cfg.max_grid_blocks then
    err "launch of %s: invalid grid dimension %d" callee grid_dim;
  if block_dim <= 0 || block_dim > cfg.Cfg.max_threads_per_block then
    err "launch of %s: invalid block dimension %d" callee block_dim;
  let kernel = K.Program.find s.prog callee in
  if not (K.is_finalized kernel) then K.finalize kernel;
  if List.length kernel.K.params <> List.length args then
    err "launch of %s: %d arguments for %d parameters" callee
      (List.length args)
      (List.length kernel.K.params);
  s.grid_budget <- s.grid_budget - 1;
  if s.grid_budget <= 0 then
    err "grid budget exhausted (runaway launch recursion?)";
  let gid = Vec.length s.grids in
  let grid : Trace.grid_exec =
    { gid; kernel = callee; grid_dim; block_dim; depth; parent; blocks = [||] }
  in
  Vec.push s.grids grid;
  if depth > s.max_depth then s.max_depth <- depth;
  let grid_mallocs = Array.make (Int.max 1 kernel.K.nsites) None in
  let grid_alloc_count = ref 0 in
  (* Back-end dispatch: compiled when the kernel lowered successfully and
     this launch's argument types agree with the inference; the reference
     walker otherwise (and always under [Reference] mode). *)
  let ck =
    match s.mode with
    | Reference -> None
    | Compiled | Bytecode -> (
      let compiled =
        match Hashtbl.find_opt s.ckernels callee with
        | Some c -> c
        | None ->
          let c =
            match s.mode with
            | Bytecode -> Bytecode.compile_kernel kernel
            | _ -> Compile.compile_kernel kernel
          in
          Hashtbl.replace s.ckernels callee c;
          c
      in
      match compiled with
      | Some c when Compile.args_ok c s.mem args -> Some c
      | _ -> None)
  in
  let blocks =
    match ck with
    | Some ck ->
      Array.init grid_dim (fun block_idx ->
          Compile.exec_block ck ~cfg ~mem:s.mem ~alloc:s.alloc
            ~mm:s.mm ~gid ~grid_dim ~block_dim ~depth ~block_idx
            ~args ~grid_mallocs ~grid_alloc_count
            ~flush_deep:(run_pending s ~deep:true)
            ~enqueue:(fun pl -> Queue.push pl s.fifo)
            ~add_alloc_cycles:(fun cost ->
              s.alloc_cycles <- s.alloc_cycles + cost)
            ~deep)
    | None ->
      Array.init grid_dim (fun block_idx ->
          exec_block s ~kernel ~gid ~grid_dim ~block_dim ~depth ~block_idx
            ~args ~grid_mallocs ~grid_alloc_count ~deep)
  in
  grid.Trace.blocks <- blocks;
  gid

(** Host-side kernel launch: executes the grid (and, transitively, its
    children) and records it as a root for the timing model. *)
let host_launch s ~kernel ~grid ~block args =
  let gid =
    exec_grid s ~callee:kernel ~grid_dim:grid ~block_dim:block ~args
      ~parent:None ~depth:0 ~deep:false
  in
  (* Drain device-side launches breadth-first until the launch tree is
     exhausted (host-side synchronization). *)
  while not (Queue.is_empty s.fifo) do
    run_pending s ~deep:false (Queue.pop s.fifo)
  done;
  s.roots <- gid :: s.roots;
  gid

let grids s = Vec.to_array s.grids

let roots s = List.rev s.roots
