(** Third interpreter tier: finalized kernels flattened to a dense array
    of int-coded instructions over unboxed int/float register planes,
    executed by a tight dispatch loop with warp-wide inner loops.

    This is a {e second lowering} plugged into {!Compile.compile_kernel}
    via [?run_lower]: every maximal barrier-free statement run becomes
    one bytecode program; block-uniform segments (barriers and the
    control flow around them) keep the closure lowering.  The result is
    an ordinary {!Compile.ckernel}, so argument vetting, block
    execution, caching and the engine plumbing are shared with the
    closure tier.

    Design:

    - {b Registers.}  An operand is a single int [r]: [r >= tmp_base]
      indexes the program's private temp plane, [0 <= r < tmp_base] a
      warp register row (same row assignment as {!Compile}), [r < 0]
      the 32-wide constant pool.  Int and float spaces are separate;
      the kind travels in the lowering, never at run time.
    - {b Superinstructions.}  Straight-line arithmetic / conversion /
      move ops are fused at lowering time into one [FUSE] group charged
      once ([charge k n] is bit-exact equal to [k] unit charges under
      the same mask because every weighted term is a multiple of 2^-5)
      and executed op-major: one dispatch per fused op, then a tight
      counted loop over the active lanes.  Quads run in program order,
      so per-lane dataflow is the same as lane-major execution; a group
      may carry raising ops (integer division / modulo) of at most one
      kind so the abort message stays identical under reorder.
    - {b Statement filters.}  The per-statement mask re-filter
      ([mask land lnot returned]) is emitted as a [FILTER] op only when
      something since the previous filter could have changed
      [returned]; runs of pure ops fuse across statement boundaries.
    - {b Fallback.}  Anything the bytecode does not lower natively
      falls back {e per statement} to {!Compile.compile_stmt} via a
      [CALL] op, so coverage and error identity are exactly the closure
      tier's ({!Compile.Not_compilable} propagates and the whole kernel
      then takes the reference walker, as before).

    Charge-for-charge equivalence with the walker and the closure tier
    is proven by the three-way differential suite. *)

module A = Dpc_kir.Ast
module V = Dpc_kir.Value
module Ty = Dpc_kir.Typing
module Mem = Dpc_gpu.Memory
module Cfg = Dpc_gpu.Config
module C = Compile
module R = Runtime

let err = R.err

(* Local copies of the hot {!Runtime} primitives.  flambda is off, so a
   cross-module call never inlines, and the dispatch loop pays these
   millions of times per run; the bodies are bit-identical to
   [R.lowest_bit] / [R.popcount] / [R.charge]. *)
let debruijn =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let[@inline] lb m =
  Array.unsafe_get debruijn ((((m land -m) * 0x077CB531) lsr 27) land 31)

let[@inline] pc x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (x * 0x01010101) lsr 24 land 0xff

(* [chg c cycles m] = [Compile.charge c cycles (popcount m)], inlined. *)
let[@inline] chg (c : C.cctx) cycles m =
  let seg = c.C.seg in
  seg.Trace.issue <- seg.Trace.issue + cycles;
  seg.Trace.weighted <-
    seg.Trace.weighted +. (Float.of_int (cycles * pc m) /. 32.0)

(* Memory-access accounting is NOT inlined here: every global access
   goes through [C.account] -> {!Memmodel.account_access} (and shared
   accesses through [C.account_shared]) so the cost semantics live in
   exactly one place across all three tiers. *)

(* Superinstruction fusion toggle (ablation): lowering-time only, so
   flip it on cache-free sessions. *)
let fusion =
  ref
    (match Sys.getenv_opt "DPC_BYTECODE_FUSE" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let set_fusion b = fusion := b

let fusion_enabled () = !fusion

(* Register encoding split points. *)
let tmpb = 0x400000

let temp_base = tmpb

(* --- opcode tables -------------------------------------------------------

   Stream ops (operand counts include the opcode itself):
     0 FILTER                       1
     1 RET                          1
     2 CALL stmt                    2
     3 IF kind row elsep endp       5   then [pc+5,elsep) else [elsep,endp)
     4 WHILE testp endp             3   cond [pc+3,testp), testp: kind row,
                                        body [testp+2,endp)
     5 FOR var lo hi testp endp     6   hi code [pc+6,testp), body
                                        [testp,endp)
     6 ANDOR isand d ak ar bk br be 8   b code [pc+8,be)
     7 FUSE n ch quads              3+4n
     8 LOADI b i d                  4
     9 LOADF b i d                  4
    10 STOREI b i x                 4
    11 STOREF b i x                 4
    12 BUFLEN b d                   3
    13 SHLOAD i d sh nm             5
    14 SHSTORE kind i x sh nm       6

   Fused sub-ops, one quad [op; a; b; d] each:
     0..11  IADD ISUB IMUL IDIV IMOD IMIN IMAX ISHL ISHR IAND IOR IXOR
     12..17 IEQ INE ILT ILE IGT IGE
     18..23 FADD FSUB FMUL FDIV FMIN FMAX
     24..29 FEQ FNE FLT FLE FGT FGE
     30 INEG  31 FNEG  32 INOT  33 FNOT
     34 I2F   35 F2I   36 I2F_FREE  37 F2I_FREE   (36/37 charge nothing)
     38 MOVI  39 MOVF  40 CHARGE1   41 SPECIAL (a = special kind)
*)

(* --- compiled program ----------------------------------------------------- *)

type bprog = {
  code : int array;
  stmts : (C.cctx -> C.warp -> int -> unit) array;
      (** closure fallbacks, indexed by [CALL] *)
  ci : int array array;  (** int constant pool, 32-wide rows *)
  cf : float array array;
  tmpi : int array array;  (** temp planes, 32-wide rows *)
  tmpf : float array array;
  shnames : string array;  (** shared-array names for error messages *)
  kname : string;
  lanes : int array;  (** FUSE active-lane list scratch (divergent masks) *)
  addrs : int array;  (** memory-op coalescing scratch *)
}

(** The marshal-safe image of one lowered run: the instruction stream
    plus every bound an operand can be checked against.  This is what
    the static bytecode verifier ({!Dpc_check.Bcverify}) consumes —
    [bprog] itself holds closures and live scratch, so it can neither
    be persisted nor inspected without executing. *)
type stream = {
  s_kname : string;
  s_code : int array;
  s_nstmts : int;  (** closure-fallback slots ([CALL] operand space) *)
  s_nic : int;  (** int constant-pool rows *)
  s_nfc : int;  (** float constant-pool rows *)
  s_ntmpi : int;  (** int temp-plane rows *)
  s_ntmpf : int;  (** float temp-plane rows *)
  s_nint : int;  (** warp int-plane rows (buffer handles included) *)
  s_nflt : int;  (** warp float-plane rows *)
  s_nshared : int;  (** shared arrays in scope *)
  s_nnames : int;  (** interned shared-name ids *)
}

(* Lane list for a full mask: the identity, shared by every program. *)
let lane_id = Array.init 32 Fun.id

let[@inline] row_i bp (w : C.warp) r =
  if r >= tmpb then bp.tmpi.(r - tmpb)
  else if r >= 0 then w.C.ints.(r)
  else bp.ci.(-r - 1)

let[@inline] row_f bp (w : C.warp) r =
  if r >= tmpb then bp.tmpf.(r - tmpb)
  else if r >= 0 then w.C.flts.(r)
  else bp.cf.(-r - 1)

(* Truth scan of a register row under [m]; the caller charges.  Rows are
   always 32 wide and lanes < 32, so unchecked indexing is safe. *)
let scan bp w kind row m =
  let mt = ref 0 in
  if kind = 0 then begin
    let a = row_i bp w row in
    let mm = ref m in
    while !mm <> 0 do
      let l = lb !mm in
      if Array.unsafe_get a l <> 0 then mt := !mt lor (1 lsl l);
      mm := !mm land (!mm - 1)
    done
  end
  else begin
    let a = row_f bp w row in
    let mm = ref m in
    while !mm <> 0 do
      let l = lb !mm in
      if Array.unsafe_get a l <> 0.0 then mt := !mt lor (1 lsl l);
      mm := !mm land (!mm - 1)
    done
  end;
  !mt

let fill_i (dst : int array) m v =
  let mm = ref m in
  while !mm <> 0 do
    let l = lb !mm in
    Array.unsafe_set dst l v;
    mm := !mm land (!mm - 1)
  done

(* --- execution ------------------------------------------------------------ *)

(* Execute one FUSE group op-major: dispatch once per quad, then run a
   tight loop over the active-lane list.  Quads run in program order, so
   per-lane dataflow — including temp-row reuse across fused statements
   — is exactly what lane-major order computes; and because a group
   carries raising ops (integer division / modulo) of at most one kind,
   reordering lanes against quads cannot change which abort message
   fires.  The lane list costs one extra indexed load per lane but lets
   every sub-op run as a branch-free counted loop. *)
let exec_fuse bp c (w : C.warp) (code : int array) p m =
  let n = code.(p + 1) in
  let ch = code.(p + 2) in
  if ch > 0 then chg c ch m;
  let lanes, nact =
    if m = (1 lsl w.C.nlanes) - 1 then (lane_id, w.C.nlanes)
    else begin
      let s = bp.lanes in
      let k = ref 0 in
      let mm = ref m in
      while !mm <> 0 do
        Array.unsafe_set s !k (lb !mm);
        incr k;
        mm := !mm land (!mm - 1)
      done;
      (s, !k)
    end
  in
  let base = p + 3 in
  for j = 0 to n - 1 do
    let q = base + (4 * j) in
    match Array.unsafe_get code q with
    | 0 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l + Array.unsafe_get b l)
      done
    | 1 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l - Array.unsafe_get b l)
      done
    | 2 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l * Array.unsafe_get b l)
      done
    | 3 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        let dv = Array.unsafe_get b l in
        if dv = 0 then err "integer division by zero";
        Array.unsafe_set d l (Array.unsafe_get a l / dv)
      done
    | 4 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        let dv = Array.unsafe_get b l in
        if dv = 0 then err "integer modulo by zero";
        Array.unsafe_set d l (Array.unsafe_get a l mod dv)
      done
    | 5 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Int.min (Array.unsafe_get a l) (Array.unsafe_get b l))
      done
    | 6 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Int.max (Array.unsafe_get a l) (Array.unsafe_get b l))
      done
    | 7 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Array.unsafe_get a l lsl Array.unsafe_get b l)
      done
    | 8 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Array.unsafe_get a l asr Array.unsafe_get b l)
      done
    | 9 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Array.unsafe_get a l land Array.unsafe_get b l)
      done
    | 10 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Array.unsafe_get a l lor Array.unsafe_get b l)
      done
    | 11 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Array.unsafe_get a l lxor Array.unsafe_get b l)
      done
    | 12 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l = Array.unsafe_get b l then 1 else 0)
      done
    | 13 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l <> Array.unsafe_get b l then 1 else 0)
      done
    | 14 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l < Array.unsafe_get b l then 1 else 0)
      done
    | 15 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l <= Array.unsafe_get b l then 1 else 0)
      done
    | 16 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l > Array.unsafe_get b l then 1 else 0)
      done
    | 17 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let b = row_i bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l >= Array.unsafe_get b l then 1 else 0)
      done
    | 18 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l +. Array.unsafe_get b l)
      done
    | 19 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l -. Array.unsafe_get b l)
      done
    | 20 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l *. Array.unsafe_get b l)
      done
    | 21 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l /. Array.unsafe_get b l)
      done
    | 22 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Float.min (Array.unsafe_get a l) (Array.unsafe_get b l))
      done
    | 23 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (Float.max (Array.unsafe_get a l) (Array.unsafe_get b l))
      done
    | 24 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l = Array.unsafe_get b l then 1 else 0)
      done
    | 25 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l <> Array.unsafe_get b l then 1 else 0)
      done
    | 26 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l < Array.unsafe_get b l then 1 else 0)
      done
    | 27 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l <= Array.unsafe_get b l then 1 else 0)
      done
    | 28 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l > Array.unsafe_get b l then 1 else 0)
      done
    | 29 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let b = row_f bp w (Array.unsafe_get code (q + 2)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l
          (if Array.unsafe_get a l >= Array.unsafe_get b l then 1 else 0)
      done
    | 30 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (-Array.unsafe_get a l)
      done
    | 31 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (-.Array.unsafe_get a l)
      done
    | 32 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (if Array.unsafe_get a l <> 0 then 0 else 1)
      done
    | 33 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (if Array.unsafe_get a l <> 0.0 then 0 else 1)
      done
    | 34 | 36 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Float.of_int (Array.unsafe_get a l))
      done
    | 35 | 37 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Float.to_int (Array.unsafe_get a l))
      done
    | 38 ->
      let a = row_i bp w (Array.unsafe_get code (q + 1)) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l)
      done
    | 39 ->
      let a = row_f bp w (Array.unsafe_get code (q + 1)) in
      let d = row_f bp w (Array.unsafe_get code (q + 3)) in
      for t = 0 to nact - 1 do
        let l = Array.unsafe_get lanes t in
        Array.unsafe_set d l (Array.unsafe_get a l)
      done
    | 40 -> ()
    | _ ->
      (* 41 SPECIAL *)
      let arg = Array.unsafe_get code (q + 1) in
      let d = row_i bp w (Array.unsafe_get code (q + 3)) in
      if arg = 0 then
        for t = 0 to nact - 1 do
          let l = Array.unsafe_get lanes t in
          Array.unsafe_set d l (w.C.base_lane + l)
        done
      else if arg = 4 then
        for t = 0 to nact - 1 do
          let l = Array.unsafe_get lanes t in
          Array.unsafe_set d l l
        done
      else begin
        let v =
          match arg with
          | 1 -> c.C.block_idx
          | 2 -> c.C.block_dim
          | 3 -> c.C.grid_dim
          | 5 -> w.C.widx
          | _ -> c.C.cfg.Cfg.warp_size
        in
        for t = 0 to nact - 1 do
          Array.unsafe_set d (Array.unsafe_get lanes t) v
        done
      end
  done

(* The dispatch loop: one region [pc0, stop) of one warp under region
   mask [rmask].  Control flow recurses with freshly scanned sub-masks,
   exactly like the closure tier. *)
let rec exec bp c (w : C.warp) pc0 stop rmask =
  let code = bp.code in
  let cur = ref rmask in
  let p = ref pc0 in
  while !p < stop do
    match Array.unsafe_get code !p with
    | 0 ->
      (* FILTER *)
      cur := rmask land lnot w.C.returned;
      if !cur = 0 then p := stop else incr p
    | 1 ->
      (* RET *)
      w.C.returned <- w.C.returned lor !cur;
      incr p
    | 2 ->
      (* CALL: closure fallback; it re-filters its own mask *)
      bp.stmts.(code.(!p + 1)) c w !cur;
      p := !p + 2
    | 3 ->
      (* IF *)
      let q = !p in
      let m = !cur in
      chg c 1 m;
      let mt = scan bp w code.(q + 1) code.(q + 2) m in
      let mf = m land lnot mt in
      let elsep = code.(q + 3) in
      let endp = code.(q + 4) in
      if mt <> 0 then exec bp c w (q + 5) elsep mt;
      if mf <> 0 then exec bp c w elsep endp mf;
      p := endp
    | 4 ->
      (* WHILE *)
      let q = !p in
      let testp = code.(q + 1) in
      let endp = code.(q + 2) in
      let cm = ref !cur in
      let running = ref true in
      while !running do
        let m0 = !cm land lnot w.C.returned in
        if m0 = 0 then running := false
        else begin
          exec bp c w (q + 3) testp m0;
          chg c 1 m0;
          let mt = scan bp w code.(testp) code.(testp + 1) m0 in
          if mt = 0 then running := false
          else begin
            exec bp c w (testp + 2) endp mt;
            cm := mt
          end
        end
      done;
      p := endp
    | 5 ->
      (* FOR *)
      let q = !p in
      let var = w.C.ints.(code.(q + 1)) in
      let lo = row_i bp w code.(q + 2) in
      let testp = code.(q + 4) in
      let endp = code.(q + 5) in
      let m = !cur in
      chg c 1 m;
      let mm = ref m in
      while !mm <> 0 do
        let l = lb !mm in
        Array.unsafe_set var l (Array.unsafe_get lo l);
        mm := !mm land (!mm - 1)
      done;
      let cm = ref m in
      let running = ref true in
      while !running do
        let m0 = !cm land lnot w.C.returned in
        if m0 = 0 then running := false
        else begin
          exec bp c w (q + 6) testp m0;
          chg c 1 m0;
          let hi = row_i bp w code.(q + 3) in
          let mt = ref 0 in
          let mm = ref m0 in
          while !mm <> 0 do
            let l = lb !mm in
            if Array.unsafe_get var l < Array.unsafe_get hi l then
              mt := !mt lor (1 lsl l);
            mm := !mm land (!mm - 1)
          done;
          if !mt = 0 then running := false
          else begin
            let m_true = !mt in
            exec bp c w testp endp m_true;
            chg c 1 m_true;
            let mm = ref m_true in
            while !mm <> 0 do
              let l = lb !mm in
              Array.unsafe_set var l (Array.unsafe_get var l + 1);
              mm := !mm land (!mm - 1)
            done;
            cm := m_true
          end
        end
      done;
      p := endp
    | 6 ->
      (* ANDOR: a's code already ran; charge is the a-side truth's *)
      let q = !p in
      let m = !cur in
      chg c 1 m;
      let is_and = code.(q + 1) = 1 in
      let di = row_i bp w code.(q + 2) in
      let mt_a = scan bp w code.(q + 3) code.(q + 4) m in
      let bend = code.(q + 7) in
      fill_i di m (if is_and then 0 else 1);
      let sub = if is_and then mt_a else m land lnot mt_a in
      if sub <> 0 then begin
        exec bp c w (q + 8) bend sub;
        let mt_b = scan bp w code.(q + 5) code.(q + 6) sub in
        let flip = if is_and then mt_b else sub land lnot mt_b in
        fill_i di flip (if is_and then 1 else 0)
      end;
      p := bend
    | 7 ->
      (* FUSE *)
      exec_fuse bp c w code !p !cur;
      p := !p + 3 + (4 * code.(!p + 1))
    | 8 ->
      (* LOADI *)
      let q = !p in
      let ids = row_i bp w code.(q + 1) in
      let ii = row_i bp w code.(q + 2) in
      let di = row_i bp w code.(q + 3) in
      let m = !cur in
      chg c c.C.cfg.Cfg.mem_issue_cycles m;
      let addrs = bp.addrs in
      let k = ref 0 in
      let mm = ref m in
      (* Cache the handle across lanes (loads are usually same-buffer)
         and read the payload array directly; the bounds-failure path
         re-reads through [Mem] so the raise is identical. *)
      let b = ref (Mem.get_buf c.C.mem (Array.unsafe_get ids (lb m))) in
      while !mm <> 0 do
        let l = lb !mm in
        let id = Array.unsafe_get ids l in
        let bf =
          let bf = !b in
          if id = bf.Mem.id then bf
          else begin
            let nb = Mem.get_buf c.C.mem id in
            b := nb;
            nb
          end
        in
        let idx = Array.unsafe_get ii l in
        (match bf.Mem.data with
        | Mem.I a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set di l (Array.unsafe_get a idx)
          else Array.unsafe_set di l (Mem.read_int bf idx)
        | Mem.F a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set di l (Float.to_int (Array.unsafe_get a idx))
          else Array.unsafe_set di l (Mem.read_int bf idx));
        Array.unsafe_set addrs !k (bf.Mem.base + (idx * Mem.elem_bytes));
        incr k;
        mm := !mm land (!mm - 1)
      done;
      C.account c w addrs !k;
      p := q + 4
    | 9 ->
      (* LOADF *)
      let q = !p in
      let ids = row_i bp w code.(q + 1) in
      let ii = row_i bp w code.(q + 2) in
      let df = row_f bp w code.(q + 3) in
      let m = !cur in
      chg c c.C.cfg.Cfg.mem_issue_cycles m;
      let addrs = bp.addrs in
      let k = ref 0 in
      let mm = ref m in
      let b = ref (Mem.get_buf c.C.mem (Array.unsafe_get ids (lb m))) in
      while !mm <> 0 do
        let l = lb !mm in
        let id = Array.unsafe_get ids l in
        let bf =
          let bf = !b in
          if id = bf.Mem.id then bf
          else begin
            let nb = Mem.get_buf c.C.mem id in
            b := nb;
            nb
          end
        in
        let idx = Array.unsafe_get ii l in
        (match bf.Mem.data with
        | Mem.F a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set df l (Array.unsafe_get a idx)
          else Array.unsafe_set df l (Mem.read_float bf idx)
        | Mem.I a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set df l (Float.of_int (Array.unsafe_get a idx))
          else Array.unsafe_set df l (Mem.read_float bf idx));
        Array.unsafe_set addrs !k (bf.Mem.base + (idx * Mem.elem_bytes));
        incr k;
        mm := !mm land (!mm - 1)
      done;
      C.account c w addrs !k;
      p := q + 4
    | 10 ->
      (* STOREI *)
      let q = !p in
      let ids = row_i bp w code.(q + 1) in
      let ii = row_i bp w code.(q + 2) in
      let xi = row_i bp w code.(q + 3) in
      let m = !cur in
      chg c c.C.cfg.Cfg.mem_issue_cycles m;
      let addrs = bp.addrs in
      let k = ref 0 in
      let mm = ref m in
      let b = ref (Mem.get_buf c.C.mem (Array.unsafe_get ids (lb m))) in
      while !mm <> 0 do
        let l = lb !mm in
        let id = Array.unsafe_get ids l in
        let bf =
          let bf = !b in
          if id = bf.Mem.id then bf
          else begin
            let nb = Mem.get_buf c.C.mem id in
            b := nb;
            nb
          end
        in
        let idx = Array.unsafe_get ii l in
        let x = Array.unsafe_get xi l in
        (match bf.Mem.data with
        | Mem.I a ->
          if idx >= 0 && idx < Array.length a then Array.unsafe_set a idx x
          else Mem.write_int bf idx x
        | Mem.F a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set a idx (Float.of_int x)
          else Mem.write_int bf idx x);
        Array.unsafe_set addrs !k (bf.Mem.base + (idx * Mem.elem_bytes));
        incr k;
        mm := !mm land (!mm - 1)
      done;
      C.account c w addrs !k;
      p := q + 4
    | 11 ->
      (* STOREF *)
      let q = !p in
      let ids = row_i bp w code.(q + 1) in
      let ii = row_i bp w code.(q + 2) in
      let xf = row_f bp w code.(q + 3) in
      let m = !cur in
      chg c c.C.cfg.Cfg.mem_issue_cycles m;
      let addrs = bp.addrs in
      let k = ref 0 in
      let mm = ref m in
      let b = ref (Mem.get_buf c.C.mem (Array.unsafe_get ids (lb m))) in
      while !mm <> 0 do
        let l = lb !mm in
        let id = Array.unsafe_get ids l in
        let bf =
          let bf = !b in
          if id = bf.Mem.id then bf
          else begin
            let nb = Mem.get_buf c.C.mem id in
            b := nb;
            nb
          end
        in
        let idx = Array.unsafe_get ii l in
        let x = Array.unsafe_get xf l in
        (match bf.Mem.data with
        | Mem.F a ->
          if idx >= 0 && idx < Array.length a then Array.unsafe_set a idx x
          else Mem.write_float bf idx x
        | Mem.I a ->
          if idx >= 0 && idx < Array.length a then
            Array.unsafe_set a idx (Float.to_int x)
          else Mem.write_float bf idx x);
        Array.unsafe_set addrs !k (bf.Mem.base + (idx * Mem.elem_bytes));
        incr k;
        mm := !mm land (!mm - 1)
      done;
      C.account c w addrs !k;
      p := q + 4
    | 12 ->
      (* BUFLEN *)
      let q = !p in
      let ids = row_i bp w code.(q + 1) in
      let di = row_i bp w code.(q + 2) in
      let m = !cur in
      chg c 1 m;
      let mm = ref m in
      while !mm <> 0 do
        let l = lb !mm in
        di.(l) <- Mem.buf_length (Mem.get_buf c.C.mem ids.(l));
        mm := !mm land (!mm - 1)
      done;
      p := q + 3
    | 13 ->
      (* SHLOAD *)
      let q = !p in
      let ii = row_i bp w code.(q + 1) in
      let di = row_i bp w code.(q + 2) in
      let arr = c.C.shared.(code.(q + 3)) in
      let name = bp.shnames.(code.(q + 4)) in
      let m = !cur in
      chg c 1 m;
      let idxs = bp.addrs in
      let k = ref 0 in
      let mm = ref m in
      while !mm <> 0 do
        let l = lb !mm in
        let i = ii.(l) in
        if i < 0 || i >= Array.length arr then
          err "kernel %s: shared array %s[%d] out of bounds (size %d)"
            bp.kname name i (Array.length arr);
        Array.unsafe_set idxs !k i;
        incr k;
        di.(l) <- V.as_int arr.(i);
        mm := !mm land (!mm - 1)
      done;
      C.account_shared c idxs !k;
      p := q + 5
    | 14 ->
      (* SHSTORE *)
      let q = !p in
      let kind = code.(q + 1) in
      let ii = row_i bp w code.(q + 2) in
      let arr = c.C.shared.(code.(q + 4)) in
      let name = bp.shnames.(code.(q + 5)) in
      let m = !cur in
      chg c 1 m;
      let oob i =
        err "kernel %s: shared array %s[%d] out of bounds (size %d)"
          bp.kname name i (Array.length arr)
      in
      let idxs = bp.addrs in
      let k = ref 0 in
      (if kind = 1 then begin
         let xf = row_f bp w code.(q + 3) in
         let mm = ref m in
         while !mm <> 0 do
           let l = lb !mm in
           let i = ii.(l) in
           if i < 0 || i >= Array.length arr then oob i;
           Array.unsafe_set idxs !k i;
           incr k;
           arr.(i) <- V.Vfloat xf.(l);
           mm := !mm land (!mm - 1)
         done
       end
       else begin
         let xi = row_i bp w code.(q + 3) in
         let box = if kind = 0 then fun x -> V.Vint x else fun x -> V.Vbuf x in
         let mm = ref m in
         while !mm <> 0 do
           let l = lb !mm in
           let i = ii.(l) in
           if i < 0 || i >= Array.length arr then oob i;
           Array.unsafe_set idxs !k i;
           incr k;
           arr.(i) <- box xi.(l);
           mm := !mm land (!mm - 1)
         done
       end);
      C.account_shared c idxs !k;
      p := q + 6
    | _ -> assert false
  done

(* --- lowering ------------------------------------------------------------- *)

type buf = { mutable a : int array; mutable len : int }

let bmake () = { a = Array.make 256 0; len = 0 }

let bpush b x =
  if b.len = Array.length b.a then begin
    let na = Array.make (2 * b.len) 0 in
    Array.blit b.a 0 na 0 b.len;
    b.a <- na
  end;
  b.a.(b.len) <- x;
  b.len <- b.len + 1

(* A lowered operand: the kind mirrors {!Compile}'s cexpr typing exactly
   ([Ri]/[Rf]/[Ru] for Xi/Xf/Xu); anything that would be boxed (or that
   the bytecode has no native form for) raises [Fallback] and the whole
   statement takes the closure path. *)
type reg = Ri of int | Rf of int | Ru of Ty.elem * int

exception Fallback

type lstate = {
  env : C.env;
  code : buf;
  mutable stmts : (C.cctx -> C.warp -> int -> unit) list;  (* rev *)
  mutable nstmts : int;
  icst : (int, int) Hashtbl.t;
  mutable icsts : int list;  (* rev *)
  mutable nic : int;
  fcst : (int64, int) Hashtbl.t;
  mutable fcsts : float list;  (* rev *)
  mutable nfc : int;
  names : (string, int) Hashtbl.t;
  mutable snames : string list;  (* rev *)
  mutable nnames : int;
  mutable ti : int;  (* next int temp (reset per statement) *)
  mutable tf : int;
  mutable max_ti : int;
  mutable max_tf : int;
  pend : buf;  (* open FUSE group, quads *)
  mutable pend_n : int;
  mutable pend_ch : int;
  mutable pend_raise : int;  (* 0 none / 1 div / 2 mod *)
  mutable dirty : bool;  (* could [returned] have changed since the
                            last FILTER? *)
  fuse : bool;
}

let flush l =
  if l.pend_n > 0 then begin
    bpush l.code 7;
    bpush l.code l.pend_n;
    bpush l.code l.pend_ch;
    for i = 0 to l.pend.len - 1 do
      bpush l.code l.pend.a.(i)
    done;
    l.pend.len <- 0;
    l.pend_n <- 0;
    l.pend_ch <- 0;
    l.pend_raise <- 0
  end

(* Append one quad to the open group.  [rk] is the raise kind (a group
   may hold raising ops of at most one kind so the abort message cannot
   be reordered); [ch] is its 1-cycle charge (free conversions pass 0). *)
let push_q l op a b d ~rk ~ch =
  if not l.fuse then flush l;
  if rk <> 0 && l.pend_raise <> 0 && l.pend_raise <> rk then flush l;
  bpush l.pend op;
  bpush l.pend a;
  bpush l.pend b;
  bpush l.pend d;
  l.pend_n <- l.pend_n + 1;
  l.pend_ch <- l.pend_ch + ch;
  if rk <> 0 then l.pend_raise <- rk;
  if not l.fuse then flush l

let push_op l op a b d = push_q l op a b d ~rk:0 ~ch:1

let ntmpi l =
  let t = l.ti in
  l.ti <- t + 1;
  if l.ti > l.max_ti then l.max_ti <- l.ti;
  tmpb + t

let ntmpf l =
  let t = l.tf in
  l.tf <- t + 1;
  if l.tf > l.max_tf then l.max_tf <- l.tf;
  tmpb + t

let cint l v =
  match Hashtbl.find_opt l.icst v with
  | Some i -> -(i + 1)
  | None ->
    let i = l.nic in
    Hashtbl.add l.icst v i;
    l.icsts <- v :: l.icsts;
    l.nic <- i + 1;
    -(i + 1)

let cflt l v =
  let key = Int64.bits_of_float v in
  match Hashtbl.find_opt l.fcst key with
  | Some i -> -(i + 1)
  | None ->
    let i = l.nfc in
    Hashtbl.add l.fcst key i;
    l.fcsts <- v :: l.fcsts;
    l.nfc <- i + 1;
    -(i + 1)

let name_id l n =
  match Hashtbl.find_opt l.names n with
  | Some i -> i
  | None ->
    let i = l.nnames in
    Hashtbl.add l.names n i;
    l.snames <- n :: l.snames;
    l.nnames <- i + 1;
    i

(* Charge-free coercions, mirroring {!Compile}'s int_of_safe /
   float_of_safe (reordering them after the other operand is
   unobservable: no charge, no raise). *)
let int_free l = function
  | Ri r -> r
  | Rf r ->
    let d = ntmpi l in
    push_q l 37 r 0 d ~rk:0 ~ch:0;
    d
  | Ru _ -> raise Fallback

let flt_free l = function
  | Rf r -> r
  | Ri r ->
    let d = ntmpf l in
    push_q l 36 r 0 d ~rk:0 ~ch:0;
    d
  | Ru _ -> raise Fallback

let is_rf = function Rf _ -> true | _ -> false

let rec lx l (e : A.expr) : reg =
  match e with
  | A.Const (V.Vint i) -> Ri (cint l i)
  | A.Const (V.Vfloat f) -> Rf (cflt l f)
  | A.Const (V.Vbuf id) -> Ru (Ty.Eany, cint l id)
  | A.Var v ->
    if v.A.slot < 0 then raise Fallback;
    (match (l.env.C.storage.(v.A.slot), l.env.C.slots.(v.A.slot)) with
    | C.Si r, Ty.St_buf el -> Ru (el, r)
    | C.Si r, _ -> Ri r
    | C.Sf r, _ -> Rf r
    | C.Sb _, _ -> raise Fallback)
  | A.Special sp ->
    let k =
      match sp with
      | A.Thread_idx -> 0
      | A.Block_idx -> 1
      | A.Block_dim -> 2
      | A.Grid_dim -> 3
      | A.Lane_id -> 4
      | A.Warp_id -> 5
      | A.Warp_size -> 6
    in
    let d = ntmpi l in
    push_op l 41 k 0 d;
    Ri d
  | A.Unop (op, a) -> lx_unop l op a
  | A.Binop (A.And, a, b) -> lx_andor l ~is_and:true a b
  | A.Binop (A.Or, a, b) -> lx_andor l ~is_and:false a b
  | A.Binop (op, a, b) -> lx_binop l op a b
  | A.Load (be, ie) -> lx_load l be ie
  | A.Shared_load (name, ie) -> lx_shload l name ie
  | A.Buf_len be -> (
    match lx l be with
    | Ru (_, br) ->
      flush l;
      let d = ntmpi l in
      bpush l.code 12;
      bpush l.code br;
      bpush l.code d;
      Ri d
    | _ -> raise Fallback)

and lx_unop l op a =
  match op with
  | A.Neg -> (
    match lx l a with
    | Ri r ->
      let d = ntmpi l in
      push_op l 30 r 0 d;
      Ri d
    | Rf r ->
      let d = ntmpf l in
      push_op l 31 r 0 d;
      Rf d
    | Ru _ -> raise Fallback)
  | A.Not -> (
    match lx l a with
    | Ri r ->
      let d = ntmpi l in
      push_op l 32 r 0 d;
      Ri d
    | Rf r ->
      let d = ntmpi l in
      push_op l 33 r 0 d;
      Ri d
    | Ru _ -> raise Fallback)
  | A.To_float -> (
    match lx l a with
    | Rf r ->
      (* the walker charges the node and passes the value through *)
      push_op l 40 0 0 0;
      Rf r
    | Ri r ->
      let d = ntmpf l in
      push_op l 34 r 0 d;
      Rf d
    | Ru _ -> raise Fallback)
  | A.To_int -> (
    match lx l a with
    | Ri r ->
      push_op l 40 0 0 0;
      Ri r
    | Rf r ->
      let d = ntmpi l in
      push_op l 35 r 0 d;
      Ri d
    | Ru _ -> raise Fallback)

and lx_andor l ~is_and a b =
  let ra = lx l a in
  let ak, ar =
    match ra with Ri r -> (0, r) | Rf r -> (1, r) | Ru _ -> raise Fallback
  in
  flush l;
  let d = ntmpi l in
  bpush l.code 6;
  bpush l.code (if is_and then 1 else 0);
  bpush l.code d;
  bpush l.code ak;
  bpush l.code ar;
  let patch = l.code.len in
  bpush l.code 0;
  bpush l.code 0;
  bpush l.code 0;
  let rb = lx l b in
  let bk, br =
    match rb with Ri r -> (0, r) | Rf r -> (1, r) | Ru _ -> raise Fallback
  in
  flush l;
  l.code.a.(patch) <- bk;
  l.code.a.(patch + 1) <- br;
  l.code.a.(patch + 2) <- l.code.len;
  Ri d

and lx_binop l op a b =
  let ra = lx l a in
  let rb = lx l b in
  (* [iop]/[fop]/[cop] are fused sub-opcodes (int form, float-arith
     form, float-cmp form). *)
  let arith iop fop =
    match (ra, rb) with
    | Ri x, Ri y ->
      let d = ntmpi l in
      push_op l iop x y d;
      Ri d
    | (Ri _ | Rf _), (Ri _ | Rf _) ->
      let x = flt_free l ra in
      let y = flt_free l rb in
      let d = ntmpf l in
      push_op l fop x y d;
      Rf d
    | _ -> raise Fallback
  in
  let cmp iop cop =
    match (ra, rb) with
    | Ri x, Ri y ->
      let d = ntmpi l in
      push_op l iop x y d;
      Ri d
    | (Ri _ | Rf _), (Ri _ | Rf _) ->
      let x = flt_free l ra in
      let y = flt_free l rb in
      let d = ntmpi l in
      push_op l cop x y d;
      Ri d
    | _ -> raise Fallback
  in
  let int_ctx iop =
    match (ra, rb) with
    | Ri x, Ri y ->
      let d = ntmpi l in
      push_op l iop x y d;
      Ri d
    | _ -> raise Fallback
  in
  match op with
  | A.And | A.Or -> assert false (* routed to lx_andor *)
  | A.Add -> arith 0 18
  | A.Sub -> arith 1 19
  | A.Mul -> arith 2 20
  | A.Div -> (
    if is_rf ra || is_rf rb then arith 0 21 (* float path only *)
    else
      match (ra, rb) with
      | Ri x, Ri y ->
        let d = ntmpi l in
        push_q l 3 x y d ~rk:1 ~ch:1;
        Ri d
      | _ -> raise Fallback)
  | A.Mod -> (
    match (ra, rb) with
    | Ri x, Ri y ->
      let d = ntmpi l in
      push_q l 4 x y d ~rk:2 ~ch:1;
      Ri d
    | _ -> raise Fallback)
  | A.Min -> arith 5 22
  | A.Max -> arith 6 23
  | A.Eq -> (
    match (ra, rb) with
    | Ru (_, x), Ru (_, y) ->
      (* buffer identity: compare handles *)
      let d = ntmpi l in
      push_op l 12 x y d;
      Ri d
    | _ -> cmp 12 24)
  | A.Ne -> (
    match (ra, rb) with
    | Ru (_, x), Ru (_, y) ->
      let d = ntmpi l in
      push_op l 13 x y d;
      Ri d
    | _ -> cmp 13 25)
  | A.Lt -> cmp 14 26
  | A.Le -> cmp 15 27
  | A.Gt -> cmp 16 28
  | A.Ge -> cmp 17 29
  | A.Shl -> int_ctx 7
  | A.Shr -> int_ctx 8
  | A.Bit_and -> int_ctx 9
  | A.Bit_or -> int_ctx 10
  | A.Bit_xor -> int_ctx 11

and lx_load l be ie =
  let rb = lx l be in
  let ri = lx l ie in
  match rb with
  | Ru (Ty.Eint, br) ->
    let ir = int_free l ri in
    flush l;
    let d = ntmpi l in
    bpush l.code 8;
    bpush l.code br;
    bpush l.code ir;
    bpush l.code d;
    Ri d
  | Ru (Ty.Efloat, br) ->
    let ir = int_free l ri in
    flush l;
    let d = ntmpf l in
    bpush l.code 9;
    bpush l.code br;
    bpush l.code ir;
    bpush l.code d;
    Rf d
  | _ -> raise Fallback

and lx_shload l name ie =
  match Hashtbl.find_opt l.env.C.shindex name with
  | None -> raise Fallback
  | Some idx -> (
    match l.env.C.shtys.(idx) with
    | Ty.Sh_bot | Ty.Sh_int ->
      let ir = int_free l (lx l ie) in
      flush l;
      let d = ntmpi l in
      bpush l.code 13;
      bpush l.code ir;
      bpush l.code d;
      bpush l.code idx;
      bpush l.code (name_id l name);
      Ri d
    | Ty.Sh_boxed -> raise Fallback)

(* --- statement lowering --------------------------------------------------- *)

let begin_stmt l =
  if l.dirty then begin
    flush l;
    bpush l.code 0;
    l.dirty <- false
  end;
  l.ti <- 0;
  l.tf <- 0

(* Closure fallback for one statement.  {!Compile.compile_stmt} may
   raise Not_compilable here; it propagates out of the whole lowering
   and the kernel takes the reference walker, exactly as the closure
   tier would have decided. *)
let emit_call l s =
  flush l;
  let f = C.compile_stmt l.env s in
  l.stmts <- f :: l.stmts;
  bpush l.code 2;
  bpush l.code l.nstmts;
  l.nstmts <- l.nstmts + 1;
  l.dirty <- true

let rec ls l (s : A.stmt) =
  let snap =
    ( l.code.len,
      l.nstmts,
      l.pend.len,
      l.pend_n,
      l.pend_ch,
      l.pend_raise,
      l.ti,
      l.tf,
      l.dirty )
  in
  try
    begin_stmt l;
    ls_native l s
  with Fallback ->
    let cl, ns, pl, pn, pch, pr, ti, tf, d = snap in
    l.code.len <- cl;
    while l.nstmts > ns do
      l.stmts <- List.tl l.stmts;
      l.nstmts <- l.nstmts - 1
    done;
    l.pend.len <- pl;
    l.pend_n <- pn;
    l.pend_ch <- pch;
    l.pend_raise <- pr;
    l.ti <- ti;
    l.tf <- tf;
    l.dirty <- d;
    emit_call l s

and ls_native l (s : A.stmt) =
  match s with
  | A.Let (v, e) -> (
    if v.A.slot < 0 then raise Fallback;
    match l.env.C.storage.(v.A.slot) with
    | C.Si r -> (
      match lx l e with
      | Ri x | Ru (_, x) -> push_op l 38 x 0 r
      | Rf _ -> raise Fallback)
    | C.Sf r -> (
      match lx l e with
      | Rf x -> push_op l 39 x 0 r
      | _ -> raise Fallback)
    | C.Sb _ -> raise Fallback)
  | A.Store (be, ie, xe) -> (
    let rb = lx l be in
    let ri = lx l ie in
    let rx = lx l xe in
    match rb with
    | Ru (Ty.Eint, br) ->
      let ir = int_free l ri in
      let xr = int_free l rx in
      flush l;
      bpush l.code 10;
      bpush l.code br;
      bpush l.code ir;
      bpush l.code xr
    | Ru (Ty.Efloat, br) ->
      let ir = int_free l ri in
      let xr = flt_free l rx in
      flush l;
      bpush l.code 11;
      bpush l.code br;
      bpush l.code ir;
      bpush l.code xr
    | _ -> raise Fallback)
  | A.Shared_store (name, ie, xe) -> (
    match Hashtbl.find_opt l.env.C.shindex name with
    | None -> raise Fallback
    | Some idx ->
      let ir = int_free l (lx l ie) in
      let kind, xr =
        match lx l xe with
        | Ri r -> (0, r)
        | Rf r -> (1, r)
        | Ru (_, r) -> (2, r)
      in
      flush l;
      bpush l.code 14;
      bpush l.code kind;
      bpush l.code ir;
      bpush l.code xr;
      bpush l.code idx;
      bpush l.code (name_id l name))
  | A.If (cond, t, f) ->
    let k, r =
      match lx l cond with
      | Ri r -> (0, r)
      | Rf r -> (1, r)
      | Ru _ -> raise Fallback
    in
    flush l;
    bpush l.code 3;
    bpush l.code k;
    bpush l.code r;
    let patch = l.code.len in
    bpush l.code 0;
    bpush l.code 0;
    l.dirty <- false;
    List.iter (ls l) t;
    flush l;
    l.code.a.(patch) <- l.code.len;
    l.dirty <- false;
    List.iter (ls l) f;
    flush l;
    l.code.a.(patch + 1) <- l.code.len;
    l.dirty <- true
  | A.While (cond, body) ->
    (* the condition re-executes every iteration: nothing before it may
       join its group, and its code is its own region *)
    flush l;
    bpush l.code 4;
    let patch = l.code.len in
    bpush l.code 0;
    bpush l.code 0;
    let k, r =
      match lx l cond with
      | Ri r -> (0, r)
      | Rf r -> (1, r)
      | Ru _ -> raise Fallback
    in
    flush l;
    l.code.a.(patch) <- l.code.len;
    bpush l.code k;
    bpush l.code r;
    l.dirty <- false;
    List.iter (ls l) body;
    flush l;
    l.code.a.(patch + 1) <- l.code.len;
    l.dirty <- true
  | A.For (v, lo, hi, body) -> (
    if v.A.slot < 0 then raise Fallback;
    match l.env.C.storage.(v.A.slot) with
    | C.Si var -> (
      match lx l lo with
      | Ri lor_ ->
        flush l;
        bpush l.code 5;
        bpush l.code var;
        bpush l.code lor_;
        let patch = l.code.len in
        bpush l.code 0;
        bpush l.code 0;
        bpush l.code 0;
        let hir = int_free l (lx l hi) in
        flush l;
        l.code.a.(patch) <- hir;
        l.code.a.(patch + 1) <- l.code.len;
        l.dirty <- false;
        List.iter (ls l) body;
        flush l;
        l.code.a.(patch + 2) <- l.code.len;
        l.dirty <- true
      | _ -> raise Fallback)
    | _ -> raise Fallback)
  | A.Return ->
    flush l;
    bpush l.code 1;
    l.dirty <- true
  | A.Atomic _ | A.Launch _ | A.Device_sync | A.Malloc _ | A.Free _
  | A.Syncthreads | A.Grid_barrier ->
    raise Fallback

(* --- entry points --------------------------------------------------------- *)

(* Warp register-plane row counts, recovered from the slot storage map
   (the planes themselves are sized the same way in [Compile]). *)
let plane_rows (env : C.env) =
  let ni = ref 0 and nf = ref 0 in
  Array.iter
    (function
      | C.Si r -> if r + 1 > !ni then ni := r + 1
      | C.Sf r -> if r + 1 > !nf then nf := r + 1
      | C.Sb _ -> ())
    env.C.storage;
  (!ni, !nf)

let lower (env : C.env) (stmts : A.stmt list) : bprog * stream =
  let l =
    {
      env;
      code = bmake ();
      stmts = [];
      nstmts = 0;
      icst = Hashtbl.create 16;
      icsts = [];
      nic = 0;
      fcst = Hashtbl.create 16;
      fcsts = [];
      nfc = 0;
      names = Hashtbl.create 4;
      snames = [];
      nnames = 0;
      ti = 0;
      tf = 0;
      max_ti = 0;
      max_tf = 0;
      pend = bmake ();
      pend_n = 0;
      pend_ch = 0;
      pend_raise = 0;
      dirty = true;  (* run entry: earlier segments may have returned *)
      fuse = !fusion;
    }
  in
  List.iter (ls l) stmts;
  flush l;
  let bp =
    {
      code = Array.sub l.code.a 0 l.code.len;
      stmts = Array.of_list (List.rev l.stmts);
      ci =
        Array.of_list (List.rev_map (fun v -> Array.make 32 v) l.icsts);
      cf =
        Array.of_list (List.rev_map (fun v -> Array.make 32 v) l.fcsts);
      tmpi = Array.init l.max_ti (fun _ -> Array.make 32 0);
      tmpf = Array.init l.max_tf (fun _ -> Array.make 32 0.0);
      shnames = Array.of_list (List.rev l.snames);
      kname = env.C.kname;
      lanes = Array.make 32 0;
      addrs = Array.make 32 0;
    }
  in
  let ni, nf = plane_rows env in
  let sm =
    {
      s_kname = env.C.kname;
      s_code = bp.code;
      s_nstmts = l.nstmts;
      s_nic = l.nic;
      s_nfc = l.nfc;
      s_ntmpi = l.max_ti;
      s_ntmpf = l.max_tf;
      s_nint = ni;
      s_nflt = nf;
      s_nshared = Array.length env.C.shtys;
      s_nnames = l.nnames;
    }
  in
  (bp, sm)

let lower_run (env : C.env) (stmts : A.stmt list) :
    C.cctx -> C.warp -> unit =
  let bp, _ = lower env stmts in
  let len = Array.length bp.code in
  fun c w -> exec bp c w 0 len (C.full_mask w)

let compile_kernel (k : Dpc_kir.Kernel.t) : C.ckernel option =
  C.compile_kernel ~run_lower:lower_run k

let streams_of_kernel (k : Dpc_kir.Kernel.t) : stream list option =
  let acc = ref [] in
  let capture env stmts =
    let bp, sm = lower env stmts in
    acc := sm :: !acc;
    let len = Array.length bp.code in
    fun c w -> exec bp c w 0 len (C.full_mask w)
  in
  match C.compile_kernel ~run_lower:capture k with
  | None -> None
  | Some _ -> Some (List.rev !acc)
