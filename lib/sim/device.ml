(** User-facing simulated device.

    Typical use:
    {[
      let dev = Device.create ~alloc_kind:Pool program in
      let dist = Device.alloc_int dev ~name:"dist" n in
      Device.launch dev "sssp" ~grid:40 ~block:256 [ Vbuf dist.id; ... ];
      let report = Device.report dev in
    ]}

    Host launches are synchronous (the drivers synchronize between
    iterations); the timing model replays them back to back with the host
    launch latency in between. *)

module Cfg = Dpc_gpu.Config
module Mem = Dpc_gpu.Memory
module V = Dpc_kir.Value
module Alloc = Dpc_alloc.Allocator

type t = {
  session : Interp.session;
  scheduler : Timing.scheduler;
  mutable cached_report : Metrics.report option;
}

let create ?(cfg = Cfg.k20c) ?(alloc_kind = Alloc.Pool) ?pool_bytes
    ?(scheduler = Timing.Processor_sharing) ?grid_budget ?mode ?ckernels
    prog =
  let alloc = Alloc.create ?pool_bytes alloc_kind in
  {
    session = Interp.create_session ?grid_budget ?mode ?ckernels ~cfg ~alloc prog;
    scheduler;
    cached_report = None;
  }

let config t = t.session.Interp.cfg

let session t = t.session

let memory t = t.session.Interp.mem

let allocator t = t.session.Interp.alloc

(* --- host-side memory management ---------------------------------------- *)

let alloc_int t ~name n = Mem.alloc_int t.session.Interp.mem ~name n

let alloc_float t ~name n = Mem.alloc_float t.session.Interp.mem ~name n

let of_int_array t ~name a = Mem.of_int_array t.session.Interp.mem ~name a

let of_float_array t ~name a = Mem.of_float_array t.session.Interp.mem ~name a

let buf t id = Mem.get_buf t.session.Interp.mem id

(* --- kernel launch -------------------------------------------------------- *)

(** Synchronous host-side kernel launch. *)
let launch t kernel ~grid ~block args =
  t.cached_report <- None;
  ignore (Interp.host_launch t.session ~kernel ~grid ~block args)

(** Reset the pre-allocated pool's bump pointer between logical phases
    (no-op for the default and halloc allocators). *)
let reset_pool t = Alloc.reset_pool t.session.Interp.alloc

(* --- metrics -------------------------------------------------------------- *)

let compute_report t =
  let s = t.session in
  let grids = Interp.grids s in
  let roots = Interp.roots s in
  let totals = Trace.totals_of_grids grids in
  let timing =
    Timing.simulate ~scheduler:t.scheduler s.Interp.cfg grids roots
  in
  let alloc = s.Interp.alloc in
  {
    Metrics.cycles = timing.Timing.total_cycles;
    time_ms =
      Cfg.cycles_to_ms s.Interp.cfg
        (Float.to_int timing.Timing.total_cycles);
    host_launches = List.length roots;
    device_launches = totals.Trace.device_launches;
    warp_efficiency = Trace.warp_efficiency totals;
    occupancy = timing.Timing.occupancy;
    dram_transactions = totals.Trace.total_dram + timing.Timing.extra_dram;
    l2_hits = totals.Trace.total_l2_hits;
    bank_conflict_replays = totals.Trace.total_bank_replays;
    mshr_stalls = totals.Trace.total_mshr_stalls;
    alloc_calls = Alloc.allocs alloc;
    alloc_cycles = s.Interp.alloc_cycles;
    pool_fallbacks = Alloc.pool_fallbacks alloc;
    virtualized_launches = timing.Timing.virtualized_launches;
    max_pending = timing.Timing.max_pending;
    swapped_syncs = timing.Timing.swapped_syncs;
    max_depth = s.Interp.max_depth;
    total_grids = Array.length grids;
  }

(** Full run report (functional metrics + timing replay).  Cached until the
    next launch. *)
let report t =
  match t.cached_report with
  | Some r -> r
  | None ->
    let r = compute_report t in
    t.cached_report <- Some r;
    r

(* --- profiling ------------------------------------------------------------ *)

(** Replay the timing model with a fresh per-call recorder attached and
    return the event stream.  Replays are deterministic, so the stream
    agrees with the cached {!report}. *)
let profile t =
  let s = t.session in
  let recorder = Dpc_prof.Event.recorder () in
  let tm =
    Timing.create ~scheduler:t.scheduler
      ~sink:(Dpc_prof.Event.sink recorder)
      s.Interp.cfg (Interp.grids s) (Interp.roots s)
  in
  ignore (Timing.run tm : Timing.result);
  Dpc_prof.Event.events recorder

let kernel_profile t = Dpc_prof.Profile.of_events (profile t)

let chrome_trace t =
  Dpc_prof.Chrome_trace.of_events
    ~num_smx:t.session.Interp.cfg.Cfg.num_smx (profile t)

(* --- convenient buffer readback ------------------------------------------ *)

let read_int_array t id = Mem.int_contents (buf t id)

let read_float_array t id = Mem.float_contents (buf t id)
