(** ASCII device-utilization timelines.

    Renders the timing model's resident-warp samples as a braille-free,
    log-safe chart: one column per time bucket, height proportional to
    resident warps.  Useful for eyeballing why a variant is slow — e.g.
    basic-dp shows a long, almost-empty tail of serialized tiny kernels
    where grid-level consolidation shows a few dense bursts. *)

(** Bucket step samples into [width] equal time slices; each bucket holds
    the time-weighted average of resident warps. *)
val bucketize :
  width:int -> total:float -> (float * int) list -> float array

(** Render a one-line-per-level chart: [height] rows of [width] columns,
    plus a time axis.  [capacity] is the warp count that fills the top
    row (defaults to the device's total warp capacity). *)
val render :
  ?width:int ->
  ?height:int ->
  ?capacity:int ->
  Dpc_gpu.Config.t ->
  total_cycles:float ->
  (float * int) list ->
  string

(** Run the timing replay for a device's recorded session and render its
    utilization timeline. *)
val of_session :
  ?width:int ->
  ?height:int ->
  ?scheduler:Timing.scheduler ->
  Interp.session ->
  string
