(** Discrete-event timing model.

    Replays the traces recorded by {!Interp} against the device's
    resources: SMX occupancy limits, a processor-sharing issue model per
    SMX, the 32-concurrent-grid limit, the device-side launch pipeline
    with its fixed/virtualized pending pools, and parent-block swap on
    [cudaDeviceSynchronize].

    Two SMX scheduling disciplines are provided (DESIGN.md, ablation 2):
    - [Processor_sharing] (default): resident blocks share each SMX's
      issue bandwidth proportionally to their warp counts;
    - [Fcfs]: a block always progresses at its own maximum rate, i.e. no
      issue contention is modeled.

    Host launches replay sequentially: the host synchronizes between
    kernel invocations, as the benchmark drivers do. *)

module Cfg = Dpc_gpu.Config
module Heap = Dpc_util.Heap
module Ev = Dpc_prof.Event

type scheduler = Processor_sharing | Fcfs

type result = {
  total_cycles : float;
  occupancy : float;  (** achieved SMX occupancy, time-averaged *)
  extra_dram : int;  (** swap + virtualized-pool traffic *)
  virtualized_launches : int;
  max_pending : int;
  swapped_syncs : int;  (** device syncs that actually suspended a block *)
}

(* --- runtime state ------------------------------------------------------ *)

type block_run = {
  grid_id : int;
  bidx : int;
  warps : int;
  segments : Trace.segment array;
  mutable seg_i : int;
  mutable remaining : float;  (** work left in the current segment *)
  mutable extra_next : float;  (** swap cost charged to the next segment *)
  mutable rate : float;
  mutable last_update : float;
  mutable smx : int;  (** -1 when not resident *)
  mutable epoch : int;  (** invalidates stale completion events *)
  mutable children_out : int;
  mutable waiting_sync : bool;
  mutable waiting_barrier : bool;
  mutable finished : bool;
}

type grid_state = {
  trace : Trace.grid_exec;
  blocks : block_run array;
  mutable blocks_done : int;
  mutable children_out : int;
  mutable barrier_arrived : int;
  mutable dispatched : bool;
  mutable drained : bool;  (** all blocks done; no longer counts as active *)
  mutable completed : bool;
  mutable suspended : int;  (** blocks swapped out at a device sync *)
  mutable started : bool;  (** a block of this grid has reached an SMX *)
  mutable yielded : bool;
      (** every unfinished block is swapped out: the grid releases its
          concurrency slot (the runtime swaps parents to let children run,
          Section II.A) *)
}

type event =
  | Grid_ready of int
  | Dispatch_tick
  | Seg_done of block_run * int  (** block, epoch *)

type smx_state = {
  mutable resident : block_run list;
  mutable warps_used : int;
  mutable nblocks : int;
}

type t = {
  cfg : Cfg.t;
  scheduler : scheduler;
  record_timeline : bool;
  sink : Ev.sink option;  (** per-run profiling sink; no global state *)
  grids : grid_state array;
  smxs : smx_state array;
  events : event Heap.t;
  mutable now : float;
  (* grid dispatch *)
  ready_queue : int Queue.t;
  mutable active_grids : int;  (** dispatched and not drained *)
  mutable pending_count : int;
  mutable next_dispatch_time : float;
  mutable tick_armed : bool;  (** a Dispatch_tick event is outstanding *)
  (* block placement: blocks of dispatched grids awaiting an SMX slot *)
  place_queue : block_run Queue.t;
  (* host roots *)
  mutable roots_left : int list;
  mutable current_root : int;
  (* metrics *)
  mutable device_warps : int;
  mutable busy_smxs : int;  (** SMXs with at least one resident block *)
  mutable occ_integral : float;
  mutable busy_integral : float;  (** SMX-cycles with a block resident *)
  mutable occ_last : float;
  mutable extra_dram : int;
  mutable virtualized : int;
  mutable max_pending : int;
  mutable swapped_syncs : int;
  mutable completed_grids : int;
  mutable samples : (float * int) list;  (** (time, resident warps), reversed *)
}

let seg_work cfg (s : Trace.segment) =
  Float.of_int
    (s.Trace.issue_cycles
    + (s.Trace.dram_transactions * cfg.Cfg.dram_transaction_cycles)
    + (s.Trace.l2_hits * cfg.Cfg.l2_hit_cycles)
    + (s.Trace.bank_replays * cfg.Cfg.bank_replay_cycles)
    + (s.Trace.mshr_stalls * cfg.Cfg.mshr_stall_cycles))

let make_block_run cfg (g : Trace.grid_exec) (bt : Trace.block_trace) =
  {
    grid_id = g.Trace.gid;
    bidx = bt.Trace.block_idx;
    warps = bt.Trace.warps;
    segments = bt.Trace.segments;
    seg_i = 0;
    remaining =
      seg_work cfg bt.Trace.segments.(0)
      +. Float.of_int cfg.Cfg.block_start_cycles;
    extra_next = 0.0;
    rate = 0.0;
    last_update = 0.0;
    smx = -1;
    epoch = 0;
    children_out = 0;
    waiting_sync = false;
    waiting_barrier = false;
    finished = false;
  }

let create ?(scheduler = Processor_sharing) ?(record_timeline = false) ?sink
    cfg (grids : Trace.grid_exec array) (roots : int list) =
  let mk_grid (g : Trace.grid_exec) =
    {
      trace = g;
      blocks = Array.map (make_block_run cfg g) g.Trace.blocks;
      blocks_done = 0;
      children_out = 0;
      barrier_arrived = 0;
      dispatched = false;
      drained = false;
      completed = false;
      suspended = 0;
      started = false;
      yielded = false;
    }
  in
  {
    cfg;
    scheduler;
    record_timeline;
    sink;
    grids = Array.map mk_grid grids;
    smxs =
      Array.init cfg.Cfg.num_smx (fun _ ->
          { resident = []; warps_used = 0; nblocks = 0 });
    events = Heap.create ();
    now = 0.0;
    ready_queue = Queue.create ();
    active_grids = 0;
    pending_count = 0;
    next_dispatch_time = 0.0;
    tick_armed = false;
    place_queue = Queue.create ();
    roots_left = roots;
    current_root = -1;
    device_warps = 0;
    busy_smxs = 0;
    occ_integral = 0.0;
    busy_integral = 0.0;
    occ_last = 0.0;
    extra_dram = 0;
    virtualized = 0;
    max_pending = 0;
    swapped_syncs = 0;
    completed_grids = 0;
    samples = [];
  }

(* --- event publication --------------------------------------------------- *)

(* Publish one typed event to the profiling sink, stamped with the
   current simulated cycle and the grid's identity.  A [None] sink makes
   this a cheap no-op, so unprofiled runs pay one branch per site. *)
let emit t ?(smx = -1) (g : grid_state) kind =
  match t.sink with
  | None -> ()
  | Some sink ->
    sink
      {
        Ev.cycles = t.now;
        gid = g.trace.Trace.gid;
        kernel = g.trace.Trace.kernel;
        depth = g.trace.Trace.depth;
        smx;
        kind;
      }

(* Allocator activity recorded by the interpreter on the segment that
   just retired, replayed at the segment's simulated end time. *)
let emit_segment_allocs t (b : block_run) (seg : Trace.segment) =
  if t.sink <> None && seg.Trace.alloc_calls > 0 then
    emit t ~smx:b.smx
      t.grids.(b.grid_id)
      (Ev.Alloc
         {
           calls = seg.Trace.alloc_calls;
           fallbacks = seg.Trace.alloc_fallbacks;
           cycles = seg.Trace.alloc_cycles;
         })

(* --- occupancy accounting ----------------------------------------------- *)

let occ_note t =
  let dt = t.now -. t.occ_last in
  if dt > 0.0 then begin
    t.occ_integral <- t.occ_integral +. (Float.of_int t.device_warps *. dt);
    t.busy_integral <- t.busy_integral +. (Float.of_int t.busy_smxs *. dt);
    if t.record_timeline then
      t.samples <- (t.occ_last, t.device_warps) :: t.samples;
    t.occ_last <- t.now
  end

(* --- processor-sharing SMX model ---------------------------------------- *)

let update_smx t (s : smx_state) =
  List.iter
    (fun b ->
      let dt = t.now -. b.last_update in
      if dt > 0.0 then
        b.remaining <- Float.max 0.0 (b.remaining -. (b.rate *. dt));
      b.last_update <- t.now)
    s.resident

let reschedule t (b : block_run) =
  b.epoch <- b.epoch + 1;
  let dt = if b.rate > 0.0 then b.remaining /. b.rate else 0.0 in
  Heap.push t.events (t.now +. dt) (Seg_done (b, b.epoch))

let recompute_rates t (s : smx_state) =
  let issue = Float.of_int t.cfg.Cfg.issue_rate in
  (* Dual-issue: each resident warp may issue up to [issue_per_warp]
     instructions per cycle, so a block's ceiling is warps x slots.  At
     the default 1 this is exactly the historical single-issue model. *)
  let ipw = Float.of_int t.cfg.Cfg.issue_per_warp in
  let total_warps =
    List.fold_left (fun acc b -> acc + b.warps) 0 s.resident
  in
  List.iter
    (fun b ->
      let w = Float.of_int b.warps in
      let rate =
        match t.scheduler with
        | Fcfs -> Float.min (w *. ipw) issue
        | Processor_sharing ->
          if total_warps = 0 then 0.0
          else Float.min (w *. ipw) (issue *. w /. Float.of_int total_warps)
      in
      b.rate <- rate;
      reschedule t b)
    s.resident

let add_to_smx t (b : block_run) smx_idx =
  let s = t.smxs.(smx_idx) in
  update_smx t s;
  b.smx <- smx_idx;
  b.last_update <- t.now;
  occ_note t;
  s.resident <- b :: s.resident;
  s.warps_used <- s.warps_used + b.warps;
  s.nblocks <- s.nblocks + 1;
  if s.nblocks = 1 then t.busy_smxs <- t.busy_smxs + 1;
  t.device_warps <- t.device_warps + b.warps;
  (let g = t.grids.(b.grid_id) in
   if not g.started then begin
     g.started <- true;
     emit t ~smx:smx_idx g Ev.Grid_started
   end;
   emit t ~smx:smx_idx g (Ev.Block_placed { block = b.bidx; warps = b.warps }));
  recompute_rates t s

let remove_from_smx t (b : block_run) =
  if b.smx >= 0 then begin
    let s = t.smxs.(b.smx) in
    update_smx t s;
    occ_note t;
    s.resident <- List.filter (fun x -> x != b) s.resident;
    s.warps_used <- s.warps_used - b.warps;
    s.nblocks <- s.nblocks - 1;
    if s.nblocks = 0 then t.busy_smxs <- t.busy_smxs - 1;
    t.device_warps <- t.device_warps - b.warps;
    emit t ~smx:b.smx
      t.grids.(b.grid_id)
      (Ev.Block_removed { block = b.bidx; warps = b.warps });
    b.smx <- -1;
    b.epoch <- b.epoch + 1;
    recompute_rates t s
  end

(* --- block placement ----------------------------------------------------- *)

let find_smx t warps =
  let best = ref (-1) in
  let best_load = ref max_int in
  Array.iteri
    (fun i s ->
      if
        s.nblocks < t.cfg.Cfg.max_blocks_per_smx
        && s.warps_used + warps <= t.cfg.Cfg.max_warps_per_smx
        && s.warps_used < !best_load
      then begin
        best := i;
        best_load := s.warps_used
      end)
    t.smxs;
  !best

let rec place_blocks t =
  if not (Queue.is_empty t.place_queue) then begin
    let b = Queue.peek t.place_queue in
    let smx = find_smx t b.warps in
    if smx >= 0 then begin
      ignore (Queue.pop t.place_queue);
      add_to_smx t b smx;
      place_blocks t
    end
  end

(* --- grid dispatch ------------------------------------------------------- *)

let rec try_dispatch t =
  if
    (not (Queue.is_empty t.ready_queue))
    && t.active_grids < t.cfg.Cfg.max_concurrent_grids
  then begin
    if t.now +. 1e-9 < t.next_dispatch_time then begin
      (* Rate-limited: arm (at most one) wake-up at the next dispatch slot. *)
      if not t.tick_armed then begin
        t.tick_armed <- true;
        Heap.push t.events t.next_dispatch_time Dispatch_tick
      end
    end
    else begin
      let gid = Queue.pop t.ready_queue in
      let g = t.grids.(gid) in
      if Sys.getenv_opt "DPC_TIMING_TRACE" <> None then
        Printf.eprintf "[%10.0f] dispatch g%d (%s %dx%d)\n" t.now gid
          g.trace.Trace.kernel (Array.length g.blocks)
          g.trace.Trace.block_dim;
      g.dispatched <- true;
      t.pending_count <- t.pending_count - 1;
      t.active_grids <- t.active_grids + 1;
      emit t g (Ev.Grid_launched { pending_left = t.pending_count });
      (* Dispatch throughput collapses while the pending pool is
         virtualized (software-managed pool, Section III.B). *)
      let interval =
        if t.pending_count > t.cfg.Cfg.fixed_pool_capacity then
          t.cfg.Cfg.virtual_dispatch_interval
        else t.cfg.Cfg.dispatch_interval
      in
      t.next_dispatch_time <- t.now +. Float.of_int interval;
      Array.iter (fun b -> Queue.push b t.place_queue) g.blocks;
      place_blocks t;
      (* Zero-block work (empty grids) cannot occur: grid_dim >= 1. *)
      try_dispatch t
    end
  end

(* A device- or host-side launch enters the pending pool. *)
and launch_grid t gid ~latency =
  t.pending_count <- t.pending_count + 1;
  let high_water = t.pending_count > t.max_pending in
  if high_water then t.max_pending <- t.pending_count;
  let virtualized = t.pending_count > t.cfg.Cfg.fixed_pool_capacity in
  let penalty =
    if virtualized then begin
      t.virtualized <- t.virtualized + 1;
      t.extra_dram <- t.extra_dram + t.cfg.Cfg.virtual_pool_dram;
      Float.of_int t.cfg.Cfg.virtual_pool_penalty
    end
    else 0.0
  in
  (let g = t.grids.(gid) in
   emit t g (Ev.Grid_enqueued { pending = t.pending_count; virtualized });
   if high_water then
     emit t g (Ev.Pool_high_water { level = t.pending_count });
   if virtualized then
     emit t g (Ev.Pool_virtualized { pending = t.pending_count }));
  Heap.push t.events (t.now +. Float.of_int latency +. penalty) (Grid_ready gid)

(* --- completion plumbing -------------------------------------------------- *)

(* Start the current segment's successor on the same SMX (the block stays
   resident: launches do not suspend the parent). *)
let advance_in_place t (b : block_run) =
  b.seg_i <- b.seg_i + 1;
  b.remaining <- seg_work t.cfg b.segments.(b.seg_i) +. b.extra_next;
  b.extra_next <- 0.0;
  b.last_update <- t.now;
  reschedule t b

(* Re-enter the placement queue with the next segment pending. *)
let requeue_block t (b : block_run) =
  b.seg_i <- b.seg_i + 1;
  b.remaining <- seg_work t.cfg b.segments.(b.seg_i) +. b.extra_next;
  b.extra_next <- 0.0;
  Queue.push b t.place_queue;
  place_blocks t

(* If every unfinished block of [g] is suspended at a device sync, the
   grid yields its concurrency slot so its children can dispatch (the
   hardware swaps parents out; holding the slot would deadlock). *)
let maybe_yield t (g : grid_state) =
  if
    (not g.yielded) && (not g.drained)
    && g.suspended + g.blocks_done = Array.length g.blocks
  then begin
    g.yielded <- true;
    t.active_grids <- t.active_grids - 1
  end

let unyield t (g : grid_state) =
  if g.yielded then begin
    g.yielded <- false;
    (* The parent resumes immediately when its children finish; it may
       transiently exceed the concurrency cap, as preemption does. *)
    t.active_grids <- t.active_grids + 1
  end

let rec grid_drained t (g : grid_state) =
  if not g.drained then begin
    g.drained <- true;
    if not g.yielded then t.active_grids <- t.active_grids - 1;
    g.yielded <- false;
    try_dispatch t
  end;
  check_grid_complete t g

and check_grid_complete t (g : grid_state) =
  if
    g.drained && (not g.completed)
    && g.blocks_done = Array.length g.blocks
    && g.children_out = 0
  then begin
    g.completed <- true;
    if Sys.getenv_opt "DPC_TIMING_TRACE" <> None then
      Printf.eprintf "[%10.0f] complete g%d (%s)\n" t.now g.trace.Trace.gid
        g.trace.Trace.kernel;
    t.completed_grids <- t.completed_grids + 1;
    if t.sink <> None then begin
      let totals = Trace.totals_of_grid g.trace in
      emit t g
        (Ev.Grid_completed
           {
             issue_cycles = totals.Trace.total_issue;
             weighted_active = totals.Trace.total_weighted;
             dram_transactions = totals.Trace.total_dram;
             l2_hits = totals.Trace.total_l2_hits;
             bank_replays = totals.Trace.total_bank_replays;
             mshr_stalls = totals.Trace.total_mshr_stalls;
             blocks = Array.length g.blocks;
             warps = Array.fold_left (fun acc b -> acc + b.warps) 0 g.blocks;
           })
    end;
    (match g.trace.Trace.parent with
    | Some (pgid, pbidx) ->
      let pg = t.grids.(pgid) in
      pg.children_out <- pg.children_out - 1;
      let pb = pg.blocks.(pbidx) in
      pb.children_out <- pb.children_out - 1;
      if pb.waiting_sync && pb.children_out = 0 then begin
        pb.waiting_sync <- false;
        pg.suspended <- pg.suspended - 1;
        emit t pg (Ev.Swap_in { block = pbidx });
        unyield t pg;
        requeue_block t pb
      end;
      check_grid_complete t pg
    | None -> (
      (* A root finished: issue the next host launch. *)
      match t.roots_left with
      | next :: rest ->
        t.roots_left <- rest;
        t.current_root <- next;
        launch_grid t next ~latency:t.cfg.Cfg.host_launch_latency
      | [] -> ()));
    try_dispatch t
  end

let block_finished t (b : block_run) =
  b.finished <- true;
  remove_from_smx t b;
  place_blocks t;
  let g = t.grids.(b.grid_id) in
  g.blocks_done <- g.blocks_done + 1;
  if g.blocks_done = Array.length g.blocks then grid_drained t g

(* --- segment-end handling -------------------------------------------------- *)

let handle_segment_end t (b : block_run) =
  let g = t.grids.(b.grid_id) in
  let seg = b.segments.(b.seg_i) in
  emit_segment_allocs t b seg;
  match seg.Trace.ends_with with
  | Trace.Seg_done -> block_finished t b
  | Trace.Seg_launch child_ids ->
    Array.iter
      (fun cgid ->
        g.children_out <- g.children_out + 1;
        b.children_out <- b.children_out + 1;
        launch_grid t cgid ~latency:t.cfg.Cfg.device_launch_latency)
      child_ids;
    advance_in_place t b
  | Trace.Seg_sync ->
    if b.children_out = 0 then
      (* Children already complete: no swap occurs. *)
      advance_in_place t b
    else begin
      (* The parent block is swapped out to free resources (Section III.B). *)
      t.swapped_syncs <- t.swapped_syncs + 1;
      t.extra_dram <- t.extra_dram + t.cfg.Cfg.sync_swap_dram;
      b.extra_next <- b.extra_next +. Float.of_int t.cfg.Cfg.sync_swap_cycles;
      b.waiting_sync <- true;
      let smx = b.smx in
      remove_from_smx t b;
      emit t ~smx g (Ev.Swap_out { block = b.bidx });
      g.suspended <- g.suspended + 1;
      maybe_yield t g;
      place_blocks t;
      try_dispatch t
    end
  | Trace.Seg_barrier ->
    g.barrier_arrived <- g.barrier_arrived + 1;
    let n = Array.length g.blocks in
    let all_arrived = g.barrier_arrived = n in
    if b.bidx = n - 1 then
      (* The designated continuation block: it proceeds only once every
         sibling has arrived; until then it vacates the SMX. *)
      if all_arrived then advance_in_place t b
      else begin
        b.waiting_barrier <- true;
        remove_from_smx t b;
        place_blocks t
      end
    else begin
      (* Non-continuation blocks exit right after arriving (their trailing
         segments are empty); the last arrival releases the continuation. *)
      if all_arrived then begin
        let cont = g.blocks.(n - 1) in
        if cont.waiting_barrier then begin
          cont.waiting_barrier <- false;
          requeue_block t cont
        end
      end;
      advance_in_place t b
    end

(* --- main loop -------------------------------------------------------------- *)

exception Stuck of string

let run t =
  (match t.roots_left with
  | [] -> ()
  | first :: rest ->
    t.roots_left <- rest;
    t.current_root <- first;
    launch_grid t first ~latency:t.cfg.Cfg.host_launch_latency);
  let n_events = ref 0 in
  let n_ready = ref 0 and n_tick = ref 0 and n_seg = ref 0 and n_stale = ref 0 in
  let progress = ref true in
  while !progress do
    incr n_events;
    match Heap.pop_min t.events with
    | None -> progress := false
    | Some (time, ev) -> (
      (* Stale completion events (superseded by a reschedule) must not
         advance the clock. *)
      let advance () =
        t.now <- Float.max t.now time;
        occ_note t
      in
      match ev with
      | Grid_ready gid ->
        advance ();
        if Sys.getenv_opt "DPC_TIMING_TRACE" <> None then
          Printf.eprintf "[%10.0f] ready g%d\n" t.now gid;
        incr n_ready;
        Queue.push gid t.ready_queue;
        try_dispatch t
      | Dispatch_tick ->
        advance ();
        incr n_tick;
        t.tick_armed <- false;
        try_dispatch t
      | Seg_done (b, epoch) ->
        incr n_seg;
        if epoch <> b.epoch then incr n_stale;
        if epoch = b.epoch && not b.finished then begin
          advance ();
          (* Settle the block's accounting at the current time. *)
          if b.smx >= 0 then update_smx t t.smxs.(b.smx);
          if b.remaining <= 1e-6 then begin
            b.remaining <- 0.0;
            handle_segment_end t b
          end
          else
            (* Rates changed since this event was scheduled; re-arm. *)
            reschedule t b
        end)
  done;
  (if Sys.getenv_opt "DPC_TIMING_DEBUG" <> None then
     Printf.eprintf "[timing] events %d: ready %d tick %d seg %d (stale %d) grids %d\n%!"
       !n_events !n_ready !n_tick !n_seg !n_stale (Array.length t.grids));
  let incomplete =
    Array.fold_left
      (fun acc g -> if g.completed then acc else acc + 1)
      0 t.grids
  in
  if incomplete > 0 then
    raise
      (Stuck
         (Printf.sprintf
            "timing model finished with %d incomplete grids (deadlock?)"
            incomplete));
  occ_note t;
  (* Achieved occupancy as the profiler defines it: average resident warps
     per *busy* SMX over the warp capacity (idle launch-latency gaps and
     idle SMXs are not averaged in). *)
  let denom = t.busy_integral *. Float.of_int t.cfg.Cfg.max_warps_per_smx in
  {
    total_cycles = t.now;
    occupancy = (if denom > 0.0 then t.occ_integral /. denom else 0.0);
    extra_dram = t.extra_dram;
    virtualized_launches = t.virtualized;
    max_pending = t.max_pending;
    swapped_syncs = t.swapped_syncs;
  }

(** Convenience: build and run a timing model over recorded traces. *)
let simulate ?scheduler ?sink cfg grids roots =
  let t = create ?scheduler ?sink cfg grids roots in
  run t

(** Resident-warp samples ((start_time, warps) steps, in time order);
    empty unless created with [record_timeline:true]. *)
let timeline t = List.rev t.samples
