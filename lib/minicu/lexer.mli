(** Hand-written lexer for MiniCU.

    Handles [//] and [/* */] comments, decimal and hexadecimal (C99 [%a])
    float literals with an optional [f] suffix, the CUDA launch brackets
    [<<<] / [>>>], and [#pragma] lines (captured whole; parsed later by
    {!Pragma_parser}). *)

exception Lex_error of { line : int; msg : string }

type lexed = { tok : Token.t; line : int }

(** Character classes, shared with the pragma scanner. *)
val is_digit : char -> bool

val is_ident_start : char -> bool
val is_ident : char -> bool

(** Tokenize a whole source text; the result always ends with
    {!Token.Eof}.
    @raise Lex_error with a line number on invalid input. *)
val tokenize : string -> lexed list
