(** Recursive-descent parser for MiniCU, producing kernel IR directly.

    The grammar is the CUDA subset the paper's code template needs (see
    [Dpc_kir.Pp], whose output this parser round-trips):

    {v
    program   := kernel*
    kernel    := "__global__" "void" IDENT "(" params ")" "{" shared* stmt* "}"
    params    := [ type IDENT ("," type IDENT)* ]
    type      := ("int" | "float") ["*"]
    shared    := "__shared__" ("int"|"float") IDENT "[" INT "]" ";"
    stmt      := "var" IDENT "=" rvalue ";"
               | lvalue "=" rvalue ";"
               | "if" "(" expr ")" block ["else" block]
               | "while" "(" expr ")" block
               | "for" "(" ["var"] IDENT "=" expr ";" IDENT "<" expr ";"
                           IDENT "=" IDENT "+" "1" ")" block
               | [pragma] "launch" IDENT "<<<" expr "," expr ">>>" "(" args ")" ";"
               | "__syncthreads" "(" ")" ";"
               | "cudaDeviceSynchronize" "(" ")" ";"
               | "__dp_global_barrier" "(" ")" ";"
               | "__dp_free" "(" expr ")" ";"
               | atomic-call ";"
               | "return" ";"
    rvalue    := atomic-call | "__dp_malloc_"("warp"|"block"|"grid") "(" expr ")"
               | expr
    v}

    Local variables are introduced by [var x = ...]; all locals are
    dynamically typed, as in the IR. *)

module A = Dpc_kir.Ast
module K = Dpc_kir.Kernel
module T = Token

exception Parse_error of { line : int; msg : string }

type state = {
  toks : Lexer.lexed array;
  mutable pos : int;
  mutable shared_names : string list;  (** of the kernel being parsed *)
}

let error (s : state) fmt =
  let line =
    if s.pos < Array.length s.toks then s.toks.(s.pos).Lexer.line else 0
  in
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

let cur s = s.toks.(s.pos).Lexer.tok

let peek s k =
  if s.pos + k < Array.length s.toks then s.toks.(s.pos + k).Lexer.tok
  else T.Eof

let advance s = s.pos <- s.pos + 1

let expect s tok =
  if cur s = tok then advance s
  else error s "expected %s, found %s" (T.to_string tok) (T.to_string (cur s))

let expect_ident s =
  match cur s with
  | T.Ident name ->
    advance s;
    name
  | t -> error s "expected an identifier, found %s" (T.to_string t)

let expect_keyword s kw =
  match cur s with
  | T.Ident name when name = kw -> advance s
  | t -> error s "expected %S, found %s" kw (T.to_string t)

let expect_int s =
  match cur s with
  | T.Int_lit n ->
    advance s;
    n
  | t -> error s "expected an integer literal, found %s" (T.to_string t)

(* --- expressions ---------------------------------------------------------- *)

let specials_dotted = [ "threadIdx"; "blockIdx"; "blockDim"; "gridDim" ]

let dotted_special = function
  | "threadIdx" -> A.Thread_idx
  | "blockIdx" -> A.Block_idx
  | "blockDim" -> A.Block_dim
  | "gridDim" -> A.Grid_dim
  | s -> invalid_arg s

let atomic_ops =
  [
    ("atomicAdd", A.Aadd);
    ("atomicMin", A.Amin);
    ("atomicMax", A.Amax);
    ("atomicExch", A.Aexch);
    ("atomicCAS", A.Acas);
  ]

let malloc_scopes =
  [
    ("__dp_malloc_warp", A.Per_warp);
    ("__dp_malloc_block", A.Per_block);
    ("__dp_malloc_grid", A.Per_grid);
  ]

let rec parse_expr s = parse_or s

and parse_or s =
  let lhs = ref (parse_and s) in
  while cur s = T.Bar_bar do
    advance s;
    lhs := A.Binop (A.Or, !lhs, parse_and s)
  done;
  !lhs

and parse_and s =
  let lhs = ref (parse_bitor s) in
  while cur s = T.Amp_amp do
    advance s;
    lhs := A.Binop (A.And, !lhs, parse_bitor s)
  done;
  !lhs

and parse_bitor s =
  let lhs = ref (parse_bitxor s) in
  while cur s = T.Bar do
    advance s;
    lhs := A.Binop (A.Bit_or, !lhs, parse_bitxor s)
  done;
  !lhs

and parse_bitxor s =
  let lhs = ref (parse_bitand s) in
  while cur s = T.Caret do
    advance s;
    lhs := A.Binop (A.Bit_xor, !lhs, parse_bitand s)
  done;
  !lhs

and parse_bitand s =
  let lhs = ref (parse_equality s) in
  while cur s = T.Amp do
    advance s;
    lhs := A.Binop (A.Bit_and, !lhs, parse_equality s)
  done;
  !lhs

and parse_equality s =
  let lhs = ref (parse_relational s) in
  let continue = ref true in
  while !continue do
    match cur s with
    | T.Eq ->
      advance s;
      lhs := A.Binop (A.Eq, !lhs, parse_relational s)
    | T.Ne ->
      advance s;
      lhs := A.Binop (A.Ne, !lhs, parse_relational s)
    | _ -> continue := false
  done;
  !lhs

and parse_relational s =
  let lhs = ref (parse_shift s) in
  let continue = ref true in
  while !continue do
    match cur s with
    | T.Lt ->
      advance s;
      lhs := A.Binop (A.Lt, !lhs, parse_shift s)
    | T.Le ->
      advance s;
      lhs := A.Binop (A.Le, !lhs, parse_shift s)
    | T.Gt ->
      advance s;
      lhs := A.Binop (A.Gt, !lhs, parse_shift s)
    | T.Ge ->
      advance s;
      lhs := A.Binop (A.Ge, !lhs, parse_shift s)
    | _ -> continue := false
  done;
  !lhs

and parse_shift s =
  let lhs = ref (parse_additive s) in
  let continue = ref true in
  while !continue do
    match cur s with
    | T.Shl ->
      advance s;
      lhs := A.Binop (A.Shl, !lhs, parse_additive s)
    | T.Shr ->
      advance s;
      lhs := A.Binop (A.Shr, !lhs, parse_additive s)
    | _ -> continue := false
  done;
  !lhs

and parse_additive s =
  let lhs = ref (parse_multiplicative s) in
  let continue = ref true in
  while !continue do
    match cur s with
    | T.Plus ->
      advance s;
      lhs := A.Binop (A.Add, !lhs, parse_multiplicative s)
    | T.Minus ->
      advance s;
      lhs := A.Binop (A.Sub, !lhs, parse_multiplicative s)
    | _ -> continue := false
  done;
  !lhs

and parse_multiplicative s =
  let lhs = ref (parse_unary s) in
  let continue = ref true in
  while !continue do
    match cur s with
    | T.Star ->
      advance s;
      lhs := A.Binop (A.Mul, !lhs, parse_unary s)
    | T.Slash ->
      advance s;
      lhs := A.Binop (A.Div, !lhs, parse_unary s)
    | T.Percent ->
      advance s;
      lhs := A.Binop (A.Mod, !lhs, parse_unary s)
    | _ -> continue := false
  done;
  !lhs

and parse_unary s =
  match cur s with
  | T.Minus ->
    advance s;
    A.Unop (A.Neg, parse_unary s)
  | T.Bang ->
    advance s;
    A.Unop (A.Not, parse_unary s)
  | T.Lparen
    when (match (peek s 1, peek s 2) with
         | T.Ident ("int" | "float"), T.Rparen -> true
         | _ -> false) ->
    advance s;
    let op =
      match expect_ident s with
      | "int" -> A.To_int
      | _ -> A.To_float
    in
    expect s T.Rparen;
    A.Unop (op, parse_unary s)
  | _ -> parse_postfix s

and parse_postfix s =
  let e = ref (parse_primary s) in
  while cur s = T.Lbracket do
    advance s;
    let idx = parse_expr s in
    expect s T.Rbracket;
    (e :=
       match !e with
       | A.Var v when List.mem v.A.name s.shared_names ->
         A.Shared_load (v.A.name, idx)
       | base -> A.Load (base, idx))
  done;
  !e

and parse_primary s =
  match cur s with
  | T.Int_lit n ->
    advance s;
    A.Const (Dpc_kir.Value.Vint n)
  | T.Float_lit f ->
    advance s;
    A.Const (Dpc_kir.Value.Vfloat f)
  | T.Lparen ->
    advance s;
    let e = parse_expr s in
    expect s T.Rparen;
    e
  | T.Ident ("min" | "max") when peek s 1 = T.Lparen ->
    let op = if cur s = T.Ident "min" then A.Min else A.Max in
    advance s;
    expect s T.Lparen;
    let a = parse_expr s in
    expect s T.Comma;
    let b = parse_expr s in
    expect s T.Rparen;
    A.Binop (op, a, b)
  | T.Ident "__len" ->
    advance s;
    expect s T.Lparen;
    let e = parse_expr s in
    expect s T.Rparen;
    A.Buf_len e
  | T.Ident "__buf" ->
    advance s;
    expect s T.Lparen;
    let n = expect_int s in
    expect s T.Rparen;
    A.Const (Dpc_kir.Value.Vbuf n)
  | T.Ident name when List.mem name specials_dotted ->
    advance s;
    expect s T.Dot;
    expect_keyword s "x";
    A.Special (dotted_special name)
  | T.Ident "laneId" ->
    advance s;
    A.Special A.Lane_id
  | T.Ident "warpId" ->
    advance s;
    A.Special A.Warp_id
  | T.Ident "warpSize" ->
    advance s;
    A.Special A.Warp_size
  | T.Ident name ->
    advance s;
    A.Var (A.var name)
  | t -> error s "expected an expression, found %s" (T.to_string t)

(* --- statements ------------------------------------------------------------ *)

let parse_atomic_call s op =
  expect s T.Lparen;
  let buf = parse_expr s in
  expect s T.Comma;
  let idx = parse_expr s in
  expect s T.Comma;
  let third = parse_expr s in
  let compare, operand =
    if op = A.Acas then begin
      expect s T.Comma;
      let v = parse_expr s in
      (Some third, v)
    end
    else (None, third)
  in
  expect s T.Rparen;
  (buf, idx, operand, compare)

let cur_line (s : state) =
  if s.pos < Array.length s.toks then s.toks.(s.pos).Lexer.line else 0

let rec parse_stmt s : A.stmt =
  match cur s with
  | T.Pragma text -> (
    let line = cur_line s in
    advance s;
    match Pragma_parser.parse ~line text with
    | Some pragma -> parse_launch s (Some pragma)
    | None -> error s "only #pragma dp directives are supported")
  | T.Ident "launch" -> parse_launch s None
  | T.Ident "var" ->
    advance s;
    let name = expect_ident s in
    expect s T.Assign;
    parse_rvalue s name
  | T.Ident "if" ->
    advance s;
    expect s T.Lparen;
    let cond = parse_expr s in
    expect s T.Rparen;
    let then_blk = parse_block s in
    let else_blk =
      if cur s = T.Ident "else" then begin
        advance s;
        parse_block s
      end
      else []
    in
    A.If (cond, then_blk, else_blk)
  | T.Ident "while" ->
    advance s;
    expect s T.Lparen;
    let cond = parse_expr s in
    expect s T.Rparen;
    A.While (cond, parse_block s)
  | T.Ident "for" ->
    advance s;
    expect s T.Lparen;
    if cur s = T.Ident "var" then advance s;
    let name = expect_ident s in
    expect s T.Assign;
    let lo = parse_expr s in
    expect s T.Semi;
    let cond = parse_expr s in
    expect s T.Semi;
    let hi =
      match cond with
      | A.Binop (A.Lt, A.Var v, hi) when v.A.name = name -> hi
      | _ ->
        error s "for-loop condition must be %s < <expr> (use while otherwise)"
          name
    in
    let iname = expect_ident s in
    if iname <> name then
      error s "for-loop increment must update %s" name;
    expect s T.Assign;
    (match parse_expr s with
    | A.Binop (A.Add, A.Var v, A.Const (Dpc_kir.Value.Vint 1))
      when v.A.name = name ->
      ()
    | _ -> error s "for-loop increment must be %s = %s + 1" name name);
    expect s T.Rparen;
    A.For (A.var name, lo, hi, parse_block s)
  | T.Ident "return" ->
    advance s;
    expect s T.Semi;
    A.Return
  | T.Ident "__syncthreads" ->
    advance s;
    expect s T.Lparen;
    expect s T.Rparen;
    expect s T.Semi;
    A.Syncthreads
  | T.Ident "cudaDeviceSynchronize" ->
    advance s;
    expect s T.Lparen;
    expect s T.Rparen;
    expect s T.Semi;
    A.Device_sync
  | T.Ident "__dp_global_barrier" ->
    advance s;
    expect s T.Lparen;
    expect s T.Rparen;
    expect s T.Semi;
    A.Grid_barrier
  | T.Ident "__dp_free" ->
    advance s;
    expect s T.Lparen;
    let e = parse_expr s in
    expect s T.Rparen;
    expect s T.Semi;
    A.Free e
  | T.Ident name when List.mem_assoc name atomic_ops && peek s 1 = T.Lparen ->
    let op = List.assoc name atomic_ops in
    advance s;
    let buf, idx, operand, compare = parse_atomic_call s op in
    expect s T.Semi;
    A.Atomic { op; buf; idx; operand; compare; old = None }
  | _ -> (
    (* Assignment statement: lvalue = rvalue; *)
    let target = parse_postfix s in
    expect s T.Assign;
    match target with
    | A.Var v -> parse_rvalue s v.A.name
    | A.Load (b, i) ->
      let value = parse_expr s in
      expect s T.Semi;
      A.Store (b, i, value)
    | A.Shared_load (n, i) ->
      let value = parse_expr s in
      expect s T.Semi;
      A.Shared_store (n, i, value)
    | _ -> error s "invalid assignment target")

(* Right-hand side of [name = ...]: atomic call with old-value binding,
   device-heap allocation, or a plain expression. *)
and parse_rvalue s name : A.stmt =
  match cur s with
  | T.Ident a when List.mem_assoc a atomic_ops && peek s 1 = T.Lparen ->
    let op = List.assoc a atomic_ops in
    advance s;
    let buf, idx, operand, compare = parse_atomic_call s op in
    expect s T.Semi;
    A.Atomic { op; buf; idx; operand; compare; old = Some (A.var name) }
  | T.Ident m when List.mem_assoc m malloc_scopes && peek s 1 = T.Lparen ->
    let scope = List.assoc m malloc_scopes in
    advance s;
    expect s T.Lparen;
    let count = parse_expr s in
    expect s T.Rparen;
    expect s T.Semi;
    A.Malloc { dst = A.var name; count; scope; site = -1 }
  | _ ->
    let e = parse_expr s in
    expect s T.Semi;
    A.Let (A.var name, e)

and parse_launch s pragma : A.stmt =
  expect_keyword s "launch";
  let callee = expect_ident s in
  expect s T.Triple_lt;
  let grid = parse_expr s in
  expect s T.Comma;
  let block = parse_expr s in
  expect s T.Triple_gt;
  expect s T.Lparen;
  let args = ref [] in
  if cur s <> T.Rparen then begin
    args := [ parse_expr s ];
    while cur s = T.Comma do
      advance s;
      args := parse_expr s :: !args
    done
  end;
  expect s T.Rparen;
  expect s T.Semi;
  A.Launch { callee; grid; block; args = List.rev !args; pragma }

and parse_block s : A.stmt list =
  expect s T.Lbrace;
  let stmts = ref [] in
  while cur s <> T.Rbrace do
    stmts := parse_stmt s :: !stmts
  done;
  expect s T.Rbrace;
  List.rev !stmts

(* --- kernels and programs ---------------------------------------------------- *)

let parse_type s : A.ty =
  match expect_ident s with
  | "int" ->
    if cur s = T.Star then begin
      advance s;
      A.Tptr_int
    end
    else A.Tint
  | "float" ->
    if cur s = T.Star then begin
      advance s;
      A.Tptr_float
    end
    else A.Tfloat
  | other -> error s "unknown type %S" other

let parse_kernel s : K.t =
  let line = cur_line s in
  expect_keyword s "__global__";
  expect_keyword s "void";
  let name = expect_ident s in
  expect s T.Lparen;
  let params = ref [] in
  if cur s <> T.Rparen then begin
    let one () =
      let ty = parse_type s in
      let pname = expect_ident s in
      params := A.param ~ty pname :: !params
    in
    one ();
    while cur s = T.Comma do
      advance s;
      one ()
    done
  end;
  expect s T.Rparen;
  expect s T.Lbrace;
  (* Shared-memory declarations come first. *)
  s.shared_names <- [];
  let shared = ref [] in
  while cur s = T.Ident "__shared__" do
    advance s;
    (match cur s with
    | T.Ident ("int" | "float") -> advance s
    | t -> error s "expected shared element type, found %s" (T.to_string t));
    let sname = expect_ident s in
    expect s T.Lbracket;
    let size = expect_int s in
    expect s T.Rbracket;
    expect s T.Semi;
    shared := (sname, size) :: !shared;
    s.shared_names <- sname :: s.shared_names
  done;
  let body = ref [] in
  while cur s <> T.Rbrace do
    body := parse_stmt s :: !body
  done;
  expect s T.Rbrace;
  K.make ~name ~params:(List.rev !params) ~shared:(List.rev !shared) ~line
    (List.rev !body)

(** Parse a full MiniCU source file into a program. *)
let parse_program (src : string) : K.Program.t =
  let toks = Array.of_list (Lexer.tokenize src) in
  let s = { toks; pos = 0; shared_names = [] } in
  let prog = K.Program.create () in
  while cur s <> T.Eof do
    K.Program.add prog (parse_kernel s)
  done;
  prog

(** Parse a single kernel definition. *)
let parse_kernel_string (src : string) : K.t =
  let toks = Array.of_list (Lexer.tokenize src) in
  let s = { toks; pos = 0; shared_names = [] } in
  let k = parse_kernel s in
  if cur s <> T.Eof then error s "trailing input after kernel";
  k
