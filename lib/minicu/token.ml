(** Tokens of the MiniCU language (this project's CUDA-lite dialect). *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Pragma of string  (** raw text after [#pragma], one per source line *)
  | Lparen | Rparen
  | Lbrace | Rbrace
  | Lbracket | Rbracket
  | Comma | Semi | Colon | Dot
  | Assign  (** = *)
  | Plus | Minus | Star | Slash | Percent
  | Eq | Ne | Lt | Le | Gt | Ge
  | Amp_amp | Bar_bar | Bang
  | Amp | Bar | Caret
  | Shl | Shr
  | Triple_lt  (** <<< *)
  | Triple_gt  (** >>> *)
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Float_lit f -> Printf.sprintf "float %g" f
  | Pragma s -> Printf.sprintf "#pragma %s" s
  | Lparen -> "(" | Rparen -> ")"
  | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]"
  | Comma -> "," | Semi -> ";" | Colon -> ":" | Dot -> "."
  | Assign -> "="
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Amp_amp -> "&&" | Bar_bar -> "||" | Bang -> "!"
  | Amp -> "&" | Bar -> "|" | Caret -> "^"
  | Shl -> "<<" | Shr -> ">>"
  | Triple_lt -> "<<<" | Triple_gt -> ">>>"
  | Eof -> "end of input"
