(** Parser for the [#pragma dp] directive (Table I).

    Accepts the clause list after [#pragma], e.g.
    [dp consldt(block) buffer(custom, perBufferSize: 256, totalSize: 1048576)
     work(curr) threads(256) blocks(13)].

    [consldt] and [work] are mandatory; everything else is optional, as in
    the paper. *)

module Pragma = Dpc_kir.Pragma

exception Pragma_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Pragma_error s)) fmt

(* Tiny scanner over the pragma text: identifiers, integers, punctuation. *)
type tok = Id of string | Num of int | Punct of char

let scan (s : string) : tok list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if Lexer.is_ident_start c then begin
      let start = !i in
      while !i < n && Lexer.is_ident s.[!i] do
        incr i
      done;
      out := Id (String.sub s start (!i - start)) :: !out
    end
    else if Lexer.is_digit c then begin
      let start = !i in
      while !i < n && Lexer.is_digit s.[!i] do
        incr i
      done;
      out := Num (int_of_string (String.sub s start (!i - start))) :: !out
    end
    else if c = '(' || c = ')' || c = ',' || c = ':' then begin
      out := Punct c :: !out;
      incr i
    end
    else error "unexpected character %C in #pragma dp" c
  done;
  List.rev !out

type clause_acc = {
  mutable granularity : Pragma.granularity option;
  mutable buffer : Pragma.buffer_alloc;
  mutable per_buffer_size : Pragma.size option;
  mutable total_size : int option;
  mutable work : string list;
  mutable threads : int option;
  mutable blocks : int option;
}

(* Parse the comma-separated argument list of one clause; returns the raw
   items, where an item is either a lone token or a [key: value] pair. *)
let rec parse_args acc = function
  | Punct ')' :: rest -> (List.rev acc, rest)
  | Punct ',' :: rest -> parse_args acc rest
  | Id key :: Punct ':' :: value :: rest ->
    parse_args (`Pair (key, value) :: acc) rest
  | (Id _ as t) :: rest | (Num _ as t) :: rest ->
    parse_args (`Single t :: acc) rest
  | Punct c :: _ -> error "unexpected %C in clause arguments" c
  | [] -> error "unterminated clause argument list"

let clause_of acc name args =
  match (name, args) with
  | "consldt", [ `Single (Id g) ] ->
    acc.granularity <-
      Some
        (match g with
        | "warp" -> Pragma.Warp
        | "block" -> Pragma.Block
        | "grid" -> Pragma.Grid
        | other -> error "unknown consolidation granularity %S" other)
  | "consldt", _ -> error "consldt expects exactly one of warp|block|grid"
  | "buffer", items ->
    List.iter
      (function
        | `Single (Id "default") -> acc.buffer <- Pragma.Default
        | `Single (Id "halloc") -> acc.buffer <- Pragma.Halloc
        | `Single (Id "custom") -> acc.buffer <- Pragma.Custom
        | `Pair ("perBufferSize", Num n) ->
          acc.per_buffer_size <- Some (Pragma.Size_const n)
        | `Pair ("perBufferSize", Id v) ->
          acc.per_buffer_size <- Some (Pragma.Size_var v)
        | `Pair ("totalSize", Num n) -> acc.total_size <- Some n
        | `Single (Id other) -> error "unknown buffer allocator %S" other
        | `Single (Num _) | `Single (Punct _) | `Pair _ ->
          error "malformed buffer clause")
      items
  | "work", items ->
    acc.work <-
      List.map
        (function
          | `Single (Id v) -> v
          | _ -> error "work clause takes a list of variable names")
        items
  | "threads", [ `Single (Num n) ] -> acc.threads <- Some n
  | "threads", _ -> error "threads expects one integer"
  | "blocks", [ `Single (Num n) ] -> acc.blocks <- Some n
  | "blocks", _ -> error "blocks expects one integer"
  | other, _ -> error "unknown #pragma dp clause %S" other

(** Parse the text following [#pragma] (e.g. ["dp consldt(grid) work(x)"]).
    Returns [None] if the pragma is not a [dp] directive.  [line] is the
    source line of the directive, recorded for diagnostics. *)
let parse ?(line = 0) (text : string) : Pragma.t option =
  match scan text with
  | Id "dp" :: rest ->
    let acc =
      {
        granularity = None;
        buffer = Pragma.Custom;
        per_buffer_size = None;
        total_size = None;
        work = [];
        threads = None;
        blocks = None;
      }
    in
    let rec clauses = function
      | [] -> ()
      | Id name :: Punct '(' :: rest ->
        let args, rest = parse_args [] rest in
        clause_of acc name args;
        clauses rest
      | t :: _ ->
        error "expected a clause, found %s"
          (match t with
          | Id s -> s
          | Num n -> string_of_int n
          | Punct c -> String.make 1 c)
    in
    clauses rest;
    let granularity =
      match acc.granularity with
      | Some g -> g
      | None -> error "#pragma dp requires a consldt clause"
    in
    if acc.work = [] then error "#pragma dp requires a work clause";
    Some
      (Pragma.make ~granularity ~work:acc.work ~buffer:acc.buffer
         ?per_buffer_size:acc.per_buffer_size ?total_size:acc.total_size
         ?threads:acc.threads ?blocks:acc.blocks ~line ())
  | _ -> None
