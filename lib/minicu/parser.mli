(** Recursive-descent parser for MiniCU, producing kernel IR directly.

    MiniCU is this project's CUDA-lite concrete syntax; its grammar is
    documented in the implementation header and round-trips with the
    printer ({!Dpc_kir.Pp}), which is what makes the consolidation
    compiler genuinely source-to-source. *)

exception Parse_error of { line : int; msg : string }

(** Parse a full source file (a sequence of [__global__] kernels).
    @raise Parse_error / {!Lexer.Lex_error} with line numbers. *)
val parse_program : string -> Dpc_kir.Kernel.Program.t

(** Parse exactly one kernel definition.
    @raise Parse_error on trailing input. *)
val parse_kernel_string : string -> Dpc_kir.Kernel.t
