(** Hand-written lexer for MiniCU.

    Handles [//] and [/* */] comments, decimal and hexadecimal (C99 [%a])
    float literals with an optional [f] suffix, the CUDA launch brackets
    [<<<] / [>>>], and [#pragma] lines (captured whole, parsed later by
    {!Pragma_parser}). *)

exception Lex_error of { line : int; msg : string }

let error line fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error { line; msg })) fmt

type lexed = { tok : Token.t; line : int }

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then error !line "unterminated comment"
    end
    else if c = '#' then begin
      (* #pragma line: capture the rest of the line verbatim. *)
      let start = !i in
      while !i < n && src.[!i] <> '\n' do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      let prefix = "#pragma" in
      if
        String.length text >= String.length prefix
        && String.sub text 0 (String.length prefix) = prefix
      then
        emit
          (Token.Pragma
             (String.trim
                (String.sub text (String.length prefix)
                   (String.length text - String.length prefix))))
      else error !line "unknown preprocessor directive: %s" text
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (Token.Ident (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      let is_hex_lit = c = '0' && (peek 1 = 'x' || peek 1 = 'X') in
      if is_hex_lit then begin
        i := !i + 2;
        while !i < n && (is_hex src.[!i] || src.[!i] = '.') do
          incr i
        done;
        (* Optional binary exponent: p[+-]?digits *)
        if !i < n && (src.[!i] = 'p' || src.[!i] = 'P') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end
      end;
      let seen_dot = ref false and seen_exp = ref false in
      if not is_hex_lit then
        while
          !i < n
          && (is_digit src.[!i]
             || (src.[!i] = '.' && not !seen_dot)
             || ((src.[!i] = 'e' || src.[!i] = 'E') && not !seen_exp)
             || ((src.[!i] = '+' || src.[!i] = '-')
                && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
        do
          if src.[!i] = '.' then seen_dot := true;
          if src.[!i] = 'e' || src.[!i] = 'E' then begin
            seen_exp := true;
            seen_dot := true
          end;
          incr i
        done;
      let text = String.sub src start (!i - start) in
      let has_f_suffix = !i < n && (src.[!i] = 'f' || src.[!i] = 'F') in
      if has_f_suffix then incr i;
      let is_float =
        has_f_suffix
        || String.contains text '.'
        || String.contains text 'p'
        || String.contains text 'P'
        || ((not is_hex_lit) && (String.contains text 'e' || String.contains text 'E'))
      in
      if is_float then
        match float_of_string_opt text with
        | Some f -> emit (Token.Float_lit f)
        | None -> error !line "bad float literal %S" text
      else (
        match int_of_string_opt text with
        | Some v -> emit (Token.Int_lit v)
        | None -> error !line "bad integer literal %S" text)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let adv k tok =
        i := !i + k;
        emit tok
      in
      match three with
      | "<<<" -> adv 3 Token.Triple_lt
      | ">>>" -> adv 3 Token.Triple_gt
      | _ -> (
        match two with
        | "==" -> adv 2 Token.Eq
        | "!=" -> adv 2 Token.Ne
        | "<=" -> adv 2 Token.Le
        | ">=" -> adv 2 Token.Ge
        | "&&" -> adv 2 Token.Amp_amp
        | "||" -> adv 2 Token.Bar_bar
        | "<<" -> adv 2 Token.Shl
        | ">>" -> adv 2 Token.Shr
        | _ -> (
          match c with
          | '(' -> adv 1 Token.Lparen
          | ')' -> adv 1 Token.Rparen
          | '{' -> adv 1 Token.Lbrace
          | '}' -> adv 1 Token.Rbrace
          | '[' -> adv 1 Token.Lbracket
          | ']' -> adv 1 Token.Rbracket
          | ',' -> adv 1 Token.Comma
          | ';' -> adv 1 Token.Semi
          | ':' -> adv 1 Token.Colon
          | '.' -> adv 1 Token.Dot
          | '=' -> adv 1 Token.Assign
          | '+' -> adv 1 Token.Plus
          | '-' -> adv 1 Token.Minus
          | '*' -> adv 1 Token.Star
          | '/' -> adv 1 Token.Slash
          | '%' -> adv 1 Token.Percent
          | '<' -> adv 1 Token.Lt
          | '>' -> adv 1 Token.Gt
          | '!' -> adv 1 Token.Bang
          | '&' -> adv 1 Token.Amp
          | '|' -> adv 1 Token.Bar
          | '^' -> adv 1 Token.Caret
          | _ -> error !line "unexpected character %C" c))
    end
  done;
  emit Token.Eof;
  List.rev !toks
