(** Parser for the [#pragma dp] directive (Table I of the paper).

    Accepts the text after [#pragma], e.g.
    [dp consldt(block) buffer(custom, perBufferSize: 256) work(curr)]. *)

exception Pragma_error of string

(** [parse text] is [Some pragma] for a [dp] directive, [None] for any
    other pragma (which callers should ignore, as C compilers do).
    [line] is the directive's source line, stored in the result for
    diagnostics (default 0 = unknown).
    @raise Pragma_error on a malformed [dp] directive (unknown clause,
    missing [consldt]/[work], bad arguments). *)
val parse : ?line:int -> string -> Dpc_kir.Pragma.t option
