(** Typed simulator events (`Dpc_prof`).

    The timing model publishes its interesting state transitions through
    an optional {!sink}: grid lifecycle (enqueued in the pending pool,
    launched by the grid dispatcher, first block started, completed),
    SMX residency changes, parent swap-out/swap-in around
    [cudaDeviceSynchronize], pending-pool pressure, and allocator
    activity replayed from the recorded traces.  Each event is stamped
    with the simulated cycle, the grid id, its kernel name and nesting
    depth, and the SMX involved ([-1] when no single SMX applies).

    Sinks are per-run values — no module-global state — so concurrent
    simulations on separate domains record independent, deterministic
    streams. *)

type kind =
  | Grid_enqueued of { pending : int; virtualized : bool }
      (** entered the pending pool; [pending] is the pool population
          including this grid, [virtualized] whether it spilled to the
          software-managed pool *)
  | Grid_launched of { pending_left : int }
      (** picked by the grid dispatcher; its blocks start placement *)
  | Grid_started  (** first block became resident on an SMX *)
  | Grid_completed of {
      issue_cycles : int;
      weighted_active : float;
      dram_transactions : int;
      l2_hits : int;
      bank_replays : int;
      mshr_stalls : int;
      blocks : int;
      warps : int;
    }  (** all blocks and transitive children done; carries the grid's
          functional trace totals for per-kernel aggregation *)
  | Block_placed of { block : int; warps : int }
  | Block_removed of { block : int; warps : int }
  | Swap_out of { block : int }
      (** parent block suspended at a device sync with children in
          flight (Section III.B swap) *)
  | Swap_in of { block : int }
      (** suspended parent re-queued after its last child completed *)
  | Pool_high_water of { level : int }
      (** pending-pool population reached a new maximum *)
  | Pool_virtualized of { pending : int }
      (** a launch overflowed the fixed pool into the virtualized one *)
  | Alloc of { calls : int; fallbacks : int; cycles : int }
      (** consolidation-buffer allocator calls charged to the segment
          that just retired *)

type t = {
  cycles : float;  (** simulated device cycles *)
  gid : int;
  kernel : string;
  depth : int;
  smx : int;  (** -1 when the event is not tied to one SMX *)
  kind : kind;
}

type sink = t -> unit

let kind_name = function
  | Grid_enqueued _ -> "grid_enqueued"
  | Grid_launched _ -> "grid_launched"
  | Grid_started -> "grid_started"
  | Grid_completed _ -> "grid_completed"
  | Block_placed _ -> "block_placed"
  | Block_removed _ -> "block_removed"
  | Swap_out _ -> "swap_out"
  | Swap_in _ -> "swap_in"
  | Pool_high_water _ -> "pool_high_water"
  | Pool_virtualized _ -> "pool_virtualized"
  | Alloc _ -> "alloc"

(* --- recorder ------------------------------------------------------------ *)

let dummy =
  { cycles = 0.0; gid = -1; kernel = ""; depth = 0; smx = -1;
    kind = Grid_started }

(** Growable in-memory sink.  One recorder per run; the backing
    {!Dpc_util.Vec} doubles amortized, so recording is allocation-light
    even for launch-storm traces. *)
type recorder = { buf : t Dpc_util.Vec.t }

let recorder () = { buf = Dpc_util.Vec.create ~dummy }

let sink r : sink = fun ev -> Dpc_util.Vec.push r.buf ev

let events r = Dpc_util.Vec.to_array r.buf

let length r = Dpc_util.Vec.length r.buf

(* --- JSON view ----------------------------------------------------------- *)

let kind_args = function
  | Grid_enqueued { pending; virtualized } ->
    [ ("pending", Json.Int pending); ("virtualized", Json.Bool virtualized) ]
  | Grid_launched { pending_left } ->
    [ ("pending_left", Json.Int pending_left) ]
  | Grid_started -> []
  | Grid_completed
      { issue_cycles; weighted_active; dram_transactions; l2_hits;
        bank_replays; mshr_stalls; blocks; warps } ->
    [
      ("issue_cycles", Json.Int issue_cycles);
      ("weighted_active", Json.Float weighted_active);
      ("dram_transactions", Json.Int dram_transactions);
      ("l2_hits", Json.Int l2_hits);
      ("bank_replays", Json.Int bank_replays);
      ("mshr_stalls", Json.Int mshr_stalls);
      ("blocks", Json.Int blocks);
      ("warps", Json.Int warps);
    ]
  | Block_placed { block; warps } ->
    [ ("block", Json.Int block); ("warps", Json.Int warps) ]
  | Block_removed { block; warps } ->
    [ ("block", Json.Int block); ("warps", Json.Int warps) ]
  | Swap_out { block } -> [ ("block", Json.Int block) ]
  | Swap_in { block } -> [ ("block", Json.Int block) ]
  | Pool_high_water { level } -> [ ("level", Json.Int level) ]
  | Pool_virtualized { pending } -> [ ("pending", Json.Int pending) ]
  | Alloc { calls; fallbacks; cycles } ->
    [
      ("calls", Json.Int calls);
      ("fallbacks", Json.Int fallbacks);
      ("cycles", Json.Int cycles);
    ]

let to_json ev =
  Json.Obj
    ([
       ("ev", Json.String (kind_name ev.kind));
       ("cycles", Json.Float ev.cycles);
       ("gid", Json.Int ev.gid);
       ("kernel", Json.String ev.kernel);
       ("depth", Json.Int ev.depth);
       ("smx", Json.Int ev.smx);
     ]
    @ kind_args ev.kind)
