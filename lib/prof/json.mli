(** Minimal self-contained JSON tree, printer and parser.

    The profiling exporters must emit machine-readable output without
    adding dependencies the container may not have, and the test suite
    must be able to re-parse what was written (trace files, metric
    snapshots) to check invariants.  Printing is deterministic: object
    keys keep insertion order and floats use a fixed shortest-roundtrip
    format, so identical runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Serialize compactly (no whitespace).  Non-finite floats are not
    representable in JSON and raise [Invalid_argument]. *)
val to_string : t -> string

(** Serialize with two-space indentation and a trailing newline. *)
val to_string_pretty : t -> string

(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)
val parse : string -> t

(** Object member lookup ([None] on non-objects too). *)
val member : string -> t -> t option

(** Coercions, raising [Parse_error] on shape mismatches (they report
    schema violations when tests re-read exported files). [number]
    accepts both [Int] and [Float]. *)
val to_list : t -> t list

val to_int : t -> int
val number : t -> float
val to_str : t -> string
