type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- printing ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json: non-finite float is not representable";
  (* Shortest representation that round-trips; keep a decimal point or
     exponent so the value re-parses as a float. *)
  let s = Printf.sprintf "%.12g" f in
  let s = if Float.of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec print ~indent ~level buf v =
  let nl_pad lvl =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * lvl) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl_pad (level + 1);
        print ~indent ~level:(level + 1) buf item)
      items;
    nl_pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl_pad (level + 1);
        escape_into buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        print ~indent ~level:(level + 1) buf item)
      members;
    nl_pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  print ~indent:true ~level:0 buf v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "at offset %d: expected %c, found %c" c.pos ch x
  | None -> fail "at offset %d: expected %c, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at offset %d: invalid literal" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at offset %d" c.pos
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | None -> fail "unterminated escape at offset %d" c.pos
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.src then
            fail "truncated \\u escape at offset %d" c.pos;
          let hex = String.sub c.src c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape %S at offset %d" hex c.pos
          in
          c.pos <- c.pos + 4;
          (* The exporters only escape control characters; decode the
             ASCII range and keep anything else as a replacement. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | e -> fail "bad escape \\%c at offset %d" e c.pos));
      go ()
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match Float.of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at offset %d" c.pos
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let members = ref [] in
      let rec members_loop () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        members := (k, v) :: !members;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members_loop ()
        | _ -> expect c '}'
      in
      members_loop ();
      Obj (List.rev !members)
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items_loop ()
        | _ -> expect c ']'
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character %c at offset %d" ch c.pos

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "trailing garbage at offset %d" c.pos;
  v

(* --- accessors ---------------------------------------------------------- *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let to_list = function
  | List l -> l
  | _ -> fail "expected a JSON array"

let to_int = function
  | Int i -> i
  | _ -> fail "expected a JSON integer"

let number = function
  | Int i -> Float.of_int i
  | Float f -> f
  | _ -> fail "expected a JSON number"

let to_str = function
  | String s -> s
  | _ -> fail "expected a JSON string"
