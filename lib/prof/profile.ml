(** Per-kernel profiles — the simulator's answer to nvprof's "GPU
    summary" (the numbers the paper quotes for Figs. 7-10).

    Folds an event stream into one row per (kernel name x nesting
    depth): launch count, total/mean/max grid duration, time spent
    waiting in the launch queue, warp execution efficiency, DRAM
    transactions, and allocator activity.  Grid duration is measured
    from the first block becoming resident to grid completion (the
    profiler's kernel-duration definition); queue wait is from entering
    the pending pool to being picked by the grid dispatcher. *)

type row = {
  kernel : string;
  depth : int;
  launches : int;
  total_cycles : float;
  mean_cycles : float;
  max_cycles : float;
  queue_wait : float;  (** summed enqueue-to-dispatch cycles *)
  warp_efficiency : float;
  dram_transactions : int;
  l2_hits : int;
  bank_replays : int;  (** shared-memory bank-conflict replays *)
  mshr_stalls : int;  (** MSHR-full stall transactions *)
  alloc_calls : int;
  alloc_fallbacks : int;
}

(* Per-grid lifecycle scratch, keyed by grid id. *)
type grid_acc = {
  mutable enqueued_at : float;
  mutable launched_at : float;
  mutable started_at : float;
}

type acc = {
  key : string * int;
  mutable launches : int;
  mutable total : float;
  mutable max : float;
  mutable wait : float;
  mutable issue : int;
  mutable weighted : float;
  mutable dram : int;
  mutable l2 : int;
  mutable bank_rp : int;
  mutable mshr_st : int;
  mutable allocs : int;
  mutable fallbacks : int;
}

let of_events (events : Event.t array) : row list =
  let grids : (int, grid_acc) Hashtbl.t = Hashtbl.create 64 in
  let kernels : (string * int, acc) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let grid gid =
    match Hashtbl.find_opt grids gid with
    | Some g -> g
    | None ->
      let g = { enqueued_at = 0.0; launched_at = 0.0; started_at = 0.0 } in
      Hashtbl.add grids gid g;
      g
  in
  let kacc (ev : Event.t) =
    let key = (ev.Event.kernel, ev.Event.depth) in
    match Hashtbl.find_opt kernels key with
    | Some a -> a
    | None ->
      let a =
        { key; launches = 0; total = 0.0; max = 0.0; wait = 0.0; issue = 0;
          weighted = 0.0; dram = 0; l2 = 0; bank_rp = 0; mshr_st = 0;
          allocs = 0; fallbacks = 0 }
      in
      Hashtbl.add kernels key a;
      order := key :: !order;
      a
  in
  Array.iter
    (fun (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Grid_enqueued _ -> (grid ev.Event.gid).enqueued_at <- ev.Event.cycles
      | Event.Grid_launched _ ->
        let g = grid ev.Event.gid in
        g.launched_at <- ev.Event.cycles;
        g.started_at <- ev.Event.cycles;
        let a = kacc ev in
        a.launches <- a.launches + 1;
        a.wait <- a.wait +. (g.launched_at -. g.enqueued_at)
      | Event.Grid_started -> (grid ev.Event.gid).started_at <- ev.Event.cycles
      | Event.Grid_completed
          { issue_cycles; weighted_active; dram_transactions; l2_hits;
            bank_replays; mshr_stalls; _ } ->
        let g = grid ev.Event.gid in
        let a = kacc ev in
        let dur = ev.Event.cycles -. g.started_at in
        a.total <- a.total +. dur;
        if dur > a.max then a.max <- dur;
        a.issue <- a.issue + issue_cycles;
        a.weighted <- a.weighted +. weighted_active;
        a.dram <- a.dram + dram_transactions;
        a.l2 <- a.l2 + l2_hits;
        a.bank_rp <- a.bank_rp + bank_replays;
        a.mshr_st <- a.mshr_st + mshr_stalls
      | Event.Alloc { calls; fallbacks; _ } ->
        let a = kacc ev in
        a.allocs <- a.allocs + calls;
        a.fallbacks <- a.fallbacks + fallbacks
      | Event.Block_placed _ | Event.Block_removed _ | Event.Swap_out _
      | Event.Swap_in _ | Event.Pool_high_water _ | Event.Pool_virtualized _
        -> ())
    events;
  List.rev_map
    (fun key ->
      let a = Hashtbl.find kernels key in
      let kernel, depth = a.key in
      {
        kernel;
        depth;
        launches = a.launches;
        total_cycles = a.total;
        mean_cycles =
          (if a.launches = 0 then 0.0
           else a.total /. Float.of_int a.launches);
        max_cycles = a.max;
        queue_wait = a.wait;
        warp_efficiency =
          (if a.issue = 0 then 1.0 else a.weighted /. Float.of_int a.issue);
        dram_transactions = a.dram;
        l2_hits = a.l2;
        bank_replays = a.bank_rp;
        mshr_stalls = a.mshr_st;
        alloc_calls = a.allocs;
        alloc_fallbacks = a.fallbacks;
      })
    !order
  |> List.sort (fun r1 r2 ->
         match compare r1.depth r2.depth with
         | 0 -> compare r1.kernel r2.kernel
         | c -> c)

(* --- rendering ----------------------------------------------------------- *)

let table rows =
  let t =
    Dpc_util.Table.create ~title:"per-kernel profile (nvprof GPU summary)"
      ~headers:
        [ "kernel"; "depth"; "launches"; "total cyc"; "mean cyc"; "max cyc";
          "queue wait"; "warp eff"; "DRAM"; "allocs" ]
      ~aligns:
        Dpc_util.Table.
          [ Left; Right; Right; Right; Right; Right; Right; Right; Right;
            Right ]
      ()
  in
  List.iter
    (fun r ->
      Dpc_util.Table.add_row t
        [
          r.kernel;
          string_of_int r.depth;
          string_of_int r.launches;
          Printf.sprintf "%.0f" r.total_cycles;
          Printf.sprintf "%.0f" r.mean_cycles;
          Printf.sprintf "%.0f" r.max_cycles;
          Printf.sprintf "%.0f" r.queue_wait;
          Dpc_util.Table.fmt_pct r.warp_efficiency;
          string_of_int r.dram_transactions;
          string_of_int r.alloc_calls;
        ])
    rows;
  t

let row_to_json r =
  Json.Obj
    [
      ("kernel", Json.String r.kernel);
      ("depth", Json.Int r.depth);
      ("launches", Json.Int r.launches);
      ("total_cycles", Json.Float r.total_cycles);
      ("mean_cycles", Json.Float r.mean_cycles);
      ("max_cycles", Json.Float r.max_cycles);
      ("queue_wait", Json.Float r.queue_wait);
      ("warp_efficiency", Json.Float r.warp_efficiency);
      ("dram_transactions", Json.Int r.dram_transactions);
      ("l2_hits", Json.Int r.l2_hits);
      ("bank_replays", Json.Int r.bank_replays);
      ("mshr_stalls", Json.Int r.mshr_stalls);
      ("alloc_calls", Json.Int r.alloc_calls);
      ("alloc_fallbacks", Json.Int r.alloc_fallbacks);
    ]

let to_json rows = Json.List (List.map row_to_json rows)
