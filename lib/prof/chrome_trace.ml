(** Chrome trace-event export.

    Converts a recorded event stream into the Trace Event Format JSON
    consumed by Perfetto and [chrome://tracing]: one track (thread) per
    SMX carrying a duration slice for every block-residency interval,
    plus a launch-queue track showing each grid's stay in the pending
    pool, a "pending kernels" counter series, and instant markers for
    swap-outs/swap-ins.  Timestamps are simulated cycles.

    Layout: pid 0 is the simulated device; tids [0 .. num_smx-1] are the
    SMXs and tid [num_smx] is the launch queue. *)

let queue_tid ~num_smx = num_smx

let meta_events ~num_smx =
  let named name tid =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String "simulated GPU") ]);
    ]
  :: List.init num_smx (fun i -> named (Printf.sprintf "SMX %d" i) i)
  @ [ named "launch queue" (queue_tid ~num_smx) ]

let slice ~name ~cat ~ts ~dur ~tid ~args =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String "X");
      ("ts", Json.Float ts);
      ("dur", Json.Float dur);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let instant ~name ~ts ~tid ~args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let counter ~name ~ts ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Float ts);
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("pending", Json.Int value) ]);
    ]

(** Build the trace document.  [num_smx] fixes the track layout (taken
    from the device config, not inferred, so empty SMXs still appear). *)
let of_events ~num_smx (events : Event.t array) : Json.t =
  let out = ref (List.rev (meta_events ~num_smx)) in
  let emit j = out := j :: !out in
  (* Open block-residency intervals, keyed by (gid, block).  A block can
     be resident several times (sync swaps, barrier re-queues), but at
     most once at any instant, so one slot per key suffices. *)
  let open_blocks : (int * int, float * int * Event.t) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Open pending-pool stays, keyed by gid. *)
  let open_queue : (int, float * Event.t) Hashtbl.t = Hashtbl.create 64 in
  let grid_args (ev : Event.t) =
    [ ("gid", Json.Int ev.Event.gid); ("depth", Json.Int ev.Event.depth) ]
  in
  Array.iter
    (fun (ev : Event.t) ->
      let ts = ev.Event.cycles in
      match ev.Event.kind with
      | Event.Grid_enqueued { pending; virtualized } ->
        Hashtbl.replace open_queue ev.Event.gid (ts, ev);
        emit (counter ~name:"pending kernels" ~ts ~value:pending);
        if virtualized then
          emit
            (instant ~name:"virtualized launch" ~ts
               ~tid:(queue_tid ~num_smx) ~args:(grid_args ev))
      | Event.Grid_launched { pending_left } ->
        (match Hashtbl.find_opt open_queue ev.Event.gid with
        | Some (t0, ev0) ->
          Hashtbl.remove open_queue ev.Event.gid;
          emit
            (slice ~name:ev0.Event.kernel ~cat:"queue" ~ts:t0 ~dur:(ts -. t0)
               ~tid:(queue_tid ~num_smx) ~args:(grid_args ev0))
        | None -> ());
        emit (counter ~name:"pending kernels" ~ts ~value:pending_left)
      | Event.Block_placed { block; warps } ->
        Hashtbl.replace open_blocks (ev.Event.gid, block)
          (ts, warps, ev)
      | Event.Block_removed { block; _ } -> (
        match Hashtbl.find_opt open_blocks (ev.Event.gid, block) with
        | Some (t0, warps, ev0) ->
          Hashtbl.remove open_blocks (ev.Event.gid, block);
          emit
            (slice
               ~name:(Printf.sprintf "%s b%d" ev0.Event.kernel block)
               ~cat:"block" ~ts:t0 ~dur:(ts -. t0) ~tid:ev0.Event.smx
               ~args:(("warps", Json.Int warps) :: grid_args ev0))
        | None -> ())
      | Event.Swap_out { block } ->
        emit
          (instant
             ~name:(Printf.sprintf "swap out %s b%d" ev.Event.kernel block)
             ~ts
             ~tid:(if ev.Event.smx >= 0 then ev.Event.smx else queue_tid ~num_smx)
             ~args:(grid_args ev))
      | Event.Swap_in { block } ->
        emit
          (instant
             ~name:(Printf.sprintf "swap in %s b%d" ev.Event.kernel block)
             ~ts ~tid:(queue_tid ~num_smx) ~args:(grid_args ev))
      | Event.Grid_started | Event.Grid_completed _ | Event.Pool_high_water _
      | Event.Pool_virtualized _ | Event.Alloc _ -> ())
    events;
  (* Slices are emitted at interval close; restore start-time order (the
     format does not require it, but sorted traces diff cleanly and make
     the monotonicity invariants checkable from the file alone). *)
  let ts_of j =
    match Json.member "ts" j with Some v -> Json.number v | None -> -1.0
  in
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (ts_of a) (ts_of b))
      (List.rev !out)
  in
  Json.Obj
    [
      ("traceEvents", Json.List sorted);
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "simulated device cycles");
            ("num_smx", Json.Int num_smx);
          ] );
    ]

let to_string ~num_smx events = Json.to_string_pretty (of_events ~num_smx events)
