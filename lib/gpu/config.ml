(** Device model configuration.

    All architectural limits and cost-model constants of the simulated GPU
    live here, in one record, so that every experiment states its device
    assumptions explicitly.  The default instance, {!k20c}, is modeled on
    the NVIDIA Tesla K20c used in the paper (13 SMX Kepler GK110, CUDA 7.0):
    the architectural limits are the documented ones, and the dynamic
    parallelism overheads are set to the published magnitudes (device launch
    overhead in the tens of microseconds, 2048-entry fixed pending pool,
    expensive virtualized pool, parent swap on synchronization).

    Cycle costs are in device clock cycles (K20c core clock: 706 MHz). *)

type t = {
  name : string;
  clock_mhz : float;  (** core clock, used only to report times in ms *)
  num_smx : int;  (** streaming multiprocessors *)
  warp_size : int;
  max_warps_per_smx : int;  (** occupancy limit: resident warps *)
  max_blocks_per_smx : int;  (** occupancy limit: resident blocks *)
  max_threads_per_block : int;
  max_grid_blocks : int;  (** max blocks in one grid (x-dimension) *)
  issue_rate : int;  (** warp-instructions issued per cycle per SMX *)
  max_concurrent_grids : int;  (** HW limit on concurrently executing grids *)
  max_nesting_depth : int;  (** DP nesting levels *)
  fixed_pool_capacity : int;  (** pending-launch fixed pool entries *)
  (* --- dynamic-parallelism cost model (cycles unless noted) --- *)
  host_launch_latency : int;  (** host-side kernel launch latency *)
  device_launch_latency : int;  (** device-side launch -> child schedulable *)
  launch_issue_cycles : int;  (** cycles the launching warp spends on a
                                  device-side launch instruction (parameter
                                  parsing and buffering by the runtime) *)
  launch_dram_transactions : int;  (** traffic for parameter buffering *)
  dispatch_interval : int;  (** min cycles between grid dispatches; models
                                the hardware grid-management unit *)
  virtual_dispatch_interval : int;
      (** dispatch interval while the pending pool is virtualized: the
          software-managed pool is an order of magnitude slower, which is
          the performance cliff basic-dp codes fall off (Section III.B) *)
  virtual_pool_penalty : int;  (** extra latency when fixed pool overflows *)
  virtual_pool_dram : int;  (** extra traffic per virtualized pending kernel *)
  sync_swap_cycles : int;  (** parent block swap-out + swap-in on
                               [cudaDeviceSynchronize] *)
  sync_swap_dram : int;  (** swap traffic per suspended block *)
  block_start_cycles : int;
      (** fixed CTA scheduling/startup cost charged when a block begins
          executing on an SMX; penalizes configurations made of many tiny
          blocks (e.g. 1-1 mapping) *)
  (* --- instruction cost model --- *)
  alu_cycles : int;  (** simple arithmetic / control instruction *)
  mem_issue_cycles : int;  (** issue cost of a load/store *)
  dram_transaction_cycles : int;  (** amortized cost per 128B DRAM transaction *)
  l2_hit_cycles : int;  (** cost per 128B segment served by L2 *)
  atomic_cycles : int;  (** per-lane atomic operation cost *)
  mem_segment_bytes : int;  (** coalescing granularity *)
  l2_segments : int;  (** L2 capacity in segments (1.5 MB on K20c) *)
  (* --- deep memory-hierarchy model (Memmodel feature gates) ---
     Every feature defaults to "off" in {!k20c} with the exact semantics
     the flat model always had, so presets without these knobs produce
     byte-identical traces and metrics. *)
  shared_banks : int;
      (** shared-memory banks; [0] disables bank-conflict modeling *)
  bank_replay_cycles : int;
      (** replay cost per serialized bank-conflict access *)
  mshr_per_warp : int;
      (** outstanding DRAM transactions a warp may have in flight
          (miss-status holding registers); [0] disables the limit *)
  mshr_retire_per_access : int;
      (** outstanding transactions retired between a warp's consecutive
          memory instructions (the deterministic drain model) *)
  mshr_stall_cycles : int;
      (** stall cost per transaction issued past the MSHR budget *)
  issue_per_warp : int;
      (** instructions one warp may dual-issue per cycle ([1] or [2]);
          scales the per-block issue-rate cap in {!Timing} *)
}

let k20c =
  {
    name = "K20c (simulated)";
    clock_mhz = 706.0;
    num_smx = 13;
    warp_size = 32;
    max_warps_per_smx = 64;
    max_blocks_per_smx = 16;
    max_threads_per_block = 1024;
    max_grid_blocks = 65535;
    issue_rate = 4;
    max_concurrent_grids = 32;
    max_nesting_depth = 24;
    fixed_pool_capacity = 2048;
    host_launch_latency = 7_000;
    device_launch_latency = 5_000;
    launch_issue_cycles = 400;
    launch_dram_transactions = 8;
    dispatch_interval = 400;
    virtual_dispatch_interval = 2000;
    virtual_pool_penalty = 2_500;
    virtual_pool_dram = 16;
    sync_swap_cycles = 1_200;
    sync_swap_dram = 24;
    block_start_cycles = 200;
    alu_cycles = 1;
    mem_issue_cycles = 2;
    dram_transaction_cycles = 16;
    l2_hit_cycles = 4;
    atomic_cycles = 12;
    mem_segment_bytes = 128;
    l2_segments = 12_288;
    shared_banks = 0;
    bank_replay_cycles = 1;
    mshr_per_warp = 0;
    mshr_retire_per_access = 16;
    mshr_stall_cycles = 4;
    issue_per_warp = 1;
  }

(** A deliberately small device used by unit tests so that occupancy and
    concurrency effects show up at tiny problem sizes. *)
let test_device =
  {
    k20c with
    name = "test-device";
    num_smx = 2;
    max_warps_per_smx = 8;
    max_blocks_per_smx = 4;
    max_concurrent_grids = 4;
    fixed_pool_capacity = 16;
    l2_segments = 64;
  }

(** {!k20c} with the deep memory-hierarchy features switched on:
    32-bank shared memory with conflict replay, a 64-entry per-warp MSHR
    file bounding outstanding DRAM transactions, and dual-issue warp
    schedulers (Kepler issues up to two independent instructions per
    warp per cycle).  Same architectural limits as [k20c], so crossover
    shifts against it isolate the memory model. *)
let k20c_deep =
  {
    k20c with
    name = "K20c deep (simulated)";
    shared_banks = 32;
    bank_replay_cycles = 2;
    mshr_per_warp = 64;
    mshr_retire_per_access = 8;
    mshr_stall_cycles = 4;
    issue_per_warp = 2;
  }

(** A milo832-style small core (SNIPPETS.md section 3): one SMX-class
    core running 32 warps of fine-grained multithreading (1024 threads
    — enough resident warps that recursive DP parents suspended on a
    child sync cannot starve their children of warp slots), dual-issue,
    a 32-bank scratchpad with conflict replay and a small MSHR file:
    16 outstanding memory transactions per warp draining slowly (one
    retired per memory instruction), so scatter-heavy warps stall on a
    full miss queue.  The pending pool and L2 shrink with the core so
    dynamic-parallelism pressure shows up at unit-test problem sizes. *)
let milo832 =
  {
    k20c with
    name = "milo832 (simulated)";
    num_smx = 1;
    max_warps_per_smx = 32;
    max_blocks_per_smx = 8;
    issue_rate = 2;
    max_concurrent_grids = 8;
    fixed_pool_capacity = 256;
    l2_segments = 1_024;
    shared_banks = 32;
    bank_replay_cycles = 2;
    mshr_per_warp = 16;
    mshr_retire_per_access = 1;
    mshr_stall_cycles = 4;
    issue_per_warp = 2;
  }

(** The named-preset registry, in presentation order — the single list
    every preset-by-name surface (scenario codecs, CLI flags, README
    table) derives from. *)
let presets =
  [
    ("k20c", k20c);
    ("k20c-deep", k20c_deep);
    ("milo832", milo832);
    ("test-device", test_device);
  ]

let preset_names = List.map fst presets

(** Look up a preset by its registry name (case-insensitive). *)
let preset_opt name =
  List.assoc_opt (String.lowercase_ascii name) presets

(** Threads per warp rounded up. *)
let warps_per_block t ~block_dim = (block_dim + t.warp_size - 1) / t.warp_size

(** How many blocks of [block_dim] threads fit on one SMX (CUDA occupancy
    calculator, restricted to the thread and block limits we model). *)
let blocks_per_smx t ~block_dim =
  if block_dim <= 0 then invalid_arg "Config.blocks_per_smx: block_dim <= 0";
  let by_warps = t.max_warps_per_smx / warps_per_block t ~block_dim in
  Int.max 1 (Int.min t.max_blocks_per_smx by_warps)

(** Number of blocks needed to fill the whole device at full occupancy for
    a given block size; the paper's baseline configuration (B, T) before
    any KC_X downgrade. *)
let device_fill_blocks t ~block_dim = t.num_smx * blocks_per_smx t ~block_dim

let cycles_to_ms t cycles = Float.of_int cycles /. (t.clock_mhz *. 1000.0)
