(** Simulated global (device) memory.

    Global memory is a set of named buffers of 32-bit elements (ints or
    floats).  Each buffer has a stable byte base address, 128-byte aligned,
    so the interpreter can compute the DRAM segments touched by a warp
    access and count memory transactions the way the CUDA profiler does.

    Shared memory is per-block and short-lived; it is modeled separately
    inside the simulator and never appears here. *)

type data = I of int array | F of float array

type buf = {
  id : int;
  name : string;
  base : int;  (** byte address of element 0 *)
  data : data;
}

type t = {
  bufs : buf Dpc_util.Vec.t;
  mutable next_base : int;
  mutable bytes_allocated : int;
}

let elem_bytes = 4

let dummy_buf = { id = -1; name = "<dummy>"; base = 0; data = I [||] }

let create () =
  { bufs = Dpc_util.Vec.create ~dummy:dummy_buf;
    next_base = 0x1000; bytes_allocated = 0 }

let length_of_data = function I a -> Array.length a | F a -> Array.length a

let align_up v a = (v + a - 1) / a * a

let add_buf t name data =
  let len = length_of_data data in
  let base = align_up t.next_base 128 in
  let b = { id = Dpc_util.Vec.length t.bufs; name; base; data } in
  Dpc_util.Vec.push t.bufs b;
  t.next_base <- base + (len * elem_bytes);
  t.bytes_allocated <- t.bytes_allocated + (len * elem_bytes);
  b

(** Allocate a zero-initialized integer buffer. *)
let alloc_int t ~name len = add_buf t name (I (Array.make (Int.max 1 len) 0))

(** Allocate a zero-initialized float buffer. *)
let alloc_float t ~name len =
  add_buf t name (F (Array.make (Int.max 1 len) 0.0))

let of_int_array t ~name arr = add_buf t name (I (Array.copy arr))

let of_float_array t ~name arr = add_buf t name (F (Array.copy arr))

let get_buf t id =
  if id < 0 || id >= Dpc_util.Vec.length t.bufs then
    invalid_arg (Printf.sprintf "Memory.get_buf: bad buffer id %d" id);
  Dpc_util.Vec.get t.bufs id

let buf_count t = Dpc_util.Vec.length t.bufs

let buf_length b = length_of_data b.data

exception Out_of_bounds of string

let bounds_check b i =
  if i < 0 || i >= buf_length b then
    raise
      (Out_of_bounds
         (Printf.sprintf "buffer %S (%d elements): index %d" b.name
            (buf_length b) i))

let read_int b i =
  bounds_check b i;
  match b.data with
  | I a -> a.(i)
  | F a -> Float.to_int a.(i)

let read_float b i =
  bounds_check b i;
  match b.data with F a -> a.(i) | I a -> Float.of_int a.(i)

let write_int b i v =
  bounds_check b i;
  match b.data with I a -> a.(i) <- v | F a -> a.(i) <- Float.of_int v

let write_float b i v =
  bounds_check b i;
  match b.data with F a -> a.(i) <- v | I a -> a.(i) <- Float.to_int v

(** Byte address of element [i] of buffer [b]; used for coalescing. *)
let addr b i = b.base + (i * elem_bytes)

let int_contents b =
  match b.data with
  | I a -> Array.copy a
  | F _ -> invalid_arg "Memory.int_contents: float buffer"

let float_contents b =
  match b.data with
  | F a -> Array.copy a
  | I _ -> invalid_arg "Memory.float_contents: int buffer"
