(** Simulated global (device) memory.

    Global memory is a set of named buffers of 32-bit elements (ints or
    floats).  Each buffer has a stable, 128-byte-aligned byte base address,
    so the interpreter can compute the DRAM segments a warp access touches
    and count memory transactions the way the CUDA profiler does. *)

type data = I of int array | F of float array

type buf = private {
  id : int;
  name : string;
  base : int;  (** byte address of element 0 *)
  data : data;
}

type t

val elem_bytes : int

val create : unit -> t

(** Allocate a zero-initialized integer buffer (at least one element). *)
val alloc_int : t -> name:string -> int -> buf

(** Allocate a zero-initialized float buffer (at least one element). *)
val alloc_float : t -> name:string -> int -> buf

(** Copy a host array into a fresh device buffer. *)
val of_int_array : t -> name:string -> int array -> buf

val of_float_array : t -> name:string -> float array -> buf

(** @raise Invalid_argument for an unknown id. *)
val get_buf : t -> int -> buf

(** Number of buffers allocated so far. *)
val buf_count : t -> int

val buf_length : buf -> int

exception Out_of_bounds of string

(** Element accessors; cross-type access coerces (as reinterpreting a
    device pointer would, but with explicit conversion semantics).
    @raise Out_of_bounds outside [\[0, length)]. *)
val read_int : buf -> int -> int

val read_float : buf -> int -> float
val write_int : buf -> int -> int -> unit
val write_float : buf -> int -> float -> unit

(** Byte address of element [i]; used for coalescing. *)
val addr : buf -> int -> int

(** Copies of the contents (host read-back).
    @raise Invalid_argument on element-type mismatch. *)
val int_contents : buf -> int array

val float_contents : buf -> float array
