(** PageRank (push-based synchronous iterations, after [13]): each thread
    pushes its node's damped rank share to its out-neighbors with
    [atomicAdd]; high-degree nodes delegate the push to a child kernel.

    Dataset: citeseer_like.  Fixed iteration count so every variant does
    identical arithmetic (float addition order differs; verification uses
    a tolerance). *)

open Harness
module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Cpu = Dpc_graph.Cpu_ref

let name = "PageRank"
let dataset_name = "citeseer_like"
let threshold = 8
let iterations = 5
let damping = 0.85

let dp_source gran =
  Printf.sprintf
    {|
__global__ void pr_init(float* next, float base, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    next[tid] = base;
  }
}
__global__ void pr_child(int* row_ptr, int* col, float* pr, float* next, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  var share = 0.85f * pr[node] / (float)(end - start);
  while (start + t < end) {
    atomicAdd(next, col[start + t], share);
    t = t + blockDim.x;
  }
}
__global__ void pr_parent(int* row_ptr, int* col, float* pr, float* next, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(node)
      launch pr_child<<<1, 64>>>(row_ptr, col, pr, next, node);
    } else {
      if (deg > 0) {
        var share = 0.85f * pr[node] / (float)deg;
        for (var e = row_ptr[node]; e < row_ptr[node + 1]; e = e + 1) {
          atomicAdd(next, col[e], share);
        }
      }
    }
  }
}
|}
    (Dpc_kir.Pragma.granularity_to_string gran)

let flat_source =
  {|
__global__ void pr_init(float* next, float base, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    next[tid] = base;
  }
}
__global__ void pr_flat(int* row_ptr, int* col, float* pr, float* next, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var deg = row_ptr[tid + 1] - row_ptr[tid];
    if (deg > 0) {
      var share = 0.85f * pr[tid] / (float)deg;
      for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
        atomicAdd(next, col[e], share);
      }
    }
  }
}
|}

let programs ?cfg () =
  dp_programs ?cfg ~source:dp_source ~parent:"pr_parent" ~flat:flat_source ()

let tv_units ?cfg () =
  dp_tv_units ?cfg ~source:dp_source ~parent:"pr_parent" ()

let extras_spec : (string * extra_kind) list = []

let default_scale = 6000

let run_spec (s : spec) =
  reject_unknown_extras ~app:name ~known:[] s;
  let scale = Option.value s.sp_scale ~default:default_scale in
  let seed = Option.value s.sp_seed ~default:13 in
  let variant = s.sp_variant in
  let g = Gen.citeseer_like ~n:scale ~seed in
  let n = g.Csr.n in
  let expect = Cpu.pagerank g ~iters:iterations ~d:damping in
  let p =
    match variant with
    | Flat -> prepare_flat_spec s ~source:flat_source ~entry:"pr_flat"
    | _ -> prepare_spec s ~source:dp_source ~parent:"pr_parent"
  in
  let dev = p.dev in
  let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
  let col = Device.of_int_array dev ~name:"col" g.Csr.col in
  let pr =
    Device.of_float_array dev ~name:"pr"
      (Array.make n (1.0 /. Float.of_int n))
  in
  let next = Device.alloc_float dev ~name:"next" n in
  let threads = 128 in
  let grid = blocks_for ~threads n in
  let base = (1.0 -. damping) /. Float.of_int n in
  let bufs = [| pr; next |] in
  for it = 0 to iterations - 1 do
    let cur = bufs.(it mod 2) and nxt = bufs.((it + 1) mod 2) in
    Device.launch dev "pr_init" ~grid ~block:threads
      [ vbuf nxt; V.Vfloat base; V.Vint n ];
    match variant with
    | Flat ->
      Device.launch dev p.entry ~grid ~block:threads
        [ vbuf row_ptr; vbuf col; vbuf cur; vbuf nxt; V.Vint n ]
    | Basic | Cons _ ->
      Device.launch dev p.entry ~grid ~block:threads
        [ vbuf row_ptr; vbuf col; vbuf cur; vbuf nxt; V.Vint n;
          V.Vint threshold ]
  done;
  let final = bufs.(iterations mod 2) in
  check_float_arrays ~what:"pagerank" ~tol:1e-6 expect
    (Device.read_float_array dev final.Dpc_gpu.Memory.id);
  inspect_and_report ?inspect:s.sp_inspect dev

let run ?policy ?alloc ?cfg ?scale ?seed ?inspect variant =
  run_spec (spec ?policy ?alloc ?cfg ?scale ?seed ?inspect variant)
