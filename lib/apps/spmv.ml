(** Sparse Matrix-Vector multiplication (CSR scalar kernel, after
    Greathouse-Daga [14]): one thread per row; long rows are delegated to
    a cooperative child kernel that gathers partial products into shared
    memory and combines them on a designated thread.  The partials are
    scattered with a stride of four words ([part[4*t]] — the textbook
    strided-layout shared-memory access whose lanes collide four to a
    bank), so the deep memory-model presets charge bank-conflict replays
    on every partial store while the static race checker can still prove
    the strided indexes thread-distinct.

    Dataset: citeseer_like used as a sparse matrix (values = weights). *)

open Harness
module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Cpu = Dpc_graph.Cpu_ref

let name = "SpMV"
let dataset_name = "citeseer_like"
let threshold = 8

let dp_source gran =
  Printf.sprintf
    {|
__global__ void spmv_child(int* row_ptr, int* col, float* vals, float* x, float* y, int row) {
  __shared__ float part[256];
  var t = threadIdx.x;
  var acc = 0.0f;
  var k = row_ptr[row] + t;
  var end = row_ptr[row + 1];
  while (k < end) {
    acc = acc + vals[k] * x[col[k]];
    k = k + blockDim.x;
  }
  part[threadIdx.x * 4] = acc;
  __syncthreads();
  if (t == 0) {
    var tot = 0.0f;
    var j = 0;
    while (j < blockDim.x) {
      tot = tot + part[j * 4];
      j = j + 1;
    }
    atomicAdd(y, row, tot);
  }
}
__global__ void spmv_parent(int* row_ptr, int* col, float* vals, float* x, float* y, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var row = tid;
    var deg = row_ptr[row + 1] - row_ptr[row];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(row)
      launch spmv_child<<<1, 64>>>(row_ptr, col, vals, x, y, row);
    } else {
      var acc = 0.0f;
      for (var e = row_ptr[row]; e < row_ptr[row + 1]; e = e + 1) {
        acc = acc + vals[e] * x[col[e]];
      }
      y[row] = acc;
    }
  }
}
|}
    (Dpc_kir.Pragma.granularity_to_string gran)

let flat_source =
  {|
__global__ void spmv_flat(int* row_ptr, int* col, float* vals, float* x, float* y, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var acc = 0.0f;
    for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
      acc = acc + vals[e] * x[col[e]];
    }
    y[tid] = acc;
  }
}
|}

let programs ?cfg () =
  dp_programs ?cfg ~source:dp_source ~parent:"spmv_parent" ~flat:flat_source
    ()

let tv_units ?cfg () =
  dp_tv_units ?cfg ~source:dp_source ~parent:"spmv_parent" ()

let extras_spec : (string * extra_kind) list = []

let default_scale = 8000

let run_spec (s : spec) =
  reject_unknown_extras ~app:name ~known:[] s;
  let scale = Option.value s.sp_scale ~default:default_scale in
  let seed = Option.value s.sp_seed ~default:11 in
  let variant = s.sp_variant in
  let g = Gen.citeseer_like ~n:scale ~seed in
  let rng = Dpc_util.Rng.create (seed + 1) in
  let x = Array.init g.Csr.n (fun _ -> Dpc_util.Rng.float rng) in
  let expect = Cpu.spmv g x in
  let p =
    match variant with
    | Flat -> prepare_flat_spec s ~source:flat_source ~entry:"spmv_flat"
    | _ -> prepare_spec s ~source:dp_source ~parent:"spmv_parent"
  in
  let dev = p.dev in
  let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
  let col = Device.of_int_array dev ~name:"col" g.Csr.col in
  let vals =
    Device.of_float_array dev ~name:"vals"
      (Array.map Float.of_int g.Csr.weights)
  in
  let xb = Device.of_float_array dev ~name:"x" x in
  let y = Device.alloc_float dev ~name:"y" g.Csr.n in
  let threads = 128 in
  let args =
    [ vbuf row_ptr; vbuf col; vbuf vals; vbuf xb; vbuf y; V.Vint g.Csr.n ]
  in
  (match variant with
  | Flat ->
    Device.launch dev p.entry ~grid:(blocks_for ~threads g.Csr.n)
      ~block:threads args
  | Basic | Cons _ ->
    Device.launch dev p.entry ~grid:(blocks_for ~threads g.Csr.n)
      ~block:threads
      (args @ [ V.Vint threshold ]));
  check_float_arrays ~what:"spmv y" ~tol:1e-9 expect
    (Device.read_float_array dev y.Dpc_gpu.Memory.id);
  inspect_and_report ?inspect:s.sp_inspect dev

let run ?policy ?alloc ?cfg ?scale ?seed ?inspect variant =
  run_spec (spec ?policy ?alloc ?cfg ?scale ?seed ?inspect variant)
