(** Tree Descendants (TD): recursive computation of every node's proper
    descendant count (leaves are 0; internal nodes sum children + 1 each). *)

module Tree = Dpc_graph.Tree

let name = "TD"
let dataset_name = "tree dataset1"

let spec : Tree_common.spec =
  {
    Tree_common.app_name = name;
    kernel = "td";
    base = 0;
    acc_init = 0;
    acc_update = "acc = acc + out[child_list[k]] + 1;";
    cpu_ref = Tree.descendants;
    host_combine =
      (fun got tree v ->
        let acc = ref 0 in
        for e = tree.Tree.child_ptr.(v) to tree.Tree.child_ptr.(v + 1) - 1 do
          acc := !acc + got.(tree.Tree.child_list.(e)) + 1
        done;
        !acc);
  }

let programs ?cfg () = Tree_common.programs spec ?cfg ()

let tv_units ?cfg () = Tree_common.tv_units spec ?cfg ()

let extras_spec = Tree_common.extras_spec

(** Spec-driven entry point: [sp_scale] is the tree shrink divisor
    (larger = smaller tree, default 4); extras [max_nodes]/[dataset] as in
    {!Tree_common.run_spec}. *)
let run_spec hs = Tree_common.run_spec spec hs

(** [scale] is the tree shrink divisor (larger = smaller tree); see
    {!Dpc_graph.Tree.dataset1}. *)
let run ?policy ?alloc ?cfg ?(scale = 4) ?max_nodes ?seed ?dataset ?inspect variant =
  Tree_common.run spec ?policy ?alloc ?cfg ~shrink:scale ?max_nodes ?seed
    ?dataset ?inspect variant
