(** Shared plumbing for the seven benchmark applications.

    Every app exposes

    {[ run : ?policy -> ?alloc -> ?cfg -> ?scale -> ?seed -> variant
         -> Dpc_sim.Metrics.report ]}

    where the variants are the paper's comparison points: [Basic]
    (basic-dp, Fig. 1 template run as written), [Flat] (the no-dp flat
    kernel), and [Cons g] (the compiler-consolidated code at warp/block/
    grid granularity).  Each run checks its results against the CPU
    reference and raises {!Verification_failed} on any mismatch, so a
    report is also a correctness certificate. *)

module Pragma = Dpc_kir.Pragma
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory
module Cfg = Dpc_gpu.Config
module Device = Dpc_sim.Device
module Alloc = Dpc_alloc.Allocator
module Transform = Dpc.Transform
module Parser = Dpc_minicu.Parser

type variant = Basic | Flat | Cons of Pragma.granularity

let variant_to_string = function
  | Basic -> "basic-dp"
  | Flat -> "no-dp"
  | Cons g -> Pragma.granularity_to_string g ^ "-level"

let all_variants =
  [ Basic; Flat; Cons Pragma.Warp; Cons Pragma.Block; Cons Pragma.Grid ]

exception Verification_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Verification_failed s)) fmt

type prepared = {
  dev : Device.t;
  entry : string;
  trans : Transform.result option;
}

(** Build a device for a DP source: [Basic] runs the annotated program as
    written (the pragma is inert at runtime); [Cons g] applies the
    consolidation compiler first.  [source] receives the granularity to
    embed in the pragma text. *)
let prepare ?policy ?(alloc = Alloc.Pool) ~cfg
    ~(source : Pragma.granularity -> string) ~parent variant : prepared =
  match variant with
  | Flat -> invalid_arg "Harness.prepare: use prepare_flat for Flat"
  | Basic ->
    let prog = Parser.parse_program (source Pragma.Grid) in
    { dev = Device.create ~cfg prog; entry = parent; trans = None }
  | Cons g ->
    let prog = Parser.parse_program (source g) in
    let r = Transform.apply ?policy ~cfg ~parent prog in
    {
      dev = Device.create ~cfg ~alloc_kind:alloc r.Transform.program;
      entry = r.Transform.entry;
      trans = Some r;
    }

let prepare_flat ~cfg ~(source : string) ~entry : prepared =
  let prog = Parser.parse_program source in
  { dev = Device.create ~cfg prog; entry; trans = None }

(** Every lintable program of a DP app, labeled by variant: the annotated
    source as written ([basic-dp]), the consolidation compiler's output at
    each granularity, and — when given — the flat kernel.  This is the
    surface [dpcc --check] sweeps: both the hand-written kernels and
    everything the transform generates from them. *)
let dp_programs ?policy ?(cfg = Cfg.k20c)
    ~(source : Pragma.granularity -> string) ~parent ?flat () :
    (string * Dpc_kir.Kernel.Program.t) list =
  let cons g =
    let prog = Parser.parse_program (source g) in
    (Transform.apply ?policy ~cfg ~parent prog).Transform.program
  in
  [
    ("basic-dp", Parser.parse_program (source Pragma.Grid));
    ("warp-level", cons Pragma.Warp);
    ("block-level", cons Pragma.Block);
    ("grid-level", cons Pragma.Grid);
  ]
  @
  match flat with
  | Some src -> [ ("no-dp", Parser.parse_program src) ]
  | None -> []

(* --- verification helpers ------------------------------------------------ *)

let check_int_arrays ~what (expect : int array) (got : int array) =
  if Array.length expect <> Array.length got then
    fail "%s: length %d vs %d" what (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      if got.(i) <> e then
        fail "%s: index %d: expected %d, got %d" what i e got.(i))
    expect

let check_float_arrays ~what ?(tol = 1e-6) (expect : float array)
    (got : float array) =
  if Array.length expect <> Array.length got then
    fail "%s: length %d vs %d" what (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      let d = Float.abs (got.(i) -. e) in
      let scale = Float.max 1.0 (Float.abs e) in
      if d /. scale > tol then
        fail "%s: index %d: expected %g, got %g" what i e got.(i))
    expect

(** Run the caller's inspection hook on the device (profiling capture —
    e.g. {!Device.profile} / {!Device.chrome_trace}) after the app's
    launches, then return its report.  The hook must not launch. *)
let inspect_and_report ?inspect dev =
  Option.iter (fun f -> f dev) inspect;
  Device.report dev

(* --- small launch helpers ------------------------------------------------ *)

let vbuf (b : Mem.buf) = V.Vbuf b.Mem.id

let blocks_for ~threads n = Int.max 1 ((n + threads - 1) / threads)

(** Launch the consolidated entry of a recursive app with a seed work
    buffer (see {!Transform.seed_param_note}). *)
let launch_recursive_seed (p : prepared) ~cfg ~uniform_args ~seed_items =
  match p.trans with
  | Some r when r.Transform.recursive ->
    let seed =
      Device.of_int_array p.dev ~name:"__seed" (Array.of_list seed_items)
    in
    let seed_cnt =
      Device.of_int_array p.dev ~name:"__seed_cnt"
        [| List.length seed_items |]
    in
    let grid, block =
      Transform.launch_config cfg r ~items:(List.length seed_items)
    in
    Device.launch p.dev p.entry ~grid ~block
      (uniform_args @ [ vbuf seed; vbuf seed_cnt ])
  | _ -> invalid_arg "launch_recursive_seed: not a recursive consolidation"
