(** Shared plumbing for the seven benchmark applications.

    Every app exposes

    {[ run : ?policy -> ?alloc -> ?cfg -> ?scale -> ?seed -> variant
         -> Dpc_sim.Metrics.report ]}

    where the variants are the paper's comparison points: [Basic]
    (basic-dp, Fig. 1 template run as written), [Flat] (the no-dp flat
    kernel), and [Cons g] (the compiler-consolidated code at warp/block/
    grid granularity).  Each run checks its results against the CPU
    reference and raises {!Verification_failed} on any mismatch, so a
    report is also a correctness certificate. *)

module Pragma = Dpc_kir.Pragma
module V = Dpc_kir.Value
module Mem = Dpc_gpu.Memory
module Cfg = Dpc_gpu.Config
module Device = Dpc_sim.Device
module Alloc = Dpc_alloc.Allocator
module Transform = Dpc.Transform
module Parser = Dpc_minicu.Parser

type variant = Basic | Flat | Cons of Pragma.granularity

let variant_to_string = function
  | Basic -> "basic-dp"
  | Flat -> "no-dp"
  | Cons g -> Pragma.granularity_to_string g ^ "-level"

let variant_of_string s =
  match String.lowercase_ascii s with
  | "basic" | "basic-dp" -> Basic
  | "flat" | "no-dp" -> Flat
  | "warp" | "warp-level" -> Cons Pragma.Warp
  | "block" | "block-level" -> Cons Pragma.Block
  | "grid" | "grid-level" -> Cons Pragma.Grid
  | other ->
    invalid_arg
      (Printf.sprintf
         "bad variant %S (expected basic-dp, no-dp, warp-level, \
          block-level, or grid-level)"
         other)

let all_variants =
  [ Basic; Flat; Cons Pragma.Warp; Cons Pragma.Block; Cons Pragma.Grid ]

exception Verification_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Verification_failed s)) fmt

type prepared = {
  dev : Device.t;
  entry : string;
  trans : Transform.result option;
}

(* --- cacheable program preparation --------------------------------------- *)

(** The run-independent part of a prepared variant: the (finalized once,
    then read-only) program plus the transform metadata.  This is what the
    engine's cross-run cache stores — everything else in {!prepared}
    (device, memory, allocator) is per-run state. *)
type prep = {
  p_prog : Dpc_kir.Kernel.Program.t;
  p_entry : string;
  p_trans : Transform.result option;
}

type ckernels = (string, Dpc_sim.Compile.ckernel option) Hashtbl.t

(** Cache hook threaded through {!prepare}: given the variant's stable
    [key], the effective interpreter-tier tag [interp] (see
    {!Dpc_sim.Interp.mode_to_string}), the device-config digest [cfgkey]
    (see {!cfg_digest}) and a [build] thunk, return the (possibly
    memoized) {!prep} and optionally a compiled-kernel table to seed the
    device's session with (see {!Dpc_sim.Interp.create_session}).  The
    tier tag and config are already folded into [key], so tiers and
    presets never share cache entries — they are passed separately so
    persistent stores can also stamp them into their on-disk headers
    (a cache directory keyed under one preset then never serves a
    payload to another even if the key scheme changes).  The default,
    {!no_cache}, always builds fresh and seeds nothing. *)
type preparer =
  key:string -> interp:string -> cfgkey:string -> build:(unit -> prep) ->
  prep * ckernels option

let no_cache : preparer =
 fun ~key:_ ~interp:_ ~cfgkey:_ ~build -> (build (), None)

(** Stable digest of a device config — the [cfgkey] a {!preparer}
    receives, and the [cfg=] field of persistent-store headers. *)
let cfg_digest (cfg : Cfg.t) =
  Digest.to_hex (Digest.string (Marshal.to_string cfg []))

(** Stable cache key of a program build: digest of everything the cached
    artifact depends on — variant tag, full source text (which already
    encodes granularity and any dataset-derived launch constants), parent
    kernel, configuration policy, device config, and the interpreter tier
    whose compiled-kernel table the entry seeds (closure and bytecode
    lowerings share a table slot type but never an actual table, so the
    tiers must never collide on one key). *)
let prep_key ~tag ~(cfg : Cfg.t) ~policy ~source ~parent ~interp =
  let policy_str =
    match policy with
    | None -> "default"
    | Some p -> Dpc.Config_select.policy_to_string p
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ tag; source; parent; policy_str; interp;
            Marshal.to_string cfg [] ]))

(* --- run specification ---------------------------------------------------- *)

(** Everything an app run needs, as one first-class value (the engine's
    {!Dpc_engine.Scenario} lowers to this).  [sp_scale] / [sp_seed] are
    [None] for the app's documented default; app-specific knobs travel in
    [sp_extras] as string pairs (each app validates its own). *)
type spec = {
  sp_variant : variant;
  sp_policy : Dpc.Config_select.policy option;
  sp_alloc : Alloc.kind;
  sp_cfg : Cfg.t;
  sp_scale : int option;
  sp_seed : int option;
  sp_scheduler : Dpc_sim.Timing.scheduler;
  sp_interp : Dpc_sim.Interp.mode option;
  sp_preparer : preparer;
  sp_inspect : (Device.t -> unit) option;
  sp_extras : (string * string) list;
}

let spec ?policy ?(alloc = Alloc.Pool) ?(cfg = Cfg.k20c) ?scale ?seed
    ?(scheduler = Dpc_sim.Timing.Processor_sharing) ?interp
    ?(preparer = no_cache) ?inspect ?(extras = []) variant =
  {
    sp_variant = variant;
    sp_policy = policy;
    sp_alloc = alloc;
    sp_cfg = cfg;
    sp_scale = scale;
    sp_seed = seed;
    sp_scheduler = scheduler;
    sp_interp = interp;
    sp_preparer = preparer;
    sp_inspect = inspect;
    sp_extras = extras;
  }

(** Lookup helpers for [sp_extras].  Apps reject keys they don't own up
    front so a typo in a sweep file fails loudly instead of silently
    running the default. *)
let extra_str s key = List.assoc_opt key s.sp_extras

let extra_int s key =
  match List.assoc_opt key s.sp_extras with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Some i
    | None ->
      invalid_arg
        (Printf.sprintf "extra %s=%S: expected an integer" key v))

let reject_unknown_extras ~app ~known s =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        invalid_arg
          (Printf.sprintf "%s: unknown extra %S%s" app k
             (match known with
             | [] -> " (this app takes none)"
             | ks -> Printf.sprintf " (known: %s)" (String.concat ", " ks))))
    s.sp_extras

(** Declared shape of one app-specific extras value, for eager scenario
    lint: the engine refuses unknown keys and malformed values at
    scenario construction with a one-line actionable error, instead of
    silently ignoring them or failing mid-batch. *)
type extra_kind =
  | Xint  (** any decimal integer *)
  | Xenum of string list  (** one of a fixed token set *)

(** Validate [pairs] against an app's declared extras ([known] from its
    registry entry).  @raise Invalid_argument with a one-line message
    naming the offending key/value and listing the valid keys. *)
let validate_extras ~app ~(known : (string * extra_kind) list) pairs =
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k known with
      | None ->
        invalid_arg
          (Printf.sprintf "app %s: unknown extra %S%s" app k
             (match known with
             | [] -> " (this app takes none)"
             | ks ->
               Printf.sprintf " (valid keys: %s)"
                 (String.concat ", " (List.map fst ks))))
      | Some Xint ->
        if int_of_string_opt v = None then
          invalid_arg
            (Printf.sprintf "app %s: extra %s=%S: expected an integer" app k
               v)
      | Some (Xenum vals) ->
        if not (List.mem v vals) then
          invalid_arg
            (Printf.sprintf "app %s: extra %s=%S: expected one of %s" app k
               v (String.concat ", " vals)))
    pairs

(* The tier a spec will actually run under (the session default when the
   spec leaves it open) — resolved at prepare time so the cache key names
   the tier whose lowering the seeded ckernel table will hold. *)
let spec_interp_tag (s : spec) =
  Dpc_sim.Interp.mode_to_string
    (match s.sp_interp with
    | Some m -> m
    | None -> Dpc_sim.Interp.default_mode ())

(* Instantiate per-run state around a (possibly cached) prep: fresh device
   with the spec's allocator, scheduler and interpreter mode, seeded with
   the cache's per-domain compiled-kernel table when one is supplied. *)
let instantiate (s : spec) ((prep : prep), (ck : ckernels option)) : prepared
    =
  {
    dev =
      Device.create ~cfg:s.sp_cfg ~alloc_kind:s.sp_alloc
        ~scheduler:s.sp_scheduler ?mode:s.sp_interp ?ckernels:ck
        prep.p_prog;
    entry = prep.p_entry;
    trans = prep.p_trans;
  }

(** Build a device for a DP source: [Basic] runs the annotated program as
    written (the pragma is inert at runtime); [Cons g] applies the
    consolidation compiler first.  [source] receives the granularity to
    embed in the pragma text.  Both branches honor the spec's allocator
    (Basic kernels allocate from the device heap too when they launch with
    [buffer(default)] semantics), scheduler, interpreter mode and cache
    hook. *)
let prepare_spec (s : spec) ~(source : Pragma.granularity -> string)
    ~parent : prepared =
  match s.sp_variant with
  | Flat -> invalid_arg "Harness.prepare: use prepare_flat for Flat"
  | Basic ->
    let src = source Pragma.Grid in
    let interp = spec_interp_tag s in
    let key = prep_key ~tag:"basic" ~cfg:s.sp_cfg ~policy:None ~source:src
        ~parent ~interp
    in
    let build () =
      { p_prog = Parser.parse_program src; p_entry = parent; p_trans = None }
    in
    instantiate s
      (s.sp_preparer ~key ~interp ~cfgkey:(cfg_digest s.sp_cfg) ~build)
  | Cons g ->
    let src = source g in
    let interp = spec_interp_tag s in
    let key =
      prep_key ~tag:"cons" ~cfg:s.sp_cfg ~policy:s.sp_policy ~source:src
        ~parent ~interp
    in
    let build () =
      let prog = Parser.parse_program src in
      let r = Transform.apply ?policy:s.sp_policy ~cfg:s.sp_cfg ~parent prog in
      { p_prog = r.Transform.program; p_entry = r.Transform.entry;
        p_trans = Some r }
    in
    instantiate s
      (s.sp_preparer ~key ~interp ~cfgkey:(cfg_digest s.sp_cfg) ~build)

let prepare_flat_spec (s : spec) ~(source : string) ~entry : prepared =
  let interp = spec_interp_tag s in
  let key =
    prep_key ~tag:"flat" ~cfg:s.sp_cfg ~policy:None ~source ~parent:entry
      ~interp
  in
  let build () =
    { p_prog = Parser.parse_program source; p_entry = entry; p_trans = None }
  in
  instantiate s
    (s.sp_preparer ~key ~interp ~cfgkey:(cfg_digest s.sp_cfg) ~build)

(* Back-compat wrappers over the spec-driven path. *)

let prepare ?policy ?(alloc = Alloc.Pool) ~cfg
    ~(source : Pragma.granularity -> string) ~parent variant : prepared =
  prepare_spec (spec ?policy ~alloc ~cfg variant) ~source ~parent

let prepare_flat ~cfg ~(source : string) ~entry : prepared =
  prepare_flat_spec (spec ~cfg Flat) ~source ~entry

(** Every lintable program of a DP app, labeled by variant: the annotated
    source as written ([basic-dp]), the consolidation compiler's output at
    each granularity, and — when given — the flat kernel.  This is the
    surface [dpcc --check] sweeps: both the hand-written kernels and
    everything the transform generates from them. *)
let dp_programs ?policy ?(cfg = Cfg.k20c)
    ~(source : Pragma.granularity -> string) ~parent ?flat () :
    (string * Dpc_kir.Kernel.Program.t) list =
  let cons g =
    let prog = Parser.parse_program (source g) in
    (Transform.apply ?policy ~cfg ~parent prog).Transform.program
  in
  [
    ("basic-dp", Parser.parse_program (source Pragma.Grid));
    ("warp-level", cons Pragma.Warp);
    ("block-level", cons Pragma.Block);
    ("grid-level", cons Pragma.Grid);
  ]
  @
  match flat with
  | Some src -> [ ("no-dp", Parser.parse_program src) ]
  | None -> []

(** The translation-validation surface of a DP app: for each
    consolidation granularity, the original annotated program next to
    the transform's result, so {!Dpc_check.Tv} can validate the pair.
    (The program the result holds is a fresh one; the returned original
    is the very program the transform consumed.) *)
let dp_tv_units ?policy ?(cfg = Cfg.k20c)
    ~(source : Pragma.granularity -> string) ~parent () :
    (string * string * Dpc_kir.Kernel.Program.t * Transform.result) list =
  List.map
    (fun g ->
      let prog = Parser.parse_program (source g) in
      let r = Transform.apply ?policy ~cfg ~parent prog in
      (Pragma.granularity_to_string g ^ "-level", parent, prog, r))
    [ Pragma.Warp; Pragma.Block; Pragma.Grid ]

(* --- verification helpers ------------------------------------------------ *)

let check_int_arrays ~what (expect : int array) (got : int array) =
  if Array.length expect <> Array.length got then
    fail "%s: length %d vs %d" what (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      if got.(i) <> e then
        fail "%s: index %d: expected %d, got %d" what i e got.(i))
    expect

let check_float_arrays ~what ?(tol = 1e-6) (expect : float array)
    (got : float array) =
  if Array.length expect <> Array.length got then
    fail "%s: length %d vs %d" what (Array.length expect) (Array.length got);
  Array.iteri
    (fun i e ->
      let d = Float.abs (got.(i) -. e) in
      let scale = Float.max 1.0 (Float.abs e) in
      if d /. scale > tol then
        fail "%s: index %d: expected %g, got %g" what i e got.(i))
    expect

(** Run the caller's inspection hook on the device (profiling capture —
    e.g. {!Device.profile} / {!Device.chrome_trace}) after the app's
    launches, then return its report.  The hook must not launch. *)
let inspect_and_report ?inspect dev =
  Option.iter (fun f -> f dev) inspect;
  Device.report dev

(* --- small launch helpers ------------------------------------------------ *)

let vbuf (b : Mem.buf) = V.Vbuf b.Mem.id

let blocks_for ~threads n = Int.max 1 ((n + threads - 1) / threads)

(** Launch the consolidated entry of a recursive app with a seed work
    buffer (see {!Transform.seed_param_note}). *)
let launch_recursive_seed (p : prepared) ~cfg ~uniform_args ~seed_items =
  match p.trans with
  | Some r when r.Transform.recursive ->
    let seed =
      Device.of_int_array p.dev ~name:"__seed" (Array.of_list seed_items)
    in
    let seed_cnt =
      Device.of_int_array p.dev ~name:"__seed_cnt"
        [| List.length seed_items |]
    in
    let grid, block =
      Transform.launch_config cfg r ~items:(List.length seed_items)
    in
    Device.launch p.dev p.entry ~grid ~block
      (uniform_args @ [ vbuf seed; vbuf seed_cnt ])
  | _ -> invalid_arg "launch_recursive_seed: not a recursive consolidation"
