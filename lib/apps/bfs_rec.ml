(** Recursive Breadth-First Search (BFS-Rec, after [3]).

    The kernel processes the out-neighbors of one node; whenever it
    improves a neighbor's level with [atomicMin] it recursively launches
    itself on that neighbor — the paper's Fig. 1(c) pattern with parent =
    child.  Consolidation turns this into level-synchronous BFS: each
    consolidated level buffers the improved frontier and launches one
    kernel for the next level.

    Dataset: kron_like (Kron_log16 stand-in). *)

open Harness
module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Cpu = Dpc_graph.Cpu_ref

let name = "BFS-Rec"
let dataset_name = "kron_like"

let per_buffer_clause = function
  | Dpc_kir.Pragma.Grid -> "nnodes"
  | Dpc_kir.Pragma.Warp | Dpc_kir.Pragma.Block -> "2048"

let dp_source gran =
  Printf.sprintf
    {|
__global__ void bfs_rec(int* row_ptr, int* col, int* levels, int nnodes, int node, int depth) {
  var t = blockIdx.x * blockDim.x + threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  while (start + t < end) {
    var nb = col[start + t];
    var old = atomicMin(levels, nb, depth + 1);
    if (depth + 1 < old) {
      #pragma dp consldt(%s) buffer(custom, perBufferSize: %s) work(nb)
      launch bfs_rec<<<1, 64>>>(row_ptr, col, levels, nnodes, nb, depth + 1);
    }
    t = t + gridDim.x * blockDim.x;
  }
}
|}
    (Dpc_kir.Pragma.granularity_to_string gran)
    (per_buffer_clause gran)

let flat_source =
  Printf.sprintf
    {|
__global__ void bfs_flat(int* row_ptr, int* col, int* levels, int* changed, int level, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (levels[tid] == level) {
      for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
        var old = atomicMin(levels, col[e], level + 1);
        if (level + 1 < old) {
          changed[0] = 1;
        }
      }
    }
  }
}
|}

let programs ?cfg () =
  dp_programs ?cfg ~source:dp_source ~parent:"bfs_rec" ~flat:flat_source ()

let tv_units ?cfg () =
  dp_tv_units ?cfg ~source:dp_source ~parent:"bfs_rec" ()

let extras_spec : (string * extra_kind) list = []

let default_scale = 12  (* 2^12 nodes *)

let run_spec (s : spec) =
  reject_unknown_extras ~app:name ~known:[] s;
  let scale = Option.value s.sp_scale ~default:default_scale in
  let seed = Option.value s.sp_seed ~default:23 in
  let variant = s.sp_variant in
  let cfg = s.sp_cfg in
  let inspect = s.sp_inspect in
  let g = Gen.kron_like ~scale ~edge_factor:10 ~seed in
  let n = g.Csr.n in
  let src = 0 in
  let expect = Cpu.bfs_levels g ~src in
  let levels0 = Array.make n Cpu.inf in
  levels0.(src) <- 0;
  let threads = 128 in
  match variant with
  | Flat ->
    let p = prepare_flat_spec s ~source:flat_source ~entry:"bfs_flat" in
    let dev = p.dev in
    let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
    let col = Device.of_int_array dev ~name:"col" g.Csr.col in
    let levels = Device.of_int_array dev ~name:"levels" levels0 in
    let changed = Device.alloc_int dev ~name:"changed" 1 in
    let level = ref 0 in
    let continue = ref true in
    while !continue && !level < n do
      Device.launch dev p.entry ~grid:(blocks_for ~threads n) ~block:threads
        [ vbuf row_ptr; vbuf col; vbuf levels; vbuf changed; V.Vint !level;
          V.Vint n ];
      let c = (Device.read_int_array dev changed.Dpc_gpu.Memory.id).(0) in
      Dpc_gpu.Memory.write_int (Device.buf dev changed.Dpc_gpu.Memory.id) 0 0;
      continue := c <> 0;
      incr level
    done;
    check_int_arrays ~what:"bfs levels" expect
      (Device.read_int_array dev levels.Dpc_gpu.Memory.id);
    inspect_and_report ?inspect dev
  | Basic ->
    let p = prepare_spec s ~source:dp_source ~parent:"bfs_rec" in
    let dev = p.dev in
    let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
    let col = Device.of_int_array dev ~name:"col" g.Csr.col in
    let levels = Device.of_int_array dev ~name:"levels" levels0 in
    let deg = Csr.degree g src in
    Device.launch dev p.entry
      ~grid:1 ~block:(Int.max 32 (Int.min 1024 deg))
      [ vbuf row_ptr; vbuf col; vbuf levels; V.Vint n; V.Vint src; V.Vint 0 ];
    check_int_arrays ~what:"bfs levels" expect
      (Device.read_int_array dev levels.Dpc_gpu.Memory.id);
    inspect_and_report ?inspect dev
  | Cons _ ->
    let p = prepare_spec s ~source:dp_source ~parent:"bfs_rec" in
    let dev = p.dev in
    let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
    let col = Device.of_int_array dev ~name:"col" g.Csr.col in
    let levels = Device.of_int_array dev ~name:"levels" levels0 in
    launch_recursive_seed p ~cfg
      ~uniform_args:[ vbuf row_ptr; vbuf col; vbuf levels; V.Vint n; V.Vint 0 ]
      ~seed_items:[ src ];
    check_int_arrays ~what:"bfs levels" expect
      (Device.read_int_array dev levels.Dpc_gpu.Memory.id);
    inspect_and_report ?inspect dev

let run ?policy ?alloc ?cfg ?scale ?seed ?inspect variant =
  run_spec (spec ?policy ?alloc ?cfg ?scale ?seed ?inspect variant)
