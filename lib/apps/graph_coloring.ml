(** Greedy graph coloring (Jones-Plassmann independent sets with random
    priorities).  Each round, an uncolored node takes color [round] iff it
    holds the locally maximal priority among its uncolored neighborhood;
    the neighborhood scan of high-degree nodes is delegated to a child
    kernel.

    Dataset: kron_like (Kron_log16 stand-in). *)

open Harness
module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Cpu = Dpc_graph.Cpu_ref

let name = "GC"
let dataset_name = "kron_like"
let threshold = 16

let dp_source gran =
  Printf.sprintf
    {|
__global__ void gc_scan_child(int* row_ptr, int* col, int* color, int* prio, int* flag, int v) {
  var t = threadIdx.x;
  var start = row_ptr[v];
  var end = row_ptr[v + 1];
  var pv = prio[v];
  while (start + t < end) {
    var u = col[start + t];
    if (u != v && color[u] < 0) {
      if (prio[u] > pv || (prio[u] == pv && u > v)) {
        flag[v] = 0;
      }
    }
    t = t + blockDim.x;
  }
}
__global__ void gc_scan(int* row_ptr, int* col, int* color, int* prio, int* flag, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (color[tid] < 0) {
      var v = tid;
      flag[v] = 1;
      var deg = row_ptr[v + 1] - row_ptr[v];
      if (deg > threshold) {
        #pragma dp consldt(%s) work(v)
        launch gc_scan_child<<<1, 64>>>(row_ptr, col, color, prio, flag, v);
      } else {
        var pv = prio[v];
        for (var e = row_ptr[v]; e < row_ptr[v + 1]; e = e + 1) {
          var u = col[e];
          if (u != v && color[u] < 0) {
            if (prio[u] > pv || (prio[u] == pv && u > v)) {
              flag[v] = 0;
            }
          }
        }
      }
    }
  }
}
__global__ void gc_assign(int* color, int* flag, int* pending, int round, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (color[tid] < 0) {
      if (flag[tid] == 1) {
        color[tid] = round;
      } else {
        pending[0] = 1;
      }
    }
  }
}
|}
    (Dpc_kir.Pragma.granularity_to_string gran)

let flat_source =
  {|
__global__ void gc_scan_flat(int* row_ptr, int* col, int* color, int* prio, int* flag, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (color[tid] < 0) {
      flag[tid] = 1;
      var pv = prio[tid];
      for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
        var u = col[e];
        if (u != tid && color[u] < 0) {
          if (prio[u] > pv || (prio[u] == pv && u > tid)) {
            flag[tid] = 0;
          }
        }
      }
    }
  }
}
__global__ void gc_assign(int* color, int* flag, int* pending, int round, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (color[tid] < 0) {
      if (flag[tid] == 1) {
        color[tid] = round;
      } else {
        pending[0] = 1;
      }
    }
  }
}
|}

let programs ?cfg () =
  dp_programs ?cfg ~source:dp_source ~parent:"gc_scan" ~flat:flat_source ()

let tv_units ?cfg () =
  dp_tv_units ?cfg ~source:dp_source ~parent:"gc_scan" ()

let extras_spec : (string * extra_kind) list = []

let default_scale = 12  (* kron scale: 2^12 = 4096 nodes *)

let run_spec (s : spec) =
  reject_unknown_extras ~app:name ~known:[] s;
  let scale = Option.value s.sp_scale ~default:default_scale in
  let seed = Option.value s.sp_seed ~default:17 in
  let variant = s.sp_variant in
  (* Coloring needs symmetric conflict visibility. *)
  let g = Csr.symmetrize (Gen.kron_like ~scale ~edge_factor:12 ~seed) in
  let n = g.Csr.n in
  let rng = Dpc_util.Rng.create (seed + 3) in
  let prio = Array.init n (fun _ -> Dpc_util.Rng.int rng 1_000_000) in
  let p =
    match variant with
    | Flat -> prepare_flat_spec s ~source:flat_source ~entry:"gc_scan_flat"
    | _ -> prepare_spec s ~source:dp_source ~parent:"gc_scan"
  in
  let dev = p.dev in
  let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
  let col = Device.of_int_array dev ~name:"col" g.Csr.col in
  let color = Device.of_int_array dev ~name:"color" (Array.make n (-1)) in
  let prio_b = Device.of_int_array dev ~name:"prio" prio in
  let flag = Device.alloc_int dev ~name:"flag" n in
  let pending = Device.alloc_int dev ~name:"pending" 1 in
  let threads = 128 in
  let grid = blocks_for ~threads n in
  let scan_args = [ vbuf row_ptr; vbuf col; vbuf color; vbuf prio_b; vbuf flag ] in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < n do
    (match variant with
    | Flat ->
      Device.launch dev p.entry ~grid ~block:threads
        (scan_args @ [ V.Vint n ])
    | Basic | Cons _ ->
      Device.launch dev p.entry ~grid ~block:threads
        (scan_args @ [ V.Vint n; V.Vint threshold ]));
    Device.launch dev "gc_assign" ~grid ~block:threads
      [ vbuf color; vbuf flag; vbuf pending; V.Vint !round; V.Vint n ];
    let pend = (Device.read_int_array dev pending.Dpc_gpu.Memory.id).(0) in
    Dpc_gpu.Memory.write_int (Device.buf dev pending.Dpc_gpu.Memory.id) 0 0;
    continue := pend <> 0;
    incr round
  done;
  let colors = Device.read_int_array dev color.Dpc_gpu.Memory.id in
  if not (Cpu.valid_coloring g colors) then
    fail "graph coloring: invalid coloring produced";
  inspect_and_report ?inspect:s.sp_inspect dev

let run ?policy ?alloc ?cfg ?scale ?seed ?inspect variant =
  run_spec (spec ?policy ?alloc ?cfg ?scale ?seed ?inspect variant)
