(** Single-Source Shortest Path (Bellman-Ford relaxation sweeps, after
    Harish-Narayanan [5]).

    Each sweep assigns one thread per node; the thread relaxes all of its
    node's out-edges with [atomicMin].  In the DP variants, nodes whose
    degree exceeds [threshold] delegate the relaxation to a child kernel
    (the paper's Fig. 1(b)); the [no-dp] variant always loops locally.
    The host iterates sweeps until a sweep changes nothing.

    Dataset: citeseer_like (power-law citation network). *)

open Harness
module Csr = Dpc_graph.Csr
module Gen = Dpc_graph.Gen
module Cpu = Dpc_graph.Cpu_ref

let name = "SSSP"
let dataset_name = "citeseer_like"
let threshold = 8
let inf = Cpu.inf

let dp_source gran =
  Printf.sprintf
    {|
__global__ void sssp_child(int* row_ptr, int* col, int* w, int* dist, int* changed, int node) {
  var t = threadIdx.x;
  var start = row_ptr[node];
  var end = row_ptr[node + 1];
  var du = dist[node];
  if (du < %d) {
    while (start + t < end) {
      var alt = du + w[start + t];
      var old = atomicMin(dist, col[start + t], alt);
      if (alt < old) {
        changed[0] = 1;
      }
      t = t + blockDim.x;
    }
  }
}
__global__ void sssp_parent(int* row_ptr, int* col, int* w, int* dist, int* changed, int n, int threshold) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var node = tid;
    var deg = row_ptr[node + 1] - row_ptr[node];
    if (deg > threshold) {
      #pragma dp consldt(%s) work(node)
      launch sssp_child<<<1, 64>>>(row_ptr, col, w, dist, changed, node);
    } else {
      var du = dist[node];
      if (du < %d) {
        for (var e = row_ptr[node]; e < row_ptr[node + 1]; e = e + 1) {
          var alt = du + w[e];
          var old = atomicMin(dist, col[e], alt);
          if (alt < old) {
            changed[0] = 1;
          }
        }
      }
    }
  }
}
|}
    inf
    (Dpc_kir.Pragma.granularity_to_string gran)
    inf

let flat_source =
  Printf.sprintf
    {|
__global__ void sssp_flat(int* row_ptr, int* col, int* w, int* dist, int* changed, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var du = dist[tid];
    if (du < %d) {
      for (var e = row_ptr[tid]; e < row_ptr[tid + 1]; e = e + 1) {
        var alt = du + w[e];
        var old = atomicMin(dist, col[e], alt);
        if (alt < old) {
          changed[0] = 1;
        }
      }
    }
  }
}
|}
    inf

let programs ?cfg () =
  dp_programs ?cfg ~source:dp_source ~parent:"sssp_parent" ~flat:flat_source
    ()

let tv_units ?cfg () =
  dp_tv_units ?cfg ~source:dp_source ~parent:"sssp_parent" ()

let extras_spec : (string * extra_kind) list = []

let default_scale = 3000

let run_spec (s : spec) =
  reject_unknown_extras ~app:name ~known:[] s;
  let scale = Option.value s.sp_scale ~default:default_scale in
  let seed = Option.value s.sp_seed ~default:7 in
  let variant = s.sp_variant in
  let g = Gen.citeseer_like ~n:scale ~seed in
  let src = 0 in
  let expect = Cpu.sssp g ~src in
  let p =
    match variant with
    | Flat -> prepare_flat_spec s ~source:flat_source ~entry:"sssp_flat"
    | _ -> prepare_spec s ~source:dp_source ~parent:"sssp_parent"
  in
  let dev = p.dev in
  let row_ptr = Device.of_int_array dev ~name:"row_ptr" g.Csr.row_ptr in
  let col = Device.of_int_array dev ~name:"col" g.Csr.col in
  let w = Device.of_int_array dev ~name:"w" g.Csr.weights in
  let dist0 = Array.make g.Csr.n inf in
  dist0.(src) <- 0;
  let dist = Device.of_int_array dev ~name:"dist" dist0 in
  let changed = Device.alloc_int dev ~name:"changed" 1 in
  let threads = 128 in
  let grid = blocks_for ~threads g.Csr.n in
  let base_args = [ vbuf row_ptr; vbuf col; vbuf w; vbuf dist; vbuf changed ] in
  let sweep () =
    (match variant with
    | Flat ->
      Device.launch dev p.entry ~grid ~block:threads
        (base_args @ [ V.Vint g.Csr.n ])
    | Basic | Cons _ ->
      Device.launch dev p.entry ~grid ~block:threads
        (base_args @ [ V.Vint g.Csr.n; V.Vint threshold ]));
    let c = (Device.read_int_array dev changed.Dpc_gpu.Memory.id).(0) in
    Dpc_gpu.Memory.write_int (Device.buf dev changed.Dpc_gpu.Memory.id) 0 0;
    c <> 0
  in
  let rec loop i = if i < g.Csr.n && sweep () then loop (i + 1) in
  loop 0;
  check_int_arrays ~what:"sssp distances" expect
    (Device.read_int_array dev dist.Dpc_gpu.Memory.id);
  inspect_and_report ?inspect:s.sp_inspect dev

let run ?policy ?alloc ?cfg ?scale ?seed ?inspect variant =
  run_spec (spec ?policy ?alloc ?cfg ?scale ?seed ?inspect variant)
