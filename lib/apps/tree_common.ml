(** Shared driver for the recursive tree benchmarks (TH, TD), the paper's
    Fig. 1(c) pattern with postwork:

    - each thread of an invocation handles one child of [node];
    - leaves get their base value; internal children are launched
      recursively;
    - after [cudaDeviceSynchronize], the postwork combines the children's
      results (max+1 for heights, sum+1 for descendant counts).

    The host processes the root: launches the kernel on it (basic-dp) or
    seeds the consolidated kernel with it, then computes the root's own
    value from its children — the same division of labor in every
    variant. *)

open Harness
module Tree = Dpc_graph.Tree

(* [combine] is the MiniCU expression combining an accumulator [acc] with
   one child value [cv]; [base] the leaf value; [init] the accumulator
   start. *)
type spec = {
  app_name : string;
  kernel : string;
  base : int;
  acc_init : int;
  acc_update : string;  (** statement updating [acc] from [out[...]] *)
  cpu_ref : Tree.t -> int array;
  host_combine : int array -> Tree.t -> int -> int;
      (** root value from children values *)
}

(* Buffer capacity per consolidation domain: the whole node set for the
   single grid-level buffer; a tuned 2048-item clause for the many per-warp
   and per-block buffers (overflowing items fall back to direct launches). *)
let per_buffer_clause = function
  | Dpc_kir.Pragma.Grid -> "nnodes"
  | Dpc_kir.Pragma.Warp | Dpc_kir.Pragma.Block -> "2048"

let dp_source spec ~child_block gran =
  Printf.sprintf
    {|
__global__ void %s(int* child_ptr, int* child_list, int* out, int nnodes, int node) {
  var t = blockIdx.x * blockDim.x + threadIdx.x;
  var cstart = child_ptr[node];
  var nchild = child_ptr[node + 1] - cstart;
  var c = 0 - 1;
  if (t < nchild) {
    c = child_list[cstart + t];
    var nc = child_ptr[c + 1] - child_ptr[c];
    if (nc == 0) {
      out[c] = %d;
    } else {
      #pragma dp consldt(%s) buffer(custom, perBufferSize: %s) work(c)
      launch %s<<<1, %d>>>(child_ptr, child_list, out, nnodes, c);
    }
  }
  cudaDeviceSynchronize();
  if (c >= 0) {
    var nc2 = child_ptr[c + 1] - child_ptr[c];
    if (nc2 > 0) {
      var acc = %d;
      for (var k = child_ptr[c]; k < child_ptr[c] + nc2; k = k + 1) {
        %s
      }
      out[c] = acc;
    }
  }
}
|}
    spec.kernel spec.base
    (Dpc_kir.Pragma.granularity_to_string gran)
    (per_buffer_clause gran) spec.kernel child_block spec.acc_init
    spec.acc_update

(* Flat implementation: the standard flattening of tree recursion — first
   compute node depths with top-down sweeps, then combine bottom-up level
   by level. *)
let flat_source spec =
  Printf.sprintf
    {|
__global__ void depth_sweep(int* child_ptr, int* child_list, int* depth_of, int* changed, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    var d = depth_of[tid];
    if (d >= 0) {
      for (var k = child_ptr[tid]; k < child_ptr[tid + 1]; k = k + 1) {
        var c = child_list[k];
        if (depth_of[c] < 0) {
          depth_of[c] = d + 1;
          changed[0] = 1;
        }
      }
    }
  }
}
__global__ void %s_flat(int* child_ptr, int* child_list, int* out, int* depth_of, int level, int n) {
  var tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) {
    if (depth_of[tid] == level) {
      var nc = child_ptr[tid + 1] - child_ptr[tid];
      if (nc == 0) {
        out[tid] = %d;
      } else {
        var acc = %d;
        var c = tid;
        for (var k = child_ptr[c]; k < child_ptr[c] + nc; k = k + 1) {
          %s
        }
        out[tid] = acc;
      }
    }
  }
}
|}
    spec.kernel spec.base spec.acc_init spec.acc_update

(* The lint surface uses a representative child block size; [run] tunes it
   to the dataset's fan-out, which only changes a launch constant. *)
let programs spec ?cfg () =
  dp_programs ?cfg
    ~source:(dp_source spec ~child_block:128)
    ~parent:spec.kernel
    ~flat:(flat_source spec)
    ()

let tv_units spec ?cfg () =
  dp_tv_units ?cfg
    ~source:(dp_source spec ~child_block:128)
    ~parent:spec.kernel ()

let extras_spec : (string * extra_kind) list =
  [ ("max_nodes", Xint); ("dataset", Xenum [ "dataset1"; "dataset2" ]) ]

(* App-specific knobs carried in [Harness.spec] extras: [max_nodes] caps
   the generated tree's node count; [dataset] picks dataset1/dataset2. *)
let dataset_of_extras hs =
  match Harness.extra_str hs "dataset" with
  | None | Some "dataset1" -> `Dataset1
  | Some "dataset2" -> `Dataset2
  | Some other ->
    invalid_arg
      (Printf.sprintf "extra dataset=%S: expected dataset1 or dataset2"
         other)

(** [Harness.spec]'s [sp_scale] is the tree shrink divisor (larger =
    smaller tree, default 4); see {!Dpc_graph.Tree.dataset1}. *)
let run_spec spec (hs : Harness.spec) =
  Harness.reject_unknown_extras ~app:spec.app_name
    ~known:[ "max_nodes"; "dataset" ] hs;
  let shrink = Option.value hs.Harness.sp_scale ~default:4 in
  let seed = Option.value hs.Harness.sp_seed ~default:29 in
  let max_nodes = Harness.extra_int hs "max_nodes" in
  let dataset = dataset_of_extras hs in
  let variant = hs.Harness.sp_variant in
  let cfg = hs.Harness.sp_cfg in
  let inspect = hs.Harness.sp_inspect in
  let tree =
    match dataset with
    | `Dataset1 -> Tree.dataset1 ~shrink ?max_nodes ~seed ()
    | `Dataset2 -> Tree.dataset2 ~shrink ?max_nodes ~seed ()
  in
  (* Child blocks sized to the dataset's maximum fan-out, rounded up to a
     warp multiple — the same tuning the hand-written benchmarks use. *)
  let max_children =
    let m = ref 0 in
    for v = 0 to tree.Tree.n - 1 do
      m := Int.max !m (Tree.nchildren tree v)
    done;
    !m
  in
  let child_block =
    Int.min 256 (Int.max 32 ((max_children + 31) / 32 * 32))
  in
  let n = tree.Tree.n in
  let expect = spec.cpu_ref tree in
  let threads = 128 in
  let finish dev (out : Dpc_gpu.Memory.buf) report =
    let got = Device.read_int_array dev out.Dpc_gpu.Memory.id in
    (* The host owns the root's combine step in every variant. *)
    got.(0) <- spec.host_combine got tree 0;
    check_int_arrays ~what:(spec.app_name ^ " values") expect got;
    report
  in
  match variant with
  | Flat ->
    let p =
      prepare_flat_spec hs ~source:(flat_source spec)
        ~entry:(spec.kernel ^ "_flat")
    in
    let dev = p.dev in
    let cp = Device.of_int_array dev ~name:"child_ptr" tree.Tree.child_ptr in
    let cl = Device.of_int_array dev ~name:"child_list" tree.Tree.child_list in
    let out = Device.alloc_int dev ~name:"out" n in
    let d0 = Array.make n (-1) in
    d0.(0) <- 0;
    let depth_of = Device.of_int_array dev ~name:"depth_of" d0 in
    let changed = Device.alloc_int dev ~name:"changed" 1 in
    (* Phase 1: compute depths top-down. *)
    let continue = ref true in
    while !continue do
      Device.launch dev "depth_sweep" ~grid:(blocks_for ~threads n)
        ~block:threads
        [ vbuf cp; vbuf cl; vbuf depth_of; vbuf changed; V.Vint n ];
      let c = (Device.read_int_array dev changed.Dpc_gpu.Memory.id).(0) in
      Dpc_gpu.Memory.write_int (Device.buf dev changed.Dpc_gpu.Memory.id) 0 0;
      continue := c <> 0
    done;
    (* Phase 2: combine bottom-up. *)
    for level = tree.Tree.depth downto 1 do
      Device.launch dev p.entry ~grid:(blocks_for ~threads n) ~block:threads
        [ vbuf cp; vbuf cl; vbuf out; vbuf depth_of; V.Vint level; V.Vint n ]
    done;
    finish dev out (inspect_and_report ?inspect dev)
  | Basic ->
    let p =
      prepare_spec hs ~source:(dp_source spec ~child_block)
        ~parent:spec.kernel
    in
    let dev = p.dev in
    let cp = Device.of_int_array dev ~name:"child_ptr" tree.Tree.child_ptr in
    let cl = Device.of_int_array dev ~name:"child_list" tree.Tree.child_list in
    let out = Device.alloc_int dev ~name:"out" n in
    Device.launch dev p.entry ~grid:1 ~block:child_block
      [ vbuf cp; vbuf cl; vbuf out; V.Vint n; V.Vint 0 ];
    finish dev out (inspect_and_report ?inspect dev)
  | Cons _ ->
    let p =
      prepare_spec hs ~source:(dp_source spec ~child_block)
        ~parent:spec.kernel
    in
    let dev = p.dev in
    let cp = Device.of_int_array dev ~name:"child_ptr" tree.Tree.child_ptr in
    let cl = Device.of_int_array dev ~name:"child_list" tree.Tree.child_list in
    let out = Device.alloc_int dev ~name:"out" n in
    launch_recursive_seed p ~cfg
      ~uniform_args:[ vbuf cp; vbuf cl; vbuf out; V.Vint n ]
      ~seed_items:[ 0 ];
    finish dev out (inspect_and_report ?inspect dev)

(** The tree knobs spelled as {!Harness.spec} extras. *)
let extras ?max_nodes ~dataset () =
  ( "dataset",
    match dataset with `Dataset1 -> "dataset1" | `Dataset2 -> "dataset2" )
  ::
  (match max_nodes with
  | None -> []
  | Some m -> [ ("max_nodes", string_of_int m) ])

let run spec ?policy ?alloc ?cfg ?(shrink = 8) ?max_nodes ?(seed = 29)
    ?(dataset = `Dataset1) ?inspect variant =
  run_spec spec
    (Harness.spec ?policy ?alloc ?cfg ~scale:shrink ~seed ?inspect
       ~extras:(extras ?max_nodes ~dataset ()) variant)
