(** The seven benchmarks of the paper's evaluation (Section V), behind a
    uniform runner interface for the experiment harness.

    [scale] semantics are app-specific (documented per app): node count
    for the citeseer-based apps, log2 node count for the kron-based apps,
    and the shrink divisor for the tree datasets.  Every runner verifies
    its results against the CPU reference before reporting.

    [run_spec] is the first-class entry point the engine layer drives —
    [run] is the same code behind the historical optional-argument
    surface. *)

type runner =
  ?policy:Dpc.Config_select.policy ->
  ?alloc:Dpc_alloc.Allocator.kind ->
  ?cfg:Dpc_gpu.Config.t ->
  ?scale:int ->
  ?seed:int ->
  ?inspect:(Dpc_sim.Device.t -> unit) ->
  Harness.variant ->
  Dpc_sim.Metrics.report

type entry = {
  name : string;
  dataset : string;
  run : runner;
  run_spec : Harness.spec -> Dpc_sim.Metrics.report;
      (** spec-driven entry point; app-specific knobs arrive as extras
          (each app rejects keys it doesn't own) *)
  programs :
    ?cfg:Dpc_gpu.Config.t ->
    unit ->
    (string * Dpc_kir.Kernel.Program.t) list;
      (** every lintable program of the app, labeled by variant (see
          {!Harness.dp_programs}); the surface [dpcc --check] sweeps *)
  tv_units :
    ?cfg:Dpc_gpu.Config.t ->
    unit ->
    (string * string * Dpc_kir.Kernel.Program.t * Dpc.Transform.result) list;
      (** per consolidation granularity: variant label, parent kernel,
          the original annotated program, and the transform's result —
          the translation-validation surface ({!Harness.dp_tv_units}) *)
  extras_spec : (string * Harness.extra_kind) list;
      (** the app-specific extras keys the app accepts, with their value
          shapes; the engine lints scenario extras against this eagerly *)
}

let sssp =
  { name = Sssp.name; dataset = Sssp.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Sssp.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Sssp.run_spec;
    programs = Sssp.programs;
    tv_units = Sssp.tv_units;
    extras_spec = Sssp.extras_spec }

let spmv =
  { name = Spmv.name; dataset = Spmv.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Spmv.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Spmv.run_spec;
    programs = Spmv.programs;
    tv_units = Spmv.tv_units;
    extras_spec = Spmv.extras_spec }

let pagerank =
  { name = Pagerank.name; dataset = Pagerank.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Pagerank.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Pagerank.run_spec;
    programs = Pagerank.programs;
    tv_units = Pagerank.tv_units;
    extras_spec = Pagerank.extras_spec }

let graph_coloring =
  { name = Graph_coloring.name; dataset = Graph_coloring.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Graph_coloring.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Graph_coloring.run_spec;
    programs = Graph_coloring.programs;
    tv_units = Graph_coloring.tv_units;
    extras_spec = Graph_coloring.extras_spec }

let bfs_rec =
  { name = Bfs_rec.name; dataset = Bfs_rec.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Bfs_rec.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Bfs_rec.run_spec;
    programs = Bfs_rec.programs;
    tv_units = Bfs_rec.tv_units;
    extras_spec = Bfs_rec.extras_spec }

let tree_height =
  { name = Tree_height.name; dataset = Tree_height.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Tree_height.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Tree_height.run_spec;
    programs = Tree_height.programs;
    tv_units = Tree_height.tv_units;
    extras_spec = Tree_height.extras_spec }

let tree_descendants =
  { name = Tree_descendants.name; dataset = Tree_descendants.dataset_name;
    run = (fun ?policy ?alloc ?cfg ?scale ?seed ?inspect v ->
        Tree_descendants.run ?policy ?alloc ?cfg ?scale ?seed ?inspect v);
    run_spec = Tree_descendants.run_spec;
    programs = Tree_descendants.programs;
    tv_units = Tree_descendants.tv_units;
    extras_spec = Tree_descendants.extras_spec }

(** In the paper's presentation order. *)
let all =
  [ sssp; spmv; pagerank; graph_coloring; bfs_rec; tree_height;
    tree_descendants ]

let find name =
  match List.find_opt (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name) all with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "unknown app %S (have: %s)" name
         (String.concat ", " (List.map (fun e -> e.name) all)))
