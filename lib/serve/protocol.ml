(** The [dpc-serve-v1] wire protocol.

    Messages are newline-delimited JSON documents ({!Dpc_util.Framing})
    over a Unix-domain stream socket: every request and every response
    is one compact JSON object on one line, tagged with the protocol
    version under ["v"].  A client sends one request per line and reads
    response lines; a [sweep] request streams one [outcome] event per
    finished scenario (in submission order) followed by a terminal
    [done] event, so responses arrive as scenarios complete rather than
    when the whole request finishes.

    Requests carry a client-chosen [id]; every response echoes it, so a
    client can match streams to requests (the server itself serves one
    request stream per connection at a time, but interleaves work
    {e across} connections).

    Outcome payloads reuse the [dpc-sweep-v1] record shape
    ({!Dpc_experiments.Export.outcome_json}) verbatim — a client can
    re-assemble a byte-identical sweep snapshot from the stream — while
    the envelope adds the serve-only fields (ids, sequence numbers,
    per-scenario wall clock). *)

module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario

let version = "dpc-serve-v1"

(* --- requests -------------------------------------------------------------- *)

type request =
  | Sweep of {
      id : string;
      scenarios : Scenario.t list;
      timeout_s : float option;  (** request-level wall-clock budget *)
    }
  | Stats of { id : string }
  | Ping of { id : string }
  | Shutdown of { id : string }

let request_id = function
  | Sweep { id; _ } | Stats { id } | Ping { id } | Shutdown { id } -> id

let request_to_json (r : request) =
  let base verb id rest =
    Json.Obj
      (("v", Json.String version)
       :: ("verb", Json.String verb)
       :: ("id", Json.String id)
       :: rest)
  in
  match r with
  | Sweep { id; scenarios; timeout_s } ->
    base "sweep" id
      (( "scenarios",
         Json.List (List.map Scenario.to_json scenarios) )
       ::
       (match timeout_s with
       | Some s -> [ ("timeout_s", Json.Float s) ]
       | None -> []))
  | Stats { id } -> base "stats" id []
  | Ping { id } -> base "ping" id []
  | Shutdown { id } -> base "shutdown" id []

(** Parse one request line.  [Error] carries a human-readable reason;
    the server answers it with an [error] event instead of dying. *)
let request_of_json (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj _ -> (
    let str k = Option.map Json.to_str (Json.member k j) in
    let id = Option.value (str "id") ~default:"" in
    (match str "v" with
    | Some v when v <> version ->
      Error (Printf.sprintf "unsupported protocol version %S (want %s)" v version)
    | _ -> (
      match str "verb" with
      | None -> Error "missing \"verb\""
      | Some "stats" -> Ok (Stats { id })
      | Some "ping" -> Ok (Ping { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some "sweep" -> (
        match Json.member "scenarios" j with
        | None -> Error "sweep: missing \"scenarios\""
        | Some _ -> (
          try
            let scenarios = Scenario.sweep_of_json j in
            let timeout_s =
              Option.map Json.number (Json.member "timeout_s" j)
            in
            Ok (Sweep { id; scenarios; timeout_s })
          with
          | Invalid_argument m | Failure m -> Error m
          | Json.Parse_error m -> Error m))
      | Some other -> Error (Printf.sprintf "unknown verb %S" other))))
  | _ -> Error "request must be a JSON object"

let request_of_string s =
  match Json.parse s with
  | exception Json.Parse_error m -> Error ("bad JSON: " ^ m)
  | j -> request_of_json j

(* --- responses ------------------------------------------------------------- *)

type event =
  | Outcome of {
      id : string;
      seq : int;  (** 0-based submission index within the request *)
      total : int;
      elapsed_s : float;  (** this scenario's wall clock on the server *)
      outcome : Json.t;  (** a [dpc-sweep-v1] outcome record, verbatim *)
    }
  | Done of {
      id : string;
      runs : int;  (** scenarios executed (streamed as [Outcome]s) *)
      failed : int;
      skipped : int;  (** scenarios dropped by the request timeout *)
      timed_out : bool;
      elapsed_s : float;  (** whole-request wall clock on the server *)
    }
  | Error_event of { id : string; code : string; message : string }
  | Stats_event of { id : string; stats : Json.t }
  | Pong of { id : string }
  | Bye of { id : string }  (** shutdown acknowledged; daemon is draining *)

let event_to_json (e : event) =
  let base ev id rest =
    Json.Obj
      (("v", Json.String version)
       :: ("event", Json.String ev)
       :: ("id", Json.String id)
       :: rest)
  in
  match e with
  | Outcome { id; seq; total; elapsed_s; outcome } ->
    base "outcome" id
      [
        ("seq", Json.Int seq);
        ("total", Json.Int total);
        ("elapsed_s", Json.Float elapsed_s);
        ("outcome", outcome);
      ]
  | Done { id; runs; failed; skipped; timed_out; elapsed_s } ->
    base "done" id
      [
        ("runs", Json.Int runs);
        ("failed", Json.Int failed);
        ("skipped", Json.Int skipped);
        ("timed_out", Json.Bool timed_out);
        ("elapsed_s", Json.Float elapsed_s);
      ]
  | Error_event { id; code; message } ->
    base "error" id
      [ ("code", Json.String code); ("message", Json.String message) ]
  | Stats_event { id; stats } -> base "stats" id [ ("stats", stats) ]
  | Pong { id } -> base "pong" id []
  | Bye { id } -> base "bye" id []

let event_of_json (j : Json.t) : (event, string) result =
  let str k = Option.map Json.to_str (Json.member k j) in
  let int k = Option.map Json.to_int (Json.member k j) in
  let num k = Option.map Json.number (Json.member k j) in
  let req what = function
    | Some v -> v
    | None -> raise (Json.Parse_error (Printf.sprintf "event: missing %s" what))
  in
  match j with
  | Json.Obj _ -> (
    let id = Option.value (str "id") ~default:"" in
    try
      match str "event" with
      | None -> Error "missing \"event\""
      | Some "outcome" ->
        Ok
          (Outcome
             {
               id;
               seq = req "seq" (int "seq");
               total = req "total" (int "total");
               elapsed_s = req "elapsed_s" (num "elapsed_s");
               outcome = req "outcome" (Json.member "outcome" j);
             })
      | Some "done" ->
        let bool k =
          match Json.member k j with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        Ok
          (Done
             {
               id;
               runs = req "runs" (int "runs");
               failed = req "failed" (int "failed");
               skipped = Option.value (int "skipped") ~default:0;
               timed_out = bool "timed_out";
               elapsed_s = req "elapsed_s" (num "elapsed_s");
             })
      | Some "error" ->
        Ok
          (Error_event
             {
               id;
               code = Option.value (str "code") ~default:"error";
               message = req "message" (str "message");
             })
      | Some "stats" ->
        Ok (Stats_event { id; stats = req "stats" (Json.member "stats" j) })
      | Some "pong" -> Ok (Pong { id })
      | Some "bye" -> Ok (Bye { id })
      | Some other -> Error (Printf.sprintf "unknown event %S" other)
    with Json.Parse_error m -> Error m)
  | _ -> Error "event must be a JSON object"

let event_of_string s =
  match Json.parse s with
  | exception Json.Parse_error m -> Error ("bad JSON: " ^ m)
  | j -> event_of_json j

(* --- framing over file descriptors ----------------------------------------- *)

(** Serialize one message to its wire frame (compact JSON + newline).
    The compact printer never emits raw newlines, so the frame is safe
    for the line framing by construction. *)
let frame (j : Json.t) = Json.to_string j ^ "\n"

(** Write one frame, looping over partial writes.  Raises
    [Unix.Unix_error] (e.g. [EPIPE]) when the peer is gone. *)
let write_frame fd (j : Json.t) =
  let s = Bytes.unsafe_of_string (frame j) in
  let n = Bytes.length s in
  let rec go off =
    if off < n then
      let w = Unix.write fd s off (n - off) in
      go (off + w)
  in
  go 0
