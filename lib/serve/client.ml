(** Client side of [dpc-serve-v1]: connect to a running daemon, submit
    sweeps and read the streamed responses.

    The client is deliberately synchronous — one request in flight per
    connection, blocking reads — because that is the shape every current
    consumer (the CLI, the CI smoke job, the benchmark harness) wants.
    Concurrency comes from opening several connections; the server
    interleaves them.

    Outcome payloads are collected verbatim, so {!sweep_snapshot} can
    re-assemble a [dpc-sweep-v1] document whose records are byte-wise
    the ones the server's own export would produce. *)

module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario
module Framing = Dpc_util.Framing

type t = {
  fd : Unix.file_descr;
  framing : Framing.t;
  mutable queued : string list;  (** frames read but not yet consumed *)
  mutable next_id : int;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; framing = Framing.create (); queued = []; next_id = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let fresh_id t =
  let id = Printf.sprintf "r%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

(* Blocking read of the next complete frame. *)
let rec read_frame t : (string, string) result =
  match t.queued with
  | line :: rest ->
    t.queued <- rest;
    Ok line
  | [] ->
    if t.closed then Error "connection closed"
    else begin
      let buf = Bytes.create 65536 in
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame t
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close t;
        Error "server closed the connection"
      | 0 ->
        close t;
        Error "server closed the connection"
      | n ->
        t.queued <- Framing.feed t.framing buf ~len:n;
        read_frame t
    end

let read_event t : (Protocol.event, string) result =
  match read_frame t with
  | Error _ as e -> e
  | Ok line -> Protocol.event_of_string line

let send t (r : Protocol.request) =
  if t.closed then invalid_arg "Dpc_serve.Client: connection is closed";
  try Protocol.write_frame t.fd (Protocol.request_to_json r)
  with Unix.Unix_error _ ->
    close t;
    failwith "Dpc_serve.Client: server closed the connection"

(* --- verbs ----------------------------------------------------------------- *)

type sweep_result = {
  runs : int;
  failed : int;
  skipped : int;
  timed_out : bool;
  elapsed_s : float;  (** whole-request wall clock on the server *)
  outcomes : Json.t list;
      (** the streamed [dpc-sweep-v1] records, in submission order *)
}

(** Submit a sweep and block until its terminal event.  [on_event] sees
    every raw event as it arrives (for progress displays); outcome
    payloads are also collected into the result.  [Error] carries the
    server's refusal (quota, draining, bad request) or a transport
    failure. *)
let sweep ?timeout_s ?(on_event = fun (_ : Protocol.event) -> ()) t scenarios :
    (sweep_result, string) result =
  let id = fresh_id t in
  send t (Protocol.Sweep { id; scenarios; timeout_s });
  let rec collect acc =
    match read_event t with
    | Error e -> Error e
    | Ok ev -> (
      on_event ev;
      match ev with
      | Protocol.Outcome o when o.id = id -> collect (o.outcome :: acc)
      | Protocol.Done d when d.id = id ->
        Ok
          {
            runs = d.runs;
            failed = d.failed;
            skipped = d.skipped;
            timed_out = d.timed_out;
            elapsed_s = d.elapsed_s;
            outcomes = List.rev acc;
          }
      | Protocol.Error_event e when e.id = id ->
        Error (Printf.sprintf "%s: %s" e.code e.message)
      | _ -> collect acc)
  in
  collect []

(** Re-assemble a [dpc-sweep-v1] snapshot from a sweep's streamed
    records; identical to {!Dpc_experiments.Export.sweep_json} output
    for the same scenarios, modulo the [source] tag. *)
let sweep_snapshot ?(source = "dpc-client") (r : sweep_result) =
  Json.Obj
    [
      ("schema", Json.String "dpc-sweep-v1");
      ("source", Json.String source);
      ("runs", Json.List r.outcomes);
    ]

let expecting what = function
  | Error e -> Error e
  | Ok (Protocol.Error_event e) ->
    Error (Printf.sprintf "%s: %s" e.code e.message)
  | Ok _ -> Error (Printf.sprintf "protocol error: expected %s" what)

let stats t : (Json.t, string) result =
  let id = fresh_id t in
  send t (Protocol.Stats { id });
  match read_event t with
  | Ok (Protocol.Stats_event s) when s.id = id -> Ok s.stats
  | other -> expecting "stats" other

let ping t : (unit, string) result =
  let id = fresh_id t in
  send t (Protocol.Ping { id });
  match read_event t with
  | Ok (Protocol.Pong p) when p.id = id -> Ok ()
  | other -> expecting "pong" other

(** Ask the daemon to drain and exit; returns once the shutdown is
    acknowledged. *)
let shutdown t : (unit, string) result =
  let id = fresh_id t in
  send t (Protocol.Shutdown { id });
  match read_event t with
  | Ok (Protocol.Bye b) when b.id = id -> Ok ()
  | other -> expecting "bye" other

(** Block until the daemon answers a ping, retrying [every] seconds (for
    [attempts] tries) while the socket does not accept connections yet.
    For scripts that just started a daemon in the background. *)
let wait_ready ?(attempts = 100) ?(every = 0.05) path =
  let rec go n =
    match with_connection path ping with
    | Ok () -> true
    | Error _ | (exception Unix.Unix_error _) ->
      if n <= 1 then false
      else begin
        Unix.sleepf every;
        go (n - 1)
      end
  in
  go attempts
