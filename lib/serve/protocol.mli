(** The [dpc-serve-v1] wire protocol: newline-delimited JSON over a
    Unix-domain stream socket.

    A client sends one request object per line; the server answers with
    response-event lines echoing the request's [id].  A [sweep] request
    streams one [outcome] event per finished scenario (in submission
    order) and ends with a [done] event; outcome payloads are verbatim
    [dpc-sweep-v1] records ({!Dpc_experiments.Export.outcome_json}),
    with the serve-only fields (ids, sequence numbers, wall clocks) in
    the envelope. *)

module Json = Dpc_prof.Json

val version : string

type request =
  | Sweep of {
      id : string;
      scenarios : Dpc_engine.Scenario.t list;
      timeout_s : float option;  (** request-level wall-clock budget *)
    }
  | Stats of { id : string }
  | Ping of { id : string }
  | Shutdown of { id : string }

val request_id : request -> string
val request_to_json : request -> Json.t

(** [Error] carries the reason the server reports back as an [error]
    event. *)
val request_of_json : Json.t -> (request, string) result

val request_of_string : string -> (request, string) result

type event =
  | Outcome of {
      id : string;
      seq : int;  (** 0-based submission index within the request *)
      total : int;
      elapsed_s : float;  (** this scenario's wall clock on the server *)
      outcome : Json.t;  (** a [dpc-sweep-v1] outcome record, verbatim *)
    }
  | Done of {
      id : string;
      runs : int;
      failed : int;
      skipped : int;  (** scenarios dropped by the request timeout *)
      timed_out : bool;
      elapsed_s : float;  (** whole-request wall clock on the server *)
    }
  | Error_event of { id : string; code : string; message : string }
  | Stats_event of { id : string; stats : Json.t }
  | Pong of { id : string }
  | Bye of { id : string }  (** shutdown acknowledged; daemon draining *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val event_of_string : string -> (event, string) result

(** One message as its wire frame: compact JSON plus ['\n']. *)
val frame : Json.t -> string

(** Write one frame, looping over partial writes.
    @raise Unix.Unix_error when the peer is gone (e.g. [EPIPE]). *)
val write_frame : Unix.file_descr -> Json.t -> unit
