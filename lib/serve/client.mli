(** Client side of [dpc-serve-v1]: synchronous, one request in flight
    per connection.  Open several connections for concurrency — the
    server interleaves them at scenario granularity. *)

module Json = Dpc_prof.Json

type t

(** @raise Unix.Unix_error when nothing is listening at [path]. *)
val connect : string -> t

val close : t -> unit

(** [with_connection path f] runs [f] on a fresh connection, closing it
    on the way out (also on exceptions). *)
val with_connection : string -> (t -> 'a) -> 'a

type sweep_result = {
  runs : int;
  failed : int;  (** runs whose record carries an [error] member *)
  skipped : int;  (** scenarios dropped by the request timeout *)
  timed_out : bool;
  elapsed_s : float;  (** whole-request wall clock on the server *)
  outcomes : Json.t list;
      (** the streamed [dpc-sweep-v1] records, in submission order *)
}

(** Submit a sweep and block until its terminal event.  [on_event] sees
    every raw event as it arrives (progress displays); outcome payloads
    are also collected into the result.  [Error] carries the server's
    refusal (quota, draining, bad request) or a transport failure. *)
val sweep :
  ?timeout_s:float ->
  ?on_event:(Protocol.event -> unit) ->
  t ->
  Dpc_engine.Scenario.t list ->
  (sweep_result, string) result

(** Re-assemble a [dpc-sweep-v1] snapshot (default [source] tag:
    ["dpc-client"]) from a sweep's streamed records; record-wise
    byte-identical to {!Dpc_experiments.Export.sweep_json} for the same
    scenarios. *)
val sweep_snapshot : ?source:string -> sweep_result -> Json.t

val stats : t -> (Json.t, string) result

val ping : t -> (unit, string) result

(** Ask the daemon to drain and exit; returns once acknowledged. *)
val shutdown : t -> (unit, string) result

(** Block until the daemon at [path] answers a ping, retrying [every]
    seconds up to [attempts] times; [false] when it never came up. *)
val wait_ready : ?attempts:int -> ?every:float -> string -> bool
