(** The sweep-serving daemon core.

    One process owns one warm {!Dpc_engine.Session} (and therefore one
    {!Dpc_engine.Kcache}, optionally backed by the persistent on-disk
    store) and serves [dpc-serve-v1] requests from any number of
    clients over a Unix-domain socket.  Every client's programs hit the
    same cache: the first request pays each program family's build, all
    later requests — from any client — reuse it.

    {b Concurrency model.}  The server is a single-threaded [select]
    loop.  Socket work (accepting, reading requests, noticing
    disconnects) and scenario execution interleave at {e scenario}
    granularity: each loop iteration polls every socket, then executes
    at most one scenario of the front request and streams its outcome.
    Active requests take turns in a round-robin queue, so two
    concurrent sweeps make progress together instead of head-of-line
    blocking, and their clients see outcomes as they complete.  Nothing
    the simulator touches is shared across threads or domains, so no
    run can race another — the determinism story is the serial one.

    {b Isolation.}  A malformed or over-quota request is answered with
    an [error] event and the connection lives on; a failing scenario
    becomes an error-carrying outcome record (exactly as in
    {!Dpc_engine.Session.run_all}); a vanished client just gets its
    queued work dropped.  None of these kill the daemon.

    {b Timeouts.}  A request's wall-clock budget is checked between
    scenarios: when exceeded, the remaining scenarios are skipped and
    the terminal [done] event reports [timed_out] with the skip count.
    A single scenario is never preempted mid-simulation — the budget's
    granularity is one scenario.

    {b Shutdown.}  SIGINT/SIGTERM (via {!install_signal_handlers}) or a
    [shutdown] request put the server in draining mode: it stops
    accepting connections and new requests, finishes every queued
    scenario, flushes the streams, then closes sockets, unlinks the
    socket path and returns — so a supervisor sees exit 0 and clients
    see complete streams. *)

module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session
module Kcache = Dpc_engine.Kcache
module Pstore = Dpc_engine.Pstore
module Export = Dpc_experiments.Export
module Framing = Dpc_util.Framing

type config = {
  socket_path : string;
  cache_dir : string option;  (** persistent program cache directory *)
  max_scenarios : int;  (** per-request quota; [0] = unlimited *)
  max_timeout_s : float;
      (** cap (and default) for per-request budgets; [0.] = none *)
  strict_check : bool;
  verbose : bool;
}

let config ?(cache_dir = None) ?(max_scenarios = 10_000)
    ?(max_timeout_s = 0.) ?(strict_check = false) ?(verbose = false)
    socket_path =
  { socket_path; cache_dir; max_scenarios; max_timeout_s; strict_check;
    verbose }

type conn = {
  fd : Unix.file_descr;
  framing : Framing.t;
  cid : int;
  mutable alive : bool;
}

type job = {
  conn : conn;
  jid : string;
  total : int;
  mutable remaining : Scenario.t list;
  mutable seq : int;  (** scenarios already executed *)
  mutable failed : int;
  deadline : float option;
  started : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  session : Session.t;
  conns : (int, conn) Hashtbl.t;
  jobs : job Queue.t;
  mutable next_cid : int;
  mutable draining : bool;
  stop_flag : bool Atomic.t;  (** set by signal handlers *)
  started_at : float;
  (* stats *)
  mutable requests : int;
  mutable bad_requests : int;
  mutable completed : int;
  mutable timeouts : int;
  mutable outcomes : int;
  mutable failed_outcomes : int;
  mutable latency_total_s : float;
  mutable latency_max_s : float;
  mutable bank_replays : int;
      (** cumulative bank-conflict replays across served outcomes *)
  mutable mshr_stalls : int;
      (** cumulative MSHR stall cycles across served outcomes *)
}

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("dpcd: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* --- lifecycle ------------------------------------------------------------- *)

(* A stale socket file (previous daemon killed hard) must be removed
   before bind, but a *live* one must not be stolen: probe it with a
   connect first. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if live then
      failwith (Printf.sprintf "dpcd: %s already has a live server" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(** Bind the socket and build the warm session; the returned server is
    ready for {!run} (possibly from another domain).
    @raise Failure when [socket_path] already has a live server. *)
let create (cfg : config) =
  (* A client that disconnects mid-stream must not kill the daemon with
     SIGPIPE; writes fail with EPIPE instead, which the write path
     treats as "connection gone". *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  claim_socket_path cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let session =
    Session.create ~jobs:1 ?persist:cfg.cache_dir
      ~strict_check:cfg.strict_check ()
  in
  {
    cfg;
    listen_fd;
    session;
    conns = Hashtbl.create 16;
    jobs = Queue.create ();
    next_cid = 0;
    draining = false;
    stop_flag = Atomic.make false;
    started_at = Unix.gettimeofday ();
    requests = 0;
    bad_requests = 0;
    completed = 0;
    timeouts = 0;
    outcomes = 0;
    failed_outcomes = 0;
    latency_total_s = 0.;
    latency_max_s = 0.;
    bank_replays = 0;
    mshr_stalls = 0;
  }

let session t = t.session

(** Ask the loop to drain and exit; safe from a signal handler. *)
let request_stop t = Atomic.set t.stop_flag true

(** Install SIGINT/SIGTERM handlers that {!request_stop} this server
    (process-global; the standalone daemon calls it, in-process
    embeddings usually should not). *)
let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

(* --- connection I/O -------------------------------------------------------- *)

let close_conn t (c : conn) =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove t.conns c.cid;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    log t "conn %d closed" c.cid
  end

(** Stream one event; a failed write means the client is gone and kills
    only that connection. *)
let send t (c : conn) (e : Protocol.event) =
  if c.alive then
    try Protocol.write_frame c.fd (Protocol.event_to_json e)
    with Unix.Unix_error _ | Sys_error _ -> close_conn t c

(* --- request handling ------------------------------------------------------ *)

let effective_deadline t ~started ~requested =
  let cap = t.cfg.max_timeout_s in
  let budget =
    match (requested, cap) with
    | Some r, c when c > 0. -> Some (Float.min r c)
    | Some r, _ -> Some r
    | None, c when c > 0. -> Some c
    | None, _ -> None
  in
  Option.map (fun b -> started +. Float.max 0. b) budget

let finish_job t (job : job) ~timed_out =
  let elapsed_s = Unix.gettimeofday () -. job.started in
  send t job.conn
    (Protocol.Done
       {
         id = job.jid;
         runs = job.seq;
         failed = job.failed;
         skipped = List.length job.remaining;
         timed_out;
         elapsed_s;
       });
  if timed_out then t.timeouts <- t.timeouts + 1 else t.completed <- t.completed + 1;
  t.latency_total_s <- t.latency_total_s +. elapsed_s;
  if elapsed_s > t.latency_max_s then t.latency_max_s <- elapsed_s;
  log t "req %s on conn %d: %s (%d run, %d failed, %d skipped, %.3fs)"
    job.jid job.conn.cid
    (if timed_out then "timed out" else "done")
    job.seq job.failed (List.length job.remaining) elapsed_s

let stats_json t =
  let cache = Session.cache_stats t.session in
  let completed_reqs = t.completed + t.timeouts in
  Json.Obj
    ([
       ("schema", Json.String "dpc-serve-stats-v1");
       ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
       ("requests", Json.Int t.requests);
       ("bad_requests", Json.Int t.bad_requests);
       ("completed_requests", Json.Int t.completed);
       ("timed_out_requests", Json.Int t.timeouts);
       ("outcomes", Json.Int t.outcomes);
       ("failed_outcomes", Json.Int t.failed_outcomes);
       ( "memmodel",
         Json.Obj
           [
             ("bank_conflict_replays", Json.Int t.bank_replays);
             ("mshr_stalls", Json.Int t.mshr_stalls);
           ] );
       ("active_connections", Json.Int (Hashtbl.length t.conns));
       ("queued_requests", Json.Int (Queue.length t.jobs));
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Int cache.Kcache.hits);
             ("misses", Json.Int cache.Kcache.misses);
             ("disk_hits", Json.Int cache.Kcache.disk_hits);
             ("disk_writes", Json.Int cache.Kcache.disk_writes);
             ("programs", Json.Int (Session.cached_programs t.session));
           ] );
       ("steals", Json.Int (Session.last_steals t.session));
       ("cost_observations", Json.Int (Session.observed_costs t.session));
       ( "latency",
         Json.Obj
           [
             ("count", Json.Int completed_reqs);
             ( "mean_s",
               Json.Float
                 (if completed_reqs = 0 then 0.
                  else t.latency_total_s /. float_of_int completed_reqs) );
             ("max_s", Json.Float t.latency_max_s);
           ] );
     ]
    @
    match Session.persist_stats t.session with
    | None -> []
    | Some p ->
      [
        ( "persist",
          Json.Obj
            [
              ("loads", Json.Int p.Pstore.loads);
              ("load_failures", Json.Int p.Pstore.load_failures);
              ("stores", Json.Int p.Pstore.stores);
              ("store_failures", Json.Int p.Pstore.store_failures);
              ("verify_rejects", Json.Int p.Pstore.verify_rejects);
            ] );
      ])

let handle_request t (c : conn) (line : string) =
  if String.trim line <> "" then
    match Protocol.request_of_string line with
    | Error msg ->
      t.bad_requests <- t.bad_requests + 1;
      send t c
        (Protocol.Error_event { id = ""; code = "bad-request"; message = msg })
    | Ok (Protocol.Ping { id }) -> send t c (Protocol.Pong { id })
    | Ok (Protocol.Stats { id }) ->
      send t c (Protocol.Stats_event { id; stats = stats_json t })
    | Ok (Protocol.Shutdown { id }) ->
      log t "shutdown requested on conn %d" c.cid;
      send t c (Protocol.Bye { id });
      t.draining <- true
    | Ok (Protocol.Sweep { id; scenarios; timeout_s }) ->
      if t.draining then
        send t c
          (Protocol.Error_event
             {
               id;
               code = "shutting-down";
               message = "daemon is draining; request refused";
             })
      else begin
        t.requests <- t.requests + 1;
        let n = List.length scenarios in
        if t.cfg.max_scenarios > 0 && n > t.cfg.max_scenarios then begin
          t.bad_requests <- t.bad_requests + 1;
          send t c
            (Protocol.Error_event
               {
                 id;
                 code = "quota";
                 message =
                   Printf.sprintf
                     "request has %d scenarios; this server accepts at most \
                      %d per request"
                     n t.cfg.max_scenarios;
               })
        end
        else begin
          let started = Unix.gettimeofday () in
          let job =
            {
              conn = c;
              jid = id;
              total = n;
              remaining = scenarios;
              seq = 0;
              failed = 0;
              deadline = effective_deadline t ~started ~requested:timeout_s;
              started;
            }
          in
          log t "req %s on conn %d: sweep of %d scenarios" id c.cid n;
          if n = 0 then finish_job t job ~timed_out:false
          else Queue.add job t.jobs
        end
      end

let read_conn t (c : conn) =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn t c
  | 0 -> close_conn t c
  | n -> List.iter (handle_request t c) (Framing.feed c.framing buf ~len:n)

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    let c =
      { fd; framing = Framing.create (); cid = t.next_cid; alive = true }
    in
    t.next_cid <- t.next_cid + 1;
    Hashtbl.replace t.conns c.cid c;
    log t "conn %d accepted" c.cid

(* --- the executor ---------------------------------------------------------- *)

(* Run one scenario of the front job and stream its outcome; jobs of
   vanished connections are dropped wholesale (their work is cancelled),
   jobs past their deadline finish with [timed_out].  Re-queues the job
   when work remains, which is what round-robins concurrent requests. *)
let step_job t =
  match Queue.take_opt t.jobs with
  | None -> ()
  | Some job ->
    if not job.conn.alive then
      log t "req %s on conn %d: client gone, %d scenarios cancelled"
        job.jid job.conn.cid (List.length job.remaining)
    else if
      (* >=, not >: a zero budget must time out even when the clock has
         not ticked since the request was enqueued. *)
      match job.deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    then finish_job t job ~timed_out:true
    else begin
      match job.remaining with
      | [] -> finish_job t job ~timed_out:false
      | sc :: rest ->
        job.remaining <- rest;
        let o = Session.run_outcome t.session sc in
        t.outcomes <- t.outcomes + 1;
        (match o.Session.result with
        | Ok r ->
          t.bank_replays <-
            t.bank_replays + r.Dpc_sim.Metrics.bank_conflict_replays;
          t.mshr_stalls <- t.mshr_stalls + r.Dpc_sim.Metrics.mshr_stalls
        | Error _ ->
          t.failed_outcomes <- t.failed_outcomes + 1;
          job.failed <- job.failed + 1);
        send t job.conn
          (Protocol.Outcome
             {
               id = job.jid;
               seq = job.seq;
               total = job.total;
               elapsed_s = o.Session.elapsed_s;
               outcome = Export.outcome_json o;
             });
        job.seq <- job.seq + 1;
        if job.remaining = [] then finish_job t job ~timed_out:false
        else Queue.add job t.jobs
    end

(* --- the loop -------------------------------------------------------------- *)

(** Serve until a shutdown request or {!request_stop}, then drain queued
    work, close every socket and unlink the socket path.  Returns when
    fully drained. *)
let run t =
  log t "listening on %s%s" t.cfg.socket_path
    (match t.cfg.cache_dir with
    | Some d -> Printf.sprintf " (persistent cache: %s)" d
    | None -> "");
  let finished () = t.draining && Queue.is_empty t.jobs in
  while not (finished ()) do
    if Atomic.get t.stop_flag then t.draining <- true;
    if not (finished ()) then begin
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> if c.alive then c.fd :: acc else acc)
          t.conns []
      in
      let read_set =
        if t.draining then conn_fds else t.listen_fd :: conn_fds
      in
      (* Busy only when there is queued work; otherwise park in select
         briefly so signal-driven stops are still noticed promptly. *)
      let timeout = if Queue.is_empty t.jobs then 0.2 else 0. in
      (match Unix.select read_set [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_conn t
            else
              match
                Hashtbl.fold
                  (fun _ c acc -> if c.fd = fd then Some c else acc)
                  t.conns None
              with
              | Some c -> read_conn t c
              | None -> ())
          ready);
      step_job t
    end
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  log t "drained; bye"
