(** The sweep-serving daemon core: one warm {!Dpc_engine.Session} (and
    optional persistent on-disk program cache) behind a Unix-domain
    socket speaking [dpc-serve-v1] ({!Protocol}).

    Single-threaded [select] loop; concurrent requests interleave at
    scenario granularity (round-robin), so all clients see outcomes
    stream as they complete.  Per-request failures (bad JSON, quota,
    scenario errors, vanished clients) never kill the daemon. *)

type config = {
  socket_path : string;
  cache_dir : string option;
      (** persistent program cache directory; [None] = in-memory only *)
  max_scenarios : int;  (** per-request quota; [0] = unlimited *)
  max_timeout_s : float;
      (** cap (and default) for per-request wall-clock budgets;
          [0.] = none.  Budgets are enforced between scenarios: a
          scenario is never preempted mid-simulation. *)
  strict_check : bool;  (** install the static verifier's strict hook *)
  verbose : bool;  (** log connections/requests to stderr *)
}

val config :
  ?cache_dir:string option ->
  ?max_scenarios:int ->
  ?max_timeout_s:float ->
  ?strict_check:bool ->
  ?verbose:bool ->
  string ->
  config

type t

(** Bind the socket and build the warm session; the returned server is
    ready for {!run} (possibly from another domain).  Replaces a stale
    socket file, but refuses to steal a live one.  Also ignores SIGPIPE
    process-wide so vanished clients surface as [EPIPE].
    @raise Failure when [socket_path] already has a live server.
    @raise Unix.Unix_error when the socket cannot be bound. *)
val create : config -> t

(** The shared warm session (for embedding tests and stats). *)
val session : t -> Dpc_engine.Session.t

(** The [stats]-verb payload, computable at any time. *)
val stats_json : t -> Dpc_prof.Json.t

(** Ask the loop to drain and exit; safe from a signal handler or
    another domain. *)
val request_stop : t -> unit

(** Install SIGINT/SIGTERM handlers that {!request_stop} this server.
    Process-global: the standalone daemon calls it; in-process
    embeddings (tests, benchmarks) should not. *)
val install_signal_handlers : t -> unit

(** Serve until a [shutdown] request or {!request_stop}, then drain all
    queued work (clients see complete streams), close every socket and
    unlink the socket path.  Returns when fully drained. *)
val run : t -> unit
