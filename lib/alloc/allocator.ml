(** Device-heap allocators for consolidation buffers (Section IV.E).

    The paper compares three ways to allocate consolidation buffers from
    device code:

    - [Default]: the CUDA device-side [malloc]/[free].  Functionally a
      fresh buffer; the cost model charges the documented heavy per-call
      overhead (heap lock, free-list walk).
    - [Halloc]: Adinetz's slab-based GPU allocator.  We implement the slab
      bookkeeping (size classes, slab carving from a pool) so allocation
      counts and fragmentation are real, with a cheaper — but still
      per-call — cost.
    - [Pool]: the paper's customized allocator: a pre-allocated memory
      pool (500 MB by default) carved by a single atomic bump per
      allocation.  The per-buffer size is predicted by the transform
      (see [Dpc.Transform]); if the pool is exhausted the allocator falls
      back to [Default] behaviour and records the fallback (ablation 4 in
      DESIGN.md).

    Every [alloc]/[free] returns the cycle cost the calling warp pays;
    the simulator charges it to the executing segment. *)

module Memory = Dpc_gpu.Memory

type kind = Default | Halloc | Pool

let kind_to_string = function
  | Default -> "default"
  | Halloc -> "halloc"
  | Pool -> "pre-alloc"

type costs = {
  alloc_cycles : int;
  free_cycles : int;
  serial_cycles : int;
      (** queueing cost per already-in-flight allocation: the device heap
          serializes concurrent calls on a global lock, so an allocation's
          latency grows with the number of allocations contending with it *)
}

(* Cost-model constants, cycles per call.  The default heap serializes on a
   global lock and walks free lists; halloc shards the lock over slabs but
   still serializes within a slab set; the pool is one atomicAdd. *)
let default_costs = { alloc_cycles = 4_000; free_cycles = 900; serial_cycles = 1_600 }
let halloc_costs = { alloc_cycles = 2_600; free_cycles = 600; serial_cycles = 1_100 }
let pool_costs = { alloc_cycles = 40; free_cycles = 8; serial_cycles = 0 }

(* --- halloc slab bookkeeping ------------------------------------------ *)

type slab_state = {
  mutable slabs_carved : int;
  (* free blocks per size class (16B << class) *)
  class_free : int array;
  slab_bytes : int;
}

let halloc_classes = 16

let make_slab_state () =
  { slabs_carved = 0; class_free = Array.make halloc_classes 0;
    slab_bytes = 4096 }

let size_class bytes =
  let rec go c sz = if sz >= bytes || c = halloc_classes - 1 then c
    else go (c + 1) (sz * 2)
  in
  go 0 16

type t = {
  kind : kind;
  costs : costs;
  pool_bytes : int;  (** capacity of the pre-allocated pool *)
  mutable pool_used : int;
  slab : slab_state;
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_served : int;
  mutable pool_fallbacks : int;  (** pool exhausted -> default path *)
  mutable live_bytes : (int, int) Hashtbl.t;  (** buf id -> bytes *)
  heap_ids : (int, unit) Hashtbl.t;
      (** buffers actually serviced by the default heap (pool-exhaustion
          fallbacks, halloc oversize requests): their [free] must pay the
          default heap's cost, not the owning allocator's *)
}

let create ?(pool_bytes = 500 * 1024 * 1024) kind =
  {
    kind;
    costs =
      (match kind with
      | Default -> default_costs
      | Halloc -> halloc_costs
      | Pool -> pool_costs);
    pool_bytes;
    pool_used = 0;
    slab = make_slab_state ();
    allocs = 0;
    frees = 0;
    bytes_served = 0;
    pool_fallbacks = 0;
    live_bytes = Hashtbl.create 64;
    heap_ids = Hashtbl.create 16;
  }

let kind t = t.kind

let allocs t = t.allocs
let frees t = t.frees
let bytes_served t = t.bytes_served
let pool_fallbacks t = t.pool_fallbacks
let pool_used t = t.pool_used

(** Allocate [count] 32-bit elements; returns the fresh buffer and the
    cycle cost paid by the allocating warp.  [contention] is the number of
    allocation calls already issued by the same grid (the heap-lock queue
    this call waits behind). *)
let alloc ?(contention = 0) t mem ~name ~count =
  let count = Int.max 1 count in
  let bytes = count * Memory.elem_bytes in
  t.allocs <- t.allocs + 1;
  t.bytes_served <- t.bytes_served + bytes;
  let queue = contention * t.costs.serial_cycles in
  (* Requests punted to the default heap pay its full price, including its
     own (heavier) lock-queue term. *)
  let heap_cost = default_costs.alloc_cycles + (contention * default_costs.serial_cycles) in
  let cost, on_heap =
    match t.kind with
    | Default -> (t.costs.alloc_cycles + queue, false)
    | Halloc ->
      if bytes > t.slab.slab_bytes then
        (* Oversize request: no slab can hold it; halloc forwards it to the
           device heap instead of carving slabs that yield zero blocks. *)
        (heap_cost, true)
      else begin
        (* Hashed slab lookup; carving a fresh slab costs extra. *)
        let cls = size_class bytes in
        if t.slab.class_free.(cls) > 0 then begin
          t.slab.class_free.(cls) <- t.slab.class_free.(cls) - 1;
          (t.costs.alloc_cycles + queue, false)
        end
        else begin
          t.slab.slabs_carved <- t.slab.slabs_carved + 1;
          let block = Int.max 16 (16 lsl cls) in
          t.slab.class_free.(cls) <-
            t.slab.class_free.(cls) + Int.max 0 ((t.slab.slab_bytes / block) - 1);
          (t.costs.alloc_cycles + queue + 800, false)
        end
      end
    | Pool ->
      if t.pool_used + bytes <= t.pool_bytes then begin
        t.pool_used <- t.pool_used + bytes;
        (t.costs.alloc_cycles, false)
      end
      else begin
        (* Pool exhausted: fall back to the default heap. *)
        t.pool_fallbacks <- t.pool_fallbacks + 1;
        (heap_cost, true)
      end
  in
  let buf = Memory.alloc_int mem ~name count in
  Hashtbl.replace t.live_bytes buf.Memory.id bytes;
  if on_heap then Hashtbl.replace t.heap_ids buf.Memory.id ();
  (buf, cost)

(** Release a buffer previously returned by [alloc]; returns the cycle
    cost.  The pool allocator reclaims nothing (bump allocation); its pool
    is reset wholesale between kernels via {!reset_pool}. *)
let free t (buf : Memory.buf) =
  t.frees <- t.frees + 1;
  let on_heap = Hashtbl.mem t.heap_ids buf.Memory.id in
  Hashtbl.remove t.heap_ids buf.Memory.id;
  (match Hashtbl.find_opt t.live_bytes buf.Memory.id with
  | Some bytes ->
    Hashtbl.remove t.live_bytes buf.Memory.id;
    (match t.kind with
    | Halloc when not on_heap ->
      let cls = size_class bytes in
      t.slab.class_free.(cls) <- t.slab.class_free.(cls) + 1
    | Halloc | Default | Pool -> ())
  | None -> ());
  (* Buffers that came from the default heap pay its release cost. *)
  if on_heap then default_costs.free_cycles else t.costs.free_cycles

(** Reset the bump pointer of the pre-allocated pool (between host
    launches); no-op for the other allocators. *)
let reset_pool t = if t.kind = Pool then t.pool_used <- 0
