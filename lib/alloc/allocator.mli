(** Device-heap allocators for consolidation buffers (Section IV.E).

    Three allocators, as in the paper's Fig. 5 comparison:

    - [Default] — the CUDA device-side [malloc]: heavy per-call cost and a
      global heap lock, modeled as a queueing cost that grows with the
      number of contending allocations;
    - [Halloc] — a slab allocator in the style of Adinetz's halloc: real
      size-class/slab bookkeeping, cheaper but still lock-limited;
    - [Pool] — the paper's customized allocator: a pre-allocated pool
      (500 MB by default) carved by one atomic bump per call; exhaustion
      falls back to the default heap and is counted.

    Every [alloc]/[free] returns the cycle cost the calling warp pays; the
    simulator charges it to the executing trace segment. *)

type kind = Default | Halloc | Pool

val kind_to_string : kind -> string

type t

val create : ?pool_bytes:int -> kind -> t
val kind : t -> kind

(** Statistics. *)
val allocs : t -> int

val frees : t -> int
val bytes_served : t -> int

(** Pool-exhaustion fallbacks to the default heap (ablation A4). *)
val pool_fallbacks : t -> int

val pool_used : t -> int

(** [alloc ?contention t mem ~name ~count] allocates [count] (≥ 1)
    32-bit elements and returns the buffer plus the cycle cost.
    [contention] is the number of allocation calls already issued by the
    same grid — the heap-lock queue this call waits behind. *)
val alloc :
  ?contention:int ->
  t ->
  Dpc_gpu.Memory.t ->
  name:string ->
  count:int ->
  Dpc_gpu.Memory.buf * int

(** Release a buffer; returns the cycle cost.  The pool allocator reclaims
    nothing per-buffer (bump allocation).  Buffers that were actually
    serviced by the default heap — pool-exhaustion fallbacks and halloc
    oversize requests — pay the default heap's release cost. *)
val free : t -> Dpc_gpu.Memory.buf -> int

(** Reset the pool's bump pointer (between logical phases); no-op for the
    other allocators. *)
val reset_pool : t -> unit
