(** Deep-copying AST rewriter with hooks.

    The consolidation transforms are expressed as rewrites: substitute
    special registers (e.g. [blockIdx.x -> 0] when inlining a solo-block
    child), replace launch statements with buffer insertions, or drop
    statements.  The rewriter always returns fresh [var] cells (like
    {!Ast.copy_stmt}) so the output can be finalized independently. *)

open Ast

type hooks = {
  special : special -> expr option;
      (** replace a special register by an expression *)
  launch : launch -> stmt list option;
      (** replace a launch statement (the replacement is NOT rewritten) *)
  stmt : stmt -> stmt list option;
      (** replace any other statement before recursion (the replacement is
          NOT rewritten); applied before the structural walk *)
}

let no_hooks =
  { special = (fun _ -> None); launch = (fun _ -> None); stmt = (fun _ -> None) }

let rec rw_expr h (e : expr) : expr =
  match e with
  | Const v -> Const v
  | Var v -> Var (var v.name)
  | Special s -> (
    match h.special s with
    | Some replacement -> copy_expr replacement
    | None -> Special s)
  | Unop (op, a) -> Unop (op, rw_expr h a)
  | Binop (op, a, b) -> Binop (op, rw_expr h a, rw_expr h b)
  | Load (b, i) -> Load (rw_expr h b, rw_expr h i)
  | Shared_load (n, i) -> Shared_load (n, rw_expr h i)
  | Buf_len b -> Buf_len (rw_expr h b)

let rec rw_stmt h (s : stmt) : stmt list =
  match h.stmt s with
  | Some replacement -> List.map copy_stmt replacement
  | None -> (
    match s with
    | Let (v, e) -> [ Let (var v.name, rw_expr h e) ]
    | Store (b, i, x) -> [ Store (rw_expr h b, rw_expr h i, rw_expr h x) ]
    | Shared_store (n, i, x) -> [ Shared_store (n, rw_expr h i, rw_expr h x) ]
    | If (c, t, f) -> [ If (rw_expr h c, rw_block h t, rw_block h f) ]
    | While (c, b) -> [ While (rw_expr h c, rw_block h b) ]
    | For (v, lo, hi, b) ->
      [ For (var v.name, rw_expr h lo, rw_expr h hi, rw_block h b) ]
    | Syncthreads -> [ Syncthreads ]
    | Device_sync -> [ Device_sync ]
    | Grid_barrier -> [ Grid_barrier ]
    | Return -> [ Return ]
    | Atomic { op; buf; idx; operand; compare; old } ->
      [
        Atomic
          {
            op;
            buf = rw_expr h buf;
            idx = rw_expr h idx;
            operand = rw_expr h operand;
            compare = Option.map (rw_expr h) compare;
            old = Option.map (fun (v : var) -> var v.name) old;
          };
      ]
    | Launch l -> (
      match h.launch l with
      | Some replacement -> List.map copy_stmt replacement
      | None ->
        [
          Launch
            {
              l with
              grid = rw_expr h l.grid;
              block = rw_expr h l.block;
              args = List.map (rw_expr h) l.args;
            };
        ])
    | Malloc { dst; count; scope; site = _ } ->
      [ Malloc { dst = var dst.name; count = rw_expr h count; scope; site = -1 } ]
    | Free e -> [ Free (rw_expr h e) ])

and rw_block h (b : stmt list) : stmt list = List.concat_map (rw_stmt h) b

(** Substitute special registers throughout a block (deep copy). *)
let subst_specials mapping block =
  rw_block { no_hooks with special = mapping } block

(** Variables read by a block before being defined in it, excluding the
    given bound names.  Used to check the postwork self-containment rule. *)
let free_reads ~bound (block : stmt list) : string list =
  let bound = ref bound in
  let reads = ref [] in
  let note_read name =
    if (not (List.mem name !bound)) && not (List.mem name !reads) then
      reads := name :: !reads
  in
  let note_bind name = if not (List.mem name !bound) then bound := name :: !bound in
  let rec expr = function
    | Const _ | Special _ -> ()
    | Var v -> note_read v.name
    | Unop (_, a) | Shared_load (_, a) | Buf_len a -> expr a
    | Binop (_, a, b) | Load (a, b) ->
      expr a;
      expr b
  in
  let rec stmt = function
    | Let (v, e) ->
      expr e;
      note_bind v.name
    | Store (a, b, c) ->
      expr a; expr b; expr c
    | Shared_store (_, b, c) ->
      expr b; expr c
    | If (c, t, f) ->
      expr c;
      List.iter stmt t;
      List.iter stmt f
    | While (c, b) ->
      expr c;
      List.iter stmt b
    | For (v, lo, hi, b) ->
      expr lo;
      expr hi;
      note_bind v.name;
      List.iter stmt b
    | Syncthreads | Device_sync | Grid_barrier | Return -> ()
    | Atomic { buf; idx; operand; compare; old; _ } ->
      expr buf; expr idx; expr operand;
      Option.iter expr compare;
      Option.iter (fun (v : var) -> note_bind v.name) old
    | Launch l ->
      expr l.grid;
      expr l.block;
      List.iter expr l.args
    | Malloc { dst; count; _ } ->
      expr count;
      note_bind dst.name
    | Free e -> expr e
  in
  List.iter stmt block;
  List.rev !reads
