(** Forward slot-type inference for the interpreter's compiled fast path.

    The IR is dynamically typed ({!Value.t}); the AST walker carries boxed
    values for every lane.  Most kernels, however, are monomorphic: every
    value a frame slot ever holds is an int, a float, or a buffer handle.
    This module proves that with a small forward fixpoint over the kernel
    body so [Dpc_sim] can keep such slots in unboxed [int array] /
    [float array] register planes, and [Dpc_check] can reuse the same
    dataflow scaffolding for its verifier passes.

    The analysis is deliberately conservative:

    - a slot's type is the join of the types of every expression assigned
      to it ([Let], [For] induction variables, [Atomic] old bindings,
      [Malloc] destinations, parameter declarations);
    - a use that is not dominated by an assignment ("definitely assigned"
      in the Java sense, computed with set intersection at control-flow
      merges) also joins the implicit initial value, [Vint 0];
    - buffer-typed slots track their element type ([Eint]/[Efloat]) so
      loads through them stay typed; element types come from parameter
      declarations ([int*]/[float*]) and from [Malloc] (always int);
    - anything mixed, unknown, or error-prone joins to [St_boxed], and the
      compiled path falls back to boxed {!Value.t} lanes there, which by
      construction reproduces the reference walker exactly.

    Shared arrays get the same treatment, keyed by the type of every value
    stored into them ([Sh_int] when all stores are ints, else boxed). *)

type elem = Eint | Efloat | Eany

(** Lattice of slot types: [St_bot] < {int, float, buf} < [St_boxed]. *)
type slot_ty = St_bot | St_int | St_float | St_buf of elem | St_boxed

type sh_ty = Sh_bot | Sh_int | Sh_boxed

(** Static type of an expression occurrence.  [E_dyn] means "anything the
    reference walker could produce, including a runtime type error". *)
type ety = E_int | E_float | E_buf of elem | E_dyn

type t = {
  slots : slot_ty array;  (** indexed by resolved frame slot *)
  shared : (string * sh_ty) list;  (** same order as the kernel's decls *)
  ok : bool;
      (** false when the body contains unresolved variable slots; the
          compiled path must then refuse the kernel entirely *)
}

val slot_ty_to_string : slot_ty -> string

(** Lattice joins (least upper bounds). *)
val join : slot_ty -> slot_ty -> slot_ty

val join_sh : sh_ty -> sh_ty -> sh_ty

val of_ety : ety -> slot_ty

(** Static type a [Var] occurrence of a slot evaluates to. *)
val ety_of_slot : slot_ty -> ety

val of_param_ty : Ast.ty -> slot_ty

(** Run the forward fixpoint over a finalized body.  [nslots] must cover
    every resolved slot; unresolved occurrences set [ok = false]. *)
val infer :
  params:Ast.param list ->
  shared:(string * int) list ->
  nslots:int ->
  Ast.stmt list ->
  t
