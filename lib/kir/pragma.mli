(** The [#pragma dp] directive (Table I of the paper).

    Grammar: [#pragma dp clause+] with clauses

    - [consldt(warp|block|grid)] — consolidation granularity (required)
    - [buffer(default|halloc|custom [, perBufferSize: <int|var>] [, totalSize: <int>])]
    - [work(v1, v2, ...)] — variables (indexes or pointers) to buffer (required)
    - [threads(<int>)] — threads/block of the consolidated kernel
    - [blocks(<int>)] — blocks of the consolidated kernel

    This module only defines the directive's abstract syntax; parsing from
    source text lives in [Dpc_minicu.Pragma_parser] and the transformations
    that consume it live in the core [Dpc] library. *)

type granularity = Warp | Block | Grid

type buffer_alloc = Default | Halloc | Custom

type size = Size_const of int | Size_var of string
    (** [perBufferSize] may name a runtime variable that bounds the number
        of work items of the current thread (e.g. a node's child count). *)

type t = {
  granularity : granularity;
  buffer : buffer_alloc;
  per_buffer_size : size option;
  total_size : int option;  (** bytes of the pre-allocated pool *)
  work : string list;
  threads : int option;
  blocks : int option;
  line : int;  (** source line of the directive; 0 when built in memory *)
}

(** 500 MB, Section IV.E. *)
val default_total_size : int

(** [const] in the paper's perBufferSize prediction
    [totalThread * totalBuffVar * const]: estimated work items per thread. *)
val default_items_per_thread : int

(** @raise Invalid_argument on an empty work varlist. *)
val make :
  ?buffer:buffer_alloc ->
  ?per_buffer_size:size ->
  ?total_size:int ->
  ?threads:int ->
  ?blocks:int ->
  ?line:int ->
  granularity:granularity ->
  work:string list ->
  unit ->
  t

val granularity_to_string : granularity -> string
val buffer_alloc_to_string : buffer_alloc -> string

(** Render back to directive syntax (used by the printer round-trip). *)
val to_string : t -> string
