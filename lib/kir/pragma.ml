(** The [#pragma dp] directive (Table I of the paper).

    Grammar: [#pragma dp clause+] with clauses

    - [consldt(warp|block|grid)] — consolidation granularity (required)
    - [buffer(default|halloc|custom [, perBufferSize: <int|var>] [, totalSize: <int>])]
    - [work(v1, v2, ...)] — variables (indexes or pointers) to buffer (required)
    - [threads(<int>)] — threads/block of the consolidated kernel
    - [blocks(<int>)] — blocks of the consolidated kernel

    This module only defines the directive's abstract syntax; parsing from
    source text lives in [Dpc_minicu.Pragma_parser] and the transformations
    that consume it live in the core [Dpc] library. *)

type granularity = Warp | Block | Grid

type buffer_alloc = Default | Halloc | Custom

type size = Size_const of int | Size_var of string
    (** [perBufferSize] may name a runtime variable that bounds the number
        of work items of the current thread (e.g. a node's child count). *)

type t = {
  granularity : granularity;
  buffer : buffer_alloc;
  per_buffer_size : size option;
  total_size : int option;  (** bytes of the pre-allocated pool *)
  work : string list;
  threads : int option;
  blocks : int option;
  line : int;  (** source line of the directive; 0 when built in memory *)
}

let default_total_size = 500 * 1024 * 1024  (* 500 MB, Section IV.E *)

(** [const] in the paper's perBufferSize prediction
    [totalThread * totalBuffVar * const]: estimated work items per thread. *)
let default_items_per_thread = 4

let make ?(buffer = Custom) ?per_buffer_size ?total_size ?threads ?blocks
    ?(line = 0) ~granularity ~work () =
  if work = [] then invalid_arg "Pragma.make: empty work varlist";
  { granularity; buffer; per_buffer_size; total_size; work; threads; blocks;
    line }

let granularity_to_string = function
  | Warp -> "warp"
  | Block -> "block"
  | Grid -> "grid"

let buffer_alloc_to_string = function
  | Default -> "default"
  | Halloc -> "halloc"
  | Custom -> "custom"

let to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "#pragma dp consldt(%s)" (granularity_to_string t.granularity));
  let size_opts =
    (match t.per_buffer_size with
    | Some (Size_const n) -> [ Printf.sprintf "perBufferSize: %d" n ]
    | Some (Size_var v) -> [ Printf.sprintf "perBufferSize: %s" v ]
    | None -> [])
    @
    match t.total_size with
    | Some n -> [ Printf.sprintf "totalSize: %d" n ]
    | None -> []
  in
  Buffer.add_string buf
    (Printf.sprintf " buffer(%s%s)"
       (buffer_alloc_to_string t.buffer)
       (match size_opts with
       | [] -> ""
       | l -> ", " ^ String.concat ", " l));
  Buffer.add_string buf
    (Printf.sprintf " work(%s)" (String.concat ", " t.work));
  Option.iter (fun n -> Buffer.add_string buf (Printf.sprintf " threads(%d)" n)) t.threads;
  Option.iter (fun n -> Buffer.add_string buf (Printf.sprintf " blocks(%d)" n)) t.blocks;
  Buffer.contents buf
