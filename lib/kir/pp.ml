(** Pretty-printer from the kernel IR to MiniCU source.

    MiniCU is this project's CUDA-lite concrete syntax (see
    [lib/minicu]): the printer and the parser round-trip, which is what
    makes the consolidation compiler genuinely source-to-source. *)

open Ast

let special_to_string = function
  | Thread_idx -> "threadIdx.x"
  | Block_idx -> "blockIdx.x"
  | Block_dim -> "blockDim.x"
  | Grid_dim -> "gridDim.x"
  | Lane_id -> "laneId"
  | Warp_id -> "warpId"
  | Warp_size -> "warpSize"

let binop_info = function
  | Mul -> ("*", 10) | Div -> ("/", 10) | Mod -> ("%", 10)
  | Add -> ("+", 9) | Sub -> ("-", 9)
  | Shl -> ("<<", 8) | Shr -> (">>", 8)
  | Lt -> ("<", 7) | Le -> ("<=", 7) | Gt -> (">", 7) | Ge -> (">=", 7)
  | Eq -> ("==", 6) | Ne -> ("!=", 6)
  | Bit_and -> ("&", 5)
  | Bit_xor -> ("^", 4)
  | Bit_or -> ("|", 3)
  | And -> ("&&", 2)
  | Or -> ("||", 1)
  | Min -> ("min", 11)  (* rendered as a call *)
  | Max -> ("max", 11)

let rec expr_prec (e : expr) : string * int =
  match e with
  | Const (Value.Vint n) ->
    if n < 0 then (Printf.sprintf "(%d)" n, 11) else (string_of_int n, 12)
  | Const (Value.Vfloat x) -> (Printf.sprintf "%hf" x, 12)
  | Const (Value.Vbuf b) -> (Printf.sprintf "__buf(%d)" b, 12)
  | Var v -> (v.name, 12)
  | Special s -> (special_to_string s, 12)
  | Unop (Neg, a) -> (Printf.sprintf "-%s" (atom a), 11)
  | Unop (Not, a) -> (Printf.sprintf "!%s" (atom a), 11)
  | Unop (To_float, a) -> (Printf.sprintf "(float)%s" (atom a), 11)
  | Unop (To_int, a) -> (Printf.sprintf "(int)%s" (atom a), 11)
  | Binop (((Min | Max) as op), a, b) ->
    let name = match op with Min -> "min" | _ -> "max" in
    (Printf.sprintf "%s(%s, %s)" name (expr a) (expr b), 12)
  | Binop (op, a, b) ->
    let sym, prec = binop_info op in
    let pa = at_least prec a and pb = at_least (prec + 1) b in
    (Printf.sprintf "%s %s %s" pa sym pb, prec)
  | Load (b, i) -> (Printf.sprintf "%s[%s]" (atom b) (expr i), 12)
  | Shared_load (n, i) -> (Printf.sprintf "%s[%s]" n (expr i), 12)
  | Buf_len b -> (Printf.sprintf "__len(%s)" (expr b), 12)

and expr e = fst (expr_prec e)

and at_least prec e =
  let s, p = expr_prec e in
  if p < prec then "(" ^ s ^ ")" else s

and atom e = at_least 12 e

let atomic_name = function
  | Aadd -> "atomicAdd"
  | Amin -> "atomicMin"
  | Amax -> "atomicMax"
  | Aexch -> "atomicExch"
  | Acas -> "atomicCAS"

let scope_suffix = function
  | Per_warp -> "warp"
  | Per_block -> "block"
  | Per_grid -> "grid"

(* Declared-variable tracking: the first assignment of a name prints as a
   [var] declaration, later ones as plain assignments. *)
type ctx = { buf : Buffer.t; mutable declared : string list }

let declare ctx name =
  if List.mem name ctx.declared then false
  else begin
    ctx.declared <- name :: ctx.declared;
    true
  end

let add ctx indent fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make indent ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let lhs ctx (v : var) =
  if declare ctx v.name then "var " ^ v.name else v.name

let rec stmt ctx indent (s : Ast.stmt) =
  match s with
  | Let (v, e) -> add ctx indent "%s = %s;" (lhs ctx v) (expr e)
  | Store (b, i, x) -> add ctx indent "%s[%s] = %s;" (atom b) (expr i) (expr x)
  | Shared_store (n, i, x) -> add ctx indent "%s[%s] = %s;" n (expr i) (expr x)
  | If (c, t, []) ->
    add ctx indent "if (%s) {" (expr c);
    block ctx (indent + 2) t;
    add ctx indent "}"
  | If (c, t, f) ->
    add ctx indent "if (%s) {" (expr c);
    block ctx (indent + 2) t;
    add ctx indent "} else {";
    block ctx (indent + 2) f;
    add ctx indent "}"
  | While (c, b) ->
    add ctx indent "while (%s) {" (expr c);
    block ctx (indent + 2) b;
    add ctx indent "}"
  | For (v, lo, hi, b) ->
    let decl = if declare ctx v.name then "var " else "" in
    add ctx indent "for (%s%s = %s; %s < %s; %s = %s + 1) {" decl v.name
      (expr lo) v.name (expr hi) v.name v.name;
    block ctx (indent + 2) b;
    add ctx indent "}"
  | Syncthreads -> add ctx indent "__syncthreads();"
  | Device_sync -> add ctx indent "cudaDeviceSynchronize();"
  | Grid_barrier -> add ctx indent "__dp_global_barrier();"
  | Return -> add ctx indent "return;"
  | Atomic { op; buf; idx; operand; compare; old } ->
    let call =
      match compare with
      | Some c ->
        Printf.sprintf "%s(%s, %s, %s, %s)" (atomic_name op) (atom buf)
          (expr idx) (expr c) (expr operand)
      | None ->
        Printf.sprintf "%s(%s, %s, %s)" (atomic_name op) (atom buf) (expr idx)
          (expr operand)
    in
    (match old with
    | Some v -> add ctx indent "%s = %s;" (lhs ctx v) call
    | None -> add ctx indent "%s;" call)
  | Launch l ->
    Option.iter (fun p -> add ctx indent "%s" (Pragma.to_string p)) l.pragma;
    add ctx indent "launch %s<<<%s, %s>>>(%s);" l.callee (expr l.grid)
      (expr l.block)
      (String.concat ", " (List.map expr l.args))
  | Malloc { dst; count; scope; _ } ->
    add ctx indent "%s = __dp_malloc_%s(%s);" (lhs ctx dst)
      (scope_suffix scope) (expr count)
  | Free e -> add ctx indent "__dp_free(%s);" (expr e)

and block ctx indent b = List.iter (stmt ctx indent) b

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tptr_int -> "int*"
  | Tptr_float -> "float*"

let kernel (k : Kernel.t) =
  let ctx = { buf = Buffer.create 512; declared = [] } in
  List.iter (fun (p : param) -> ignore (declare ctx p.pname)) k.params;
  let params =
    String.concat ", "
      (List.map
         (fun (p : param) ->
           Printf.sprintf "%s %s" (ty_to_string p.ptype) p.pname)
         k.params)
  in
  add ctx 0 "__global__ void %s(%s) {" k.kname params;
  List.iter
    (fun (name, size) ->
      ignore (declare ctx name);
      add ctx 2 "__shared__ int %s[%d];" name size)
    k.shared;
  block ctx 2 k.body;
  add ctx 0 "}";
  Buffer.contents ctx.buf

let program (p : Kernel.Program.t) =
  String.concat "\n" (List.map kernel (Kernel.Program.kernels p))
