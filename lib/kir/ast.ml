(** Abstract syntax of the kernel IR.

    The IR models the CUDA subset needed by the paper's basic-DP template
    (Fig. 1): 1-D grids of 1-D blocks, global- and shared-memory accesses,
    atomics, intra-block synchronization, device-side kernel launches,
    device-side synchronization, device heap allocation, and the custom
    grid-wide barrier of Section IV.E.

    Variable occurrences carry a mutable [slot]; {!Kernel.finalize} resolves
    every occurrence to a dense frame index so the interpreter never hashes
    names.  Transformations that move subtrees between kernels must
    deep-copy them ({!copy_stmt}) so slot resolution cannot alias. *)

type ty = Tint | Tfloat | Tptr_int | Tptr_float

type var = { name : string; mutable slot : int }

let var name = { name; slot = -1 }

type special =
  | Thread_idx  (** threadIdx.x *)
  | Block_idx  (** blockIdx.x *)
  | Block_dim  (** blockDim.x *)
  | Grid_dim  (** gridDim.x *)
  | Lane_id  (** threadIdx.x mod warpSize *)
  | Warp_id  (** threadIdx.x / warpSize, within the block *)
  | Warp_size

type unop = Neg | Not | To_float | To_int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge
  | Shl | Shr | Bit_and | Bit_or | Bit_xor

type atomic_op = Aadd | Amin | Amax | Aexch | Acas

type expr =
  | Const of Value.t
  | Var of var
  | Special of special
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Load of expr * expr  (** global load: buffer expression, index *)
  | Shared_load of string * expr
  | Buf_len of expr  (** element count of a buffer *)

(** Scope at which a device-heap allocation is performed (one buffer per
    warp / per block / per grid); the paper's consolidation buffers. *)
type alloc_scope = Per_warp | Per_block | Per_grid

type stmt =
  | Let of var * expr
  | Store of expr * expr * expr  (** buffer, index, value *)
  | Shared_store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of var * expr * expr * stmt list
      (** [For (v, lo, hi, body)]: v from lo while v < hi, step 1 *)
  | Syncthreads
  | Device_sync
      (** cudaDeviceSynchronize: the block waits for children it launched *)
  | Atomic of {
      op : atomic_op;
      buf : expr;
      idx : expr;
      operand : expr;
      compare : expr option;  (** for CAS *)
      old : var option;  (** binds the pre-update value *)
    }
  | Launch of launch
  | Malloc of {
      dst : var;
      count : expr;
      scope : alloc_scope;
      mutable site : int;  (** unique id, set by {!Kernel.finalize} *)
    }  (** device-heap allocation of an int buffer, serviced by the
           allocator selected for the run *)
  | Free of expr
      (** release a [Malloc]ed buffer back to the allocator (cost only;
          simulated buffers are reclaimed by the GC) *)
  | Grid_barrier
      (** custom global barrier (Section IV.E): every block arrives; all
          blocks except the last to arrive exit the kernel; the last block
          continues, and only after every block has arrived *)
  | Return  (** this thread exits the kernel *)

and launch = {
  callee : string;
  grid : expr;
  block : expr;
  args : expr list;
  pragma : Pragma.t option;  (** [#pragma dp] annotation, if any *)
}

type param = { pname : string; ptype : ty; pvar : var }

let param ?(ty = Tint) name = { pname = name; ptype = ty; pvar = var name }

(* ------------------------------------------------------------------ *)
(* Deep copy: fresh [var] cells so slots resolve independently.        *)
(* ------------------------------------------------------------------ *)

let rec copy_expr (e : expr) : expr =
  match e with
  | Const v -> Const v
  | Var v -> Var (var v.name)
  | Special s -> Special s
  | Unop (op, a) -> Unop (op, copy_expr a)
  | Binop (op, a, b) -> Binop (op, copy_expr a, copy_expr b)
  | Load (b, i) -> Load (copy_expr b, copy_expr i)
  | Shared_load (n, i) -> Shared_load (n, copy_expr i)
  | Buf_len b -> Buf_len (copy_expr b)

let rec copy_stmt (s : stmt) : stmt =
  match s with
  | Let (v, e) -> Let (var v.name, copy_expr e)
  | Store (b, i, x) -> Store (copy_expr b, copy_expr i, copy_expr x)
  | Shared_store (n, i, x) -> Shared_store (n, copy_expr i, copy_expr x)
  | If (c, t, f) -> If (copy_expr c, copy_block t, copy_block f)
  | While (c, b) -> While (copy_expr c, copy_block b)
  | For (v, lo, hi, b) -> For (var v.name, copy_expr lo, copy_expr hi, copy_block b)
  | Syncthreads -> Syncthreads
  | Device_sync -> Device_sync
  | Atomic { op; buf; idx; operand; compare; old } ->
    Atomic
      {
        op;
        buf = copy_expr buf;
        idx = copy_expr idx;
        operand = copy_expr operand;
        compare = Option.map copy_expr compare;
        old = Option.map (fun (v : var) -> var v.name) old;
      }
  | Launch l ->
    Launch
      {
        l with
        grid = copy_expr l.grid;
        block = copy_expr l.block;
        args = List.map copy_expr l.args;
      }
  | Malloc { dst; count; scope; site = _ } ->
    Malloc { dst = var dst.name; count = copy_expr count; scope; site = -1 }
  | Free e -> Free (copy_expr e)
  | Grid_barrier -> Grid_barrier
  | Return -> Return

and copy_block b = List.map copy_stmt b

(* ------------------------------------------------------------------ *)
(* Traversals used by analyses (variable collection, launch listing).  *)
(* ------------------------------------------------------------------ *)

let rec iter_expr f (e : expr) =
  f e;
  match e with
  | Const _ | Var _ | Special _ -> ()
  | Unop (_, a) | Shared_load (_, a) | Buf_len a -> iter_expr f a
  | Binop (_, a, b) | Load (a, b) ->
    iter_expr f a;
    iter_expr f b

let rec iter_stmt ~on_stmt ~on_expr (s : stmt) =
  on_stmt s;
  let e = iter_expr on_expr in
  match s with
  | Let (_, x) -> e x
  | Store (a, b, c) -> e a; e b; e c
  | Shared_store (_, b, c) -> e b; e c
  | If (c, t, f) ->
    e c;
    List.iter (iter_stmt ~on_stmt ~on_expr) t;
    List.iter (iter_stmt ~on_stmt ~on_expr) f
  | While (c, b) ->
    e c;
    List.iter (iter_stmt ~on_stmt ~on_expr) b
  | For (_, lo, hi, b) ->
    e lo; e hi;
    List.iter (iter_stmt ~on_stmt ~on_expr) b
  | Syncthreads | Device_sync | Grid_barrier | Return -> ()
  | Atomic { buf; idx; operand; compare; _ } ->
    e buf; e idx; e operand;
    Option.iter e compare
  | Launch l ->
    e l.grid; e l.block;
    List.iter e l.args
  | Malloc { count; _ } -> e count
  | Free x -> e x

let iter_block ~on_stmt ~on_expr b = List.iter (iter_stmt ~on_stmt ~on_expr) b

(** All variables defined or used in a block, in first-occurrence order. *)
let collect_vars (params : param list) (body : stmt list) : var list list =
  (* Returns, for each distinct name, the list of [var] cells bearing it. *)
  let tbl : (string, var list ref) Hashtbl.t = Hashtbl.create 64 in
  let order : string list ref = ref [] in
  let note (v : var) =
    match Hashtbl.find_opt tbl v.name with
    | Some cell -> cell := v :: !cell
    | None ->
      Hashtbl.add tbl v.name (ref [ v ]);
      order := v.name :: !order
  in
  List.iter (fun p -> note p.pvar) params;
  iter_block body
    ~on_stmt:(fun s ->
      match s with
      | Let (v, _) | For (v, _, _, _) -> note v
      | Atomic { old = Some v; _ } -> note v
      | Malloc { dst; _ } -> note dst
      | _ -> ())
    ~on_expr:(fun e -> match e with Var v -> note v | _ -> ());
  List.rev_map (fun name -> List.rev !(Hashtbl.find tbl name)) !order

(** Does a block (transitively) contain [Syncthreads]?  Such subtrees must
    execute block-uniformly. *)
let rec has_syncthreads_block b = List.exists has_syncthreads b

and has_syncthreads = function
  | Syncthreads -> true
  | If (_, t, f) -> has_syncthreads_block t || has_syncthreads_block f
  | While (_, b) | For (_, _, _, b) -> has_syncthreads_block b
  | Let _ | Store _ | Shared_store _ | Device_sync | Atomic _ | Launch _
  | Malloc _ | Free _ | Grid_barrier | Return ->
    false

(** Must a statement be executed block-uniformly (all warps in lockstep at
    the statement level)?  True for [Syncthreads] and [Grid_barrier] and
    for control flow containing them; the interpreter checks that the
    conditions of such control flow are uniform across the block, which is
    the same legality rule CUDA imposes on [__syncthreads]. *)
let rec needs_block_uniform = function
  | Syncthreads | Grid_barrier -> true
  | If (_, t, f) ->
    List.exists needs_block_uniform t || List.exists needs_block_uniform f
  | While (_, b) | For (_, _, _, b) -> List.exists needs_block_uniform b
  | Let _ | Store _ | Shared_store _ | Device_sync | Atomic _ | Launch _
  | Malloc _ | Free _ | Return ->
    false

(** All [Launch] nodes in a block, in syntactic order. *)
let collect_launches body =
  let acc = ref [] in
  iter_block body
    ~on_stmt:(fun s -> match s with Launch l -> acc := l :: !acc | _ -> ())
    ~on_expr:(fun _ -> ());
  List.rev !acc
