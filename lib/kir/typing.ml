(** Forward slot-type inference for the interpreter's compiled fast path.

    The IR is dynamically typed ({!Value.t}); the AST walker carries boxed
    values for every lane.  Most kernels, however, are monomorphic: every
    value a frame slot ever holds is an int, a float, or a buffer handle.
    This module proves that with a small forward fixpoint over the kernel
    body so {!Dpc_sim} can keep such slots in unboxed [int array] /
    [float array] register planes.

    The analysis is deliberately conservative:

    - a slot's type is the join of the types of every expression assigned
      to it ([Let], [For] induction variables, [Atomic] old bindings,
      [Malloc] destinations, parameter declarations);
    - a use that is not dominated by an assignment ("definitely assigned"
      in the Java sense, computed with set intersection at control-flow
      merges) also joins the implicit initial value, [Vint 0];
    - buffer-typed slots track their element type ([Eint]/[Efloat]) so
      loads through them stay typed; element types come from parameter
      declarations ([int*]/[float*]) and from [Malloc] (always int);
    - anything mixed, unknown, or error-prone joins to [St_boxed], and the
      compiled path falls back to boxed {!Value.t} lanes there, which by
      construction reproduces the reference walker exactly.

    Shared arrays get the same treatment, keyed by the type of every value
    stored into them ([Sh_int] when all stores are ints, else boxed). *)

type elem = Eint | Efloat | Eany

(** Lattice of slot types: [St_bot] < {int, float, buf} < [St_boxed]. *)
type slot_ty = St_bot | St_int | St_float | St_buf of elem | St_boxed

type sh_ty = Sh_bot | Sh_int | Sh_boxed

(** Static type of an expression occurrence.  [E_dyn] means "anything the
    reference walker could produce, including a runtime type error". *)
type ety = E_int | E_float | E_buf of elem | E_dyn

type t = {
  slots : slot_ty array;  (** indexed by resolved frame slot *)
  shared : (string * sh_ty) list;  (** same order as the kernel's decls *)
  ok : bool;
      (** false when the body contains unresolved variable slots; the
          compiled path must then refuse the kernel entirely *)
}

let slot_ty_to_string = function
  | St_bot -> "bot"
  | St_int -> "int"
  | St_float -> "float"
  | St_buf Eint -> "int*"
  | St_buf Efloat -> "float*"
  | St_buf Eany -> "void*"
  | St_boxed -> "boxed"

let join a b =
  match (a, b) with
  | St_bot, x | x, St_bot -> x
  | St_int, St_int -> St_int
  | St_float, St_float -> St_float
  | St_buf x, St_buf y -> St_buf (if x = y then x else Eany)
  | _ -> St_boxed

let join_sh a b =
  match (a, b) with
  | Sh_bot, x | x, Sh_bot -> x
  | Sh_int, Sh_int -> Sh_int
  | _ -> Sh_boxed

let of_ety = function
  | E_int -> St_int
  | E_float -> St_float
  | E_buf e -> St_buf e
  | E_dyn -> St_boxed

(** Static type a [Var] occurrence of a slot evaluates to. *)
let ety_of_slot = function
  | St_bot | St_int -> E_int
  | St_float -> E_float
  | St_buf e -> E_buf e
  | St_boxed -> E_dyn

let of_param_ty = function
  | Ast.Tint -> St_int
  | Ast.Tfloat -> St_float
  | Ast.Tptr_int -> St_buf Eint
  | Ast.Tptr_float -> St_buf Efloat

module IntSet = Set.Make (Int)

let infer ~(params : Ast.param list) ~(shared : (string * int) list)
    ~(nslots : int) (body : Ast.stmt list) : t =
  let slots = Array.make (Int.max 1 nslots) St_bot in
  let sh = Hashtbl.create (List.length shared + 1) in
  List.iter (fun (name, _) -> Hashtbl.replace sh name Sh_bot) shared;
  let ok = ref true in
  let changed = ref true in
  let jslot s ty =
    let j = join slots.(s) ty in
    if j <> slots.(s) then begin
      slots.(s) <- j;
      changed := true
    end
  in
  let jsh name ty =
    match Hashtbl.find_opt sh name with
    | None -> ()  (* undeclared: the walker errors at runtime *)
    | Some cur ->
      let j = join_sh cur ty in
      if j <> cur then begin
        Hashtbl.replace sh name j;
        changed := true
      end
  in
  List.iter
    (fun (p : Ast.param) ->
      if p.Ast.pvar.Ast.slot < 0 then ok := false
      else jslot p.Ast.pvar.Ast.slot (of_param_ty p.Ast.ptype))
    params;
  (* One definedness-aware forward pass; repeated to fixpoint because a
     later assignment can demote a slot that earlier expressions already
     consulted. *)
  let rec ex (defined : IntSet.t) (e : Ast.expr) : ety =
    match e with
    | Ast.Const (Value.Vint _) -> E_int
    | Ast.Const (Value.Vfloat _) -> E_float
    | Ast.Const (Value.Vbuf _) -> E_buf Eany
    | Ast.Var v ->
      if v.Ast.slot < 0 then begin
        ok := false;
        E_dyn
      end
      else begin
        (* An un-dominated use reads the initial [Vint 0]. *)
        if not (IntSet.mem v.Ast.slot defined) then jslot v.Ast.slot St_int;
        ety_of_slot slots.(v.Ast.slot)
      end
    | Ast.Special _ -> E_int
    | Ast.Unop (op, a) -> (
      let ta = ex defined a in
      match op with
      | Ast.Not | Ast.To_int -> E_int
      | Ast.To_float -> E_float
      | Ast.Neg -> (
        match ta with
        | E_int -> E_int
        | E_float -> E_float
        | E_buf _ -> E_float  (* always raises; any claim is sound *)
        | E_dyn -> E_dyn))
    | Ast.Binop (op, a, b) -> (
      let ta = ex defined a in
      let tb = ex defined b in
      match op with
      | Ast.And | Ast.Or | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt
      | Ast.Ge | Ast.Mod | Ast.Shl | Ast.Shr | Ast.Bit_and | Ast.Bit_or
      | Ast.Bit_xor ->
        E_int
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Min | Ast.Max -> (
        (* [both_int] fails as soon as either side is a float, so a float
           operand forces the float path no matter what the other is. *)
        match (ta, tb) with
        | E_float, _ | _, E_float -> E_float
        | E_int, E_int -> E_int
        | _ -> E_dyn))
    | Ast.Load (be, ie) -> (
      let tb = ex defined be in
      let (_ : ety) = ex defined ie in
      match tb with
      | E_buf Eint -> E_int
      | E_buf Efloat -> E_float
      | _ -> E_dyn)
    | Ast.Shared_load (name, ie) -> (
      let (_ : ety) = ex defined ie in
      match Hashtbl.find_opt sh name with
      | Some (Sh_bot | Sh_int) -> E_int  (* never stored: reads Vint 0 *)
      | Some Sh_boxed | None -> E_dyn)
    | Ast.Buf_len be ->
      let (_ : ety) = ex defined be in
      E_int
  in
  let define defined (v : Ast.var) ty =
    if v.Ast.slot < 0 then begin
      ok := false;
      defined
    end
    else begin
      jslot v.Ast.slot ty;
      IntSet.add v.Ast.slot defined
    end
  in
  let rec st (defined : IntSet.t) (s : Ast.stmt) : IntSet.t =
    match s with
    | Ast.Let (v, e) ->
      let te = ex defined e in
      define defined v (of_ety te)
    | Ast.Store (be, ie, xe) ->
      let (_ : ety) = ex defined be in
      let (_ : ety) = ex defined ie in
      let (_ : ety) = ex defined xe in
      defined
    | Ast.Shared_store (name, ie, xe) ->
      let (_ : ety) = ex defined ie in
      let tx = ex defined xe in
      jsh name (match tx with E_int -> Sh_int | _ -> Sh_boxed);
      defined
    | Ast.If (c, t, f) ->
      let (_ : ety) = ex defined c in
      let dt = sts defined t in
      let df = sts defined f in
      IntSet.inter dt df
    | Ast.While (c, b) ->
      let (_ : ety) = ex defined c in
      let (_ : IntSet.t) = sts defined b in
      defined  (* zero-iteration path: body defs don't survive *)
    | Ast.For (v, lo, hi, b) ->
      let tlo = ex defined lo in
      (* The induction variable is assigned [lo] and then [Vint (i+1)]. *)
      let defined = define defined v (join (of_ety tlo) St_int) in
      let (_ : ety) = ex defined hi in
      let (_ : IntSet.t) = sts defined b in
      defined
    | Ast.Syncthreads | Ast.Device_sync | Ast.Grid_barrier | Ast.Return ->
      defined
    | Ast.Atomic { buf; idx; operand; compare; old; _ } -> (
      let tb = ex defined buf in
      let (_ : ety) = ex defined idx in
      let (_ : ety) = ex defined operand in
      Option.iter (fun e -> ignore (ex defined e : ety)) compare;
      match old with
      | None -> defined
      | Some v ->
        let told =
          match tb with
          | E_buf Eint -> St_int
          | E_buf Efloat -> St_float
          | _ -> St_boxed
        in
        define defined v told)
    | Ast.Launch l ->
      let (_ : ety) = ex defined l.Ast.grid in
      let (_ : ety) = ex defined l.Ast.block in
      List.iter (fun e -> ignore (ex defined e : ety)) l.Ast.args;
      defined
    | Ast.Malloc { dst; count; _ } ->
      let (_ : ety) = ex defined count in
      define defined dst (St_buf Eint)
    | Ast.Free e ->
      let (_ : ety) = ex defined e in
      defined
  and sts defined stmts = List.fold_left st defined stmts
  in
  let params_defined =
    List.fold_left
      (fun acc (p : Ast.param) ->
        if p.Ast.pvar.Ast.slot >= 0 then IntSet.add p.Ast.pvar.Ast.slot acc
        else acc)
      IntSet.empty params
  in
  while !changed do
    changed := false;
    ignore (sts params_defined body : IntSet.t)
  done;
  {
    slots;
    shared =
      List.map
        (fun (name, _) ->
          (name, Option.value ~default:Sh_bot (Hashtbl.find_opt sh name)))
        shared;
    ok = !ok;
  }
