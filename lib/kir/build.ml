(** Combinator DSL for constructing kernel IR from OCaml.

    The generated-code side of the consolidation compiler and the unit
    tests build ASTs with these combinators; applications are written in
    MiniCU source and parsed instead.

    Operators are suffixed with [:] to avoid shadowing the stdlib ones:
    [v "x" +: i 1] builds [x + 1]. *)

open Ast

let i n = Const (Value.Vint n)
let f x = Const (Value.Vfloat x)
let v name = Var (var name)

let tid = Special Thread_idx
let bid = Special Block_idx
let bdim = Special Block_dim
let gdim = Special Grid_dim
let lane = Special Lane_id
let warp = Special Warp_id
let warpsize = Special Warp_size

(** Global thread index: [blockIdx.x * blockDim.x + threadIdx.x]. *)
let gtid = Binop (Add, Binop (Mul, bid, bdim), tid)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let not_ a = Unop (Not, a)
let neg a = Unop (Neg, a)
let to_float a = Unop (To_float, a)
let to_int a = Unop (To_int, a)

let ( .%[] ) buf idx = Load (buf, idx)
let load buf idx = Load (buf, idx)
let shared name idx = Shared_load (name, idx)
let buf_len b = Buf_len b

let set name e = Let (var name, e)
let store buf idx value = Store (buf, idx, value)
let shared_set name idx value = Shared_store (name, idx, value)
let if_ c t e = If (c, t, e)
let if_then c t = If (c, t, [])
let while_ c body = While (c, body)
let for_ name ~from ~below body = For (var name, from, below, body)
let sync = Syncthreads
let device_sync = Device_sync
let grid_barrier = Grid_barrier
let return = Return

let atomic_add ?old buf idx operand =
  Atomic { op = Aadd; buf; idx; operand; compare = None;
           old = Option.map var old }

let atomic_min ?old buf idx operand =
  Atomic { op = Amin; buf; idx; operand; compare = None;
           old = Option.map var old }

let atomic_max ?old buf idx operand =
  Atomic { op = Amax; buf; idx; operand; compare = None;
           old = Option.map var old }

let atomic_exch ?old buf idx operand =
  Atomic { op = Aexch; buf; idx; operand; compare = None;
           old = Option.map var old }

let atomic_cas ?old buf idx ~compare operand =
  Atomic { op = Acas; buf; idx; operand; compare = Some compare;
           old = Option.map var old }

let launch ?pragma callee ~grid ~block args =
  Launch { callee; grid; block; args; pragma }

let malloc ~scope dst count = Malloc { dst = var dst; count; scope; site = -1 }
let free e = Free e

let kernel ~name ?(params = []) ?(shared = []) body =
  Kernel.make ~name ~params ~shared body

(** Integer parameter. *)
let p name = param ~ty:Tint name

(** Float parameter. *)
let pf name = param ~ty:Tfloat name

(** Pointer-to-int parameter. *)
let pi name = param ~ty:Tptr_int name

(** Pointer-to-float parameter. *)
let pp name = param ~ty:Tptr_float name
