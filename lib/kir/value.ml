(** Runtime values of the kernel IR.

    The IR is dynamically typed, like the simulator of a C dialect should
    be: scalars are 32-bit-ish ints and floats, and pointers are handles to
    simulated global-memory buffers ({!Dpc_gpu.Memory.buf} ids).  Arithmetic
    follows C promotion: an operation touching a float yields a float. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vbuf of int  (** global-memory buffer handle *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let to_string = function
  | Vint i -> string_of_int i
  | Vfloat f -> Printf.sprintf "%gf" f
  | Vbuf b -> Printf.sprintf "<buf:%d>" b

let as_int = function
  | Vint i -> i
  | Vfloat f -> Float.to_int f
  | Vbuf _ as v -> type_error "expected int, got %s" (to_string v)

let as_float = function
  | Vfloat f -> f
  | Vint i -> Float.of_int i
  | Vbuf _ as v -> type_error "expected float, got %s" (to_string v)

let as_buf = function
  | Vbuf b -> b
  | v -> type_error "expected buffer, got %s" (to_string v)

(** C truthiness: zero is false, everything else is true. *)
let truthy = function
  | Vint i -> i <> 0
  | Vfloat f -> f <> 0.0
  | Vbuf _ as v -> type_error "buffer used as condition (%s)" (to_string v)

let of_bool b = Vint (if b then 1 else 0)

let is_float = function Vfloat _ -> true | Vint _ | Vbuf _ -> false
