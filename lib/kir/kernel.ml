(** Kernels and programs.

    A kernel owns its parameter list, shared-memory declarations and body.
    [finalize] resolves every variable occurrence to a dense frame slot
    (the interpreter indexes per-lane frames by slot, never by name) and
    numbers [Malloc] sites so per-grid allocations can be memoized. *)

type t = {
  kname : string;
  params : Ast.param list;
  shared : (string * int) list;  (** shared arrays: name, element count *)
  body : Ast.stmt list;
  line : int;  (** source line of the definition; 0 when built in memory *)
  mutable nslots : int;  (** -1 until finalized *)
  mutable nsites : int;  (** number of Malloc sites; -1 until finalized *)
  mutable typing : Typing.t option;
      (** slot-type inference result, cached by [finalize]; consumed by the
          simulator's compiled fast path *)
}

exception Invalid_kernel of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_kernel s)) fmt

let make ~name ?(params = []) ?(shared = []) ?(line = 0) body =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p : Ast.param) ->
      if Hashtbl.mem seen p.pname then
        invalid "kernel %s: duplicate parameter %s" name p.pname;
      Hashtbl.add seen p.pname ())
    params;
  { kname = name; params; shared; body; line; nslots = -1; nsites = -1;
    typing = None }

(** Hook run on every kernel at the end of {!finalize}.  [Dpc_check]
    installs its strict verifier here so that every finalized kernel is
    statically vetted before it can reach the interpreter; the default is
    a no-op.  The hook may raise to reject the kernel.

    The hook is {e domain-local} (domain-local storage, not a shared
    ref): installing it affects only the calling domain, so concurrent
    batches on different domains can install, save and restore their
    hooks without racing on shared mutable state.  The flip side is that
    an executor fanning work out to other domains must install the hook
    {e inside each worker} — installing it in the submitting domain
    before spawning vets nothing the workers finalize
    ([Dpc_engine.Session] wraps each batch task accordingly). *)
let finalize_check_key : (t -> unit) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun _ -> ())

let finalize_check () = Domain.DLS.get finalize_check_key
let set_finalize_check f = Domain.DLS.set finalize_check_key f

(** Resolve variable slots and number allocation sites.  Idempotent, and
    a no-op on an already-finalized kernel: finalization is the only
    mutation a kernel ever sees, so skipping it keeps finalized programs
    safe to share read-only across sessions and domains (the engine's
    compiled-kernel cache relies on this).  Must be called (via
    {!Program.finalize}) before interpretation. *)
let is_finalized k = k.nslots >= 0

let finalize (k : t) =
  if is_finalized k then ()
  else begin
    let groups = Ast.collect_vars k.params k.body in
  List.iteri
    (fun slot cells -> List.iter (fun (v : Ast.var) -> v.slot <- slot) cells)
    groups;
  k.nslots <- List.length groups;
  let site = ref 0 in
  Ast.iter_block k.body
    ~on_stmt:(fun s ->
      match s with
      | Ast.Malloc m ->
        m.site <- !site;
        incr site
      | _ -> ())
    ~on_expr:(fun _ -> ());
  k.nsites <- !site;
    k.typing <-
      Some
        (Typing.infer ~params:k.params ~shared:k.shared ~nslots:k.nslots
           k.body);
    finalize_check () k
  end

let param_slots (k : t) =
  if not (is_finalized k) then invalid "kernel %s: not finalized" k.kname;
  List.map (fun (p : Ast.param) -> p.pvar.slot) k.params

type kernel = t

(** A program is a set of kernels addressable by name (device-side launches
    resolve callees here). *)
module Program = struct
  type t = { kernels : (string, kernel) Hashtbl.t }

  let create () = { kernels = Hashtbl.create 16 }

  let add p (k : kernel) =
    if Hashtbl.mem p.kernels k.kname then
      invalid "program already contains kernel %s" k.kname;
    Hashtbl.replace p.kernels k.kname k

  let find p name =
    match Hashtbl.find_opt p.kernels name with
    | Some k -> k
    | None -> invalid "no kernel named %s" name

  let find_opt p name = Hashtbl.find_opt p.kernels name

  let mem p name = Hashtbl.mem p.kernels name

  let kernels p =
    Hashtbl.fold (fun _ k acc -> k :: acc) p.kernels []
    |> List.sort (fun a b -> String.compare a.kname b.kname)

  let finalize p = Hashtbl.iter (fun _ k -> finalize k) p.kernels
end
